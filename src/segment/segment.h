#ifndef PINOT_SEGMENT_SEGMENT_H_
#define PINOT_SEGMENT_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "data/schema.h"
#include "index/inverted_index.h"
#include "segment/dictionary.h"
#include "segment/forward_index.h"

namespace pinot {

class StarTree;
class ValidDocsTracker;

/// Per-column statistics recorded in segment metadata and used for
/// cost-based physical operator ordering (paper section 3.3.4: "operators
/// can be reordered in order to lower the overall cost ... based on
/// per-column statistics").
struct ColumnStats {
  int cardinality = 0;
  Value min_value;
  Value max_value;
  bool is_sorted = false;       // Doc order equals value order.
  uint32_t total_entries = 0;   // Sum of entry counts (== num_docs for SV).
  uint32_t max_entries_per_row = 1;
};

/// Read access to one column of a (mutable or immutable) segment.
class ColumnReader {
 public:
  virtual ~ColumnReader() = default;

  virtual const FieldSpec& spec() const = 0;
  virtual const Dictionary& dictionary() const = 0;
  virtual const ColumnStats& stats() const = 0;

  /// Single-value columns: dictionary id of `doc`.
  virtual uint32_t GetDictId(uint32_t doc) const = 0;

  /// Multi-value columns: dictionary ids of `doc` (clears `out`).
  virtual void GetDictIds(uint32_t doc, std::vector<uint32_t>* out) const = 0;

  /// Single-value columns: bulk decode of docs [begin, begin + count) into
  /// `out`. The default loops over GetDictId; immutable columns override
  /// with word-at-a-time bit unpacking.
  virtual void GetDictIdRange(uint32_t begin, uint32_t count,
                              uint32_t* out) const {
    for (uint32_t i = 0; i < count; ++i) out[i] = GetDictId(begin + i);
  }

  /// Single-value columns: gather decode of an explicit doc id list. One
  /// virtual call per block instead of one per doc.
  virtual void GetDictIdBatch(const uint32_t* docs, uint32_t count,
                              uint32_t* out) const {
    for (uint32_t i = 0; i < count; ++i) out[i] = GetDictId(docs[i]);
  }

  /// Indexes; null when not present on this column.
  virtual const InvertedIndex* inverted_index() const = 0;
  virtual const SortedIndex* sorted_index() const = 0;
};

/// Descriptive metadata for a segment (paper section 3.2: "The segment
/// metadata provides information about the set of columns in the segment,
/// their type, cardinality, encoding, various statistics, and the indexes
/// available").
struct SegmentMetadata {
  std::string table_name;
  std::string segment_name;
  uint32_t num_docs = 0;
  // Time range covered by the segment's time column (0/−1 when the schema
  // has no time column). Drives retention and the hybrid-table time
  // boundary.
  int64_t min_time = 0;
  int64_t max_time = -1;
  int64_t creation_time_millis = 0;
  // Name of the column the segment is physically sorted on; empty if none.
  std::string sorted_column;
  // Partitioned tables: which partition this segment holds; -1 when the
  // table is unpartitioned. partition_column/num_partitions describe the
  // partition function (Kafka-compatible murmur2; section 4.4).
  int32_t partition_id = -1;
  std::string partition_column;
  int32_t num_partitions = 0;
  uint32_t crc = 0;
};

/// Common read interface for immutable (offline/sealed) and mutable
/// (realtime consuming) segments; all query operators run against this.
class SegmentInterface {
 public:
  virtual ~SegmentInterface() = default;

  virtual const Schema& schema() const = 0;
  virtual uint32_t num_docs() const = 0;
  virtual const SegmentMetadata& metadata() const = 0;

  /// Returns the column reader, or nullptr when the column does not exist
  /// in this segment (e.g. a column added to the schema after the segment
  /// was built and not yet defaulted in).
  virtual const ColumnReader* GetColumn(const std::string& name) const = 0;

  /// Star-tree index, or nullptr when the segment has none.
  virtual const StarTree* star_tree() const { return nullptr; }

  /// Upsert validity tracker, or nullptr for append-only segments. Non-null
  /// means some documents may be superseded: every plan that answers from
  /// this segment must intersect with the tracker's validity snapshot (or
  /// refuse, like star-tree / metadata-only plans do).
  virtual const ValidDocsTracker* valid_docs() const { return nullptr; }
};

/// A fully-built immutable segment (paper section 3.1: "Data in segments is
/// immutable, although segments themselves can be replaced with a newer
/// version").
class ImmutableSegment : public SegmentInterface {
 public:
  /// One column: dictionary + forward index + optional indexes + stats.
  class Column : public ColumnReader {
   public:
    Column(FieldSpec spec, Dictionary dictionary, ForwardIndex forward,
           ColumnStats stats)
        : spec_(std::move(spec)),
          dictionary_(std::move(dictionary)),
          forward_(std::move(forward)),
          stats_(std::move(stats)) {}

    const FieldSpec& spec() const override { return spec_; }
    const Dictionary& dictionary() const override { return dictionary_; }
    const ColumnStats& stats() const override { return stats_; }

    uint32_t GetDictId(uint32_t doc) const override {
      return forward_.Get(doc);
    }
    void GetDictIds(uint32_t doc, std::vector<uint32_t>* out) const override {
      forward_.GetMulti(doc, out);
    }
    void GetDictIdRange(uint32_t begin, uint32_t count,
                        uint32_t* out) const override {
      forward_.GetRangeSingle(begin, count, out);
    }
    void GetDictIdBatch(const uint32_t* docs, uint32_t count,
                        uint32_t* out) const override {
      for (uint32_t i = 0; i < count; ++i) out[i] = forward_.Get(docs[i]);
    }

    const InvertedIndex* inverted_index() const override {
      return inverted_.get();
    }
    const SortedIndex* sorted_index() const override { return sorted_.get(); }

    const ForwardIndex& forward_index() const { return forward_; }

    void SetInvertedIndex(std::unique_ptr<InvertedIndex> index) {
      inverted_ = std::move(index);
    }
    void SetSortedIndex(std::unique_ptr<SortedIndex> index) {
      sorted_ = std::move(index);
    }

    uint64_t SizeInBytes() const;

   private:
    FieldSpec spec_;
    Dictionary dictionary_;
    ForwardIndex forward_;
    ColumnStats stats_;
    std::unique_ptr<InvertedIndex> inverted_;
    std::unique_ptr<SortedIndex> sorted_;
  };

  ImmutableSegment(Schema schema, SegmentMetadata metadata,
                   std::vector<std::unique_ptr<Column>> columns);
  ~ImmutableSegment() override;

  const Schema& schema() const override { return schema_; }
  uint32_t num_docs() const override { return metadata_.num_docs; }
  const SegmentMetadata& metadata() const override { return metadata_; }
  const ColumnReader* GetColumn(const std::string& name) const override;
  const StarTree* star_tree() const override;
  const ValidDocsTracker* valid_docs() const override {
    return valid_docs_.get();
  }

  /// Attaches the upsert validity tracker (server-side, for upsert tables).
  void SetValidDocs(std::shared_ptr<ValidDocsTracker> tracker) {
    valid_docs_ = std::move(tracker);
  }
  const std::shared_ptr<ValidDocsTracker>& valid_docs_ptr() const {
    return valid_docs_;
  }

  Column* GetMutableColumn(const std::string& name);

  /// Builds an inverted index for `column` if it does not already have one
  /// (the on-demand reindexing of paper sections 3.2 / 5.2).
  Status CreateInvertedIndex(const std::string& column);

  /// Adds a column filled with the schema default for every document
  /// (paper section 5.2 live schema addition). Costs O(1) space: the
  /// dictionary has one entry, so the forward index packs 0 bits per doc.
  Status AddDefaultColumn(const FieldSpec& field);

  void SetStarTree(std::unique_ptr<StarTree> tree);

  /// Total approximate in-memory footprint of dictionaries, forward
  /// indexes, and indexes.
  uint64_t SizeInBytes() const;

  /// Serializes the whole segment (schema, metadata, columns, indexes,
  /// star-tree) into a blob suitable for the object store. The blob embeds
  /// a CRC over the column data.
  std::string SerializeToBlob() const;

  static Result<std::shared_ptr<ImmutableSegment>> DeserializeFromBlob(
      std::string_view blob);

 private:
  Schema schema_;
  SegmentMetadata metadata_;
  std::vector<std::unique_ptr<Column>> columns_;
  std::unordered_map<std::string, int> column_index_;
  std::unique_ptr<StarTree> star_tree_;
  std::shared_ptr<ValidDocsTracker> valid_docs_;
};

}  // namespace pinot

#endif  // PINOT_SEGMENT_SEGMENT_H_
