#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pinot {

void Histogram::Observe(double value) {
  int bucket = 0;
  if (value > kFirstBound) {
    bucket = static_cast<int>(std::ceil(std::log2(value / kFirstBound)));
    // Guard against floating-point edge cases at bucket boundaries.
    while (bucket > 0 && value <= BucketUpperBound(bucket - 1)) --bucket;
    while (bucket < kNumBuckets - 1 && value > BucketUpperBound(bucket)) {
      ++bucket;
    }
    bucket = std::clamp(bucket, 0, kNumBuckets - 1);
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (value < lo &&
         !min_.compare_exchange_weak(lo, value, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (value > hi &&
         !max_.compare_exchange_weak(hi, value, std::memory_order_relaxed)) {
  }
}

double Histogram::Min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0;
}

double Histogram::Max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0;
}

double Histogram::BucketUpperBound(int i) {
  return std::ldexp(kFirstBound, i);
}

double Histogram::Percentile(double p) const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = std::max(1.0, clamped / 100.0 * total);
  uint64_t cumulative = 0;
  double estimate = BucketUpperBound(kNumBuckets - 1);
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      const double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
      const double upper = BucketUpperBound(i);
      const double fraction = (rank - cumulative) / in_bucket;
      estimate = lower + fraction * (upper - lower);
      break;
    }
    cumulative += in_bucket;
  }
  // Buckets are log-spaced, so interpolation can overshoot the true range
  // (bucket 0 interpolates down from lower = 0.0 even when every observed
  // value is larger). The tracked extremes bound the answer exactly.
  const double lo = min_.load(std::memory_order_relaxed);
  const double hi = max_.load(std::memory_order_relaxed);
  if (std::isfinite(lo) && estimate < lo) estimate = lo;
  if (std::isfinite(hi) && estimate > hi) estimate = hi;
  return estimate;
}

std::string MetricsRegistry::SanitizeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
      case '\\':
      case '\n':
      case '\r':
      case '\t':
        out += '_';
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string MetricsRegistry::SeriesKey(const std::string& name,
                                       const MetricLabels& labels) {
  if (labels.empty()) return name;
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name + "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ",";
    key += sorted[i].first + "=\"" + SanitizeLabelValue(sorted[i].second) +
           "\"";
  }
  key += "}";
  return key;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels) {
  const std::string key = SeriesKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[key];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels) {
  const std::string key = SeriesKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[key];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const MetricLabels& labels) {
  const std::string key = SeriesKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[key];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name,
                                       const MetricLabels& labels) const {
  const std::string key = SeriesKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second->Value();
}

double MetricsRegistry::GaugeValue(const std::string& name,
                                   const MetricLabels& labels) const {
  const std::string key = SeriesKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(key);
  return it == gauges_.end() ? 0 : it->second->Value();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name, const MetricLabels& labels) const {
  const std::string key = SeriesKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(key);
  return it == histograms_.end() ? nullptr : it->second.get();
}

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Splits "name{labels}" so derived series (_count, quantile=) can be
// synthesized with the labels preserved.
void SplitSeriesKey(const std::string& key, std::string* name,
                    std::string* labels) {
  const size_t brace = key.find('{');
  if (brace == std::string::npos) {
    *name = key;
    labels->clear();
  } else {
    *name = key.substr(0, brace);
    // Inner label list without the braces.
    *labels = key.substr(brace + 1, key.size() - brace - 2);
  }
}

std::string WithExtraLabel(const std::string& labels,
                           const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  return "{" + labels + "," + extra + "}";
}

}  // namespace

std::vector<std::pair<std::string, const Counter*>>
MetricsRegistry::CounterSeries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) out.emplace_back(key, counter.get());
  return out;
}

std::vector<std::pair<std::string, const Gauge*>>
MetricsRegistry::GaugeSeries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [key, gauge] : gauges_) out.emplace_back(key, gauge.get());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::HistogramSeries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [key, histogram] : histograms_) {
    out.emplace_back(key, histogram.get());
  }
  return out;
}

std::string MetricsRegistry::Dump() const {
  // Snapshot the (stable) series pointers under the lock; percentile math
  // and string building run unlocked so Get* registration is never stuck
  // behind a dump.
  const auto counters = CounterSeries();
  const auto gauges = GaugeSeries();
  const auto histograms = HistogramSeries();
  std::string out;
  for (const auto& [key, counter] : counters) {
    out += key + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [key, gauge] : gauges) {
    out += key + " " + FormatDouble(gauge->Value()) + "\n";
  }
  for (const auto& [key, histogram] : histograms) {
    std::string name, labels;
    SplitSeriesKey(key, &name, &labels);
    const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
    out += name + "_count" + suffix + " " +
           std::to_string(histogram->Count()) + "\n";
    out += name + "_sum" + suffix + " " + FormatDouble(histogram->Sum()) +
           "\n";
    out += name + "_min" + suffix + " " + FormatDouble(histogram->Min()) +
           "\n";
    out += name + "_max" + suffix + " " + FormatDouble(histogram->Max()) +
           "\n";
    for (const auto& [quantile, p] :
         {std::pair<const char*, double>{"0.5", 50},
          {"0.95", 95},
          {"0.99", 99}}) {
      out += name +
             WithExtraLabel(labels,
                            std::string("quantile=\"") + quantile + "\"") +
             " " + FormatDouble(histogram->Percentile(p)) + "\n";
    }
  }
  return out;
}

std::string MetricFamilyName(const std::string& series_key) {
  const size_t brace = series_key.find('{');
  return brace == std::string::npos ? series_key : series_key.substr(0, brace);
}

std::string MetricLabelValue(const std::string& series_key,
                             const std::string& label) {
  const size_t brace = series_key.find('{');
  if (brace == std::string::npos) return "";
  const std::string needle = label + "=\"";
  size_t pos = series_key.find(needle, brace);
  while (pos != std::string::npos) {
    // Must start a label: right after '{' or a ','.
    const char before = series_key[pos - 1];
    if (before == '{' || before == ',') {
      const size_t start = pos + needle.size();
      const size_t end = series_key.find('"', start);
      if (end == std::string::npos) return "";
      return series_key.substr(start, end - start);
    }
    pos = series_key.find(needle, pos + 1);
  }
  return "";
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return registry;
}

}  // namespace pinot
