# Empty dependencies file for mutable_segment_test.
# This may be replaced when dependencies are built.
