#!/usr/bin/env bash
# Validates the machine-readable dump grammars against a live cluster:
#   - trace / explain renderings: one span per line,
#       <2*depth spaces><name> <millis>.<micros 3 digits>ms [{k=v, ...}]
#     with indentation stepping by exactly 2 spaces at a time;
#   - MetricsDump(): Prometheus-style `name{labels} value` lines;
#   - the slow-query log: `# slow query <rank>: <millis>ms  <pql>` headers
#     followed by `# table=`/`# receipt:` context lines and an indented
#     span tree;
#   - query receipts: three `receipt: phases|work|scatter ...` lines;
#   - HealthDump(): `overall`/`window`/`table=`/`rule=` report lines, with
#     the smoke driver's injected faults grading events RED, metrics GREEN.
# Runs the trace_smoke example from an existing build directory (default:
# build/). Usage: scripts/check_dumps.sh [build_dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SMOKE="${BUILD_DIR}/examples/trace_smoke"

if [[ ! -x "${SMOKE}" ]]; then
  echo "check_dumps: ${SMOKE} not built (run cmake --build ${BUILD_DIR})" >&2
  exit 1
fi

OUT="$(mktemp)"
trap 'rm -f "${OUT}"' EXIT
"${SMOKE}" > "${OUT}"

section() {  # section <start marker> <end marker>: prints the lines between.
  awk -v start="$1" -v end="$2" \
      '$0 == end { found = 0 } found { print } $0 == start { found = 1 }' \
      "${OUT}"
}

fail() { echo "check_dumps: $*" >&2; echo "--- output ---" >&2; cat "${OUT}" >&2; exit 1; }

# Every marker must be present, in order.
for marker in "# --- trace dump ---" "# --- receipt dump ---" \
              "# --- explain dump ---" "# --- slow query log ---" \
              "# --- metrics dump ---" "# --- health dump ---" \
              "# --- end ---"; do
  grep -qxF "${marker}" "${OUT}" || fail "missing marker '${marker}'"
done

SPAN_RE='^( *)[^ {][^ ]* -?[0-9]+\.[0-9]{3}ms( \{[^{}]*\})?$'

check_span_tree() {  # check_span_tree <text> <what>
  local text="$1" what="$2"
  [[ -n "${text}" ]] || fail "${what}: empty"
  local prev_indent=0 first=1
  while IFS= read -r line; do
    if ! grep -qE "${SPAN_RE}" <<< "${line}"; then
      fail "${what}: bad span line '${line}'"
    fi
    local stripped="${line#"${line%%[![:space:]]*}"}"
    local indent=$(( ${#line} - ${#stripped} ))
    if (( indent % 2 != 0 )); then
      fail "${what}: odd indent on '${line}'"
    fi
    if (( first )); then
      if (( indent != 0 )); then fail "${what}: root '${line}' is indented"; fi
      first=0
    elif (( indent > prev_indent + 2 )); then
      fail "${what}: indent jumps by more than one level at '${line}'"
    fi
    prev_indent="${indent}"
  done <<< "${text}"
}

TRACE="$(section '# --- trace dump ---' '# --- receipt dump ---')"
check_span_tree "${TRACE}" "trace dump"
# The smoke driver forces a hedged scatter call; its span must follow the
# `hedge:<server> ... {..., hedge=won|lost, ...}` grammar.
grep -qE '^ *hedge:[^ ]+ -?[0-9]+\.[0-9]{3}ms \{[^{}]*hedge=(won|lost)[^{}]*\}$' \
  <<< "${TRACE}" || fail "trace dump carries no hedge:<server> span"
# The forced group-by runs on the radix-partitioned table and is trimmed
# server-side; both must be visible in the trace labels.
grep -qE '\{[^{}]*group_table=radix\([0-9]+\)[^{}]*\}' <<< "${TRACE}" \
  || fail "trace dump carries no group_table=radix(<shards>) label"
grep -qE '^ *server:[^ ]+ -?[0-9]+\.[0-9]{3}ms \{[^{}]*trimmed=[0-9]+[^{}]*\}$' \
  <<< "${TRACE}" || fail "trace dump carries no trimmed=<n> server label"
grep -qE '\{[^{}]*groupby_groups=[0-9]+[^{}]*\}' <<< "${TRACE}" \
  || fail "trace dump carries no groupby_groups=<n> server label"
# Filter-planner observability: the page predicate's spans must carry the
# chosen operator, the bitmap-vs-scan cost comparison, and the predicted
# and actual result cardinalities.
grep -qE '\{[^{}]*op:page=(constant|sorted-range|inverted|scan)[^{}]*\}' \
  <<< "${TRACE}" || fail "trace dump carries no op:page=<operator> label"
grep -qE '\{[^{}]*cost:page=bitmap=[0-9]+,scan=[0-9]+[^{}]*\}' \
  <<< "${TRACE}" || fail "trace dump carries no cost:page=bitmap=,scan= label"
grep -qE '(\{|, )est_rows:page=[0-9]+' <<< "${TRACE}" \
  || fail "trace dump carries no est_rows:page=<n> annotation"
grep -qE '(\{|, )rows:page=[0-9]+' <<< "${TRACE}" \
  || fail "trace dump carries no rows:page=<n> annotation"
# Upsert observability: the smoke driver upserts one key twice, so the
# traced query's segment span must carry the upsert marker and the live-doc
# count after validity intersection.
grep -qE '\{[^{}]*upsert=on[^{}]*\}' <<< "${TRACE}" \
  || fail "trace dump carries no upsert=on label"
grep -qE '(\{|, )valid_docs=[0-9]+' <<< "${TRACE}" \
  || fail "trace dump carries no valid_docs=<n> annotation"
# Receipt: exactly three lines, one per group (phases / work / scatter),
# with every field present and in the pinned order.
RECEIPT="$(section '# --- receipt dump ---' '# --- explain dump ---')"
[[ "$(grep -c . <<< "${RECEIPT}")" -eq 3 ]] \
  || fail "receipt dump is not exactly three lines"
MS='[0-9]+\.[0-9]{3}ms'
grep -qE "^receipt: phases queue=${MS} plan=${MS} filter=${MS} scan=${MS} agg=${MS} route=${MS} scatter=${MS} reduce=${MS}$" \
  <<< "${RECEIPT}" || fail "receipt dump: bad phases line"
grep -qE '^receipt: work docs_scanned=[0-9]+ docs_pruned=[0-9]+ segments_queried=[0-9]+ segments_pruned=[0-9]+ scan_bytes=[0-9]+ payload_bytes=[0-9]+ groups=[0-9]+ trimmed=[0-9]+$' \
  <<< "${RECEIPT}" || fail "receipt dump: bad work line"
grep -qE '^receipt: scatter calls=[0-9]+ retries=[0-9]+ timeouts=[0-9]+ hedges=[0-9]+ hedge_wins=[0-9]+$' \
  <<< "${RECEIPT}" || fail "receipt dump: bad scatter line"
# The traced query really scanned docs over real scatter calls.
grep -qE '^receipt: work docs_scanned=[1-9]' <<< "${RECEIPT}" \
  || fail "receipt dump: docs_scanned is zero"
grep -qE '^receipt: scatter calls=[1-9]' <<< "${RECEIPT}" \
  || fail "receipt dump: calls is zero"

EXPLAIN="$(section '# --- explain dump ---' '# --- slow query log ---')"
check_span_tree "${EXPLAIN}" "explain dump"
grep -q 'plan=' <<< "${EXPLAIN}" || fail "explain dump carries no plan label"

# Slow-query log: headers, then span trees (validated leniently: every
# non-header line must be a span line).
SLOW="$(section '# --- slow query log ---' '# --- metrics dump ---')"
grep -qE '^# slow query 1: [0-9]+\.[0-9]{3}ms  ' <<< "${SLOW}" \
  || fail "slow-query log has no '# slow query 1:' header"
# Every retained entry carries its table and rendered receipt as comment
# lines between the header and the span tree.
grep -qE '^# table=[^ ]+$' <<< "${SLOW}" \
  || fail "slow-query log carries no '# table=' line"
grep -qE '^# receipt: phases ' <<< "${SLOW}" \
  || fail "slow-query log carries no '# receipt: phases' line"
grep -qE '^# receipt: work ' <<< "${SLOW}" \
  || fail "slow-query log carries no '# receipt: work' line"
while IFS= read -r line; do
  [[ -z "${line}" || "${line}" == "#"* ]] && continue
  grep -qE "${SPAN_RE}" <<< "${line}" \
    || fail "slow-query log: bad span line '${line}'"
done <<< "${SLOW}"

# Metrics: every line is `name{labels} value` (labels optional), no
# duplicate series, and the new phase histograms are present.
METRICS="$(section '# --- metrics dump ---' '# --- health dump ---')"
METRIC_RE='^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.eE+-]+(\.[0-9]+)?$'
while IFS= read -r line; do
  [[ -z "${line}" ]] && continue
  grep -qE "${METRIC_RE}" <<< "${line}" \
    || fail "metrics dump: bad line '${line}'"
done <<< "${METRICS}"
DUPES="$(awk '{print $1}' <<< "${METRICS}" | sort | uniq -d)"
[[ -z "${DUPES}" ]] || fail "metrics dump: duplicate series: ${DUPES}"
for series in broker_route_time_ms broker_scatter_time_ms \
              broker_reduce_time_ms server_query_queue_ms; do
  grep -q "^${series}" <<< "${METRICS}" \
    || fail "metrics dump: missing phase histogram ${series}"
done

# Tail-tolerance counters: always present (pre-registered by the broker),
# and the smoke driver deterministically exercises a hedge and a shed, so
# those two must be nonzero.
for series in broker_hedged_calls_total broker_hedge_wins_total \
              broker_shed_queries_total; do
  grep -q "^${series}" <<< "${METRICS}" \
    || fail "metrics dump: missing tail-tolerance counter ${series}"
done

# Group-by observability: the forced TOP-1 group-by must have recorded a
# pre-trim group count and a nonzero number of trimmed groups.
for series in server_groupby_groups server_trimmed_rows_total; do
  grep -q "^${series}" <<< "${METRICS}" \
    || fail "metrics dump: missing group-by series ${series}"
done
TRIM_TOTAL="$(grep '^server_trimmed_rows_total' <<< "${METRICS}" \
  | awk '{ sum += $NF } END { print sum + 0 }')"
awk -v v="${TRIM_TOTAL}" 'BEGIN { exit (v > 0) ? 0 : 1 }' \
  || fail "metrics dump: server_trimmed_rows_total is ${TRIM_TOTAL}, expected > 0"
for series in broker_hedged_calls_total broker_shed_queries_total; do
  VALUE="$(grep "^${series}" <<< "${METRICS}" | head -n 1 | awk '{print $NF}')"
  awk -v v="${VALUE}" 'BEGIN { exit (v > 0) ? 0 : 1 }' \
    || fail "metrics dump: ${series} is ${VALUE}, expected > 0"
done

# Upsert: the double-write of one key must have invalidated a row.
DEAD_TOTAL="$(grep '^server_upsert_dead_rows_total' <<< "${METRICS}" \
  | awk '{ sum += $NF } END { print sum + 0 }')"
awk -v v="${DEAD_TOTAL}" 'BEGIN { exit (v > 0) ? 0 : 1 }' \
  || fail "metrics dump: server_upsert_dead_rows_total is ${DEAD_TOTAL}, expected > 0"

# Per-table rollups: broker and server query families carry {table="..."}
# series alongside the unlabeled broker-wide ones, and the slow query was
# attributed to its table.
nonzero_series() {  # nonzero_series <exact series prefix incl. labels>
  local value
  value="$(grep -F "$1 " <<< "${METRICS}" | head -n 1 | awk '{print $NF}')"
  awk -v v="${value:-0}" 'BEGIN { exit (v > 0) ? 0 : 1 }'
}
nonzero_series 'broker_queries_total{table="metrics"}' \
  || fail "metrics dump: broker_queries_total{table=\"metrics\"} missing or zero"
nonzero_series 'broker_docs_scanned_total{table="metrics"}' \
  || fail "metrics dump: broker_docs_scanned_total{table=\"metrics\"} missing or zero"
nonzero_series 'broker_partial_results_total{table="events"}' \
  || fail "metrics dump: broker_partial_results_total{table=\"events\"} missing or zero"
nonzero_series 'broker_slow_queries_total{table="metrics"}' \
  || fail "metrics dump: broker_slow_queries_total{table=\"metrics\"} missing or zero"
grep -qE '^server_docs_scanned_total\{table="metrics"\} [1-9]' <<< "${METRICS}" \
  || fail "metrics dump: server_docs_scanned_total{table=\"metrics\"} missing or zero"
grep -qE '^broker_query_latency_ms_count\{table="metrics"\} [1-9]' <<< "${METRICS}" \
  || fail "metrics dump: broker_query_latency_ms_count{table=\"metrics\"} missing or zero"
# Histogram min/max satellites render for every histogram family.
grep -qE '^broker_query_latency_ms_min\{table="metrics"\} ' <<< "${METRICS}" \
  || fail "metrics dump: broker_query_latency_ms_min{table=\"metrics\"} missing"
grep -qE '^broker_query_latency_ms_max\{table="metrics"\} ' <<< "${METRICS}" \
  || fail "metrics dump: broker_query_latency_ms_max{table=\"metrics\"} missing"
grep -qE '^broker_route_time_ms_min ' <<< "${METRICS}" \
  || fail "metrics dump: broker_route_time_ms_min missing"

# Health report: line grammar plus the fault-injection verdict. The smoke
# driver lags the events partition past the freshness SLO and fails every
# events scatter call, so events must be RED (with at least one RED rule
# carrying evidence) while the untouched metrics table stays GREEN.
HEALTH="$(section '# --- health dump ---' '# --- end ---')"
[[ -n "${HEALTH}" ]] || fail "health dump: empty"
HEALTH_LINE_RE='^(overall status=(GREEN|YELLOW|RED) tables=[0-9]+|window seconds=[0-9.]+ .*|table=[^ ]+ status=(GREEN|YELLOW|RED)|  rule=[a-z0-9_]+ status=(GREEN|YELLOW|RED) [a-z0-9_]+=.+)$'
while IFS= read -r line; do
  [[ -z "${line}" ]] && continue
  grep -qE "${HEALTH_LINE_RE}" <<< "${line}" \
    || fail "health dump: bad line '${line}'"
done <<< "${HEALTH}"
grep -qE '^overall status=RED tables=[0-9]+$' <<< "${HEALTH}" \
  || fail "health dump: overall line missing or not RED"
grep -qE '^window seconds=[0-9.]+ qps=' <<< "${HEALTH}" \
  || fail "health dump: no window line (snapshot ring not wired)"
grep -qxF 'table=events status=RED' <<< "${HEALTH}" \
  || fail "health dump: events not RED under injected faults"
grep -qxF 'table=metrics status=GREEN' <<< "${HEALTH}" \
  || fail "health dump: metrics not GREEN (fault blast radius leaked)"
grep -qE '^  rule=freshness status=RED lag_rows=[0-9]+' <<< "${HEALTH}" \
  || fail "health dump: freshness rule did not trip on the lagging partition"
grep -qE '^  rule=error_rate status=RED errors=[1-9]' <<< "${HEALTH}" \
  || fail "health dump: error_rate rule did not trip on injected failures"

echo "check_dumps: trace, explain, receipt, slow-query log, metrics and health grammars OK"
