#include "realtime/completion.h"

#include <gtest/gtest.h>

namespace pinot {
namespace {

TEST(CompletionTest, HoldsUntilAllReplicasReport) {
  SimulatedClock clock;
  SegmentCompletionManager manager(&clock, /*max_wait_millis=*/10000);
  auto r1 = manager.OnSegmentConsumed("seg", "s1", 100, 3);
  EXPECT_EQ(r1.instruction, CompletionInstruction::kHold);
  auto r2 = manager.OnSegmentConsumed("seg", "s2", 100, 3);
  EXPECT_EQ(r2.instruction, CompletionInstruction::kHold);
  // Third replica completes the quorum; all offsets equal -> it commits.
  auto r3 = manager.OnSegmentConsumed("seg", "s3", 100, 3);
  EXPECT_EQ(r3.instruction, CompletionInstruction::kCommit);
  EXPECT_EQ(r3.target_offset, 100);
}

TEST(CompletionTest, StragglersGetCatchup) {
  SimulatedClock clock;
  SegmentCompletionManager manager(&clock, 10000);
  manager.OnSegmentConsumed("seg", "s1", 90, 3);
  manager.OnSegmentConsumed("seg", "s2", 100, 3);
  // Quorum complete: s3 is behind the max (100) -> CATCHUP to 100.
  auto r3 = manager.OnSegmentConsumed("seg", "s3", 95, 3);
  EXPECT_EQ(r3.instruction, CompletionInstruction::kCatchup);
  EXPECT_EQ(r3.target_offset, 100);
  // s1 also behind -> CATCHUP.
  auto r1 = manager.OnSegmentConsumed("seg", "s1", 90, 3);
  EXPECT_EQ(r1.instruction, CompletionInstruction::kCatchup);
  // s2 at the max -> becomes committer.
  auto r2 = manager.OnSegmentConsumed("seg", "s2", 100, 3);
  EXPECT_EQ(r2.instruction, CompletionInstruction::kCommit);
  // s3 catches up while commit is pending -> HOLD.
  auto r3b = manager.OnSegmentConsumed("seg", "s3", 100, 3);
  EXPECT_EQ(r3b.instruction, CompletionInstruction::kHold);
}

TEST(CompletionTest, TimeoutAllowsDecisionWithMissingReplica) {
  SimulatedClock clock;
  SegmentCompletionManager manager(&clock, 5000);
  EXPECT_EQ(manager.OnSegmentConsumed("seg", "s1", 100, 3).instruction,
            CompletionInstruction::kHold);
  clock.AdvanceMillis(6000);
  // Only one replica reported but the wait expired: decide anyway.
  EXPECT_EQ(manager.OnSegmentConsumed("seg", "s1", 100, 3).instruction,
            CompletionInstruction::kCommit);
}

TEST(CompletionTest, CommitLifecycleKeepAndDiscard) {
  SimulatedClock clock;
  SegmentCompletionManager manager(&clock, 10000);
  manager.OnSegmentConsumed("seg", "s1", 100, 2);
  auto r2 = manager.OnSegmentConsumed("seg", "s2", 100, 2);
  ASSERT_EQ(r2.instruction, CompletionInstruction::kCommit);

  ASSERT_TRUE(manager.OnCommitStart("seg", "s2", 100).ok());
  // Someone else cannot start a commit mid-flight.
  EXPECT_FALSE(manager.OnCommitStart("seg", "s1", 100).ok());
  manager.OnCommitSuccess("seg", 100);
  EXPECT_TRUE(manager.IsCommitted("seg"));
  EXPECT_EQ(manager.CommittedOffset("seg"), 100);

  // Replica at the committed offset keeps its local copy...
  EXPECT_EQ(manager.OnSegmentConsumed("seg", "s1", 100, 2).instruction,
            CompletionInstruction::kKeep);
  // ...a divergent replica discards.
  EXPECT_EQ(manager.OnSegmentConsumed("seg", "s3", 90, 2).instruction,
            CompletionInstruction::kDiscard);
}

TEST(CompletionTest, CommitFailureElectsAnotherCommitter) {
  SimulatedClock clock;
  SegmentCompletionManager manager(&clock, 10000);
  manager.OnSegmentConsumed("seg", "s1", 100, 2);
  auto r2 = manager.OnSegmentConsumed("seg", "s2", 100, 2);
  ASSERT_EQ(r2.instruction, CompletionInstruction::kCommit);
  ASSERT_TRUE(manager.OnCommitStart("seg", "s2", 100).ok());
  manager.OnCommitFailure("seg");
  EXPECT_FALSE(manager.IsCommitted("seg"));
  // s1 polls at the target offset and becomes the new committer.
  auto r1 = manager.OnSegmentConsumed("seg", "s1", 100, 2);
  EXPECT_EQ(r1.instruction, CompletionInstruction::kCommit);
  ASSERT_TRUE(manager.OnCommitStart("seg", "s1", 100).ok());
}

TEST(CompletionTest, CommitStartValidatesCommitterAndOffset) {
  SimulatedClock clock;
  SegmentCompletionManager manager(&clock, 10000);
  manager.OnSegmentConsumed("seg", "s1", 50, 1);
  EXPECT_FALSE(manager.OnCommitStart("seg", "s1", 49).ok());  // Wrong offset.
  EXPECT_FALSE(manager.OnCommitStart("other", "s1", 50).ok());  // Unknown.
  EXPECT_TRUE(manager.OnCommitStart("seg", "s1", 50).ok());
}

TEST(CompletionTest, OvershootingReplicaDiscardsInsteadOfHoldingForever) {
  // Regression: once a commit target was decided, a replica polling PAST
  // the target (stream batches can overshoot the chosen offset) fell
  // through to kHold — and since it can never catch *down*, it was parked
  // forever. It must be told to discard and rebuild from the commit.
  SimulatedClock clock;
  SegmentCompletionManager manager(&clock, 10000);
  EXPECT_EQ(manager.OnSegmentConsumed("seg", "s1", 10, 2).instruction,
            CompletionInstruction::kHold);
  // Quorum complete; s2 holds the max offset and becomes the committer.
  auto r2 = manager.OnSegmentConsumed("seg", "s2", 15, 2);
  ASSERT_EQ(r2.instruction, CompletionInstruction::kCommit);
  ASSERT_EQ(r2.target_offset, 15);

  // s1 tried to catch up to 15 but its next stream batch landed at 20.
  auto r1 = manager.OnSegmentConsumed("seg", "s1", 20, 2);
  EXPECT_EQ(r1.instruction, CompletionInstruction::kDiscard);
  EXPECT_EQ(r1.target_offset, 15);

  // Same while the commit is actually in flight (kCommitting).
  ASSERT_TRUE(manager.OnCommitStart("seg", "s2", 15).ok());
  auto r1b = manager.OnSegmentConsumed("seg", "s1", 20, 2);
  EXPECT_EQ(r1b.instruction, CompletionInstruction::kDiscard);

  // A replica exactly at the target still just waits for the outcome.
  EXPECT_EQ(manager.OnSegmentConsumed("seg", "s3", 15, 2).instruction,
            CompletionInstruction::kHold);

  // After the commit lands, the usual committed-state rules apply.
  manager.OnCommitSuccess("seg", 15);
  EXPECT_EQ(manager.OnSegmentConsumed("seg", "s1", 20, 2).instruction,
            CompletionInstruction::kDiscard);
  EXPECT_EQ(manager.OnSegmentConsumed("seg", "s3", 15, 2).instruction,
            CompletionInstruction::kKeep);
}

TEST(CompletionTest, ControllerFailoverRestartsBlankFsm) {
  SimulatedClock clock;
  SegmentCompletionManager old_leader(&clock, 10000);
  old_leader.OnSegmentConsumed("seg", "s1", 100, 2);
  old_leader.OnSegmentConsumed("seg", "s2", 100, 2);

  // New leader starts blank (paper: "this only delays the segment commit,
  // but otherwise has no effect on correctness").
  SegmentCompletionManager new_leader(&clock, 10000);
  EXPECT_EQ(new_leader.OnSegmentConsumed("seg", "s1", 100, 2).instruction,
            CompletionInstruction::kHold);
  auto r = new_leader.OnSegmentConsumed("seg", "s2", 100, 2);
  EXPECT_EQ(r.instruction, CompletionInstruction::kCommit);
}

TEST(CompletionTest, IndependentSegments) {
  SimulatedClock clock;
  SegmentCompletionManager manager(&clock, 10000);
  EXPECT_EQ(manager.OnSegmentConsumed("a", "s1", 10, 1).instruction,
            CompletionInstruction::kCommit);
  EXPECT_EQ(manager.OnSegmentConsumed("b", "s1", 20, 2).instruction,
            CompletionInstruction::kHold);
}

}  // namespace
}  // namespace pinot
