#include "segment/forward_index.h"

#include <algorithm>
#include <cassert>

namespace pinot {

namespace {

// Word-at-a-time unpacking for widths that divide 64: values never straddle
// a word boundary, so each 64-bit word yields exactly 64/kBits values with
// an unrolled inner loop. `words` must have one pad word past the last
// value (the FixedBitVector buffer guarantees this).
template <int kBits>
void UnpackAligned(const uint64_t* words, uint32_t start, uint32_t count,
                   uint32_t* out) {
  constexpr int kPerWord = 64 / kBits;
  constexpr uint64_t kMask = (uint64_t{1} << kBits) - 1;
  const uint64_t bit_pos = static_cast<uint64_t>(start) * kBits;
  uint64_t w = bit_pos >> 6;
  uint32_t i = 0;
  const int offset = static_cast<int>(bit_pos & 63);
  if (offset != 0) {
    // Leading partial word.
    uint64_t word = words[w] >> offset;
    const uint32_t take = std::min<uint32_t>((64 - offset) / kBits, count);
    for (uint32_t k = 0; k < take; ++k) {
      out[i++] = static_cast<uint32_t>(word & kMask);
      word >>= kBits;
    }
    ++w;
  }
  for (; count - i >= static_cast<uint32_t>(kPerWord); ++w, i += kPerWord) {
    const uint64_t word = words[w];
    for (int k = 0; k < kPerWord; ++k) {
      out[i + k] = static_cast<uint32_t>((word >> (k * kBits)) & kMask);
    }
  }
  if (i < count) {
    // Trailing partial word.
    uint64_t word = words[w];
    for (; i < count; ++i) {
      out[i] = static_cast<uint32_t>(word & kMask);
      word >>= kBits;
    }
  }
}

}  // namespace

int FixedBitVector::BitsFor(uint32_t max_value) {
  int bits = 0;
  while (max_value != 0) {
    ++bits;
    max_value >>= 1;
  }
  return bits;
}

FixedBitVector::FixedBitVector(const std::vector<uint32_t>& values,
                               uint32_t max_value)
    : size_(static_cast<uint32_t>(values.size())),
      bits_(BitsFor(max_value)) {
  mask_ = bits_ == 0 ? 0 : (~uint64_t{0} >> (64 - bits_));
  if (bits_ == 0) return;
  const uint64_t total_bits = static_cast<uint64_t>(size_) * bits_;
  words_.assign((total_bits + 63) / 64 + 1, 0);
  for (uint32_t i = 0; i < size_; ++i) {
    assert(values[i] <= max_value);
    const uint64_t bit_pos = static_cast<uint64_t>(i) * bits_;
    const uint64_t word_index = bit_pos >> 6;
    const int offset = static_cast<int>(bit_pos & 63);
    words_[word_index] |= static_cast<uint64_t>(values[i]) << offset;
    if (offset + bits_ > 64) {
      words_[word_index + 1] |=
          static_cast<uint64_t>(values[i]) >> (64 - offset);
    }
  }
}

void FixedBitVector::GetBatch(uint32_t start, uint32_t count,
                              uint32_t* out) const {
  assert(static_cast<uint64_t>(start) + count <= size_);
  if (count == 0) return;
  if (bits_ == 0) {
    std::fill_n(out, count, 0u);
    return;
  }
  const uint64_t* words = words_.data();
  switch (bits_) {
    case 1:
      UnpackAligned<1>(words, start, count, out);
      return;
    case 2:
      UnpackAligned<2>(words, start, count, out);
      return;
    case 4:
      UnpackAligned<4>(words, start, count, out);
      return;
    case 8:
      UnpackAligned<8>(words, start, count, out);
      return;
    case 16:
      UnpackAligned<16>(words, start, count, out);
      return;
    case 32:
      UnpackAligned<32>(words, start, count, out);
      return;
    default:
      break;
  }
  // Generic path: advance the bit cursor instead of recomputing the
  // position multiply per value; the buffer's pad word makes the
  // straddling words[w + 1] read safe for the last value.
  uint64_t bit_pos = static_cast<uint64_t>(start) * bits_;
  for (uint32_t i = 0; i < count; ++i, bit_pos += bits_) {
    const uint64_t w = bit_pos >> 6;
    const int offset = static_cast<int>(bit_pos & 63);
    uint64_t value = words[w] >> offset;
    if (offset + bits_ > 64) {
      value |= words[w + 1] << (64 - offset);
    }
    out[i] = static_cast<uint32_t>(value & mask_);
  }
}

void FixedBitVector::Serialize(ByteWriter* writer) const {
  writer->WriteU32(size_);
  writer->WriteU32(static_cast<uint32_t>(bits_));
  writer->WriteU64(words_.size());
  writer->WriteRaw(words_.data(), words_.size() * sizeof(uint64_t));
}

Result<FixedBitVector> FixedBitVector::Deserialize(ByteReader* reader) {
  FixedBitVector v;
  PINOT_ASSIGN_OR_RETURN(v.size_, reader->ReadU32());
  PINOT_ASSIGN_OR_RETURN(uint32_t bits, reader->ReadU32());
  if (bits > 32) return Status::Corruption("bad bit width");
  v.bits_ = static_cast<int>(bits);
  v.mask_ = v.bits_ == 0 ? 0 : (~uint64_t{0} >> (64 - v.bits_));
  PINOT_ASSIGN_OR_RETURN(uint64_t num_words, reader->ReadU64());
  // The word count is fully determined by (size, bits): the packing
  // constructor allocates (size * bits + 63) / 64 words plus one pad word
  // (none at width 0). Validating it before the resize bounds the
  // allocation against corrupt or hostile input.
  const uint64_t total_bits = static_cast<uint64_t>(v.size_) * v.bits_;
  const uint64_t expected_words =
      v.bits_ == 0 ? 0 : (total_bits + 63) / 64 + 1;
  if (num_words != expected_words) {
    return Status::Corruption("bit vector word count inconsistent with size");
  }
  v.words_.resize(num_words);
  PINOT_RETURN_NOT_OK(
      reader->ReadRaw(v.words_.data(), num_words * sizeof(uint64_t)));
  return v;
}

ForwardIndex ForwardIndex::BuildSingle(const std::vector<uint32_t>& dict_ids,
                                       uint32_t cardinality) {
  ForwardIndex index;
  index.single_value_ = true;
  index.num_docs_ = static_cast<uint32_t>(dict_ids.size());
  const uint32_t max_id = cardinality == 0 ? 0 : cardinality - 1;
  index.values_ = FixedBitVector(dict_ids, max_id);
  return index;
}

ForwardIndex ForwardIndex::BuildMulti(
    const std::vector<std::vector<uint32_t>>& dict_ids, uint32_t cardinality) {
  ForwardIndex index;
  index.single_value_ = false;
  index.num_docs_ = static_cast<uint32_t>(dict_ids.size());
  std::vector<uint32_t> flat;
  std::vector<uint32_t> offsets;
  offsets.reserve(dict_ids.size() + 1);
  offsets.push_back(0);
  for (const auto& ids : dict_ids) {
    flat.insert(flat.end(), ids.begin(), ids.end());
    offsets.push_back(static_cast<uint32_t>(flat.size()));
  }
  const uint32_t max_id = cardinality == 0 ? 0 : cardinality - 1;
  index.values_ = FixedBitVector(flat, max_id);
  index.offsets_ =
      FixedBitVector(offsets, offsets.empty() ? 0 : offsets.back());
  return index;
}

void ForwardIndex::GetMulti(uint32_t doc, std::vector<uint32_t>* out) const {
  assert(!single_value_);
  out->clear();
  const uint32_t begin = offsets_.Get(doc);
  const uint32_t end = offsets_.Get(doc + 1);
  out->reserve(end - begin);
  for (uint32_t i = begin; i < end; ++i) out->push_back(values_.Get(i));
}

void ForwardIndex::Serialize(ByteWriter* writer) const {
  writer->WriteU8(single_value_ ? 1 : 0);
  writer->WriteU32(num_docs_);
  values_.Serialize(writer);
  if (!single_value_) offsets_.Serialize(writer);
}

Result<ForwardIndex> ForwardIndex::Deserialize(ByteReader* reader) {
  ForwardIndex index;
  PINOT_ASSIGN_OR_RETURN(uint8_t sv, reader->ReadU8());
  index.single_value_ = sv != 0;
  PINOT_ASSIGN_OR_RETURN(index.num_docs_, reader->ReadU32());
  PINOT_ASSIGN_OR_RETURN(index.values_, FixedBitVector::Deserialize(reader));
  if (index.single_value_) {
    if (index.values_.size() != index.num_docs_) {
      return Status::Corruption("forward index value count != num docs");
    }
  } else {
    PINOT_ASSIGN_OR_RETURN(index.offsets_,
                           FixedBitVector::Deserialize(reader));
    if (index.offsets_.size() !=
        static_cast<uint64_t>(index.num_docs_) + 1) {
      return Status::Corruption("forward index offset count != num docs + 1");
    }
    if (index.offsets_.Get(index.num_docs_) != index.values_.size()) {
      return Status::Corruption("forward index offsets exceed value count");
    }
  }
  return index;
}

}  // namespace pinot
