#include "index/inverted_index.h"

namespace pinot {

InvertedIndex InvertedIndex::BuildFromForwardIndex(const ForwardIndex& forward,
                                                   int cardinality) {
  InvertedIndex index;
  // Collect doc lists per dict id, then convert to bitmaps; building via
  // sorted vectors avoids repeated bitmap insertion costs.
  std::vector<std::vector<uint32_t>> postings(cardinality);
  if (forward.single_value()) {
    for (uint32_t doc = 0; doc < forward.num_docs(); ++doc) {
      postings[forward.Get(doc)].push_back(doc);
    }
  } else {
    std::vector<uint32_t> ids;
    for (uint32_t doc = 0; doc < forward.num_docs(); ++doc) {
      forward.GetMulti(doc, &ids);
      for (uint32_t id : ids) postings[id].push_back(doc);
    }
  }
  index.bitmaps_.reserve(cardinality);
  for (auto& docs : postings) {
    RoaringBitmap bm = RoaringBitmap::FromValues(docs);
    bm.RunOptimize();
    index.bitmaps_.push_back(std::move(bm));
  }
  index.RebuildCardinalityPrefix();
  return index;
}

void InvertedIndex::RebuildCardinalityPrefix() {
  cardinality_prefix_.assign(bitmaps_.size() + 1, 0);
  for (size_t i = 0; i < bitmaps_.size(); ++i) {
    cardinality_prefix_[i + 1] =
        cardinality_prefix_[i] + bitmaps_[i].Cardinality();
  }
}

RoaringBitmap InvertedIndex::GetBitmapForRange(int lo, int hi) const {
  std::vector<const RoaringBitmap*> inputs;
  inputs.reserve(hi - lo + 1);
  for (int id = lo; id <= hi; ++id) {
    if (!bitmaps_[id].Empty()) inputs.push_back(&bitmaps_[id]);
  }
  return RoaringBitmap::OrMany(inputs);
}

uint64_t InvertedIndex::SizeInBytes() const {
  uint64_t total = 0;
  for (const auto& bm : bitmaps_) total += bm.SizeInBytes();
  return total;
}

void InvertedIndex::Serialize(ByteWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(bitmaps_.size()));
  for (const auto& bm : bitmaps_) bm.Serialize(writer);
}

Result<InvertedIndex> InvertedIndex::Deserialize(ByteReader* reader) {
  InvertedIndex index;
  PINOT_ASSIGN_OR_RETURN(uint32_t n, reader->ReadU32());
  index.bitmaps_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PINOT_ASSIGN_OR_RETURN(RoaringBitmap bm, RoaringBitmap::Deserialize(reader));
    index.bitmaps_.push_back(std::move(bm));
  }
  index.RebuildCardinalityPrefix();
  return index;
}

Result<SortedIndex> SortedIndex::BuildFromForwardIndex(
    const ForwardIndex& forward, int cardinality) {
  if (!forward.single_value()) {
    return Status::InvalidArgument(
        "sorted index requires a single-value column");
  }
  SortedIndex index;
  index.starts_.assign(cardinality, 0);
  index.ends_.assign(cardinality, 0);
  uint32_t prev_id = 0;
  for (uint32_t doc = 0; doc < forward.num_docs(); ++doc) {
    const uint32_t id = forward.Get(doc);
    if (doc > 0 && id < prev_id) {
      return Status::InvalidArgument("column is not sorted");
    }
    if (doc == 0 || id != prev_id) {
      index.starts_[id] = doc;
    }
    index.ends_[id] = doc + 1;
    prev_id = id;
  }
  return index;
}

void SortedIndex::Serialize(ByteWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(starts_.size()));
  writer->WriteRaw(starts_.data(), starts_.size() * sizeof(uint32_t));
  writer->WriteRaw(ends_.data(), ends_.size() * sizeof(uint32_t));
}

Result<SortedIndex> SortedIndex::Deserialize(ByteReader* reader) {
  SortedIndex index;
  PINOT_ASSIGN_OR_RETURN(uint32_t n, reader->ReadU32());
  index.starts_.resize(n);
  index.ends_.resize(n);
  PINOT_RETURN_NOT_OK(
      reader->ReadRaw(index.starts_.data(), n * sizeof(uint32_t)));
  PINOT_RETURN_NOT_OK(
      reader->ReadRaw(index.ends_.data(), n * sizeof(uint32_t)));
  return index;
}

}  // namespace pinot
