#include <gtest/gtest.h>

#include "cluster/pinot_cluster.h"
#include "common/hash.h"
#include "tests/test_util.h"
#include "workload/workloads.h"

namespace pinot {
namespace {

Schema KeyedSchema() {
  return *Schema::Make({
      FieldSpec::Dimension("memberId", DataType::kLong),
      FieldSpec::Metric("hits", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
}

// Builds one segment per partition with partition metadata and uploads it.
void UploadPartitionedSegments(PinotCluster& cluster, int num_partitions,
                               int rows_per_partition) {
  Controller* leader = cluster.leader_controller();
  for (int p = 0; p < num_partitions; ++p) {
    SegmentBuildConfig build;
    build.table_name = "keyed_OFFLINE";
    build.segment_name = "part_" + std::to_string(p);
    build.partition_id = p;
    build.partition_column = "memberId";
    build.num_partitions = num_partitions;
    SegmentBuilder builder(KeyedSchema(), build);
    int added = 0;
    // Find member ids hashing to partition p.
    for (int64_t member = 0; added < rows_per_partition; ++member) {
      if (KafkaPartition(std::to_string(member), num_partitions) != p) {
        continue;
      }
      Row row;
      row.SetLong("memberId", member).SetLong("hits", 1).SetLong("day", 1);
      ASSERT_TRUE(builder.AddRow(row).ok());
      ++added;
    }
    auto segment = builder.Build();
    ASSERT_TRUE(segment.ok());
    ASSERT_TRUE(
        leader->UploadSegment("keyed_OFFLINE", (*segment)->SerializeToBlob())
            .ok());
  }
}

TEST(BrokerRoutingTest, PartitionAwareQueriesOnlyRelevantServers) {
  PinotClusterOptions options;
  options.num_servers = 4;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();

  TableConfig config;
  config.name = "keyed";
  config.type = TableType::kOffline;
  config.schema = KeyedSchema();
  config.num_replicas = 1;
  config.routing = RoutingStrategy::kPartitionAware;
  config.partition_column = "memberId";
  config.num_partitions = 4;
  ASSERT_TRUE(leader->AddTable(config).ok());
  UploadPartitionedSegments(cluster, 4, 25);

  // A member-keyed query touches exactly one partition's docs.
  // member 0 hashes to some partition; its EQ query must scan at most that
  // partition's 25 docs (total_docs counts only queried segments).
  auto result = cluster.Execute(
      "SELECT count(*) FROM keyed WHERE memberId = 0");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 1);
  EXPECT_EQ(result.total_docs, 25);  // One partition segment only.

  // An unconstrained query still covers everything.
  result = cluster.Execute("SELECT count(*) FROM keyed");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 100);
  EXPECT_EQ(result.total_docs, 100);

  // IN over two members: at most two partitions.
  result = cluster.Execute(
      "SELECT count(*) FROM keyed WHERE memberId IN (0, 1)");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 2);
  EXPECT_LE(result.total_docs, 50);

  // OR across columns disables pruning (conservative), still correct.
  result = cluster.Execute(
      "SELECT count(*) FROM keyed WHERE memberId = 0 OR day = 99");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 1);
  EXPECT_EQ(result.total_docs, 100);
}

TEST(BrokerRoutingTest, GeneratedRoutingCoversAllSegments) {
  PinotClusterOptions options;
  options.num_servers = 6;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();

  TableConfig config;
  config.name = "keyed";
  config.type = TableType::kOffline;
  config.schema = KeyedSchema();
  config.num_replicas = 2;
  config.routing = RoutingStrategy::kGenerated;
  config.target_servers_per_query = 2;
  config.routing_tables_to_generate = 50;
  config.routing_tables_to_keep = 5;
  ASSERT_TRUE(leader->AddTable(config).ok());

  for (int s = 0; s < 12; ++s) {
    SegmentBuildConfig build;
    build.table_name = "keyed_OFFLINE";
    build.segment_name = "seg_" + std::to_string(s);
    SegmentBuilder builder(KeyedSchema(), build);
    for (int i = 0; i < 10; ++i) {
      Row row;
      row.SetLong("memberId", s * 10 + i).SetLong("hits", 1).SetLong("day", 1);
      ASSERT_TRUE(builder.AddRow(row).ok());
    }
    auto segment = builder.Build();
    ASSERT_TRUE(leader
                    ->UploadSegment("keyed_OFFLINE",
                                    (*segment)->SerializeToBlob())
                    .ok());
  }

  // Every query must still see all 120 docs regardless of which generated
  // routing table the broker picks.
  for (int i = 0; i < 20; ++i) {
    auto result = cluster.Execute("SELECT count(*) FROM keyed");
    ASSERT_FALSE(result.partial) << result.error_message;
    ASSERT_EQ(std::get<int64_t>(result.aggregates[0]), 120);
  }
}

TEST(BrokerRoutingTest, RoutingAdaptsToServerFailure) {
  PinotClusterOptions options;
  options.num_servers = 3;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();
  TableConfig config;
  config.name = "keyed";
  config.type = TableType::kOffline;
  config.schema = KeyedSchema();
  config.num_replicas = 2;
  ASSERT_TRUE(leader->AddTable(config).ok());
  for (int s = 0; s < 3; ++s) {
    SegmentBuildConfig build;
    build.table_name = "keyed_OFFLINE";
    build.segment_name = "seg_" + std::to_string(s);
    SegmentBuilder builder(KeyedSchema(), build);
    Row row;
    row.SetLong("memberId", s).SetLong("hits", 1).SetLong("day", 1);
    ASSERT_TRUE(builder.AddRow(row).ok());
    auto segment = builder.Build();
    ASSERT_TRUE(leader
                    ->UploadSegment("keyed_OFFLINE",
                                    (*segment)->SerializeToBlob())
                    .ok());
  }
  ASSERT_EQ(std::get<int64_t>(
                cluster.Execute("SELECT count(*) FROM keyed").aggregates[0]),
            3);
  // Kill a server: the external-view watch rebuilds routing over the
  // surviving replicas and results stay complete.
  cluster.KillServer(1);
  for (int i = 0; i < 10; ++i) {
    auto result = cluster.Execute("SELECT count(*) FROM keyed");
    ASSERT_FALSE(result.partial) << result.error_message;
    ASSERT_EQ(std::get<int64_t>(result.aggregates[0]), 3);
    // The external-view watch already removed the dead server, so the
    // queries route cleanly without needing the in-flight failover path.
    EXPECT_EQ(result.trace.retries, 0) << result.trace.ToString();
    for (const auto& event : result.trace.events) {
      EXPECT_NE(event.server, "server-1");
    }
  }
}

TEST(BrokerRoutingTest, ConsumerResetsAfterRetentionLag) {
  SimulatedClock clock(1000000);
  PinotClusterOptions options;
  options.clock = &clock;
  options.num_servers = 1;
  PinotCluster cluster(options);
  StreamTopic* topic = cluster.streams()->GetOrCreateTopic("keyed", 1);

  // Produce 10 early events, then create the realtime table. Before the
  // consumer ever runs, age the early events past retention and produce
  // fresh ones.
  for (int i = 0; i < 10; ++i) {
    Row row;
    row.SetLong("memberId", i).SetLong("hits", 1).SetLong("day", 1);
    topic->ProduceToPartition(0, "k", row);
  }
  TableConfig config;
  config.name = "keyed";
  config.type = TableType::kRealtime;
  config.schema = KeyedSchema();
  config.realtime.topic = "keyed";
  config.realtime.flush_threshold_rows = 1000;
  ASSERT_TRUE(cluster.leader_controller()->AddTable(config).ok());

  clock.AdvanceMillis(100000);
  for (int i = 0; i < 5; ++i) {
    Row row;
    row.SetLong("memberId", 100 + i).SetLong("hits", 1).SetLong("day", 2);
    topic->ProduceToPartition(0, "k", row);
  }
  topic->EnforceRetention(50000);  // Drops the 10 early events.
  ASSERT_EQ(topic->EarliestOffset(0), 10);

  // The consumer starts at offset 0 (recorded at table creation), hits
  // OutOfRange, resets to the earliest retained offset, and indexes the
  // fresh events.
  cluster.ProcessRealtimeTicks(2);
  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 5);
}

}  // namespace
}  // namespace pinot
