#include "cluster/pinot_cluster.h"

namespace pinot {

PinotCluster::PinotCluster(PinotClusterOptions options)
    : streams_(options.clock != nullptr ? options.clock
                                        : RealClock::Instance()),
      slo_(options.slo) {
  ctx_.clock =
      options.clock != nullptr ? options.clock : RealClock::Instance();
  ctx_.cluster = &cluster_;
  ctx_.property_store = &property_store_;
  ctx_.object_store = &object_store_;
  ctx_.streams = &streams_;
  ctx_.metrics = &metrics_;
  ctx_.leader_controller = [this]() -> ControllerApi* {
    return leader_controller();
  };
  ctx_.server_endpoint = [this](const std::string& id) -> QueryServerApi* {
    for (auto& server : servers_) {
      if (server->id() == id) return server.get();
    }
    return nullptr;
  };

  for (int i = 0; i < options.num_controllers; ++i) {
    controllers_.push_back(std::make_unique<Controller>(
        "controller-" + std::to_string(i), ctx_, options.controller_options));
    controllers_.back()->Start();
  }
  for (int i = 0; i < options.num_servers; ++i) {
    servers_.push_back(std::make_unique<Server>(
        "server-" + std::to_string(i), ctx_, options.server_options));
    servers_.back()->Start();
  }
  for (int i = 0; i < options.num_brokers; ++i) {
    Broker::Options broker_options = options.broker_options;
    broker_options.seed += static_cast<uint64_t>(i) * 7919;
    brokers_.push_back(std::make_unique<Broker>(
        "broker-" + std::to_string(i), ctx_, broker_options));
    brokers_.back()->Start();
  }
  for (int i = 0; i < options.num_minions; ++i) {
    minions_.push_back(std::make_unique<Minion>(
        "minion-" + std::to_string(i), ctx_, controllers_[0].get()));
    minions_.back()->Start();
  }
}

PinotCluster::~PinotCluster() = default;

HealthReport PinotCluster::EvaluateHealth() const {
  HealthInputs inputs;
  inputs.registry = &metrics_;
  inputs.cluster = &cluster_;
  const std::optional<SnapshotDelta> window = snapshots_.LatestDelta();
  if (window.has_value()) inputs.window = &*window;
  return pinot::EvaluateHealth(inputs, slo_);
}

Controller* PinotCluster::leader_controller() {
  const std::string leader = cluster_.leader();
  for (auto& controller : controllers_) {
    if (controller->id() == leader) return controller.get();
  }
  return nullptr;
}

QueryResult PinotCluster::Execute(const std::string& pql) {
  return brokers_[0]->Execute(pql);
}

int PinotCluster::ProcessRealtimeTicks(int rounds) {
  int indexed = 0;
  for (int round = 0; round < rounds; ++round) {
    for (auto& server : servers_) {
      if (cluster_.IsInstanceAlive(server->id())) {
        indexed += server->ProcessRealtimeTick();
      }
    }
  }
  return indexed;
}

void PinotCluster::DrainRealtime(int max_rounds) {
  for (int round = 0; round < max_rounds; ++round) {
    if (ProcessRealtimeTicks(1) == 0) {
      // One extra quiescent round lets completion-protocol polls settle.
      if (ProcessRealtimeTicks(1) == 0) return;
    }
  }
}

void PinotCluster::KillServer(int i) {
  cluster_.SetInstanceAlive(servers_[i]->id(), false);
}

void PinotCluster::ReviveServer(int i) {
  cluster_.SetInstanceAlive(servers_[i]->id(), true);
}

void PinotCluster::PartitionServer(int i) {
  cluster_.SetInstanceReachable(servers_[i]->id(), false);
}

void PinotCluster::HealServer(int i) {
  cluster_.SetInstanceReachable(servers_[i]->id(), true);
}

void PinotCluster::KillController(int i) {
  cluster_.SetInstanceAlive(controllers_[i]->id(), false);
}

void PinotCluster::ReviveController(int i) {
  cluster_.SetInstanceAlive(controllers_[i]->id(), true);
}

}  // namespace pinot
