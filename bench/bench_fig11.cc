// Figure 11: comparison of indexing techniques on the anomaly-detection
// dataset — latency vs query rate for Druid(-like), Pinot without indexes,
// Pinot with inverted indexes, and Pinot with the star-tree index.
//
// Expected shape (paper): druid-like and no-index saturate first, inverted
// indexes roughly double Pinot's scalability, and the star-tree gives the
// largest gain.
//
// A second phase drives the same dataset through a full broker+server
// cluster past its saturation knee, once with broker load shedding off and
// once with it on. With shedding the broker rejects excess queries quickly
// (throttled result + retry-after) instead of queueing them, so latency of
// the work it does accept degrades gracefully instead of collapsing.

#include <chrono>

#include "baseline/druid_like.h"
#include "bench/bench_util.h"
#include "cluster/pinot_cluster.h"
#include "metrics/metrics.h"
#include "query/result.h"
#include "trace/slow_query_log.h"
#include "trace/trace.h"

namespace pinot {
namespace bench {
namespace {

struct Engine {
  std::string name;
  std::vector<std::shared_ptr<SegmentInterface>> segments;
};

uint64_t TotalBytes(const Engine& engine) {
  uint64_t total = 0;
  for (const auto& segment : engine.segments) {
    auto immutable = std::dynamic_pointer_cast<const ImmutableSegment>(segment);
    if (immutable != nullptr) total += immutable->SizeInBytes();
  }
  return total;
}

// Stands up a single-server cluster holding the star-tree segments for the
// broker saturation phase. `max_inflight` > 0 arms broker load shedding.
std::unique_ptr<PinotCluster> MakeBrokerCluster(const Workload& workload,
                                                int max_inflight) {
  PinotClusterOptions options;
  options.num_servers = 1;
  options.num_brokers = 1;
  options.broker_options.max_inflight_queries = max_inflight;
  options.broker_options.hedging_enabled = false;  // isolate shedding
  options.server_options.num_query_threads = 2;
  options.server_options.artificial_latency_micros = 1000;
  auto cluster = std::make_unique<PinotCluster>(options);

  TableConfig config;
  config.name = workload.name;
  config.type = TableType::kOffline;
  config.schema = workload.schema;
  config.num_replicas = 1;
  Controller* leader = cluster->leader_controller();
  if (!leader->AddTable(config).ok()) std::abort();

  SegmentBuildConfig build = workload.pinot_config;
  build.table_name = config.PhysicalName();
  constexpr int kShedSegments = 4;
  for (int s = 0; s < kShedSegments; ++s) {
    SegmentBuildConfig segment_build = build;
    segment_build.segment_name = "shed_" + std::to_string(s);
    SegmentBuilder builder(workload.schema, segment_build);
    for (size_t i = s; i < workload.rows.size(); i += kShedSegments) {
      if (!builder.AddRow(workload.rows[i]).ok()) std::abort();
    }
    auto segment = builder.Build();
    if (!segment.ok()) std::abort();
    if (!leader
             ->UploadSegment(config.PhysicalName(),
                             (*segment)->SerializeToBlob())
             .ok()) {
      std::abort();
    }
  }
  return cluster;
}

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  Workload workload = MakeAnomalyWorkload(options.workload_options());
  std::vector<Query> queries = ParseQueries(workload);

  std::vector<Engine> engines;
  engines.push_back({"druid-like",
                     BuildSegments(workload, DruidLikeBuildConfig(workload.schema),
                                   options.num_segments, "druid")});
  engines.push_back({"pinot-no-index",
                     BuildSegments(workload, SegmentBuildConfig{},
                                   options.num_segments, "noidx")});
  SegmentBuildConfig inverted_only = workload.pinot_config;
  inverted_only.star_tree = StarTreeConfig{};
  engines.push_back({"pinot-inverted",
                     BuildSegments(workload, inverted_only,
                                   options.num_segments, "inv")});
  engines.push_back({"pinot-star-tree",
                     BuildSegments(workload, workload.pinot_config,
                                   options.num_segments, "star")});

  std::printf("# dataset: %u rows, %d segments, %zu sampled queries\n",
              options.rows, options.num_segments, queries.size());
  for (const auto& engine : engines) {
    std::printf("# %-18s segment bytes: %10lu\n", engine.name.c_str(),
                static_cast<unsigned long>(TotalBytes(engine)));
  }
  PrintQpsHeader("Figure 11",
                 "indexing techniques on the anomaly detection dataset");

  MetricsRegistry metrics;
  BenchJsonWriter json("fig11", options.json_path);
  // Worst-3 traces across all engines and sweep points, printed at exit so
  // a saturating configuration can be attributed to a phase/segment.
  SlowQueryLog slow_log(SlowQueryLog::Options{/*threshold_millis=*/0.0,
                                              /*capacity=*/3});
  for (const auto& engine : engines) {
    Histogram* latency = metrics.GetHistogram("bench_query_latency_ms",
                                              {{"engine", engine.name}});
    for (double qps : options.qps_sweep) {
      QpsPoint point = RunQpsPoint(
          [&](int i) {
            const auto start = std::chrono::steady_clock::now();
            TraceSpan root = TraceSpan::Open("bench:" + engine.name);
            PartialResult partial =
                ExecuteQueryOnSegments(engine.segments, queries[i],
                                       /*pool=*/nullptr, &root);
            QueryResult result =
                ReduceToFinalResult(queries[i], std::move(partial));
            (void)result;
            root.Close();
            const double millis =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count() /
                1000.0;
            latency->Observe(millis);
            slow_log.Record(millis, "anomaly",
                            engine.name + ": " + queries[i].ToString(), root,
                            result.receipt.ToString());
          },
          static_cast<int>(queries.size()), qps, options.client_threads,
          options.duration_ms);
      PrintQpsPoint(engine.name, point);
      json.Add(engine.name, point);
      // Stop sweeping a config once it is hopelessly saturated; the paper
      // plots cut off the same way.
      if (point.avg_ms > 250) break;
    }
  }

  // --- broker saturation phase: load shedding past the knee --------------
  // Past ~2000 qps the single-server cluster saturates. Without shedding
  // queued queries drag every client down; with shedding the broker turns
  // the excess away immediately (throttled + retry-after) and the accepted
  // work keeps bounded latency.
  std::printf("\n");
  PrintQpsHeader("Figure 11 (broker phase)",
                 "saturation behaviour with and without load shedding");
  struct ShedSetup {
    std::string name;
    int max_inflight;
  };
  const std::vector<ShedSetup> shed_setups = {
      {"broker-no-shed", 0},
      {"broker-shed", std::max(2, options.client_threads / 2)},
  };
  const std::vector<double> shed_sweep = {250, 500, 1000, 2000, 4000, 8000};
  for (const auto& setup : shed_setups) {
    auto cluster = MakeBrokerCluster(workload, setup.max_inflight);
    Broker* broker = cluster->broker(0);
    std::atomic<uint64_t> shed{0};
    // Bracket the sweep with snapshots so the exit health report carries
    // windowed rates (qps, shed rate) over the whole saturation run.
    cluster->TakeMetricsSnapshot();
    for (double qps : shed_sweep) {
      QpsPoint point = RunQpsPoint(
          [&](int i) {
            QueryResult result = broker->Execute(workload.queries[i]);
            if (result.throttled) shed.fetch_add(1);
          },
          static_cast<int>(workload.queries.size()), qps,
          options.client_threads, options.duration_ms);
      PrintQpsPoint(setup.name, point);
      json.Add(setup.name, point);
      if (point.avg_ms > 500) break;
    }
    std::printf("# %-18s throttled queries: %lu\n", setup.name.c_str(),
                static_cast<unsigned long>(shed.load()));
    cluster->TakeMetricsSnapshot();
    std::printf("# --- health dump (%s) ---\n%s", setup.name.c_str(),
                cluster->HealthDump().c_str());
  }

  std::printf("\n# --- slow query log (top 3) ---\n%s",
              slow_log.Dump(3).c_str());
  std::printf("\n# --- metrics dump ---\n%s", metrics.Dump().c_str());
  if (!json.Write()) return 1;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pinot

int main(int argc, char** argv) { return pinot::bench::Main(argc, argv); }
