#ifndef PINOT_CLUSTER_PROPERTY_STORE_H_
#define PINOT_CLUSTER_PROPERTY_STORE_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace pinot {

/// In-process reproduction of the Zookeeper-backed metadata store (paper
/// section 3.2: "Zookeeper is used as a persistent metadata store and as
/// the communication mechanism between nodes in the cluster"). Provides a
/// versioned path -> value map with compare-and-set and prefix watches;
/// watch callbacks fire synchronously after each mutation, outside the
/// store lock.
class PropertyStore {
 public:
  using Watcher = std::function<void(const std::string& path)>;

  /// Creates or overwrites `path`, bumping its version.
  void Set(const std::string& path, std::string value);

  Result<std::string> Get(const std::string& path) const;

  /// Value plus its version for optimistic concurrency.
  Result<std::pair<std::string, int64_t>> GetWithVersion(
      const std::string& path) const;

  /// Writes only when the current version matches `expected_version`
  /// (use -1 to require the path not exist). Returns FailedPrecondition on
  /// mismatch.
  Status CompareAndSet(const std::string& path, int64_t expected_version,
                       std::string value);

  Status Delete(const std::string& path);

  bool Exists(const std::string& path) const;

  /// Paths that start with `prefix`, sorted.
  std::vector<std::string> ListPrefix(const std::string& prefix) const;

  /// Registers a watcher over a path prefix; returns a handle for
  /// UnregisterWatch. The watcher fires on every Set/CompareAndSet/Delete
  /// under the prefix.
  int RegisterWatch(const std::string& prefix, Watcher watcher);
  void UnregisterWatch(int handle);

 private:
  struct Entry {
    std::string value;
    int64_t version = 0;
  };
  struct Watch {
    int handle;
    std::string prefix;
    Watcher watcher;
  };

  void NotifyWatchers(const std::string& path);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::vector<Watch> watches_;
  int next_watch_handle_ = 1;
};

}  // namespace pinot

#endif  // PINOT_CLUSTER_PROPERTY_STORE_H_
