#include <gtest/gtest.h>

#include "cluster/pinot_cluster.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using test::AnalyticsRows;
using test::AnalyticsSchema;
using test::BuildAnalyticsSegment;
using test::ToRow;

class RealtimeIntegrationTest : public ::testing::Test {
 protected:
  RealtimeIntegrationTest() : clock_(1000) {
    PinotClusterOptions options;
    options.clock = &clock_;
    options.num_servers = 3;
    options.controller_options.completion_max_wait_millis = 0;  // Decide fast.
    cluster_ = std::make_unique<PinotCluster>(options);
  }

  TableConfig RealtimeConfig(int replicas, int partitions,
                             int64_t flush_rows = 8) {
    TableConfig config;
    config.name = "analytics";
    config.type = TableType::kRealtime;
    config.schema = AnalyticsSchema();
    config.num_replicas = replicas;
    config.realtime.topic = "analytics-events";
    config.realtime.num_partitions = partitions;
    config.realtime.flush_threshold_rows = flush_rows;
    config.realtime.flush_threshold_millis = 1LL << 40;
    return config;
  }

  StreamTopic* CreateTopic(int partitions) {
    return cluster_->streams()->GetOrCreateTopic("analytics-events",
                                                 partitions);
  }

  void ProduceFixture(StreamTopic* topic, int copies = 1) {
    for (int c = 0; c < copies; ++c) {
      for (const auto& row : AnalyticsRows()) {
        topic->Produce(std::to_string(row.member_id), ToRow(row));
      }
    }
  }

  SimulatedClock clock_;
  std::unique_ptr<PinotCluster> cluster_;
};

TEST_F(RealtimeIntegrationTest, ConsumesAndIsQueryableBeforeCommit) {
  StreamTopic* topic = CreateTopic(1);
  ASSERT_TRUE(cluster_->leader_controller()
                  ->AddTable(RealtimeConfig(1, 1, /*flush_rows=*/1000))
                  .ok());
  ProduceFixture(topic);  // 12 rows, below the flush threshold.
  cluster_->ProcessRealtimeTicks(2);

  // Data is queryable from the consuming (in-memory) segment.
  auto result = cluster_->Execute("SELECT count(*) FROM analytics");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 12);

  result = cluster_->Execute(
      "SELECT sum(impressions) FROM analytics WHERE country = 'us'");
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[0]), 380);

  // Range predicates work against the unsorted realtime dictionary.
  result = cluster_->Execute(
      "SELECT count(*) FROM analytics WHERE day BETWEEN 101 AND 102");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 6);
}

TEST_F(RealtimeIntegrationTest, SegmentCommitsAndRollsOver) {
  StreamTopic* topic = CreateTopic(1);
  ASSERT_TRUE(cluster_->leader_controller()
                  ->AddTable(RealtimeConfig(1, 1, /*flush_rows=*/12))
                  .ok());
  ProduceFixture(topic, /*copies=*/2);  // 24 rows -> two full segments.
  cluster_->DrainRealtime();

  // Both segments committed; a third consuming segment is open.
  const TableView view =
      cluster_->cluster_manager()->GetExternalView("analytics_REALTIME");
  int online = 0, consuming = 0;
  for (const auto& [segment, states] : view) {
    for (const auto& [instance, state] : states) {
      if (state == SegmentState::kOnline) ++online;
      if (state == SegmentState::kConsuming) ++consuming;
    }
  }
  EXPECT_EQ(online, 2);
  EXPECT_EQ(consuming, 1);

  // The committed blobs are in the object store.
  EXPECT_TRUE(cluster_->object_store()->Exists(
      "segments/analytics_REALTIME/analytics_REALTIME__0__0"));
  EXPECT_TRUE(cluster_->object_store()->Exists(
      "segments/analytics_REALTIME/analytics_REALTIME__0__1"));

  auto result = cluster_->Execute("SELECT count(*) FROM analytics");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 24);
}

TEST_F(RealtimeIntegrationTest, ReplicasConvergeToIdenticalSegments) {
  StreamTopic* topic = CreateTopic(1);
  ASSERT_TRUE(cluster_->leader_controller()
                  ->AddTable(RealtimeConfig(3, 1, /*flush_rows=*/12))
                  .ok());
  ProduceFixture(topic);
  cluster_->DrainRealtime();

  // All three replicas committed/kept the exact same segment bytes-wise:
  // compare their hosted segment contents by querying each server alone.
  const std::string segment = "analytics_REALTIME__0__0";
  int replicas_online = 0;
  for (int i = 0; i < cluster_->num_servers(); ++i) {
    const auto hosted =
        cluster_->server(i)->HostedSegments("analytics_REALTIME");
    for (const auto& s : hosted) {
      if (s == segment) ++replicas_online;
    }
  }
  EXPECT_EQ(replicas_online, 3);

  auto result = cluster_->Execute(
      "SELECT sum(impressions), sum(clicks) FROM analytics");
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[0]), 780);
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[1]), 75);
}

TEST_F(RealtimeIntegrationTest, MultiplePartitions) {
  StreamTopic* topic = CreateTopic(4);
  ASSERT_TRUE(cluster_->leader_controller()
                  ->AddTable(RealtimeConfig(1, 4, /*flush_rows=*/1000))
                  .ok());
  ProduceFixture(topic, /*copies=*/3);  // 36 rows across 4 partitions.
  cluster_->ProcessRealtimeTicks(3);

  auto result = cluster_->Execute("SELECT count(*) FROM analytics");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 36);

  // Same member id always lands in the same partition -> per-member counts
  // are intact.
  result = cluster_->Execute(
      "SELECT count(*) FROM analytics WHERE memberId = 1 GROUP BY memberId "
      "TOP 5");
  ASSERT_EQ(result.group_rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(result.group_rows[0].values[0]), 12);
}

TEST_F(RealtimeIntegrationTest, HybridTableMergesOfflineAndRealtime) {
  // Offline data covers days 100..103; realtime covers 103..105. The time
  // boundary (max offline day = 103) must route day<=102 to offline and
  // day>=103 to realtime with no double counting (paper Figure 6).
  StreamTopic* topic = CreateTopic(1);
  Controller* leader = cluster_->leader_controller();

  TableConfig offline;
  offline.name = "analytics";
  offline.type = TableType::kOffline;
  offline.schema = AnalyticsSchema();
  offline.num_replicas = 1;
  ASSERT_TRUE(leader->AddTable(offline).ok());
  {
    SegmentBuildConfig build;
    build.table_name = "analytics_OFFLINE";
    build.segment_name = "offline0";
    auto segment = BuildAnalyticsSegment(build);  // Days 100..103, 12 rows.
    ASSERT_TRUE(
        leader->UploadSegment("analytics_OFFLINE", segment->SerializeToBlob())
            .ok());
  }

  ASSERT_TRUE(leader->AddTable(RealtimeConfig(1, 1, 1000)).ok());
  // Realtime rows: day 103 overlaps offline; days 104-105 are fresh.
  for (int64_t day : {103, 103, 104, 104, 105}) {
    test::AnalyticsRow row{"us", "chrome", 9, {}, 1000, 7, day};
    topic->Produce("9", ToRow(row));
  }
  cluster_->ProcessRealtimeTicks(2);

  // Count: 12 offline rows total, but 3 of them are day 103 (served by
  // realtime side which has 2 day-103 rows) -> 9 offline + 5 realtime = 14.
  auto result = cluster_->Execute("SELECT count(*) FROM analytics");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 14);

  // A filter that targets only fresh data.
  result = cluster_->Execute(
      "SELECT sum(impressions) FROM analytics WHERE day >= 104");
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[0]), 3000);

  // A filter fully before the boundary only touches offline data.
  result =
      cluster_->Execute("SELECT count(*) FROM analytics WHERE day <= 102");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 9);
}

TEST_F(RealtimeIntegrationTest, CommittedSegmentsGetTableIndexes) {
  StreamTopic* topic = CreateTopic(1);
  TableConfig config = RealtimeConfig(1, 1, /*flush_rows=*/12);
  config.sort_columns = {"memberId"};
  config.inverted_index_columns = {"browser"};
  ASSERT_TRUE(cluster_->leader_controller()->AddTable(config).ok());
  ProduceFixture(topic);
  cluster_->DrainRealtime();

  // Load the committed blob and check the indexes were generated at seal
  // time from the table config.
  auto blob = cluster_->object_store()->Get(
      "segments/analytics_REALTIME/analytics_REALTIME__0__0");
  ASSERT_TRUE(blob.ok());
  auto segment = ImmutableSegment::DeserializeFromBlob(*blob);
  ASSERT_TRUE(segment.ok());
  EXPECT_EQ((*segment)->metadata().sorted_column, "memberId");
  EXPECT_NE((*segment)->GetColumn("memberId")->sorted_index(), nullptr);
  EXPECT_NE((*segment)->GetColumn("browser")->inverted_index(), nullptr);
  EXPECT_EQ((*segment)->num_docs(), 12u);
}

TEST_F(RealtimeIntegrationTest, ConsumerSurvivesLeaderFailover) {
  StreamTopic* topic = CreateTopic(1);
  PinotClusterOptions options;
  options.clock = &clock_;
  options.num_controllers = 2;
  options.num_servers = 1;
  options.controller_options.completion_max_wait_millis = 0;
  PinotCluster cluster(options);
  // Use the outer topic registry's... this cluster has its own streams.
  StreamTopic* local_topic =
      cluster.streams()->GetOrCreateTopic("analytics-events", 1);
  (void)topic;

  ASSERT_TRUE(cluster.leader_controller()
                  ->AddTable(RealtimeConfig(1, 1, /*flush_rows=*/12))
                  .ok());
  for (const auto& row : AnalyticsRows()) {
    local_topic->Produce(std::to_string(row.member_id), ToRow(row));
  }
  // Let the server reach the end criteria, then fail the leader before it
  // can commit.
  cluster.KillController(0);
  ASSERT_EQ(cluster.leader_controller()->id(), "controller-1");
  cluster.DrainRealtime();

  // The new leader's blank FSM still drives the commit to completion.
  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 12);
  EXPECT_TRUE(cluster.object_store()->Exists(
      "segments/analytics_REALTIME/analytics_REALTIME__0__0"));
}

TEST_F(RealtimeIntegrationTest, IngestionMetricsConvergeAfterDrain) {
  StreamTopic* topic = CreateTopic(1);
  ASSERT_TRUE(cluster_->leader_controller()
                  ->AddTable(RealtimeConfig(1, 1, /*flush_rows=*/12))
                  .ok());
  ProduceFixture(topic, /*copies=*/2);  // 24 rows -> two committed segments.
  cluster_->DrainRealtime();

  MetricsRegistry* metrics = cluster_->metrics();
  const MetricLabels table = {{"table", "analytics_REALTIME"}};
  // Every produced row was indexed exactly once (single replica).
  EXPECT_EQ(metrics->CounterValue("realtime_rows_indexed_total", table), 24u);
  // After the drain the consumer caught up with the stream head.
  EXPECT_DOUBLE_EQ(
      metrics->GaugeValue("realtime_consumption_lag",
                          {{"table", "analytics_REALTIME"},
                           {"partition", "0"}}),
      0.0);
  // Two segments sealed, each with a recorded duration, and two commits
  // accepted by the controller.
  EXPECT_EQ(metrics->CounterValue("realtime_flush_total", table), 2u);
  const Histogram* flush =
      metrics->FindHistogram("realtime_flush_duration_ms", table);
  ASSERT_NE(flush, nullptr);
  EXPECT_EQ(flush->Count(), 2u);
  EXPECT_EQ(metrics->CounterValue("completion_commits_total", table), 2u);
  EXPECT_GE(metrics->CounterValue("completion_instructions_total",
                                  {{"instruction", "COMMIT"}}),
            2u);

  // The text dump carries the zeroed lag series (labels are sorted).
  const std::string dump = cluster_->MetricsDump();
  EXPECT_NE(dump.find("realtime_consumption_lag{partition=\"0\","
                      "table=\"analytics_REALTIME\"} 0"),
            std::string::npos)
      << dump;
}

TEST_F(RealtimeIntegrationTest, SealedSegmentMatchesRawData) {
  // Property: query results before and after the consuming->committed
  // transition are identical.
  StreamTopic* topic = CreateTopic(1);
  ASSERT_TRUE(cluster_->leader_controller()
                  ->AddTable(RealtimeConfig(1, 1, /*flush_rows=*/12))
                  .ok());
  ProduceFixture(topic);

  // Tick just enough to index all rows but stay below the threshold check:
  // first tick consumes 12 rows and runs the completion protocol, which
  // commits immediately (single replica). So compare against the baseline
  // segment instead.
  cluster_->DrainRealtime();
  auto baseline = BuildAnalyticsSegment();
  for (const std::string pql : {
           "SELECT sum(impressions) FROM analytics GROUP BY country TOP 10",
           "SELECT distinctcount(memberId) FROM analytics",
           "SELECT count(*) FROM analytics WHERE tags = 'a'",
           "SELECT min(clicks), max(clicks), avg(clicks) FROM analytics",
       }) {
    auto from_cluster = cluster_->Execute(pql);
    auto expected = test::RunPql(baseline, pql);
    ASSERT_FALSE(from_cluster.partial) << pql;
    ASSERT_EQ(from_cluster.aggregates.size(), expected.aggregates.size());
    for (size_t i = 0; i < expected.aggregates.size(); ++i) {
      EXPECT_EQ(ValueToString(from_cluster.aggregates[i]),
                ValueToString(expected.aggregates[i]))
          << pql;
    }
    ASSERT_EQ(from_cluster.group_rows.size(), expected.group_rows.size());
    for (size_t g = 0; g < expected.group_rows.size(); ++g) {
      EXPECT_EQ(ValueToString(from_cluster.group_rows[g].keys[0]),
                ValueToString(expected.group_rows[g].keys[0]));
    }
  }
}

}  // namespace
}  // namespace pinot
