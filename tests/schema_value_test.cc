#include <gtest/gtest.h>

#include "cluster/cluster_context.h"
#include "cluster/table_config.h"
#include "data/schema.h"
#include "data/value.h"

namespace pinot {
namespace {

TEST(ValueTest, ToString) {
  EXPECT_EQ(ValueToString(Value{}), "null");
  EXPECT_EQ(ValueToString(Value{int64_t{-5}}), "-5");
  EXPECT_EQ(ValueToString(Value{std::string("abc")}), "abc");
  EXPECT_EQ(ValueToString(Value{std::vector<int64_t>{1, 2}}), "[1,2]");
  EXPECT_EQ(ValueToString(Value{std::vector<std::string>{"a"}}), "[a]");
}

TEST(ValueTest, ToDouble) {
  EXPECT_DOUBLE_EQ(ValueToDouble(Value{int64_t{7}}), 7.0);
  EXPECT_DOUBLE_EQ(ValueToDouble(Value{2.5}), 2.5);
  EXPECT_DOUBLE_EQ(ValueToDouble(Value{std::string("x")}), 0.0);
  EXPECT_DOUBLE_EQ(ValueToDouble(Value{}), 0.0);
}

TEST(ValueTest, SerializeRoundTripAllAlternatives) {
  const std::vector<Value> values = {
      Value{},
      Value{int64_t{-42}},
      Value{3.25},
      Value{std::string("hello")},
      Value{std::vector<int64_t>{1, -2, 3}},
      Value{std::vector<double>{0.5, -0.5}},
      Value{std::vector<std::string>{"a", "", "c"}},
  };
  ByteWriter writer;
  for (const auto& v : values) WriteValue(v, &writer);
  ByteReader reader(writer.buffer());
  for (const auto& v : values) {
    auto restored = ReadValue(&reader);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored->index(), v.index());
    EXPECT_EQ(ValueToString(*restored), ValueToString(v));
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SchemaTest, ValidationRules) {
  // Duplicate names.
  EXPECT_FALSE(Schema::Make({FieldSpec::Dimension("a", DataType::kLong),
                             FieldSpec::Dimension("a", DataType::kLong)})
                   .ok());
  // Two time columns.
  EXPECT_FALSE(
      Schema::Make({FieldSpec::Time("t1"), FieldSpec::Time("t2")}).ok());
  // String time column.
  EXPECT_FALSE(
      Schema::Make({FieldSpec::Time("t", DataType::kString)}).ok());
  // String metric.
  EXPECT_FALSE(
      Schema::Make({FieldSpec::Metric("m", DataType::kString)}).ok());
  // Multi-value metric.
  {
    FieldSpec metric = FieldSpec::Metric("m", DataType::kLong);
    metric.single_value = false;
    EXPECT_FALSE(Schema::Make({metric}).ok());
  }
  // Empty name.
  EXPECT_FALSE(Schema::Make({FieldSpec::Dimension("", DataType::kLong)}).ok());
}

TEST(SchemaTest, LookupAndTimeColumn) {
  auto schema = Schema::Make({FieldSpec::Dimension("d", DataType::kString),
                              FieldSpec::Metric("m", DataType::kLong),
                              FieldSpec::Time("t")});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_fields(), 3);
  EXPECT_EQ(schema->IndexOf("m"), 1);
  EXPECT_EQ(schema->IndexOf("nope"), -1);
  EXPECT_TRUE(schema->HasTimeColumn());
  EXPECT_EQ(schema->time_column(), "t");
  EXPECT_EQ(schema->FieldNames(),
            (std::vector<std::string>{"d", "m", "t"}));
}

TEST(SchemaTest, AddFieldEvolution) {
  auto schema = Schema::Make({FieldSpec::Dimension("d", DataType::kString)});
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->AddField(FieldSpec::Metric("m", DataType::kLong)).ok());
  EXPECT_EQ(schema->num_fields(), 2);
  // Duplicate rejected.
  EXPECT_FALSE(schema->AddField(FieldSpec::Dimension("d", DataType::kLong)).ok());
  // Second time column rejected.
  EXPECT_TRUE(schema->AddField(FieldSpec::Time("t")).ok());
  EXPECT_FALSE(schema->AddField(FieldSpec::Time("t2")).ok());
}

TEST(SchemaTest, EffectiveDefaults) {
  FieldSpec with_default = FieldSpec::Dimension("d", DataType::kString);
  with_default.default_value = std::string("unknown");
  FieldSpec mv = FieldSpec::Dimension("tags", DataType::kString, false);
  auto schema = Schema::Make({with_default, mv,
                              FieldSpec::Metric("m", DataType::kDouble)});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(std::get<std::string>(schema->EffectiveDefault(0)), "unknown");
  EXPECT_TRUE(std::get<std::vector<std::string>>(schema->EffectiveDefault(1))
                  .empty());
  EXPECT_DOUBLE_EQ(std::get<double>(schema->EffectiveDefault(2)), 0.0);
}

TEST(SchemaTest, SerializeRoundTrip) {
  FieldSpec with_default = FieldSpec::Dimension("d", DataType::kString);
  with_default.default_value = std::string("x");
  auto schema = Schema::Make({with_default,
                              FieldSpec::Dimension("mv", DataType::kLong, false),
                              FieldSpec::Metric("m", DataType::kFloat),
                              FieldSpec::Time("t", DataType::kInt)});
  ASSERT_TRUE(schema.ok());
  ByteWriter writer;
  schema->Serialize(&writer);
  ByteReader reader(writer.buffer());
  auto restored = Schema::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_fields(), 4);
  EXPECT_EQ(restored->field(0).name, "d");
  EXPECT_EQ(std::get<std::string>(restored->field(0).default_value), "x");
  EXPECT_FALSE(restored->field(1).single_value);
  EXPECT_EQ(restored->field(2).type, DataType::kFloat);
  EXPECT_EQ(restored->time_column(), "t");
}

TEST(TableConfigTest, SerializeRoundTrip) {
  TableConfig config;
  config.name = "events";
  config.type = TableType::kRealtime;
  config.schema = *Schema::Make({FieldSpec::Dimension("d", DataType::kString),
                                 FieldSpec::Time("t")});
  config.num_replicas = 3;
  config.server_tenant = "gold";
  config.sort_columns = {"d"};
  config.inverted_index_columns = {"d"};
  config.star_tree.dimensions = {"d", "t"};
  config.star_tree.metrics = {};
  config.star_tree.max_leaf_records = 77;
  config.retention_time_units = 30;
  config.time_unit_millis = 3600000;
  config.quota_bytes = 1 << 20;
  config.routing = RoutingStrategy::kPartitionAware;
  config.target_servers_per_query = 5;
  config.partition_column = "d";
  config.num_partitions = 16;
  config.realtime.topic = "events";
  config.realtime.num_partitions = 16;
  config.realtime.flush_threshold_rows = 1234;
  config.realtime.flush_threshold_millis = 5678;

  ByteWriter writer;
  config.Serialize(&writer);
  ByteReader reader(writer.buffer());
  auto restored = TableConfig::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->PhysicalName(), "events_REALTIME");
  EXPECT_EQ(restored->num_replicas, 3);
  EXPECT_EQ(restored->server_tenant, "gold");
  EXPECT_EQ(restored->sort_columns, config.sort_columns);
  EXPECT_EQ(restored->star_tree.max_leaf_records, 77u);
  EXPECT_EQ(restored->retention_time_units, 30);
  EXPECT_EQ(restored->time_unit_millis, 3600000);
  EXPECT_EQ(restored->routing, RoutingStrategy::kPartitionAware);
  EXPECT_EQ(restored->num_partitions, 16);
  EXPECT_EQ(restored->realtime.flush_threshold_rows, 1234);
}

TEST(SegmentZkMetadataTest, EncodeDecodeRoundTrip) {
  SegmentZkMetadata meta;
  meta.state = SegmentZkMetadata::State::kInProgress;
  meta.partition = 5;
  meta.start_offset = 1000;
  meta.end_offset = 2000;
  meta.sequence = 7;
  meta.min_time = 17000;
  meta.max_time = 17003;
  meta.crc = 0xdeadbeef;
  auto restored = SegmentZkMetadata::Decode(meta.Encode());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->state, SegmentZkMetadata::State::kInProgress);
  EXPECT_EQ(restored->partition, 5);
  EXPECT_EQ(restored->start_offset, 1000);
  EXPECT_EQ(restored->end_offset, 2000);
  EXPECT_EQ(restored->sequence, 7);
  EXPECT_EQ(restored->crc, 0xdeadbeefu);
  EXPECT_FALSE(SegmentZkMetadata::Decode("junk").ok());
}

}  // namespace
}  // namespace pinot
