#ifndef PINOT_QUERY_SEGMENT_EXECUTOR_H_
#define PINOT_QUERY_SEGMENT_EXECUTOR_H_

#include "common/status.h"
#include "query/query.h"
#include "query/result.h"
#include "segment/segment.h"
#include "trace/trace.h"

namespace pinot {

/// Tuning knobs for the raw scan path. Defaults enable the batched block
/// engine; tests and benches disable pieces to compare against the
/// per-document reference path (the two must produce identical results).
struct ScanOptions {
  /// Block-at-a-time decode + aggregation kernels (vs per-doc dictionary
  /// dispatch).
  bool batched_decode = true;
  /// Pack single-value group-by dict ids into a uint64 key with a flat
  /// open-addressing table when the summed bit widths fit in 64 bits
  /// (falls back to string keys otherwise).
  bool packed_groupby = true;
  /// Use a dense direct-indexed group table when the product of group
  /// column dictionary sizes is at most this many slots.
  uint32_t dense_groupby_max_slots = 1u << 20;
  /// Radix-partition packed keys by their low bits into per-shard probing
  /// tables (cache-resident, shard-local growth) when the dense table does
  /// not apply. Disabled, the packed path falls back to the legacy single
  /// open-addressing table — kept as the equivalence reference for tests.
  bool radix_groupby = true;
};

/// Executes `query` against one segment and merges the outcome into `out`.
///
/// Per-segment physical planning (paper section 3.3.4): the executor picks,
/// in order of preference,
///   1. a metadata-only plan (COUNT(*)/MIN/MAX with no filter),
///   2. a star-tree plan when the segment has a star-tree covering the
///      query's filter/group-by dimensions and aggregation metrics
///      (section 4.3), or
///   3. the raw plan: filter evaluation (sorted-range / inverted / scan
///      operators chosen per column) followed by aggregation, group-by, or
///      selection over the matching documents.
Status ExecuteQueryOnSegment(const SegmentInterface& segment,
                             const Query& query, PartialResult* out);

/// As above with explicit scan options (the two-argument overload uses the
/// defaults).
Status ExecuteQueryOnSegment(const SegmentInterface& segment,
                             const Query& query, const ScanOptions& options,
                             PartialResult* out);

/// Traced variant: when `span` is non-null, execution appends phase child
/// spans (plan / filter / aggregate | group-by | selection) and labels the
/// span with the chosen plan (`plan` = metadata | star-tree | raw), the
/// per-column filter operator (`op:<col>`), and the group-table kind
/// (`group_table` = dense | radix(<shards>) | open-addressing | string). A
/// null span runs the untraced path with zero overhead.
Status ExecuteQueryOnSegment(const SegmentInterface& segment,
                             const Query& query, const ScanOptions& options,
                             TraceSpan* span, PartialResult* out);

/// The physical plan classes of paper section 3.3.4, in preference order.
enum class SegmentPlanKind { kMetadataOnly, kStarTree, kRaw };

/// "metadata" / "star-tree" / "raw".
const char* SegmentPlanKindToString(SegmentPlanKind kind);

/// Planning only (EXPLAIN): decides which physical plan
/// ExecuteQueryOnSegment would pick for this query on this segment without
/// reading any row data — including the star-tree id-expansion limit, so a
/// would-be runtime fallback to raw is reported as raw. When `span` is
/// non-null and the raw plan is chosen, each filter column is labelled with
/// its operator (`op:<col>` = constant | sorted-range | inverted | scan).
SegmentPlanKind PlanQueryOnSegment(const SegmentInterface& segment,
                                   const Query& query,
                                   TraceSpan* span = nullptr);

/// True when the segment's star-tree can answer the query (exposed for
/// tests and the Figure 13 bench).
bool CanUseStarTree(const SegmentInterface& segment, const Query& query);

}  // namespace pinot

#endif  // PINOT_QUERY_SEGMENT_EXECUTOR_H_
