#include "tenant/token_bucket.h"

#include <algorithm>
#include <cmath>
#include <thread>

namespace pinot {

TokenBucket::TokenBucket(double capacity, double refill_per_second,
                         Clock* clock)
    : capacity_(capacity),
      refill_per_ms_(refill_per_second / 1000.0),
      clock_(clock),
      tokens_(capacity),
      last_refill_millis_(clock->NowMillis()) {}

void TokenBucket::RefillLocked() {
  const int64_t now = clock_->NowMillis();
  const int64_t elapsed = now - last_refill_millis_;
  if (elapsed <= 0) return;
  tokens_ = std::min(capacity_, tokens_ + elapsed * refill_per_ms_);
  last_refill_millis_ = now;
}

bool TokenBucket::HasTokens() {
  std::lock_guard<std::mutex> lock(mutex_);
  RefillLocked();
  return tokens_ > 0;
}

void TokenBucket::Deduct(double tokens) {
  std::lock_guard<std::mutex> lock(mutex_);
  RefillLocked();
  tokens_ -= tokens;
}

double TokenBucket::Available() {
  std::lock_guard<std::mutex> lock(mutex_);
  RefillLocked();
  return tokens_;
}

int64_t TokenBucket::MillisUntilAvailable() {
  std::lock_guard<std::mutex> lock(mutex_);
  RefillLocked();
  if (tokens_ > 0) return 0;
  if (refill_per_ms_ <= 0) return INT64_MAX;
  return static_cast<int64_t>(std::ceil(-tokens_ / refill_per_ms_)) + 1;
}

void TenantQuotaManager::ConfigureTenant(const std::string& tenant,
                                         TenantLimits limits) {
  std::lock_guard<std::mutex> lock(mutex_);
  buckets_[tenant] = std::make_unique<TokenBucket>(
      limits.burst_tokens, limits.refill_per_second, clock_);
}

TokenBucket* TenantQuotaManager::GetBucket(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(tenant);
  return it == buckets_.end() ? nullptr : it->second.get();
}

bool TenantQuotaManager::HasTenant(const std::string& tenant) const {
  return GetBucket(tenant) != nullptr;
}

Status TenantQuotaManager::AdmitQuery(const std::string& tenant,
                                      int64_t timeout_millis) {
  TokenBucket* bucket = GetBucket(tenant);
  if (bucket == nullptr) return Status::OK();
  const int64_t deadline = clock_->NowMillis() + timeout_millis;
  while (true) {
    if (bucket->HasTokens()) return Status::OK();
    const int64_t now = clock_->NowMillis();
    if (now >= deadline) {
      return Status::Timeout("tenant quota exhausted: " + tenant);
    }
    const int64_t wait =
        std::min(bucket->MillisUntilAvailable(), deadline - now);
    // Under a simulated clock the wait is driven by the test advancing
    // time; yield briefly to avoid a hot spin.
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::max<int64_t>(1, std::min<int64_t>(wait, 5))));
  }
}

void TenantQuotaManager::RecordExecution(const std::string& tenant,
                                         double execution_millis) {
  TokenBucket* bucket = GetBucket(tenant);
  if (bucket != nullptr) bucket->Deduct(execution_millis);
}

}  // namespace pinot
