#ifndef PINOT_STREAM_STREAM_H_
#define PINOT_STREAM_STREAM_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"
#include "common/result.h"
#include "data/row.h"

namespace pinot {

/// One event in a stream partition.
struct StreamMessage {
  int64_t offset = 0;
  std::string key;
  Row row;
  int64_t timestamp_millis = 0;
};

/// In-process reproduction of a Kafka topic (paper sections 3.3.1, 3.3.6):
/// a set of partitions, each an ordered log with monotonically increasing
/// offsets, a murmur2 key partitioner matching Kafka's default (so Pinot's
/// offline partition function can line up with the realtime one, section
/// 4.4), and time-based retention ("Kafka retains data only for a certain
/// period of time").
class StreamTopic {
 public:
  StreamTopic(std::string name, int num_partitions, Clock* clock);

  const std::string& name() const { return name_; }
  int num_partitions() const { return static_cast<int>(partitions_.size()); }

  /// Appends a message, choosing the partition by murmur2(key) like Kafka's
  /// default partitioner. Returns the (partition, offset) it landed at.
  std::pair<int, int64_t> Produce(const std::string& key, Row row);

  /// Appends to an explicit partition.
  int64_t ProduceToPartition(int partition, const std::string& key, Row row);

  /// Reads up to `max_messages` starting at `offset`. Returns OutOfRange
  /// when `offset` is below the earliest retained offset (consumer fell
  /// behind retention), and an empty vector at the log end.
  Result<std::vector<StreamMessage>> Fetch(int partition, int64_t offset,
                                           int max_messages) const;

  /// Next offset to be written (== latest message offset + 1).
  int64_t LatestOffset(int partition) const;
  /// Earliest retained offset.
  int64_t EarliestOffset(int partition) const;

  /// Drops messages older than `retention_millis` (Kafka time retention).
  void EnforceRetention(int64_t retention_millis);

 private:
  struct Partition {
    mutable std::mutex mutex;
    std::deque<StreamMessage> log;
    int64_t base_offset = 0;  // Offset of log.front().
    int64_t next_offset = 0;
  };

  std::string name_;
  Clock* clock_;
  std::vector<std::unique_ptr<Partition>> partitions_;
};

/// Registry of topics, shared by producers and Pinot servers.
class StreamRegistry {
 public:
  explicit StreamRegistry(Clock* clock) : clock_(clock) {}

  /// Creates the topic if absent; returns it either way.
  StreamTopic* GetOrCreateTopic(const std::string& name, int num_partitions);

  /// Null when the topic does not exist.
  StreamTopic* GetTopic(const std::string& name) const;

 private:
  Clock* clock_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<StreamTopic>> topics_;
};

}  // namespace pinot

#endif  // PINOT_STREAM_STREAM_H_
