#include "segment/segment_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "startree/star_tree.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using test::BuildAnalyticsSegment;
using test::RunPql;

class SegmentStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pinot_segment_store_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(SegmentStoreTest, SaveLoadRoundTrip) {
  SegmentBuildConfig config;
  config.sort_columns = {"memberId"};
  config.inverted_index_columns = {"browser"};
  config.star_tree.dimensions = {"country", "browser"};
  config.star_tree.metrics = {"impressions"};
  config.star_tree.max_leaf_records = 1;
  auto segment = BuildAnalyticsSegment(config);

  ASSERT_TRUE(SaveSegmentToDirectory(*segment, dir_.string()).ok());
  EXPECT_TRUE(std::filesystem::exists(dir_ / "metadata.bin"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "index.bin"));

  auto loaded = LoadSegmentFromDirectory(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_docs(), 12u);
  EXPECT_EQ((*loaded)->metadata().sorted_column, "memberId");
  EXPECT_NE((*loaded)->GetColumn("browser")->inverted_index(), nullptr);
  EXPECT_NE((*loaded)->GetColumn("memberId")->sorted_index(), nullptr);
  ASSERT_NE((*loaded)->star_tree(), nullptr);
  EXPECT_EQ((*loaded)->star_tree()->num_records(),
            segment->star_tree()->num_records());

  // Query equivalence against the in-memory original.
  for (const char* pql : {
           "SELECT sum(impressions) FROM analytics WHERE country = 'us'",
           "SELECT count(*) FROM analytics WHERE tags = 'a'",
           "SELECT sum(clicks) FROM analytics GROUP BY browser TOP 10",
       }) {
    auto a = RunPql(*loaded, pql);
    auto b = RunPql(segment, pql);
    ASSERT_EQ(a.aggregates.size(), b.aggregates.size()) << pql;
    for (size_t i = 0; i < a.aggregates.size(); ++i) {
      EXPECT_EQ(ValueToString(a.aggregates[i]), ValueToString(b.aggregates[i]))
          << pql;
    }
    EXPECT_EQ(a.group_rows.size(), b.group_rows.size()) << pql;
  }
}

TEST_F(SegmentStoreTest, AppendInvertedIndexIsAppendOnly) {
  auto segment = BuildAnalyticsSegment();  // No indexes at all.
  ASSERT_TRUE(SaveSegmentToDirectory(*segment, dir_.string()).ok());
  const auto index_size_before =
      std::filesystem::file_size(dir_ / "index.bin");

  ASSERT_TRUE(
      AppendInvertedIndexToDirectory(dir_.string(), "browser").ok());
  // The index file only grew — nothing before the old end changed.
  const auto index_size_after =
      std::filesystem::file_size(dir_ / "index.bin");
  EXPECT_GT(index_size_after, index_size_before);

  auto loaded = LoadSegmentFromDirectory(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ColumnReader* browser = (*loaded)->GetColumn("browser");
  ASSERT_NE(browser->inverted_index(), nullptr);
  const int firefox = browser->dictionary().IndexOfString("firefox");
  EXPECT_EQ(browser->inverted_index()->GetBitmap(firefox).Cardinality(), 5u);

  // Idempotent.
  ASSERT_TRUE(
      AppendInvertedIndexToDirectory(dir_.string(), "browser").ok());
  EXPECT_EQ(std::filesystem::file_size(dir_ / "index.bin"),
            index_size_after);
  // Unknown column rejected.
  EXPECT_FALSE(AppendInvertedIndexToDirectory(dir_.string(), "nope").ok());
}

TEST_F(SegmentStoreTest, DetectsBlockCorruption) {
  auto segment = BuildAnalyticsSegment();
  ASSERT_TRUE(SaveSegmentToDirectory(*segment, dir_.string()).ok());
  // Flip a byte in the middle of the index file.
  {
    std::fstream file(dir_ / "index.bin",
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(
        std::filesystem::file_size(dir_ / "index.bin") / 2));
    char byte;
    file.read(&byte, 1);
    file.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x5a);
    file.write(&byte, 1);
  }
  auto loaded = LoadSegmentFromDirectory(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(SegmentStoreTest, MissingDirectory) {
  auto loaded = LoadSegmentFromDirectory((dir_ / "nope").string());
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace pinot
