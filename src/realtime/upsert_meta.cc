#include "realtime/upsert_meta.h"

#include <unordered_set>

#include "common/bytes.h"
#include "segment/dictionary.h"

namespace pinot {

void ValidDocsTracker::Invalidate(uint32_t doc) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (invalid_.Contains(doc)) return;
  invalid_.Add(doc);
  snapshot_ = std::make_shared<const RoaringBitmap>(invalid_);
  dead_.store(invalid_.Cardinality(), std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

namespace {

// Mirrors the mutable dictionary's value coercion (dictionary.cc AsInt64 /
// AsDouble / AsString): a key rendered from the incoming row must equal the
// key rendered back from the stored dictionary value.
int64_t KeyAsInt64(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) return static_cast<int64_t>(*d);
  return 0;
}

double KeyAsDouble(const Value& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<int64_t>(&v)) return static_cast<double>(*i);
  return 0.0;
}

std::string KeyAsString(const Value& v) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  return ValueToString(v);
}

// Appends one storage-typed key fragment. Fixed-width scalars and
// length-prefixed strings keep the concatenation injective regardless of
// the values' content (embedded '\n', '\0', anything).
void AppendKeyFragment(Dictionary::Storage storage, const Value& value,
                       ByteWriter* writer) {
  switch (storage) {
    case Dictionary::Storage::kInt64:
      writer->WriteI64(KeyAsInt64(value));
      return;
    case Dictionary::Storage::kDouble:
      writer->WriteF64(KeyAsDouble(value));
      return;
    case Dictionary::Storage::kString:
      writer->WriteString(KeyAsString(value));
      return;
  }
}

}  // namespace

UpsertTableState::UpsertTableState(std::string physical_table,
                                   std::vector<std::string> key_columns,
                                   MetricsRegistry* metrics)
    : physical_table_(std::move(physical_table)),
      key_columns_(std::move(key_columns)),
      metrics_(metrics != nullptr ? metrics : MetricsRegistry::Default()) {}

Result<std::string> UpsertTableState::RenderKeyFromRow(const Schema& schema,
                                                       const Row& row) const {
  ByteWriter writer;
  for (const auto& name : key_columns_) {
    const int index = schema.IndexOf(name);
    if (index < 0) {
      return Status::InvalidArgument("upsert key column not in schema: " +
                                     name);
    }
    const FieldSpec& field = schema.field(index);
    if (!field.single_value) {
      return Status::InvalidArgument("upsert key column is multi-value: " +
                                     name);
    }
    const Value& value = row.Get(name);
    const Value& effective =
        IsNull(value) ? schema.EffectiveDefault(index) : value;
    if (IsMultiValue(effective)) {
      return Status::InvalidArgument(
          "multi-value supplied for upsert key column " + name);
    }
    AppendKeyFragment(Dictionary::StorageFor(field.type), effective, &writer);
  }
  return std::string(writer.TakeBuffer());
}

Result<std::string> UpsertTableState::RenderKeyFromDoc(
    const SegmentInterface& segment, uint32_t doc) const {
  ByteWriter writer;
  for (const auto& name : key_columns_) {
    const ColumnReader* column = segment.GetColumn(name);
    if (column == nullptr) {
      return Status::NotFound("upsert key column not in segment: " + name);
    }
    const Dictionary& dict = column->dictionary();
    const uint32_t dict_id = column->GetDictId(doc);
    AppendKeyFragment(dict.storage(),
                      dict.ValueAt(static_cast<int>(dict_id)), &writer);
  }
  return std::string(writer.TakeBuffer());
}

std::shared_ptr<ValidDocsTracker> UpsertTableState::TrackerFor(
    const std::string& segment) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& tracker = trackers_[segment];
  if (tracker == nullptr) tracker = std::make_shared<ValidDocsTracker>();
  return tracker;
}

void UpsertTableState::InvalidateLocked(const UpsertLocation& loc) {
  auto& tracker = trackers_[loc.segment];
  if (tracker == nullptr) tracker = std::make_shared<ValidDocsTracker>();
  tracker->Invalidate(loc.doc);
  metrics_
      ->GetCounter("server_upsert_dead_rows_total",
                   {{"table", physical_table_}})
      ->Increment();
}

void UpsertTableState::CommitUpsert(const std::string& key,
                                    const std::string& segment,
                                    uint32_t doc) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = keys_.try_emplace(key, UpsertLocation{segment, doc});
  if (inserted) return;
  // Arrival order is the comparison: the new row always wins. Guard the
  // degenerate self-commit (same location) so it does not kill its own row.
  if (it->second.segment == segment && it->second.doc == doc) return;
  InvalidateLocked(it->second);
  it->second.segment = segment;
  it->second.doc = doc;
}

Status UpsertTableState::BindLoadedSegment(
    const ImmutableSegment& segment,
    std::shared_ptr<ValidDocsTracker> tracker,
    const std::function<void()>& publish) {
  const std::string& name = segment.metadata().segment_name;
  std::lock_guard<std::mutex> lock(mutex_);
  // Keys already bound to a doc of THIS instance during this pass. Needed
  // to tell "stale pointer from the previous instance" (re-point, no kill)
  // from "a second surviving row of the key in this very blob" (the earlier
  // doc must die — e.g. an uncompacted original reloaded on a blank server,
  // where ingest-time invalidations exist in no tracker yet).
  std::unordered_set<std::string> bound;
  for (uint32_t doc = 0; doc < segment.num_docs(); ++doc) {
    Result<std::string> key = RenderKeyFromDoc(segment, doc);
    if (!key.ok()) return key.status();
    auto [it, inserted] =
        keys_.try_emplace(*key, UpsertLocation{name, doc});
    if (inserted) {  // Bootstrap claim of an unseen key.
      bound.insert(std::move(*key));
      continue;
    }
    if (it->second.segment == name) {
      // Reload / compaction swap of this very segment: re-point the key to
      // its (possibly renumbered) docid. The old instance keeps its old
      // tracker, already consistent for in-flight queries. Row order is
      // arrival order, so on a duplicate the later doc wins.
      if (bound.count(*key) > 0) tracker->Invalidate(it->second.doc);
      it->second.doc = doc;
      bound.insert(std::move(*key));
    } else {
      // Key owned by a newer row elsewhere: this doc is dead on arrival.
      tracker->Invalidate(doc);
    }
  }
  trackers_[name] = std::move(tracker);
  if (publish) publish();
  return Status::OK();
}

uint64_t UpsertTableState::key_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return keys_.size();
}

std::optional<UpsertLocation> UpsertTableState::Lookup(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = keys_.find(key);
  if (it == keys_.end()) return std::nullopt;
  return it->second;
}

}  // namespace pinot
