# Empty dependencies file for bench_ablation_routing_metric.
# This may be replaced when dependencies are built.
