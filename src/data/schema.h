#ifndef PINOT_DATA_SCHEMA_H_
#define PINOT_DATA_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "data/data_type.h"
#include "data/value.h"

namespace pinot {

/// Specification of one column: name, type, role, arity and default value.
/// Defaults are what on-the-fly schema evolution fills into pre-existing
/// segments (paper section 5.2: a new column "is automatically added with a
/// default value on all previously existing segments").
struct FieldSpec {
  std::string name;
  DataType type = DataType::kInt;
  FieldRole role = FieldRole::kDimension;
  bool single_value = true;
  Value default_value;  // monostate -> type-specific zero/empty default.

  static FieldSpec Dimension(std::string name, DataType type,
                             bool single_value = true);
  static FieldSpec Metric(std::string name, DataType type);
  /// Time column; value granularity is whatever the table uses (e.g. days
  /// since epoch). Must be an integral type.
  static FieldSpec Time(std::string name, DataType type = DataType::kLong);
};

/// A fixed table schema (paper section 3.1). Immutable once built except for
/// AddField, which implements the zero-downtime column addition of section
/// 5.2.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<FieldSpec> fields);

  /// Validates and builds a schema: unique names, at most one time column,
  /// metrics must be numeric single-value.
  static Result<Schema> Make(std::vector<FieldSpec> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const FieldSpec& field(int index) const { return fields_[index]; }
  const std::vector<FieldSpec>& fields() const { return fields_; }

  /// Index of the column, or -1 if absent.
  int IndexOf(const std::string& name) const;
  bool HasField(const std::string& name) const { return IndexOf(name) >= 0; }
  const FieldSpec* GetField(const std::string& name) const;

  /// Name of the time column; empty if the schema has none.
  const std::string& time_column() const { return time_column_; }
  bool HasTimeColumn() const { return !time_column_.empty(); }

  /// Adds a column to an existing schema (live schema evolution). Fails if
  /// the name already exists or a second time column is added.
  Status AddField(const FieldSpec& field);

  /// The effective default for a field: its declared default, or the
  /// type-specific zero (0 / 0.0 / "" / empty array).
  Value EffectiveDefault(int index) const;

  std::vector<std::string> FieldNames() const;

  void Serialize(ByteWriter* writer) const;
  static Result<Schema> Deserialize(ByteReader* reader);

 private:
  std::vector<FieldSpec> fields_;
  std::unordered_map<std::string, int> index_;
  std::string time_column_;
};

}  // namespace pinot

#endif  // PINOT_DATA_SCHEMA_H_
