file(REMOVE_RECURSE
  "CMakeFiles/broker_routing_test.dir/broker_routing_test.cc.o"
  "CMakeFiles/broker_routing_test.dir/broker_routing_test.cc.o.d"
  "broker_routing_test"
  "broker_routing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
