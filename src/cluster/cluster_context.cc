#include "cluster/cluster_context.h"

#include "common/bytes.h"

namespace pinot {

std::string SegmentZkMetadata::Encode() const {
  ByteWriter writer;
  writer.WriteU8(static_cast<uint8_t>(state));
  writer.WriteI32(partition);
  writer.WriteI64(start_offset);
  writer.WriteI64(end_offset);
  writer.WriteI32(sequence);
  writer.WriteI64(min_time);
  writer.WriteI64(max_time);
  writer.WriteU32(crc);
  return writer.TakeBuffer();
}

Result<SegmentZkMetadata> SegmentZkMetadata::Decode(
    const std::string& encoded) {
  ByteReader reader(encoded);
  SegmentZkMetadata meta;
  PINOT_ASSIGN_OR_RETURN(uint8_t status_byte, reader.ReadU8());
  if (status_byte > 1) return Status::Corruption("bad segment status");
  meta.state = static_cast<State>(status_byte);
  PINOT_ASSIGN_OR_RETURN(meta.partition, reader.ReadI32());
  PINOT_ASSIGN_OR_RETURN(meta.start_offset, reader.ReadI64());
  PINOT_ASSIGN_OR_RETURN(meta.end_offset, reader.ReadI64());
  PINOT_ASSIGN_OR_RETURN(meta.sequence, reader.ReadI32());
  PINOT_ASSIGN_OR_RETURN(meta.min_time, reader.ReadI64());
  PINOT_ASSIGN_OR_RETURN(meta.max_time, reader.ReadI64());
  PINOT_ASSIGN_OR_RETURN(meta.crc, reader.ReadU32());
  return meta;
}

}  // namespace pinot
