#ifndef PINOT_BASELINE_DRUID_LIKE_H_
#define PINOT_BASELINE_DRUID_LIKE_H_

#include "data/schema.h"
#include "segment/segment_builder.h"

namespace pinot {

/// Segment configuration reproducing how the paper describes Druid
/// (sections 2, 6): "In Druid, all dimension columns have an associated
/// inverted index" — and Druid has neither Pinot's physically sorted
/// columns nor the star-tree index, so filters always run through bitmap
/// operations. Building our engine with this configuration isolates
/// exactly the differences the paper credits for the Figures 11/14/15/16
/// gaps ("the generation of inverted indexes and the physical row
/// ordering").
///
/// The paper also notes the consequence visible in their data sizes
/// (300 GB for Pinot vs 1.2 TB for Druid on the share-analytics dataset):
/// always-on inverted indexes inflate the on-disk footprint, which the
/// benches report via ImmutableSegment::SizeInBytes().
inline SegmentBuildConfig DruidLikeBuildConfig(const Schema& schema) {
  SegmentBuildConfig config;
  for (const auto& field : schema.fields()) {
    if (field.role == FieldRole::kDimension ||
        field.role == FieldRole::kTime) {
      config.inverted_index_columns.push_back(field.name);
    }
  }
  return config;
}

}  // namespace pinot

#endif  // PINOT_BASELINE_DRUID_LIKE_H_
