#include "cluster/health.h"

#include <gtest/gtest.h>

#include <string>

#include "cluster/table_config.h"

namespace pinot {
namespace {

MetricLabels Table(const std::string& t) { return {{"table", t}}; }

const HealthRuleResult& Rule(const TableHealth& table,
                             const std::string& name) {
  for (const auto& rule : table.rules) {
    if (rule.rule == name) return rule;
  }
  static const HealthRuleResult missing{"<missing>", HealthStatus::kRed, ""};
  ADD_FAILURE() << "rule not found: " << name;
  return missing;
}

const TableHealth& TableNamed(const HealthReport& report,
                              const std::string& name) {
  for (const auto& table : report.tables) {
    if (table.table == name) return table;
  }
  static const TableHealth missing;
  ADD_FAILURE() << "table not found: " << name;
  return missing;
}

TEST(LogicalTableNameTest, StripsTypeSuffixOnly) {
  EXPECT_EQ(LogicalTableName("events_REALTIME"), "events");
  EXPECT_EQ(LogicalTableName("events_OFFLINE"), "events");
  EXPECT_EQ(LogicalTableName("events"), "events");
  EXPECT_EQ(LogicalTableName("_REALTIME"), "_REALTIME");  // No empty names.
  EXPECT_EQ(LogicalTableName(""), "");
}

TEST(HealthTest, EmptyInputsAreGreen) {
  MetricsRegistry registry;
  HealthInputs inputs;
  inputs.registry = &registry;
  const HealthReport report = EvaluateHealth(inputs, SloThresholds{});
  EXPECT_EQ(report.overall, HealthStatus::kGreen);
  EXPECT_TRUE(report.tables.empty());
  EXPECT_NE(report.ToString().find("overall status=GREEN tables=0"),
            std::string::npos);
}

TEST(HealthTest, FreshnessRuleTripsAndRecovers) {
  MetricsRegistry registry;
  Gauge* lag = registry.GetGauge(
      "realtime_consumption_lag",
      {{"partition", "0"}, {"table", "events_REALTIME"}});
  HealthInputs inputs;
  inputs.registry = &registry;
  SloThresholds slo;
  slo.max_freshness_lag_rows = 1000;

  lag->Set(5000);  // 5x over budget.
  HealthReport report = EvaluateHealth(inputs, slo);
  EXPECT_EQ(Rule(TableNamed(report, "events"), "freshness").status,
            HealthStatus::kRed);
  EXPECT_EQ(report.overall, HealthStatus::kRed);

  lag->Set(600);  // Over yellow_fraction (0.5) of budget, under budget.
  report = EvaluateHealth(inputs, slo);
  EXPECT_EQ(Rule(TableNamed(report, "events"), "freshness").status,
            HealthStatus::kYellow);

  lag->Set(10);  // Caught up.
  report = EvaluateHealth(inputs, slo);
  EXPECT_EQ(Rule(TableNamed(report, "events"), "freshness").status,
            HealthStatus::kGreen);
  EXPECT_EQ(report.overall, HealthStatus::kGreen);
}

TEST(HealthTest, FreshnessUsesWorstPartition) {
  MetricsRegistry registry;
  registry
      .GetGauge("realtime_consumption_lag",
                {{"partition", "0"}, {"table", "events_REALTIME"}})
      ->Set(10);
  registry
      .GetGauge("realtime_consumption_lag",
                {{"partition", "1"}, {"table", "events_REALTIME"}})
      ->Set(9000);
  HealthInputs inputs;
  inputs.registry = &registry;
  SloThresholds slo;
  slo.max_freshness_lag_rows = 1000;
  const HealthReport report = EvaluateHealth(inputs, slo);
  const HealthRuleResult& rule =
      Rule(TableNamed(report, "events"), "freshness");
  EXPECT_EQ(rule.status, HealthStatus::kRed);
  EXPECT_NE(rule.evidence.find("lag_rows=9000"), std::string::npos)
      << rule.evidence;
}

TEST(HealthTest, ErrorRateRuleTripsAndRecovers) {
  MetricsRegistry registry;
  Counter* queries = registry.GetCounter("broker_queries_total",
                                         Table("events"));
  Counter* errors = registry.GetCounter("broker_partial_results_total",
                                        Table("events"));
  HealthInputs inputs;
  inputs.registry = &registry;
  SloThresholds slo;
  slo.max_error_rate = 0.05;

  queries->Increment(100);
  errors->Increment(30);  // 30% partials.
  HealthReport report = EvaluateHealth(inputs, slo);
  EXPECT_EQ(Rule(TableNamed(report, "events"), "error_rate").status,
            HealthStatus::kRed);

  // Recover via the *window*: lifetime totals still look terrible, but the
  // last window is clean, so the table stops paging.
  const MetricsSnapshot before = TakeSnapshot(registry, 0);
  queries->Increment(1000);
  const MetricsSnapshot after = TakeSnapshot(registry, 10'000'000);
  const SnapshotDelta window = DeltaBetween(before, after);
  inputs.window = &window;
  report = EvaluateHealth(inputs, slo);
  EXPECT_EQ(Rule(TableNamed(report, "events"), "error_rate").status,
            HealthStatus::kGreen);
}

TEST(HealthTest, ShedRateRuleTripsAndRecovers) {
  MetricsRegistry registry;
  registry.GetCounter("broker_queries_total", Table("events"))
      ->Increment(50);
  Counter* sheds =
      registry.GetCounter("broker_shed_queries_total", Table("events"));
  sheds->Increment(50);  // Half of offered load turned away.
  HealthInputs inputs;
  inputs.registry = &registry;
  SloThresholds slo;
  slo.max_shed_rate = 0.10;
  HealthReport report = EvaluateHealth(inputs, slo);
  const HealthRuleResult& tripped =
      Rule(TableNamed(report, "events"), "shed_rate");
  EXPECT_EQ(tripped.status, HealthStatus::kRed);
  EXPECT_NE(tripped.evidence.find("sheds=50 offered=100"),
            std::string::npos)
      << tripped.evidence;

  // Clean window → recovered.
  const MetricsSnapshot before = TakeSnapshot(registry, 0);
  registry.GetCounter("broker_queries_total", Table("events"))
      ->Increment(200);
  const MetricsSnapshot after = TakeSnapshot(registry, 5'000'000);
  const SnapshotDelta window = DeltaBetween(before, after);
  inputs.window = &window;
  report = EvaluateHealth(inputs, slo);
  EXPECT_EQ(Rule(TableNamed(report, "events"), "shed_rate").status,
            HealthStatus::kGreen);
}

TEST(HealthTest, LatencyRuleTripsAndRecovers) {
  MetricsRegistry registry;
  registry.GetCounter("broker_queries_total", Table("events"))->Increment();
  Histogram* latency =
      registry.GetHistogram("broker_query_latency_ms", Table("events"));
  HealthInputs inputs;
  inputs.registry = &registry;
  SloThresholds slo;
  slo.p99_latency_budget_ms = 100.0;

  for (int i = 0; i < 100; ++i) latency->Observe(900.0);
  HealthReport report = EvaluateHealth(inputs, slo);
  EXPECT_EQ(Rule(TableNamed(report, "events"), "p99_latency").status,
            HealthStatus::kRed);

  // Histograms are cumulative, so recovery here means a fresh registry
  // whose p99 sits inside the budget (operationally: the next deploy /
  // process restart, or a windowed histogram in a follow-up).
  MetricsRegistry recovered;
  recovered.GetCounter("broker_queries_total", Table("events"))
      ->Increment();
  Histogram* fast =
      recovered.GetHistogram("broker_query_latency_ms", Table("events"));
  for (int i = 0; i < 100; ++i) fast->Observe(5.0);
  inputs.registry = &recovered;
  report = EvaluateHealth(inputs, slo);
  EXPECT_EQ(Rule(TableNamed(report, "events"), "p99_latency").status,
            HealthStatus::kGreen);
}

TEST(HealthTest, ReplicaRuleGradesPartitionsAndDeaths) {
  ClusterManager cluster;
  cluster.RegisterInstance("server-0", {"DefaultTenant"}, nullptr);
  cluster.RegisterInstance("server-1", {"DefaultTenant"}, nullptr);
  cluster.SetSegmentIdealState(
      "events_OFFLINE", "seg-0",
      {{"server-0", SegmentState::kOnline},
       {"server-1", SegmentState::kOnline}});
  MetricsRegistry registry;
  HealthInputs inputs;
  inputs.registry = &registry;
  inputs.cluster = &cluster;
  const SloThresholds slo;

  HealthReport report = EvaluateHealth(inputs, slo);
  EXPECT_EQ(Rule(TableNamed(report, "events"), "replicas").status,
            HealthStatus::kGreen);

  // One replica partitioned: still answerable, graded YELLOW.
  cluster.SetInstanceReachable("server-0", false);
  report = EvaluateHealth(inputs, slo);
  const HealthRuleResult& degraded =
      Rule(TableNamed(report, "events"), "replicas");
  EXPECT_EQ(degraded.status, HealthStatus::kYellow);
  EXPECT_NE(degraded.evidence.find("degraded=1"), std::string::npos)
      << degraded.evidence;

  // Both replicas gone (one partitioned, one dead): RED.
  cluster.SetInstanceAlive("server-1", false);
  report = EvaluateHealth(inputs, slo);
  const HealthRuleResult& down =
      Rule(TableNamed(report, "events"), "replicas");
  EXPECT_EQ(down.status, HealthStatus::kRed);
  EXPECT_NE(down.evidence.find("unavailable=1"), std::string::npos)
      << down.evidence;

  // Heal + revive: back to GREEN.
  cluster.SetInstanceReachable("server-0", true);
  cluster.SetInstanceAlive("server-1", true);
  report = EvaluateHealth(inputs, slo);
  EXPECT_EQ(Rule(TableNamed(report, "events"), "replicas").status,
            HealthStatus::kGreen);
}

TEST(HealthTest, UpsertDeadRowsRuleTripsAndRecovers) {
  MetricsRegistry registry;
  Counter* indexed = registry.GetCounter("realtime_rows_indexed_total",
                                         Table("profile_REALTIME"));
  Counter* dead = registry.GetCounter("server_upsert_dead_rows_total",
                                      Table("profile_REALTIME"));
  HealthInputs inputs;
  inputs.registry = &registry;
  SloThresholds slo;
  slo.max_upsert_dead_fraction = 0.5;

  indexed->Increment(100);
  dead->Increment(80);  // 80% of rows superseded and never compacted.
  HealthReport report = EvaluateHealth(inputs, slo);
  const HealthRuleResult& tripped =
      Rule(TableNamed(report, "profile"), "upsert_dead_rows");
  EXPECT_EQ(tripped.status, HealthStatus::kRed);
  EXPECT_NE(tripped.evidence.find("dead_rows=80"), std::string::npos)
      << tripped.evidence;

  // Compaction-equivalent recovery: lots of fresh live rows dilute the
  // dead fraction back under budget.
  indexed->Increment(900);
  report = EvaluateHealth(inputs, slo);
  EXPECT_EQ(Rule(TableNamed(report, "profile"), "upsert_dead_rows").status,
            HealthStatus::kGreen);
}

TEST(HealthTest, RedIsScopedToTheAffectedTable) {
  // Two tables; only "events" is in trouble. The report must grade events
  // RED and metrics GREEN — a health page that pages for every table at
  // once attributes nothing.
  MetricsRegistry registry;
  for (const char* table : {"events", "metrics"}) {
    registry.GetCounter("broker_queries_total", Table(table))
        ->Increment(100);
  }
  registry.GetCounter("broker_partial_results_total", Table("events"))
      ->Increment(60);
  HealthInputs inputs;
  inputs.registry = &registry;
  SloThresholds slo;
  slo.max_error_rate = 0.05;
  const HealthReport report = EvaluateHealth(inputs, slo);
  ASSERT_EQ(report.tables.size(), 2u);
  EXPECT_EQ(report.overall, HealthStatus::kRed);
  EXPECT_EQ(TableNamed(report, "events").status, HealthStatus::kRed);
  EXPECT_EQ(TableNamed(report, "metrics").status, HealthStatus::kGreen);

  const std::string rendered = report.ToString();
  EXPECT_NE(rendered.find("overall status=RED tables=2"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("table=events status=RED"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("table=metrics status=GREEN"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("rule=error_rate status=RED"), std::string::npos)
      << rendered;
}

TEST(HealthTest, ReportRendersWindowLine) {
  MetricsRegistry registry;
  registry.GetCounter("broker_queries_total", Table("t"))->Increment(10);
  const MetricsSnapshot before = TakeSnapshot(registry, 0);
  registry.GetCounter("broker_queries_total", Table("t"))->Increment(20);
  const MetricsSnapshot after = TakeSnapshot(registry, 2'000'000);
  const SnapshotDelta window = DeltaBetween(before, after);
  HealthInputs inputs;
  inputs.registry = &registry;
  inputs.window = &window;
  const HealthReport report = EvaluateHealth(inputs, SloThresholds{});
  EXPECT_TRUE(report.has_window);
  const std::string rendered = report.ToString();
  EXPECT_NE(rendered.find("window seconds=2.000 qps=10.0"),
            std::string::npos)
      << rendered;
}

}  // namespace
}  // namespace pinot
