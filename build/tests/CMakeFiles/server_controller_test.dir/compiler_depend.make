# Empty compiler generated dependencies file for server_controller_test.
# This may be replaced when dependencies are built.
