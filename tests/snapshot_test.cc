#include "metrics/snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace pinot {
namespace {

MetricLabels Table(const std::string& t) { return {{"table", t}}; }

TEST(SnapshotTest, CapturesEverySeriesKind) {
  MetricsRegistry registry;
  registry.GetCounter("c_total", Table("a"))->Increment(5);
  registry.GetGauge("g")->Set(3.5);
  registry.GetHistogram("h_ms")->Observe(2.0);
  registry.GetHistogram("h_ms")->Observe(4.0);

  const MetricsSnapshot snap = TakeSnapshot(registry, /*now_micros=*/1000);
  EXPECT_EQ(snap.steady_micros, 1000);
  EXPECT_EQ(snap.CounterValue(MetricsRegistry::SeriesKey("c_total",
                                                         Table("a"))),
            5u);
  EXPECT_DOUBLE_EQ(snap.GaugeValue("g"), 3.5);
  ASSERT_EQ(snap.histograms.count("h_ms"), 1u);
  EXPECT_EQ(snap.histograms.at("h_ms").count, 2u);
  EXPECT_DOUBLE_EQ(snap.histograms.at("h_ms").sum, 6.0);
  // Absent keys read as zero, never throw.
  EXPECT_EQ(snap.CounterValue("missing"), 0u);
  EXPECT_DOUBLE_EQ(snap.GaugeValue("missing"), 0.0);
}

TEST(SnapshotTest, FamilyHelpersSpanLabels) {
  MetricsRegistry registry;
  registry.GetCounter("q_total", Table("a"))->Increment(3);
  registry.GetCounter("q_total", Table("b"))->Increment(4);
  registry.GetCounter("q_total")->Increment(10);  // Unlabeled series.
  registry.GetCounter("q_totally_different")->Increment(100);
  registry.GetGauge("lag", Table("a"))->Set(7);
  registry.GetGauge("lag", Table("b"))->Set(9);

  const MetricsSnapshot snap = TakeSnapshot(registry, 0);
  // Family total = unlabeled + every labeled series; prefix-similar family
  // names must not leak in.
  EXPECT_EQ(snap.CounterFamilyTotal("q_total"), 17u);
  EXPECT_DOUBLE_EQ(snap.GaugeFamilyMax("lag"), 9.0);
}

TEST(SnapshotDeltaTest, DeltaAndRateMath) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("q_total", Table("a"));
  Gauge* lag = registry.GetGauge("lag", Table("a"));
  c->Increment(10);
  lag->Set(100);
  const MetricsSnapshot older = TakeSnapshot(registry, 0);
  c->Increment(30);
  lag->Set(40);  // Lag fell: the delta must be signed.
  const MetricsSnapshot newer = TakeSnapshot(registry, 2'000'000);

  const SnapshotDelta delta = DeltaBetween(older, newer);
  EXPECT_DOUBLE_EQ(delta.seconds, 2.0);
  const std::string key = MetricsRegistry::SeriesKey("q_total", Table("a"));
  EXPECT_EQ(delta.CounterDelta(key), 30u);
  EXPECT_DOUBLE_EQ(delta.Rate(key), 15.0);
  EXPECT_EQ(delta.CounterFamilyDelta("q_total"), 30u);
  EXPECT_DOUBLE_EQ(delta.FamilyRate("q_total"), 15.0);
  EXPECT_DOUBLE_EQ(
      delta.GaugeDelta(MetricsRegistry::SeriesKey("lag", Table("a"))), -60.0);
  EXPECT_DOUBLE_EQ(delta.GaugeFamilyDelta("lag"), -60.0);
}

TEST(SnapshotDeltaTest, SeriesBornInsideTheWindowCountFromZero) {
  MetricsRegistry registry;
  const MetricsSnapshot older = TakeSnapshot(registry, 0);
  registry.GetCounter("q_total", Table("new"))->Increment(7);
  const MetricsSnapshot newer = TakeSnapshot(registry, 1'000'000);
  const SnapshotDelta delta = DeltaBetween(older, newer);
  EXPECT_EQ(delta.CounterFamilyDelta("q_total"), 7u);
}

TEST(SnapshotDeltaTest, CounterRegressionSaturatesAtZero) {
  // Two snapshots from *different* registries can make a counter appear to
  // run backwards; the delta saturates instead of underflowing to 2^64-ish.
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("q_total")->Increment(100);
  b.GetCounter("q_total")->Increment(1);
  const SnapshotDelta delta =
      DeltaBetween(TakeSnapshot(a, 0), TakeSnapshot(b, 1'000'000));
  EXPECT_EQ(delta.CounterDelta("q_total"), 0u);
}

TEST(WindowedRatesTest, DerivedFromBrokerAndServerFamilies) {
  MetricsRegistry registry;
  const MetricsSnapshot older = TakeSnapshot(registry, 0);
  registry.GetCounter("broker_queries_total")->Increment(90);
  registry.GetCounter("broker_queries_total", Table("a"))->Increment(90);
  registry.GetCounter("broker_partial_results_total")->Increment(9);
  registry.GetCounter("broker_shed_queries_total")->Increment(10);
  registry.GetCounter("server_docs_scanned_total")->Increment(1'000'000);
  registry.GetCounter("server_scan_bytes_total")
      ->Increment(2ull * 1024 * 1024 * 1024);
  registry.GetCounter("broker_hedged_calls_total")->Increment(18);
  registry.GetGauge("realtime_consumption_lag",
                    {{"partition", "0"}, {"table", "a_REALTIME"}})
      ->Set(500);
  const MetricsSnapshot newer = TakeSnapshot(registry, 10'000'000);

  const WindowedRates rates =
      WindowedRates::From(DeltaBetween(older, newer));
  EXPECT_DOUBLE_EQ(rates.seconds, 10.0);
  // qps counts the unlabeled + per-table series once each: the family sum
  // is 180 over 10s.
  EXPECT_DOUBLE_EQ(rates.qps, 18.0);
  EXPECT_DOUBLE_EQ(rates.docs_per_sec, 100'000.0);
  EXPECT_DOUBLE_EQ(rates.scan_gb_per_sec, 0.2);
  EXPECT_NEAR(rates.error_rate, 9.0 / 180.0, 1e-9);
  EXPECT_NEAR(rates.shed_rate, 10.0 / 190.0, 1e-9);
  EXPECT_NEAR(rates.hedge_rate, 18.0 / 180.0, 1e-9);
  EXPECT_DOUBLE_EQ(rates.lag_delta, 500.0);
  const std::string line = rates.ToString();
  EXPECT_NE(line.find("window seconds=10.000"), std::string::npos) << line;
  EXPECT_NE(line.find("qps=18.0"), std::string::npos) << line;
}

TEST(SnapshotRingTest, EvictsOldestPastCapacity) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("q_total");
  SnapshotRing ring(3);
  for (int i = 1; i <= 5; ++i) {
    c->Increment();
    ring.Take(registry, i * 1'000'000);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.Nth(0).steady_micros, 5'000'000);  // Newest first.
  EXPECT_EQ(ring.Nth(2).steady_micros, 3'000'000);
}

TEST(SnapshotRingTest, LatestAndFullDeltas) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("q_total");
  SnapshotRing ring(8);
  EXPECT_FALSE(ring.LatestDelta().has_value());
  ring.Take(registry, 0);
  EXPECT_FALSE(ring.FullDelta().has_value());
  c->Increment(5);
  ring.Take(registry, 1'000'000);
  c->Increment(10);
  ring.Take(registry, 2'000'000);
  const auto latest = ring.LatestDelta();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->CounterDelta("q_total"), 10u);
  EXPECT_DOUBLE_EQ(latest->seconds, 1.0);
  const auto full = ring.FullDelta();
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->CounterDelta("q_total"), 15u);
  EXPECT_DOUBLE_EQ(full->seconds, 2.0);
}

TEST(SnapshotRingTest, SnapshotsRacingObservationChurn) {
  // TakeSnapshot iterates live series while writers observe and register:
  // must never crash or deadlock (exercised under sanitizers by the repeat
  // stage), and captured counters never exceed the final total.
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, &stop, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        registry
            .GetCounter("churn_total",
                        {{"k", "t" + std::to_string(t) + "-" +
                                   std::to_string(i % 13)}})
            ->Increment();
        registry.GetHistogram("churn_ms")->Observe(i % 32);
        ++i;
      }
    });
  }
  SnapshotRing ring(4);
  uint64_t last_total = 0;
  for (int round = 0; round < 100; ++round) {
    const MetricsSnapshot snap = ring.Take(registry, round * 1000);
    const uint64_t total = snap.CounterFamilyTotal("churn_total");
    EXPECT_GE(total, last_total);  // Counters are monotone across snaps.
    last_total = total;
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_LE(last_total,
            TakeSnapshot(registry, 0).CounterFamilyTotal("churn_total"));
}

}  // namespace
}  // namespace pinot
