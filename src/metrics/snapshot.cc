#include "metrics/snapshot.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace pinot {

namespace {

// True when `key` belongs to the metric family `name` (exact name, any
// labels).
bool InFamily(const std::string& key, const std::string& name) {
  if (key.size() < name.size() || key.compare(0, name.size(), name) != 0) {
    return false;
  }
  return key.size() == name.size() || key[name.size()] == '{';
}

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

uint64_t MetricsSnapshot::CounterValue(const std::string& key) const {
  auto it = counters.find(key);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::GaugeValue(const std::string& key) const {
  auto it = gauges.find(key);
  return it == gauges.end() ? 0 : it->second;
}

uint64_t MetricsSnapshot::CounterFamilyTotal(const std::string& name) const {
  uint64_t total = 0;
  for (const auto& [key, value] : counters) {
    if (InFamily(key, name)) total += value;
  }
  return total;
}

double MetricsSnapshot::GaugeFamilyMax(const std::string& name) const {
  double best = 0;
  for (const auto& [key, value] : gauges) {
    if (InFamily(key, name)) best = std::max(best, value);
  }
  return best;
}

MetricsSnapshot TakeSnapshot(const MetricsRegistry& registry,
                             int64_t now_micros) {
  MetricsSnapshot snap;
  snap.steady_micros = now_micros;
  for (const auto& [key, counter] : registry.CounterSeries()) {
    snap.counters[key] = counter->Value();
  }
  for (const auto& [key, gauge] : registry.GaugeSeries()) {
    snap.gauges[key] = gauge->Value();
  }
  for (const auto& [key, histogram] : registry.HistogramSeries()) {
    snap.histograms[key] = {histogram->Count(), histogram->Sum()};
  }
  return snap;
}

MetricsSnapshot TakeSnapshot(const MetricsRegistry& registry) {
  return TakeSnapshot(registry, SteadyNowMicros());
}

uint64_t SnapshotDelta::CounterDelta(const std::string& key) const {
  auto it = counter_deltas.find(key);
  return it == counter_deltas.end() ? 0 : it->second;
}

uint64_t SnapshotDelta::CounterFamilyDelta(const std::string& name) const {
  uint64_t total = 0;
  for (const auto& [key, value] : counter_deltas) {
    if (InFamily(key, name)) total += value;
  }
  return total;
}

double SnapshotDelta::Rate(const std::string& key) const {
  return seconds > 0 ? CounterDelta(key) / seconds : 0;
}

double SnapshotDelta::FamilyRate(const std::string& name) const {
  return seconds > 0 ? CounterFamilyDelta(name) / seconds : 0;
}

double SnapshotDelta::GaugeDelta(const std::string& key) const {
  auto it = gauge_deltas.find(key);
  return it == gauge_deltas.end() ? 0 : it->second;
}

double SnapshotDelta::GaugeFamilyDelta(const std::string& name) const {
  double total = 0;
  for (const auto& [key, value] : gauge_deltas) {
    if (InFamily(key, name)) total += value;
  }
  return total;
}

SnapshotDelta DeltaBetween(const MetricsSnapshot& older,
                           const MetricsSnapshot& newer) {
  SnapshotDelta delta;
  delta.seconds =
      std::max<int64_t>(0, newer.steady_micros - older.steady_micros) / 1e6;
  for (const auto& [key, value] : newer.counters) {
    const uint64_t before = older.CounterValue(key);
    delta.counter_deltas[key] = value >= before ? value - before : 0;
  }
  for (const auto& [key, value] : newer.gauges) {
    delta.gauge_deltas[key] = value - older.GaugeValue(key);
  }
  for (const auto& [key, point] : newer.histograms) {
    MetricsSnapshot::HistogramPoint before;
    auto it = older.histograms.find(key);
    if (it != older.histograms.end()) before = it->second;
    MetricsSnapshot::HistogramPoint d;
    d.count = point.count >= before.count ? point.count - before.count : 0;
    d.sum = point.sum - before.sum;
    delta.histogram_deltas[key] = d;
  }
  return delta;
}

WindowedRates WindowedRates::From(const SnapshotDelta& delta) {
  WindowedRates rates;
  rates.seconds = delta.seconds;
  const uint64_t queries = delta.CounterFamilyDelta("broker_queries_total");
  const uint64_t partials =
      delta.CounterFamilyDelta("broker_partial_results_total");
  const uint64_t sheds = delta.CounterFamilyDelta("broker_shed_queries_total");
  const uint64_t hedges = delta.CounterFamilyDelta("broker_hedged_calls_total");
  rates.qps = delta.FamilyRate("broker_queries_total");
  rates.docs_per_sec = delta.FamilyRate("server_docs_scanned_total");
  rates.scan_gb_per_sec =
      delta.FamilyRate("server_scan_bytes_total") / (1024.0 * 1024.0 * 1024.0);
  rates.error_rate =
      queries > 0 ? static_cast<double>(partials) / queries : 0;
  rates.shed_rate = queries + sheds > 0
                        ? static_cast<double>(sheds) / (queries + sheds)
                        : 0;
  rates.hedge_rate = queries > 0 ? static_cast<double>(hedges) / queries : 0;
  rates.lag_delta = delta.GaugeFamilyDelta("realtime_consumption_lag");
  return rates;
}

std::string WindowedRates::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "window seconds=%.3f qps=%.1f docs_per_sec=%.0f "
                "scan_gb_per_sec=%.3f error_rate=%.3f shed_rate=%.3f "
                "hedge_rate=%.3f lag_delta=%.0f",
                seconds, qps, docs_per_sec, scan_gb_per_sec, error_rate,
                shed_rate, hedge_rate, lag_delta);
  return buf;
}

SnapshotRing::SnapshotRing(size_t capacity)
    : capacity_(std::max<size_t>(2, capacity)) {}

MetricsSnapshot SnapshotRing::Take(const MetricsRegistry& registry,
                                   int64_t now_micros) {
  MetricsSnapshot snap = TakeSnapshot(registry, now_micros);
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(snap);
  if (ring_.size() > capacity_) ring_.erase(ring_.begin());
  return snap;
}

MetricsSnapshot SnapshotRing::Take(const MetricsRegistry& registry) {
  return Take(registry, SteadyNowMicros());
}

size_t SnapshotRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

MetricsSnapshot SnapshotRing::Nth(size_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (i >= ring_.size()) return {};
  return ring_[ring_.size() - 1 - i];
}

std::optional<SnapshotDelta> SnapshotRing::LatestDelta() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < 2) return std::nullopt;
  return DeltaBetween(ring_[ring_.size() - 2], ring_.back());
}

std::optional<SnapshotDelta> SnapshotRing::FullDelta() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < 2) return std::nullopt;
  return DeltaBetween(ring_.front(), ring_.back());
}

}  // namespace pinot
