#ifndef PINOT_CLUSTER_MINION_H_
#define PINOT_CLUSTER_MINION_H_

#include <functional>
#include <map>
#include <string>

#include "cluster/cluster_context.h"
#include "cluster/controller.h"

namespace pinot {

/// A Pinot minion (paper section 3.2): executes compute-intensive
/// maintenance tasks scheduled by the controller. The task registry is
/// extensible ("the task management and scheduling is extensible to add
/// new job and schedule types"); the built-in purge task implements the
/// legally-required record expunging flow described in the paper.
class Minion {
 public:
  /// Executors receive the task and the minion (for cluster access) and
  /// return the task outcome.
  using TaskExecutor =
      std::function<Status(const Controller::Task&, Minion&)>;

  Minion(std::string id, ClusterContext ctx, Controller* controller);

  /// Registers with the cluster and installs the built-in "purge"
  /// executor.
  void Start();

  const std::string& id() const { return id_; }
  ClusterContext& ctx() { return ctx_; }
  Controller* controller() { return controller_; }

  void RegisterExecutor(const std::string& type, TaskExecutor executor);

  /// Polls the controller's task queue and runs up to `max_tasks` tasks.
  /// Returns the number executed successfully.
  int ProcessTasks(int max_tasks = 1000);

 private:
  const std::string id_;
  ClusterContext ctx_;
  Controller* const controller_;
  std::map<std::string, TaskExecutor> executors_;
};

/// Built-in purge executor. Task payload: "<column>\n<rendered value>".
/// Downloads the segment, drops every record whose `column` equals the
/// value, rebuilds the segment with its original indexes, and re-uploads
/// it under the same name (atomic replace).
Status RunPurgeTask(const Controller::Task& task, Minion& minion);

}  // namespace pinot

#endif  // PINOT_CLUSTER_MINION_H_
