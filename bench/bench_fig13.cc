// Figure 13: distribution of the ratio of preaggregated (star-tree)
// records scanned during query execution versus the number of original
// unaggregated records the same query touches on raw data. Ratios close to
// zero mean the star-tree answered the query from far fewer records.

#include "bench/bench_util.h"
#include "query/segment_executor.h"

namespace pinot {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  Workload workload = MakeAnomalyWorkload(options.workload_options());
  std::vector<Query> queries = ParseQueries(workload);

  auto star_segments = BuildSegments(workload, workload.pinot_config,
                                     options.num_segments, "star");
  auto raw_segments = BuildSegments(workload, SegmentBuildConfig{},
                                    options.num_segments, "raw");

  std::vector<double> ratios;
  uint64_t star_eligible = 0;
  for (const auto& query : queries) {
    PartialResult star;
    for (const auto& segment : star_segments) {
      (void)ExecuteQueryOnSegment(*segment, query, &star);
    }
    if (!star.stats.used_star_tree) continue;
    ++star_eligible;

    PartialResult raw;
    for (const auto& segment : raw_segments) {
      (void)ExecuteQueryOnSegment(*segment, query, &raw);
    }
    // Raw execution scans every document matching the filter.
    const uint64_t raw_records = raw.stats.docs_matched;
    if (raw_records == 0) continue;
    ratios.push_back(
        static_cast<double>(star.stats.star_tree_records_scanned) /
        static_cast<double>(raw_records));
  }

  std::printf("# Figure 13 — star-tree preaggregation ratio distribution\n");
  std::printf("# %zu queries, %lu star-tree eligible, %zu with matches\n",
              queries.size(), static_cast<unsigned long>(star_eligible),
              ratios.size());

  std::vector<double> sorted = ratios;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0;
  for (double v : sorted) sum += v;
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "metric", "mean", "p10",
              "p50", "p90", "p99");
  std::printf("%-10s %10.4f %10.4f %10.4f %10.4f %10.4f\n", "ratio",
              sorted.empty() ? 0 : sum / sorted.size(),
              Percentile(sorted, 0.10), Percentile(sorted, 0.50),
              Percentile(sorted, 0.90), Percentile(sorted, 0.99));

  // Histogram over [0, 1+] like the paper's density plot.
  const int kBuckets = 20;
  std::vector<int> buckets(kBuckets + 1, 0);
  for (double v : ratios) {
    int b = static_cast<int>(v * kBuckets);
    if (b > kBuckets) b = kBuckets;
    ++buckets[b];
  }
  std::printf("\n%-14s %10s\n", "ratio_bucket", "queries");
  for (int b = 0; b <= kBuckets; ++b) {
    char label[32];
    if (b == kBuckets) {
      std::snprintf(label, sizeof(label), ">=1.0");
    } else {
      std::snprintf(label, sizeof(label), "[%.2f,%.2f)",
                    static_cast<double>(b) / kBuckets,
                    static_cast<double>(b + 1) / kBuckets);
    }
    std::printf("%-14s %10d\n", label, buckets[b]);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pinot

int main(int argc, char** argv) { return pinot::bench::Main(argc, argv); }
