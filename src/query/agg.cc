#include "query/agg.h"

#include <cstring>

namespace pinot {

Value FinalizeAgg(AggregationType type, const AggState& state) {
  switch (type) {
    case AggregationType::kCount:
      return state.count;
    case AggregationType::kSum:
      return state.count == 0 ? Value{0.0} : Value{state.sum};
    case AggregationType::kMin:
      return state.count == 0 ? Value{} : Value{state.min};
    case AggregationType::kMax:
      return state.count == 0 ? Value{} : Value{state.max};
    case AggregationType::kAvg:
      return state.count == 0
                 ? Value{}
                 : Value{state.sum / static_cast<double>(state.count)};
    case AggregationType::kDistinctCount:
      return state.distinct == nullptr ? Value{int64_t{0}}
                                       : Value{state.distinct->size()};
  }
  return Value{};
}

double AggSortValue(AggregationType type, const AggState& state) {
  const Value v = FinalizeAgg(type, state);
  return ValueToDouble(v);
}

}  // namespace pinot
