# Empty compiler generated dependencies file for filter_evaluator_test.
# This may be replaced when dependencies are built.
