#ifndef PINOT_SEGMENT_SEGMENT_STORE_H_
#define PINOT_SEGMENT_SEGMENT_STORE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "segment/segment.h"

namespace pinot {

/// On-disk segment directory format (paper section 3.2 and Figure 1):
///
///   "A segment is stored as a directory in the UNIX filesystem consisting
///    of a segment metadata file and an index file. The segment metadata
///    provides information about the set of columns in the segment, their
///    type, cardinality, encoding, various statistics, and the indexes
///    available for that column. An index file stores indexes for all the
///    columns. This file is append-only which allows the server to create
///    inverted indexes on demand."
///
/// Layout:
///   <dir>/metadata.bin — schema, segment metadata, per-column statistics,
///                        and a directory of (kind, column, offset, size)
///                        entries pointing into the index file. Rewritten
///                        atomically (tmp + rename) whenever entries are
///                        added.
///   <dir>/index.bin    — concatenated CRC-framed blocks: per-column
///                        dictionaries and forward indexes, optional
///                        inverted/sorted indexes, optional star-tree.
///                        Strictly append-only.

/// Writes the segment as a directory (creates it; overwrites existing
/// files).
Status SaveSegmentToDirectory(const ImmutableSegment& segment,
                              const std::string& dir);

/// Loads a segment directory written by SaveSegmentToDirectory (or extended
/// by AppendInvertedIndex). Verifies per-block CRCs.
Result<std::shared_ptr<ImmutableSegment>> LoadSegmentFromDirectory(
    const std::string& dir);

/// Builds an inverted index for `column` on an on-disk segment by appending
/// a block to the index file and rewriting the metadata directory — the
/// index file itself is never rewritten (the on-demand reindexing the paper
/// describes). No-op if the column already has an inverted index.
Status AppendInvertedIndexToDirectory(const std::string& dir,
                                      const std::string& column);

}  // namespace pinot

#endif  // PINOT_SEGMENT_SEGMENT_STORE_H_
