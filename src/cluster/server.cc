#include "cluster/server.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "cluster/object_store.h"
#include "cluster/property_store.h"
#include "common/logging.h"
#include "query/table_executor.h"
#include "stream/stream.h"

namespace pinot {

Server::Server(std::string id, ClusterContext ctx, Options options)
    : id_(std::move(id)),
      ctx_(std::move(ctx)),
      options_(options),
      metrics_(ctx_.metrics != nullptr ? ctx_.metrics
                                       : MetricsRegistry::Default()),
      pool_(options.num_query_threads),
      quota_(ctx_.clock, metrics_) {}

Server::Server(std::string id, ClusterContext ctx)
    : Server(std::move(id), std::move(ctx), Options()) {}

Server::~Server() = default;

void Server::Start() {
  ctx_.cluster->RegisterInstance(id_, {"server", options_.tenant_tag}, this);
}

Result<TableConfig> Server::LoadTableConfig(
    const std::string& physical_table) const {
  PINOT_ASSIGN_OR_RETURN(
      std::string encoded,
      ctx_.property_store->Get(zkpaths::TableConfigPath(physical_table)));
  ByteReader reader(encoded);
  return TableConfig::Deserialize(&reader);
}

void Server::InjectQueryFailures(int n) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  fault_fail_requests_ = n;
}

void Server::InjectQueryDelay(int n, int64_t millis) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  fault_delay_requests_ = n;
  fault_delay_millis_ = millis;
}

void Server::SetQueryDropFraction(double fraction) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  fault_drop_fraction_ = fraction;
}

PartialResult Server::ExecuteServerQuery(const ServerQueryRequest& request) {
  PartialResult result;
  const auto start = std::chrono::steady_clock::now();
  // Per-request span (TRACE/EXPLAIN only): covers injected delay, tenant
  // admission (queue time), and execution; rides back to the broker on
  // result.spans. Untraced queries never touch the span.
  const bool tracing = request.query.trace || request.query.explain;
  TraceSpan server_span;
  if (tracing) server_span = TraceSpan::Open("server:" + id_);

  // Injected faults are consumed before any real work so the broker's
  // failover path can be driven deterministically.
  {
    bool fail = false;
    bool drop = false;
    int64_t delay_millis = 0;
    {
      std::lock_guard<std::mutex> lock(fault_mutex_);
      if (fault_fail_requests_ > 0) {
        --fault_fail_requests_;
        fail = true;
      } else if (fault_delay_requests_ > 0) {
        --fault_delay_requests_;
        delay_millis = fault_delay_millis_;
      } else if (fault_drop_fraction_ > 0 &&
                 fault_rng_.NextDouble() < fault_drop_fraction_) {
        drop = true;
      }
    }
    if (fail) {
      metrics_->GetCounter("server_injected_faults_total",
                           {{"instance", id_}, {"kind", "fail"}})
          ->Increment();
      result.status = Status::Unavailable("injected failure on " + id_);
      return result;
    }
    if (drop) {
      // A dropped response only manifests at the caller as a deadline
      // expiry; sleep past the request deadline before answering.
      metrics_->GetCounter("server_injected_faults_total",
                           {{"instance", id_}, {"kind", "drop"}})
          ->Increment();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(request.timeout_millis + 50));
      result.status = Status::Timeout("injected drop on " + id_);
      return result;
    }
    if (delay_millis > 0) {
      metrics_->GetCounter("server_injected_faults_total",
                           {{"instance", id_}, {"kind", "delay"}})
          ->Increment();
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_millis));
    }
  }

  // A request whose deadline already passed (e.g. it sat behind an injected
  // delay, or the broker's budget was nearly gone at submit) must not
  // execute: the broker has abandoned it, so any work done now is wasted
  // cycles taken from queries that can still answer in time.
  const auto request_deadline =
      start + std::chrono::milliseconds(request.timeout_millis);
  auto deadline_expired = [&](const char* where) {
    if (std::chrono::steady_clock::now() < request_deadline) return false;
    metrics_->GetCounter("server_deadline_exceeded_total",
                         {{"instance", id_}})
        ->Increment();
    result.status = Status::Timeout("request deadline expired " + std::string(where) +
                                    " on " + id_);
    return true;
  };
  if (deadline_expired("before admission")) return result;

  // Tenant admission (paper section 4.5): queries for an exhausted tenant
  // queue until tokens accrue or the request deadline passes. The wait is
  // the request's queue time.
  const auto admit_start = std::chrono::steady_clock::now();
  Status admitted = quota_.AdmitQuery(request.tenant, request.timeout_millis);
  const int64_t queue_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - admit_start)
          .count();
  metrics_->GetHistogram("server_query_queue_ms", {{"instance", id_}})
      ->Observe(queue_micros / 1000.0);
  if (!admitted.ok()) {
    result.status = admitted;
    return result;
  }
  // The quota queue bounds its own wait by the request timeout, but that
  // budget does not account for time already spent before admission.
  if (deadline_expired("in admission queue")) return result;

  if (options_.artificial_latency_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.artificial_latency_micros));
  }

  std::vector<std::shared_ptr<SegmentInterface>> to_query;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto table_it = segments_.find(request.physical_table);
    if (table_it == segments_.end()) {
      result.status =
          Status::NotFound("server hosts no segments of table " +
                           request.physical_table);
      return result;
    }
    for (const auto& segment : request.segments) {
      auto it = table_it->second.find(segment);
      if (it == table_it->second.end()) {
        // Routing raced a segment move; report partial data.
        result.status = Status::NotFound("segment not hosted: " + segment);
        continue;
      }
      to_query.push_back(it->second);
    }
  }

  // Consuming segments are mutated by the ingestion tick; take their reader
  // locks for the whole execution so the single writer is excluded while
  // concurrent queries proceed. Locks are acquired in a global (address)
  // order: multi-lock acquirers can then never deadlock against each other
  // or the single-lock writer.
  std::vector<MutableSegment*> mutable_segments;
  for (const auto& segment : to_query) {
    if (auto* mutable_segment = dynamic_cast<MutableSegment*>(segment.get())) {
      mutable_segments.push_back(mutable_segment);
    }
  }
  std::sort(mutable_segments.begin(), mutable_segments.end());
  mutable_segments.erase(
      std::unique(mutable_segments.begin(), mutable_segments.end()),
      mutable_segments.end());
  std::vector<std::shared_lock<std::shared_mutex>> read_locks;
  read_locks.reserve(mutable_segments.size());
  for (MutableSegment* mutable_segment : mutable_segments) {
    read_locks.push_back(mutable_segment->AcquireReadLock());
  }

  const auto exec_start = std::chrono::steady_clock::now();
  PartialResult executed = ExecuteQueryOnSegments(
      to_query, request.query, options_.scan_options, &pool_,
      tracing ? &server_span : nullptr);
  executed.status = result.status.ok() ? executed.status : result.status;
  result = std::move(executed);
  read_locks.clear();

  // Server-side ORDER-BY/LIMIT trim: ship the over-fetched top-N instead
  // of the full group table (paper section 4: scatter payloads stay
  // bounded at million-group cardinalities).
  const size_t groups_before_trim = result.groups.size();
  size_t trimmed_groups = 0;
  if (!request.query.group_by.empty() && request.query.top_n > 0) {
    const size_t keep =
        std::max(static_cast<size_t>(request.query.top_n) *
                     options_.groupby_trim_factor,
                 options_.groupby_trim_min);
    trimmed_groups = TrimGroupPartial(request.query, keep, &result);
  }

  const double execution_millis =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count() /
      1000.0;
  // Charge execution time to the tenant's bucket (section 4.5).
  quota_.RecordExecution(request.tenant, execution_millis);

  // Receipt: queue wait, group counts, shipped payload, and an estimate of
  // the column bytes decoded (4-byte dict ids per referenced column).
  result.receipt.queue_micros += queue_micros;
  result.receipt.groups += groups_before_trim;
  result.receipt.trimmed += trimmed_groups;
  size_t referenced_columns = request.query.group_by.size();
  for (const auto& spec : request.query.aggregations) {
    if (!spec.column.empty()) ++referenced_columns;
  }
  if (!request.query.IsAggregation()) {
    referenced_columns += std::max<size_t>(
        1, request.query.selection_columns.size());
  }
  const uint64_t scan_bytes =
      result.stats.docs_scanned * 4 *
      std::max<size_t>(1, referenced_columns);
  result.receipt.scan_bytes += scan_bytes;
  uint64_t payload_bytes =
      result.groups.ApproxPayloadBytes() +
      result.aggregates.size() * sizeof(AggState);
  for (const auto& row : result.selection_rows) {
    payload_bytes += row.size() * sizeof(Value);
    for (const auto& v : row) {
      if (const auto* s = std::get_if<std::string>(&v)) {
        payload_bytes += s->size();
      }
    }
  }
  result.receipt.payload_bytes += payload_bytes;

  if (tracing) {
    server_span.Annotate("queue_micros", queue_micros);
    server_span.Annotate(
        "exec_micros",
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - exec_start)
            .count());
    if (groups_before_trim > 0) {
      server_span.Label("groupby_groups", std::to_string(groups_before_trim));
      server_span.Label("trimmed", std::to_string(trimmed_groups));
    }
    server_span.Close();
    result.spans.push_back(std::move(server_span));
  }

  const MetricLabels instance_labels = {{"instance", id_}};
  // Per-table rollups alongside the per-instance series, so cost is
  // attributable to tables as well as machines (labels use the logical
  // table: OFFLINE + REALTIME halves of a hybrid table roll up together).
  const MetricLabels table_labels = {
      {"table", LogicalTableName(request.physical_table)}};
  metrics_->GetCounter("server_queries_total", instance_labels)->Increment();
  metrics_->GetCounter("server_queries_total", table_labels)->Increment();
  metrics_->GetCounter("server_segments_queried_total", instance_labels)
      ->Increment(result.stats.segments_queried);
  metrics_->GetCounter("server_segments_queried_total", table_labels)
      ->Increment(result.stats.segments_queried);
  metrics_->GetCounter("server_docs_scanned_total", instance_labels)
      ->Increment(result.stats.docs_scanned);
  metrics_->GetCounter("server_docs_scanned_total", table_labels)
      ->Increment(result.stats.docs_scanned);
  metrics_->GetCounter("server_scan_bytes_total", instance_labels)
      ->Increment(scan_bytes);
  metrics_->GetCounter("server_scan_bytes_total", table_labels)
      ->Increment(scan_bytes);
  metrics_->GetHistogram("server_query_execution_ms", instance_labels)
      ->Observe(execution_millis);
  metrics_->GetHistogram("server_query_execution_ms", table_labels)
      ->Observe(execution_millis);
  if (groups_before_trim > 0) {
    metrics_->GetHistogram("server_groupby_groups", instance_labels)
        ->Observe(static_cast<double>(groups_before_trim));
  }
  metrics_->GetCounter("server_trimmed_rows_total", instance_labels)
      ->Increment(trimmed_groups);
  return result;
}

std::shared_ptr<UpsertTableState> Server::GetOrCreateUpsertState(
    const std::string& table, const TableConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& state = upsert_[table];
  if (state == nullptr) {
    state = std::make_shared<UpsertTableState>(
        table, config.upsert_key_columns, metrics_);
  }
  return state;
}

Status Server::LoadOnlineSegment(const std::string& table,
                                 const std::string& segment) {
  PINOT_ASSIGN_OR_RETURN(
      std::string blob,
      ctx_.object_store->Get(zkpaths::SegmentBlobKey(table, segment)));
  PINOT_ASSIGN_OR_RETURN(std::shared_ptr<ImmutableSegment> loaded,
                         ImmutableSegment::DeserializeFromBlob(blob));
  const MetricLabels labels = {{"instance", id_}};
  metrics_->GetCounter("server_segments_loaded_total", labels)->Increment();
  metrics_->GetCounter("server_segment_bytes_loaded_total", labels)
      ->Increment(blob.size());
  auto config = LoadTableConfig(table);
  if (config.ok() && config->upsert_enabled) {
    // Upsert reload (compaction swap / replica download): docids may be
    // renumbered, so rebuild validity from key ownership. The tracker
    // registry swap and the serving-map publish happen inside one
    // UpsertTableState critical section, so ingest can never invalidate
    // into the new tracker while a query still pairs the old instance
    // with it (see BindLoadedSegment).
    std::shared_ptr<UpsertTableState> ups =
        GetOrCreateUpsertState(table, *config);
    auto tracker = std::make_shared<ValidDocsTracker>();
    loaded->SetValidDocs(tracker);
    return ups->BindLoadedSegment(*loaded, std::move(tracker), [&] {
      std::lock_guard<std::mutex> lock(mutex_);
      segments_[table][segment] = loaded;
    });
  }
  std::lock_guard<std::mutex> lock(mutex_);
  segments_[table][segment] = std::move(loaded);
  return Status::OK();
}

Status Server::StartConsuming(const std::string& table,
                              const std::string& segment) {
  PINOT_ASSIGN_OR_RETURN(TableConfig config, LoadTableConfig(table));
  PINOT_ASSIGN_OR_RETURN(
      std::string encoded,
      ctx_.property_store->Get(zkpaths::SegmentMetadataPath(table, segment)));
  PINOT_ASSIGN_OR_RETURN(SegmentZkMetadata meta,
                         SegmentZkMetadata::Decode(encoded));
  StreamTopic* topic = ctx_.streams->GetTopic(config.realtime.topic);
  if (topic == nullptr) {
    return Status::NotFound("no such topic: " + config.realtime.topic);
  }

  ConsumingState state;
  state.segment = std::make_shared<MutableSegment>(config.schema, table,
                                                   segment, ctx_.clock);
  state.topic = topic;
  state.partition = meta.partition;
  state.offset = meta.start_offset;
  state.flush_threshold_rows = config.realtime.flush_threshold_rows;
  state.flush_threshold_millis = config.realtime.flush_threshold_millis;
  state.consumption_start_millis = ctx_.clock->NowMillis();
  state.seal_config.table_name = table;
  state.seal_config.segment_name = segment;
  state.seal_config.sort_columns = config.sort_columns;
  state.seal_config.inverted_index_columns = config.inverted_index_columns;
  state.seal_config.star_tree = config.star_tree;
  if (!config.partition_column.empty()) {
    state.seal_config.partition_id = meta.partition;
    state.seal_config.partition_column = config.partition_column;
    state.seal_config.num_partitions = config.num_partitions;
  }
  if (config.upsert_enabled) {
    state.upsert = GetOrCreateUpsertState(table, config);
    // The consuming segment and its sealed promotion share one validity
    // tracker, which requires sealing to preserve docids: no sort re-order
    // and no star-tree (star-tree plans are refused on upsert anyway).
    state.segment->SetValidDocs(state.upsert->TrackerFor(segment));
    state.seal_config.sort_columns.clear();
    state.seal_config.star_tree = {};
  }

  std::lock_guard<std::mutex> lock(mutex_);
  segments_[table][segment] = state.segment;
  consuming_[table][segment] = std::move(state);
  return Status::OK();
}

Status Server::PromoteConsuming(const std::string& table,
                                const std::string& segment) {
  // CONSUMING -> ONLINE: use the local sealed copy when the completion
  // protocol told us to KEEP/COMMIT it; otherwise fetch the authoritative
  // copy (DISCARD path).
  std::shared_ptr<ImmutableSegment> sealed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto table_it = consuming_.find(table);
    if (table_it != consuming_.end()) {
      auto it = table_it->second.find(segment);
      if (it != table_it->second.end()) {
        sealed = it->second.sealed;
        table_it->second.erase(it);
      }
    }
  }
  if (sealed != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    segments_[table][segment] = std::move(sealed);
    return Status::OK();
  }
  return LoadOnlineSegment(table, segment);
}

Status Server::OnSegmentStateTransition(const std::string& table,
                                        const std::string& segment,
                                        SegmentState from, SegmentState to) {
  switch (to) {
    case SegmentState::kOnline:
      if (from == SegmentState::kConsuming) {
        return PromoteConsuming(table, segment);
      }
      return LoadOnlineSegment(table, segment);
    case SegmentState::kConsuming:
      return StartConsuming(table, segment);
    case SegmentState::kOffline:
    case SegmentState::kDropped: {
      std::lock_guard<std::mutex> lock(mutex_);
      auto table_it = segments_.find(table);
      if (table_it != segments_.end()) {
        table_it->second.erase(segment);
        if (table_it->second.empty()) segments_.erase(table_it);
      }
      auto consuming_it = consuming_.find(table);
      if (consuming_it != consuming_.end()) {
        consuming_it->second.erase(segment);
        if (consuming_it->second.empty()) consuming_.erase(consuming_it);
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("bad transition target");
}

Status Server::OnUserMessage(const std::string& type,
                             const std::string& payload) {
  if (type == "reload_table") {
    // Live schema addition (section 5.2): default-fill new columns on all
    // hosted immutable segments of the table.
    const std::string& table = payload;
    auto config = LoadTableConfig(table);
    if (!config.ok()) return config.status();
    std::lock_guard<std::mutex> lock(mutex_);
    auto table_it = segments_.find(table);
    if (table_it == segments_.end()) return Status::OK();
    for (auto& [segment_name, segment] : table_it->second) {
      auto immutable = std::dynamic_pointer_cast<ImmutableSegment>(segment);
      if (immutable == nullptr) continue;  // Consuming segments pick the
                                           // schema up at their next seal.
      for (const auto& field : config->schema.fields()) {
        if (immutable->GetColumn(field.name) == nullptr) {
          PINOT_RETURN_NOT_OK(immutable->AddDefaultColumn(field));
        }
      }
    }
    return Status::OK();
  }
  if (type == "create_inverted_index") {
    const size_t newline = payload.find('\n');
    if (newline == std::string::npos) {
      return Status::InvalidArgument("bad create_inverted_index payload");
    }
    const std::string table = payload.substr(0, newline);
    const std::string column = payload.substr(newline + 1);
    std::lock_guard<std::mutex> lock(mutex_);
    auto table_it = segments_.find(table);
    if (table_it == segments_.end()) return Status::OK();
    for (auto& [segment_name, segment] : table_it->second) {
      auto immutable = std::dynamic_pointer_cast<ImmutableSegment>(segment);
      if (immutable == nullptr) continue;
      PINOT_RETURN_NOT_OK(immutable->CreateInvertedIndex(column));
    }
    return Status::OK();
  }
  return Status::NotImplemented("unknown message type: " + type);
}

int Server::TickConsuming(const std::string& table,
                          const std::string& segment, ConsumingState* state) {
  int indexed = 0;
  // End criteria: configured row count or consumption time (section
  // 3.3.6), or an explicit CATCHUP target from the controller.
  auto reached_end = [&]() {
    if (state->catchup_target >= 0) return state->offset >= state->catchup_target;
    if (state->segment->num_docs() >=
        static_cast<uint32_t>(state->flush_threshold_rows)) {
      return true;
    }
    return ctx_.clock->NowMillis() - state->consumption_start_millis >=
           state->flush_threshold_millis;
  };

  while (!reached_end() && indexed < options_.max_fetch_batch) {
    int64_t limit = options_.max_fetch_batch - indexed;
    if (state->catchup_target >= 0) {
      limit = std::min<int64_t>(limit, state->catchup_target - state->offset);
    }
    if (limit <= 0) break;
    auto batch = state->topic->Fetch(state->partition, state->offset,
                                     static_cast<int>(limit));
    if (!batch.ok()) {
      if (batch.status().code() == StatusCode::kOutOfRange) {
        // The consumer fell behind the stream's retention horizon; jump to
        // the earliest retained offset (events in between are lost, as
        // they would be with Kafka).
        const int64_t earliest =
            state->topic->EarliestOffset(state->partition);
        PINOT_LOG_WARN << id_ << " fell behind retention on " << segment
                       << "; resetting offset " << state->offset << " -> "
                       << earliest;
        state->offset = earliest;
        continue;
      }
      PINOT_LOG_ERROR << id_ << " fetch failed for " << segment << ": "
                      << batch.status().ToString();
      break;
    }
    if (batch->empty()) break;  // Caught up with the stream.
    for (const auto& message : *batch) {
      Status st = state->upsert != nullptr
                      ? state->segment->IndexUpsert(message.row,
                                                    state->upsert.get())
                      : state->segment->Index(message.row);
      if (!st.ok()) {
        PINOT_LOG_WARN << id_ << " failed to index event: " << st.ToString();
      }
      state->offset = message.offset + 1;
      ++indexed;
      if (reached_end()) break;
    }
  }

  const MetricLabels table_labels = {{"table", table}};
  if (indexed > 0) {
    metrics_->GetCounter("realtime_rows_indexed_total", table_labels)
        ->Increment(indexed);
  }
  // Consumption lag vs the stream head, per partition so the series
  // survives segment rollover.
  metrics_
      ->GetGauge("realtime_consumption_lag",
                 {{"table", table},
                  {"partition", std::to_string(state->partition)}})
      ->Set(static_cast<double>(std::max<int64_t>(
          0, state->topic->LatestOffset(state->partition) - state->offset)));

  // Seal ("flush") with count + duration accounting, shared by the KEEP
  // and COMMIT paths.
  auto timed_seal = [&]() {
    const auto seal_start = std::chrono::steady_clock::now();
    auto sealed = state->segment->Seal(state->seal_config);
    if (sealed.ok() && state->upsert != nullptr) {
      // Sealing replays rows in doc order (sorting disabled for upsert),
      // so the consuming segment's tracker stays valid for the sealed copy
      // and the key map keeps pointing at the same (segment, doc) pairs.
      (*sealed)->SetValidDocs(state->segment->valid_docs_ptr());
    }
    const double seal_millis =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - seal_start)
            .count() /
        1000.0;
    metrics_->GetCounter("realtime_flush_total", table_labels)->Increment();
    metrics_->GetHistogram("realtime_flush_duration_ms", table_labels)
        ->Observe(seal_millis);
    return sealed;
  };

  if (!reached_end()) return indexed;

  // End criteria reached: run the completion protocol against the leader.
  ControllerApi* leader =
      ctx_.leader_controller ? ctx_.leader_controller() : nullptr;
  if (leader == nullptr) return indexed;
  const CompletionResponse response =
      leader->SegmentConsumedUntil(table, segment, id_, state->offset);
  switch (response.instruction) {
    case CompletionInstruction::kHold:
    case CompletionInstruction::kNotLeader:
      break;  // Poll again next tick.
    case CompletionInstruction::kCatchup:
      state->catchup_target = response.target_offset;
      break;
    case CompletionInstruction::kKeep: {
      auto sealed = timed_seal();
      if (sealed.ok()) state->sealed = *sealed;
      break;
    }
    case CompletionInstruction::kDiscard:
      state->sealed = nullptr;  // Promotion will download the winner.
      break;
    case CompletionInstruction::kCommit: {
      auto sealed = timed_seal();
      if (!sealed.ok()) {
        PINOT_LOG_ERROR << id_ << " seal failed: "
                        << sealed.status().ToString();
        break;
      }
      state->sealed = *sealed;
      const std::string blob = (*sealed)->SerializeToBlob();
      Status st =
          leader->CommitSegment(table, segment, id_, state->offset, blob);
      if (!st.ok()) {
        PINOT_LOG_WARN << id_ << " commit rejected for " << segment << ": "
                       << st.ToString();
        state->sealed = nullptr;  // Resume polling next tick.
      }
      break;
    }
  }
  return indexed;
}

int Server::ProcessRealtimeTick() {
  // Snapshot the consuming set, then tick each under the server lock so
  // ingestion is serialized with queries over mutable segments.
  std::vector<std::pair<std::string, std::string>> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [table, segment_map] : consuming_) {
      for (const auto& [segment, state] : segment_map) {
        targets.emplace_back(table, segment);
      }
    }
  }
  int indexed = 0;
  for (const auto& [table, segment] : targets) {
    // The completion protocol may call back into the controller, which can
    // dispatch CONSUMING->ONLINE transitions back into this server; those
    // re-enter via OnSegmentStateTransition which takes mutex_, so tick
    // outside the lock and re-validate the state each iteration.
    ConsumingState* state = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto table_it = consuming_.find(table);
      if (table_it == consuming_.end()) continue;
      auto it = table_it->second.find(segment);
      if (it == table_it->second.end()) continue;
      state = &it->second;
    }
    indexed += TickConsuming(table, segment, state);
  }
  return indexed;
}

std::vector<std::string> Server::HostedSegments(
    const std::string& table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  auto it = segments_.find(table);
  if (it == segments_.end()) return out;
  for (const auto& [segment, view] : it->second) out.push_back(segment);
  return out;
}

std::shared_ptr<const RoaringBitmap> Server::UpsertInvalidDocs(
    const std::string& table, const std::string& segment) const {
  std::shared_ptr<SegmentInterface> view;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto table_it = segments_.find(table);
    if (table_it == segments_.end()) return nullptr;
    auto it = table_it->second.find(segment);
    if (it == table_it->second.end()) return nullptr;
    view = it->second;
  }
  const ValidDocsTracker* tracker = view->valid_docs();
  return tracker == nullptr ? nullptr : tracker->InvalidSnapshot();
}

uint64_t Server::UpsertDeadRows(const std::string& table,
                                const std::string& segment) const {
  auto invalid = UpsertInvalidDocs(table, segment);
  return invalid == nullptr ? 0 : invalid->Cardinality();
}

std::shared_ptr<UpsertTableState> Server::upsert_state(
    const std::string& table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = upsert_.find(table);
  return it == upsert_.end() ? nullptr : it->second;
}

uint64_t Server::HostedDataBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [table, segment_map] : segments_) {
    for (const auto& [segment, view] : segment_map) {
      auto immutable = std::dynamic_pointer_cast<const ImmutableSegment>(view);
      if (immutable != nullptr) total += immutable->SizeInBytes();
    }
  }
  return total;
}

}  // namespace pinot
