#ifndef PINOT_REALTIME_COMPLETION_H_
#define PINOT_REALTIME_COMPLETION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/status.h"

namespace pinot {

/// Instructions the controller returns to a polling server (paper section
/// 3.3.6).
enum class CompletionInstruction {
  kHold,       // Do nothing; poll again later.
  kDiscard,    // Drop local data; fetch the committed copy.
  kCatchup,    // Consume up to target_offset, then poll again.
  kKeep,       // Local data equals the committed copy; flush and load it.
  kCommit,     // Flush and attempt to commit.
  kNotLeader,  // This controller is not the leader; look up the leader.
};

const char* CompletionInstructionToString(CompletionInstruction instruction);

struct CompletionResponse {
  CompletionInstruction instruction = CompletionInstruction::kHold;
  // kCatchup: offset to consume to. kKeep/kDiscard: the committed offset.
  int64_t target_offset = -1;
};

/// The leader controller's per-segment consensus state machine (paper
/// section 3.3.6): replicas consuming the same partition from the same
/// start offset poll with their current offsets; the manager waits until
/// all replicas have reported or a timeout elapses, drives stragglers to
/// the largest offset via CATCHUP, picks one replica at the largest offset
/// as the committer, and hands every other replica KEEP or DISCARD once the
/// commit lands. "On controller failure, a new blank state machine is
/// started on the new leader controller; this only delays the segment
/// commit, but otherwise has no effect on correctness" — modeled by simply
/// constructing a fresh manager.
class SegmentCompletionManager {
 public:
  SegmentCompletionManager(Clock* clock, int64_t max_wait_millis)
      : clock_(clock), max_wait_millis_(max_wait_millis) {}

  /// A server finished (or paused) consuming `segment` at `offset`.
  CompletionResponse OnSegmentConsumed(const std::string& segment,
                                       const std::string& server,
                                       int64_t offset, int num_replicas);

  /// The designated committer attempts the commit. OK means the caller
  /// (controller) should persist the blob and finalize the segment;
  /// FailedPrecondition sends the server back to polling.
  Status OnCommitStart(const std::string& segment, const std::string& server,
                       int64_t offset);

  /// Finalizes a successful commit (controller persisted the blob).
  void OnCommitSuccess(const std::string& segment, int64_t offset);

  /// Reverts to gathering when the commit fails mid-flight.
  void OnCommitFailure(const std::string& segment);

  bool IsCommitted(const std::string& segment) const;
  int64_t CommittedOffset(const std::string& segment) const;

 private:
  enum class FsmState { kGathering, kCommitterDecided, kCommitting, kCommitted };

  struct SegmentFsm {
    FsmState state = FsmState::kGathering;
    std::map<std::string, int64_t> offsets;  // server -> latest reported.
    int64_t first_poll_millis = 0;
    std::string committer;
    int64_t target_offset = -1;
    int64_t committed_offset = -1;
  };

  Clock* const clock_;
  const int64_t max_wait_millis_;
  mutable std::mutex mutex_;
  std::map<std::string, SegmentFsm> segments_;
};

}  // namespace pinot

#endif  // PINOT_REALTIME_COMPLETION_H_
