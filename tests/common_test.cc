#include <gtest/gtest.h>

#include <atomic>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/thread_pool.h"

namespace pinot {
namespace {

TEST(BytesTest, WriteReadRoundTrip) {
  ByteWriter writer;
  writer.WriteU8(0xab);
  writer.WriteU32(0xdeadbeef);
  writer.WriteU64(0x0123456789abcdefULL);
  writer.WriteI32(-42);
  writer.WriteI64(-1LL << 40);
  writer.WriteF32(1.5f);
  writer.WriteF64(-2.25);
  writer.WriteString("hello");
  writer.WriteString("");

  ByteReader reader(writer.buffer());
  EXPECT_EQ(*reader.ReadU8(), 0xab);
  EXPECT_EQ(*reader.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(*reader.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*reader.ReadI32(), -42);
  EXPECT_EQ(*reader.ReadI64(), -1LL << 40);
  EXPECT_FLOAT_EQ(*reader.ReadF32(), 1.5f);
  EXPECT_DOUBLE_EQ(*reader.ReadF64(), -2.25);
  EXPECT_EQ(*reader.ReadString(), "hello");
  EXPECT_EQ(*reader.ReadString(), "");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, ReadPastEndFails) {
  ByteWriter writer;
  writer.WriteU32(7);
  ByteReader reader(writer.buffer());
  EXPECT_TRUE(reader.ReadU32().ok());
  auto more = reader.ReadU32();
  EXPECT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, CorruptStringLength) {
  ByteWriter writer;
  writer.WriteU32(1000);  // Claims 1000 bytes follow; none do.
  ByteReader reader(writer.buffer());
  EXPECT_FALSE(reader.ReadString().ok());
}

TEST(Crc32Test, KnownVectorAndSensitivity) {
  // Standard check value for "123456789" under CRC-32/IEEE.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
}

TEST(ClockTest, SimulatedClockControls) {
  SimulatedClock clock(100);
  EXPECT_EQ(clock.NowMillis(), 100);
  clock.AdvanceMillis(50);
  EXPECT_EQ(clock.NowMillis(), 150);
  clock.SetMillis(42);
  EXPECT_EQ(clock.NowMillis(), 42);
}

TEST(ClockTest, RealClockAdvances) {
  RealClock* clock = RealClock::Instance();
  const int64_t a = clock->NowMillis();
  EXPECT_GT(a, 1600000000000LL);  // After 2020.
  EXPECT_GE(clock->NowMillis(), a);
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndexes) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&hits](int i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  pool.ParallelFor(0, [](int) { FAIL(); });
}

TEST(ThreadPoolTest, DrainsOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace pinot
