#include "tenant/token_bucket.h"

#include <algorithm>
#include <cmath>
#include <thread>

namespace pinot {

TokenBucket::TokenBucket(double capacity, double refill_per_second,
                         Clock* clock)
    : capacity_(capacity),
      refill_per_ms_(refill_per_second / 1000.0),
      clock_(clock),
      tokens_(capacity),
      last_refill_millis_(clock->NowMillis()) {}

void TokenBucket::RefillLocked() {
  const int64_t now = clock_->NowMillis();
  const int64_t elapsed = now - last_refill_millis_;
  if (elapsed <= 0) return;
  tokens_ = std::min(capacity_, tokens_ + elapsed * refill_per_ms_);
  last_refill_millis_ = now;
}

bool TokenBucket::HasTokens() {
  std::lock_guard<std::mutex> lock(mutex_);
  RefillLocked();
  return tokens_ > 0;
}

void TokenBucket::Deduct(double tokens) {
  std::lock_guard<std::mutex> lock(mutex_);
  RefillLocked();
  tokens_ -= tokens;
}

double TokenBucket::Available() {
  std::lock_guard<std::mutex> lock(mutex_);
  RefillLocked();
  return tokens_;
}

int64_t TokenBucket::MillisUntilAvailable() {
  std::lock_guard<std::mutex> lock(mutex_);
  RefillLocked();
  if (tokens_ > 0) return 0;
  if (refill_per_ms_ <= 0) return INT64_MAX;
  return static_cast<int64_t>(std::ceil(-tokens_ / refill_per_ms_)) + 1;
}

void TenantQuotaManager::ConfigureTenant(const std::string& tenant,
                                         TenantLimits limits) {
  // The old bucket (if any) is only unreferenced here; admitting threads
  // holding a shared_ptr to it keep it alive until they re-resolve.
  std::lock_guard<std::mutex> lock(mutex_);
  buckets_[tenant] = std::make_shared<TokenBucket>(
      limits.burst_tokens, limits.refill_per_second, clock_);
}

std::shared_ptr<TokenBucket> TenantQuotaManager::GetBucket(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(tenant);
  return it == buckets_.end() ? nullptr : it->second;
}

bool TenantQuotaManager::HasTenant(const std::string& tenant) const {
  return GetBucket(tenant) != nullptr;
}

Status TenantQuotaManager::AdmitQuery(const std::string& tenant,
                                      int64_t timeout_millis) {
  std::shared_ptr<TokenBucket> bucket = GetBucket(tenant);
  if (bucket == nullptr) return Status::OK();
  const MetricLabels labels = {{"tenant", tenant}};
  const int64_t deadline = clock_->NowMillis() + timeout_millis;
  bool throttled = false;
  while (true) {
    if (bucket->HasTokens()) {
      metrics_->GetCounter("tenant_admitted_total", labels)->Increment();
      if (throttled) {
        metrics_->GetCounter("tenant_throttled_total", labels)->Increment();
      }
      return Status::OK();
    }
    throttled = true;
    const int64_t now = clock_->NowMillis();
    if (now >= deadline) {
      metrics_->GetCounter("tenant_timed_out_total", labels)->Increment();
      return Status::Timeout("tenant quota exhausted: " + tenant);
    }
    const int64_t wait =
        std::min(bucket->MillisUntilAvailable(), deadline - now);
    // Under a simulated clock the wait is driven by the test advancing
    // time; yield briefly to avoid a hot spin.
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::max<int64_t>(1, std::min<int64_t>(wait, 5))));
    // Re-resolve so a concurrent ConfigureTenant (new limits, or tenant
    // removal) takes effect mid-wait.
    bucket = GetBucket(tenant);
    if (bucket == nullptr) return Status::OK();
  }
}

void TenantQuotaManager::RecordExecution(const std::string& tenant,
                                         double execution_millis) {
  std::shared_ptr<TokenBucket> bucket = GetBucket(tenant);
  if (bucket != nullptr) bucket->Deduct(execution_millis);
}

}  // namespace pinot
