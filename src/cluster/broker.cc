#include "cluster/broker.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <set>

#include "cluster/property_store.h"
#include "common/hash.h"
#include "common/logging.h"
#include "query/parser.h"

namespace pinot {

Broker::Broker(std::string id, ClusterContext ctx, Options options)
    : id_(std::move(id)),
      ctx_(std::move(ctx)),
      options_(options),
      metrics_(ctx_.metrics != nullptr ? ctx_.metrics
                                       : MetricsRegistry::Default()),
      pool_(options.scatter_threads),
      rng_(options.seed) {}

Broker::Broker(std::string id, ClusterContext ctx)
    : Broker(std::move(id), std::move(ctx), Options()) {}

Broker::~Broker() {
  if (view_watch_handle_ >= 0) {
    ctx_.cluster->UnwatchExternalView(view_watch_handle_);
  }
}

void Broker::Start() {
  ctx_.cluster->RegisterInstance(id_, {"broker"}, nullptr);
  view_watch_handle_ = ctx_.cluster->WatchExternalView(
      [this](const std::string& table) { RebuildRouting(table); });
}

void Broker::RebuildRouting(const std::string& physical_table) {
  auto routing = std::make_shared<TableRouting>();

  // Table config (for strategy parameters); may be absent for tables we
  // only see through the view.
  auto encoded =
      ctx_.property_store->Get(zkpaths::TableConfigPath(physical_table));
  if (encoded.ok()) {
    ByteReader reader(*encoded);
    auto config = TableConfig::Deserialize(&reader);
    if (config.ok()) {
      routing->config = std::move(config).value();
      routing->config_loaded = true;
    }
  }

  const TableView view = ctx_.cluster->GetExternalView(physical_table);
  routing->segment_servers = QueryableReplicas(view);

  // Partition metadata for partition-aware pruning.
  if (routing->config_loaded &&
      routing->config.routing == RoutingStrategy::kPartitionAware) {
    for (const auto& [segment, servers] : routing->segment_servers) {
      auto meta_encoded = ctx_.property_store->Get(
          zkpaths::SegmentMetadataPath(physical_table, segment));
      int32_t partition = -1;
      if (meta_encoded.ok()) {
        auto meta = SegmentZkMetadata::Decode(*meta_encoded);
        if (meta.ok()) partition = meta->partition;
      }
      routing->segment_partitions[segment] = partition;
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (!routing->segment_servers.empty()) {
    switch (routing->config_loaded ? routing->config.routing
                                   : RoutingStrategy::kBalanced) {
      case RoutingStrategy::kBalanced:
        for (int i = 0; i < options_.balanced_tables; ++i) {
          routing->routing_tables.push_back(
              BuildBalancedRoutingTable(routing->segment_servers, &rng_));
        }
        break;
      case RoutingStrategy::kGenerated: {
        GeneratedRoutingOptions gen;
        gen.target_server_count = routing->config.target_servers_per_query;
        gen.tables_to_generate = routing->config.routing_tables_to_generate;
        gen.tables_to_keep = routing->config.routing_tables_to_keep;
        routing->routing_tables =
            GenerateRoutingTables(routing->segment_servers, gen, &rng_);
        break;
      }
      case RoutingStrategy::kPartitionAware:
        // Built per query from the filter (section 4.4).
        break;
    }
  }
  routing_[physical_table] = std::move(routing);
}

std::shared_ptr<Broker::TableRouting> Broker::GetRouting(
    const std::string& physical_table) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = routing_.find(physical_table);
    if (it != routing_.end()) return it->second;
  }
  RebuildRouting(physical_table);
  std::lock_guard<std::mutex> lock(mutex_);
  return routing_[physical_table];
}

namespace {

// Finds EQ/IN predicates on `column` in the top-level conjunction and
// returns the matching partition set; `all_partitions` when the filter
// does not constrain the column.
void CollectPartitionValues(const FilterNode& node, const std::string& column,
                            std::vector<Value>* values, bool* constrained) {
  switch (node.kind) {
    case FilterNode::Kind::kLeaf:
      if (node.predicate.column == column &&
          (node.predicate.op == PredicateOp::kEq ||
           node.predicate.op == PredicateOp::kIn)) {
        *constrained = true;
        for (const auto& v : node.predicate.values) values->push_back(v);
      }
      return;
    case FilterNode::Kind::kAnd:
      for (const auto& child : node.children) {
        CollectPartitionValues(child, column, values, constrained);
      }
      return;
    case FilterNode::Kind::kOr:
      // Partition pruning across OR requires every branch to constrain the
      // column; keep it conservative and do not prune.
      return;
  }
}

}  // namespace

RoutingTable Broker::BuildPartitionAwareTable(const TableRouting& routing,
                                              const Query& query) {
  // Which partitions can match the query?
  std::vector<Value> values;
  bool constrained = false;
  if (query.filter.has_value() && routing.config.num_partitions > 0) {
    CollectPartitionValues(*query.filter, routing.config.partition_column,
                           &values, &constrained);
  }
  std::vector<bool> wanted(
      std::max(routing.config.num_partitions, 1), !constrained);
  if (constrained) {
    for (const auto& v : values) {
      const int partition = KafkaPartition(
          ValueToString(v), routing.config.num_partitions);
      wanted[partition] = true;
    }
  }

  RoutingTable table;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [segment, servers] : routing.segment_servers) {
    auto part_it = routing.segment_partitions.find(segment);
    const int32_t partition =
        part_it == routing.segment_partitions.end() ? -1 : part_it->second;
    // Unpartitioned segments (-1) must always be queried.
    if (partition >= 0 && partition < static_cast<int>(wanted.size()) &&
        !wanted[partition]) {
      continue;
    }
    const std::string& server =
        servers[rng_.NextUint64(servers.size())];
    table.server_segments[server].push_back(segment);
  }
  return table;
}

namespace {

// Whole-call failures worth retrying on another replica: the server was
// unreachable, died mid-request, or ran out of time. Anything else (e.g. a
// routing race reported as NotFound) carries data plus a per-segment
// status and is merged as-is.
bool IsRetryableScatterFailure(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
             .count() /
         1000.0;
}

}  // namespace

void Broker::QueryPhysicalTable(const std::string& physical_table,
                                const Query& query,
                                std::chrono::steady_clock::time_point deadline,
                                PartialResult* merged, QueryTrace* trace) {
  std::shared_ptr<TableRouting> routing = GetRouting(physical_table);
  if (routing->segment_servers.empty()) {
    return;  // Table has no queryable segments (not an error).
  }

  // Pick the routing table (section 3.3.3 step 2: "picked at random").
  RoutingTable table;
  const RoutingStrategy strategy = routing->config_loaded
                                       ? routing->config.routing
                                       : RoutingStrategy::kBalanced;
  if (strategy == RoutingStrategy::kPartitionAware) {
    table = BuildPartitionAwareTable(*routing, query);
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    if (routing->routing_tables.empty()) return;
    table = routing->routing_tables[rng_.NextUint64(
        routing->routing_tables.size())];
  }

  struct ScatterCall {
    std::string server;
    std::vector<std::string> segments;
    PartialResult result;
    std::future<void> done;
    std::chrono::steady_clock::time_point started;
  };

  // Scatter/gather with bounded replica failover: each wave scatters the
  // still-unanswered segments, waits for its slice of the remaining
  // deadline budget, and re-routes the segments of failed calls to a
  // replica that has not failed them yet. Segments whose call answered are
  // merged exactly once — a retried call's original result is discarded
  // wholesale, never merged alongside its replacement.
  std::map<std::string, std::vector<std::string>> assignment =
      std::move(table.server_segments);
  std::map<std::string, std::set<std::string>> tried_servers;
  std::vector<std::string> dead_segments;  // Replicas/retries exhausted.
  const int max_attempts = std::max(1, options_.max_scatter_retries + 1);

  for (int attempt = 0; attempt < max_attempts && !assignment.empty();
       ++attempt) {
    std::vector<std::string> failed_segments;
    auto record_failure = [&](const std::string& server,
                              const std::vector<std::string>& segments,
                              double latency_millis, std::string outcome) {
      ScatterTraceEvent event;
      event.physical_table = physical_table;
      event.server = server;
      event.segments = segments;
      event.attempt = attempt;
      event.latency_millis = latency_millis;
      event.outcome = std::move(outcome);
      trace->events.push_back(std::move(event));
      for (const auto& segment : segments) {
        tried_servers[segment].insert(server);
        failed_segments.push_back(segment);
      }
    };

    // Scatter (step 3). Dead or unknown servers fail immediately and their
    // segments join this wave's retry set.
    std::vector<std::shared_ptr<ScatterCall>> calls;
    const int64_t remaining_millis = std::max<int64_t>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(
               deadline - std::chrono::steady_clock::now())
               .count());
    for (auto& [server, segments] : assignment) {
      QueryServerApi* endpoint = ctx_.server_endpoint
                                     ? ctx_.server_endpoint(server)
                                     : nullptr;
      if (endpoint == nullptr || !ctx_.cluster->IsInstanceReachable(server)) {
        record_failure(server, segments, 0, "unreachable");
        continue;
      }
      auto call = std::make_shared<ScatterCall>();
      call->server = server;
      call->segments = segments;
      ServerQueryRequest request;
      request.physical_table = physical_table;
      request.query = query;
      request.segments = segments;
      request.tenant = routing->config_loaded
                           ? routing->config.server_tenant
                           : std::string();
      request.timeout_millis = remaining_millis;
      call->started = std::chrono::steady_clock::now();
      call->done = pool_.Submit([call, endpoint, request = std::move(request)] {
        call->result = endpoint->ExecuteServerQuery(request);
      });
      calls.push_back(std::move(call));
    }

    // Gather (steps 6-7). Every wave but the last waits only for its share
    // of the remaining budget so failed segments still have time to retry;
    // the last wave runs to the query deadline. Timed-out calls are
    // abandoned (the worker lambda keeps the call alive via shared
    // ownership) and never merged, even if they complete later.
    auto attempt_deadline = deadline;
    const auto now = std::chrono::steady_clock::now();
    if (attempt + 1 < max_attempts && deadline > now) {
      attempt_deadline = now + (deadline - now) / (max_attempts - attempt);
    }
    for (auto& call : calls) {
      if (call->done.wait_until(attempt_deadline) ==
          std::future_status::ready) {
        const double latency = MillisSince(call->started);
        const Status& st = call->result.status;
        if (st.ok() || !IsRetryableScatterFailure(st.code())) {
          ScatterTraceEvent event;
          event.physical_table = physical_table;
          event.server = call->server;
          event.segments = std::move(call->segments);
          event.attempt = attempt;
          event.latency_millis = latency;
          event.outcome = st.ok() ? "ok" : "error: " + st.ToString();
          trace->events.push_back(std::move(event));
          merged->Merge(std::move(call->result));
        } else {
          record_failure(call->server, call->segments, latency,
                         "failed: " + st.ToString());
        }
      } else {
        ++trace->timeouts;
        record_failure(call->server, call->segments,
                       MillisSince(call->started), "timeout");
      }
    }

    // Re-route failed segments to untried live replicas (next wave).
    assignment.clear();
    if (failed_segments.empty()) break;
    if (attempt + 1 >= max_attempts) {
      dead_segments.insert(dead_segments.end(), failed_segments.begin(),
                           failed_segments.end());
      break;
    }
    for (const auto& segment : failed_segments) {
      auto servers_it = routing->segment_servers.find(segment);
      std::string replica;
      if (servers_it != routing->segment_servers.end()) {
        std::lock_guard<std::mutex> lock(mutex_);
        replica = PickReplica(
            servers_it->second, tried_servers[segment],
            [this](const std::string& s) {
              return ctx_.cluster->IsInstanceReachable(s);
            },
            &rng_);
      }
      if (replica.empty()) {
        dead_segments.push_back(segment);
      } else {
        ++trace->retries;
        assignment[replica].push_back(segment);
      }
    }
  }

  if (!dead_segments.empty()) {
    std::sort(dead_segments.begin(), dead_segments.end());
    dead_segments.erase(
        std::unique(dead_segments.begin(), dead_segments.end()),
        dead_segments.end());
    std::string message = "no live replica answered segments:";
    for (const auto& segment : dead_segments) message += " " + segment;
    message += " (table " + physical_table + ")";
    if (merged->status.ok()) {
      merged->status = Status::Unavailable(std::move(message));
    }
  }
}

QueryResult Broker::Execute(const std::string& pql) {
  auto query = ParsePql(pql);
  if (!query.ok()) {
    QueryResult result;
    result.partial = true;
    result.error_message = query.status().ToString();
    return result;
  }
  return ExecuteQuery(*query);
}

namespace {

// Defensive parse of the time-boundary property. A corrupt value (empty,
// non-numeric, trailing garbage, out of range) must not take the broker
// down — this path used to throw out of std::stoll on garbage znodes.
std::optional<int64_t> ParseTimeBoundary(const std::string& raw) {
  if (raw.empty()) return std::nullopt;
  // strtoll silently skips leading whitespace; treat it as corruption.
  if (std::isspace(static_cast<unsigned char>(raw.front()))) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw.c_str(), &end, 10);
  if (errno == ERANGE || end != raw.c_str() + raw.size()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(parsed);
}

}  // namespace

QueryResult Broker::ExecuteQuery(const Query& query) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::milliseconds(options_.default_timeout_millis);
  PartialResult merged;
  QueryTrace trace;

  // Resolve the logical table into physical tables. A name that is already
  // physical is used as-is.
  std::vector<std::pair<std::string, Query>> plans;
  auto is_physical = [](const std::string& name) {
    return name.size() > 8 &&
           (name.rfind("_OFFLINE") == name.size() - 8 ||
            (name.size() > 9 && name.rfind("_REALTIME") == name.size() - 9));
  };
  if (is_physical(query.table)) {
    plans.emplace_back(query.table, query);
  } else {
    const std::string offline = query.table + "_OFFLINE";
    const std::string realtime = query.table + "_REALTIME";
    const bool has_offline =
        ctx_.property_store->Exists(zkpaths::TableConfigPath(offline));
    const bool has_realtime =
        ctx_.property_store->Exists(zkpaths::TableConfigPath(realtime));
    if (has_offline && has_realtime) {
      // Hybrid rewrite (section 3.3.3, Figure 6): offline serves strictly
      // before the time boundary, realtime serves at/after it.
      auto boundary_str =
          ctx_.property_store->Get(zkpaths::TimeBoundaryPath(query.table));
      auto config_encoded =
          ctx_.property_store->Get(zkpaths::TableConfigPath(offline));
      std::string time_column;
      if (config_encoded.ok()) {
        ByteReader reader(*config_encoded);
        auto config = TableConfig::Deserialize(&reader);
        if (config.ok()) time_column = config->schema.time_column();
      }
      std::optional<int64_t> boundary;
      if (boundary_str.ok()) {
        boundary = ParseTimeBoundary(*boundary_str);
        if (!boundary.has_value()) {
          PINOT_LOG_WARN << id_ << ": corrupt time boundary for "
                         << query.table << " (\"" << *boundary_str
                         << "\"); falling back to unfiltered hybrid plan";
        }
      }
      if (boundary.has_value() && !time_column.empty()) {
        auto with_time_filter = [&](const Query& base, bool offline_side) {
          Query q = base;
          Predicate pred;
          pred.column = time_column;
          pred.op = PredicateOp::kRange;
          if (offline_side) {
            pred.upper = *boundary - 1;
            pred.upper_inclusive = true;
          } else {
            pred.lower = *boundary;
            pred.lower_inclusive = true;
          }
          FilterNode leaf = FilterNode::Leaf(std::move(pred));
          if (q.filter.has_value()) {
            q.filter = FilterNode::And({*std::move(q.filter), std::move(leaf)});
          } else {
            q.filter = std::move(leaf);
          }
          return q;
        };
        plans.emplace_back(offline, with_time_filter(query, true));
        plans.emplace_back(realtime, with_time_filter(query, false));
      } else {
        plans.emplace_back(offline, query);
        plans.emplace_back(realtime, query);
      }
    } else if (has_offline) {
      plans.emplace_back(offline, query);
    } else if (has_realtime) {
      plans.emplace_back(realtime, query);
    } else {
      QueryResult result;
      result.partial = true;
      result.error_message = "no such table: " + query.table;
      return result;
    }
  }

  for (const auto& [physical, subquery] : plans) {
    QueryPhysicalTable(physical, subquery, deadline, &merged, &trace);
  }

  const auto reduce_start = std::chrono::steady_clock::now();
  QueryResult result = ReduceToFinalResult(query, std::move(merged));
  const auto end = std::chrono::steady_clock::now();
  result.latency_millis =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count() /
      1000.0;

  const MetricLabels table_labels = {{"table", query.table}};
  metrics_->GetCounter("broker_queries_total")->Increment();
  if (result.partial) {
    metrics_->GetCounter("broker_partial_results_total")->Increment();
  }
  if (trace.retries > 0) {
    metrics_->GetCounter("broker_scatter_retries_total")
        ->Increment(trace.retries);
  }
  if (trace.timeouts > 0) {
    metrics_->GetCounter("broker_scatter_timeouts_total")
        ->Increment(trace.timeouts);
  }
  metrics_->GetHistogram("broker_query_latency_ms", table_labels)
      ->Observe(result.latency_millis);
  metrics_->GetHistogram("broker_reduce_time_ms")
      ->Observe(std::chrono::duration_cast<std::chrono::microseconds>(
                    end - reduce_start)
                    .count() /
                1000.0);
  result.trace = std::move(trace);
  return result;
}

}  // namespace pinot
