#include "cluster/index_advisor.h"

#include <gtest/gtest.h>

#include "cluster/pinot_cluster.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

TableConfig AdvisorConfig() {
  TableConfig config;
  config.name = "analytics";
  config.type = TableType::kOffline;
  config.schema = test::AnalyticsSchema();
  config.sort_columns = {"memberId"};
  config.inverted_index_columns = {"country"};
  return config;
}

void Record(IndexAdvisor& advisor, const std::string& pql,
            uint64_t docs_scanned, int times = 1) {
  auto query = ParsePql(pql);
  ASSERT_TRUE(query.ok()) << pql;
  for (int i = 0; i < times; ++i) {
    advisor.RecordQuery("analytics_OFFLINE", *query, docs_scanned);
  }
}

TEST(IndexAdvisorTest, RecommendsHeavilyFilteredUnindexedColumn) {
  IndexAdvisor::Options options;
  options.min_filter_count = 50;
  options.min_avg_docs_scanned = 100;
  IndexAdvisor advisor(options);
  Record(advisor, "SELECT count(*) FROM analytics WHERE browser = 'firefox'",
         5000, 200);
  auto recommendations = advisor.Analyze(AdvisorConfig());
  ASSERT_EQ(recommendations.size(), 1u);
  EXPECT_EQ(recommendations[0].column, "browser");
  EXPECT_EQ(recommendations[0].filter_count, 200u);
}

TEST(IndexAdvisorTest, SkipsSortedAndAlreadyIndexedColumns) {
  IndexAdvisor::Options options;
  options.min_filter_count = 10;
  options.min_avg_docs_scanned = 0;
  IndexAdvisor advisor(options);
  // memberId is the sorted column, country already has an inverted index.
  Record(advisor,
         "SELECT count(*) FROM analytics WHERE memberId = 1 AND country = "
         "'us'",
         5000, 100);
  EXPECT_TRUE(advisor.Analyze(AdvisorConfig()).empty());
}

TEST(IndexAdvisorTest, IgnoresRareFiltersAndCheapTables) {
  IndexAdvisor::Options options;
  options.min_filter_count = 100;
  options.min_avg_docs_scanned = 1000;
  IndexAdvisor advisor(options);
  // Too few queries on the column.
  Record(advisor, "SELECT count(*) FROM analytics WHERE browser = 'x'", 5000,
         10);
  EXPECT_TRUE(advisor.Analyze(AdvisorConfig()).empty());
  // Enough queries, but scans are already cheap.
  IndexAdvisor advisor2(options);
  Record(advisor2, "SELECT count(*) FROM analytics WHERE browser = 'x'", 5,
         500);
  EXPECT_TRUE(advisor2.Analyze(AdvisorConfig()).empty());
}

TEST(IndexAdvisorTest, RanksByFilterFrequency) {
  IndexAdvisor::Options options;
  options.min_filter_count = 1;
  options.min_avg_docs_scanned = 0;
  IndexAdvisor advisor(options);
  Record(advisor, "SELECT count(*) FROM analytics WHERE browser = 'x'", 100,
         30);
  Record(advisor, "SELECT count(*) FROM analytics WHERE day > 5", 100, 80);
  auto recommendations = advisor.Analyze(AdvisorConfig());
  ASSERT_EQ(recommendations.size(), 2u);
  EXPECT_EQ(recommendations[0].column, "day");
  EXPECT_EQ(recommendations[1].column, "browser");
}

TEST(IndexAdvisorTest, ApplyUpdatesConfigAndServers) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  TableConfig config;
  config.name = "analytics";
  config.type = TableType::kOffline;
  config.schema = test::AnalyticsSchema();
  ASSERT_TRUE(leader->AddTable(config).ok());
  SegmentBuildConfig build;
  build.table_name = "analytics_OFFLINE";
  build.segment_name = "seg0";
  auto segment = test::BuildAnalyticsSegment(build);
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", segment->SerializeToBlob())
          .ok());

  IndexAdvisor::Options options;
  options.min_filter_count = 5;
  options.min_avg_docs_scanned = 1;
  IndexAdvisor advisor(options);
  auto query =
      ParsePql("SELECT count(*) FROM analytics WHERE browser = 'firefox'");
  for (int i = 0; i < 10; ++i) {
    advisor.RecordQuery("analytics_OFFLINE", *query, 1000);
  }

  auto applied = advisor.Apply(leader, "analytics_OFFLINE");
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0].column, "browser");

  // The stored config now lists the column...
  auto updated = leader->GetTableConfig("analytics_OFFLINE");
  ASSERT_TRUE(updated.ok());
  ASSERT_EQ(updated->inverted_index_columns.size(), 1u);
  EXPECT_EQ(updated->inverted_index_columns[0], "browser");

  // ...and queries keep working (index built on hosted segments).
  auto result = cluster.Execute(
      "SELECT count(*) FROM analytics WHERE browser = 'firefox'");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 5);

  // Second Apply is a no-op (column now indexed).
  EXPECT_TRUE(advisor.Apply(leader, "analytics_OFFLINE").empty());
}

}  // namespace
}  // namespace pinot
