#ifndef PINOT_METRICS_METRICS_H_
#define PINOT_METRICS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pinot {

/// Cluster-wide observability primitives ("Enhancing OLAP Resilience at
/// LinkedIn": operating Pinot hinges on continuous latency and ingestion
/// metrics; paper section 6 runs the system against site-facing SLAs).
///
/// Design: registration (name + label lookup) takes a registry mutex once,
/// after which callers hold a stable pointer and every update is a relaxed
/// atomic — cheap enough for per-document and per-query hot paths. Metrics
/// are never removed, so cached pointers stay valid for the registry's
/// lifetime.

/// Monotonic event count. Relaxed atomics: increments are never used for
/// synchronization, only for observation.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (e.g. consumption lag in offsets).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed log-bucketed histogram: bucket i spans
/// (kFirstBound * 2^(i-1), kFirstBound * 2^i], so percentile estimates
/// carry at most one octave of relative error, refined by linear
/// interpolation inside the bucket. Covers sub-microsecond through years
/// when fed milliseconds.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;
  static constexpr double kFirstBound = 0.001;

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Smallest / largest observed value; 0 when empty. Log buckets alone
  /// carry an octave of error, so the true extremes are tracked exactly
  /// and percentile interpolation is clamped to them.
  double Min() const;
  double Max() const;

  /// Estimated value at percentile `p` in [0, 100]. 0 when empty. The
  /// snapshot is not atomic across buckets; concurrent observations make
  /// the estimate approximate, never unsafe. Clamped to [Min(), Max()].
  double Percentile(double p) const;

  /// Inclusive upper bound of bucket `i`: kFirstBound * 2^i.
  static double BucketUpperBound(int i);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  // Raw extremes; ±infinity until the first observation (Min()/Max() hide
  // that behind a count check).
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Sorted (key, value) label pairs identifying one series of a family,
/// e.g. query_latency_ms{table="analytics"}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Registry of labeled metric families. Get* returns the existing series
/// or creates it; returned pointers are stable until the registry dies.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name,
                      const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels = {});
  Histogram* GetHistogram(const std::string& name,
                          const MetricLabels& labels = {});

  /// Test/inspection helpers: current value, or 0 / null-like defaults when
  /// the series was never created (creation is NOT triggered).
  uint64_t CounterValue(const std::string& name,
                        const MetricLabels& labels = {}) const;
  double GaugeValue(const std::string& name,
                    const MetricLabels& labels = {}) const;
  const Histogram* FindHistogram(const std::string& name,
                                 const MetricLabels& labels = {}) const;

  /// Prometheus-style text exposition. Counters and gauges render one line
  /// per series; histograms render <name>_count, <name>_sum, <name>_min,
  /// <name>_max, and quantile="0.5|0.95|0.99" series. Output is sorted for
  /// determinism. The registry mutex is held only to snapshot the series
  /// pointers — percentile math and rendering run unlocked, so hot-path
  /// Get* registration never blocks behind a dump.
  std::string Dump() const;

  /// Stable (key, series) pointers for every live series, captured under
  /// the registry mutex. Series are never removed, so the pointers stay
  /// valid for the registry's lifetime; values are read via relaxed
  /// atomics by the caller. This is the snapshot layer's iteration API.
  std::vector<std::pair<std::string, const Counter*>> CounterSeries() const;
  std::vector<std::pair<std::string, const Gauge*>> GaugeSeries() const;
  std::vector<std::pair<std::string, const Histogram*>> HistogramSeries()
      const;

  /// Canonical series key: `name` alone, or name{k="v",...} with labels
  /// sorted by key and values sanitized (see SanitizeLabelValue).
  static std::string SeriesKey(const std::string& name,
                               const MetricLabels& labels);

  /// Replaces characters that would corrupt the exposition format or the
  /// series-key grammar (`"`, `\`, newline, carriage return, tab) with
  /// '_'. Applied to every label value by SeriesKey.
  static std::string SanitizeLabelValue(const std::string& value);

  /// Process-wide fallback registry for components constructed without one
  /// (standalone tools, the on-disk segment store's free functions).
  static MetricsRegistry* Default();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// "name{a=\"b\"}" -> "name"; unlabeled keys pass through unchanged.
std::string MetricFamilyName(const std::string& series_key);

/// Value of `label` in a series key, or "" when absent. Label values are
/// sanitized at registration (no embedded quotes), so a simple scan to the
/// closing quote is exact.
std::string MetricLabelValue(const std::string& series_key,
                             const std::string& label);

}  // namespace pinot

#endif  // PINOT_METRICS_METRICS_H_
