// Ablation (section 4.4): the routing-table fitness metric. The paper
// keeps the candidate routing tables with the lowest *variance of segments
// per server*. This bench compares that selection against keeping random
// candidates, reporting the load balance of the tables a broker would
// actually use.

#include <cstdio>

#include "common/random.h"
#include "routing/routing.h"

namespace pinot {
namespace {

std::map<std::string, std::vector<std::string>> MakeReplicaMap(
    int num_segments, int num_servers, int replicas, Random* rng) {
  std::map<std::string, std::vector<std::string>> out;
  for (int s = 0; s < num_segments; ++s) {
    std::vector<std::string> servers;
    while (static_cast<int>(servers.size()) < replicas) {
      std::string candidate =
          "server-" + std::to_string(rng->NextUint64(num_servers));
      if (std::find(servers.begin(), servers.end(), candidate) ==
          servers.end()) {
        servers.push_back(std::move(candidate));
      }
    }
    out["segment-" + std::to_string(s)] = std::move(servers);
  }
  return out;
}

double MaxLoad(const RoutingTable& table) {
  size_t max_load = 0;
  for (const auto& [server, segments] : table.server_segments) {
    max_load = std::max(max_load, segments.size());
  }
  return static_cast<double>(max_load);
}

int Main() {
  Random rng(42);
  auto replicas = MakeReplicaMap(1200, 40, 3, &rng);

  GeneratedRoutingOptions options;
  options.target_server_count = 8;
  options.tables_to_generate = 200;
  options.tables_to_keep = 10;

  std::printf("# Ablation — routing-table selection metric (variance)\n");
  std::printf("# 1200 segments, 40 servers, 3 replicas, T=8, G=200, C=10\n");
  std::printf("%-26s %14s %14s %12s\n", "selection", "mean_variance",
              "mean_max_load", "servers/qry");

  // Variance-selected tables (Algorithm 2).
  {
    auto tables = GenerateRoutingTables(replicas, options, &rng);
    double variance = 0, max_load = 0, servers = 0;
    for (const auto& table : tables) {
      variance += RoutingTableMetric(table);
      max_load += MaxLoad(table);
      servers += table.num_servers();
    }
    const double n = static_cast<double>(tables.size());
    std::printf("%-26s %14.2f %14.1f %12.1f\n", "variance-metric (paper)",
                variance / n, max_load / n, servers / n);
  }

  // Random keep: first C candidates, no selection.
  {
    double variance = 0, max_load = 0, servers = 0;
    for (int i = 0; i < options.tables_to_keep; ++i) {
      RoutingTable table =
          GenerateRoutingTable(replicas, options.target_server_count, &rng);
      variance += RoutingTableMetric(table);
      max_load += MaxLoad(table);
      servers += table.num_servers();
    }
    const double n = options.tables_to_keep;
    std::printf("%-26s %14.2f %14.1f %12.1f\n", "random-keep", variance / n,
                max_load / n, servers / n);
  }
  return 0;
}

}  // namespace
}  // namespace pinot

int main() { return pinot::Main(); }
