// Ablation (section 4.3): the star-tree max-leaf-records threshold. A
// smaller threshold splits deeper (bigger tree, fewer records scanned per
// query); a larger threshold keeps the tree small but scans more records
// at the leaves. This sweep reports the size/records-scanned/latency
// tradeoff behind the paper's 10k default.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "query/segment_executor.h"

namespace pinot {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  Workload workload = MakeAnomalyWorkload(options.workload_options());
  std::vector<Query> queries = ParseQueries(workload);

  std::printf("# Ablation — star-tree max_leaf_records sweep (%u rows)\n",
              options.rows);
  std::printf("%-14s %14s %14s %16s %12s\n", "max_leaf", "tree_records",
              "tree_bytes", "avg_recs/query", "avg_ms");

  for (uint32_t max_leaf : {100u, 1000u, 10000u, 100000u}) {
    SegmentBuildConfig config = workload.pinot_config;
    config.star_tree.max_leaf_records = max_leaf;
    auto segments =
        BuildSegments(workload, config, options.num_segments, "abl");

    uint64_t tree_records = 0;
    uint64_t tree_bytes = 0;
    for (const auto& segment : segments) {
      const StarTree* tree = segment->star_tree();
      if (tree != nullptr) {
        tree_records += tree->num_records();
        tree_bytes += tree->SizeInBytes();
      }
    }

    uint64_t scanned = 0;
    uint64_t eligible = 0;
    double total_ms = 0;
    const size_t sample = std::min<size_t>(queries.size(), 500);
    for (size_t i = 0; i < sample; ++i) {
      const auto start = std::chrono::steady_clock::now();
      PartialResult partial = ExecuteQueryOnSegments(segments, queries[i]);
      total_ms += std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      if (partial.stats.used_star_tree) {
        scanned += partial.stats.star_tree_records_scanned;
        ++eligible;
      }
    }
    std::printf("%-14u %14lu %14lu %16.0f %12.3f\n", max_leaf,
                static_cast<unsigned long>(tree_records),
                static_cast<unsigned long>(tree_bytes),
                eligible == 0 ? 0.0
                              : static_cast<double>(scanned) /
                                    static_cast<double>(eligible),
                total_ms / static_cast<double>(sample));
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pinot

int main(int argc, char** argv) { return pinot::bench::Main(argc, argv); }
