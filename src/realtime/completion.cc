#include "realtime/completion.h"

#include <algorithm>

namespace pinot {

const char* CompletionInstructionToString(CompletionInstruction instruction) {
  switch (instruction) {
    case CompletionInstruction::kHold:
      return "HOLD";
    case CompletionInstruction::kDiscard:
      return "DISCARD";
    case CompletionInstruction::kCatchup:
      return "CATCHUP";
    case CompletionInstruction::kKeep:
      return "KEEP";
    case CompletionInstruction::kCommit:
      return "COMMIT";
    case CompletionInstruction::kNotLeader:
      return "NOTLEADER";
  }
  return "?";
}

CompletionResponse SegmentCompletionManager::OnSegmentConsumed(
    const std::string& segment, const std::string& server, int64_t offset,
    int num_replicas) {
  std::lock_guard<std::mutex> lock(mutex_);
  SegmentFsm& fsm = segments_[segment];
  if (fsm.offsets.empty()) fsm.first_poll_millis = clock_->NowMillis();

  if (fsm.state == FsmState::kCommitted) {
    if (offset == fsm.committed_offset) {
      return {CompletionInstruction::kKeep, fsm.committed_offset};
    }
    return {CompletionInstruction::kDiscard, fsm.committed_offset};
  }

  auto it = fsm.offsets.find(server);
  if (it == fsm.offsets.end()) {
    fsm.offsets[server] = offset;
  } else {
    it->second = std::max(it->second, offset);
  }

  if (fsm.state == FsmState::kCommitterDecided ||
      fsm.state == FsmState::kCommitting) {
    if (offset < fsm.target_offset) {
      return {CompletionInstruction::kCatchup, fsm.target_offset};
    }
    if (offset > fsm.target_offset) {
      // The replica overshot the chosen commit point. It can never catch
      // *down*, so holding it would park it forever; discard its local data
      // and let it rebuild from the committed segment.
      return {CompletionInstruction::kDiscard, fsm.target_offset};
    }
    if (server == fsm.committer && offset == fsm.target_offset &&
        fsm.state == FsmState::kCommitterDecided) {
      return {CompletionInstruction::kCommit, fsm.target_offset};
    }
    // Another replica already at the target, or the committer's commit is
    // in flight: wait for the outcome.
    return {CompletionInstruction::kHold, fsm.target_offset};
  }

  // Gathering: wait for all replicas or the timeout since the first poll.
  const bool all_reported =
      static_cast<int>(fsm.offsets.size()) >= num_replicas;
  const bool timed_out =
      clock_->NowMillis() - fsm.first_poll_millis >= max_wait_millis_;
  if (!all_reported && !timed_out) {
    return {CompletionInstruction::kHold, -1};
  }

  // Decide: drive everyone to the largest reported offset; the first
  // replica polling at that offset becomes the committer.
  int64_t max_offset = -1;
  for (const auto& [replica, replica_offset] : fsm.offsets) {
    max_offset = std::max(max_offset, replica_offset);
  }
  fsm.target_offset = max_offset;
  if (offset < max_offset) {
    return {CompletionInstruction::kCatchup, max_offset};
  }
  fsm.state = FsmState::kCommitterDecided;
  fsm.committer = server;
  return {CompletionInstruction::kCommit, max_offset};
}

Status SegmentCompletionManager::OnCommitStart(const std::string& segment,
                                               const std::string& server,
                                               int64_t offset) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = segments_.find(segment);
  if (it == segments_.end()) {
    return Status::FailedPrecondition("no completion state for " + segment);
  }
  SegmentFsm& fsm = it->second;
  if (fsm.state != FsmState::kCommitterDecided || fsm.committer != server ||
      fsm.target_offset != offset) {
    return Status::FailedPrecondition("not the designated committer");
  }
  fsm.state = FsmState::kCommitting;
  return Status::OK();
}

void SegmentCompletionManager::OnCommitSuccess(const std::string& segment,
                                               int64_t offset) {
  std::lock_guard<std::mutex> lock(mutex_);
  SegmentFsm& fsm = segments_[segment];
  fsm.state = FsmState::kCommitted;
  fsm.committed_offset = offset;
}

void SegmentCompletionManager::OnCommitFailure(const std::string& segment) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = segments_.find(segment);
  if (it == segments_.end()) return;
  if (it->second.state == FsmState::kCommitting) {
    // Allow a different replica at the target offset to become committer.
    it->second.state = FsmState::kGathering;
    it->second.committer.clear();
  }
}

bool SegmentCompletionManager::IsCommitted(const std::string& segment) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = segments_.find(segment);
  return it != segments_.end() && it->second.state == FsmState::kCommitted;
}

int64_t SegmentCompletionManager::CommittedOffset(
    const std::string& segment) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = segments_.find(segment);
  return it == segments_.end() ? -1 : it->second.committed_offset;
}

}  // namespace pinot
