# Empty compiler generated dependencies file for query_execution_test.
# This may be replaced when dependencies are built.
