#include "common/clock.h"

#include <chrono>

namespace pinot {

int64_t RealClock::NowMillis() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

RealClock* RealClock::Instance() {
  static RealClock* instance = new RealClock();
  return instance;
}

}  // namespace pinot
