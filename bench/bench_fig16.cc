// Figure 16: routing optimizations on the impression-discounting dataset,
// measured against an in-process multi-server cluster. Configurations:
//   druid-like          — all-dims inverted indexes, balanced routing
//   pinot-balanced      — sorted data, default balanced routing (all
//                         servers contacted per query)
//   pinot-generated     — Algorithms 1-2 routing tables (few servers per
//                         query)
//   pinot-partitioned   — partition-aware routing (only servers holding
//                         the member's partition are contacted)
//   pinot-balanced+tail — balanced routing plus the tail-tolerance stack
//                         (adaptive replica selection + hedged requests)
//   pinot-generated+tail— generated routing tables plus tail tolerance
//
// The +tail configurations measure the tentpole of the tail-tolerant
// scatter-gather work: with the same straggler in place, adaptive replica
// selection steers per-segment picks to the faster replica and hedged
// requests cover the residual slow calls, so the p99 curve should sit far
// below the matching baseline configuration.
//
// Every server charges a fixed artificial per-request latency modeling the
// real network + scheduling cost of contacting a host, and one server is a
// straggler (40x slower responses — think a hot-spotted or GC-pausing
// host), reproducing the phenomenon the paper cites for large clusters
// ("the more likely it is that a single host in the cluster will be
// unavailable or have issues that slow down query processing", referencing
// Dremel's straggler measurements). Routing strategies that contact fewer
// hosts per query dodge the straggler on most queries, which is where the
// flatter latency curves come from; the tail-tolerance stack dodges it on
// nearly all of them.

#include "baseline/druid_like.h"
#include "bench/bench_util.h"
#include "cluster/pinot_cluster.h"
#include "common/hash.h"

namespace pinot {
namespace bench {
namespace {

constexpr int kServers = 6;
constexpr int kPartitions = 6;
constexpr int kSegmentsUnpartitioned = 12;
// The straggler's per-request latency (vs 250us on healthy servers). Large
// enough to dominate single-machine scheduler noise, and to make the
// straggler the capacity bottleneck for strategies that contact it on
// every query (2 query threads / 10ms = ~200 requests/s).
constexpr int kStragglerLatencyMicros = 10000;

std::unique_ptr<PinotCluster> MakeCluster(const Workload& workload,
                                          RoutingStrategy strategy,
                                          bool druid_indexes,
                                          bool partitioned,
                                          bool tail_tolerant) {
  PinotClusterOptions options;
  options.num_servers = kServers;
  options.num_brokers = 1;
  options.broker_options.scatter_threads = 16;
  // Baseline configurations run with the tail-tolerance stack off so the
  // figure isolates the routing-strategy effect the paper plots; the +tail
  // configurations enable adaptive replica selection and hedging.
  options.broker_options.adaptive_routing = tail_tolerant;
  options.broker_options.hedging_enabled = tail_tolerant;
  if (tail_tolerant) {
    // Floor the hedge budget above healthy call latencies (sub-ms) but
    // below the straggler's 10ms service time, so hedges race straggler
    // probes and genuine queue buildup instead of storming on noise.
    options.broker_options.hedge_floor_millis = 4.0;
    options.broker_options.hedge_min_samples = 24;
  }
  options.server_options.num_query_threads = 2;
  options.server_options.artificial_latency_micros = 250;
  auto cluster = std::make_unique<PinotCluster>(options);
  // One misbehaving host (see header comment).
  cluster->server(kServers - 1)->set_artificial_latency_micros(
      kStragglerLatencyMicros);

  TableConfig config;
  config.name = workload.name;
  config.type = TableType::kOffline;
  config.schema = workload.schema;
  config.num_replicas = 2;
  config.routing = strategy;
  config.target_servers_per_query = 2;
  config.routing_tables_to_generate = 100;
  config.routing_tables_to_keep = 10;
  if (partitioned) {
    config.partition_column = workload.partition_column;
    config.num_partitions = kPartitions;
  }
  Controller* leader = cluster->leader_controller();
  Status st = config.name.empty() ? Status::OK() : leader->AddTable(config);
  if (!st.ok()) {
    std::fprintf(stderr, "AddTable: %s\n", st.ToString().c_str());
    std::abort();
  }

  SegmentBuildConfig build = druid_indexes
                                 ? DruidLikeBuildConfig(workload.schema)
                                 : workload.pinot_config;
  build.table_name = config.PhysicalName();

  // Partition rows: by the Kafka-compatible partition function when the
  // table is partitioned, round-robin otherwise.
  const int num_buckets = partitioned ? kPartitions : kSegmentsUnpartitioned;
  std::vector<std::vector<const Row*>> buckets(num_buckets);
  int rr = 0;
  for (const auto& row : workload.rows) {
    if (partitioned) {
      const std::string key = ValueToString(row.Get(workload.partition_column));
      buckets[KafkaPartition(key, kPartitions)].push_back(&row);
    } else {
      buckets[rr++ % num_buckets].push_back(&row);
    }
  }
  for (int b = 0; b < num_buckets; ++b) {
    SegmentBuildConfig segment_build = build;
    segment_build.segment_name = "seg_" + std::to_string(b);
    if (partitioned) {
      segment_build.partition_id = b;
      segment_build.partition_column = workload.partition_column;
      segment_build.num_partitions = kPartitions;
    }
    SegmentBuilder builder(workload.schema, segment_build);
    for (const Row* row : buckets[b]) {
      Status add = builder.AddRow(*row);
      if (!add.ok()) std::abort();
    }
    auto segment = builder.Build();
    if (!segment.ok()) std::abort();
    Status upload = leader->UploadSegment(config.PhysicalName(),
                                          (*segment)->SerializeToBlob());
    if (!upload.ok()) {
      std::fprintf(stderr, "upload: %s\n", upload.ToString().c_str());
      std::abort();
    }
  }
  return cluster;
}

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  options.qps_sweep = {50, 100, 200, 400, 800, 1600, 3200};
  // Re-parse so an explicit --qps= wins over the figure default.
  options = [&] {
    BenchOptions o = BenchOptions::Parse(argc, argv);
    bool qps_given = false;
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]).rfind("--qps=", 0) == 0) qps_given = true;
    }
    if (!qps_given) o.qps_sweep = {50, 100, 200, 400, 800, 1600, 3200};
    return o;
  }();

  Workload workload = MakeImpressionWorkload(options.workload_options());

  struct Setup {
    std::string name;
    RoutingStrategy strategy;
    bool druid;
    bool partitioned;
    bool tail_tolerant;
  };
  const std::vector<Setup> setups = {
      {"druid-like", RoutingStrategy::kBalanced, true, false, false},
      {"pinot-balanced", RoutingStrategy::kBalanced, false, false, false},
      {"pinot-generated", RoutingStrategy::kGenerated, false, false, false},
      {"pinot-partitioned", RoutingStrategy::kPartitionAware, false, true,
       false},
      {"pinot-balanced+tail", RoutingStrategy::kBalanced, false, false, true},
      {"pinot-generated+tail", RoutingStrategy::kGenerated, false, false,
       true},
  };

  std::printf(
      "# dataset: %u rows, %d servers, replicas=2, per-request server "
      "latency 250us\n",
      options.rows, kServers);
  PrintQpsHeader("Figure 16",
                 "routing optimizations on the impression-discounting dataset");

  BenchJsonWriter json("fig16", options.json_path);
  for (const auto& setup : setups) {
    auto cluster = MakeCluster(workload, setup.strategy, setup.druid,
                               setup.partitioned, setup.tail_tolerant);
    Broker* broker = cluster->broker(0);
    cluster->TakeMetricsSnapshot();
    for (double qps : options.qps_sweep) {
      QpsPoint point = RunQpsPoint(
          [&](int i) {
            QueryResult result = broker->Execute(workload.queries[i]);
            (void)result;
          },
          static_cast<int>(workload.queries.size()), qps,
          options.client_threads, options.duration_ms);
      PrintQpsPoint(setup.name, point);
      json.Add(setup.name, point);
      if (point.avg_ms > 250) break;
    }
    if (setup.tail_tolerant) {
      const auto& dump = cluster->MetricsDump();
      for (const char* series :
           {"broker_hedged_calls_total", "broker_hedge_wins_total"}) {
        const size_t at = dump.find(series);
        if (at != std::string::npos) {
          std::printf("# %s: %s\n", setup.name.c_str(),
                      dump.substr(at, dump.find('\n', at) - at).c_str());
        }
      }
    }
    // Exit health report per setup: under saturation the p99 rule goes
    // YELLOW/RED with the windowed qps as evidence, which is exactly the
    // operator view of "this configuration is past its knee".
    cluster->TakeMetricsSnapshot();
    std::printf("# --- health dump (%s) ---\n%s", setup.name.c_str(),
                cluster->HealthDump().c_str());
  }
  if (!json.Write()) return 1;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pinot

int main(int argc, char** argv) { return pinot::bench::Main(argc, argv); }
