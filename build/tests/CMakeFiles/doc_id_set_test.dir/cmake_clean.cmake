file(REMOVE_RECURSE
  "CMakeFiles/doc_id_set_test.dir/doc_id_set_test.cc.o"
  "CMakeFiles/doc_id_set_test.dir/doc_id_set_test.cc.o.d"
  "doc_id_set_test"
  "doc_id_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_id_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
