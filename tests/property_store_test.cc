#include "cluster/property_store.h"

#include <gtest/gtest.h>

namespace pinot {
namespace {

TEST(PropertyStoreTest, SetGetDelete) {
  PropertyStore store;
  EXPECT_FALSE(store.Get("/a").ok());
  store.Set("/a", "1");
  ASSERT_TRUE(store.Get("/a").ok());
  EXPECT_EQ(*store.Get("/a"), "1");
  EXPECT_TRUE(store.Exists("/a"));
  ASSERT_TRUE(store.Delete("/a").ok());
  EXPECT_FALSE(store.Exists("/a"));
  EXPECT_FALSE(store.Delete("/a").ok());
}

TEST(PropertyStoreTest, VersionsBumpOnWrite) {
  PropertyStore store;
  store.Set("/a", "1");
  auto v1 = store.GetWithVersion("/a");
  ASSERT_TRUE(v1.ok());
  store.Set("/a", "2");
  auto v2 = store.GetWithVersion("/a");
  EXPECT_GT(v2->second, v1->second);
  EXPECT_EQ(v2->first, "2");
}

TEST(PropertyStoreTest, CompareAndSet) {
  PropertyStore store;
  // -1 expected version = create-if-absent.
  ASSERT_TRUE(store.CompareAndSet("/a", -1, "1").ok());
  EXPECT_FALSE(store.CompareAndSet("/a", -1, "2").ok());
  auto v = store.GetWithVersion("/a");
  ASSERT_TRUE(store.CompareAndSet("/a", v->second, "2").ok());
  EXPECT_FALSE(store.CompareAndSet("/a", v->second, "3").ok());
  EXPECT_EQ(*store.Get("/a"), "2");
}

TEST(PropertyStoreTest, ListPrefix) {
  PropertyStore store;
  store.Set("/SEGMENTS/t1/s1", "");
  store.Set("/SEGMENTS/t1/s2", "");
  store.Set("/SEGMENTS/t2/s1", "");
  store.Set("/CONFIGS/t1", "");
  auto paths = store.ListPrefix("/SEGMENTS/t1/");
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "/SEGMENTS/t1/s1");
  EXPECT_EQ(paths[1], "/SEGMENTS/t1/s2");
  EXPECT_TRUE(store.ListPrefix("/NOPE/").empty());
}

TEST(PropertyStoreTest, WatchesFireOnPrefix) {
  PropertyStore store;
  std::vector<std::string> seen;
  const int handle = store.RegisterWatch(
      "/SEGMENTS/", [&seen](const std::string& path) { seen.push_back(path); });
  store.Set("/SEGMENTS/t/s1", "x");
  store.Set("/CONFIGS/t", "y");  // Outside the prefix.
  store.Set("/SEGMENTS/t/s1", "z");
  ASSERT_TRUE(store.Delete("/SEGMENTS/t/s1").ok());
  EXPECT_EQ(seen.size(), 3u);
  store.UnregisterWatch(handle);
  store.Set("/SEGMENTS/t/s2", "x");
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace pinot
