#ifndef PINOT_COMMON_RESULT_H_
#define PINOT_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pinot {

/// A value-or-error type (StatusOr idiom). `Result<T>` holds either an OK
/// status plus a T, or a non-OK status. Access to the value when the status
/// is not OK is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result; `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this result is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function.
#define PINOT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define PINOT_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define PINOT_ASSIGN_OR_RETURN_NAME(a, b) PINOT_ASSIGN_OR_RETURN_CONCAT(a, b)
#define PINOT_ASSIGN_OR_RETURN(lhs, expr) \
  PINOT_ASSIGN_OR_RETURN_IMPL(            \
      PINOT_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, expr)

}  // namespace pinot

#endif  // PINOT_COMMON_RESULT_H_
