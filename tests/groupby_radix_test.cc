// Equivalence and trimming tests for the high-cardinality group-by engine:
//
//   1. The radix-partitioned packed group-by is bit-identical to the legacy
//      single open-addressing table and to the string-keyed fallback, from
//      10 to ~64k groups, on single segments and through the tree-wise
//      multi-segment combine.
//   2. Server-side ORDER-BY/LIMIT trimming with the production over-fetch
//      never changes the broker-level top-N (byte-identical results under
//      fuzzed group-key-partitioned merges).
//   3. A live cluster with aggressive trim options returns the same rows as
//      an untrimmed one and reports the trim through
//      server_trimmed_rows_total.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/pinot_cluster.h"
#include "common/random.h"
#include "query/parser.h"
#include "query/result.h"
#include "query/table_executor.h"
#include "segment/segment_builder.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using Segments = std::vector<std::shared_ptr<SegmentInterface>>;

Schema SweepSchema() {
  return *Schema::Make({
      FieldSpec::Dimension("memberId", DataType::kLong),
      FieldSpec::Dimension("site", DataType::kString),
      FieldSpec::Metric("m_long", DataType::kLong),
      FieldSpec::Metric("m_double", DataType::kDouble),
      FieldSpec::Time("t", DataType::kLong),
  });
}

std::vector<Row> MakeRows(Random& rng, int n, uint32_t cardinality) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    Row row;
    row.SetLong("memberId", static_cast<int64_t>(rng.NextUint64(cardinality)))
        .SetString("site", "s" + std::to_string(rng.NextUint64(7)))
        .SetLong("m_long", static_cast<int64_t>(rng.NextUint64(1000)))
        .SetDouble("m_double", rng.NextDouble() * 100 - 50)
        .SetLong("t", 500 + static_cast<int64_t>(rng.NextUint64(30)));
    rows.push_back(std::move(row));
  }
  return rows;
}

Segments BuildSplit(const Schema& schema, const std::vector<Row>& rows,
                    int num_segments, const std::string& prefix) {
  Segments segments;
  const size_t per = (rows.size() + num_segments - 1) / num_segments;
  size_t next = 0;
  for (int s = 0; s < num_segments && next < rows.size(); ++s) {
    SegmentBuildConfig config;
    config.table_name = "radix";
    config.segment_name = prefix + "_" + std::to_string(s);
    SegmentBuilder builder(schema, config);
    for (size_t i = 0; i < per && next < rows.size(); ++i, ++next) {
      EXPECT_TRUE(builder.AddRow(rows[next]).ok());
    }
    auto segment = builder.Build();
    EXPECT_TRUE(segment.ok()) << segment.status().ToString();
    segments.push_back(*segment);
  }
  return segments;
}

// The three hash-table paths under test; dense direct indexing is disabled
// so small cardinalities exercise the hash paths instead of bypassing them.
ScanOptions RadixOptions() {
  ScanOptions options;
  options.dense_groupby_max_slots = 0;
  options.radix_groupby = true;
  return options;
}

ScanOptions LegacyOptions() {
  ScanOptions options;
  options.dense_groupby_max_slots = 0;
  options.radix_groupby = false;
  return options;
}

ScanOptions StringKeyOptions() {
  ScanOptions options;
  options.packed_groupby = false;
  return options;
}

// Bit-exact comparison: every group of `a` exists in `b` with exactly equal
// (==, not near) aggregation state. Floating-point equality is the point —
// all paths must accumulate in document order.
void ExpectSameGroups(const GroupTable& a, const GroupTable& b,
                      const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(a.num_aggs(), b.num_aggs()) << what;
  for (uint32_t g = 0; g < a.size(); ++g) {
    const uint32_t h = b.Find(a.EncodedKeyAt(g));
    ASSERT_NE(h, GroupTable::kInvalidGroup)
        << what << ": group missing: " << a.EncodedKeyAt(g);
    for (size_t i = 0; i < a.num_aggs(); ++i) {
      const AggState& sa = a.StatesAt(g)[i];
      const AggState& sb = b.StatesAt(h)[i];
      EXPECT_EQ(sa.sum, sb.sum) << what << " agg " << i;
      EXPECT_EQ(sa.count, sb.count) << what << " agg " << i;
      EXPECT_EQ(sa.min, sb.min) << what << " agg " << i;
      EXPECT_EQ(sa.max, sb.max) << what << " agg " << i;
    }
  }
}

void ExpectPathsAgree(const Schema& schema, const std::vector<Row>& rows,
                      const std::string& label) {
  auto query = ParsePql(
      "SELECT sum(m_double), sum(m_long), count(*), min(m_long), "
      "max(m_double) FROM radix GROUP BY memberId TOP 1000000");
  ASSERT_TRUE(query.ok());

  for (int num_segments : {1, 3}) {
    const std::string what =
        label + " (" + std::to_string(num_segments) + " segments)";
    const Segments segments = BuildSplit(schema, rows, num_segments, "seg");
    ThreadPool pool(4);
    PartialResult radix =
        ExecuteQueryOnSegments(segments, *query, RadixOptions(), &pool);
    PartialResult legacy =
        ExecuteQueryOnSegments(segments, *query, LegacyOptions(), &pool);
    PartialResult strings =
        ExecuteQueryOnSegments(segments, *query, StringKeyOptions(), &pool);
    ASSERT_TRUE(radix.status.ok()) << radix.status.ToString();
    ASSERT_TRUE(legacy.status.ok()) << legacy.status.ToString();
    ASSERT_TRUE(strings.status.ok()) << strings.status.ToString();
    ExpectSameGroups(radix.groups, legacy.groups, what + " radix-vs-legacy");
    ExpectSameGroups(radix.groups, strings.groups, what + " radix-vs-string");
  }
}

TEST(GroupByRadixTest, BitIdenticalAcrossTablePathsFixedCardinalities) {
  // 65536 is the CI-sized high-cardinality case (every radix shard holds
  // ~1k groups and has grown several times).
  for (uint32_t cardinality : {10u, 1000u, 65536u}) {
    Random rng(7 + cardinality);
    const Schema schema = SweepSchema();
    const int rows =
        static_cast<int>(std::min<uint32_t>(2 * cardinality + 2000, 140000));
    ExpectPathsAgree(schema, MakeRows(rng, rows, cardinality),
                     "cardinality=" + std::to_string(cardinality));
  }
}

class GroupByRadixFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupByRadixFuzzTest, BitIdenticalAtRandomCardinalities) {
  Random rng(GetParam());
  const Schema schema = SweepSchema();
  const uint32_t cardinality =
      10 + static_cast<uint32_t>(rng.NextUint64(99990));
  const int rows = static_cast<int>(
      std::min<uint32_t>(std::max<uint32_t>(2 * cardinality, 2000), 60000));
  ExpectPathsAgree(schema, MakeRows(rng, rows, cardinality),
                   "seed=" + std::to_string(GetParam()) +
                       " cardinality=" + std::to_string(cardinality));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupByRadixFuzzTest,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

// Canonical rendering for byte-identity checks at the broker level.
std::string Canonical(const QueryResult& result) {
  std::string out;
  for (const auto& row : result.group_rows) {
    out += EncodeGroupKey(row.keys) + "=";
    for (const auto& v : row.values) out += ValueToString(v) + ",";
    out += ";";
  }
  return out;
}

// Server-side trimming with the production over-fetch must not change what
// the broker returns when data is partitioned on the group key (each group's
// full state lives on exactly one server, the realistic partitioned-table
// layout): any global top-N group then ranks at least as high on its home
// server as globally, so it survives a keep >= top_n and both reduces are
// byte-identical. Group-by `site` (7 groups, far below the keep floor)
// rides along as the trim-is-a-no-op sanity case; for groups straddling
// servers the over-fetch is deliberately a heuristic, not exact.
class TrimFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrimFuzzTest, TrimmedReduceIsByteIdentical) {
  Random rng(GetParam());
  const Schema schema = SweepSchema();
  const std::vector<Row> rows = MakeRows(rng, 3000, 900);

  // Partition by memberId into three "servers" of two segments each, so
  // memberId groups never straddle servers (~300 groups per server, well
  // past the keep of 64..100 — trimming genuinely engages).
  std::vector<std::vector<Row>> server_rows(3);
  for (const Row& row : rows) {
    const int64_t member = std::get<int64_t>(row.Get("memberId"));
    server_rows[static_cast<size_t>(member) % 3].push_back(row);
  }
  std::vector<Segments> servers;
  for (int s = 0; s < 3; ++s) {
    servers.push_back(
        BuildSplit(schema, server_rows[s], 2, "srv" + std::to_string(s)));
  }

  static const char* kFirstAggs[] = {"sum(m_long)", "sum(m_double)",
                                     "count(*)", "max(m_long)"};
  for (int q = 0; q < 20; ++q) {
    const int top_n = 1 + static_cast<int>(rng.NextUint64(20));
    const std::string pql = std::string("SELECT ") +
                            kFirstAggs[rng.NextUint64(4)] +
                            ", count(*) FROM radix GROUP BY " +
                            (rng.NextBool() ? "memberId" : "site") + " TOP " +
                            std::to_string(top_n);
    auto query = ParsePql(pql);
    ASSERT_TRUE(query.ok()) << pql;
    const size_t keep =
        std::max<size_t>(static_cast<size_t>(top_n) * 5, 64);

    PartialResult untrimmed;
    PartialResult trimmed;
    size_t groups_dropped = 0;
    for (const Segments& server : servers) {
      // Execution is deterministic, so running twice reproduces the same
      // per-server partial (PartialResult is move-only).
      PartialResult a = ExecuteQueryOnSegments(server, *query);
      ASSERT_TRUE(a.status.ok()) << a.status.ToString();
      untrimmed.Merge(std::move(a));

      PartialResult b = ExecuteQueryOnSegments(server, *query);
      groups_dropped += TrimGroupPartial(*query, keep, &b);
      EXPECT_LE(b.groups.size(), keep) << pql;
      trimmed.Merge(std::move(b));
    }
    const std::string reference =
        Canonical(ReduceToFinalResult(*query, std::move(untrimmed)));
    const std::string with_trim =
        Canonical(ReduceToFinalResult(*query, std::move(trimmed)));
    EXPECT_EQ(with_trim, reference)
        << "seed=" << GetParam() << " keep=" << keep << " dropped="
        << groups_dropped << "\n  " << pql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrimFuzzTest,
                         ::testing::Values(21u, 22u, 23u, 24u));

// End-to-end: a cluster configured to trim aggressively returns the same
// group rows as an untrimmed cluster and surfaces the trim in metrics.
TEST(GroupByRadixTest, ClusterTrimMatchesUntrimmedAndReportsMetric) {
  using test::BuildAnalyticsSegment;

  auto run = [](Server::Options server_options) {
    PinotClusterOptions options;
    options.num_servers = 3;
    options.server_options = std::move(server_options);
    auto cluster = std::make_unique<PinotCluster>(options);
    Controller* leader = cluster->leader_controller();
    TableConfig config;
    config.name = "analytics";
    config.type = TableType::kOffline;
    config.schema = test::AnalyticsSchema();
    config.num_replicas = 1;
    EXPECT_TRUE(leader->AddTable(config).ok());
    // Six identical segments spread across three servers: per-server sums
    // are exact multiples of the global ones, so local trim order equals
    // the global order and TOP 2 must survive even a keep of 2.
    for (int i = 0; i < 6; ++i) {
      SegmentBuildConfig build;
      build.segment_name = "seg" + std::to_string(i);
      build.table_name = "analytics_OFFLINE";
      auto segment = BuildAnalyticsSegment(build);
      EXPECT_TRUE(
          leader->UploadSegment("analytics_OFFLINE",
                                segment->SerializeToBlob())
              .ok());
    }
    QueryResult result = cluster->Execute(
        "SELECT sum(impressions) FROM analytics GROUP BY country TOP 2");
    EXPECT_FALSE(result.partial) << result.error_message;
    return std::make_pair(Canonical(result), cluster->MetricsDump());
  };

  Server::Options trim_hard;
  trim_hard.groupby_trim_factor = 1;
  trim_hard.groupby_trim_min = 2;
  const auto [trimmed, trimmed_metrics] = run(trim_hard);
  const auto [untrimmed, untrimmed_metrics] = run(Server::Options{});

  EXPECT_EQ(trimmed, untrimmed);
  EXPECT_FALSE(trimmed.empty());
  // The aggressive cluster actually trimmed (5 countries -> keep 2) and
  // said so; the default cluster stayed below its 5000-group floor.
  EXPECT_NE(trimmed_metrics.find("server_trimmed_rows_total"),
            std::string::npos);
  bool saw_nonzero_trim = false;
  std::istringstream lines(trimmed_metrics);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("server_trimmed_rows_total", 0) != 0) continue;
    const size_t space = line.rfind(' ');
    if (space != std::string::npos && std::stod(line.substr(space + 1)) > 0) {
      saw_nonzero_trim = true;
    }
  }
  EXPECT_TRUE(saw_nonzero_trim) << trimmed_metrics;
}

}  // namespace
}  // namespace pinot
