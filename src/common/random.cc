#include "common/random.h"

#include <cassert>
#include <cmath>

namespace pinot {

namespace {
// Helper for the rejection-inversion sampler: computes
// ((1 + x)^(1 - s) - 1) / (1 - s), continuous at s == 1 where it is
// log1p(x).
double HIntegral(double x, double s) {
  const double log_x = std::log1p(x);
  if (std::abs(s - 1.0) < 1e-12) return log_x;
  return std::expm1((1.0 - s) * log_x) / (1.0 - s);
}

double HIntegralInverse(double x, double s) {
  if (std::abs(s - 1.0) < 1e-12) return std::expm1(x);
  double t = x * (1.0 - s);
  if (t < -1.0) t = -1.0;  // Clamp against numerical noise.
  return std::expm1(std::log1p(t) / (1.0 - s));
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s > 0.0);
  h_integral_x1_ = HIntegral(0.5, s_) - 1.0;
  h_integral_num_elements_ = HIntegral(static_cast<double>(n_) - 0.5, s_);
  threshold_ = 2.0 - HIntegralInverse(HIntegral(1.5, s_) - std::exp(-s_ * std::log(2.0)), s_);
}

double ZipfGenerator::H(double x) const {
  return std::exp(-s_ * std::log1p(x));
}

double ZipfGenerator::HInverse(double x) const {
  return HIntegralInverse(x, s_);
}

uint64_t ZipfGenerator::Next(Random& rng) {
  if (n_ == 1) return 0;
  while (true) {
    const double u = h_integral_num_elements_ +
                     rng.NextDouble() *
                         (h_integral_x1_ - h_integral_num_elements_);
    const double x = HInverse(u);
    // k is the candidate rank in [1, n]; map to [0, n) on return.
    double kd = std::floor(x + 1.5);
    if (kd < 1.0) kd = 1.0;
    if (kd > static_cast<double>(n_)) kd = static_cast<double>(n_);
    const uint64_t k = static_cast<uint64_t>(kd);
    if (kd - x <= threshold_ ||
        u >= HIntegral(kd - 0.5, s_) - H(kd - 1.0)) {
      return k - 1;
    }
  }
}

}  // namespace pinot
