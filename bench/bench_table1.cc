// Table 1: the paper's qualitative comparison of OLAP serving techniques.
// This bench measures, on this implementation, the concrete quantities
// behind the Pinot row of that table: ingest rate ("fast ingest and
// indexing"), sustainable query rate ("high query rate"), ad hoc filter
// support ("query flexibility"), and latency ("query latency").

#include "bench/bench_util.h"
#include "common/clock.h"
#include "realtime/mutable_segment.h"

namespace pinot {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  Workload workload = MakeWvmpWorkload(options.workload_options());
  std::vector<Query> queries = ParseQueries(workload);

  std::printf("# Table 1 — measured characteristics for the Pinot row\n");

  // 1. Fast ingest and indexing: realtime indexing rate into a consuming
  // segment (dictionary encode + append).
  {
    MutableSegment segment(workload.schema, "wvmp", "wvmp__0__0",
                           RealClock::Instance());
    const auto start = std::chrono::steady_clock::now();
    for (const auto& row : workload.rows) {
      Status st = segment.Index(row);
      if (!st.ok()) std::abort();
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf("%-28s %12.0f rows/s (realtime indexing, single thread)\n",
                "fast_ingest_and_indexing:", workload.rows.size() / seconds);
  }

  auto segments = BuildSegments(workload, workload.pinot_config,
                                options.num_segments, "t1");

  // 2. Query latency: keyed aggregation latency on sorted data.
  {
    std::vector<double> latencies;
    for (size_t i = 0; i < std::min<size_t>(queries.size(), 2000); ++i) {
      const auto start = std::chrono::steady_clock::now();
      PartialResult partial = ExecuteQueryOnSegments(segments, queries[i]);
      (void)partial;
      latencies.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
    }
    std::sort(latencies.begin(), latencies.end());
    std::printf("%-28s p50 %.3f ms, p99 %.3f ms (keyed aggregations)\n",
                "query_latency:", Percentile(latencies, 0.5),
                Percentile(latencies, 0.99));
  }

  // 3. High query rate: max sustained QPS with avg latency under 10 ms.
  {
    double sustained = 0;
    for (double qps : {500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0,
                       32000.0}) {
      QpsPoint point = RunQpsPoint(
          [&](int i) {
            PartialResult partial =
                ExecuteQueryOnSegments(segments, queries[i]);
            (void)partial;
          },
          static_cast<int>(queries.size()), qps, options.client_threads,
          options.duration_ms);
      if (point.avg_ms <= 10.0) {
        sustained = point.achieved_qps;
      } else {
        break;
      }
    }
    std::printf("%-28s %12.0f qps (avg latency <= 10 ms)\n",
                "high_query_rate:", sustained);
  }

  // 4. Query flexibility: an ad hoc filter on columns with no index at
  // all still executes (falls back to scans) — the "Moderate/High"
  // flexibility cell: no preaggregation lock-in, but no joins.
  {
    auto adhoc = ParsePql(
        "SELECT distinctcount(viewerId) FROM wvmp WHERE viewerRegion = "
        "'region_3' AND viewerSeniority != 'seniority_1' AND day > 17030");
    const auto start = std::chrono::steady_clock::now();
    PartialResult partial = ExecuteQueryOnSegments(segments, *adhoc);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    std::printf(
        "%-28s ad hoc unindexed filter ok (%.3f ms, %lu docs scanned); "
        "joins/nested queries unsupported by design\n",
        "query_flexibility:", ms,
        static_cast<unsigned long>(partial.stats.docs_scanned));
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pinot

int main(int argc, char** argv) { return pinot::bench::Main(argc, argv); }
