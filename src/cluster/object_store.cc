#include "cluster/object_store.h"

namespace pinot {

void ObjectStore::Put(const std::string& key, std::string blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  blobs_[key] = std::move(blob);
}

Result<std::string> ObjectStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = blobs_.find(key);
  if (it == blobs_.end()) return Status::NotFound("no such object: " + key);
  return it->second;
}

bool ObjectStore::Exists(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.count(key) > 0;
}

Status ObjectStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (blobs_.erase(key) == 0) {
    return Status::NotFound("no such object: " + key);
  }
  return Status::OK();
}

uint64_t ObjectStore::BytesUnderPrefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [key, blob] : blobs_) {
    if (key.compare(0, prefix.size(), prefix) == 0) total += blob.size();
  }
  return total;
}

size_t ObjectStore::object_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.size();
}

}  // namespace pinot
