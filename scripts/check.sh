#!/usr/bin/env bash
# Full local gate: the tier-1 verify build/test cycle, then a second
# configure with AddressSanitizer + UBSan (PINOT_SANITIZE=ON) and the same
# test suite under the sanitizers. Run from the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$(pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + ctest (build/) =="
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo
echo "== dumps: trace / explain / slow-query-log / metrics grammars =="
scripts/check_dumps.sh build

echo
echo "== perf smoke: bench --json emission + check_perf schema/comparator =="
# A deliberately tiny fig16 run: enough to exercise the JSON dump and the
# comparator plumbing without turning the gate into a perf benchmark. Pass
# a previously saved dump as a baseline via CHECK_PERF_BASELINE to also
# compare p99 curves (see scripts/check_perf.sh).
build/bench/bench_fig16 --rows=20000 --duration-ms=120 --qps=100 \
  --json=build/BENCH_fig16_smoke.json > /dev/null
scripts/check_perf.sh ${CHECK_PERF_BASELINE:+"${CHECK_PERF_BASELINE}"} \
  build/BENCH_fig16_smoke.json
# Scan-kernel and group-by-sweep curves at reduced size: gates the JSON
# grammar per PR (full-size runs populate EXPERIMENTS.md). The sweep's
# built-in checksum abort also re-proves radix == legacy here.
build/bench/bench_scan_batch --rows=50000 \
  --json=build/BENCH_scan_batch_smoke.json > /dev/null
scripts/check_perf.sh ${CHECK_PERF_SCAN_BASELINE:+"${CHECK_PERF_SCAN_BASELINE}"} \
  build/BENCH_scan_batch_smoke.json
build/bench/bench_groupby_sweep --rows=100000 \
  --json=build/BENCH_groupby_smoke.json > /dev/null
scripts/check_perf.sh ${CHECK_PERF_GROUPBY_BASELINE:+"${CHECK_PERF_GROUPBY_BASELINE}"} \
  build/BENCH_groupby_smoke.json
# Filter-operator ablation at reduced size: exercises the container-pair
# bitmap kernels and the cost-based planner on all four paths; its built-in
# cardinality abort re-proves sorted == bitmap == scan == cost-based here.
build/bench/bench_ablation_sorted_vs_bitmap --rows=30000 \
  --json=build/BENCH_filter_smoke.json > /dev/null
scripts/check_perf.sh ${CHECK_PERF_FILTER_BASELINE:+"${CHECK_PERF_FILTER_BASELINE}"} \
  build/BENCH_filter_smoke.json

echo
echo "== sanitizers: ASan+UBSan configure + build + ctest (build-asan/) =="
cmake -B build-asan -S . -DPINOT_SANITIZE=ON
cmake --build build-asan -j "${JOBS}"
(cd build-asan && ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --output-on-failure -j "${JOBS}")

echo
echo "== sanitizers: concurrency regression loop (ingest-while-query," \
     "quota reconfigure-during-admit, concurrent metrics, radix group-by) =="
# Repeat the tests with real thread interleavings a few times under the
# sanitizer build so rare schedules still get a chance to corrupt memory
# loudly (MutableSegment reader/writer race, TenantQuotaManager UAF, the
# ~64k-group radix-vs-legacy equivalence sweep with tree-wise merges).
(cd build-asan && ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --output-on-failure \
  -R 'mutable_segment_test|token_bucket_test|metrics_test|groupby_radix_test|filter_fuzz_test|upsert_fuzz_test' \
  --repeat until-fail:3)

echo
echo "All checks passed in ${ROOT}."
