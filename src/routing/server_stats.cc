#include "routing/server_stats.h"

#include <algorithm>

namespace pinot {

ServerStats* ServerStatsRegistry::Get(const std::string& server) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = stats_.try_emplace(server);
  if (inserted) {
    it->second = std::make_unique<ServerStats>();
    it->second->ewma_millis_.store(options_.cold_latency_millis,
                                   std::memory_order_relaxed);
  }
  return it->second.get();
}

const ServerStats* ServerStatsRegistry::Find(const std::string& server) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = stats_.find(server);
  return it == stats_.end() ? nullptr : it->second.get();
}

void ServerStatsRegistry::OnCallStart(const std::string& server) {
  Get(server)->in_flight_.fetch_add(1, std::memory_order_relaxed);
}

void ServerStatsRegistry::OnCallFinish(const std::string& server,
                                       double latency_millis, bool success) {
  ServerStats* stats = Get(server);
  stats->in_flight_.fetch_sub(1, std::memory_order_relaxed);
  if (success) {
    ObserveLatency(stats, latency_millis);
  } else {
    Penalize(stats);
  }
}

void ServerStatsRegistry::PenalizeFailure(const std::string& server) {
  Penalize(Get(server));
}

double ServerStatsRegistry::ScoreOf(const std::string& server) const {
  const ServerStats* stats = Find(server);
  if (stats == nullptr) return options_.cold_latency_millis;
  return stats->Score();
}

double ServerStatsRegistry::HedgeBudgetMillis(double percentile,
                                              double floor_millis,
                                              double cap_millis,
                                              uint64_t min_samples) const {
  if (latency_histogram_.Count() < min_samples) return cap_millis;
  const double estimate = latency_histogram_.Percentile(percentile);
  return std::clamp(estimate, floor_millis, cap_millis);
}

void ServerStatsRegistry::ObserveLatency(ServerStats* stats,
                                         double latency_millis) {
  latency_millis = std::max(0.0, latency_millis);
  latency_histogram_.Observe(latency_millis);
  stats->samples_.fetch_add(1, std::memory_order_relaxed);
  double current = stats->ewma_millis_.load(std::memory_order_relaxed);
  double next;
  do {
    next = std::min((1.0 - options_.ewma_alpha) * current +
                        options_.ewma_alpha * latency_millis,
                    options_.max_ewma_millis);
  } while (!stats->ewma_millis_.compare_exchange_weak(
      current, next, std::memory_order_relaxed));
}

void ServerStatsRegistry::Penalize(ServerStats* stats) {
  double current = stats->ewma_millis_.load(std::memory_order_relaxed);
  double next;
  do {
    next = std::min(
        std::max(current, options_.cold_latency_millis) *
            options_.failure_penalty_factor,
        options_.max_ewma_millis);
  } while (!stats->ewma_millis_.compare_exchange_weak(
      current, next, std::memory_order_relaxed));
}

}  // namespace pinot
