#ifndef PINOT_QUERY_FILTER_EVALUATOR_H_
#define PINOT_QUERY_FILTER_EVALUATOR_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "query/doc_id_set.h"
#include "query/query.h"
#include "query/result.h"
#include "segment/segment.h"
#include "trace/trace.h"

namespace pinot {

/// A predicate translated into the dictionary-id domain of one segment's
/// column. Immutable dictionaries assign ids in value order, so range
/// predicates become contiguous id intervals.
struct DictIdMatch {
  bool match_all = false;
  bool match_none = false;
  // When negated, `ids` lists the *excluded* ids.
  bool negated = false;
  // Contiguous inclusive interval [lo, hi]; only set when !negated.
  bool contiguous = false;
  int lo = 0;
  int hi = -1;
  // Sorted matching (or excluded) ids when not contiguous.
  std::vector<uint32_t> ids;

  bool Matches(uint32_t dict_id) const;
};

/// Translates `pred` against `dict` (handles sorted and unsorted
/// dictionaries; the latter scan the dictionary for range predicates).
DictIdMatch MatchDictIds(const Dictionary& dict, const Predicate& pred);

/// Value-level predicate test, used for columns that exist in the schema
/// but not in a given segment (pre-schema-evolution segments): the column
/// is virtually filled with the schema default.
bool PredicateMatchesValue(const Predicate& pred, const Value& value);

/// Evaluates a filter tree against one segment, producing the matching doc
/// ids. Implements the paper's physical-operator selection and ordering
/// (sections 3.3.4 and 4.2): per-leaf, the evaluator picks sorted-range,
/// inverted-bitmap, or scan execution based on the column's available
/// indexes; AND nodes evaluate children in ascending estimated cost and
/// pass the accumulated doc-id set to subsequent scan operators so they
/// only evaluate part of the column.
class FilterEvaluator {
 public:
  /// `stats` may be null. The evaluator borrows `segment`.
  FilterEvaluator(const SegmentInterface& segment, ExecutionStats* stats)
      : segment_(segment), stats_(stats) {}

  Result<DocIdSet> Evaluate(const std::optional<FilterNode>& filter);

  /// Cost classes used to order AND children (ablation: predicate
  /// reordering).
  enum class LeafStrategy { kConstant, kSortedRange, kInverted, kScan };

  /// Picks the execution strategy for a predicate on `column` (public for
  /// tests and the planner ablation bench).
  LeafStrategy ClassifyLeaf(const Predicate& pred) const;

  /// Disables cost-based reordering of AND children (children evaluate in
  /// query order). Used by the predicate-order ablation bench.
  void set_reorder_predicates(bool reorder) { reorder_predicates_ = reorder; }

  /// When set, each evaluated leaf labels the span with the chosen operator
  /// as `op:<column>` = constant|sorted-range|inverted|scan. Null (the
  /// default) keeps the hot path free of trace work.
  void set_trace_span(TraceSpan* span) { trace_span_ = span; }

 private:
  Result<DocIdSet> EvalNode(const FilterNode& node, const DocIdSet* domain);
  Result<DocIdSet> EvalAnd(const std::vector<FilterNode>& children,
                           const DocIdSet* domain);
  Result<DocIdSet> EvalOr(const std::vector<FilterNode>& children,
                          const DocIdSet* domain);
  Result<DocIdSet> EvalLeaf(const Predicate& pred, const DocIdSet* domain);

  DocIdSet ScanColumn(const ColumnReader& column, const DictIdMatch& match,
                      const DocIdSet& domain);

  int EstimateCost(const FilterNode& node) const;

  const SegmentInterface& segment_;
  ExecutionStats* stats_;
  bool reorder_predicates_ = true;
  TraceSpan* trace_span_ = nullptr;
};

/// "constant" / "sorted-range" / "inverted" / "scan".
const char* LeafStrategyToString(FilterEvaluator::LeafStrategy strategy);

}  // namespace pinot

#endif  // PINOT_QUERY_FILTER_EVALUATOR_H_
