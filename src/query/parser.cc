#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

namespace pinot {

namespace {

enum class TokenType {
  kIdentifier,
  kNumber,
  kString,
  kSymbol,  // Punctuation / operators.
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // Identifier (upper-cased copy in `upper`), literal, or symbol.
  std::string upper;
  double number = 0;
  bool is_integer = false;
  int64_t integer = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    const size_t n = input_.size();
    while (i < n) {
      const char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < n && (std::isalnum(static_cast<unsigned char>(input_[j])) ||
                         input_[j] == '_')) {
          ++j;
        }
        Token token;
        token.type = TokenType::kIdentifier;
        token.text = std::string(input_.substr(i, j - i));
        token.upper = Upper(token.text);
        out->push_back(std::move(token));
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < n &&
           std::isdigit(static_cast<unsigned char>(input_[i + 1])) &&
           NumberAllowedHere(out))) {
        size_t j = i + 1;
        bool has_dot = false;
        while (j < n && (std::isdigit(static_cast<unsigned char>(input_[j])) ||
                         (!has_dot && input_[j] == '.'))) {
          if (input_[j] == '.') has_dot = true;
          ++j;
        }
        Token token;
        token.type = TokenType::kNumber;
        token.text = std::string(input_.substr(i, j - i));
        token.number = std::strtod(token.text.c_str(), nullptr);
        if (!has_dot) {
          token.is_integer = true;
          token.integer = std::strtoll(token.text.c_str(), nullptr, 10);
        }
        out->push_back(std::move(token));
        i = j;
        continue;
      }
      if (c == '\'') {
        std::string literal;
        size_t j = i + 1;
        bool closed = false;
        while (j < n) {
          if (input_[j] == '\'') {
            if (j + 1 < n && input_[j + 1] == '\'') {
              literal += '\'';
              j += 2;
              continue;
            }
            closed = true;
            ++j;
            break;
          }
          literal += input_[j];
          ++j;
        }
        if (!closed) {
          return Status::InvalidArgument("unterminated string literal");
        }
        Token token;
        token.type = TokenType::kString;
        token.text = std::move(literal);
        out->push_back(std::move(token));
        i = j;
        continue;
      }
      // Symbols, including two-char operators.
      static const char* kTwoChar[] = {"<=", ">=", "!=", "<>"};
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (input_.substr(i, 2) == op) {
          Token token;
          token.type = TokenType::kSymbol;
          token.text = op;
          out->push_back(std::move(token));
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      if (std::string("()=<>,*").find(c) != std::string::npos) {
        Token token;
        token.type = TokenType::kSymbol;
        token.text = std::string(1, c);
        out->push_back(std::move(token));
        ++i;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character: ") +
                                     c);
    }
    out->push_back(Token{});  // kEnd sentinel.
    return Status::OK();
  }

 private:
  static std::string Upper(const std::string& s) {
    std::string out = s;
    for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return out;
  }

  // A leading '-' starts a negative number only where a value can appear
  // (after a symbol or keyword), not after an identifier/number.
  static bool NumberAllowedHere(const std::vector<Token>* tokens) {
    if (tokens->empty()) return true;
    const Token& prev = tokens->back();
    if (prev.type == TokenType::kNumber || prev.type == TokenType::kString) {
      return false;
    }
    if (prev.type == TokenType::kIdentifier) {
      // After keywords like AND, IN, BETWEEN a value may appear.
      return prev.upper == "AND" || prev.upper == "OR" ||
             prev.upper == "BETWEEN" || prev.upper == "IN" ||
             prev.upper == "TOP" || prev.upper == "LIMIT";
    }
    return prev.text != ")";
  }

  std::string_view input_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query query;
    // Observability prefixes: EXPLAIN and TRACE may each appear once, in
    // either order, before SELECT. EXPLAIN plans without executing; TRACE
    // executes and attaches the span tree to the result.
    for (;;) {
      if (!query.explain && AcceptKeyword("EXPLAIN")) {
        query.explain = true;
        continue;
      }
      if (!query.trace && AcceptKeyword("TRACE")) {
        query.trace = true;
        continue;
      }
      break;
    }
    PINOT_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    PINOT_RETURN_NOT_OK(ParseSelectList(&query));
    PINOT_RETURN_NOT_OK(ExpectKeyword("FROM"));
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected table name after FROM");
    }
    query.table = Next().text;

    if (AcceptKeyword("WHERE")) {
      FilterNode filter;
      PINOT_RETURN_NOT_OK(ParseOrExpr(&filter));
      query.filter = std::move(filter);
    }
    if (AcceptKeyword("GROUP")) {
      PINOT_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        if (Peek().type != TokenType::kIdentifier) {
          return Status::InvalidArgument("expected column in GROUP BY");
        }
        query.group_by.push_back(Next().text);
      } while (AcceptSymbol(","));
      if (!query.IsAggregation()) {
        return Status::InvalidArgument(
            "GROUP BY requires aggregation functions in SELECT");
      }
    }
    if (AcceptKeyword("TOP")) {
      if (Peek().type != TokenType::kNumber || !Peek().is_integer) {
        return Status::InvalidArgument("expected integer after TOP");
      }
      query.top_n = static_cast<int>(Next().integer);
    }
    if (AcceptKeyword("ORDER")) {
      PINOT_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        if (Peek().type != TokenType::kIdentifier) {
          return Status::InvalidArgument("expected column in ORDER BY");
        }
        std::string column = Next().text;
        bool desc = false;
        if (AcceptKeyword("DESC")) {
          desc = true;
        } else {
          AcceptKeyword("ASC");
        }
        query.order_by.emplace_back(std::move(column), desc);
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kNumber || !Peek().is_integer) {
        return Status::InvalidArgument("expected integer after LIMIT");
      }
      query.limit = static_cast<int>(Next().integer);
    }
    if (Peek().type != TokenType::kEnd) {
      return Status::InvalidArgument("unexpected trailing token: " +
                                     Peek().text);
    }
    return query;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_++]; }

  bool AcceptKeyword(const std::string& keyword) {
    if (Peek().type == TokenType::kIdentifier && Peek().upper == keyword) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& keyword) {
    if (!AcceptKeyword(keyword)) {
      return Status::InvalidArgument("expected " + keyword + " near '" +
                                     Peek().text + "'");
    }
    return Status::OK();
  }
  bool AcceptSymbol(const std::string& symbol) {
    if (Peek().type == TokenType::kSymbol && Peek().text == symbol) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const std::string& symbol) {
    if (!AcceptSymbol(symbol)) {
      return Status::InvalidArgument("expected '" + symbol + "' near '" +
                                     Peek().text + "'");
    }
    return Status::OK();
  }

  static Result<AggregationType> AggTypeFromName(const std::string& upper) {
    if (upper == "COUNT") return AggregationType::kCount;
    if (upper == "SUM") return AggregationType::kSum;
    if (upper == "MIN") return AggregationType::kMin;
    if (upper == "MAX") return AggregationType::kMax;
    if (upper == "AVG") return AggregationType::kAvg;
    if (upper == "DISTINCTCOUNT") return AggregationType::kDistinctCount;
    return Status::InvalidArgument("unknown aggregation function: " + upper);
  }

  static bool IsAggName(const std::string& upper) {
    return upper == "COUNT" || upper == "SUM" || upper == "MIN" ||
           upper == "MAX" || upper == "AVG" || upper == "DISTINCTCOUNT";
  }

  Status ParseSelectList(Query* query) {
    if (AcceptSymbol("*")) {
      query->selection_columns.push_back("*");
      return Status::OK();
    }
    do {
      if (Peek().type != TokenType::kIdentifier) {
        return Status::InvalidArgument("expected column or aggregation in SELECT");
      }
      if (IsAggName(Peek().upper) && Peek(1).type == TokenType::kSymbol &&
          Peek(1).text == "(") {
        const Token func = Next();
        PINOT_RETURN_NOT_OK(ExpectSymbol("("));
        AggregationSpec spec;
        PINOT_ASSIGN_OR_RETURN(spec.type, AggTypeFromName(func.upper));
        if (AcceptSymbol("*")) {
          if (spec.type != AggregationType::kCount) {
            return Status::InvalidArgument("only COUNT accepts *");
          }
        } else {
          if (Peek().type != TokenType::kIdentifier) {
            return Status::InvalidArgument("expected column inside " +
                                           func.text + "()");
          }
          spec.column = Next().text;
        }
        PINOT_RETURN_NOT_OK(ExpectSymbol(")"));
        query->aggregations.push_back(std::move(spec));
      } else {
        query->selection_columns.push_back(Next().text);
      }
    } while (AcceptSymbol(","));
    if (!query->aggregations.empty() && !query->selection_columns.empty()) {
      return Status::InvalidArgument(
          "cannot mix aggregations and plain columns in SELECT");
    }
    return Status::OK();
  }

  Status ParseOrExpr(FilterNode* out) {
    FilterNode left;
    PINOT_RETURN_NOT_OK(ParseAndExpr(&left));
    if (!(Peek().type == TokenType::kIdentifier && Peek().upper == "OR")) {
      *out = std::move(left);
      return Status::OK();
    }
    std::vector<FilterNode> children;
    children.push_back(std::move(left));
    while (AcceptKeyword("OR")) {
      FilterNode child;
      PINOT_RETURN_NOT_OK(ParseAndExpr(&child));
      children.push_back(std::move(child));
    }
    *out = FilterNode::Or(std::move(children));
    return Status::OK();
  }

  Status ParseAndExpr(FilterNode* out) {
    FilterNode left;
    PINOT_RETURN_NOT_OK(ParsePrimary(&left));
    if (!(Peek().type == TokenType::kIdentifier && Peek().upper == "AND")) {
      *out = std::move(left);
      return Status::OK();
    }
    std::vector<FilterNode> children;
    children.push_back(std::move(left));
    while (AcceptKeyword("AND")) {
      FilterNode child;
      PINOT_RETURN_NOT_OK(ParsePrimary(&child));
      children.push_back(std::move(child));
    }
    *out = FilterNode::And(std::move(children));
    return Status::OK();
  }

  Status ParsePrimary(FilterNode* out) {
    if (AcceptSymbol("(")) {
      PINOT_RETURN_NOT_OK(ParseOrExpr(out));
      return ExpectSymbol(")");
    }
    return ParsePredicate(out);
  }

  Result<Value> ParseLiteral() {
    const Token& token = Peek();
    if (token.type == TokenType::kNumber) {
      Next();
      if (token.is_integer) return Value{token.integer};
      return Value{token.number};
    }
    if (token.type == TokenType::kString) {
      Next();
      return Value{token.text};
    }
    return Status::InvalidArgument("expected literal near '" + token.text +
                                   "'");
  }

  Status ParsePredicate(FilterNode* out) {
    if (Peek().type != TokenType::kIdentifier &&
        Peek().type != TokenType::kString) {
      return Status::InvalidArgument("expected column name near '" +
                                     Peek().text + "'");
    }
    Predicate pred;
    pred.column = Next().text;

    if (AcceptSymbol("=")) {
      pred.op = PredicateOp::kEq;
      PINOT_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      pred.values.push_back(std::move(v));
    } else if (AcceptSymbol("!=") || AcceptSymbol("<>")) {
      pred.op = PredicateOp::kNotEq;
      PINOT_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      pred.values.push_back(std::move(v));
    } else if (AcceptSymbol("<=")) {
      pred.op = PredicateOp::kRange;
      PINOT_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      pred.upper = std::move(v);
      pred.upper_inclusive = true;
    } else if (AcceptSymbol("<")) {
      pred.op = PredicateOp::kRange;
      PINOT_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      pred.upper = std::move(v);
      pred.upper_inclusive = false;
    } else if (AcceptSymbol(">=")) {
      pred.op = PredicateOp::kRange;
      PINOT_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      pred.lower = std::move(v);
      pred.lower_inclusive = true;
    } else if (AcceptSymbol(">")) {
      pred.op = PredicateOp::kRange;
      PINOT_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      pred.lower = std::move(v);
      pred.lower_inclusive = false;
    } else if (AcceptKeyword("BETWEEN")) {
      pred.op = PredicateOp::kRange;
      PINOT_ASSIGN_OR_RETURN(Value lo, ParseLiteral());
      PINOT_RETURN_NOT_OK(ExpectKeyword("AND"));
      PINOT_ASSIGN_OR_RETURN(Value hi, ParseLiteral());
      pred.lower = std::move(lo);
      pred.upper = std::move(hi);
      pred.lower_inclusive = true;
      pred.upper_inclusive = true;
    } else if (AcceptKeyword("IN")) {
      pred.op = PredicateOp::kIn;
      PINOT_RETURN_NOT_OK(ParseValueList(&pred.values));
    } else if (AcceptKeyword("NOT")) {
      PINOT_RETURN_NOT_OK(ExpectKeyword("IN"));
      pred.op = PredicateOp::kNotIn;
      PINOT_RETURN_NOT_OK(ParseValueList(&pred.values));
    } else {
      return Status::InvalidArgument("expected comparison operator near '" +
                                     Peek().text + "'");
    }
    *out = FilterNode::Leaf(std::move(pred));
    return Status::OK();
  }

  Status ParseValueList(std::vector<Value>* values) {
    PINOT_RETURN_NOT_OK(ExpectSymbol("("));
    do {
      PINOT_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      values->push_back(std::move(v));
    } while (AcceptSymbol(","));
    return ExpectSymbol(")");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParsePql(std::string_view pql) {
  std::vector<Token> tokens;
  Lexer lexer(pql);
  PINOT_RETURN_NOT_OK(lexer.Tokenize(&tokens));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace pinot
