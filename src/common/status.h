#ifndef PINOT_COMMON_STATUS_H_
#define PINOT_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace pinot {

/// Error codes used across the library. Hot paths return Status instead of
/// throwing; this follows the RocksDB/Arrow idiom for database engines.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,
  kResourceExhausted,
  kTimeout,
  kInternal,
  kNotImplemented,
  kAborted,
  kQuotaExceeded,
  kCorruption,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no allocation);
/// carries a message only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status QuotaExceeded(std::string msg) {
    return Status(StatusCode::kQuotaExceeded, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsQuotaExceeded() const { return code_ == StatusCode::kQuotaExceeded; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define PINOT_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::pinot::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace pinot

#endif  // PINOT_COMMON_STATUS_H_
