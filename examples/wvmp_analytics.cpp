// "Who viewed my profile" scenario (paper sections 4.2, 6): every query is
// keyed by the profile owner (vieweeId), so physically sorting segments on
// that column turns each query into a contiguous range scan. This example
// builds the same data with and without the sorted layout and compares
// per-query work and latency, then shows the star-tree accelerating the
// dashboard-style facet aggregations.

#include <chrono>
#include <cstdio>

#include "query/parser.h"
#include "query/table_executor.h"
#include "workload/workloads.h"

using namespace pinot;

namespace {

std::vector<std::shared_ptr<SegmentInterface>> Build(
    const Workload& workload, const SegmentBuildConfig& base,
    const char* name) {
  SegmentBuildConfig config = base;
  config.table_name = "wvmp";
  config.segment_name = name;
  SegmentBuilder builder(workload.schema, config);
  for (const auto& row : workload.rows) {
    if (!builder.AddRow(row).ok()) std::abort();
  }
  auto segment = builder.Build();
  if (!segment.ok()) std::abort();
  return {*segment};
}

struct RunStats {
  double total_ms = 0;
  uint64_t docs_scanned = 0;
};

RunStats RunAll(const std::vector<std::shared_ptr<SegmentInterface>>& segments,
                const std::vector<Query>& queries) {
  RunStats stats;
  for (const auto& query : queries) {
    const auto start = std::chrono::steady_clock::now();
    PartialResult partial = ExecuteQueryOnSegments(segments, query);
    stats.total_ms += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    stats.docs_scanned += partial.stats.docs_scanned;
  }
  return stats;
}

}  // namespace

int main() {
  WorkloadOptions options;
  options.num_rows = 200000;
  options.num_queries = 1000;
  Workload workload = MakeWvmpWorkload(options);

  std::vector<Query> queries;
  for (const auto& pql : workload.queries) {
    queries.push_back(*ParsePql(pql));
  }

  SegmentBuildConfig sorted;
  sorted.sort_columns = {"vieweeId"};
  SegmentBuildConfig inverted;
  inverted.inverted_index_columns = {"vieweeId"};
  SegmentBuildConfig none;

  std::printf("WVMP: %u view events, %zu member-keyed queries\n\n",
              options.num_rows, queries.size());
  std::printf("%-22s %14s %16s\n", "layout", "total_ms", "docs_scanned");
  for (const auto& [name, config] :
       std::vector<std::pair<const char*, SegmentBuildConfig>>{
           {"sorted on vieweeId", sorted},
           {"inverted index", inverted},
           {"no index (scans)", none}}) {
    auto segments = Build(workload, config, name);
    RunStats stats = RunAll(segments, queries);
    std::printf("%-22s %14.2f %16lu\n", name, stats.total_ms,
                static_cast<unsigned long>(stats.docs_scanned));
  }

  // One concrete member's dashboard queries.
  auto segments = Build(workload, sorted, "demo");
  std::printf("\nmember 7's dashboard:\n");
  for (const char* pql : {
           "SELECT count(*) FROM wvmp WHERE vieweeId = 7",
           "SELECT distinctcount(viewerId) FROM wvmp WHERE vieweeId = 7",
           "SELECT sum(views) FROM wvmp WHERE vieweeId = 7 GROUP BY "
           "viewerIndustry TOP 5",
       }) {
    auto query = ParsePql(pql);
    PartialResult partial = ExecuteQueryOnSegments(segments, *query);
    QueryResult result = ReduceToFinalResult(*query, std::move(partial));
    std::printf("> %s\n%s\n\n", pql, result.ToString().c_str());
  }
  return 0;
}
