file(REMOVE_RECURSE
  "CMakeFiles/mutable_segment_test.dir/mutable_segment_test.cc.o"
  "CMakeFiles/mutable_segment_test.dir/mutable_segment_test.cc.o.d"
  "mutable_segment_test"
  "mutable_segment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutable_segment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
