#ifndef PINOT_QUERY_TABLE_EXECUTOR_H_
#define PINOT_QUERY_TABLE_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "query/query.h"
#include "query/result.h"
#include "segment/segment.h"

namespace pinot {

/// Executes `query` over a set of segments, combining the per-segment
/// partial results (the server-side combine of paper section 3.3.3 step 6;
/// "query plans are processed in parallel" when `pool` is non-null).
///
/// Segments whose metadata proves they cannot match the filter (predicate
/// value ranges disjoint from the column's min/max) are pruned without
/// execution; per-segment errors mark the merged result's status, which the
/// broker surfaces as a partial result rather than a failure.
PartialResult ExecuteQueryOnSegments(
    const std::vector<std::shared_ptr<SegmentInterface>>& segments,
    const Query& query, ThreadPool* pool = nullptr);

/// True when segment metadata alone proves the filter matches nothing in
/// this segment (exposed for tests).
bool CanPruneSegment(const SegmentInterface& segment, const Query& query);

}  // namespace pinot

#endif  // PINOT_QUERY_TABLE_EXECUTOR_H_
