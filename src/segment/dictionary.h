#ifndef PINOT_SEGMENT_DICTIONARY_H_
#define PINOT_SEGMENT_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "data/data_type.h"
#include "data/value.h"

namespace pinot {

/// Per-column dictionary (paper section 3.1: "Various encoding strategies
/// are used to minimize the data size, including dictionary encoding and bit
/// packing of values").
///
/// Two modes:
///  - Immutable (offline segments): ids are assigned in sorted value order,
///    so range predicates translate to contiguous dictionary-id ranges and
///    the physically sorted column is also sorted by dictionary id.
///  - Mutable (realtime consuming segments): ids are assigned in arrival
///    order via GetOrAdd; lookups use a hash map and range predicates fall
///    back to scanning the dictionary.
class Dictionary {
 public:
  /// Inclusive dictionary-id interval; empty when lo > hi.
  struct IdRange {
    int lo = 0;
    int hi = -1;
    bool empty() const { return lo > hi; }
  };

  /// Builds an immutable sorted dictionary from arbitrary (possibly
  /// duplicated) integral values.
  static Dictionary BuildSortedInt64(std::vector<int64_t> values);
  static Dictionary BuildSortedDouble(std::vector<double> values);
  static Dictionary BuildSortedString(std::vector<std::string> values);

  /// Creates an empty mutable dictionary for a realtime segment column.
  static Dictionary CreateMutable(DataType type);

  /// Internal storage class for a column type.
  enum class Storage { kInt64, kDouble, kString };
  static Storage StorageFor(DataType type);

  int size() const;
  bool sorted() const { return sorted_; }
  Storage storage() const { return storage_; }

  /// Id for a value, or -1 when absent. The value must match the storage
  /// class (int64 for integral columns, etc.).
  int IndexOf(const Value& value) const;
  int IndexOfInt64(int64_t v) const;
  int IndexOfDouble(double v) const;
  int IndexOfString(const std::string& v) const;

  /// Mutable mode only: returns the id for the value, adding it if new.
  int GetOrAdd(const Value& value);

  Value ValueAt(int dict_id) const;
  int64_t Int64At(int dict_id) const { return int64_values_[dict_id]; }
  double DoubleAt(int dict_id) const { return double_values_[dict_id]; }
  const std::string& StringAt(int dict_id) const {
    return string_values_[dict_id];
  }

  /// Numeric view of the value at `dict_id` (strings -> 0); used by metric
  /// aggregation.
  double DoubleValueAt(int dict_id) const;

  /// Sorted mode only: inclusive dict-id range matching
  /// (lower, upper) with the given inclusiveness. Null bounds are
  /// unbounded. E.g. x > 5 -> RangeFor(5, exclusive, none).
  IdRange RangeFor(const std::optional<Value>& lower, bool lower_inclusive,
                   const std::optional<Value>& upper,
                   bool upper_inclusive) const;

  /// Compares the value at `dict_id` against `v`; returns <0, 0, >0. Used
  /// by unsorted (realtime) dictionaries to evaluate range predicates by
  /// scanning ids.
  int CompareValueAt(int dict_id, const Value& v) const;

  /// Smallest / largest value in the dictionary (by value order, regardless
  /// of mode). Dictionary must be non-empty.
  Value MinValue() const;
  Value MaxValue() const;

  /// Converts this (possibly mutable) dictionary into a sorted immutable
  /// one. Returns the new dictionary and fills `old_to_new` with the id
  /// remapping, used when sealing a realtime segment.
  Dictionary ToSorted(std::vector<int>* old_to_new) const;

  void Serialize(ByteWriter* writer) const;
  static Result<Dictionary> Deserialize(ByteReader* reader);

  /// Approximate heap bytes used (for index-size comparisons).
  uint64_t SizeInBytes() const;

 private:
  Dictionary(Storage storage, bool sorted)
      : storage_(storage), sorted_(sorted) {}

  Storage storage_ = Storage::kInt64;
  bool sorted_ = true;

  // Exactly one of these is populated, per storage_.
  std::vector<int64_t> int64_values_;
  std::vector<double> double_values_;
  std::vector<std::string> string_values_;

  // Mutable mode: value -> id.
  std::unordered_map<int64_t, int> int64_map_;
  std::unordered_map<double, int> double_map_;
  std::unordered_map<std::string, int> string_map_;
};

}  // namespace pinot

#endif  // PINOT_SEGMENT_DICTIONARY_H_
