#ifndef PINOT_CLUSTER_SERVER_H_
#define PINOT_CLUSTER_SERVER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cluster_context.h"
#include "cluster/cluster_manager.h"
#include "cluster/table_config.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "metrics/metrics.h"
#include "query/segment_executor.h"
#include "realtime/mutable_segment.h"
#include "realtime/upsert_meta.h"
#include "segment/segment.h"
#include "stream/stream.h"
#include "tenant/token_bucket.h"

namespace pinot {

/// A Pinot server (paper section 3.2): hosts segments, executes queries on
/// them, consumes realtime data from the stream, and reacts to Helix state
/// transitions (Figure 4: fetch from the object store, unpack, load, serve).
/// Local segment state is a pure cache of the object store, so a dead
/// server can be replaced by a blank one (section 3.4).
class Server : public StateTransitionHandler, public QueryServerApi {
 public:
  struct Options {
    std::string tenant_tag = "DefaultTenant";
    int num_query_threads = 4;
    // Fixed extra latency added to every query execution, used by the
    // QPS benches to model network + scheduling delay of a real host.
    int64_t artificial_latency_micros = 0;
    // Messages fetched from the stream per consuming segment per tick.
    int max_fetch_batch = 1000;
    // Server-side group-by trimming (production Pinot's scatter-payload
    // bound): before a group-by result ships to the broker it is trimmed
    // to max(top_n * groupby_trim_factor, groupby_trim_min) groups in the
    // broker's final order. The over-fetch keeps per-server local ranks
    // covering the global top-N under skewed data; set factor/min high (or
    // min to SIZE_MAX) to effectively disable trimming.
    size_t groupby_trim_factor = 5;
    size_t groupby_trim_min = 5000;
    // Per-segment scan knobs (radix group-by, batched decode); tests and
    // the trace smoke override to force specific paths.
    ScanOptions scan_options;
  };

  Server(std::string id, ClusterContext ctx, Options options);
  Server(std::string id, ClusterContext ctx);
  ~Server() override;

  /// Registers the instance (tags: "server" + tenant tag).
  void Start();

  const std::string& id() const { return id_; }
  TenantQuotaManager* quota_manager() { return &quota_; }

  // --- QueryServerApi --------------------------------------------------------

  /// Executes a scatter request: admission through the tenant's token
  /// bucket, per-segment physical planning, parallel execution, combine.
  PartialResult ExecuteServerQuery(const ServerQueryRequest& request) override;

  // --- StateTransitionHandler -----------------------------------------------

  Status OnSegmentStateTransition(const std::string& table,
                                  const std::string& segment,
                                  SegmentState from, SegmentState to) override;
  Status OnUserMessage(const std::string& type,
                       const std::string& payload) override;

  // --- Realtime ingestion -----------------------------------------------------

  /// Drives every consuming segment one step: fetch + index a batch, and
  /// when the end criteria is reached run the completion protocol against
  /// the leader controller. Returns the number of rows indexed.
  int ProcessRealtimeTick();

  // --- Introspection ----------------------------------------------------------

  std::vector<std::string> HostedSegments(const std::string& table) const;
  uint64_t HostedDataBytes() const;

  /// Upsert introspection: the current invalid-docs snapshot of a hosted
  /// segment (null when the segment is absent, not upsert, or all-valid),
  /// and the number of dead rows it holds. The compaction scheduler and
  /// tests read these.
  std::shared_ptr<const RoaringBitmap> UpsertInvalidDocs(
      const std::string& table, const std::string& segment) const;
  uint64_t UpsertDeadRows(const std::string& table,
                          const std::string& segment) const;
  /// The table's upsert state (null for non-upsert tables); test-only.
  std::shared_ptr<UpsertTableState> upsert_state(
      const std::string& table) const;
  void set_artificial_latency_micros(int64_t micros) {
    options_.artificial_latency_micros = micros;
  }

  // --- Fault injection --------------------------------------------------------
  // Deterministic failure knobs for resilience tests: faults are consumed
  // in order (fail, then delay, then drop) before any real query work.

  /// Fails the next `n` scatter requests with Unavailable, as a server
  /// crashing mid-request looks to the broker.
  void InjectQueryFailures(int n);
  /// Delays the next `n` scatter requests by `millis` before executing.
  void InjectQueryDelay(int n, int64_t millis);
  /// Drops `fraction` [0,1] of scatter requests: the response is withheld
  /// past the request deadline, so the broker observes a timeout.
  void SetQueryDropFraction(double fraction);

 private:
  // One replica of a consuming segment (paper section 3.3.6).
  struct ConsumingState {
    std::shared_ptr<MutableSegment> segment;
    StreamTopic* topic = nullptr;
    int partition = -1;
    int64_t offset = 0;
    int64_t flush_threshold_rows = 0;
    int64_t flush_threshold_millis = 0;
    int64_t consumption_start_millis = 0;
    int64_t catchup_target = -1;       // CATCHUP instruction target.
    bool awaiting_completion = false;  // End criteria reached.
    std::shared_ptr<ImmutableSegment> sealed;  // Local commit candidate.
    SegmentBuildConfig seal_config;
    // Non-null for upsert tables: the key map this segment commits into.
    std::shared_ptr<UpsertTableState> upsert;
  };

  Result<TableConfig> LoadTableConfig(const std::string& physical_table) const;
  std::shared_ptr<UpsertTableState> GetOrCreateUpsertState(
      const std::string& table, const TableConfig& config);
  Status LoadOnlineSegment(const std::string& table,
                           const std::string& segment);
  Status StartConsuming(const std::string& table, const std::string& segment);
  Status PromoteConsuming(const std::string& table,
                          const std::string& segment);
  // Drives one consuming segment; returns rows indexed.
  int TickConsuming(const std::string& table, const std::string& segment,
                    ConsumingState* state);

  const std::string id_;
  ClusterContext ctx_;
  Options options_;
  MetricsRegistry* metrics_;
  ThreadPool pool_;
  TenantQuotaManager quota_;

  // Fault-injection state; separate lock so faults never interact with the
  // segment/ingestion mutex.
  mutable std::mutex fault_mutex_;
  int fault_fail_requests_ = 0;
  int fault_delay_requests_ = 0;
  int64_t fault_delay_millis_ = 0;
  double fault_drop_fraction_ = 0;
  Random fault_rng_{0x5eed};

  mutable std::mutex mutex_;
  // table -> segment -> queryable view.
  std::map<std::string, std::map<std::string, std::shared_ptr<SegmentInterface>>>
      segments_;
  // table -> segment -> consuming replica state.
  std::map<std::string, std::map<std::string, ConsumingState>> consuming_;
  // table -> upsert key map + validity registry. Entries are created when
  // the first consuming/online segment of an upsert table arrives and live
  // for the server's lifetime. Lock order: UpsertTableState's internal
  // mutex may be held while taking mutex_ (BindLoadedSegment's publish
  // closure), never the reverse.
  std::map<std::string, std::shared_ptr<UpsertTableState>> upsert_;
};

}  // namespace pinot

#endif  // PINOT_CLUSTER_SERVER_H_
