// Trace smoke driver for scripts/check_dumps.sh: stands up a hybrid table
// on a two-server cluster, runs TRACE / EXPLAIN queries, forces a hedged
// scatter call and a load-shed query, plus one slow (delay-injected) query,
// and prints the rendered trace, the query receipt, the metrics dump, the
// slow-query log, and the SLO health report between well-known markers so
// the script can validate each grammar. The health phase injects faults
// against the "events" table only (a lagging partition plus failing
// servers), so the report must grade events RED and metrics GREEN.

#include <chrono>
#include <cstdio>
#include <thread>

#include "cluster/pinot_cluster.h"
#include "segment/segment_builder.h"

using namespace pinot;

namespace {

Schema MetricsSchema() {
  auto schema = Schema::Make({
      FieldSpec::Dimension("page", DataType::kString),
      FieldSpec::Metric("views", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
  return *schema;
}

Row MakeRow(const char* page, int64_t views, int64_t day) {
  Row row;
  row.SetString("page", page).SetLong("views", views).SetLong("day", day);
  return row;
}

}  // namespace

int main() {
  PinotClusterOptions options;
  options.num_servers = 2;  // Two replicas so hedges have somewhere to go.
  options.broker_options.slow_query_threshold_millis = 10.0;
  options.broker_options.hedge_min_samples = 8;
  options.broker_options.hedge_floor_millis = 2.0;
  options.broker_options.max_inflight_queries = 1;  // Shed past 1 in flight.
  // Force the radix group table (the page dictionary is tiny, so the dense
  // direct-indexed table would otherwise win) and aggressive server-side
  // trimming, so the group-by trace below carries the
  // group_table=radix(<shards>) and trimmed=<n> labels check_dumps pins.
  options.server_options.scan_options.dense_groupby_max_slots = 0;
  options.server_options.groupby_trim_factor = 1;
  options.server_options.groupby_trim_min = 1;
  // A small per-tick fetch budget so the health phase below can leave the
  // events partition genuinely lagging (producer ahead of consumption).
  options.server_options.max_fetch_batch = 4;
  options.slo.max_freshness_lag_rows = 10;
  // The shed/delay exercises push broker latency to hundreds of ms by
  // design; keep the latency rule out of the verdict.
  options.slo.p99_latency_budget_ms = 5000.0;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();
  StreamTopic* topic = cluster.streams()->GetOrCreateTopic("metrics", 1);

  TableConfig offline;
  offline.name = "metrics";
  offline.type = TableType::kOffline;
  offline.schema = MetricsSchema();
  offline.num_replicas = 2;
  if (!leader->AddTable(offline).ok()) return 1;

  // Two offline segments so balanced routing spreads the scatter across
  // both servers.
  for (int half = 0; half < 2; ++half) {
    SegmentBuildConfig config;
    config.table_name = "metrics_OFFLINE";
    config.segment_name = half == 0 ? "daily_a" : "daily_b";
    // Give the page filter below both physical options so its trace spans
    // carry the planner's cost comparison (cost:page=bitmap=...,scan=...).
    config.inverted_index_columns = {"page"};
    SegmentBuilder builder(MetricsSchema(), config);
    for (int day = 1 + 2 * half; day <= 2 + 2 * half; ++day) {
      if (!builder.AddRow(MakeRow("home", 100 + day, day)).ok()) return 1;
      if (!builder.AddRow(MakeRow("jobs", 40 + day, day)).ok()) return 1;
    }
    auto segment = builder.Build();
    if (!leader
             ->UploadSegment("metrics_OFFLINE", (*segment)->SerializeToBlob())
             .ok()) {
      return 1;
    }
  }

  TableConfig realtime;
  realtime.name = "metrics";
  realtime.type = TableType::kRealtime;
  realtime.schema = MetricsSchema();
  realtime.realtime.topic = "metrics";
  realtime.realtime.flush_threshold_rows = 100000;
  if (!leader->AddTable(realtime).ok()) return 1;
  topic->Produce("k", MakeRow("home", 150, 5));
  topic->Produce("k", MakeRow("jobs", 80, 5));
  cluster.ProcessRealtimeTicks(2);

  // An upsert table: two rows for one key, so the traced query below
  // carries the upsert=on / valid_docs=<n> labels and the server's
  // dead-rows counter is nonzero in the metrics dump.
  TableConfig upsert;
  upsert.name = "events";
  upsert.type = TableType::kRealtime;
  upsert.schema = MetricsSchema();
  upsert.realtime.topic = "events";
  upsert.realtime.flush_threshold_rows = 100000;
  upsert.upsert_enabled = true;
  upsert.upsert_key_columns = {"page"};
  StreamTopic* events = cluster.streams()->GetOrCreateTopic("events", 1);
  if (!leader->AddTable(upsert).ok()) return 1;
  events->Produce("home", MakeRow("home", 1, 5));
  events->Produce("home", MakeRow("home", 2, 5));
  cluster.ProcessRealtimeTicks(2);
  QueryResult upserted =
      cluster.Execute("TRACE SELECT count(*) FROM events");
  if (!upserted.span.has_value()) {
    std::fprintf(stderr, "TRACE upsert query returned no span\n");
    return 1;
  }
  const std::string upsert_trace = upserted.span->ToString();
  if (upsert_trace.find("upsert=on") == std::string::npos ||
      upsert_trace.find("valid_docs=") == std::string::npos) {
    std::fprintf(stderr, "upsert trace misses validity labels:\n%s",
                 upsert_trace.c_str());
    return 1;
  }

  // Warm the per-server latency stats past hedge_min_samples so the hedge
  // budget reflects observed (sub-millisecond) call latencies.
  for (int i = 0; i < 12; ++i) {
    cluster.Execute("SELECT count(*) FROM metrics");
  }

  // Force a hedged scatter: delay one server's next response far past the
  // hedge budget; the broker fires a hedge to the other replica. Routing
  // may concentrate a query on either server, so alternate the injected
  // server until the trace carries a hedge span.
  QueryResult traced;
  for (int attempt = 0; attempt < 6; ++attempt) {
    cluster.server(attempt % 2)->InjectQueryDelay(1, 60);
    traced = cluster.Execute(
        "TRACE SELECT sum(views) FROM metrics WHERE page = 'home'");
    if (!traced.span.has_value()) {
      std::fprintf(stderr, "TRACE query returned no span\n");
      return 1;
    }
    if (traced.span->ToString().find("hedge:") != std::string::npos) break;
  }
  // A traced group-by: its server spans carry groupby_groups/trimmed
  // labels (TOP 1 with a keep of 1 trims one of the two pages per server)
  // and the per-segment group-by phase is labelled with the radix table.
  QueryResult grouped = cluster.Execute(
      "TRACE SELECT sum(views) FROM metrics GROUP BY page TOP 1");
  if (!grouped.span.has_value()) {
    std::fprintf(stderr, "TRACE group-by returned no span\n");
    return 1;
  }
  const std::string grouped_trace = grouped.span->ToString();
  if (grouped_trace.find("group_table=radix(") == std::string::npos ||
      grouped_trace.find("trimmed=") == std::string::npos) {
    std::fprintf(stderr, "group-by trace misses radix/trim labels:\n%s",
                 grouped_trace.c_str());
    return 1;
  }

  std::printf("# --- trace dump ---\n%s%s%s",
              traced.span->ToString().c_str(), grouped_trace.c_str(),
              upsert_trace.c_str());

  // The resource receipt of the traced query: the same three lines the
  // client sees after the trace tree in result.ToString().
  if (traced.receipt.docs_scanned == 0 || traced.receipt.calls == 0) {
    std::fprintf(stderr, "traced query carries an empty receipt:\n%s",
                 traced.receipt.ToString().c_str());
    return 1;
  }
  std::printf("# --- receipt dump ---\n%s",
              traced.receipt.ToString().c_str());

  auto explained = cluster.Execute("EXPLAIN SELECT count(*) FROM metrics");
  if (!explained.span.has_value() || !explained.explain_only) {
    std::fprintf(stderr, "EXPLAIN query returned no plan\n");
    return 1;
  }
  std::printf("# --- explain dump ---\n%s",
              explained.span->ToString().c_str());

  // Push one query over the slow threshold so the log has an entry. Both
  // servers are delayed twice over (primary + hedge call) so a hedge
  // cannot rescue the query below the threshold.
  cluster.server(0)->InjectQueryDelay(2, 20);
  cluster.server(1)->InjectQueryDelay(2, 20);
  cluster.Execute("SELECT count(*) FROM metrics WHERE day >= 2");

  // Shed exercise: occupy the broker's single in-flight slot with a slow
  // query (delays again cover primaries and hedges), then issue a second
  // query that must be turned away throttled.
  cluster.server(0)->InjectQueryDelay(2, 300);
  cluster.server(1)->InjectQueryDelay(2, 300);
  std::thread occupant(
      [&] { cluster.Execute("SELECT count(*) FROM metrics"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  QueryResult shed = cluster.Execute("SELECT count(*) FROM metrics");
  occupant.join();
  if (!shed.throttled) {
    std::fprintf(stderr, "expected the second in-flight query to be shed\n");
    return 1;
  }

  std::printf("# --- slow query log ---\n%s",
              cluster.SlowQueryLogDump().c_str());

  // --- SLO health phase -----------------------------------------------------
  // Open a rate window, then hurt only the events table: produce far past
  // the per-tick fetch budget (one tick consumes 4 rows, leaving the
  // partition lagging well over the 10-row SLO) and fail every scatter call
  // of a burst of events queries (single-replica table: no failover, so
  // each query returns partial).
  cluster.TakeMetricsSnapshot();
  for (int i = 0; i < 24; ++i) {
    events->Produce("home", MakeRow("home", 3 + i, 6));
  }
  cluster.ProcessRealtimeTicks(1);
  for (int i = 0; i < 8; ++i) {
    cluster.server(0)->InjectQueryFailures(1);
    cluster.server(1)->InjectQueryFailures(1);
    QueryResult failed = cluster.Execute("SELECT count(*) FROM events");
    if (!failed.partial) {
      std::fprintf(stderr, "injected failure did not surface as partial\n");
      return 1;
    }
  }
  cluster.TakeMetricsSnapshot();

  const std::string health = cluster.HealthDump();
  if (health.find("table=events status=RED") == std::string::npos ||
      health.find("table=metrics status=GREEN") == std::string::npos) {
    std::fprintf(stderr,
                 "health report misgrades the injected faults:\n%s",
                 health.c_str());
    return 1;
  }

  std::printf("# --- metrics dump ---\n%s", cluster.MetricsDump().c_str());
  std::printf("# --- health dump ---\n%s", health.c_str());
  std::printf("# --- end ---\n");
  return 0;
}
