#include "segment/segment_builder.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace pinot {

namespace {

int64_t CoerceInt64(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) return static_cast<int64_t>(*d);
  return 0;
}

double CoerceDouble(const Value& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<int64_t>(&v)) return static_cast<double>(*i);
  return 0.0;
}

std::string CoerceString(const Value& v) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  return ValueToString(v);
}

}  // namespace

SegmentBuilder::SegmentBuilder(Schema schema, SegmentBuildConfig config,
                               Clock* clock)
    : schema_(std::move(schema)),
      config_(std::move(config)),
      clock_(clock),
      columns_(schema_.num_fields()) {}

Status SegmentBuilder::AddRow(const Row& row) {
  assert(!built_);
  for (int i = 0; i < schema_.num_fields(); ++i) {
    const FieldSpec& field = schema_.field(i);
    const Value& provided = row.Get(field.name);
    if (IsNull(provided)) {
      PINOT_RETURN_NOT_OK(AppendValue(i, schema_.EffectiveDefault(i)));
    } else {
      if (field.single_value && IsMultiValue(provided)) {
        return Status::InvalidArgument("multi-value supplied for single-value column " +
                                       field.name);
      }
      if (!field.single_value && !IsMultiValue(provided)) {
        return Status::InvalidArgument("single value supplied for multi-value column " +
                                       field.name);
      }
      PINOT_RETURN_NOT_OK(AppendValue(i, provided));
    }
  }
  ++num_rows_;
  return Status::OK();
}

Status SegmentBuilder::AppendValue(int field_index, const Value& value) {
  const FieldSpec& field = schema_.field(field_index);
  RawColumn& column = columns_[field_index];
  const Dictionary::Storage storage = Dictionary::StorageFor(field.type);
  if (field.single_value) {
    switch (storage) {
      case Dictionary::Storage::kInt64:
        column.i64.push_back(CoerceInt64(value));
        return Status::OK();
      case Dictionary::Storage::kDouble:
        column.f64.push_back(CoerceDouble(value));
        return Status::OK();
      case Dictionary::Storage::kString:
        column.str.push_back(CoerceString(value));
        return Status::OK();
    }
  } else {
    switch (storage) {
      case Dictionary::Storage::kInt64: {
        std::vector<int64_t> entries;
        if (const auto* xs = std::get_if<std::vector<int64_t>>(&value)) {
          entries = *xs;
        } else if (const auto* ds = std::get_if<std::vector<double>>(&value)) {
          for (double d : *ds) entries.push_back(static_cast<int64_t>(d));
        }
        column.mi64.push_back(std::move(entries));
        return Status::OK();
      }
      case Dictionary::Storage::kDouble: {
        std::vector<double> entries;
        if (const auto* xs = std::get_if<std::vector<double>>(&value)) {
          entries = *xs;
        } else if (const auto* is = std::get_if<std::vector<int64_t>>(&value)) {
          for (int64_t i : *is) entries.push_back(static_cast<double>(i));
        }
        column.mf64.push_back(std::move(entries));
        return Status::OK();
      }
      case Dictionary::Storage::kString: {
        std::vector<std::string> entries;
        if (const auto* xs = std::get_if<std::vector<std::string>>(&value)) {
          entries = *xs;
        }
        column.mstr.push_back(std::move(entries));
        return Status::OK();
      }
    }
  }
  return Status::Internal("unreachable");
}

Result<std::shared_ptr<ImmutableSegment>> SegmentBuilder::Build() {
  assert(!built_);
  built_ = true;
  const uint32_t n = num_rows_;

  // Validate sort columns: must be single-value columns of the schema.
  for (const auto& name : config_.sort_columns) {
    const FieldSpec* spec = schema_.GetField(name);
    if (spec == nullptr) {
      return Status::InvalidArgument("sort column not in schema: " + name);
    }
    if (!spec->single_value) {
      return Status::InvalidArgument("sort column must be single-value: " +
                                     name);
    }
  }

  // Physical record reordering by the configured sort columns
  // (paper section 4.2).
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (!config_.sort_columns.empty()) {
    std::vector<int> sort_indexes;
    for (const auto& name : config_.sort_columns) {
      sort_indexes.push_back(schema_.IndexOf(name));
    }
    std::stable_sort(
        order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
          for (int field_index : sort_indexes) {
            const RawColumn& column = columns_[field_index];
            const FieldSpec& field = schema_.field(field_index);
            switch (Dictionary::StorageFor(field.type)) {
              case Dictionary::Storage::kInt64:
                if (column.i64[a] != column.i64[b]) {
                  return column.i64[a] < column.i64[b];
                }
                break;
              case Dictionary::Storage::kDouble:
                if (column.f64[a] != column.f64[b]) {
                  return column.f64[a] < column.f64[b];
                }
                break;
              case Dictionary::Storage::kString:
                if (column.str[a] != column.str[b]) {
                  return column.str[a] < column.str[b];
                }
                break;
            }
          }
          return false;
        });
  }

  SegmentMetadata metadata;
  metadata.table_name = config_.table_name;
  metadata.segment_name = config_.segment_name;
  metadata.num_docs = n;
  metadata.creation_time_millis = clock_->NowMillis();
  metadata.sorted_column =
      config_.sort_columns.empty() ? "" : config_.sort_columns.front();
  metadata.partition_id = config_.partition_id;
  metadata.partition_column = config_.partition_column;
  metadata.num_partitions = config_.num_partitions;

  std::vector<std::unique_ptr<ImmutableSegment::Column>> built_columns;
  built_columns.reserve(schema_.num_fields());

  // Per-column dict ids in sorted doc order; kept for star-tree input.
  std::vector<std::vector<uint32_t>> sv_dict_ids(schema_.num_fields());

  for (int f = 0; f < schema_.num_fields(); ++f) {
    const FieldSpec& field = schema_.field(f);
    RawColumn& raw = columns_[f];
    const Dictionary::Storage storage = Dictionary::StorageFor(field.type);

    Dictionary dictionary = [&] {
      switch (storage) {
        case Dictionary::Storage::kInt64: {
          std::vector<int64_t> values = raw.i64;
          for (const auto& xs : raw.mi64) {
            values.insert(values.end(), xs.begin(), xs.end());
          }
          if (values.empty()) values.push_back(0);
          return Dictionary::BuildSortedInt64(std::move(values));
        }
        case Dictionary::Storage::kDouble: {
          std::vector<double> values = raw.f64;
          for (const auto& xs : raw.mf64) {
            values.insert(values.end(), xs.begin(), xs.end());
          }
          if (values.empty()) values.push_back(0.0);
          return Dictionary::BuildSortedDouble(std::move(values));
        }
        case Dictionary::Storage::kString: {
          std::vector<std::string> values = raw.str;
          for (const auto& xs : raw.mstr) {
            values.insert(values.end(), xs.begin(), xs.end());
          }
          if (values.empty()) values.push_back(std::string());
          return Dictionary::BuildSortedString(std::move(values));
        }
      }
      return Dictionary::BuildSortedInt64({0});
    }();

    ColumnStats stats;
    stats.cardinality = dictionary.size();
    stats.min_value = dictionary.MinValue();
    stats.max_value = dictionary.MaxValue();

    ForwardIndex forward;
    if (field.single_value) {
      std::vector<uint32_t>& ids = sv_dict_ids[f];
      ids.resize(n);
      bool is_sorted = true;
      for (uint32_t doc = 0; doc < n; ++doc) {
        const uint32_t src = order[doc];
        int id = -1;
        switch (storage) {
          case Dictionary::Storage::kInt64:
            id = dictionary.IndexOfInt64(raw.i64[src]);
            break;
          case Dictionary::Storage::kDouble:
            id = dictionary.IndexOfDouble(raw.f64[src]);
            break;
          case Dictionary::Storage::kString:
            id = dictionary.IndexOfString(raw.str[src]);
            break;
        }
        assert(id >= 0);
        ids[doc] = static_cast<uint32_t>(id);
        if (doc > 0 && ids[doc] < ids[doc - 1]) is_sorted = false;
      }
      stats.is_sorted = n == 0 ? true : is_sorted;
      stats.total_entries = n;
      stats.max_entries_per_row = 1;
      forward = ForwardIndex::BuildSingle(ids, dictionary.size());
    } else {
      std::vector<std::vector<uint32_t>> ids(n);
      uint32_t total_entries = 0;
      uint32_t max_entries = 0;
      for (uint32_t doc = 0; doc < n; ++doc) {
        const uint32_t src = order[doc];
        std::vector<uint32_t>& out = ids[doc];
        switch (storage) {
          case Dictionary::Storage::kInt64:
            for (int64_t v : raw.mi64[src]) {
              out.push_back(
                  static_cast<uint32_t>(dictionary.IndexOfInt64(v)));
            }
            break;
          case Dictionary::Storage::kDouble:
            for (double v : raw.mf64[src]) {
              out.push_back(
                  static_cast<uint32_t>(dictionary.IndexOfDouble(v)));
            }
            break;
          case Dictionary::Storage::kString:
            for (const auto& v : raw.mstr[src]) {
              out.push_back(
                  static_cast<uint32_t>(dictionary.IndexOfString(v)));
            }
            break;
        }
        total_entries += static_cast<uint32_t>(out.size());
        max_entries = std::max(max_entries,
                               static_cast<uint32_t>(out.size()));
      }
      stats.is_sorted = false;
      stats.total_entries = total_entries;
      stats.max_entries_per_row = max_entries;
      forward = ForwardIndex::BuildMulti(ids, dictionary.size());
    }

    // Time column range for hybrid-table merging and retention.
    if (field.role == FieldRole::kTime && n > 0) {
      metadata.min_time = CoerceInt64(dictionary.MinValue());
      metadata.max_time = CoerceInt64(dictionary.MaxValue());
    }

    auto column = std::make_unique<ImmutableSegment::Column>(
        field, std::move(dictionary), std::move(forward), stats);

    // Auto-attach a sorted index to any column whose doc order matches its
    // value order (always true for the primary sort column).
    if (stats.is_sorted && field.single_value && n > 0) {
      auto sorted = SortedIndex::BuildFromForwardIndex(
          column->forward_index(), column->dictionary().size());
      if (sorted.ok()) {
        column->SetSortedIndex(
            std::make_unique<SortedIndex>(std::move(sorted).value()));
      }
    }

    const bool wants_inverted =
        std::find(config_.inverted_index_columns.begin(),
                  config_.inverted_index_columns.end(),
                  field.name) != config_.inverted_index_columns.end();
    if (wants_inverted) {
      column->SetInvertedIndex(
          std::make_unique<InvertedIndex>(InvertedIndex::BuildFromForwardIndex(
              column->forward_index(), column->dictionary().size())));
    }

    built_columns.push_back(std::move(column));
  }

  auto segment = std::make_shared<ImmutableSegment>(
      schema_, std::move(metadata), std::move(built_columns));

  // Star-tree generation (section 4.3): dimension dict ids plus raw metric
  // values per document.
  if (config_.star_tree.enabled() && n > 0) {
    std::vector<int> dim_fields;
    for (const auto& name : config_.star_tree.dimensions) {
      const int idx = schema_.IndexOf(name);
      if (idx < 0) {
        return Status::InvalidArgument("star-tree dimension not in schema: " +
                                       name);
      }
      if (!schema_.field(idx).single_value) {
        return Status::InvalidArgument(
            "star-tree dimension must be single-value: " + name);
      }
      dim_fields.push_back(idx);
    }
    std::vector<int> metric_fields;
    for (const auto& name : config_.star_tree.metrics) {
      const int idx = schema_.IndexOf(name);
      if (idx < 0) {
        return Status::InvalidArgument("star-tree metric not in schema: " +
                                       name);
      }
      metric_fields.push_back(idx);
    }
    std::vector<StarTree::InputRecord> records(n);
    for (uint32_t doc = 0; doc < n; ++doc) {
      StarTree::InputRecord& record = records[doc];
      record.dims.reserve(dim_fields.size());
      for (int field_index : dim_fields) {
        record.dims.push_back(sv_dict_ids[field_index][doc]);
      }
      record.metrics.reserve(metric_fields.size());
      for (int field_index : metric_fields) {
        const RawColumn& raw = columns_[field_index];
        const uint32_t src = order[doc];
        const FieldSpec& field = schema_.field(field_index);
        switch (Dictionary::StorageFor(field.type)) {
          case Dictionary::Storage::kInt64:
            record.metrics.push_back(static_cast<double>(raw.i64[src]));
            break;
          case Dictionary::Storage::kDouble:
            record.metrics.push_back(raw.f64[src]);
            break;
          case Dictionary::Storage::kString:
            record.metrics.push_back(0.0);
            break;
        }
      }
    }
    segment->SetStarTree(std::make_unique<StarTree>(
        StarTree::Build(config_.star_tree, std::move(records))));
  }

  return segment;
}

}  // namespace pinot
