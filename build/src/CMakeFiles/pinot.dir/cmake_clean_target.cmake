file(REMOVE_RECURSE
  "libpinot.a"
)
