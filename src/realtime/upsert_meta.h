#ifndef PINOT_REALTIME_UPSERT_META_H_
#define PINOT_REALTIME_UPSERT_META_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bitmap/roaring.h"
#include "common/result.h"
#include "data/row.h"
#include "data/schema.h"
#include "metrics/metrics.h"
#include "segment/segment.h"

namespace pinot {

/// Per-segment validity bitmap for upsert tables (production Pinot's
/// validDocIds; CUBIT in PAPERS.md grounds the concurrency model). The
/// ingest thread invalidates superseded documents while queries read; each
/// invalidation publishes a fresh immutable snapshot of the *invalid* set,
/// so a query materializes one consistent validity view per segment with a
/// single shared_ptr load and is never affected by later flips.
///
/// Thread safety: any thread may call Invalidate (the upsert state mutex
/// serializes writers); InvalidSnapshot / epoch / dead_rows are wait-free
/// for readers.
class ValidDocsTracker {
 public:
  /// The current invalid-docs set; null until the first invalidation
  /// (the common all-valid case costs one null check).
  std::shared_ptr<const RoaringBitmap> InvalidSnapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return snapshot_;
  }

  /// Bumped once per invalidation; lets tests assert snapshot versioning.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  uint64_t dead_rows() const { return dead_.load(std::memory_order_acquire); }

  bool IsValid(uint32_t doc) const {
    auto snapshot = InvalidSnapshot();
    return snapshot == nullptr || !snapshot->Contains(doc);
  }

  /// Marks `doc` dead and publishes a new snapshot. Idempotent.
  void Invalidate(uint32_t doc);

 private:
  mutable std::mutex mutex_;
  RoaringBitmap invalid_;  // Writer's working copy.
  std::shared_ptr<const RoaringBitmap> snapshot_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> dead_{0};
};

/// Where a primary key's latest (live) row resides.
struct UpsertLocation {
  std::string segment;
  uint32_t doc = 0;
};

/// Per-table upsert metadata on one server: the primary-key -> location map
/// plus the validity-tracker registry, one tracker per segment name.
/// Latest-row-wins is arrival order: every CommitUpsert supersedes the
/// key's previous location.
///
/// Consistency model (see DESIGN.md §13): ingest mutates the map and flips
/// validity bits inside the consuming segment's writer lock, and queries
/// hold every consuming segment's reader lock for their whole execution, so
/// a query's per-segment validity snapshots always form one coherent view —
/// it can never observe both the superseded and the superseding row of a
/// key. Segment reloads (compaction swaps) renumber docids, so
/// BindLoadedSegment rebuilds validity from key ownership and publishes the
/// new instance atomically with the re-pointed map.
class UpsertTableState {
 public:
  UpsertTableState(std::string physical_table,
                   std::vector<std::string> key_columns,
                   MetricsRegistry* metrics);

  const std::vector<std::string>& key_columns() const { return key_columns_; }

  /// Renders the row's primary key: length-prefixed storage-typed fragments
  /// (injective; newline-safe), using the same value coercion the mutable
  /// dictionary applies, so a key rendered at ingest equals the key
  /// rendered back from the sealed segment's dictionaries.
  Result<std::string> RenderKeyFromRow(const Schema& schema,
                                       const Row& row) const;

  /// Renders the key of `doc` from the segment's key-column dictionaries.
  Result<std::string> RenderKeyFromDoc(const SegmentInterface& segment,
                                       uint32_t doc) const;

  /// Tracker for a segment name, created on first use. Consuming segments
  /// and their sealed promotions share one tracker (sealing preserves
  /// docids for upsert tables).
  std::shared_ptr<ValidDocsTracker> TrackerFor(const std::string& segment);

  /// Records key -> (segment, doc) and invalidates the key's previous
  /// location. Call with the appending consuming segment's writer lock
  /// held, after the row is visible at `doc`.
  void CommitUpsert(const std::string& key, const std::string& segment,
                    uint32_t doc);

  /// Binds a freshly loaded immutable segment under `tracker`: keys already
  /// owned by this segment name are re-pointed to their new docids
  /// (compaction renumbers), unclaimed keys are claimed, and docs whose key
  /// is owned by another segment are invalidated. `tracker` replaces the
  /// registry entry for the name, then `publish` runs under the state lock
  /// — the caller swaps the segment into its serving map there, so no query
  /// can pair the new instance with the old map or the old instance with
  /// the new one while ingest proceeds.
  Status BindLoadedSegment(const ImmutableSegment& segment,
                           std::shared_ptr<ValidDocsTracker> tracker,
                           const std::function<void()>& publish);

  uint64_t key_count() const;
  std::optional<UpsertLocation> Lookup(const std::string& key) const;

 private:
  // Invalidates `loc` in its tracker and bumps the dead-row metric.
  // Requires mutex_ held.
  void InvalidateLocked(const UpsertLocation& loc);

  const std::string physical_table_;
  const std::vector<std::string> key_columns_;
  MetricsRegistry* const metrics_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, UpsertLocation> keys_;
  std::unordered_map<std::string, std::shared_ptr<ValidDocsTracker>>
      trackers_;
};

}  // namespace pinot

#endif  // PINOT_REALTIME_UPSERT_META_H_
