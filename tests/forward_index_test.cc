#include "segment/forward_index.h"

#include <cstring>

#include <gtest/gtest.h>

#include "common/random.h"

namespace pinot {
namespace {

TEST(FixedBitVectorTest, BitsFor) {
  EXPECT_EQ(FixedBitVector::BitsFor(0), 0);
  EXPECT_EQ(FixedBitVector::BitsFor(1), 1);
  EXPECT_EQ(FixedBitVector::BitsFor(2), 2);
  EXPECT_EQ(FixedBitVector::BitsFor(3), 2);
  EXPECT_EQ(FixedBitVector::BitsFor(255), 8);
  EXPECT_EQ(FixedBitVector::BitsFor(256), 9);
  EXPECT_EQ(FixedBitVector::BitsFor(0xffffffff), 32);
}

TEST(FixedBitVectorTest, ZeroWidthAllZeros) {
  FixedBitVector v({0, 0, 0}, 0);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.bits(), 0);
  EXPECT_EQ(v.Get(1), 0u);
  EXPECT_EQ(v.SizeInBytes(), 0u);
}

TEST(FixedBitVectorTest, PackUnpackVariousWidths) {
  for (uint32_t max_value : {1u, 3u, 7u, 100u, 4095u, 1000000u, 0xffffffffu}) {
    Random rng(max_value);
    std::vector<uint32_t> values;
    for (int i = 0; i < 1000; ++i) {
      values.push_back(static_cast<uint32_t>(
          rng.NextUint64(static_cast<uint64_t>(max_value) + 1)));
    }
    FixedBitVector v(values, max_value);
    for (size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(v.Get(static_cast<uint32_t>(i)), values[i])
          << "max_value=" << max_value << " i=" << i;
    }
  }
}

TEST(FixedBitVectorTest, ValuesSpanningWordBoundaries) {
  // Width 31 forces many cross-word values.
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 100; ++i) values.push_back((1u << 30) + i);
  FixedBitVector v(values, (1u << 31) - 1);
  EXPECT_EQ(v.bits(), 31);
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(v.Get(i), (1u << 30) + i);
}

TEST(FixedBitVectorTest, SerializeRoundTrip) {
  std::vector<uint32_t> values = {5, 0, 9, 3, 7};
  FixedBitVector v(values, 9);
  ByteWriter writer;
  v.Serialize(&writer);
  ByteReader reader(writer.buffer());
  auto restored = FixedBitVector::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(restored->Get(static_cast<uint32_t>(i)), values[i]);
  }
}

TEST(FixedBitVectorTest, GetBatchMatchesGetAcrossWidths) {
  for (int bits = 0; bits <= 32; ++bits) {
    const uint32_t max_value =
        bits == 0 ? 0
                  : (bits == 32 ? 0xffffffffu : (1u << bits) - 1);
    Random rng(100 + bits);
    // Odd element count so batches straddle word boundaries for every
    // width.
    const uint32_t n = 777 + static_cast<uint32_t>(bits);
    std::vector<uint32_t> values;
    values.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      values.push_back(static_cast<uint32_t>(
          rng.NextUint64(static_cast<uint64_t>(max_value) + 1)));
    }
    FixedBitVector v(values, max_value);
    std::vector<uint32_t> out(n, 0xdeadbeef);

    // Full decode.
    v.GetBatch(0, n, out.data());
    for (uint32_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], values[i]) << "bits=" << bits << " i=" << i;
    }

    // Random (start, count) windows, including odd offsets and zero-length
    // batches.
    for (int t = 0; t < 64; ++t) {
      const uint32_t start = static_cast<uint32_t>(rng.NextUint64(n + 1));
      const uint32_t count =
          static_cast<uint32_t>(rng.NextUint64(n - start + 1));
      std::fill(out.begin(), out.end(), 0xdeadbeef);
      v.GetBatch(start, count, out.data());
      for (uint32_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[i], v.Get(start + i))
            << "bits=" << bits << " start=" << start << " count=" << count
            << " i=" << i;
      }
    }
  }
}

TEST(FixedBitVectorTest, DeserializeRejectsWordCountMismatch) {
  FixedBitVector v({1, 2, 3, 4, 5}, 5);
  ByteWriter writer;
  v.Serialize(&writer);
  // Layout: u32 size, u32 bits, u64 num_words, raw words. Inflate the word
  // count field.
  std::string corrupt = writer.buffer();
  uint64_t bogus_words = 12345;
  std::memcpy(corrupt.data() + 8, &bogus_words, sizeof(bogus_words));
  ByteReader reader(corrupt);
  auto restored = FixedBitVector::Deserialize(&reader);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(FixedBitVectorTest, DeserializeRejectsHugeWordCountWithoutAllocating) {
  // A hand-built header claiming 2^60 words must be rejected up front
  // (validation happens before the resize).
  ByteWriter writer;
  writer.WriteU32(4);                    // size
  writer.WriteU32(8);                    // bits
  writer.WriteU64(uint64_t{1} << 60);    // num_words
  ByteReader reader(writer.buffer());
  auto restored = FixedBitVector::Deserialize(&reader);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(ForwardIndexTest, GetRangeSingleMatchesGet) {
  Random rng(7);
  std::vector<uint32_t> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(static_cast<uint32_t>(rng.NextUint64(300)));
  }
  ForwardIndex index = ForwardIndex::BuildSingle(ids, 300);
  std::vector<uint32_t> out(1000);
  index.GetRangeSingle(123, 500, out.data());
  for (uint32_t i = 0; i < 500; ++i) {
    ASSERT_EQ(out[i], index.Get(123 + i));
  }
}

TEST(ForwardIndexTest, DeserializeRejectsDocCountMismatch) {
  ForwardIndex index = ForwardIndex::BuildSingle({2, 0, 1, 2}, 3);
  ByteWriter writer;
  index.Serialize(&writer);
  // Layout: u8 single_value, u32 num_docs, values. Claim more docs than
  // the packed vector holds.
  std::string corrupt = writer.buffer();
  uint32_t bogus_docs = 400;
  std::memcpy(corrupt.data() + 1, &bogus_docs, sizeof(bogus_docs));
  ByteReader reader(corrupt);
  auto restored = ForwardIndex::Deserialize(&reader);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(ForwardIndexTest, SingleValue) {
  ForwardIndex index = ForwardIndex::BuildSingle({2, 0, 1, 2}, 3);
  EXPECT_TRUE(index.single_value());
  EXPECT_EQ(index.num_docs(), 4u);
  EXPECT_EQ(index.Get(0), 2u);
  EXPECT_EQ(index.Get(1), 0u);
  EXPECT_EQ(index.Get(3), 2u);
}

TEST(ForwardIndexTest, MultiValue) {
  ForwardIndex index =
      ForwardIndex::BuildMulti({{0, 1}, {}, {2}, {1, 1, 0}}, 3);
  EXPECT_FALSE(index.single_value());
  EXPECT_EQ(index.num_docs(), 4u);
  std::vector<uint32_t> out;
  index.GetMulti(0, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1}));
  index.GetMulti(1, &out);
  EXPECT_TRUE(out.empty());
  index.GetMulti(3, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 1, 0}));
  EXPECT_EQ(index.TotalEntries(), 6u);
}

TEST(ForwardIndexTest, SerializeRoundTripMulti) {
  ForwardIndex index = ForwardIndex::BuildMulti({{0}, {1, 2}, {}}, 3);
  ByteWriter writer;
  index.Serialize(&writer);
  ByteReader reader(writer.buffer());
  auto restored = ForwardIndex::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  std::vector<uint32_t> out;
  restored->GetMulti(1, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 2}));
}

TEST(ForwardIndexTest, CardinalityOneUsesZeroBits) {
  ForwardIndex index = ForwardIndex::BuildSingle({0, 0, 0, 0}, 1);
  EXPECT_EQ(index.SizeInBytes(), 0u);
  EXPECT_EQ(index.Get(2), 0u);
}

}  // namespace
}  // namespace pinot
