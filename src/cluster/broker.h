#ifndef PINOT_CLUSTER_BROKER_H_
#define PINOT_CLUSTER_BROKER_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cluster_context.h"
#include "cluster/cluster_manager.h"
#include "cluster/table_config.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "metrics/metrics.h"
#include "query/query.h"
#include "query/result.h"
#include "routing/routing.h"
#include "trace/slow_query_log.h"
#include "trace/trace.h"

namespace pinot {

/// A Pinot broker (paper sections 3.2-3.3): parses queries, rewrites
/// hybrid-table queries around the time boundary (Figure 6), picks a
/// routing table at random, scatters sub-queries to servers, gathers and
/// merges partial results. Calls that fail or time out are retried on
/// other live replicas of the affected segments within the query's
/// deadline budget; only when no replica answers is the response flagged
/// partial, with an execution trace saying which servers and segments
/// failed. Routing tables are rebuilt whenever the external view changes
/// (section 3.3.2).
class Broker {
 public:
  struct Options {
    int scatter_threads = 8;
    int64_t default_timeout_millis = 10000;
    uint64_t seed = 1234;
    // Number of precomputed tables for the balanced strategy (queries pick
    // one at random).
    int balanced_tables = 3;
    // Maximum replica-retry waves after the initial scatter. Each wave
    // re-routes the segments of failed/timed-out calls to untried live
    // replicas; all waves share the query's deadline budget.
    int max_scatter_retries = 2;
    // Slow-query log: queries at or over the threshold retain their
    // rendered span tree in a worst-N ring (SlowQueryLogDump()).
    double slow_query_threshold_millis = 100.0;
    size_t slow_query_log_capacity = 8;

    // --- Tail tolerance (adaptive routing / hedging / shedding) ----------

    // Adaptive replica selection: per-segment power-of-two-choices override
    // of the routing-table replica pick, scored by latency EWMA ×
    // in-flight. Also used for failover and hedge replica picks.
    bool adaptive_routing = true;
    // Probability that a pick ignores the score and probes a uniformly
    // random replica, so cold/recovered servers get re-measured.
    double explore_probability = 0.05;
    // A replica steals a segment from its routing-table assignee only when
    // its score is below assignee_score × this factor (hysteresis: equal
    // servers keep the precomputed balanced assignment).
    double adaptive_hysteresis = 0.9;

    // Hedged requests: when an outstanding scatter call exceeds the
    // latency budget — the `hedge_percentile` of observed call latencies,
    // clamped to [hedge_floor_millis, hedge_cap_millis] — fire one
    // speculative call for the same segments to different live replicas
    // and merge whichever side answers first. Until `hedge_min_samples`
    // calls have been observed the budget is the cap (no hedging during
    // warmup, when the percentile estimate is noise).
    bool hedging_enabled = true;
    double hedge_percentile = 95.0;
    double hedge_floor_millis = 5.0;
    double hedge_cap_millis = 2000.0;
    uint64_t hedge_min_samples = 50;
    // Bound on speculative calls per query, so hedges cannot amplify an
    // overloaded cluster's load unboundedly.
    int max_hedged_calls = 4;

    // Broker load shedding: with this many queries already in flight, new
    // queries are rejected immediately with a throttled QueryResult (and a
    // retry-after estimate) instead of queueing until everything
    // saturates. <= 0 disables shedding.
    int max_inflight_queries = 1024;
  };

  Broker(std::string id, ClusterContext ctx, Options options);
  Broker(std::string id, ClusterContext ctx);
  ~Broker();

  /// Registers the instance and subscribes to external-view changes.
  void Start();

  const std::string& id() const { return id_; }

  /// Full client entry point: parse, route, scatter, gather, reduce.
  QueryResult Execute(const std::string& pql);
  QueryResult ExecuteQuery(const Query& query);

  /// Forces a routing rebuild for one physical table (normally triggered
  /// by the external-view watch).
  void RebuildRouting(const std::string& physical_table);

  /// Rendered worst-first slow-query traces, dumpable next to
  /// MetricsDump(). Broker-level spans are built for every query (cheap: a
  /// handful per request), so the log captures slow queries even when the
  /// client did not ask for TRACE.
  std::string SlowQueryLogDump(size_t top_n = 0) const {
    return slow_query_log_.Dump(top_n);
  }
  SlowQueryLog* slow_query_log() { return &slow_query_log_; }

  /// Per-server latency/load estimates feeding adaptive replica selection
  /// and the hedge budget (exposed for tests and introspection).
  ServerStatsRegistry* server_stats() { return &server_stats_; }

  /// Queries currently inside ExecuteQuery (the shed watermark input).
  int InFlightQueries() const {
    return inflight_queries_.load(std::memory_order_relaxed);
  }

 private:
  struct TableRouting {
    TableConfig config;
    bool config_loaded = false;
    std::vector<RoutingTable> routing_tables;
    // Segment -> partition id (-1 when unpartitioned), for partition-aware
    // pruning.
    std::map<std::string, int32_t> segment_partitions;
    // Segment -> queryable replicas, for partition-aware per-query routing.
    std::map<std::string, std::vector<std::string>> segment_servers;
  };

  /// Runs one physical table's scatter/gather and merges into `merged`.
  /// Failed or timed-out calls are retried on other live replicas within
  /// `deadline`; every call is recorded in `trace` and as a `call:<server>`
  /// child of `scatter_span` (wave number, outcome, per-segment replica-
  /// pick reason; server-side spans nest under their call).
  void QueryPhysicalTable(const std::string& physical_table,
                          const Query& query,
                          std::chrono::steady_clock::time_point deadline,
                          PartialResult* merged, QueryTrace* trace,
                          TraceSpan* scatter_span);

  /// Builds the per-query routing for a partition-aware table.
  RoutingTable BuildPartitionAwareTable(const TableRouting& routing,
                                        const Query& query);

  std::shared_ptr<TableRouting> GetRouting(const std::string& physical_table);

  const std::string id_;
  ClusterContext ctx_;
  Options options_;
  MetricsRegistry* metrics_;
  // Declared before pool_ so scatter workers (which report call outcomes
  // into the registry) are joined before the registry is destroyed.
  ServerStatsRegistry server_stats_;
  std::atomic<int> inflight_queries_{0};
  ThreadPool pool_;
  int view_watch_handle_ = -1;

  SlowQueryLog slow_query_log_;

  mutable std::mutex mutex_;
  Random rng_;
  std::map<std::string, std::shared_ptr<TableRouting>> routing_;
};

}  // namespace pinot

#endif  // PINOT_CLUSTER_BROKER_H_
