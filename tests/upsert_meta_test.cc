// Unit tests for the upsert subsystem: validity-tracker snapshot semantics,
// primary-key rendering, the key -> location map, segment rebinding, and the
// plan-path guards that keep stale rows out of every answer.
#include "realtime/upsert_meta.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "query/segment_executor.h"
#include "segment/segment_builder.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using test::AnalyticsRow;
using test::AnalyticsRows;
using test::AnalyticsSchema;
using test::BuildAnalyticsSegment;
using test::ToRow;

TEST(ValidDocsTrackerTest, SnapshotsAreImmutableVersions) {
  ValidDocsTracker tracker;
  EXPECT_EQ(tracker.InvalidSnapshot(), nullptr);  // All-valid: no snapshot.
  EXPECT_EQ(tracker.epoch(), 0u);
  EXPECT_TRUE(tracker.IsValid(7));

  tracker.Invalidate(7);
  auto first = tracker.InvalidSnapshot();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(tracker.epoch(), 1u);
  EXPECT_EQ(tracker.dead_rows(), 1u);
  EXPECT_FALSE(tracker.IsValid(7));
  EXPECT_TRUE(tracker.IsValid(8));

  // A later invalidation publishes a NEW snapshot; the one a concurrent
  // query grabbed is never mutated underneath it.
  tracker.Invalidate(8);
  EXPECT_EQ(first->Cardinality(), 1u);
  EXPECT_FALSE(first->Contains(8));
  auto second = tracker.InvalidSnapshot();
  EXPECT_EQ(second->Cardinality(), 2u);
  EXPECT_EQ(tracker.epoch(), 2u);

  // Idempotent: re-invalidating flips nothing and publishes nothing.
  tracker.Invalidate(8);
  EXPECT_EQ(tracker.epoch(), 2u);
  EXPECT_EQ(tracker.dead_rows(), 2u);
}

TEST(UpsertKeyTest, RenderingIsInjectiveAcrossFragments) {
  // Two string key columns whose concatenation would collide under any
  // separator-based rendering ("a\nb"+"c" vs "a"+"\nb c" etc.). The
  // length-prefixed fragments must keep them distinct.
  UpsertTableState state("t_REALTIME", {"country", "browser"}, nullptr);
  const Schema schema = AnalyticsSchema();
  auto render = [&](const std::string& country, const std::string& browser) {
    AnalyticsRow r{country, browser, 1, {}, 0, 0, 100};
    auto key = state.RenderKeyFromRow(schema, ToRow(r));
    EXPECT_TRUE(key.ok()) << key.status().ToString();
    return *key;
  };
  EXPECT_NE(render("a\nb", "c"), render("a", "b\nc"));
  EXPECT_NE(render("ab", "c"), render("a", "bc"));
  EXPECT_NE(render("", "abc"), render("abc", ""));
  EXPECT_EQ(render("a\nb", "c"), render("a\nb", "c"));
}

TEST(UpsertKeyTest, RowAndDocRenderingsAgree) {
  // A key rendered at ingest time must equal the key rendered back from the
  // sealed segment's dictionaries, or rebinding after a reload would orphan
  // every row.
  UpsertTableState state("t_REALTIME", {"memberId", "country"}, nullptr);
  const Schema schema = AnalyticsSchema();
  auto segment = BuildAnalyticsSegment();  // Unsorted: docids = row order.
  const auto rows = AnalyticsRows();
  for (uint32_t doc = 0; doc < rows.size(); ++doc) {
    auto from_row = state.RenderKeyFromRow(schema, ToRow(rows[doc]));
    auto from_doc = state.RenderKeyFromDoc(*segment, doc);
    ASSERT_TRUE(from_row.ok()) << from_row.status().ToString();
    ASSERT_TRUE(from_doc.ok()) << from_doc.status().ToString();
    EXPECT_EQ(*from_row, *from_doc) << "doc " << doc;
  }
}

TEST(UpsertKeyTest, RejectsMultiValueKeyColumn) {
  UpsertTableState state("t_REALTIME", {"tags"}, nullptr);
  auto key = state.RenderKeyFromRow(AnalyticsSchema(),
                                    ToRow(AnalyticsRows().front()));
  EXPECT_FALSE(key.ok());
}

TEST(UpsertTableStateTest, CommitLatestRowWins) {
  UpsertTableState state("t_REALTIME", {"memberId"}, nullptr);
  auto tracker = state.TrackerFor("seg0");

  state.CommitUpsert("k1", "seg0", 0);
  state.CommitUpsert("k2", "seg0", 1);
  EXPECT_EQ(state.key_count(), 2u);
  EXPECT_TRUE(tracker->IsValid(0));

  // Same key again: the previous location dies, the map re-points.
  state.CommitUpsert("k1", "seg0", 2);
  EXPECT_FALSE(tracker->IsValid(0));
  EXPECT_TRUE(tracker->IsValid(2));
  auto loc = state.Lookup("k1");
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->segment, "seg0");
  EXPECT_EQ(loc->doc, 2u);

  // Across segments: the old segment's doc dies, not the new one's.
  state.CommitUpsert("k1", "seg1", 0);
  EXPECT_FALSE(tracker->IsValid(2));
  EXPECT_TRUE(state.TrackerFor("seg1")->IsValid(0));

  // Degenerate self-commit must not kill its own row.
  state.CommitUpsert("k1", "seg1", 0);
  EXPECT_TRUE(state.TrackerFor("seg1")->IsValid(0));
}

TEST(UpsertTableStateTest, BindClaimsRepointsAndInvalidates) {
  // The fixture has duplicate memberIds (1,2,3,1,2,3,4,4,5,5,1,1): binding
  // it into an empty state must leave exactly one live doc per key — the
  // LAST occurrence, because row order is arrival order.
  UpsertTableState state("t_REALTIME", {"memberId"}, nullptr);
  auto segment = BuildAnalyticsSegment();
  auto tracker = std::make_shared<ValidDocsTracker>();
  bool published = false;
  ASSERT_TRUE(state
                  .BindLoadedSegment(*segment, tracker,
                                     [&] { published = true; })
                  .ok());
  EXPECT_TRUE(published);
  EXPECT_EQ(state.key_count(), 5u);  // Members 1..5.
  EXPECT_EQ(tracker->dead_rows(), segment->num_docs() - 5);
  // Member 1 appears at docs 0, 3, 10, 11 -> only 11 lives.
  EXPECT_FALSE(tracker->IsValid(0));
  EXPECT_FALSE(tracker->IsValid(3));
  EXPECT_FALSE(tracker->IsValid(10));
  EXPECT_TRUE(tracker->IsValid(11));

  // A newer row for member 1 lives in the consuming segment: rebinding the
  // same blob (e.g. a replica bounce) must leave every member-1 doc dead
  // and ownership untouched.
  state.CommitUpsert(*state.RenderKeyFromDoc(*segment, 11), "consuming", 4);
  auto rebound = std::make_shared<ValidDocsTracker>();
  ASSERT_TRUE(state.BindLoadedSegment(*segment, rebound, nullptr).ok());
  EXPECT_FALSE(rebound->IsValid(11));
  auto loc = state.Lookup(*state.RenderKeyFromDoc(*segment, 11));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->segment, "consuming");

  // Keys still owned by this segment were re-pointed, not killed: member 2
  // (docs 1, 4) keeps exactly doc 4 live in the new tracker.
  EXPECT_FALSE(rebound->IsValid(1));
  EXPECT_TRUE(rebound->IsValid(4));
}

TEST(UpsertPlanGuardTest, StarTreeAndMetadataPlansRefuseUpsertSegments) {
  SegmentBuildConfig config;
  config.sort_columns = {"country"};
  config.star_tree.dimensions = {"country", "browser", "day"};
  config.star_tree.metrics = {"impressions", "clicks"};
  auto segment = BuildAnalyticsSegment(config);

  auto star_query = ParsePql(
      "SELECT sum(impressions) FROM analytics GROUP BY country TOP 10");
  auto count_query = ParsePql("SELECT count(*) FROM analytics");
  ASSERT_TRUE(star_query.ok() && count_query.ok());

  // Without validity: the usual fast plans apply.
  EXPECT_EQ(PlanQueryOnSegment(*segment, *star_query),
            SegmentPlanKind::kStarTree);
  EXPECT_EQ(PlanQueryOnSegment(*segment, *count_query),
            SegmentPlanKind::kMetadataOnly);

  // With a validity tracker attached both must fall back to raw: star-tree
  // cells pre-aggregate superseded rows and segment metadata counts them.
  segment->SetValidDocs(std::make_shared<ValidDocsTracker>());
  EXPECT_EQ(PlanQueryOnSegment(*segment, *star_query), SegmentPlanKind::kRaw);
  EXPECT_EQ(PlanQueryOnSegment(*segment, *count_query), SegmentPlanKind::kRaw);
}

TEST(UpsertExecutionTest, RawPathIntersectsValiditySnapshot) {
  auto segment = BuildAnalyticsSegment();
  auto tracker = std::make_shared<ValidDocsTracker>();
  segment->SetValidDocs(tracker);
  // Kill the first three member-1 rows (docs 0, 3, 10), as upsert ingest
  // would have.
  tracker->Invalidate(0);
  tracker->Invalidate(3);
  tracker->Invalidate(10);

  auto result = test::RunPql(segment, "SELECT count(*) FROM analytics");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 9);
  EXPECT_EQ(result.total_docs, 9u);

  // Filtered query: the filter domain is intersected with validity, so a
  // predicate matching a dead row returns only the live ones.
  result = test::RunPql(
      segment, "SELECT count(*), sum(impressions) FROM analytics WHERE "
               "memberId = 1");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 1);
  // Only doc 11 (impressions=120) is live for member 1.
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[1]), 120);

  // Group-by sees one row per live doc.
  result = test::RunPql(
      segment,
      "SELECT count(*) FROM analytics GROUP BY memberId TOP 10");
  for (const auto& group : result.group_rows) {
    if (std::get<int64_t>(group.keys[0]) == 1) {
      EXPECT_EQ(std::get<int64_t>(group.values[0]), 1);
    }
  }
}

}  // namespace
}  // namespace pinot
