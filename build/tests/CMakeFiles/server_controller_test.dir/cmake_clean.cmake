file(REMOVE_RECURSE
  "CMakeFiles/server_controller_test.dir/server_controller_test.cc.o"
  "CMakeFiles/server_controller_test.dir/server_controller_test.cc.o.d"
  "server_controller_test"
  "server_controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
