#ifndef PINOT_CLUSTER_CONTROLLER_H_
#define PINOT_CLUSTER_CONTROLLER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_context.h"
#include "cluster/cluster_manager.h"
#include "cluster/object_store.h"
#include "cluster/property_store.h"
#include "cluster/table_config.h"
#include "metrics/metrics.h"
#include "realtime/completion.h"

namespace pinot {

/// The Pinot controller (paper section 3.2): owns the authoritative
/// segment-to-server mapping, handles segment uploads (Figure 8), table
/// administration, retention garbage collection, live schema additions
/// (section 5.2), the realtime segment completion protocol (section 3.3.6),
/// and the minion task queue. Three controllers typically run per
/// datacenter with a single Helix-elected master; non-leader controllers
/// answer NOTLEADER / FailedPrecondition and otherwise idle.
class Controller : public ControllerApi {
 public:
  struct Options {
    // Max time the completion FSM waits for all replicas to poll before
    // deciding a committer.
    int64_t completion_max_wait_millis = 3000;
  };

  /// A maintenance task executed by minions (paper section 3.2).
  struct Task {
    std::string type;
    std::string physical_table;
    std::string segment;
    std::string payload;
  };

  Controller(std::string id, ClusterContext ctx, Options options);
  Controller(std::string id, ClusterContext ctx);

  /// Registers with the cluster manager and joins leader election.
  void Start();

  const std::string& id() const { return id_; }
  bool IsLeader() const { return leader_.load(std::memory_order_acquire); }

  // --- Table administration (the controller "REST API") --------------------

  /// Creates a table: persists the config and, for realtime tables, creates
  /// the initial CONSUMING segment for every stream partition.
  Status AddTable(const TableConfig& config);

  /// Replaces a table's config (the source-control config sync of section
  /// 5.2). The schema must be evolved through AddColumn.
  Status UpdateTableConfig(const TableConfig& config);

  Result<TableConfig> GetTableConfig(const std::string& physical_table) const;
  std::vector<std::string> ListTables() const;
  Status DeleteTable(const std::string& physical_table);

  /// Segment upload (paper section 3.3.5): verifies integrity via the
  /// blob's CRC envelope, enforces the table quota, persists the blob,
  /// writes metadata, and assigns replicas to ONLINE. Re-uploading an
  /// existing segment name atomically replaces it.
  Status UploadSegment(const std::string& physical_table,
                       const std::string& blob);

  Status DeleteSegment(const std::string& physical_table,
                       const std::string& segment);

  /// Adds a column to a live table (section 5.2): evolves the stored
  /// schema and tells every server to default-fill existing segments.
  Status AddColumn(const std::string& physical_table, const FieldSpec& field);

  /// Tells every server hosting the table to build an inverted index on
  /// `column` (the automated index advisor's action, section 5.2).
  Status RequestInvertedIndex(const std::string& physical_table,
                              const std::string& column);

  /// Garbage-collects segments past the table retention (section 3.2).
  /// Returns the number of segments removed.
  int RunRetentionManager();

  // --- Minion task queue ----------------------------------------------------

  void ScheduleTask(Task task);
  std::optional<Task> FetchTask();
  size_t PendingTaskCount() const;

  /// Enqueues an "upsert_compact" minion task rewriting `segment` without
  /// its dead rows. `payload` carries the serialized invalid-docs bitmap
  /// (see EncodeUpsertCompactionPayload in minion.h).
  void ScheduleUpsertCompaction(const std::string& physical_table,
                                const std::string& segment,
                                std::string payload);

  // --- ControllerApi (realtime completion protocol) -------------------------

  CompletionResponse SegmentConsumedUntil(const std::string& physical_table,
                                          const std::string& segment,
                                          const std::string& server,
                                          int64_t offset) override;

  Status CommitSegment(const std::string& physical_table,
                       const std::string& segment, const std::string& server,
                       int64_t offset, const std::string& blob) override;

 private:
  Status StoreTableConfig(const TableConfig& config);
  std::vector<std::string> PickServers(const TableConfig& config,
                                       int count) const;
  Status CreateConsumingSegment(const TableConfig& config, int partition,
                                int sequence, int64_t start_offset,
                                const std::vector<std::string>& instances);
  void UpdateTimeBoundary(const std::string& physical_table);
  static std::string ConsumingSegmentName(const std::string& physical_table,
                                          int partition, int sequence);

  const std::string id_;
  ClusterContext ctx_;
  const Options options_;
  MetricsRegistry* metrics_;
  std::atomic<bool> leader_{false};

  mutable std::mutex mutex_;
  std::unique_ptr<SegmentCompletionManager> completion_;
  std::deque<Task> tasks_;
};

}  // namespace pinot

#endif  // PINOT_CLUSTER_CONTROLLER_H_
