#include "query/table_executor.h"

#include <mutex>

#include "query/segment_executor.h"

namespace pinot {

namespace {

int CompareValuesForPrune(const Value& a, const Value& b) {
  const auto* sa = std::get_if<std::string>(&a);
  const auto* sb = std::get_if<std::string>(&b);
  if (sa != nullptr && sb != nullptr) return sa->compare(*sb);
  const double da = ValueToDouble(a);
  const double db = ValueToDouble(b);
  return da < db ? -1 : (da > db ? 1 : 0);
}

// Returns true when `pred` provably matches no document given the column's
// [min, max] statistics.
bool PredicateDisjointFromStats(const Predicate& pred,
                                const ColumnStats& stats) {
  switch (pred.op) {
    case PredicateOp::kEq: {
      const Value& v = pred.values[0];
      return CompareValuesForPrune(v, stats.min_value) < 0 ||
             CompareValuesForPrune(v, stats.max_value) > 0;
    }
    case PredicateOp::kIn: {
      for (const auto& v : pred.values) {
        if (CompareValuesForPrune(v, stats.min_value) >= 0 &&
            CompareValuesForPrune(v, stats.max_value) <= 0) {
          return false;
        }
      }
      return true;
    }
    case PredicateOp::kRange: {
      if (pred.lower.has_value()) {
        const int c = CompareValuesForPrune(*pred.lower, stats.max_value);
        if (c > 0 || (c == 0 && !pred.lower_inclusive)) return true;
      }
      if (pred.upper.has_value()) {
        const int c = CompareValuesForPrune(*pred.upper, stats.min_value);
        if (c < 0 || (c == 0 && !pred.upper_inclusive)) return true;
      }
      return false;
    }
    case PredicateOp::kNotEq:
    case PredicateOp::kNotIn:
      return false;
  }
  return false;
}

// Walks top-level AND leaves only: if any single conjunct is disjoint from
// the segment, the whole filter is.
bool FilterDisjointFromSegment(const SegmentInterface& segment,
                               const FilterNode& node) {
  switch (node.kind) {
    case FilterNode::Kind::kLeaf: {
      const ColumnReader* column = segment.GetColumn(node.predicate.column);
      if (column == nullptr) return false;
      return PredicateDisjointFromStats(node.predicate, column->stats());
    }
    case FilterNode::Kind::kAnd:
      for (const auto& child : node.children) {
        if (FilterDisjointFromSegment(segment, child)) return true;
      }
      return false;
    case FilterNode::Kind::kOr:
      for (const auto& child : node.children) {
        if (!FilterDisjointFromSegment(segment, child)) return false;
      }
      return !node.children.empty();
  }
  return false;
}

}  // namespace

bool CanPruneSegment(const SegmentInterface& segment, const Query& query) {
  if (!query.filter.has_value()) return false;
  if (segment.num_docs() == 0) return true;
  return FilterDisjointFromSegment(segment, *query.filter);
}

PartialResult ExecuteQueryOnSegments(
    const std::vector<std::shared_ptr<SegmentInterface>>& segments,
    const Query& query, ThreadPool* pool) {
  PartialResult merged;

  std::vector<std::shared_ptr<SegmentInterface>> to_run;
  for (const auto& segment : segments) {
    if (CanPruneSegment(*segment, query)) {
      merged.stats.segments_pruned += 1;
      merged.total_docs += segment->num_docs();
    } else {
      to_run.push_back(segment);
    }
  }

  if (pool == nullptr || to_run.size() <= 1) {
    for (const auto& segment : to_run) {
      PartialResult partial;
      partial.status = ExecuteQueryOnSegment(*segment, query, &partial);
      merged.Merge(std::move(partial));
    }
    return merged;
  }

  std::vector<PartialResult> partials(to_run.size());
  pool->ParallelFor(static_cast<int>(to_run.size()), [&](int i) {
    partials[i].status =
        ExecuteQueryOnSegment(*to_run[i], query, &partials[i]);
  });
  for (auto& partial : partials) {
    merged.Merge(std::move(partial));
  }
  return merged;
}

}  // namespace pinot
