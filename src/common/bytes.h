#ifndef PINOT_COMMON_BYTES_H_
#define PINOT_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pinot {

/// Append-only little-endian byte sink used by the on-disk segment format
/// (the paper's "index file" is append-only so servers can add inverted
/// indexes on demand; see section 3.2).
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

  /// Length-prefixed (u32) string.
  void WriteString(std::string_view s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteRaw(s.data(), s.size());
  }

  void WriteRaw(const void* data, size_t size) {
    if (size == 0) return;  // data may be null (e.g. an empty vector).
    const char* p = static_cast<const char*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
  }

  const std::string& buffer() const { return buffer_; }
  std::string&& TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Bounds-checked little-endian reader over a byte span.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8() {
    uint8_t v;
    PINOT_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint32_t> ReadU32() {
    uint32_t v;
    PINOT_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint64_t> ReadU64() {
    uint64_t v;
    PINOT_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<int32_t> ReadI32() {
    int32_t v;
    PINOT_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<int64_t> ReadI64() {
    int64_t v;
    PINOT_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<float> ReadF32() {
    float v;
    PINOT_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<double> ReadF64() {
    double v;
    PINOT_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }

  Result<std::string> ReadString() {
    PINOT_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
    if (pos_ + len > data_.size()) {
      return Status::Corruption("string length exceeds buffer");
    }
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  Status ReadRaw(void* out, size_t size) {
    if (size == 0) return Status::OK();  // out may be null.
    if (pos_ + size > data_.size()) {
      return Status::Corruption("read past end of buffer");
    }
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return Status::OK();
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace pinot

#endif  // PINOT_COMMON_BYTES_H_
