#include "tenant/token_bucket.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace pinot {
namespace {

TEST(TokenBucketTest, StartsFull) {
  SimulatedClock clock;
  TokenBucket bucket(100, 10, &clock);
  EXPECT_TRUE(bucket.HasTokens());
  EXPECT_DOUBLE_EQ(bucket.Available(), 100);
}

TEST(TokenBucketTest, DeductCanGoNegative) {
  SimulatedClock clock;
  TokenBucket bucket(100, 10, &clock);
  bucket.Deduct(250);
  EXPECT_FALSE(bucket.HasTokens());
  EXPECT_DOUBLE_EQ(bucket.Available(), -150);
}

TEST(TokenBucketTest, RefillsOverTime) {
  SimulatedClock clock;
  TokenBucket bucket(100, 10, &clock);  // 10 tokens/sec = 0.01/ms.
  bucket.Deduct(100);
  EXPECT_FALSE(bucket.HasTokens());
  clock.AdvanceMillis(5000);  // +50 tokens.
  EXPECT_TRUE(bucket.HasTokens());
  EXPECT_NEAR(bucket.Available(), 50, 1e-9);
}

TEST(TokenBucketTest, RefillCapsAtCapacity) {
  SimulatedClock clock;
  TokenBucket bucket(100, 10, &clock);
  clock.AdvanceMillis(1000000);
  EXPECT_DOUBLE_EQ(bucket.Available(), 100);
}

TEST(TokenBucketTest, MillisUntilAvailable) {
  SimulatedClock clock;
  TokenBucket bucket(100, 10, &clock);
  EXPECT_EQ(bucket.MillisUntilAvailable(), 0);
  bucket.Deduct(200);  // Balance -100; at 0.01/ms needs 10000ms.
  const int64_t wait = bucket.MillisUntilAvailable();
  EXPECT_GE(wait, 10000);
  EXPECT_LE(wait, 10002);
  clock.AdvanceMillis(wait);
  EXPECT_TRUE(bucket.HasTokens());
}

TEST(TenantQuotaManagerTest, UnknownTenantAdmittedUnconditionally) {
  SimulatedClock clock;
  TenantQuotaManager manager(&clock);
  EXPECT_TRUE(manager.AdmitQuery("nobody", 0).ok());
  EXPECT_FALSE(manager.HasTenant("nobody"));
}

TEST(TenantQuotaManagerTest, ExhaustedTenantTimesOut) {
  SimulatedClock clock;
  TenantQuotaManager manager(&clock);
  manager.ConfigureTenant("t", {.burst_tokens = 10, .refill_per_second = 1});
  EXPECT_TRUE(manager.AdmitQuery("t", 100).ok());
  manager.RecordExecution("t", 1000);  // Exhausts the bucket.
  // Clock never advances -> admission must time out (the wait loop sleeps
  // in real time but checks the simulated deadline).
  Status st = manager.AdmitQuery("t", 0);
  EXPECT_TRUE(st.IsTimeout());
}

TEST(TenantQuotaManagerTest, IsolatesTenants) {
  SimulatedClock clock;
  TenantQuotaManager manager(&clock);
  manager.ConfigureTenant("noisy", {.burst_tokens = 10, .refill_per_second = 1});
  manager.ConfigureTenant("quiet", {.burst_tokens = 10, .refill_per_second = 1});
  manager.RecordExecution("noisy", 10000);
  // The noisy tenant's exhaustion does not affect the quiet tenant.
  EXPECT_TRUE(manager.AdmitQuery("quiet", 0).ok());
  EXPECT_TRUE(manager.AdmitQuery("noisy", 0).IsTimeout());
}

TEST(TenantQuotaManagerTest, ReconfigureDuringAdmitTakesEffect) {
  // Regression: AdmitQuery used to spin on a raw TokenBucket* while
  // ConfigureTenant destroyed the bucket under it (use-after-free). Now the
  // waiter keeps a shared_ptr alive and re-resolves each round, so a live
  // reconfigure both stays safe and actually unblocks the waiter.
  SimulatedClock clock;
  MetricsRegistry metrics;
  TenantQuotaManager manager(&clock, &metrics);
  manager.ConfigureTenant("t", {.burst_tokens = 10, .refill_per_second = 0});
  manager.RecordExecution("t", 1000);  // Exhausted; refill rate 0.

  Status admitted = Status::OK();
  std::thread waiter([&] {
    // Simulated deadline far away: only a reconfigure can unblock this.
    admitted = manager.AdmitQuery("t", int64_t{1} << 40);
  });
  // Let the waiter reach the wait loop (real-time sleep; the loop polls
  // every few real milliseconds), then swap in a fresh full bucket.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  manager.ConfigureTenant("t", {.burst_tokens = 10, .refill_per_second = 0});
  waiter.join();
  EXPECT_TRUE(admitted.ok()) << admitted.ToString();
  EXPECT_EQ(metrics.CounterValue("tenant_admitted_total", {{"tenant", "t"}}),
            1u);
}

TEST(TenantQuotaManagerTest, ConcurrentAdmitAndReconfigureIsSafe) {
  // Hammer AdmitQuery/RecordExecution from several threads while the main
  // thread reconfigures the same tenant. Pre-fix this dereferenced freed
  // buckets; run under PINOT_SANITIZE to make the regression loud.
  SimulatedClock clock;
  TenantQuotaManager manager(&clock);
  manager.ConfigureTenant("t", {.burst_tokens = 5, .refill_per_second = 0});

  std::atomic<bool> stop{false};
  std::vector<std::thread> admitters;
  for (int i = 0; i < 4; ++i) {
    admitters.emplace_back([&] {
      while (!stop.load()) {
        // Timeout 0: admit or time out immediately, never park.
        (void)manager.AdmitQuery("t", 0);
        manager.RecordExecution("t", 100);
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    manager.ConfigureTenant("t",
                            {.burst_tokens = 5, .refill_per_second = 0});
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true);
  for (auto& t : admitters) t.join();
  EXPECT_TRUE(manager.HasTenant("t"));
}

}  // namespace
}  // namespace pinot
