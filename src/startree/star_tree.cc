#include "startree/star_tree.h"

#include <algorithm>
#include <cassert>

namespace pinot {

namespace {

// Lexicographic comparison of dimension vectors starting at `level`.
bool DimsLessFrom(const std::vector<uint32_t>& a,
                  const std::vector<uint32_t>& b, int level) {
  const int n = static_cast<int>(a.size());
  for (int i = level; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

bool DimsEqualFrom(const std::vector<uint32_t>& a,
                   const std::vector<uint32_t>& b, int level) {
  const int n = static_cast<int>(a.size());
  for (int i = level; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

int StarTree::DimensionIndex(const std::string& column) const {
  for (size_t i = 0; i < config_.dimensions.size(); ++i) {
    if (config_.dimensions[i] == column) return static_cast<int>(i);
  }
  return -1;
}

int StarTree::MetricIndex(const std::string& column) const {
  for (size_t i = 0; i < config_.metrics.size(); ++i) {
    if (config_.metrics[i] == column) return static_cast<int>(i);
  }
  return -1;
}

StarTree StarTree::Build(StarTreeConfig config,
                         std::vector<InputRecord> records) {
  StarTree tree;
  tree.config_ = std::move(config);
  const int num_metrics = static_cast<int>(tree.config_.metrics.size());

  // Convert inputs into build records, sort by the full dimension order,
  // and merge duplicates so the base level is fully aggregated.
  std::vector<BuildRecord> build;
  build.reserve(records.size());
  for (auto& input : records) {
    BuildRecord record;
    record.dims = std::move(input.dims);
    record.count = 1;
    record.sums = input.metrics;
    record.mins = input.metrics;
    record.maxs = std::move(input.metrics);
    build.push_back(std::move(record));
  }
  std::sort(build.begin(), build.end(),
            [](const BuildRecord& a, const BuildRecord& b) {
              return DimsLessFrom(a.dims, b.dims, 0);
            });
  std::vector<BuildRecord> merged;
  merged.reserve(build.size());
  for (auto& record : build) {
    if (!merged.empty() && DimsEqualFrom(merged.back().dims, record.dims, 0)) {
      BuildRecord& into = merged.back();
      into.count += record.count;
      for (int m = 0; m < num_metrics; ++m) {
        into.sums[m] += record.sums[m];
        into.mins[m] = std::min(into.mins[m], record.mins[m]);
        into.maxs[m] = std::max(into.maxs[m], record.maxs[m]);
      }
    } else {
      merged.push_back(std::move(record));
    }
  }
  tree.num_base_records_ = static_cast<uint32_t>(merged.size());

  tree.BuildNode(&merged, 0, static_cast<uint32_t>(merged.size()),
                 /*level=*/0, kStarValue);
  tree.Freeze(merged);
  return tree;
}

int StarTree::BuildNode(std::vector<BuildRecord>* records, uint32_t start,
                        uint32_t end, int level, uint32_t value) {
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_[node_index];
    node.value = value;
    node.record_start = start;
    node.record_end = end;
  }
  const int num_dims = static_cast<int>(config_.dimensions.size());
  if (level >= num_dims || end - start <= config_.max_leaf_records) {
    return node_index;  // Leaf.
  }
  nodes_[node_index].dim = level;

  // Child value ranges: records in [start, end) are sorted by dims[level..].
  struct Group {
    uint32_t value;
    uint32_t start;
    uint32_t end;
  };
  std::vector<Group> groups;
  {
    uint32_t i = start;
    while (i < end) {
      const uint32_t v = (*records)[i].dims[level];
      uint32_t j = i + 1;
      while (j < end && (*records)[j].dims[level] == v) ++j;
      groups.push_back({v, i, j});
      i = j;
    }
  }

  // Star records: the node's slice aggregated across dims[level].
  uint32_t star_start = 0;
  uint32_t star_end = 0;
  if (groups.size() > 1) {
    const int num_metrics = static_cast<int>(config_.metrics.size());
    std::vector<BuildRecord> star;
    star.reserve(end - start);
    for (uint32_t i = start; i < end; ++i) {
      BuildRecord copy = (*records)[i];
      copy.dims[level] = kStarValue;
      star.push_back(std::move(copy));
    }
    std::sort(star.begin(), star.end(),
              [level](const BuildRecord& a, const BuildRecord& b) {
                return DimsLessFrom(a.dims, b.dims, level + 1);
              });
    std::vector<BuildRecord> star_merged;
    star_merged.reserve(star.size());
    for (auto& record : star) {
      if (!star_merged.empty() &&
          DimsEqualFrom(star_merged.back().dims, record.dims, level + 1)) {
        BuildRecord& into = star_merged.back();
        into.count += record.count;
        for (int m = 0; m < num_metrics; ++m) {
          into.sums[m] += record.sums[m];
          into.mins[m] = std::min(into.mins[m], record.mins[m]);
          into.maxs[m] = std::max(into.maxs[m], record.maxs[m]);
        }
      } else {
        star_merged.push_back(std::move(record));
      }
    }
    star_start = static_cast<uint32_t>(records->size());
    for (auto& record : star_merged) records->push_back(std::move(record));
    star_end = static_cast<uint32_t>(records->size());
  }

  // Recurse. Children are built after star records are appended, so all
  // record ranges are stable (indexes only ever grow).
  for (const Group& group : groups) {
    const int child =
        BuildNode(records, group.start, group.end, level + 1, group.value);
    nodes_[node_index].children.push_back(child);
  }
  if (groups.size() > 1) {
    const int star_child =
        BuildNode(records, star_start, star_end, level + 1, kStarValue);
    nodes_[node_index].star_child = star_child;
  }
  return node_index;
}

void StarTree::Freeze(const std::vector<BuildRecord>& records) {
  const int num_dims = static_cast<int>(config_.dimensions.size());
  const int num_metrics = static_cast<int>(config_.metrics.size());
  const size_t n = records.size();
  dim_values_.assign(num_dims, {});
  for (int d = 0; d < num_dims; ++d) dim_values_[d].reserve(n);
  counts_.reserve(n);
  metric_sums_.assign(num_metrics, {});
  metric_mins_.assign(num_metrics, {});
  metric_maxs_.assign(num_metrics, {});
  for (int m = 0; m < num_metrics; ++m) {
    metric_sums_[m].reserve(n);
    metric_mins_[m].reserve(n);
    metric_maxs_[m].reserve(n);
  }
  for (const auto& record : records) {
    for (int d = 0; d < num_dims; ++d) {
      dim_values_[d].push_back(record.dims[d]);
    }
    counts_.push_back(record.count);
    for (int m = 0; m < num_metrics; ++m) {
      metric_sums_[m].push_back(record.sums[m]);
      metric_mins_[m].push_back(record.mins[m]);
      metric_maxs_[m].push_back(record.maxs[m]);
    }
  }
}

void StarTree::CollectRecordRanges(
    const std::vector<DimensionSpec>& specs,
    std::vector<std::pair<uint32_t, uint32_t>>* ranges) const {
  assert(specs.size() == config_.dimensions.size());
  ranges->clear();
  if (nodes_.empty()) return;
  CollectFromNode(0, 0, specs, ranges);
}

void StarTree::CollectFromNode(
    int node_index, int level, const std::vector<DimensionSpec>& specs,
    std::vector<std::pair<uint32_t, uint32_t>>* ranges) const {
  const Node& node = nodes_[node_index];
  if (node.IsLeaf()) {
    if (node.record_end > node.record_start) {
      ranges->emplace_back(node.record_start, node.record_end);
    }
    return;
  }
  const int dim = node.dim;
  const DimensionSpec& spec = specs[dim];
  if (spec.has_predicate) {
    // Children are sorted by value (records were sorted); intersect with
    // the sorted matching-id list by merging.
    size_t m = 0;
    for (int child_index : node.children) {
      const uint32_t v = nodes_[child_index].value;
      while (m < spec.matching_ids.size() && spec.matching_ids[m] < v) ++m;
      if (m < spec.matching_ids.size() && spec.matching_ids[m] == v) {
        CollectFromNode(child_index, level + 1, specs, ranges);
      }
    }
    return;
  }
  if (spec.group_by) {
    for (int child_index : node.children) {
      CollectFromNode(child_index, level + 1, specs, ranges);
    }
    return;
  }
  if (node.star_child >= 0) {
    CollectFromNode(node.star_child, level + 1, specs, ranges);
  } else {
    for (int child_index : node.children) {
      CollectFromNode(child_index, level + 1, specs, ranges);
    }
  }
}

uint64_t StarTree::SizeInBytes() const {
  uint64_t total = 0;
  for (const auto& dim : dim_values_) total += dim.size() * sizeof(uint32_t);
  total += counts_.size() * sizeof(int64_t);
  for (const auto& m : metric_sums_) total += m.size() * sizeof(double) * 3;
  for (const auto& node : nodes_) {
    total += sizeof(Node) + node.children.size() * sizeof(int);
  }
  return total;
}

void StarTree::Serialize(ByteWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(config_.dimensions.size()));
  for (const auto& d : config_.dimensions) writer->WriteString(d);
  writer->WriteU32(static_cast<uint32_t>(config_.metrics.size()));
  for (const auto& m : config_.metrics) writer->WriteString(m);
  writer->WriteU32(config_.max_leaf_records);
  writer->WriteU32(num_base_records_);

  const uint32_t num_records = static_cast<uint32_t>(counts_.size());
  writer->WriteU32(num_records);
  for (const auto& dim : dim_values_) {
    writer->WriteRaw(dim.data(), dim.size() * sizeof(uint32_t));
  }
  writer->WriteRaw(counts_.data(), counts_.size() * sizeof(int64_t));
  for (size_t m = 0; m < metric_sums_.size(); ++m) {
    writer->WriteRaw(metric_sums_[m].data(),
                     metric_sums_[m].size() * sizeof(double));
    writer->WriteRaw(metric_mins_[m].data(),
                     metric_mins_[m].size() * sizeof(double));
    writer->WriteRaw(metric_maxs_[m].data(),
                     metric_maxs_[m].size() * sizeof(double));
  }

  writer->WriteU32(static_cast<uint32_t>(nodes_.size()));
  for (const auto& node : nodes_) {
    writer->WriteI32(node.dim);
    writer->WriteU32(node.value);
    writer->WriteU32(node.record_start);
    writer->WriteU32(node.record_end);
    writer->WriteI32(node.star_child);
    writer->WriteU32(static_cast<uint32_t>(node.children.size()));
    for (int child : node.children) writer->WriteI32(child);
  }
}

Result<StarTree> StarTree::Deserialize(ByteReader* reader) {
  StarTree tree;
  PINOT_ASSIGN_OR_RETURN(uint32_t num_dims, reader->ReadU32());
  tree.config_.dimensions.resize(num_dims);
  for (uint32_t i = 0; i < num_dims; ++i) {
    PINOT_ASSIGN_OR_RETURN(tree.config_.dimensions[i], reader->ReadString());
  }
  PINOT_ASSIGN_OR_RETURN(uint32_t num_metrics, reader->ReadU32());
  tree.config_.metrics.resize(num_metrics);
  for (uint32_t i = 0; i < num_metrics; ++i) {
    PINOT_ASSIGN_OR_RETURN(tree.config_.metrics[i], reader->ReadString());
  }
  PINOT_ASSIGN_OR_RETURN(tree.config_.max_leaf_records, reader->ReadU32());
  PINOT_ASSIGN_OR_RETURN(tree.num_base_records_, reader->ReadU32());

  PINOT_ASSIGN_OR_RETURN(uint32_t num_records, reader->ReadU32());
  tree.dim_values_.assign(num_dims, {});
  for (uint32_t d = 0; d < num_dims; ++d) {
    tree.dim_values_[d].resize(num_records);
    PINOT_RETURN_NOT_OK(reader->ReadRaw(tree.dim_values_[d].data(),
                                        num_records * sizeof(uint32_t)));
  }
  tree.counts_.resize(num_records);
  PINOT_RETURN_NOT_OK(
      reader->ReadRaw(tree.counts_.data(), num_records * sizeof(int64_t)));
  tree.metric_sums_.assign(num_metrics, {});
  tree.metric_mins_.assign(num_metrics, {});
  tree.metric_maxs_.assign(num_metrics, {});
  for (uint32_t m = 0; m < num_metrics; ++m) {
    tree.metric_sums_[m].resize(num_records);
    tree.metric_mins_[m].resize(num_records);
    tree.metric_maxs_[m].resize(num_records);
    PINOT_RETURN_NOT_OK(reader->ReadRaw(tree.metric_sums_[m].data(),
                                        num_records * sizeof(double)));
    PINOT_RETURN_NOT_OK(reader->ReadRaw(tree.metric_mins_[m].data(),
                                        num_records * sizeof(double)));
    PINOT_RETURN_NOT_OK(reader->ReadRaw(tree.metric_maxs_[m].data(),
                                        num_records * sizeof(double)));
  }

  PINOT_ASSIGN_OR_RETURN(uint32_t num_nodes, reader->ReadU32());
  tree.nodes_.resize(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    Node& node = tree.nodes_[i];
    PINOT_ASSIGN_OR_RETURN(node.dim, reader->ReadI32());
    PINOT_ASSIGN_OR_RETURN(node.value, reader->ReadU32());
    PINOT_ASSIGN_OR_RETURN(node.record_start, reader->ReadU32());
    PINOT_ASSIGN_OR_RETURN(node.record_end, reader->ReadU32());
    PINOT_ASSIGN_OR_RETURN(node.star_child, reader->ReadI32());
    PINOT_ASSIGN_OR_RETURN(uint32_t num_children, reader->ReadU32());
    node.children.resize(num_children);
    for (uint32_t c = 0; c < num_children; ++c) {
      PINOT_ASSIGN_OR_RETURN(node.children[c], reader->ReadI32());
    }
  }
  return tree;
}

}  // namespace pinot
