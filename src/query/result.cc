#include "query/result.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace pinot {

std::string EncodeGroupKey(const std::vector<Value>& keys) {
  std::string out;
  for (const auto& key : keys) {
    const std::string rendered = ValueToString(key);
    const uint32_t size = static_cast<uint32_t>(rendered.size());
    char prefix[sizeof(size)];
    std::memcpy(prefix, &size, sizeof(size));
    out.append(prefix, sizeof(size));
    out += rendered;
  }
  return out;
}

void PartialResult::Merge(PartialResult&& other) {
  if (!other.status.ok() && status.ok()) status = other.status;
  stats.Merge(other.stats);
  total_docs += other.total_docs;

  if (aggregates.empty()) {
    aggregates = std::move(other.aggregates);
  } else if (!other.aggregates.empty()) {
    if (aggregates.size() != other.aggregates.size()) {
      // A peer running an older table config can disagree on the aggregate
      // count; merging would index past the end. Keep our side and flag
      // the result partial.
      if (status.ok()) {
        status = Status::FailedPrecondition(
            "aggregate count mismatch across partial results (" +
            std::to_string(aggregates.size()) + " vs " +
            std::to_string(other.aggregates.size()) + ")");
      }
    } else {
      for (size_t i = 0; i < aggregates.size(); ++i) {
        aggregates[i].Merge(std::move(other.aggregates[i]));
      }
    }
  }

  for (auto& [key, entry] : other.groups) {
    auto it = groups.find(key);
    if (it == groups.end()) {
      groups.emplace(key, std::move(entry));
    } else if (it->second.states.size() != entry.states.size()) {
      if (status.ok()) {
        status = Status::FailedPrecondition(
            "group state count mismatch across partial results (" +
            std::to_string(it->second.states.size()) + " vs " +
            std::to_string(entry.states.size()) + ")");
      }
    } else {
      for (size_t i = 0; i < it->second.states.size(); ++i) {
        it->second.states[i].Merge(std::move(entry.states[i]));
      }
    }
  }

  for (auto& row : other.selection_rows) {
    selection_rows.push_back(std::move(row));
  }

  for (auto& span : other.spans) {
    spans.push_back(std::move(span));
  }
}

namespace {

// Comparator for selection ORDER BY: compares two rows on the given
// (column index, descending) list.
struct RowComparator {
  const std::vector<std::pair<int, bool>>* order;

  static int CompareValues(const Value& a, const Value& b) {
    const auto* sa = std::get_if<std::string>(&a);
    const auto* sb = std::get_if<std::string>(&b);
    if (sa != nullptr && sb != nullptr) return sa->compare(*sb);
    const double da = ValueToDouble(a);
    const double db = ValueToDouble(b);
    return da < db ? -1 : (da > db ? 1 : 0);
  }

  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (const auto& [index, desc] : *order) {
      const int c = CompareValues(a[index], b[index]);
      if (c != 0) return desc ? c > 0 : c < 0;
    }
    return false;
  }
};

}  // namespace

QueryResult ReduceToFinalResult(const Query& query, PartialResult&& partial) {
  QueryResult result;
  result.stats = partial.stats;
  result.total_docs = partial.total_docs;
  if (!partial.status.ok()) {
    result.partial = true;
    result.error_message = partial.status.ToString();
  }

  if (query.IsAggregation()) {
    for (const auto& spec : query.aggregations) {
      result.aggregation_names.push_back(spec.ToString());
    }
    if (!query.HasGroupBy()) {
      if (partial.aggregates.empty()) {
        // No data (e.g. an empty table): render zero-valued aggregates.
        partial.aggregates.resize(query.aggregations.size());
      } else if (partial.aggregates.size() != query.aggregations.size()) {
        if (!result.partial) {
          result.partial = true;
          result.error_message = "aggregate count mismatch in merged result";
        }
        partial.aggregates.resize(query.aggregations.size());
      }
      for (size_t i = 0; i < query.aggregations.size(); ++i) {
        result.aggregates.push_back(
            FinalizeAgg(query.aggregations[i].type, partial.aggregates[i]));
      }
    } else {
      result.group_by_columns = query.group_by;
      // Order groups descending by the first aggregation and keep TOP n.
      // Entries whose state count disagrees with the query (mismatched
      // peers) cannot be finalized; skip them rather than index past the
      // end.
      std::vector<PartialResult::GroupEntry*> entries;
      entries.reserve(partial.groups.size());
      for (auto& [key, entry] : partial.groups) {
        if (entry.states.size() != query.aggregations.size()) {
          if (!result.partial) {
            result.partial = true;
            result.error_message = "group state count mismatch in merged result";
          }
          continue;
        }
        entries.push_back(&entry);
      }
      const AggregationType first_type = query.aggregations[0].type;
      std::sort(entries.begin(), entries.end(),
                [first_type](const PartialResult::GroupEntry* a,
                             const PartialResult::GroupEntry* b) {
                  return AggSortValue(first_type, a->states[0]) >
                         AggSortValue(first_type, b->states[0]);
                });
      const size_t n = std::min<size_t>(entries.size(),
                                        static_cast<size_t>(query.top_n));
      result.group_rows.reserve(n);
      for (size_t g = 0; g < n; ++g) {
        QueryResult::GroupRow row;
        row.keys = std::move(entries[g]->keys);
        for (size_t i = 0; i < query.aggregations.size(); ++i) {
          row.values.push_back(FinalizeAgg(query.aggregations[i].type,
                                           entries[g]->states[i]));
        }
        result.group_rows.push_back(std::move(row));
      }
    }
  } else {
    result.selection_columns = query.selection_columns;
    auto& rows = partial.selection_rows;
    if (!query.order_by.empty()) {
      // Map order-by columns to selection indexes. An unresolvable column
      // is a query error: trimming unsorted rows to `limit` would silently
      // return arbitrary rows as if they were the top-k.
      std::vector<std::pair<int, bool>> order;
      for (const auto& [column, desc] : query.order_by) {
        int index = -1;
        for (size_t i = 0; i < query.selection_columns.size(); ++i) {
          if (query.selection_columns[i] == column) {
            index = static_cast<int>(i);
            break;
          }
        }
        if (index < 0) {
          result.partial = true;
          if (!result.error_message.empty()) result.error_message += "; ";
          result.error_message +=
              "ORDER BY column not in selection list: " + column;
          return result;
        }
        order.emplace_back(index, desc);
      }
      RowComparator cmp{&order};
      const size_t keep =
          std::min<size_t>(rows.size(), static_cast<size_t>(query.limit));
      std::partial_sort(rows.begin(), rows.begin() + keep, rows.end(), cmp);
    }
    if (rows.size() > static_cast<size_t>(query.limit)) {
      rows.resize(query.limit);
    }
    result.selection_rows = std::move(rows);
  }
  return result;
}

std::string QueryTrace::ToString() const {
  std::ostringstream os;
  os << "trace: " << events.size() << " scatter calls, " << retries
     << " retries, " << timeouts << " timeouts, " << hedges << " hedges ("
     << hedge_wins << " won)\n";
  for (const auto& event : events) {
    os << "  [" << event.attempt << "] " << event.physical_table << " -> "
       << event.server;
    if (event.hedge) os << (event.hedge_won ? " [hedge, won]" : " [hedge]");
    os << " (" << event.segments.size() << " segments:";
    for (size_t i = 0; i < event.segments.size(); ++i) {
      os << " " << event.segments[i];
      if (i < event.pick_reasons.size() &&
          event.pick_reasons[i] != "routing-table") {
        os << "<" << event.pick_reasons[i] << ">";
      }
    }
    os << ") " << event.outcome << " " << event.latency_millis << "ms\n";
  }
  return os.str();
}

std::string QueryResult::ToString() const {
  std::ostringstream os;
  if (throttled) {
    os << "[THROTTLED: " << error_message << " (retry after "
       << retry_after_millis << "ms)]\n";
  } else if (partial) {
    os << "[PARTIAL: " << error_message << "]\n";
  }
  if (!aggregates.empty()) {
    for (size_t i = 0; i < aggregates.size(); ++i) {
      os << aggregation_names[i] << " = " << ValueToString(aggregates[i])
         << "\n";
    }
  }
  if (!group_rows.empty()) {
    for (const auto& column : group_by_columns) os << column << "\t";
    for (const auto& name : aggregation_names) os << name << "\t";
    os << "\n";
    for (const auto& row : group_rows) {
      for (const auto& key : row.keys) os << ValueToString(key) << "\t";
      for (const auto& value : row.values) os << ValueToString(value) << "\t";
      os << "\n";
    }
  }
  if (!selection_rows.empty()) {
    for (const auto& column : selection_columns) os << column << "\t";
    os << "\n";
    for (const auto& row : selection_rows) {
      for (const auto& value : row) os << ValueToString(value) << "\t";
      os << "\n";
    }
  }
  os << "(docs scanned: " << stats.docs_scanned
     << ", matched: " << stats.docs_matched
     << ", total: " << total_docs
     << ", segments queried: " << stats.segments_queried
     << ", pruned: " << stats.segments_pruned;
  if (stats.used_star_tree) {
    os << ", star-tree records: " << stats.star_tree_records_scanned;
  }
  os << ")";
  if (span.has_value()) {
    os << "\n--- " << (explain_only ? "plan" : "trace") << " ---\n"
       << span->ToString();
  }
  return os.str();
}

}  // namespace pinot
