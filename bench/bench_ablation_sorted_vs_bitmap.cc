// Ablation (section 4.2): filter evaluation cost of the three physical
// filter operators — sorted-range, inverted bitmap, and scan — on the same
// column at varying selectivity. Backs the paper's claims that (a) the
// sorted range beats bitmap operations, and (b) for range predicates,
// iterator-style scans can beat "bitmap operations on large bitmap
// indexes". Uses google-benchmark.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "query/filter_evaluator.h"

namespace pinot {
namespace {

constexpr uint32_t kRows = 500000;

std::shared_ptr<ImmutableSegment> BuildKeyedSegment(bool sorted,
                                                    bool inverted) {
  WorkloadOptions wo;
  wo.num_rows = kRows;
  wo.num_queries = 1;
  Workload workload = MakeWvmpWorkload(wo);
  SegmentBuildConfig config;
  config.table_name = "wvmp";
  config.segment_name = "abl";
  if (sorted) config.sort_columns = {"vieweeId"};
  if (inverted) config.inverted_index_columns = {"vieweeId"};
  SegmentBuilder builder(workload.schema, config);
  for (const auto& row : workload.rows) {
    if (!builder.AddRow(row).ok()) std::abort();
  }
  auto segment = builder.Build();
  if (!segment.ok()) std::abort();
  return *segment;
}

// `state.range(0)`: width of the key range predicate (1 = point lookup).
void RunFilter(benchmark::State& state,
               const std::shared_ptr<ImmutableSegment>& segment) {
  const int width = static_cast<int>(state.range(0));
  Predicate pred;
  pred.column = "vieweeId";
  pred.op = PredicateOp::kRange;
  pred.lower = int64_t{10};
  pred.upper = int64_t{10 + width - 1};
  std::optional<FilterNode> filter;
  filter.emplace(FilterNode::Leaf(pred));
  uint64_t matched = 0;
  for (auto _ : state) {
    FilterEvaluator evaluator(*segment, nullptr);
    auto docs = evaluator.Evaluate(filter);
    if (!docs.ok()) std::abort();
    matched = docs->Cardinality();
    benchmark::DoNotOptimize(matched);
  }
  state.counters["matched_docs"] = static_cast<double>(matched);
}

void BM_SortedRange(benchmark::State& state) {
  static auto segment = BuildKeyedSegment(/*sorted=*/true, /*inverted=*/false);
  RunFilter(state, segment);
}

void BM_InvertedBitmap(benchmark::State& state) {
  static auto segment = BuildKeyedSegment(/*sorted=*/false, /*inverted=*/true);
  RunFilter(state, segment);
}

void BM_Scan(benchmark::State& state) {
  static auto segment =
      BuildKeyedSegment(/*sorted=*/false, /*inverted=*/false);
  RunFilter(state, segment);
}

BENCHMARK(BM_SortedRange)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_InvertedBitmap)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_Scan)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace pinot

BENCHMARK_MAIN();
