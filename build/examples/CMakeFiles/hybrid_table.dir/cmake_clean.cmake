file(REMOVE_RECURSE
  "CMakeFiles/hybrid_table.dir/hybrid_table.cpp.o"
  "CMakeFiles/hybrid_table.dir/hybrid_table.cpp.o.d"
  "hybrid_table"
  "hybrid_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
