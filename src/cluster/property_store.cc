#include "cluster/property_store.h"

namespace pinot {

void PropertyStore::Set(const std::string& path, std::string value) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = entries_[path];
    entry.value = std::move(value);
    ++entry.version;
  }
  NotifyWatchers(path);
}

Result<std::string> PropertyStore::Get(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(path);
  if (it == entries_.end()) return Status::NotFound("no such path: " + path);
  return it->second.value;
}

Result<std::pair<std::string, int64_t>> PropertyStore::GetWithVersion(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(path);
  if (it == entries_.end()) return Status::NotFound("no such path: " + path);
  return std::make_pair(it->second.value, it->second.version);
}

Status PropertyStore::CompareAndSet(const std::string& path,
                                    int64_t expected_version,
                                    std::string value) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(path);
    const int64_t current = it == entries_.end() ? -1 : it->second.version;
    if (current != expected_version) {
      return Status::FailedPrecondition("version mismatch on " + path);
    }
    Entry& entry = entries_[path];
    entry.value = std::move(value);
    ++entry.version;
  }
  NotifyWatchers(path);
  return Status::OK();
}

Status PropertyStore::Delete(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.erase(path) == 0) {
      return Status::NotFound("no such path: " + path);
    }
  }
  NotifyWatchers(path);
  return Status::OK();
}

bool PropertyStore::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(path) > 0;
}

std::vector<std::string> PropertyStore::ListPrefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

int PropertyStore::RegisterWatch(const std::string& prefix, Watcher watcher) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int handle = next_watch_handle_++;
  watches_.push_back({handle, prefix, std::move(watcher)});
  return handle;
}

void PropertyStore::UnregisterWatch(int handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = watches_.begin(); it != watches_.end(); ++it) {
    if (it->handle == handle) {
      watches_.erase(it);
      return;
    }
  }
}

void PropertyStore::NotifyWatchers(const std::string& path) {
  std::vector<Watcher> to_notify;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& watch : watches_) {
      if (path.compare(0, watch.prefix.size(), watch.prefix) == 0) {
        to_notify.push_back(watch.watcher);
      }
    }
  }
  for (const auto& watcher : to_notify) watcher(path);
}

}  // namespace pinot
