// Ablation (section 4.2): filter evaluation cost of the three physical
// filter operators — sorted-range, inverted bitmap, and scan — on the same
// column at varying range-predicate width, plus the cost-based planner's
// pick. Backs the paper's claims that (a) the sorted range beats bitmap
// operations, and (b) for range predicates, iterator-style scans can beat
// "bitmap operations on large bitmap indexes"; the cost-based row shows the
// planner staying near the best operator across the sweep.
//
// Emits a scripts/check_perf.sh dump via --json=FILE: config is the
// operator path, offered_qps carries the predicate width, and the latency
// percentiles come from repeated single-threaded evaluations.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "query/filter_evaluator.h"
#include "trace/trace.h"

namespace pinot {
namespace bench {
namespace {

std::shared_ptr<ImmutableSegment> BuildKeyedSegment(const Workload& workload,
                                                    bool sorted,
                                                    bool inverted) {
  SegmentBuildConfig config;
  config.table_name = "wvmp";
  config.segment_name = "abl";
  if (sorted) config.sort_columns = {"vieweeId"};
  if (inverted) config.inverted_index_columns = {"vieweeId"};
  SegmentBuilder builder(workload.schema, config);
  for (const auto& row : workload.rows) {
    if (!builder.AddRow(row).ok()) std::abort();
  }
  auto segment = builder.Build();
  if (!segment.ok()) std::abort();
  return *segment;
}

std::optional<FilterNode> WidthFilter(int width) {
  Predicate pred;
  pred.column = "vieweeId";
  pred.op = PredicateOp::kRange;
  pred.lower = int64_t{10};
  pred.upper = int64_t{10 + width - 1};
  return FilterNode::Leaf(pred);
}

struct PathResult {
  uint64_t matched = 0;
  std::string plan;  // Operator the evaluator actually chose.
  QpsPoint point;
};

PathResult RunPath(const SegmentInterface& segment,
                   FilterEvaluator::PlannerMode mode, int width, int iters) {
  const std::optional<FilterNode> filter = WidthFilter(width);
  PathResult result;
  std::vector<double> latencies;
  latencies.reserve(iters);
  for (int it = 0; it < iters; ++it) {
    const auto start = std::chrono::steady_clock::now();
    FilterEvaluator evaluator(segment, nullptr);
    evaluator.set_planner_mode(mode);
    auto docs = evaluator.Evaluate(filter);
    if (!docs.ok()) std::abort();
    result.matched = docs->Cardinality();
    latencies.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count());
  }
  // One traced evaluation (outside the timed loop) to record the operator
  // the planner picked.
  TraceSpan span = TraceSpan::Open("filter");
  FilterEvaluator traced(segment, nullptr);
  traced.set_planner_mode(mode);
  traced.set_trace_span(&span);
  if (!traced.Evaluate(filter).ok()) std::abort();
  result.plan = span.LabelValue("op:vieweeId");
  span.Close();

  std::sort(latencies.begin(), latencies.end());
  double sum = 0;
  for (double v : latencies) sum += v;
  result.point.offered_qps = width;
  result.point.queries = latencies.size();
  result.point.avg_ms = latencies.empty() ? 0 : sum / latencies.size();
  result.point.p50_ms = Percentile(latencies, 0.50);
  result.point.p95_ms = Percentile(latencies, 0.95);
  result.point.p99_ms = Percentile(latencies, 0.99);
  result.point.achieved_qps =
      result.point.avg_ms > 0 ? 1000.0 / result.point.avg_ms : 0;
  return result;
}

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  // Default to the 500k-doc acceptance configuration; --rows overrides.
  const uint32_t rows = options.rows == 150000 ? 500000 : options.rows;
  const int iters = 30;

  WorkloadOptions wo;
  wo.num_rows = rows;
  wo.num_queries = 1;
  wo.seed = options.seed;
  Workload workload = MakeWvmpWorkload(wo);
  auto sorted = BuildKeyedSegment(workload, /*sorted=*/true,
                                  /*inverted=*/false);
  auto inverted = BuildKeyedSegment(workload, /*sorted=*/false,
                                    /*inverted=*/true);
  auto plain = BuildKeyedSegment(workload, /*sorted=*/false,
                                 /*inverted=*/false);

  struct Path {
    const char* name;  // Space-free JSON config key (check_perf.sh awk).
    const SegmentInterface* segment;
    FilterEvaluator::PlannerMode mode;
  };
  const std::vector<Path> paths = {
      {"sorted-range", sorted.get(), FilterEvaluator::PlannerMode::kCostBased},
      {"inverted-bitmap", inverted.get(),
       FilterEvaluator::PlannerMode::kPreferIndex},
      {"scan", plain.get(), FilterEvaluator::PlannerMode::kForceScan},
      {"cost-based", inverted.get(),
       FilterEvaluator::PlannerMode::kCostBased},
  };

  std::printf("# bench_ablation_sorted_vs_bitmap — vieweeId range filter on "
              "a %u-doc segment (%d evals per cell)\n",
              rows, iters);
  std::printf("%-8s %-18s %12s %12s %10s %-14s\n", "width", "path", "avg_ms",
              "p99_ms", "matched", "plan");

  BenchJsonWriter json("filter_ablation", options.json_path);
  bool planner_within_2x = true;
  for (int width : {1, 16, 256, 4096}) {
    uint64_t matched = 0;
    bool first = true;
    double best_avg = 0, cost_based_avg = 0;
    for (const auto& path : paths) {
      PathResult r = RunPath(*path.segment, path.mode, width, iters);
      // All operator paths must agree on the result.
      if (first) {
        matched = r.matched;
        first = false;
      } else if (r.matched != matched) {
        std::fprintf(stderr,
                     "MISMATCH width %d path %s: %llu docs, expected %llu\n",
                     width, path.name,
                     static_cast<unsigned long long>(r.matched),
                     static_cast<unsigned long long>(matched));
        std::abort();
      }
      if (std::string(path.name) == "cost-based") {
        cost_based_avg = r.point.avg_ms;
      } else if (path.segment != sorted.get() &&
                 (best_avg == 0 || r.point.avg_ms < best_avg)) {
        // "Best" spans the operators the planner can actually choose on
        // its segment (bitmap, scan); sorted-range lives on a different
        // physical layout.
        best_avg = r.point.avg_ms;
      }
      std::printf("%-8d %-18s %12.4f %12.4f %10llu %-14s\n", width, path.name,
                  r.point.avg_ms, r.point.p99_ms,
                  static_cast<unsigned long long>(r.matched), r.plan.c_str());
      std::fflush(stdout);
      json.Add(path.name, r.point);
    }
    if (cost_based_avg > 2.0 * best_avg) {
      planner_within_2x = false;
      std::printf("# width %d: cost-based %.4fms > 2x best %.4fms\n", width,
                  cost_based_avg, best_avg);
    }
  }
  std::printf("# cost-based within 2x of best operator at every width: %s\n",
              planner_within_2x ? "yes" : "no");
  return json.Write() ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace pinot

int main(int argc, char** argv) { return pinot::bench::Main(argc, argv); }
