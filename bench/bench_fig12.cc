// Figure 12: distribution of query latency when running queries
// sequentially on the anomaly-detection dataset (the paper shows a kernel
// density estimate; we print per-config percentiles plus a log-bucketed
// histogram of the same distribution).

#include <cmath>

#include "baseline/druid_like.h"
#include "bench/bench_util.h"

namespace pinot {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  // The paper executes 10000 queries sequentially.
  options.num_queries = std::min(options.num_queries * 5, 10000);
  Workload workload = MakeAnomalyWorkload(options.workload_options());
  std::vector<Query> queries = ParseQueries(workload);

  struct Engine {
    std::string name;
    std::vector<std::shared_ptr<SegmentInterface>> segments;
  };
  std::vector<Engine> engines;
  engines.push_back({"druid-like",
                     BuildSegments(workload, DruidLikeBuildConfig(workload.schema),
                                   options.num_segments, "druid")});
  engines.push_back({"pinot-no-index",
                     BuildSegments(workload, SegmentBuildConfig{},
                                   options.num_segments, "noidx")});
  SegmentBuildConfig inverted_only = workload.pinot_config;
  inverted_only.star_tree = StarTreeConfig{};
  engines.push_back({"pinot-inverted",
                     BuildSegments(workload, inverted_only,
                                   options.num_segments, "inv")});
  engines.push_back({"pinot-star-tree",
                     BuildSegments(workload, workload.pinot_config,
                                   options.num_segments, "star")});

  std::printf(
      "# Figure 12 — latency distribution, %zu sequential queries per "
      "config\n",
      queries.size());
  std::printf("%-18s %9s %9s %9s %9s %9s %9s\n", "config", "avg_ms", "p10_ms",
              "p50_ms", "p90_ms", "p99_ms", "max_ms");

  // Log-spaced histogram buckets (ms).
  const std::vector<double> edges = {0.05, 0.1, 0.2, 0.5, 1, 2,
                                     5,    10,  20,  50,  100};
  std::vector<std::pair<std::string, std::vector<int>>> histograms;

  for (const auto& engine : engines) {
    std::vector<double> latencies;
    latencies.reserve(queries.size());
    for (const auto& query : queries) {
      const auto start = std::chrono::steady_clock::now();
      PartialResult partial = ExecuteQueryOnSegments(engine.segments, query);
      (void)partial;
      latencies.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
    }
    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0;
    for (double v : sorted) sum += v;
    std::printf("%-18s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                engine.name.c_str(), sum / sorted.size(),
                Percentile(sorted, 0.10), Percentile(sorted, 0.50),
                Percentile(sorted, 0.90), Percentile(sorted, 0.99),
                sorted.back());

    std::vector<int> buckets(edges.size() + 1, 0);
    for (double v : latencies) {
      size_t b = 0;
      while (b < edges.size() && v >= edges[b]) ++b;
      ++buckets[b];
    }
    histograms.emplace_back(engine.name, std::move(buckets));
  }

  std::printf("\n# latency histogram (queries per bucket)\n%-18s", "bucket_ms");
  for (const auto& [name, buckets] : histograms) {
    std::printf(" %16s", name.c_str());
  }
  std::printf("\n");
  for (size_t b = 0; b <= edges.size(); ++b) {
    if (b == 0) {
      std::printf("%-18s", ("<" + std::to_string(edges[0])).c_str());
    } else if (b == edges.size()) {
      std::printf("%-18s", (">=" + std::to_string(edges.back())).c_str());
    } else {
      char label[32];
      std::snprintf(label, sizeof(label), "[%g, %g)", edges[b - 1], edges[b]);
      std::printf("%-18s", label);
    }
    for (const auto& [name, buckets] : histograms) {
      std::printf(" %16d", buckets[b]);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pinot

int main(int argc, char** argv) { return pinot::bench::Main(argc, argv); }
