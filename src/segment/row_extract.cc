#include "segment/row_extract.h"

namespace pinot {

Row ExtractRow(const SegmentInterface& segment, uint32_t doc) {
  Row row;
  std::vector<uint32_t> ids;
  for (const auto& field : segment.schema().fields()) {
    const ColumnReader* column = segment.GetColumn(field.name);
    if (column == nullptr) continue;
    const Dictionary& dict = column->dictionary();
    if (field.single_value) {
      row.Set(field.name,
              dict.ValueAt(static_cast<int>(column->GetDictId(doc))));
      continue;
    }
    column->GetDictIds(doc, &ids);
    switch (dict.storage()) {
      case Dictionary::Storage::kInt64: {
        std::vector<int64_t> values;
        values.reserve(ids.size());
        for (uint32_t id : ids) values.push_back(dict.Int64At(id));
        row.Set(field.name, std::move(values));
        break;
      }
      case Dictionary::Storage::kDouble: {
        std::vector<double> values;
        values.reserve(ids.size());
        for (uint32_t id : ids) values.push_back(dict.DoubleAt(id));
        row.Set(field.name, std::move(values));
        break;
      }
      case Dictionary::Storage::kString: {
        std::vector<std::string> values;
        values.reserve(ids.size());
        for (uint32_t id : ids) values.push_back(dict.StringAt(id));
        row.Set(field.name, std::move(values));
        break;
      }
    }
  }
  return row;
}

}  // namespace pinot
