// Randomized equivalence testing of the query engine. For each seed we
// generate a random dataset and a few hundred random queries, then check
// invariants that must hold regardless of physical layout:
//
//   1. Splitting data across many segments returns the same results as one
//      big segment (the distributed combine/reduce is lossless).
//   2. Every index configuration (none / inverted / sorted / star-tree)
//      returns the same results (indexes are pure optimizations).
//   3. Executing through serialized-and-reloaded segments returns the same
//      results (the on-disk format is lossless).

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "query/parser.h"
#include "query/result.h"
#include "query/table_executor.h"
#include "segment/segment_builder.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

Schema FuzzSchema() {
  return *Schema::Make({
      FieldSpec::Dimension("d_str", DataType::kString),
      FieldSpec::Dimension("d_int", DataType::kLong),
      FieldSpec::Dimension("d_small", DataType::kString),
      FieldSpec::Dimension("d_multi", DataType::kString, false),
      FieldSpec::Metric("m_long", DataType::kLong),
      FieldSpec::Metric("m_double", DataType::kDouble),
      FieldSpec::Time("t", DataType::kLong),
  });
}

std::vector<Row> MakeRows(Random& rng, int n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    Row row;
    row.SetString("d_str", "v" + std::to_string(rng.NextUint64(40)));
    row.SetLong("d_int", static_cast<int64_t>(rng.NextUint64(100)));
    row.SetString("d_small", "s" + std::to_string(rng.NextUint64(5)));
    std::vector<std::string> multi;
    const int entries = static_cast<int>(rng.NextUint64(4));  // 0..3.
    for (int e = 0; e < entries; ++e) {
      multi.push_back("tag" + std::to_string(rng.NextUint64(12)));
    }
    row.SetStringArray("d_multi", std::move(multi));
    row.SetLong("m_long", static_cast<int64_t>(rng.NextUint64(1000)));
    row.SetDouble("m_double", rng.NextDouble() * 100 - 50);
    row.SetLong("t", 500 + static_cast<int64_t>(rng.NextUint64(30)));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string RandomLiteral(Random& rng, const std::string& column) {
  if (column == "d_str") return "'v" + std::to_string(rng.NextUint64(45)) + "'";
  if (column == "d_int") return std::to_string(rng.NextUint64(110));
  if (column == "d_small") return "'s" + std::to_string(rng.NextUint64(6)) + "'";
  if (column == "d_multi") {
    return "'tag" + std::to_string(rng.NextUint64(14)) + "'";
  }
  if (column == "t") return std::to_string(495 + rng.NextUint64(40));
  return std::to_string(rng.NextUint64(1000));
}

std::string RandomPredicate(Random& rng) {
  static const char* kColumns[] = {"d_str", "d_int", "d_small", "d_multi",
                                   "t"};
  const std::string column = kColumns[rng.NextUint64(5)];
  switch (rng.NextUint64(6)) {
    case 0:
      return column + " = " + RandomLiteral(rng, column);
    case 1:
      return column + " != " + RandomLiteral(rng, column);
    case 2:
      return column + " IN (" + RandomLiteral(rng, column) + ", " +
             RandomLiteral(rng, column) + ", " + RandomLiteral(rng, column) +
             ")";
    case 3:
      return column + " NOT IN (" + RandomLiteral(rng, column) + ", " +
             RandomLiteral(rng, column) + ")";
    case 4: {
      // Ranges only on numeric columns to keep semantics obvious.
      if (column == "d_str" || column == "d_small" || column == "d_multi") {
        return column + " = " + RandomLiteral(rng, column);
      }
      const std::string a = RandomLiteral(rng, column);
      const std::string b = RandomLiteral(rng, column);
      return column + " BETWEEN " + (a < b ? a : b) + " AND " +
             (a < b ? b : a);
    }
    default: {
      static const char* kOps[] = {">", ">=", "<", "<="};
      const std::string numeric = rng.NextBool() ? "d_int" : "t";
      return numeric + " " + kOps[rng.NextUint64(4)] + " " +
             RandomLiteral(rng, numeric);
    }
  }
}

std::string RandomQuery(Random& rng) {
  static const char* kAggs[] = {
      "count(*)",         "sum(m_long)",           "min(m_double)",
      "max(m_long)",      "avg(m_double)",         "distinctcount(d_int)",
      "sum(m_double)",    "distinctcount(d_str)",
  };
  std::string pql = "SELECT ";
  const int num_aggs = 1 + static_cast<int>(rng.NextUint64(3));
  for (int i = 0; i < num_aggs; ++i) {
    if (i > 0) pql += ", ";
    pql += kAggs[rng.NextUint64(8)];
  }
  pql += " FROM fuzz";
  const int num_preds = static_cast<int>(rng.NextUint64(4));  // 0..3.
  for (int i = 0; i < num_preds; ++i) {
    pql += i == 0 ? " WHERE " : (rng.NextBool(0.7) ? " AND " : " OR ");
    pql += RandomPredicate(rng);
  }
  if (rng.NextBool(0.4)) {
    static const char* kGroups[] = {"d_str", "d_small", "d_int", "d_multi"};
    pql += std::string(" GROUP BY ") + kGroups[rng.NextUint64(4)] +
           " TOP 1000";
  }
  return pql;
}

using Segments = std::vector<std::shared_ptr<SegmentInterface>>;

Segments BuildSplit(const Schema& schema, const std::vector<Row>& rows,
                    int num_segments, SegmentBuildConfig config) {
  Segments segments;
  const size_t per = (rows.size() + num_segments - 1) / num_segments;
  size_t next = 0;
  for (int s = 0; s < num_segments && next < rows.size(); ++s) {
    SegmentBuildConfig segment_config = config;
    segment_config.table_name = "fuzz";
    segment_config.segment_name = "fuzz_" + std::to_string(s);
    SegmentBuilder builder(schema, segment_config);
    for (size_t i = 0; i < per && next < rows.size(); ++i, ++next) {
      EXPECT_TRUE(builder.AddRow(rows[next]).ok());
    }
    auto segment = builder.Build();
    EXPECT_TRUE(segment.ok()) << segment.status().ToString();
    segments.push_back(*segment);
  }
  return segments;
}

// Renders a result into a canonical comparable form (group rows as a
// sorted map keyed by group values).
std::string Canonical(const QueryResult& result) {
  std::string out;
  for (const auto& v : result.aggregates) {
    out += ValueToString(v) + "|";
  }
  std::map<std::string, std::string> groups;
  for (const auto& row : result.group_rows) {
    std::string vals;
    for (const auto& v : row.values) vals += ValueToString(v) + ",";
    groups[EncodeGroupKey(row.keys)] = vals;
  }
  for (const auto& [k, v] : groups) out += k + "=" + v + ";";
  return out;
}

class QueryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzzTest, LayoutsAndSplitsAgree) {
  const uint64_t seed = GetParam();
  Random rng(seed);
  const Schema schema = FuzzSchema();
  const std::vector<Row> rows = MakeRows(rng, 1500);

  SegmentBuildConfig none;
  SegmentBuildConfig inverted;
  inverted.inverted_index_columns = {"d_str", "d_int", "d_small", "d_multi",
                                     "t"};
  SegmentBuildConfig sorted;
  sorted.sort_columns = {"d_int", "t"};
  SegmentBuildConfig star;
  star.sort_columns = {"d_str"};
  star.star_tree.dimensions = {"d_str", "d_small", "d_int", "t"};
  star.star_tree.metrics = {"m_long", "m_double"};
  star.star_tree.max_leaf_records = 32;

  struct Config {
    const char* name;
    Segments segments;
  };
  std::vector<Config> configs;
  configs.push_back({"reference-1seg", BuildSplit(schema, rows, 1, none)});
  configs.push_back({"none-5seg", BuildSplit(schema, rows, 5, none)});
  configs.push_back({"inverted-3seg", BuildSplit(schema, rows, 3, inverted)});
  configs.push_back({"sorted-4seg", BuildSplit(schema, rows, 4, sorted)});
  configs.push_back({"startree-2seg", BuildSplit(schema, rows, 2, star)});

  // Serialize/reload the reference segment.
  {
    auto immutable =
        std::dynamic_pointer_cast<ImmutableSegment>(configs[0].segments[0]);
    auto reloaded =
        ImmutableSegment::DeserializeFromBlob(immutable->SerializeToBlob());
    ASSERT_TRUE(reloaded.ok());
    configs.push_back({"reloaded-1seg", {*reloaded}});
  }

  for (int q = 0; q < 150; ++q) {
    const std::string pql = RandomQuery(rng);
    auto query = ParsePql(pql);
    ASSERT_TRUE(query.ok()) << pql;

    std::string reference;
    for (const auto& config : configs) {
      PartialResult partial = ExecuteQueryOnSegments(config.segments, *query);
      ASSERT_TRUE(partial.status.ok())
          << config.name << " " << pql << ": " << partial.status.ToString();
      QueryResult result = ReduceToFinalResult(*query, std::move(partial));
      const std::string canonical = Canonical(result);
      if (&config == &configs[0]) {
        reference = canonical;
      } else {
        ASSERT_EQ(canonical, reference)
            << "seed=" << seed << " config=" << config.name << "\n  " << pql;
      }
    }
  }
}

// Tracing must be a pure observer: executing with a span attached returns
// bit-identical results, and the produced span tree is structurally valid
// (every child interval inside its parent, one leaf per segment, a plan
// label on each).
TEST_P(QueryFuzzTest, TracedExecutionIsEquivalentAndWellFormed) {
  const uint64_t seed = GetParam();
  Random rng(seed + 1000);  // Distinct stream from LayoutsAndSplitsAgree.
  const Schema schema = FuzzSchema();
  const std::vector<Row> rows = MakeRows(rng, 800);

  SegmentBuildConfig star;
  star.sort_columns = {"d_str"};
  star.star_tree.dimensions = {"d_str", "d_small", "d_int", "t"};
  star.star_tree.metrics = {"m_long", "m_double"};
  star.star_tree.max_leaf_records = 32;
  const Segments plain = BuildSplit(schema, rows, 4, SegmentBuildConfig{});
  const Segments startree = BuildSplit(schema, rows, 3, star);

  for (int q = 0; q < 60; ++q) {
    const std::string pql = RandomQuery(rng);
    auto query = ParsePql(pql);
    ASSERT_TRUE(query.ok()) << pql;

    for (const Segments* segments : {&plain, &startree}) {
      PartialResult untraced = ExecuteQueryOnSegments(*segments, *query);
      const std::string reference =
          Canonical(ReduceToFinalResult(*query, std::move(untraced)));

      Query traced_query = *query;
      traced_query.trace = true;
      TraceSpan parent = TraceSpan::Open("combine");
      PartialResult traced =
          ExecuteQueryOnSegments(*segments, traced_query, nullptr, &parent);
      parent.Close();

      ASSERT_EQ(parent.children.size(), segments->size())
          << "seed=" << seed << " " << pql;
      std::string why;
      ASSERT_TRUE(parent.WellFormed(&why, /*slack_micros=*/2000))
          << "seed=" << seed << " " << pql << ": " << why << "\n"
          << parent.ToString();
      for (const TraceSpan& leaf : parent.children) {
        EXPECT_EQ(leaf.name.rfind("segment:", 0), 0u) << leaf.name;
        EXPECT_FALSE(leaf.LabelValue("plan").empty())
            << pql << "\n" << parent.ToString();
      }
      EXPECT_EQ(Canonical(ReduceToFinalResult(*query, std::move(traced))),
                reference)
          << "seed=" << seed << " " << pql;
    }
  }
}

// EXPLAIN over fuzzed queries: planning never reads data and agrees with
// what a traced execution actually chose per segment.
TEST_P(QueryFuzzTest, ExplainAgreesWithExecutedPlan) {
  const uint64_t seed = GetParam();
  Random rng(seed + 2000);
  const Schema schema = FuzzSchema();
  const std::vector<Row> rows = MakeRows(rng, 600);

  SegmentBuildConfig star;
  star.sort_columns = {"d_str"};
  star.star_tree.dimensions = {"d_str", "d_small", "d_int", "t"};
  star.star_tree.metrics = {"m_long", "m_double"};
  star.star_tree.max_leaf_records = 32;
  const Segments segments = BuildSplit(schema, rows, 3, star);

  for (int q = 0; q < 40; ++q) {
    const std::string pql = RandomQuery(rng);
    auto parsed = ParsePql(pql);
    ASSERT_TRUE(parsed.ok()) << pql;

    Query explain_query = *parsed;
    explain_query.explain = true;
    TraceSpan explain_parent = TraceSpan::Open("combine");
    PartialResult planned =
        ExecuteQueryOnSegments(segments, explain_query, nullptr,
                               &explain_parent);
    EXPECT_EQ(planned.stats.docs_scanned, 0u) << pql;
    EXPECT_TRUE(planned.groups.empty()) << pql;
    EXPECT_TRUE(planned.selection_rows.empty()) << pql;

    Query traced_query = *parsed;
    traced_query.trace = true;
    TraceSpan traced_parent = TraceSpan::Open("combine");
    ExecuteQueryOnSegments(segments, traced_query, nullptr, &traced_parent);

    ASSERT_EQ(explain_parent.children.size(), traced_parent.children.size())
        << pql;
    for (size_t i = 0; i < explain_parent.children.size(); ++i) {
      EXPECT_EQ(explain_parent.children[i].LabelValue("plan"),
                traced_parent.children[i].LabelValue("plan"))
          << "seed=" << seed << " segment "
          << explain_parent.children[i].name << "\n  " << pql;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace pinot
