#include "trace/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace pinot {
namespace {

void Render(const TraceSpan& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(span.name);
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %" PRId64 ".%03" PRId64 "ms",
                span.duration_micros / 1000,
                span.duration_micros >= 0 ? span.duration_micros % 1000
                                          : -(span.duration_micros % 1000));
  out->append(buf);
  if (!span.annotations.empty() || !span.labels.empty()) {
    out->append(" {");
    bool first = true;
    for (const auto& [key, value] : span.labels) {
      if (!first) out->append(", ");
      first = false;
      out->append(key);
      out->append("=");
      out->append(value);
    }
    for (const auto& [key, value] : span.annotations) {
      if (!first) out->append(", ");
      first = false;
      out->append(key);
      out->append("=");
      std::snprintf(buf, sizeof(buf), "%" PRId64, value);
      out->append(buf);
    }
    out->append("}");
  }
  out->append("\n");
  for (const auto& child : span.children) Render(child, depth + 1, out);
}

}  // namespace

int64_t TraceSpan::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceSpan TraceSpan::Open(std::string name) {
  TraceSpan span;
  span.name = std::move(name);
  span.start_micros = NowMicros();
  return span;
}

TraceSpan TraceSpan::OpenAt(std::string name, int64_t start_micros) {
  TraceSpan span;
  span.name = std::move(name);
  span.start_micros = start_micros;
  return span;
}

const TraceSpan* TraceSpan::Find(const std::string& span_name) const {
  if (name == span_name) return this;
  for (const auto& child : children) {
    if (const TraceSpan* found = child.Find(span_name)) return found;
  }
  return nullptr;
}

int64_t TraceSpan::Annotation(const std::string& key, int64_t fallback) const {
  for (const auto& [k, v] : annotations) {
    if (k == key) return v;
  }
  return fallback;
}

std::string TraceSpan::LabelValue(const std::string& key) const {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return "";
}

bool TraceSpan::WellFormed(std::string* why, int64_t slack_micros) const {
  if (duration_micros < 0) {
    if (why != nullptr) *why = "span '" + name + "' has negative duration";
    return false;
  }
  const int64_t end = start_micros + duration_micros;
  for (const auto& child : children) {
    if (child.start_micros + slack_micros < start_micros) {
      if (why != nullptr) {
        *why = "child '" + child.name + "' starts before parent '" + name + "'";
      }
      return false;
    }
    if (child.start_micros + child.duration_micros > end + slack_micros) {
      if (why != nullptr) {
        *why = "child '" + child.name + "' ends after parent '" + name + "'";
      }
      return false;
    }
    if (!child.WellFormed(why, slack_micros)) return false;
  }
  return true;
}

std::string TraceSpan::ToString() const {
  std::string out;
  Render(*this, 0, &out);
  return out;
}

}  // namespace pinot
