#ifndef PINOT_DATA_ROW_H_
#define PINOT_DATA_ROW_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "data/schema.h"
#include "data/value.h"

namespace pinot {

/// One record as produced by ingestion (a Kafka event or an offline row).
/// Field access is by name; the segment builder resolves names against the
/// table schema and fills defaults for missing fields.
class Row {
 public:
  Row() = default;

  Row& Set(const std::string& name, Value value) {
    values_[name] = std::move(value);
    return *this;
  }
  Row& SetLong(const std::string& name, int64_t v) { return Set(name, v); }
  Row& SetDouble(const std::string& name, double v) { return Set(name, v); }
  Row& SetString(const std::string& name, std::string v) {
    return Set(name, std::move(v));
  }
  Row& SetLongArray(const std::string& name, std::vector<int64_t> v) {
    return Set(name, std::move(v));
  }
  Row& SetStringArray(const std::string& name, std::vector<std::string> v) {
    return Set(name, std::move(v));
  }

  /// Value for `name`, or null Value if unset.
  const Value& Get(const std::string& name) const {
    static const Value kNull{};
    auto it = values_.find(name);
    return it == values_.end() ? kNull : it->second;
  }

  bool Has(const std::string& name) const {
    return values_.count(name) > 0;
  }

  const std::unordered_map<std::string, Value>& values() const {
    return values_;
  }

 private:
  std::unordered_map<std::string, Value> values_;
};

}  // namespace pinot

#endif  // PINOT_DATA_ROW_H_
