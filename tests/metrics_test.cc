#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace pinot {
namespace {

TEST(CounterTest, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10.5);
  EXPECT_DOUBLE_EQ(g.Value(), 10.5);
  g.Add(-3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 7.0);
}

TEST(GaugeTest, ConcurrentAddsAreLossless) {
  Gauge g;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.Value(), kThreads * kPerThread);
}

TEST(HistogramTest, CountAndSum) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  h.Observe(1.0);
  h.Observe(2.0);
  h.Observe(4.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 7.0);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, BucketBoundsDouble) {
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), 0.001);
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(i),
                     2.0 * Histogram::BucketUpperBound(i - 1));
  }
}

TEST(HistogramTest, PercentileWithinOneOctave) {
  // 100 observations at exactly 10.0: every percentile estimate must land
  // inside the bucket containing 10.0 — (8.192, 16.384] — i.e. within one
  // octave of the true value.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Observe(10.0);
  for (double p : {1.0, 50.0, 95.0, 99.0}) {
    const double est = h.Percentile(p);
    EXPECT_GT(est, 10.0 / 2) << "p" << p;
    EXPECT_LE(est, 10.0 * 2) << "p" << p;
  }
}

TEST(HistogramTest, PercentileOrderingOnSpreadData) {
  // Observations spread over three decades: percentiles must be monotone
  // and straddle the right magnitudes.
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Observe(1.0);    // p <= 90 region.
  for (int i = 0; i < 9; ++i) h.Observe(100.0);   // p in (90, 99].
  h.Observe(10000.0);                             // The p100 tail.
  const double p50 = h.Percentile(50);
  const double p95 = h.Percentile(95);
  const double p99 = h.Percentile(99);
  EXPECT_LT(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 0.5);
  EXPECT_LT(p50, 2.1);
  EXPECT_GT(p95, 50);
  EXPECT_LT(p95, 210);
}

TEST(HistogramTest, TinyAndHugeValuesClampToEdgeBuckets) {
  Histogram h;
  h.Observe(0.0);     // Below the first bound.
  h.Observe(-1.0);    // Negative: clamped, never UB.
  h.Observe(1e30);    // Beyond the last bucket.
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_LE(h.Percentile(1), Histogram::BucketUpperBound(0));
  EXPECT_GT(h.Percentile(99), 1e9);
}

TEST(HistogramTest, TracksExactMinAndMax) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);  // Empty: no ±infinity leaking out.
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  h.Observe(7.0);
  EXPECT_DOUBLE_EQ(h.Min(), 7.0);
  EXPECT_DOUBLE_EQ(h.Max(), 7.0);
  h.Observe(2.5);
  h.Observe(90.0);
  EXPECT_DOUBLE_EQ(h.Min(), 2.5);
  EXPECT_DOUBLE_EQ(h.Max(), 90.0);
}

TEST(HistogramTest, PercentileClampedToObservedExtremes) {
  // All observations are exactly 10.0 — the log bucket spans (8.192,
  // 16.384], but with exact extremes tracked every percentile must
  // collapse to the one observed value.
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Observe(10.0);
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 10.0) << "p" << p;
  }
}

TEST(HistogramTest, ConcurrentObserveKeepsMinMaxConsistent) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(1.0 + t + i % 100);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 1.0 + (kThreads - 1) + 99);
}

TEST(MetricsRegistryTest, SameSeriesReturnsSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("queries", {{"table", "t"}});
  Counter* b = registry.GetCounter("queries", {{"table", "t"}});
  EXPECT_EQ(a, b);
  // Label order must not matter: labels are canonicalized by sorting.
  Counter* c = registry.GetCounter("x", {{"a", "1"}, {"b", "2"}});
  Counter* d = registry.GetCounter("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(c, d);
}

TEST(MetricsRegistryTest, DistinctLabelsAreDistinctSeries) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("queries", {{"table", "a"}});
  Counter* b = registry.GetCounter("queries", {{"table", "b"}});
  EXPECT_NE(a, b);
  a->Increment(3);
  b->Increment(5);
  EXPECT_EQ(registry.CounterValue("queries", {{"table", "a"}}), 3u);
  EXPECT_EQ(registry.CounterValue("queries", {{"table", "b"}}), 5u);
}

TEST(MetricsRegistryTest, InspectionHelpersDoNotCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("never_created"), 0u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("never_created"), 0.0);
  EXPECT_EQ(registry.FindHistogram("never_created"), nullptr);
  EXPECT_EQ(registry.Dump().find("never_created"), std::string::npos);
}

TEST(MetricsRegistryTest, DumpRendersAllKinds) {
  MetricsRegistry registry;
  registry.GetCounter("events_total", {{"table", "t"}})->Increment(7);
  registry.GetGauge("lag")->Set(12.0);
  Histogram* h = registry.GetHistogram("latency_ms");
  h->Observe(1.0);
  h->Observe(3.0);
  const std::string dump = registry.Dump();
  EXPECT_NE(dump.find("events_total{table=\"t\"} 7"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("lag 12"), std::string::npos) << dump;
  EXPECT_NE(dump.find("latency_ms_count 2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("latency_ms_sum 4"), std::string::npos) << dump;
  EXPECT_NE(dump.find("quantile=\"0.5\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("quantile=\"0.99\""), std::string::npos) << dump;
}

TEST(MetricsRegistryTest, ConcurrentGetAndIncrement) {
  // Registration under contention: all threads resolve the same series and
  // no increment is lost.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("contended", {{"k", "v"}})->Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.CounterValue("contended", {{"k", "v"}}),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, DefaultRegistryIsSingleton) {
  EXPECT_EQ(MetricsRegistry::Default(), MetricsRegistry::Default());
  EXPECT_NE(MetricsRegistry::Default(), nullptr);
}

TEST(MetricsRegistryTest, LabelValuesWithExpositionBreakersAreSanitized) {
  // Regression: a label value containing `"`, a newline, or a backslash
  // used to land verbatim in the series key and corrupt the text
  // exposition (a quote terminates the value early; a newline splits the
  // sample line in two).
  MetricsRegistry registry;
  registry.GetCounter("q", {{"table", "evil\"name"}})->Increment();
  registry.GetCounter("q", {{"table", "two\nlines"}})->Increment();
  registry.GetCounter("q", {{"table", "back\\slash"}})->Increment();
  const std::string dump = registry.Dump();
  EXPECT_NE(dump.find("q{table=\"evil_name\"} 1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("q{table=\"two_lines\"} 1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("q{table=\"back_slash\"} 1"), std::string::npos)
      << dump;
  // Every dumped line must be a well-formed `key value` pair: label values
  // never contain a raw quote beyond the delimiters.
  EXPECT_EQ(dump.find("evil\"name"), std::string::npos) << dump;
  EXPECT_EQ(dump.find("two\nlines"), std::string::npos) << dump;
  // Lookups with the dirty labels keep resolving to the sanitized series.
  EXPECT_EQ(registry.CounterValue("q", {{"table", "evil\"name"}}), 1u);
}

TEST(MetricsRegistryTest, DumpEmitsHistogramMinAndMax) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat_ms", {{"table", "t"}});
  h->Observe(2.0);
  h->Observe(64.0);
  const std::string dump = registry.Dump();
  EXPECT_NE(dump.find("lat_ms_min{table=\"t\"} 2"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("lat_ms_max{table=\"t\"} 64"), std::string::npos)
      << dump;
}

TEST(MetricsRegistryTest, SeriesKeyHelpers) {
  const std::string key = MetricsRegistry::SeriesKey(
      "broker_queries_total", {{"table", "events"}, {"tenant", "a"}});
  EXPECT_EQ(key, "broker_queries_total{table=\"events\",tenant=\"a\"}");
  EXPECT_EQ(MetricFamilyName(key), "broker_queries_total");
  EXPECT_EQ(MetricFamilyName("plain_total"), "plain_total");
  EXPECT_EQ(MetricLabelValue(key, "table"), "events");
  EXPECT_EQ(MetricLabelValue(key, "tenant"), "a");
  EXPECT_EQ(MetricLabelValue(key, "missing"), "");
  EXPECT_EQ(MetricLabelValue("plain_total", "table"), "");
  // `able` must not match the tail of `table`.
  EXPECT_EQ(MetricLabelValue(key, "able"), "");
}

TEST(MetricsRegistryTest, DumpRacingRegistrationAndObservation) {
  // Dump() snapshots series pointers under the lock and renders unlocked;
  // concurrent Get* registration and observation must never deadlock,
  // crash, or tear (checked under TSan/ASan in the repeat stage).
  MetricsRegistry registry;
  registry.GetCounter("churn_total", {{"k", "seed"}})->Increment();
  registry.GetHistogram("churn_ms", {{"k", "seed"}})->Observe(1.0);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, &stop, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string label = "t" + std::to_string(t) + "-" +
                                  std::to_string(i % 17);
        registry.GetCounter("churn_total", {{"k", label}})->Increment();
        registry.GetHistogram("churn_ms", {{"k", label}})
            ->Observe(0.5 + i % 64);
        registry.GetGauge("churn_lag", {{"k", label}})->Set(i);
        ++i;
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    const std::string dump = registry.Dump();
    EXPECT_FALSE(dump.empty());
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  // A final quiescent dump is internally consistent: count lines exist for
  // every histogram series that was registered.
  const std::string dump = registry.Dump();
  EXPECT_NE(dump.find("churn_ms_count"), std::string::npos);
}

}  // namespace
}  // namespace pinot
