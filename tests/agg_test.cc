#include "query/agg.h"

#include <gtest/gtest.h>

#include "query/result.h"

namespace pinot {
namespace {

TEST(AggStateTest, AddDouble) {
  AggState state;
  state.AddDouble(3);
  state.AddDouble(-1);
  state.AddDouble(10);
  EXPECT_DOUBLE_EQ(state.sum, 12);
  EXPECT_DOUBLE_EQ(state.min, -1);
  EXPECT_DOUBLE_EQ(state.max, 10);
  EXPECT_EQ(state.count, 3);
}

TEST(AggStateTest, MergePreservesExtremaAndDistinct) {
  AggState a, b;
  a.AddDouble(1);
  a.MutableDistinct()->AddInt64(1);
  a.MutableDistinct()->AddInt64(2);
  b.AddDouble(5);
  b.MutableDistinct()->AddInt64(2);
  b.MutableDistinct()->AddInt64(3);
  a.Merge(std::move(b));
  EXPECT_DOUBLE_EQ(a.sum, 6);
  EXPECT_DOUBLE_EQ(a.min, 1);
  EXPECT_DOUBLE_EQ(a.max, 5);
  EXPECT_EQ(a.count, 2);
  EXPECT_EQ(a.distinct->size(), 3);
}

TEST(AggStateTest, AddPreaggregated) {
  AggState state;
  state.AddPreaggregated(100, 2, 50, 10);
  state.AddPreaggregated(50, -1, 20, 5);
  EXPECT_DOUBLE_EQ(state.sum, 150);
  EXPECT_DOUBLE_EQ(state.min, -1);
  EXPECT_DOUBLE_EQ(state.max, 50);
  EXPECT_EQ(state.count, 15);
}

TEST(FinalizeAggTest, AllTypes) {
  AggState state;
  state.AddDouble(2);
  state.AddDouble(4);
  EXPECT_EQ(std::get<int64_t>(FinalizeAgg(AggregationType::kCount, state)), 2);
  EXPECT_DOUBLE_EQ(std::get<double>(FinalizeAgg(AggregationType::kSum, state)),
                   6);
  EXPECT_DOUBLE_EQ(std::get<double>(FinalizeAgg(AggregationType::kMin, state)),
                   2);
  EXPECT_DOUBLE_EQ(std::get<double>(FinalizeAgg(AggregationType::kMax, state)),
                   4);
  EXPECT_DOUBLE_EQ(std::get<double>(FinalizeAgg(AggregationType::kAvg, state)),
                   3);
}

TEST(FinalizeAggTest, EmptyStates) {
  AggState empty;
  EXPECT_EQ(std::get<int64_t>(FinalizeAgg(AggregationType::kCount, empty)), 0);
  EXPECT_DOUBLE_EQ(
      std::get<double>(FinalizeAgg(AggregationType::kSum, empty)), 0);
  EXPECT_TRUE(IsNull(FinalizeAgg(AggregationType::kMin, empty)));
  EXPECT_TRUE(IsNull(FinalizeAgg(AggregationType::kAvg, empty)));
  EXPECT_EQ(std::get<int64_t>(
                FinalizeAgg(AggregationType::kDistinctCount, empty)),
            0);
}

TEST(DistinctSetTest, TypeSeparationAndMerge) {
  DistinctSet set;
  set.AddInt64(1);
  set.AddInt64(1);
  set.AddDouble(1.0);  // Distinct from the integer 1 by design.
  set.AddString("1");
  EXPECT_EQ(set.size(), 3);
  DistinctSet other;
  other.AddInt64(1);
  other.AddInt64(2);
  set.Merge(other);
  EXPECT_EQ(set.size(), 4);
}

TEST(PartialResultTest, MergeGroupsByValueKey) {
  PartialResult a, b;
  {
    std::vector<Value> keys = {Value{std::string("us")}};
    std::vector<AggState> states(1);
    states[0].AddDouble(10);
    a.groups.EnsureArity(1, 1);
    a.groups.AddGroup(std::move(keys), std::move(states));
  }
  {
    b.groups.EnsureArity(1, 1);
    std::vector<Value> keys = {Value{std::string("us")}};
    std::vector<AggState> states(1);
    states[0].AddDouble(5);
    b.groups.AddGroup(std::move(keys), std::move(states));
    std::vector<Value> other_keys = {Value{std::string("ca")}};
    std::vector<AggState> other_states(1);
    other_states[0].AddDouble(7);
    b.groups.AddGroup(std::move(other_keys), std::move(other_states));
  }
  a.Merge(std::move(b));
  ASSERT_EQ(a.groups.size(), 2u);
  const uint32_t us =
      a.groups.Find(EncodeGroupKey({Value{std::string("us")}}));
  ASSERT_NE(us, GroupTable::kInvalidGroup);
  EXPECT_DOUBLE_EQ(a.groups.StatesAt(us)[0].sum, 15);
}

TEST(PartialResultTest, MergeKeepsFirstError) {
  PartialResult a, b, c;
  b.status = Status::Timeout("server 1");
  c.status = Status::NotFound("segment");
  a.Merge(std::move(b));
  a.Merge(std::move(c));
  EXPECT_TRUE(a.status.IsTimeout());
}

TEST(EncodeGroupKeyTest, DistinguishesValues) {
  EXPECT_NE(EncodeGroupKey({Value{std::string("a")}, Value{std::string("b")}}),
            EncodeGroupKey({Value{std::string("ab")}}));
  EXPECT_EQ(EncodeGroupKey({Value{int64_t{1}}}),
            EncodeGroupKey({Value{int64_t{1}}}));
}

TEST(EncodeGroupKeyTest, SeparatorBytesInStringsDoNotCollide) {
  // The old separator-based encoding mapped all of these tuples to the
  // same key; the length-prefixed encoding must keep them distinct.
  EXPECT_NE(EncodeGroupKey(
                {Value{std::string("a\x1f")}, Value{std::string("b")}}),
            EncodeGroupKey(
                {Value{std::string("a")}, Value{std::string("\x1f"
                                                            "b")}}));
  EXPECT_NE(EncodeGroupKey({Value{std::string("a")}, Value{std::string("b")}}),
            EncodeGroupKey({Value{std::string("a\x1f"
                                              "b")}}));
  // Same tuple still encodes identically.
  EXPECT_EQ(EncodeGroupKey(
                {Value{std::string("a\x1f")}, Value{std::string("b")}}),
            EncodeGroupKey(
                {Value{std::string("a\x1f")}, Value{std::string("b")}}));
}

TEST(PartialResultTest, AggregateCountMismatchIsErrorNotUB) {
  PartialResult a, b;
  a.aggregates.resize(2);
  a.aggregates[0].AddDouble(1);
  a.aggregates[1].AddDouble(2);
  b.aggregates.resize(1);
  b.aggregates[0].AddDouble(5);
  a.Merge(std::move(b));
  EXPECT_FALSE(a.status.ok());
  EXPECT_NE(a.status.ToString().find("aggregate count mismatch"),
            std::string::npos);
  // Our side is preserved untouched.
  ASSERT_EQ(a.aggregates.size(), 2u);
  EXPECT_DOUBLE_EQ(a.aggregates[0].sum, 1);
}

TEST(PartialResultTest, GroupStateCountMismatchIsErrorNotUB) {
  PartialResult a, b;
  {
    a.groups.EnsureArity(1, 2);
    std::vector<Value> keys = {Value{std::string("us")}};
    a.groups.AddGroup(std::move(keys), std::vector<AggState>(2));
  }
  {
    b.groups.EnsureArity(1, 1);  // Peer on an older table config.
    std::vector<Value> keys = {Value{std::string("us")}};
    std::vector<AggState> states(1);
    states[0].AddDouble(5);
    b.groups.AddGroup(std::move(keys), std::move(states));
  }
  a.Merge(std::move(b));
  EXPECT_FALSE(a.status.ok());
  EXPECT_NE(a.status.ToString().find("group arity mismatch"),
            std::string::npos);
  ASSERT_EQ(a.groups.size(), 1u);
  EXPECT_EQ(a.groups.num_aggs(), 2u);
}

}  // namespace
}  // namespace pinot
