# Empty dependencies file for bench_ablation_predicate_order.
# This may be replaced when dependencies are built.
