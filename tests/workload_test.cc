#include "workload/workloads.h"

#include <gtest/gtest.h>

#include <map>

#include "query/parser.h"
#include "segment/segment_builder.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

WorkloadOptions SmallOptions() {
  WorkloadOptions options;
  options.num_rows = 3000;
  options.num_queries = 200;
  options.seed = 11;
  return options;
}

class WorkloadTest : public ::testing::TestWithParam<int> {
 protected:
  Workload Make() const {
    switch (GetParam()) {
      case 0:
        return MakeAnomalyWorkload(SmallOptions());
      case 1:
        return MakeShareAnalyticsWorkload(SmallOptions());
      case 2:
        return MakeWvmpWorkload(SmallOptions());
      default:
        return MakeImpressionWorkload(SmallOptions());
    }
  }
};

TEST_P(WorkloadTest, RowsMatchSchemaAndBuild) {
  Workload workload = Make();
  EXPECT_EQ(workload.rows.size(), 3000u);
  SegmentBuildConfig config = workload.pinot_config;
  config.table_name = workload.name;
  config.segment_name = "w0";
  SegmentBuilder builder(workload.schema, config);
  for (const auto& row : workload.rows) {
    ASSERT_TRUE(builder.AddRow(row).ok());
  }
  auto segment = builder.Build();
  ASSERT_TRUE(segment.ok()) << segment.status().ToString();
  EXPECT_EQ((*segment)->num_docs(), 3000u);
}

TEST_P(WorkloadTest, AllQueriesParseAndExecute) {
  Workload workload = Make();
  EXPECT_EQ(workload.queries.size(), 200u);
  SegmentBuildConfig config = workload.pinot_config;
  config.table_name = workload.name;
  config.segment_name = "w0";
  SegmentBuilder builder(workload.schema, config);
  for (const auto& row : workload.rows) {
    ASSERT_TRUE(builder.AddRow(row).ok());
  }
  auto segment = builder.Build();
  ASSERT_TRUE(segment.ok());
  for (const auto& pql : workload.queries) {
    auto query = ParsePql(pql);
    ASSERT_TRUE(query.ok()) << pql;
    auto result = test::RunPql(*segment, pql);
    EXPECT_FALSE(result.partial) << pql << ": " << result.error_message;
  }
}

TEST_P(WorkloadTest, DeterministicForSeed) {
  Workload a = Make();
  Workload b = Make();
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i], b.queries[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, WorkloadTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(ZipfTest, SkewAndRange) {
  Random rng(3);
  ZipfGenerator gen(1000, 1.1);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = gen.Next(rng);
    ASSERT_LT(v, 1000u);
    ++counts[v];
  }
  // Rank 0 must dominate and the head must hold most of the mass.
  EXPECT_GT(counts[0], counts[10] * 2);
  int head = 0;
  for (uint64_t v = 0; v < 10; ++v) head += counts[v];
  EXPECT_GT(head, n / 4);
  // The tail is still populated (long tail, not truncated).
  int tail = 0;
  for (const auto& [v, c] : counts) {
    if (v >= 500) tail += c;
  }
  EXPECT_GT(tail, 0);
}

TEST(ZipfTest, SingleElementAndLowSkew) {
  Random rng(4);
  ZipfGenerator one(1, 1.0);
  EXPECT_EQ(one.Next(rng), 0u);
  ZipfGenerator low(50, 0.2);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(low.Next(rng), 50u);
}

TEST(WorkloadTest2, ImpressionPartitioningMetadata) {
  Workload workload = MakeImpressionWorkload(SmallOptions());
  EXPECT_EQ(workload.partition_column, "memberId");
  EXPECT_GT(workload.num_partitions, 0);
}

}  // namespace
}  // namespace pinot
