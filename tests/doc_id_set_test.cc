#include "query/doc_id_set.h"

#include <gtest/gtest.h>

namespace pinot {
namespace {

constexpr uint32_t kDocs = 1000;

TEST(DocIdSetTest, Constructors) {
  EXPECT_TRUE(DocIdSet::All(kDocs).IsAll());
  EXPECT_TRUE(DocIdSet::None(kDocs).IsEmpty());
  EXPECT_EQ(DocIdSet::All(kDocs).Cardinality(), kDocs);
  EXPECT_EQ(DocIdSet::None(kDocs).Cardinality(), 0u);

  // Full-range collapses to kAll, empty range to kNone.
  EXPECT_TRUE(DocIdSet::FromRange(0, kDocs, kDocs).IsAll());
  EXPECT_TRUE(DocIdSet::FromRange(5, 5, kDocs).IsEmpty());
  EXPECT_TRUE(DocIdSet::FromRange(7, 3, kDocs).IsEmpty());
  EXPECT_TRUE(DocIdSet::FromBitmap(RoaringBitmap(), kDocs).IsEmpty());

  DocIdSet range = DocIdSet::FromRange(10, 20, kDocs);
  EXPECT_EQ(range.kind(), DocIdSet::Kind::kRange);
  EXPECT_EQ(range.Cardinality(), 10u);
  EXPECT_EQ(range.range_begin(), 10u);
  EXPECT_EQ(range.range_end(), 20u);
}

TEST(DocIdSetTest, IntersectRangeWithRange) {
  DocIdSet a = DocIdSet::FromRange(10, 50, kDocs);
  DocIdSet b = DocIdSet::FromRange(30, 70, kDocs);
  DocIdSet c = a.Intersect(b);
  EXPECT_TRUE(c.IsRangeLike());
  EXPECT_EQ(c.range_begin(), 30u);
  EXPECT_EQ(c.range_end(), 50u);
  // Disjoint ranges -> empty.
  EXPECT_TRUE(a.Intersect(DocIdSet::FromRange(60, 80, kDocs)).IsEmpty());
}

TEST(DocIdSetTest, IntersectWithAllAndNone) {
  DocIdSet range = DocIdSet::FromRange(10, 20, kDocs);
  EXPECT_EQ(range.Intersect(DocIdSet::All(kDocs)).Cardinality(), 10u);
  EXPECT_TRUE(range.Intersect(DocIdSet::None(kDocs)).IsEmpty());
}

TEST(DocIdSetTest, IntersectRangeWithBitmap) {
  DocIdSet range = DocIdSet::FromRange(10, 20, kDocs);
  DocIdSet bitmap =
      DocIdSet::FromBitmap(RoaringBitmap::FromValues({5, 12, 18, 25}), kDocs);
  EXPECT_EQ(range.Intersect(bitmap).ToBitmap().ToVector(),
            (std::vector<uint32_t>{12, 18}));
  EXPECT_EQ(bitmap.Intersect(range).ToBitmap().ToVector(),
            (std::vector<uint32_t>{12, 18}));
}

TEST(DocIdSetTest, UnionAdjacentRangesStayRange) {
  DocIdSet a = DocIdSet::FromRange(10, 20, kDocs);
  DocIdSet b = DocIdSet::FromRange(20, 30, kDocs);
  DocIdSet c = a.Union(b);
  EXPECT_TRUE(c.IsRangeLike());
  EXPECT_EQ(c.Cardinality(), 20u);
}

TEST(DocIdSetTest, UnionDisjointRangesBecomesBitmap) {
  DocIdSet a = DocIdSet::FromRange(10, 20, kDocs);
  DocIdSet b = DocIdSet::FromRange(30, 40, kDocs);
  DocIdSet c = a.Union(b);
  EXPECT_EQ(c.kind(), DocIdSet::Kind::kBitmap);
  EXPECT_EQ(c.Cardinality(), 20u);
  EXPECT_TRUE(c.ToBitmap().Contains(15));
  EXPECT_TRUE(c.ToBitmap().Contains(35));
  EXPECT_FALSE(c.ToBitmap().Contains(25));
}

TEST(DocIdSetTest, ForEachRange) {
  DocIdSet bitmap = DocIdSet::FromBitmap(
      RoaringBitmap::FromValues({1, 2, 3, 10, 11}), kDocs);
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  bitmap.ForEachRange(
      [&](uint32_t b, uint32_t e) { ranges.emplace_back(b, e); });
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (std::pair<uint32_t, uint32_t>{1, 4}));
  EXPECT_EQ(ranges[1], (std::pair<uint32_t, uint32_t>{10, 12}));
}

TEST(DocIdSetTest, ForEachDocOrder) {
  DocIdSet range = DocIdSet::FromRange(3, 6, kDocs);
  std::vector<uint32_t> docs;
  range.ForEachDoc([&](uint32_t d) { docs.push_back(d); });
  EXPECT_EQ(docs, (std::vector<uint32_t>{3, 4, 5}));
}

}  // namespace
}  // namespace pinot
