# Empty compiler generated dependencies file for bench_ablation_startree_threshold.
# This may be replaced when dependencies are built.
