#include "cluster/minion.h"

#include "cluster/cluster_manager.h"
#include "cluster/object_store.h"
#include "common/bytes.h"
#include "common/logging.h"
#include "query/filter_evaluator.h"
#include "segment/row_extract.h"
#include "segment/segment_builder.h"

namespace pinot {

namespace {

// Reconstructs the original build configuration from a downloaded segment
// so a rewrite keeps its sort order, indexes, and partition metadata.
SegmentBuildConfig RebuildConfigFor(const ImmutableSegment& segment) {
  SegmentBuildConfig config;
  config.table_name = segment.metadata().table_name;
  config.segment_name = segment.metadata().segment_name;
  if (!segment.metadata().sorted_column.empty()) {
    config.sort_columns = {segment.metadata().sorted_column};
  }
  for (const auto& field : segment.schema().fields()) {
    const ColumnReader* reader = segment.GetColumn(field.name);
    if (reader != nullptr && reader->inverted_index() != nullptr) {
      config.inverted_index_columns.push_back(field.name);
    }
  }
  if (segment.star_tree() != nullptr) {
    config.star_tree = segment.star_tree()->config();
  }
  config.partition_id = segment.metadata().partition_id;
  config.partition_column = segment.metadata().partition_column;
  config.num_partitions = segment.metadata().num_partitions;
  return config;
}

}  // namespace

std::string EncodePurgePayload(const std::string& column,
                               const std::string& value) {
  ByteWriter writer;
  writer.WriteString(column);
  writer.WriteString(value);
  return std::string(writer.TakeBuffer());
}

Status DecodePurgePayload(const std::string& payload, std::string* column,
                          std::string* value) {
  ByteReader reader(payload);
  PINOT_ASSIGN_OR_RETURN(*column, reader.ReadString());
  PINOT_ASSIGN_OR_RETURN(*value, reader.ReadString());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in purge payload");
  }
  return Status::OK();
}

std::string EncodeUpsertCompactionPayload(const RoaringBitmap& invalid) {
  ByteWriter writer;
  invalid.Serialize(&writer);
  return std::string(writer.TakeBuffer());
}

Result<RoaringBitmap> DecodeUpsertCompactionPayload(
    const std::string& payload) {
  ByteReader reader(payload);
  return RoaringBitmap::Deserialize(&reader);
}

Minion::Minion(std::string id, ClusterContext ctx, Controller* controller)
    : id_(std::move(id)), ctx_(std::move(ctx)), controller_(controller) {}

void Minion::Start() {
  ctx_.cluster->RegisterInstance(id_, {"minion"}, nullptr);
  RegisterExecutor("purge", RunPurgeTask);
  RegisterExecutor("upsert_compact", RunUpsertCompactionTask);
}

void Minion::RegisterExecutor(const std::string& type,
                              TaskExecutor executor) {
  executors_[type] = std::move(executor);
}

int Minion::ProcessTasks(int max_tasks) {
  int executed = 0;
  for (int i = 0; i < max_tasks; ++i) {
    auto task = controller_->FetchTask();
    if (!task.has_value()) break;
    auto it = executors_.find(task->type);
    if (it == executors_.end()) {
      PINOT_LOG_WARN << id_ << ": no executor for task type " << task->type;
      continue;
    }
    Status st = it->second(*task, *this);
    if (st.ok()) {
      ++executed;
    } else {
      PINOT_LOG_WARN << id_ << ": task " << task->type << " on "
                     << task->physical_table << "/" << task->segment
                     << " failed: " << st.ToString();
    }
  }
  return executed;
}

Status RunPurgeTask(const Controller::Task& task, Minion& minion) {
  std::string column;
  std::string value_text;
  PINOT_RETURN_NOT_OK(DecodePurgePayload(task.payload, &column, &value_text));

  // Download.
  PINOT_ASSIGN_OR_RETURN(
      std::string blob,
      minion.ctx().object_store->Get(
          zkpaths::SegmentBlobKey(task.physical_table, task.segment)));
  PINOT_ASSIGN_OR_RETURN(std::shared_ptr<ImmutableSegment> segment,
                         ImmutableSegment::DeserializeFromBlob(blob));

  const ColumnReader* target = segment->GetColumn(column);
  if (target == nullptr) {
    return Status::NotFound("purge column not in segment: " + column);
  }

  SegmentBuildConfig config = RebuildConfigFor(*segment);

  // Expunge: match the rendered value against the column's value domain.
  Predicate pred;
  pred.column = column;
  pred.op = PredicateOp::kEq;
  switch (target->dictionary().storage()) {
    case Dictionary::Storage::kInt64:
      pred.values.emplace_back(static_cast<int64_t>(
          std::strtoll(value_text.c_str(), nullptr, 10)));
      break;
    case Dictionary::Storage::kDouble:
      pred.values.emplace_back(std::strtod(value_text.c_str(), nullptr));
      break;
    case Dictionary::Storage::kString:
      pred.values.emplace_back(value_text);
      break;
  }
  FilterEvaluator evaluator(*segment, nullptr);
  std::optional<FilterNode> filter;
  filter.emplace(FilterNode::Leaf(std::move(pred)));
  PINOT_ASSIGN_OR_RETURN(DocIdSet purged, evaluator.Evaluate(filter));
  RoaringBitmap purged_bitmap = purged.ToBitmap();

  SegmentBuilder builder(segment->schema(), config, minion.ctx().clock);
  for (uint32_t doc = 0; doc < segment->num_docs(); ++doc) {
    if (purged_bitmap.Contains(doc)) continue;
    PINOT_RETURN_NOT_OK(builder.AddRow(ExtractRow(*segment, doc)));
  }
  PINOT_ASSIGN_OR_RETURN(std::shared_ptr<ImmutableSegment> rebuilt,
                         builder.Build());

  // Re-upload under the same name (atomic replace through the controller).
  return minion.controller()->UploadSegment(task.physical_table,
                                            rebuilt->SerializeToBlob());
}

Status RunUpsertCompactionTask(const Controller::Task& task, Minion& minion) {
  PINOT_ASSIGN_OR_RETURN(RoaringBitmap invalid,
                         DecodeUpsertCompactionPayload(task.payload));
  if (invalid.Empty()) return Status::OK();  // Nothing to drop.

  PINOT_ASSIGN_OR_RETURN(
      std::string blob,
      minion.ctx().object_store->Get(
          zkpaths::SegmentBlobKey(task.physical_table, task.segment)));
  PINOT_ASSIGN_OR_RETURN(std::shared_ptr<ImmutableSegment> segment,
                         ImmutableSegment::DeserializeFromBlob(blob));

  SegmentBuildConfig config = RebuildConfigFor(*segment);

  // The bitmap was captured against this segment name at schedule time;
  // docids past num_docs would mean the blob was replaced since, in which
  // case the stale task must not drop arbitrary rows.
  SegmentBuilder builder(segment->schema(), config, minion.ctx().clock);
  uint32_t dropped = 0;
  for (uint32_t doc = 0; doc < segment->num_docs(); ++doc) {
    if (invalid.Contains(doc)) {
      ++dropped;
      continue;
    }
    PINOT_RETURN_NOT_OK(builder.AddRow(ExtractRow(*segment, doc)));
  }
  if (dropped != invalid.Cardinality()) {
    return Status::FailedPrecondition(
        "upsert compaction bitmap does not match segment " + task.segment);
  }
  PINOT_ASSIGN_OR_RETURN(std::shared_ptr<ImmutableSegment> rebuilt,
                         builder.Build());

  // Atomic replace: servers bounce the segment OFFLINE->ONLINE, reload the
  // new blob, and rebind the surviving rows into the upsert key map.
  return minion.controller()->UploadSegment(task.physical_table,
                                            rebuilt->SerializeToBlob());
}

}  // namespace pinot
