# Empty compiler generated dependencies file for hybrid_table.
# This may be replaced when dependencies are built.
