#ifndef PINOT_STARTREE_STAR_TREE_H_
#define PINOT_STARTREE_STAR_TREE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace pinot {

/// Configuration for star-tree generation on a segment (paper section 4.3).
/// `dimensions` is the split order (most frequently filtered first);
/// `metrics` are the preaggregated metric columns. A node whose record count
/// is at or below `max_leaf_records` is not split further.
struct StarTreeConfig {
  std::vector<std::string> dimensions;
  std::vector<std::string> metrics;
  uint32_t max_leaf_records = 10000;

  bool enabled() const { return !dimensions.empty(); }
};

/// A star-tree index: a pruned hierarchy of preaggregated records
/// ("star-cubing", Xin et al.; paper section 4.3). Each tree level splits on
/// one dimension; every split also has a *star* child holding records
/// aggregated across all values of that dimension. Queries whose filter and
/// group-by columns are tree dimensions and whose aggregations are
/// sum/count/min/max over tree metrics can be answered from far fewer
/// preaggregated records than raw documents (Figure 13).
///
/// Dimension values in star-tree records are the owning segment's
/// dictionary ids; kStarValue marks the aggregated-across-all-values slot.
class StarTree {
 public:
  static constexpr uint32_t kStarValue = 0xffffffff;

  /// One input record for the builder: dictionary ids per configured
  /// dimension plus raw metric values per configured metric.
  struct InputRecord {
    std::vector<uint32_t> dims;
    std::vector<double> metrics;
  };

  /// Builds the tree from one record per document.
  static StarTree Build(StarTreeConfig config,
                        std::vector<InputRecord> records);

  const StarTreeConfig& config() const { return config_; }
  uint32_t num_records() const {
    return static_cast<uint32_t>(counts_.size());
  }
  uint32_t num_base_records() const { return num_base_records_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  uint32_t DimValue(int dim_index, uint32_t record) const {
    return dim_values_[dim_index][record];
  }
  int64_t Count(uint32_t record) const { return counts_[record]; }
  double MetricSum(int metric_index, uint32_t record) const {
    return metric_sums_[metric_index][record];
  }
  double MetricMin(int metric_index, uint32_t record) const {
    return metric_mins_[metric_index][record];
  }
  double MetricMax(int metric_index, uint32_t record) const {
    return metric_maxs_[metric_index][record];
  }

  /// Index of `column` in the configured dimension list, or -1.
  int DimensionIndex(const std::string& column) const;
  /// Index of `column` in the configured metric list, or -1.
  int MetricIndex(const std::string& column) const;

  /// Traversal request: for each tree dimension, an optional predicate
  /// (sorted list of matching dictionary ids) and whether it is grouped on.
  struct DimensionSpec {
    bool has_predicate = false;
    std::vector<uint32_t> matching_ids;  // Sorted; used when has_predicate.
    bool group_by = false;
  };

  /// Collects the record ranges answering a query. Traverses predicate
  /// dimensions into matching children, group-by dimensions into all
  /// concrete children, and everything else into the star child. Records in
  /// the returned ranges still need per-record filtering on predicate
  /// dimensions at or below the leaf level (the caller re-checks
  /// `matching_ids` against DimValue).
  void CollectRecordRanges(
      const std::vector<DimensionSpec>& specs,
      std::vector<std::pair<uint32_t, uint32_t>>* ranges) const;

  uint64_t SizeInBytes() const;

  void Serialize(ByteWriter* writer) const;
  static Result<StarTree> Deserialize(ByteReader* reader);

 private:
  struct Node {
    int dim = -1;                 // Split dimension of the *children*.
    uint32_t value = kStarValue;  // This node's value in the parent's dim.
    uint32_t record_start = 0;    // Range of records this node covers.
    uint32_t record_end = 0;
    std::vector<int> children;    // Indexes into nodes_; sorted by value.
    int star_child = -1;          // Index of the star child, or -1.

    bool IsLeaf() const { return children.empty(); }
  };

  struct BuildRecord {
    std::vector<uint32_t> dims;
    int64_t count = 0;
    std::vector<double> sums;
    std::vector<double> mins;
    std::vector<double> maxs;
  };

  int BuildNode(std::vector<BuildRecord>* records, uint32_t start,
                uint32_t end, int level, uint32_t value);
  void Freeze(const std::vector<BuildRecord>& records);
  void CollectFromNode(int node_index, int level,
                       const std::vector<DimensionSpec>& specs,
                       std::vector<std::pair<uint32_t, uint32_t>>* ranges)
      const;

  StarTreeConfig config_;
  std::vector<Node> nodes_;  // nodes_[0] is the root.
  uint32_t num_base_records_ = 0;

  // Columnar record storage (frozen after build).
  std::vector<std::vector<uint32_t>> dim_values_;   // [dim][record]
  std::vector<int64_t> counts_;                     // [record]
  std::vector<std::vector<double>> metric_sums_;    // [metric][record]
  std::vector<std::vector<double>> metric_mins_;
  std::vector<std::vector<double>> metric_maxs_;
};

}  // namespace pinot

#endif  // PINOT_STARTREE_STAR_TREE_H_
