#ifndef PINOT_QUERY_TABLE_EXECUTOR_H_
#define PINOT_QUERY_TABLE_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "query/query.h"
#include "query/result.h"
#include "segment/segment.h"
#include "trace/trace.h"

namespace pinot {

/// Executes `query` over a set of segments, combining the per-segment
/// partial results (the server-side combine of paper section 3.3.3 step 6;
/// "query plans are processed in parallel" when `pool` is non-null).
///
/// Segments whose metadata proves they cannot match the filter (predicate
/// value ranges disjoint from the column's min/max) are pruned without
/// execution; per-segment errors mark the merged result's status, which the
/// broker surfaces as a partial result rather than a failure.
///
/// When `parent` is non-null, one `segment:<name>` child span is attached
/// per segment, labelled with the chosen plan (metadata / star-tree / raw /
/// pruned) and annotated with docs scanned/matched; in the parallel path
/// each task builds its span locally and the single-threaded merge step
/// attaches them, so no locking is needed. A query with `explain` set runs
/// per-segment planning only — plan spans are produced but no data is read
/// and no rows are returned.
PartialResult ExecuteQueryOnSegments(
    const std::vector<std::shared_ptr<SegmentInterface>>& segments,
    const Query& query, ThreadPool* pool = nullptr,
    TraceSpan* parent = nullptr);

/// True when segment metadata alone proves the filter matches nothing in
/// this segment (exposed for tests).
bool CanPruneSegment(const SegmentInterface& segment, const Query& query);

}  // namespace pinot

#endif  // PINOT_QUERY_TABLE_EXECUTOR_H_
