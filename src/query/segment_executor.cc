#include "query/segment_executor.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <charconv>
#include <cstring>
#include <optional>
#include <unordered_map>

#include "query/filter_evaluator.h"
#include "realtime/upsert_meta.h"
#include "startree/star_tree.h"

namespace pinot {

namespace {

constexpr uint32_t kMissingColumnId = 0xffffffff;

// Maximum number of dictionary ids we are willing to expand a range
// predicate into for star-tree traversal before falling back to raw
// execution.
constexpr size_t kMaxStarTreeIdExpansion = 65536;

// Reads the full value of a column for one document (dictionary decode).
Value ReadDocValue(const ColumnReader& column, uint32_t doc,
                   std::vector<uint32_t>* scratch) {
  if (column.spec().single_value) {
    return column.dictionary().ValueAt(
        static_cast<int>(column.GetDictId(doc)));
  }
  column.GetDictIds(doc, scratch);
  const Dictionary& dict = column.dictionary();
  switch (dict.storage()) {
    case Dictionary::Storage::kInt64: {
      std::vector<int64_t> out;
      out.reserve(scratch->size());
      for (uint32_t id : *scratch) out.push_back(dict.Int64At(id));
      return out;
    }
    case Dictionary::Storage::kDouble: {
      std::vector<double> out;
      out.reserve(scratch->size());
      for (uint32_t id : *scratch) out.push_back(dict.DoubleAt(id));
      return out;
    }
    case Dictionary::Storage::kString: {
      std::vector<std::string> out;
      out.reserve(scratch->size());
      for (uint32_t id : *scratch) out.push_back(dict.StringAt(id));
      return out;
    }
  }
  return Value{};
}

// One aggregation bound to a segment column (or to a constant default when
// the segment predates the column).
struct BoundAggregation {
  AggregationType type = AggregationType::kCount;
  const ColumnReader* column = nullptr;  // Null for COUNT(*) / missing col.
  bool count_star = false;
  double default_double = 0;             // Missing column: constant value.
  Value default_value;

  void Accumulate(uint32_t doc, AggState* state,
                  std::vector<uint32_t>* scratch) const {
    switch (type) {
      case AggregationType::kCount:
        ++state->count;
        return;
      case AggregationType::kSum:
      case AggregationType::kMin:
      case AggregationType::kMax:
      case AggregationType::kAvg: {
        double v = default_double;
        if (column != nullptr) {
          v = column->dictionary().DoubleValueAt(
              static_cast<int>(column->GetDictId(doc)));
        }
        state->AddDouble(v);
        return;
      }
      case AggregationType::kDistinctCount: {
        DistinctSet* distinct = state->MutableDistinct();
        if (column == nullptr) {
          AddValueToDistinct(default_value, distinct);
          ++state->count;
          return;
        }
        const Dictionary& dict = column->dictionary();
        if (column->spec().single_value) {
          AddDictIdToDistinct(dict, column->GetDictId(doc), distinct);
        } else {
          column->GetDictIds(doc, scratch);
          for (uint32_t id : *scratch) {
            AddDictIdToDistinct(dict, id, distinct);
          }
        }
        ++state->count;
        return;
      }
    }
  }

  static void AddDictIdToDistinct(const Dictionary& dict, uint32_t id,
                                  DistinctSet* distinct) {
    switch (dict.storage()) {
      case Dictionary::Storage::kInt64:
        distinct->AddInt64(dict.Int64At(static_cast<int>(id)));
        return;
      case Dictionary::Storage::kDouble:
        distinct->AddDouble(dict.DoubleAt(static_cast<int>(id)));
        return;
      case Dictionary::Storage::kString:
        distinct->AddString(dict.StringAt(static_cast<int>(id)));
        return;
    }
  }

  static void AddValueToDistinct(const Value& v, DistinctSet* distinct) {
    if (const auto* i = std::get_if<int64_t>(&v)) {
      distinct->AddInt64(*i);
    } else if (const auto* d = std::get_if<double>(&v)) {
      distinct->AddDouble(*d);
    } else if (const auto* s = std::get_if<std::string>(&v)) {
      distinct->AddString(*s);
    }
  }
};

Status BindAggregations(const SegmentInterface& segment, const Query& query,
                        std::vector<BoundAggregation>* out) {
  const Schema& schema = segment.schema();
  for (const auto& spec : query.aggregations) {
    BoundAggregation bound;
    bound.type = spec.type;
    if (spec.column.empty()) {
      if (spec.type != AggregationType::kCount) {
        return Status::InvalidArgument("aggregation requires a column: " +
                                       spec.ToString());
      }
      bound.count_star = true;
    } else {
      const int field_index = schema.IndexOf(spec.column);
      if (field_index < 0) {
        return Status::NotFound("unknown aggregation column: " + spec.column);
      }
      const FieldSpec& field = schema.field(field_index);
      if (spec.type != AggregationType::kCount &&
          spec.type != AggregationType::kDistinctCount) {
        if (field.type == DataType::kString) {
          return Status::InvalidArgument(
              "numeric aggregation on string column: " + spec.column);
        }
        if (!field.single_value) {
          return Status::InvalidArgument(
              "numeric aggregation on multi-value column: " + spec.column);
        }
      }
      bound.column = segment.GetColumn(spec.column);
      if (bound.column == nullptr) {
        bound.default_value = schema.EffectiveDefault(field_index);
        bound.default_double = ValueToDouble(bound.default_value);
      }
    }
    out->push_back(std::move(bound));
  }
  return Status::OK();
}

// --- Group-by helpers ------------------------------------------------------

// Per-segment group keys are raw dictionary-id bytes (fast); they are
// re-encoded into value-based keys before leaving the segment so results
// merge correctly across segments.
void AppendIdToKey(uint32_t id, std::string* key) {
  char bytes[4];
  std::memcpy(bytes, &id, 4);
  key->append(bytes, 4);
}

struct GroupByColumn {
  const ColumnReader* column = nullptr;  // Null -> missing (default value).
  Value default_value;
  bool single_value = true;
};

// Decodes a dict-id key back into group values.
std::vector<Value> DecodeGroupKey(const std::string& key,
                                  const std::vector<GroupByColumn>& columns) {
  std::vector<Value> values;
  values.reserve(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    uint32_t id;
    std::memcpy(&id, key.data() + i * 4, 4);
    if (columns[i].column == nullptr || id == kMissingColumnId) {
      values.push_back(columns[i].default_value);
    } else {
      values.push_back(
          columns[i].column->dictionary().ValueAt(static_cast<int>(id)));
    }
  }
  return values;
}

using LocalGroups = std::unordered_map<std::string, std::vector<AggState>>;

// Emits one (doc, group-key) contribution; recursion handles multi-value
// group columns by exploding every entry combination.
template <typename Fn>
void ForEachGroupKey(const std::vector<GroupByColumn>& columns, uint32_t doc,
                     size_t index, std::string* key,
                     std::vector<std::vector<uint32_t>>* scratch, Fn&& fn) {
  if (index == columns.size()) {
    fn(*key);
    return;
  }
  const GroupByColumn& gb = columns[index];
  const size_t key_size = key->size();
  if (gb.column == nullptr) {
    AppendIdToKey(kMissingColumnId, key);
    ForEachGroupKey(columns, doc, index + 1, key, scratch, fn);
    key->resize(key_size);
    return;
  }
  if (gb.single_value) {
    AppendIdToKey(gb.column->GetDictId(doc), key);
    ForEachGroupKey(columns, doc, index + 1, key, scratch, fn);
    key->resize(key_size);
    return;
  }
  std::vector<uint32_t>& ids = (*scratch)[index];
  gb.column->GetDictIds(doc, &ids);
  if (ids.empty()) {
    AppendIdToKey(kMissingColumnId, key);
    ForEachGroupKey(columns, doc, index + 1, key, scratch, fn);
    key->resize(key_size);
    return;
  }
  for (uint32_t id : ids) {
    AppendIdToKey(id, key);
    ForEachGroupKey(columns, doc, index + 1, key, scratch, fn);
    key->resize(key_size);
  }
}

// Re-encodes one group (dict-id key already decoded to values) into the
// value-keyed per-segment output, merging states when the group exists.
void MergeGroupInto(std::vector<Value> values, std::vector<AggState>&& states,
                    PartialResult* out) {
  out->groups.EnsureArity(values.size(), states.size());
  out->groups.AddGroup(std::move(values), std::move(states));
}

void FlushLocalGroups(const std::vector<GroupByColumn>& columns,
                      LocalGroups&& local, PartialResult* out) {
  for (auto& [key, states] : local) {
    MergeGroupInto(DecodeGroupKey(key, columns), std::move(states), out);
  }
}

// --- Batched scan path -----------------------------------------------------
//
// Block-at-a-time execution over the raw scan pipeline: the DocIdSet hands
// out blocks of <= kDocIdBlockSize ascending doc ids, each referenced
// column's dict ids are bulk-decoded once per block (word-at-a-time bit
// unpacking), and aggregation kernels run over the decoded arrays. Results
// are identical to the per-document reference path; only the iteration
// shape changes.

// DISTINCTCOUNT needs per-document, per-value dictionary access (and
// multi-value explosion), so it stays on the reference path.
bool AggsBatchable(const std::vector<BoundAggregation>& bound) {
  for (const auto& b : bound) {
    if (b.type == AggregationType::kDistinctCount) return false;
  }
  return true;
}

// Decodes the single-value dict ids of every registered column exactly once
// per block; kernels index into the shared decoded buffers.
class BlockDecoder {
 public:
  int AddColumn(const ColumnReader* column) {
    for (size_t s = 0; s < columns_.size(); ++s) {
      if (columns_[s] == column) return static_cast<int>(s);
    }
    columns_.push_back(column);
    buffers_.emplace_back(kDocIdBlockSize);
    return static_cast<int>(columns_.size()) - 1;
  }

  void Decode(const DocIdBlock& block) {
    for (size_t s = 0; s < columns_.size(); ++s) {
      if (block.contiguous()) {
        columns_[s]->GetDictIdRange(block.begin, block.count,
                                    buffers_[s].data());
      } else {
        columns_[s]->GetDictIdBatch(block.docs, block.count,
                                    buffers_[s].data());
      }
    }
  }

  const uint32_t* ids(int slot) const { return buffers_[slot].data(); }

 private:
  std::vector<const ColumnReader*> columns_;
  std::vector<std::vector<uint32_t>> buffers_;
};

// Memoized dict-id -> double tables, one per referenced column: metric
// decode becomes an array load instead of a per-doc dictionary dispatch.
class ValueTableCache {
 public:
  const double* TableFor(const ColumnReader& column) {
    auto [it, inserted] = tables_.try_emplace(&column);
    if (inserted) {
      const Dictionary& dict = column.dictionary();
      auto table = std::make_unique<std::vector<double>>();
      table->reserve(static_cast<size_t>(dict.size()));
      for (int id = 0; id < dict.size(); ++id) {
        table->push_back(dict.DoubleValueAt(id));
      }
      it->second = std::move(table);
    }
    return it->second->data();
  }

 private:
  std::unordered_map<const ColumnReader*, std::unique_ptr<std::vector<double>>>
      tables_;
};

// Decoded-buffer binding of one batchable aggregation.
struct AggKernel {
  int slot = -1;                  // BlockDecoder slot; -1 for COUNT/missing.
  const double* table = nullptr;  // Null for COUNT and missing columns.
};

std::vector<AggKernel> BindAggKernels(const std::vector<BoundAggregation>& bound,
                                      BlockDecoder* decoder,
                                      ValueTableCache* tables) {
  std::vector<AggKernel> kernels(bound.size());
  for (size_t i = 0; i < bound.size(); ++i) {
    if (bound[i].type == AggregationType::kCount) continue;
    if (bound[i].column != nullptr) {
      kernels[i].slot = decoder->AddColumn(bound[i].column);
      kernels[i].table = tables->TableFor(*bound[i].column);
    }
  }
  return kernels;
}

void ExecuteAggBatched(const std::vector<BoundAggregation>& bound,
                       const DocIdSet& docs, std::vector<AggState>* states,
                       uint64_t* scanned) {
  BlockDecoder decoder;
  ValueTableCache tables;
  const std::vector<AggKernel> kernels = BindAggKernels(bound, &decoder, &tables);
  docs.ForEachBlock([&](const DocIdBlock& block) {
    *scanned += block.count;
    decoder.Decode(block);
    for (size_t i = 0; i < bound.size(); ++i) {
      AggState& st = (*states)[i];
      if (bound[i].type == AggregationType::kCount) {
        st.count += block.count;
        continue;
      }
      if (kernels[i].table == nullptr) {
        // Missing column: the schema default, once per doc (kept as
        // repeated adds so the float result matches the per-doc path).
        for (uint32_t j = 0; j < block.count; ++j) {
          st.AddDouble(bound[i].default_double);
        }
        continue;
      }
      const uint32_t* ids = decoder.ids(kernels[i].slot);
      const double* table = kernels[i].table;
      double sum = st.sum;
      double mn = st.min;
      double mx = st.max;
      for (uint32_t j = 0; j < block.count; ++j) {
        const double v = table[ids[j]];
        sum += v;
        if (v < mn) mn = v;
        if (v > mx) mx = v;
      }
      st.sum = sum;
      st.min = mn;
      st.max = mx;
      st.count += block.count;
    }
  });
}

// --- Packed group-by -------------------------------------------------------

// 64-bit finalizer (splitmix64) for the open-addressing packed-key table.
inline uint64_t MixHash64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

constexpr uint32_t kNoGroup = 0xffffffff;

// Packed keys apply when every group column is single-value and the summed
// dict-id bit widths fit in one uint64 (missing and cardinality-1 columns
// contribute zero bits).
bool PackedGroupByEligible(const std::vector<GroupByColumn>& group_columns,
                           int* total_bits) {
  int bits = 0;
  for (const auto& gb : group_columns) {
    if (!gb.single_value) return false;
    if (gb.column == nullptr) continue;
    const int card = gb.column->dictionary().size();
    bits += FixedBitVector::BitsFor(
        card > 0 ? static_cast<uint32_t>(card - 1) : 0);
  }
  if (bits > 64) return false;
  *total_bits = bits;
  return true;
}

// Number of radix partitions for the sharded packed-key path. Keys are
// partitioned by their low kRadixShardBits bits (dict ids are dense, so low
// bits spread groups evenly); each shard owns a private linear-probing
// table roughly 1/64th the total cardinality, so probes stay cache-resident
// and growth rehashes one small shard at a time instead of stalling the
// whole scan behind a full-table rehash.
constexpr int kRadixShardBits = 6;
constexpr size_t kRadixShards = size_t{1} << kRadixShardBits;
// Below this many groups the shard tables are cache-resident and the
// counting-sort probe ordering is pure overhead; probe in doc order.
constexpr size_t kRadixSortThreshold = 16384;

// Appends the length-prefixed key fragment AppendGroupKeyValue would
// produce for dictionary entry `id`, without materializing a Value. Int64
// dictionaries (the high-cardinality case) render via to_chars on the
// stack; doubles must match ValueToString's ostream rendering exactly, so
// they take the Value detour.
void AppendDictIdKeyFragment(const Dictionary& dict, uint32_t id,
                             std::string* key) {
  switch (dict.storage()) {
    case Dictionary::Storage::kInt64: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof(buf),
                                     dict.Int64At(static_cast<int>(id)));
      AppendRenderedGroupKeyValue(
          std::string_view(buf, static_cast<size_t>(res.ptr - buf)), key);
      return;
    }
    case Dictionary::Storage::kDouble:
      AppendGroupKeyValue(Value{dict.DoubleAt(static_cast<int>(id))}, key);
      return;
    case Dictionary::Storage::kString:
      AppendRenderedGroupKeyValue(dict.StringAt(static_cast<int>(id)), key);
      return;
  }
}

void ExecutePackedGroupBy(const std::vector<BoundAggregation>& bound,
                          const std::vector<GroupByColumn>& group_columns,
                          const ScanOptions& options, const DocIdSet& docs,
                          TraceSpan* span, uint64_t* scanned,
                          PartialResult* out) {
  BlockDecoder decoder;
  ValueTableCache tables;
  const size_t num_aggs = bound.size();
  const std::vector<AggKernel> kernels = BindAggKernels(bound, &decoder, &tables);

  // Key layout: concatenated dict-id bit fields, one per group column.
  struct PackedCol {
    int slot = -1;  // -1: constant contribution (missing or cardinality 1).
    int shift = 0;
    uint64_t mask = 0;
  };
  std::vector<PackedCol> packed(group_columns.size());
  int shift = 0;
  for (size_t i = 0; i < group_columns.size(); ++i) {
    const GroupByColumn& gb = group_columns[i];
    if (gb.column == nullptr) continue;
    const int card = gb.column->dictionary().size();
    const int bits = FixedBitVector::BitsFor(
        card > 0 ? static_cast<uint32_t>(card - 1) : 0);
    if (bits == 0) continue;
    packed[i].slot = decoder.AddColumn(gb.column);
    packed[i].shift = shift;
    packed[i].mask = ~uint64_t{0} >> (64 - bits);
    shift += bits;
  }
  const int total_bits = shift;

  // Groups are appended on first touch; states live in one flat array of
  // num_aggs entries per group.
  std::vector<uint64_t> group_keys;
  std::vector<AggState> group_states;
  auto add_group = [&](uint64_t key) -> uint32_t {
    const uint32_t g = static_cast<uint32_t>(group_keys.size());
    group_keys.push_back(key);
    group_states.resize(group_states.size() + num_aggs);
    return g;
  };

  // Table choice: dense direct-indexed table when the key space is small;
  // radix-partitioned per-shard probing tables otherwise (the default); a
  // single flat linear-probing table when radix is disabled (kept as the
  // equivalence reference for the fuzz tests).
  const bool dense =
      total_bits < 64 &&
      (uint64_t{1} << total_bits) <= options.dense_groupby_max_slots;
  const bool radix = !dense && options.radix_groupby;
  if (span != nullptr) {
    span->Label("group_table",
                dense ? "dense"
                      : (radix ? "radix(" + std::to_string(kRadixShards) + ")"
                               : "open-addressing"));
  }
  std::vector<uint32_t> dense_table;
  if (dense) dense_table.assign(size_t{1} << total_bits, kNoGroup);

  // Radix shards: each owns a private key/ordinal probing table.
  struct RadixShard {
    std::vector<uint64_t> keys;
    std::vector<uint32_t> groups;
    size_t capacity = 0;
    size_t used = 0;
  };
  std::vector<RadixShard> shards(radix ? kRadixShards : 0);
  auto shard_find_or_add = [&](RadixShard& shard, uint64_t key) -> uint32_t {
    if (shard.capacity == 0) {
      shard.capacity = 64;
      shard.keys.assign(shard.capacity, 0);
      shard.groups.assign(shard.capacity, kNoGroup);
    }
    size_t pos = MixHash64(key) & (shard.capacity - 1);
    while (true) {
      if (shard.groups[pos] == kNoGroup) {
        const uint32_t g = add_group(key);
        shard.keys[pos] = key;
        shard.groups[pos] = g;
        // Keep each shard's load factor under 0.7; growing rehashes only
        // this shard's slice of the key space.
        if (++shard.used * 10 >= shard.capacity * 7) {
          const size_t new_capacity = shard.capacity * 2;
          std::vector<uint64_t> new_keys(new_capacity, 0);
          std::vector<uint32_t> new_groups(new_capacity, kNoGroup);
          for (size_t s = 0; s < shard.capacity; ++s) {
            if (shard.groups[s] == kNoGroup) continue;
            size_t p = MixHash64(shard.keys[s]) & (new_capacity - 1);
            while (new_groups[p] != kNoGroup) p = (p + 1) & (new_capacity - 1);
            new_keys[p] = shard.keys[s];
            new_groups[p] = shard.groups[s];
          }
          shard.keys = std::move(new_keys);
          shard.groups = std::move(new_groups);
          shard.capacity = new_capacity;
        }
        return g;
      }
      if (shard.keys[pos] == key) return shard.groups[pos];
      pos = (pos + 1) & (shard.capacity - 1);
    }
  };

  // Legacy single-table path (radix disabled).
  size_t oa_capacity = 0;
  std::vector<uint64_t> oa_keys;
  std::vector<uint32_t> oa_groups;
  if (!dense && !radix) {
    oa_capacity = 1024;
    oa_keys.assign(oa_capacity, 0);
    oa_groups.assign(oa_capacity, kNoGroup);
  }
  auto grow_table = [&] {
    const size_t new_capacity = oa_capacity * 2;
    std::vector<uint64_t> new_keys(new_capacity, 0);
    std::vector<uint32_t> new_groups(new_capacity, kNoGroup);
    for (size_t s = 0; s < oa_capacity; ++s) {
      if (oa_groups[s] == kNoGroup) continue;
      size_t pos = MixHash64(oa_keys[s]) & (new_capacity - 1);
      while (new_groups[pos] != kNoGroup) pos = (pos + 1) & (new_capacity - 1);
      new_keys[pos] = oa_keys[s];
      new_groups[pos] = oa_groups[s];
    }
    oa_keys = std::move(new_keys);
    oa_groups = std::move(new_groups);
    oa_capacity = new_capacity;
  };
  auto oa_find_or_add = [&](uint64_t key) -> uint32_t {
    size_t pos = MixHash64(key) & (oa_capacity - 1);
    while (true) {
      if (oa_groups[pos] == kNoGroup) {
        const uint32_t g = add_group(key);
        oa_keys[pos] = key;
        oa_groups[pos] = g;
        // Keep load factor under 0.7.
        if (group_keys.size() * 10 >= oa_capacity * 7) grow_table();
        return g;
      }
      if (oa_keys[pos] == key) return oa_groups[pos];
      pos = (pos + 1) & (oa_capacity - 1);
    }
  };

  std::vector<uint64_t> key_buf(kDocIdBlockSize);
  std::vector<uint32_t> group_idx(kDocIdBlockSize);
  std::vector<uint16_t> shard_order(kDocIdBlockSize);
  docs.ForEachBlock([&](const DocIdBlock& block) {
    *scanned += block.count;
    decoder.Decode(block);
    std::fill_n(key_buf.begin(), block.count, uint64_t{0});
    for (const auto& pc : packed) {
      if (pc.slot < 0) continue;
      const uint32_t* ids = decoder.ids(pc.slot);
      for (uint32_t j = 0; j < block.count; ++j) {
        key_buf[j] |= static_cast<uint64_t>(ids[j]) << pc.shift;
      }
    }

    // Key -> group ordinal. The radix path visits docs shard-by-shard
    // (counting sort on the low key bits) so consecutive probes share one
    // cache-resident shard table; group_idx is written per doc so the
    // accumulation below runs in doc order on every path (bit-identical
    // float results across dense / radix / legacy).
    if (dense) {
      for (uint32_t j = 0; j < block.count; ++j) {
        uint32_t& slot = dense_table[key_buf[j]];
        if (slot == kNoGroup) slot = add_group(key_buf[j]);
        group_idx[j] = slot;
      }
    } else if (radix) {
      // Shard-ordered probing only pays once the combined tables outgrow
      // cache; while the table is small, probe in doc order and skip the
      // counting-sort passes. Either way group_idx is per doc, so the
      // accumulation below is doc-ordered and results stay bit-identical.
      if (group_keys.size() >= kRadixSortThreshold) {
        std::array<uint32_t, kRadixShards + 1> offsets{};
        for (uint32_t j = 0; j < block.count; ++j) {
          ++offsets[(key_buf[j] & (kRadixShards - 1)) + 1];
        }
        for (size_t s = 0; s < kRadixShards; ++s) offsets[s + 1] += offsets[s];
        for (uint32_t j = 0; j < block.count; ++j) {
          shard_order[offsets[key_buf[j] & (kRadixShards - 1)]++] =
              static_cast<uint16_t>(j);
        }
        for (uint32_t t = 0; t < block.count; ++t) {
          const uint32_t j = shard_order[t];
          const uint64_t key = key_buf[j];
          group_idx[j] =
              shard_find_or_add(shards[key & (kRadixShards - 1)], key);
        }
      } else {
        for (uint32_t j = 0; j < block.count; ++j) {
          const uint64_t key = key_buf[j];
          group_idx[j] =
              shard_find_or_add(shards[key & (kRadixShards - 1)], key);
        }
      }
    } else {
      for (uint32_t j = 0; j < block.count; ++j) {
        group_idx[j] = oa_find_or_add(key_buf[j]);
      }
    }

    for (uint32_t j = 0; j < block.count; ++j) {
      AggState* states =
          &group_states[static_cast<size_t>(group_idx[j]) * num_aggs];
      for (size_t i = 0; i < num_aggs; ++i) {
        if (bound[i].type == AggregationType::kCount) {
          ++states[i].count;
        } else {
          states[i].AddDouble(kernels[i].table != nullptr
                                  ? kernels[i].table[decoder.ids(
                                        kernels[i].slot)[j]]
                                  : bound[i].default_double);
        }
      }
    }
  });

  // Flush: keys stay packed — each group's value key is encoded straight
  // from the dictionaries into a reused buffer and states move into the
  // flat GroupTable, so the flush performs no per-group allocations (the
  // old path built a std::vector<Value> + map node + key string per group,
  // which dominated million-group queries).
  GroupTable& table = out->groups;
  table.EnsureArity(group_columns.size(), num_aggs);
  std::string key_scratch;
  for (size_t g = 0; g < group_keys.size(); ++g) {
    const uint64_t key = group_keys[g];
    auto id_of = [&](size_t i) {
      return packed[i].slot >= 0
                 ? static_cast<uint32_t>((key >> packed[i].shift) &
                                         packed[i].mask)
                 : 0;
    };
    key_scratch.clear();
    for (size_t i = 0; i < group_columns.size(); ++i) {
      const GroupByColumn& gb = group_columns[i];
      if (gb.column == nullptr) {
        AppendGroupKeyValue(gb.default_value, &key_scratch);
      } else {
        AppendDictIdKeyFragment(gb.column->dictionary(), id_of(i),
                                &key_scratch);
      }
    }
    const uint32_t slot =
        table.FindOrAdd(key_scratch, [&](std::vector<Value>* values) {
          for (size_t i = 0; i < group_columns.size(); ++i) {
            const GroupByColumn& gb = group_columns[i];
            values->push_back(gb.column == nullptr
                                  ? gb.default_value
                                  : gb.column->dictionary().ValueAt(
                                        static_cast<int>(id_of(i))));
          }
        });
    AggState* dst = table.StatesAt(slot);
    for (size_t i = 0; i < num_aggs; ++i) {
      dst[i].Merge(std::move(group_states[g * num_aggs + i]));
    }
  }
}

// --- Star-tree path --------------------------------------------------------

// Collects the AND-of-leaves predicate list from a filter tree; returns
// false when the tree has ORs across columns or nesting the star-tree
// traversal cannot serve.
bool FlattenConjunction(const FilterNode& node,
                        std::vector<const Predicate*>* out) {
  switch (node.kind) {
    case FilterNode::Kind::kLeaf:
      out->push_back(&node.predicate);
      return true;
    case FilterNode::Kind::kAnd:
      for (const auto& child : node.children) {
        if (!FlattenConjunction(child, out)) return false;
      }
      return true;
    case FilterNode::Kind::kOr:
      return false;
  }
  return false;
}

bool StarTreeEligible(const SegmentInterface& segment, const Query& query,
                      std::vector<const Predicate*>* predicates) {
  const StarTree* tree = segment.star_tree();
  if (tree == nullptr) return false;
  // Star-tree records pre-aggregate at build time; there is no way to
  // subtract a superseded document from a pre-aggregated cell, so upsert
  // segments always fall back to the raw plan.
  if (segment.valid_docs() != nullptr) return false;
  if (!query.IsAggregation()) return false;
  for (const auto& spec : query.aggregations) {
    switch (spec.type) {
      case AggregationType::kCount:
        if (!spec.column.empty() &&
            tree->MetricIndex(spec.column) < 0) {
          return false;
        }
        break;
      case AggregationType::kSum:
      case AggregationType::kMin:
      case AggregationType::kMax:
      case AggregationType::kAvg:
        if (tree->MetricIndex(spec.column) < 0) return false;
        break;
      case AggregationType::kDistinctCount:
        return false;  // Needs raw data (paper section 2).
    }
  }
  for (const auto& column : query.group_by) {
    if (tree->DimensionIndex(column) < 0) return false;
  }
  if (query.filter.has_value()) {
    if (!FlattenConjunction(*query.filter, predicates)) return false;
    for (const Predicate* pred : *predicates) {
      if (tree->DimensionIndex(pred->column) < 0) return false;
      if (pred->op == PredicateOp::kNotEq || pred->op == PredicateOp::kNotIn) {
        return false;
      }
    }
  }
  return true;
}

Status ExecuteWithStarTree(const SegmentInterface& segment,
                           const Query& query,
                           const std::vector<const Predicate*>& predicates,
                           PartialResult* out) {
  const StarTree& tree = *segment.star_tree();
  const int num_dims = static_cast<int>(tree.config().dimensions.size());

  // Build per-dimension specs: matching dict ids + group-by flags.
  std::vector<StarTree::DimensionSpec> specs(num_dims);
  for (const Predicate* pred : predicates) {
    const int dim = tree.DimensionIndex(pred->column);
    const ColumnReader* column = segment.GetColumn(pred->column);
    if (column == nullptr) {
      return Status::Internal("star-tree dimension column missing");
    }
    const DictIdMatch match = MatchDictIds(column->dictionary(), *pred);
    if (match.match_none) return Status::OK();  // Empty result.
    if (match.match_all) continue;
    StarTree::DimensionSpec& spec = specs[dim];
    std::vector<uint32_t> ids;
    if (match.contiguous) {
      if (static_cast<size_t>(match.hi - match.lo + 1) >
          kMaxStarTreeIdExpansion) {
        return Status::ResourceExhausted("star-tree id expansion too large");
      }
      for (int id = match.lo; id <= match.hi; ++id) {
        ids.push_back(static_cast<uint32_t>(id));
      }
    } else {
      ids = match.ids;
    }
    if (spec.has_predicate) {
      // Two predicates on the same dimension: intersect the id sets.
      std::vector<uint32_t> merged;
      std::set_intersection(spec.matching_ids.begin(),
                            spec.matching_ids.end(), ids.begin(), ids.end(),
                            std::back_inserter(merged));
      spec.matching_ids = std::move(merged);
      if (spec.matching_ids.empty()) return Status::OK();
    } else {
      spec.has_predicate = true;
      spec.matching_ids = std::move(ids);
    }
  }
  std::vector<int> group_dims;
  std::vector<GroupByColumn> group_columns;
  for (const auto& column : query.group_by) {
    const int dim = tree.DimensionIndex(column);
    specs[dim].group_by = true;
    group_dims.push_back(dim);
    GroupByColumn gb;
    gb.column = segment.GetColumn(column);
    gb.single_value = true;
    group_columns.push_back(gb);
  }

  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  tree.CollectRecordRanges(specs, &ranges);

  // Aggregate over the collected preaggregated records.
  std::vector<int> metric_indexes;
  for (const auto& spec : query.aggregations) {
    metric_indexes.push_back(
        spec.column.empty() ? -1 : tree.MetricIndex(spec.column));
  }

  // Predicate dims needing per-record re-checks.
  std::vector<int> check_dims;
  for (int d = 0; d < num_dims; ++d) {
    if (specs[d].has_predicate) check_dims.push_back(d);
  }

  const size_t num_aggs = query.aggregations.size();
  std::vector<AggState> totals(num_aggs);
  LocalGroups local;
  std::string key;
  uint64_t records_scanned = 0;

  for (const auto& [begin, end] : ranges) {
    for (uint32_t record = begin; record < end; ++record) {
      ++records_scanned;
      bool keep = true;
      for (int dim : check_dims) {
        const uint32_t value = tree.DimValue(dim, record);
        if (!std::binary_search(specs[dim].matching_ids.begin(),
                                specs[dim].matching_ids.end(), value)) {
          keep = false;
          break;
        }
      }
      if (!keep) continue;

      std::vector<AggState>* states = &totals;
      if (!group_dims.empty()) {
        key.clear();
        for (int dim : group_dims) {
          AppendIdToKey(tree.DimValue(dim, record), &key);
        }
        auto [it, inserted] = local.try_emplace(key);
        if (inserted) it->second.resize(num_aggs);
        states = &it->second;
      }

      for (size_t a = 0; a < num_aggs; ++a) {
        AggState& state = (*states)[a];
        const int metric = metric_indexes[a];
        switch (query.aggregations[a].type) {
          case AggregationType::kCount:
            state.count += tree.Count(record);
            break;
          case AggregationType::kSum:
          case AggregationType::kAvg:
          case AggregationType::kMin:
          case AggregationType::kMax:
            state.AddPreaggregated(tree.MetricSum(metric, record),
                                   tree.MetricMin(metric, record),
                                   tree.MetricMax(metric, record),
                                   tree.Count(record));
            break;
          case AggregationType::kDistinctCount:
            break;  // Excluded by eligibility.
        }
      }
      out->stats.docs_matched += tree.Count(record);
    }
  }

  out->stats.star_tree_records_scanned += records_scanned;
  out->stats.used_star_tree = true;

  if (group_dims.empty()) {
    if (out->aggregates.empty()) {
      out->aggregates = std::move(totals);
    } else {
      for (size_t i = 0; i < totals.size(); ++i) {
        out->aggregates[i].Merge(std::move(totals[i]));
      }
    }
  } else {
    FlushLocalGroups(group_columns, std::move(local), out);
  }
  return Status::OK();
}

// --- Metadata-only path ----------------------------------------------------

// Pure eligibility check (shared by execution and EXPLAIN planning):
// unfiltered, ungrouped COUNT(*)/MIN/MAX answerable from segment metadata.
bool MetadataOnlyEligible(const SegmentInterface& segment,
                          const Query& query) {
  // Segment metadata counts every stored row, dead or alive; an upsert
  // segment must consult its validity bitmap, so COUNT(*)/MIN/MAX go
  // through the raw plan (which intersects with the valid-docs snapshot).
  if (segment.valid_docs() != nullptr) return false;
  if (!query.IsAggregation() || query.HasGroupBy() ||
      query.filter.has_value()) {
    return false;
  }
  for (const auto& spec : query.aggregations) {
    if (spec.type == AggregationType::kCount && spec.column.empty()) continue;
    if (spec.type == AggregationType::kMin ||
        spec.type == AggregationType::kMax) {
      const ColumnReader* column = segment.GetColumn(spec.column);
      if (column == nullptr || !column->spec().single_value ||
          column->spec().type == DataType::kString ||
          segment.num_docs() == 0) {
        return false;
      }
      continue;
    }
    return false;
  }
  return true;
}

// Executes the metadata-only plan; caller checked MetadataOnlyEligible.
void ExecuteMetadataOnlyPlan(const SegmentInterface& segment,
                             const Query& query, PartialResult* out) {
  std::vector<AggState> states(query.aggregations.size());
  for (size_t i = 0; i < query.aggregations.size(); ++i) {
    const auto& spec = query.aggregations[i];
    if (spec.type == AggregationType::kCount && spec.column.empty()) {
      states[i].count = segment.num_docs();
      continue;
    }
    const ColumnReader* column = segment.GetColumn(spec.column);
    const ColumnStats& stats = column->stats();
    states[i].AddPreaggregated(0, ValueToDouble(stats.min_value),
                               ValueToDouble(stats.max_value),
                               segment.num_docs());
    states[i].sum = 0;
  }
  if (out->aggregates.empty()) {
    out->aggregates = std::move(states);
  } else {
    for (size_t i = 0; i < states.size(); ++i) {
      out->aggregates[i].Merge(std::move(states[i]));
    }
  }
  out->stats.answered_from_metadata = true;
  out->stats.docs_matched += segment.num_docs();
}

// Mirrors ExecuteWithStarTree's ResourceExhausted guard without touching
// record data, so EXPLAIN reports the raw fallback the execution would
// actually take on oversized range expansions.
bool StarTreeExpansionFits(const SegmentInterface& segment,
                           const std::vector<const Predicate*>& predicates) {
  for (const Predicate* pred : predicates) {
    const ColumnReader* column = segment.GetColumn(pred->column);
    if (column == nullptr) return true;  // Execution errors out instead.
    const DictIdMatch match = MatchDictIds(column->dictionary(), *pred);
    if (match.match_none || match.match_all) continue;
    if (match.contiguous &&
        static_cast<size_t>(match.hi - match.lo + 1) >
            kMaxStarTreeIdExpansion) {
      return false;
    }
  }
  return true;
}

// --- Raw path: selection ---------------------------------------------------

Status ExecuteSelection(const SegmentInterface& segment, const Query& query,
                        const DocIdSet& docs, PartialResult* out) {
  const Schema& schema = segment.schema();
  std::vector<std::string> columns;
  if (query.selection_columns.size() == 1 &&
      query.selection_columns[0] == "*") {
    columns = schema.FieldNames();
  } else {
    columns = query.selection_columns;
  }
  struct Projected {
    const ColumnReader* column;
    Value default_value;
  };
  std::vector<Projected> projected;
  for (const auto& name : columns) {
    const int field_index = schema.IndexOf(name);
    if (field_index < 0) {
      return Status::NotFound("unknown selection column: " + name);
    }
    Projected p;
    p.column = segment.GetColumn(name);
    if (p.column == nullptr) {
      p.default_value = schema.EffectiveDefault(field_index);
    }
    projected.push_back(std::move(p));
  }

  const bool need_all = !query.order_by.empty();
  const size_t limit = static_cast<size_t>(query.limit);
  std::vector<uint32_t> scratch;
  bool done = false;
  uint64_t scanned = 0;
  docs.ForEachRange([&](uint32_t begin, uint32_t end) {
    if (done) return;
    for (uint32_t doc = begin; doc < end && !done; ++doc) {
      ++scanned;
      std::vector<Value> row;
      row.reserve(projected.size());
      for (const auto& p : projected) {
        if (p.column == nullptr) {
          row.push_back(p.default_value);
        } else {
          row.push_back(ReadDocValue(*p.column, doc, &scratch));
        }
      }
      out->selection_rows.push_back(std::move(row));
      if (!need_all && out->selection_rows.size() >= limit) done = true;
    }
  });
  out->stats.docs_scanned += scanned;
  return Status::OK();
}

}  // namespace

bool CanUseStarTree(const SegmentInterface& segment, const Query& query) {
  std::vector<const Predicate*> predicates;
  return StarTreeEligible(segment, query, &predicates);
}

const char* SegmentPlanKindToString(SegmentPlanKind kind) {
  switch (kind) {
    case SegmentPlanKind::kMetadataOnly:
      return "metadata";
    case SegmentPlanKind::kStarTree:
      return "star-tree";
    case SegmentPlanKind::kRaw:
      return "raw";
  }
  return "unknown";
}

SegmentPlanKind PlanQueryOnSegment(const SegmentInterface& segment,
                                   const Query& query, TraceSpan* span) {
  if (MetadataOnlyEligible(segment, query)) {
    return SegmentPlanKind::kMetadataOnly;
  }
  {
    std::vector<const Predicate*> predicates;
    if (StarTreeEligible(segment, query, &predicates) &&
        StarTreeExpansionFits(segment, predicates)) {
      return SegmentPlanKind::kStarTree;
    }
  }
  if (span != nullptr && query.filter.has_value()) {
    // Report the per-column operator the raw plan would use.
    FilterEvaluator evaluator(segment, nullptr);
    std::vector<const FilterNode*> stack = {&*query.filter};
    while (!stack.empty()) {
      const FilterNode* node = stack.back();
      stack.pop_back();
      if (node->kind == FilterNode::Kind::kLeaf) {
        span->Label(
            "op:" + node->predicate.column,
            LeafStrategyToString(evaluator.ClassifyLeaf(node->predicate)));
      } else {
        for (const auto& child : node->children) stack.push_back(&child);
      }
    }
  }
  return SegmentPlanKind::kRaw;
}

Status ExecuteQueryOnSegment(const SegmentInterface& segment,
                             const Query& query, PartialResult* out) {
  return ExecuteQueryOnSegment(segment, query, ScanOptions{}, out);
}

Status ExecuteQueryOnSegment(const SegmentInterface& segment,
                             const Query& query, const ScanOptions& options,
                             PartialResult* out) {
  return ExecuteQueryOnSegment(segment, query, options, nullptr, out);
}

Status ExecuteQueryOnSegment(const SegmentInterface& segment,
                             const Query& query, const ScanOptions& options,
                             TraceSpan* span, PartialResult* out) {
  // Receipt phase clock: advanced at each phase boundary so plan / filter /
  // scan / agg time is accounted unconditionally (a handful of steady-clock
  // reads per segment, TRACE or not).
  int64_t phase_mark = TraceSpan::NowMicros();
  // Upsert segments: snapshot the invalid-docs set once, up front. The
  // whole execution then sees one consistent validity view regardless of
  // concurrent invalidations on sealed segments.
  const ValidDocsTracker* tracker = segment.valid_docs();
  std::shared_ptr<const RoaringBitmap> invalid;
  uint64_t live_docs = segment.num_docs();
  if (tracker != nullptr) {
    invalid = tracker->InvalidSnapshot();
    if (invalid != nullptr) live_docs -= invalid->Cardinality();
    if (span != nullptr) {
      span->Label("upsert", "on");
      span->Annotate("valid_docs", static_cast<int64_t>(live_docs));
    }
  }
  out->total_docs += live_docs;
  out->stats.segments_queried += 1;

  // 1. Metadata-only plan.
  if (MetadataOnlyEligible(segment, query)) {
    if (span != nullptr) span->Label("plan", "metadata");
    const int64_t exec_mark = TraceSpan::NowMicros();
    out->receipt.plan_micros += exec_mark - phase_mark;
    ExecuteMetadataOnlyPlan(segment, query, out);
    out->receipt.agg_micros += TraceSpan::NowMicros() - exec_mark;
    return Status::OK();
  }

  // 2. Star-tree plan.
  {
    std::vector<const Predicate*> predicates;
    if (StarTreeEligible(segment, query, &predicates)) {
      TraceSpan star_span;
      if (span != nullptr) star_span = TraceSpan::Open("star-tree");
      const int64_t exec_mark = TraceSpan::NowMicros();
      out->receipt.plan_micros += exec_mark - phase_mark;
      const uint64_t records_before = out->stats.star_tree_records_scanned;
      Status st = ExecuteWithStarTree(segment, query, predicates, out);
      phase_mark = TraceSpan::NowMicros();
      out->receipt.agg_micros += phase_mark - exec_mark;
      // ResourceExhausted -> predicate expansion too large; fall through to
      // the raw plan.
      if (!st.IsQuotaExceeded() &&
          st.code() != StatusCode::kResourceExhausted) {
        if (span != nullptr) {
          span->Label("plan", "star-tree");
          star_span.Annotate(
              "records_scanned",
              static_cast<int64_t>(out->stats.star_tree_records_scanned -
                                   records_before));
          star_span.Close();
          span->AddChild(std::move(star_span));
        }
        return st;
      }
      if (span != nullptr) span->Label("star_tree_fallback", "id-expansion");
    }
  }

  // 3. Raw plan.
  if (span != nullptr) span->Label("plan", "raw");
  TraceSpan filter_span;
  if (span != nullptr) filter_span = TraceSpan::Open("filter");
  FilterEvaluator evaluator(segment, &out->stats);
  if (span != nullptr) evaluator.set_trace_span(&filter_span);
  // Upsert: bound the filter domain by the validity snapshot, so whatever
  // physical operators run, no superseded row can reach aggregation or
  // selection.
  std::optional<DocIdSet> valid_domain;
  if (tracker != nullptr && invalid != nullptr && !invalid->Empty()) {
    valid_domain = DocIdSet::FromBitmap(invalid->Not(segment.num_docs()),
                                        segment.num_docs());
  }
  const int64_t filter_mark = TraceSpan::NowMicros();
  out->receipt.plan_micros += filter_mark - phase_mark;
  PINOT_ASSIGN_OR_RETURN(
      DocIdSet docs,
      evaluator.Evaluate(query.filter,
                         valid_domain ? &*valid_domain : nullptr));
  out->receipt.filter_micros += TraceSpan::NowMicros() - filter_mark;
  out->stats.docs_matched += docs.Cardinality();
  if (span != nullptr) {
    filter_span.Annotate("docs_matched",
                         static_cast<int64_t>(docs.Cardinality()));
    filter_span.Close();
    span->AddChild(std::move(filter_span));
  }

  if (!query.IsAggregation()) {
    TraceSpan select_span;
    if (span != nullptr) select_span = TraceSpan::Open("selection");
    const int64_t scan_mark = TraceSpan::NowMicros();
    Status st = ExecuteSelection(segment, query, docs, out);
    out->receipt.scan_micros += TraceSpan::NowMicros() - scan_mark;
    if (span != nullptr) {
      select_span.Close();
      span->AddChild(std::move(select_span));
    }
    return st;
  }

  std::vector<BoundAggregation> bound;
  PINOT_RETURN_NOT_OK(BindAggregations(segment, query, &bound));

  if (!query.HasGroupBy()) {
    TraceSpan agg_span;
    if (span != nullptr) agg_span = TraceSpan::Open("aggregate");
    const int64_t agg_mark = TraceSpan::NowMicros();
    std::vector<AggState> states(bound.size());
    // COUNT-only queries need no per-document work.
    bool count_only = true;
    for (const auto& b : bound) {
      if (b.type != AggregationType::kCount) {
        count_only = false;
        break;
      }
    }
    if (count_only) {
      if (span != nullptr) agg_span.Label("kernel", "count-only");
      const int64_t matched = static_cast<int64_t>(docs.Cardinality());
      for (auto& state : states) state.count = matched;
    } else if (options.batched_decode && AggsBatchable(bound)) {
      if (span != nullptr) agg_span.Label("kernel", "batched");
      uint64_t scanned = 0;
      ExecuteAggBatched(bound, docs, &states, &scanned);
      out->stats.docs_scanned += scanned;
    } else {
      if (span != nullptr) agg_span.Label("kernel", "per-doc");
      std::vector<uint32_t> scratch;
      uint64_t scanned = 0;
      docs.ForEachRange([&](uint32_t begin, uint32_t end) {
        scanned += end - begin;
        for (uint32_t doc = begin; doc < end; ++doc) {
          for (size_t i = 0; i < bound.size(); ++i) {
            bound[i].Accumulate(doc, &states[i], &scratch);
          }
        }
      });
      out->stats.docs_scanned += scanned;
    }
    if (out->aggregates.empty()) {
      out->aggregates = std::move(states);
    } else {
      for (size_t i = 0; i < states.size(); ++i) {
        out->aggregates[i].Merge(std::move(states[i]));
      }
    }
    out->receipt.agg_micros += TraceSpan::NowMicros() - agg_mark;
    if (span != nullptr) {
      agg_span.Close();
      span->AddChild(std::move(agg_span));
    }
    return Status::OK();
  }

  // Group-by over raw documents.
  const Schema& schema = segment.schema();
  std::vector<GroupByColumn> group_columns;
  for (const auto& name : query.group_by) {
    const int field_index = schema.IndexOf(name);
    if (field_index < 0) {
      return Status::NotFound("unknown group-by column: " + name);
    }
    GroupByColumn gb;
    gb.column = segment.GetColumn(name);
    gb.single_value = schema.field(field_index).single_value;
    if (gb.column == nullptr) {
      gb.default_value = schema.EffectiveDefault(field_index);
    }
    group_columns.push_back(std::move(gb));
  }

  TraceSpan groupby_span;
  if (span != nullptr) groupby_span = TraceSpan::Open("group-by");
  const int64_t groupby_mark = TraceSpan::NowMicros();

  // Packed-key fast path: single-value group columns whose dict-id bit
  // widths sum to <= 64 bits skip string keys and the node-based hash map
  // entirely. Falls back to the string-key path for multi-value columns,
  // oversized key spaces, and DISTINCTCOUNT.
  bool grouped = false;
  {
    int total_bits = 0;
    if (options.batched_decode && options.packed_groupby &&
        AggsBatchable(bound) &&
        PackedGroupByEligible(group_columns, &total_bits)) {
      uint64_t scanned = 0;
      ExecutePackedGroupBy(bound, group_columns, options, docs,
                           span != nullptr ? &groupby_span : nullptr, &scanned,
                           out);
      out->stats.docs_scanned += scanned;
      grouped = true;
    }
  }

  if (!grouped) {
    if (span != nullptr) groupby_span.Label("group_table", "string");
    LocalGroups local;
    std::string key;
    std::vector<std::vector<uint32_t>> mv_scratch(group_columns.size());
    std::vector<uint32_t> scratch;
    const size_t num_aggs = bound.size();
    uint64_t scanned = 0;
    docs.ForEachRange([&](uint32_t begin, uint32_t end) {
      scanned += end - begin;
      for (uint32_t doc = begin; doc < end; ++doc) {
        key.clear();
        ForEachGroupKey(group_columns, doc, 0, &key, &mv_scratch,
                        [&](const std::string& group_key) {
                          auto [it, inserted] = local.try_emplace(group_key);
                          if (inserted) it->second.resize(num_aggs);
                          for (size_t i = 0; i < num_aggs; ++i) {
                            bound[i].Accumulate(doc, &it->second[i], &scratch);
                          }
                        });
      }
    });
    out->stats.docs_scanned += scanned;
    FlushLocalGroups(group_columns, std::move(local), out);
  }
  out->receipt.agg_micros += TraceSpan::NowMicros() - groupby_mark;
  if (span != nullptr) {
    groupby_span.Close();
    span->AddChild(std::move(groupby_span));
  }
  return Status::OK();
}

}  // namespace pinot
