#ifndef PINOT_TENANT_TOKEN_BUCKET_H_
#define PINOT_TENANT_TOKEN_BUCKET_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "common/status.h"
#include "metrics/metrics.h"

namespace pinot {

/// Token bucket used to share query resources between colocated tenants
/// (paper section 4.5): each query deducts tokens proportional to its
/// execution time; when a tenant's bucket is empty its queries queue until
/// the bucket refills. The slow refill "allow[s] for short transient spikes
/// in query loads but prevent[s] a misbehaving tenant from exhausting
/// resources for other colocated tenants".
class TokenBucket {
 public:
  /// `capacity` is the burst size in tokens; `refill_per_second` the steady
  /// rate. One token conventionally corresponds to one millisecond of query
  /// execution time.
  TokenBucket(double capacity, double refill_per_second, Clock* clock);

  /// True when the bucket currently holds a positive balance (queries are
  /// admitted while the balance is positive; the actual charge is deducted
  /// after execution, so a burst can drive the balance negative).
  bool HasTokens();

  /// Deducts `tokens` (e.g. the query's execution milliseconds). May drive
  /// the balance negative.
  void Deduct(double tokens);

  /// Current balance after refill accrual.
  double Available();

  /// Milliseconds until the balance becomes positive again (0 when it
  /// already is).
  int64_t MillisUntilAvailable();

 private:
  void RefillLocked();

  const double capacity_;
  const double refill_per_ms_;
  Clock* const clock_;
  std::mutex mutex_;
  double tokens_;
  int64_t last_refill_millis_;
};

/// Per-tenant admission control for a server's query scheduler. Queries for
/// a tenant whose bucket is exhausted wait (bounded) until tokens accrue.
///
/// Buckets are held by shared_ptr: AdmitQuery may block for seconds on an
/// exhausted bucket, and ConfigureTenant can replace that bucket
/// concurrently — the admitting thread keeps its own reference alive
/// (instead of spinning on a raw pointer freed under it) and re-resolves
/// the tenant each round so a live reconfigure takes effect.
class TenantQuotaManager {
 public:
  struct TenantLimits {
    double burst_tokens = 500;        // ~500ms of burst execution.
    double refill_per_second = 100;   // ~10% of one core steady-state.
  };

  explicit TenantQuotaManager(Clock* clock,
                              MetricsRegistry* metrics = nullptr)
      : clock_(clock),
        metrics_(metrics != nullptr ? metrics : MetricsRegistry::Default()) {}

  /// Registers (or reconfigures) a tenant.
  void ConfigureTenant(const std::string& tenant, TenantLimits limits);

  /// Blocks until the tenant's bucket admits a query or `timeout_millis`
  /// elapses. Returns Timeout on expiry, OK on admission. Unknown tenants
  /// are admitted unconditionally (no quota configured).
  Status AdmitQuery(const std::string& tenant, int64_t timeout_millis);

  /// Charges `execution_millis` of work to the tenant.
  void RecordExecution(const std::string& tenant, double execution_millis);

  bool HasTenant(const std::string& tenant) const;

 private:
  std::shared_ptr<TokenBucket> GetBucket(const std::string& tenant) const;

  Clock* const clock_;
  MetricsRegistry* const metrics_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<TokenBucket>> buckets_;
};

}  // namespace pinot

#endif  // PINOT_TENANT_TOKEN_BUCKET_H_
