#include "bitmap/roaring.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace pinot {

using bitmap_internal::ArrayContainer;
using bitmap_internal::BitsetContainer;
using bitmap_internal::kArrayContainerMax;
using bitmap_internal::RunContainer;

namespace {

inline uint16_t HighBits(uint32_t v) { return static_cast<uint16_t>(v >> 16); }
inline uint16_t LowBits(uint32_t v) { return static_cast<uint16_t>(v & 0xffff); }

inline void BitsetSet(BitsetContainer* b, uint16_t low) {
  uint64_t& word = b->words[low >> 6];
  const uint64_t mask = uint64_t{1} << (low & 63);
  if ((word & mask) == 0) {
    word |= mask;
    ++b->cardinality;
  }
}

inline void BitsetClear(BitsetContainer* b, uint16_t low) {
  uint64_t& word = b->words[low >> 6];
  const uint64_t mask = uint64_t{1} << (low & 63);
  if ((word & mask) != 0) {
    word &= ~mask;
    --b->cardinality;
  }
}

inline bool BitsetTest(const BitsetContainer& b, uint16_t low) {
  return (b.words[low >> 6] >> (low & 63)) & 1;
}

// Bit mask covering bits [lo, hi] inclusive within the word span [lo>>6,
// hi>>6] for word index `w`.
inline uint64_t RangeWordMask(uint32_t w, uint32_t lo, uint32_t hi) {
  uint64_t mask = ~uint64_t{0};
  if (w == (lo >> 6)) mask &= ~uint64_t{0} << (lo & 63);
  if (w == (hi >> 6)) mask &= ~uint64_t{0} >> (63 - (hi & 63));
  return mask;
}

// Sets bits [lo, hi] inclusive within the bitset.
void BitsetSetRange(BitsetContainer* b, uint32_t lo, uint32_t hi) {
  for (uint32_t w = lo >> 6; w <= (hi >> 6); ++w) {
    const uint64_t mask = RangeWordMask(w, lo, hi);
    b->cardinality += static_cast<uint32_t>(
        std::popcount(mask & ~b->words[w]));
    b->words[w] |= mask;
  }
}

// Clears bits [lo, hi] inclusive within the bitset.
void BitsetClearRange(BitsetContainer* b, uint32_t lo, uint32_t hi) {
  for (uint32_t w = lo >> 6; w <= (hi >> 6); ++w) {
    const uint64_t mask = RangeWordMask(w, lo, hi);
    b->cardinality -= static_cast<uint32_t>(
        std::popcount(mask & b->words[w]));
    b->words[w] &= ~mask;
  }
}

uint32_t BitsetRecount(BitsetContainer* b) {
  uint32_t total = 0;
  for (uint64_t word : b->words) {
    total += static_cast<uint32_t>(std::popcount(word));
  }
  b->cardinality = total;
  return total;
}

uint32_t RunContainerCardinality(const RunContainer& rc) {
  uint32_t total = 0;
  for (const auto& run : rc.runs) total += static_cast<uint32_t>(run.length) + 1;
  return total;
}

bool RunContainerContains(const RunContainer& rc, uint16_t low) {
  // Binary search for the last run with start <= low.
  int lo = 0, hi = static_cast<int>(rc.runs.size()) - 1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    const auto& run = rc.runs[mid];
    if (run.start > low) {
      hi = mid - 1;
    } else if (static_cast<uint32_t>(run.start) + run.length < low) {
      lo = mid + 1;
    } else {
      return true;
    }
  }
  return false;
}

// --- Array kernels -------------------------------------------------------

/// Size skew at which the intersection gallops through the larger array
/// (binary probes from a moving frontier) instead of stepping linearly.
/// CRoaring uses the same order of magnitude for its "skewed" kernels.
constexpr size_t kGallopSkew = 32;

// Intersects `small` into `large` by galloping: for each value of the
// smaller array, exponentially grow a probe window from the last match
// position, then binary-search inside it. O(|small| * log(skew)).
void GallopingIntersect(const std::vector<uint16_t>& small,
                        const std::vector<uint16_t>& large,
                        std::vector<uint16_t>* out) {
  size_t pos = 0;
  for (uint16_t v : small) {
    size_t step = 1;
    size_t lo = pos;
    while (lo + step < large.size() && large[lo + step] < v) {
      lo += step;
      step <<= 1;
    }
    const size_t hi = std::min(lo + step + 1, large.size());
    const auto it =
        std::lower_bound(large.begin() + lo, large.begin() + hi, v);
    pos = static_cast<size_t>(it - large.begin());
    if (pos < large.size() && large[pos] == v) {
      out->push_back(v);
      ++pos;
    }
    if (pos >= large.size()) break;
  }
}

void ArrayArrayAnd(const ArrayContainer& a, const ArrayContainer& b,
                   std::vector<uint16_t>* out) {
  const auto& small = a.values.size() <= b.values.size() ? a.values : b.values;
  const auto& large = a.values.size() <= b.values.size() ? b.values : a.values;
  if (small.empty()) return;
  out->reserve(small.size());
  if (large.size() / small.size() >= kGallopSkew) {
    GallopingIntersect(small, large, out);
  } else {
    std::set_intersection(small.begin(), small.end(), large.begin(),
                          large.end(), std::back_inserter(*out));
  }
}

// --- Run kernels ---------------------------------------------------------

// Two-pointer intersection of sorted run lists.
RunContainer RunRunAnd(const RunContainer& a, const RunContainer& b) {
  RunContainer out;
  size_t i = 0, j = 0;
  while (i < a.runs.size() && j < b.runs.size()) {
    const uint32_t as = a.runs[i].start;
    const uint32_t ae = as + a.runs[i].length;
    const uint32_t bs = b.runs[j].start;
    const uint32_t be = bs + b.runs[j].length;
    const uint32_t lo = std::max(as, bs);
    const uint32_t hi = std::min(ae, be);
    if (lo <= hi) {
      out.runs.push_back({static_cast<uint16_t>(lo),
                          static_cast<uint16_t>(hi - lo)});
    }
    if (ae < be) {
      ++i;
    } else if (be < ae) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return out;
}

// Merge-union of sorted run lists, coalescing touching runs.
RunContainer RunRunOr(const RunContainer& a, const RunContainer& b) {
  RunContainer out;
  size_t i = 0, j = 0;
  bool have = false;
  uint32_t cur_start = 0, cur_end = 0;
  auto feed = [&](uint32_t s, uint32_t e) {
    if (have && s <= cur_end + 1) {
      cur_end = std::max(cur_end, e);
      return;
    }
    if (have) {
      out.runs.push_back({static_cast<uint16_t>(cur_start),
                          static_cast<uint16_t>(cur_end - cur_start)});
    }
    cur_start = s;
    cur_end = e;
    have = true;
  };
  while (i < a.runs.size() || j < b.runs.size()) {
    const bool take_a =
        j >= b.runs.size() ||
        (i < a.runs.size() && a.runs[i].start <= b.runs[j].start);
    const auto& run = take_a ? a.runs[i++] : b.runs[j++];
    feed(run.start, static_cast<uint32_t>(run.start) + run.length);
  }
  if (have) {
    out.runs.push_back({static_cast<uint16_t>(cur_start),
                        static_cast<uint16_t>(cur_end - cur_start)});
  }
  return out;
}

// Union of a run list with sorted points, coalescing as it merges.
RunContainer RunPointsOr(const RunContainer& a,
                         const std::vector<uint16_t>& points) {
  RunContainer b;
  b.runs.reserve(points.size());
  for (uint16_t v : points) b.runs.push_back({v, 0});
  return RunRunOr(a, b);
}

// Two-pointer subtraction a \ b over sorted run lists.
RunContainer RunRunAndNot(const RunContainer& a, const RunContainer& b) {
  RunContainer out;
  size_t j = 0;
  for (const auto& arun : a.runs) {
    uint32_t cur = arun.start;
    const uint32_t end = static_cast<uint32_t>(arun.start) + arun.length;
    // Skip subtrahend runs entirely before this run; they cannot affect
    // later runs either since both lists are ascending.
    while (j < b.runs.size() &&
           static_cast<uint32_t>(b.runs[j].start) + b.runs[j].length < cur) {
      ++j;
    }
    size_t k = j;
    while (cur <= end && k < b.runs.size() && b.runs[k].start <= end) {
      const uint32_t bs = b.runs[k].start;
      const uint32_t be = bs + b.runs[k].length;
      if (bs > cur) {
        out.runs.push_back({static_cast<uint16_t>(cur),
                            static_cast<uint16_t>(bs - 1 - cur)});
      }
      if (be >= end) {
        cur = end + 1;
        break;
      }
      cur = std::max(cur, be + 1);
      ++k;
    }
    if (cur <= end) {
      out.runs.push_back({static_cast<uint16_t>(cur),
                          static_cast<uint16_t>(end - cur)});
    }
  }
  return out;
}

// Subtracts sorted points from a run list (splitting runs at each point).
RunContainer RunMinusPoints(const RunContainer& a,
                            const std::vector<uint16_t>& points) {
  RunContainer b;
  b.runs.reserve(points.size());
  for (uint16_t v : points) b.runs.push_back({v, 0});
  return RunRunAndNot(a, b);
}

// Values of the sorted array that fall inside any run (two-pointer).
void ArrayRunAnd(const std::vector<uint16_t>& values, const RunContainer& rc,
                 std::vector<uint16_t>* out) {
  size_t j = 0;
  for (uint16_t v : values) {
    while (j < rc.runs.size() &&
           static_cast<uint32_t>(rc.runs[j].start) + rc.runs[j].length < v) {
      ++j;
    }
    if (j == rc.runs.size()) break;
    if (rc.runs[j].start <= v) out->push_back(v);
  }
}

// Values of the sorted array outside every run (two-pointer).
void ArrayMinusRuns(const std::vector<uint16_t>& values, const RunContainer& rc,
                    std::vector<uint16_t>* out) {
  size_t j = 0;
  for (uint16_t v : values) {
    while (j < rc.runs.size() &&
           static_cast<uint32_t>(rc.runs[j].start) + rc.runs[j].length < v) {
      ++j;
    }
    if (j == rc.runs.size() || rc.runs[j].start > v) out->push_back(v);
  }
}

}  // namespace

RoaringBitmap::RoaringBitmap(const RoaringBitmap& other) {
  *this = other;
}

RoaringBitmap& RoaringBitmap::operator=(const RoaringBitmap& other) {
  if (this == &other) return *this;
  containers_.clear();
  containers_.reserve(other.containers_.size());
  for (const auto& src : other.containers_) {
    Entry entry;
    entry.key = src.key;
    entry.container = CloneContainer(src.container);
    containers_.push_back(std::move(entry));
  }
  return *this;
}

RoaringBitmap::Container RoaringBitmap::CloneContainer(const Container& src) {
  Container c;
  c.kind = src.kind;
  c.array = src.array;
  c.run = src.run;
  if (src.bitset != nullptr) {
    c.bitset = std::make_unique<BitsetContainer>(*src.bitset);
  }
  return c;
}

uint32_t RoaringBitmap::Container::Cardinality() const {
  switch (kind) {
    case Kind::kArray:
      return static_cast<uint32_t>(array.values.size());
    case Kind::kBitset:
      return bitset->cardinality;
    case Kind::kRun:
      return RunContainerCardinality(run);
  }
  return 0;
}

bool RoaringBitmap::Container::Contains(uint16_t low) const {
  switch (kind) {
    case Kind::kArray:
      return std::binary_search(array.values.begin(), array.values.end(), low);
    case Kind::kBitset:
      return BitsetTest(*bitset, low);
    case Kind::kRun:
      return RunContainerContains(run, low);
  }
  return false;
}

int RoaringBitmap::FindEntry(uint16_t key) const {
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Entry& e, uint16_t k) { return e.key < k; });
  if (it != containers_.end() && it->key == key) {
    return static_cast<int>(it - containers_.begin());
  }
  return -1;
}

RoaringBitmap::Entry& RoaringBitmap::GetOrCreateEntry(uint16_t key) {
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Entry& e, uint16_t k) { return e.key < k; });
  if (it != containers_.end() && it->key == key) return *it;
  Entry entry;
  entry.key = key;
  return *containers_.insert(it, std::move(entry));
}

RoaringBitmap RoaringBitmap::FromValues(const std::vector<uint32_t>& values) {
  std::vector<uint32_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  RoaringBitmap bm;
  size_t i = 0;
  while (i < sorted.size()) {
    const uint16_t key = HighBits(sorted[i]);
    size_t j = i;
    while (j < sorted.size() && HighBits(sorted[j]) == key) ++j;
    Entry entry;
    entry.key = key;
    const size_t count = j - i;
    if (count <= kArrayContainerMax) {
      entry.container.kind = Kind::kArray;
      entry.container.array.values.reserve(count);
      for (size_t k = i; k < j; ++k) {
        entry.container.array.values.push_back(LowBits(sorted[k]));
      }
    } else {
      entry.container.kind = Kind::kBitset;
      entry.container.bitset = std::make_unique<BitsetContainer>();
      for (size_t k = i; k < j; ++k) {
        BitsetSet(entry.container.bitset.get(), LowBits(sorted[k]));
      }
    }
    bm.containers_.push_back(std::move(entry));
    i = j;
  }
  return bm;
}

RoaringBitmap RoaringBitmap::FromRange(uint32_t begin, uint32_t end) {
  RoaringBitmap bm;
  bm.AddRange(begin, end);
  return bm;
}

void RoaringBitmap::Add(uint32_t value) {
  Entry& entry = GetOrCreateEntry(HighBits(value));
  Container& c = entry.container;
  const uint16_t low = LowBits(value);
  switch (c.kind) {
    case Kind::kArray: {
      auto it = std::lower_bound(c.array.values.begin(), c.array.values.end(),
                                 low);
      if (it != c.array.values.end() && *it == low) return;
      c.array.values.insert(it, low);
      if (c.array.values.size() > kArrayContainerMax) {
        auto bitset = std::make_unique<BitsetContainer>();
        for (uint16_t v : c.array.values) BitsetSet(bitset.get(), v);
        c.kind = Kind::kBitset;
        c.bitset = std::move(bitset);
        c.array.values.clear();
        c.array.values.shrink_to_fit();
      }
      return;
    }
    case Kind::kBitset:
      BitsetSet(c.bitset.get(), low);
      return;
    case Kind::kRun: {
      if (RunContainerContains(c.run, low)) return;
      // Adds after RunOptimize are rare; convert back to a bitset.
      auto bitset = std::make_unique<BitsetContainer>();
      ToBitset(c, bitset.get());
      BitsetSet(bitset.get(), low);
      c = FromBitset(std::move(*bitset));
      return;
    }
  }
}

void RoaringBitmap::AddRange(uint32_t begin, uint32_t end) {
  if (begin >= end) return;
  const uint32_t last = end - 1;
  for (uint32_t key = HighBits(begin); ; ++key) {
    const uint32_t chunk_base = static_cast<uint32_t>(key) << 16;
    const uint32_t lo = std::max(begin, chunk_base) - chunk_base;
    const uint32_t hi = std::min(last, chunk_base + 0xffff) - chunk_base;
    Entry& entry = GetOrCreateEntry(static_cast<uint16_t>(key));
    Container& c = entry.container;
    if (c.kind == Kind::kArray && c.array.values.empty()) {
      // Fresh chunk: store as a single run.
      c.kind = Kind::kRun;
      c.run.runs.push_back({static_cast<uint16_t>(lo),
                            static_cast<uint16_t>(hi - lo)});
    } else {
      auto bitset = std::make_unique<BitsetContainer>();
      ToBitset(c, bitset.get());
      BitsetSetRange(bitset.get(), lo, hi);
      c = FromBitset(std::move(*bitset));
    }
    if (key == HighBits(last)) break;
  }
}

bool RoaringBitmap::Contains(uint32_t value) const {
  const int idx = FindEntry(HighBits(value));
  if (idx < 0) return false;
  return containers_[idx].container.Contains(LowBits(value));
}

uint64_t RoaringBitmap::Cardinality() const {
  uint64_t total = 0;
  for (const auto& entry : containers_) {
    total += entry.container.Cardinality();
  }
  return total;
}

uint32_t RoaringBitmap::Minimum() const {
  assert(!containers_.empty());
  const Entry& entry = containers_.front();
  const uint32_t base = static_cast<uint32_t>(entry.key) << 16;
  const Container& c = entry.container;
  switch (c.kind) {
    case Kind::kArray:
      return base + c.array.values.front();
    case Kind::kRun:
      return base + c.run.runs.front().start;
    case Kind::kBitset:
      for (size_t w = 0; w < c.bitset->words.size(); ++w) {
        if (c.bitset->words[w] != 0) {
          return base + static_cast<uint32_t>(w * 64 +
                                              std::countr_zero(c.bitset->words[w]));
        }
      }
  }
  assert(false);
  return 0;
}

uint32_t RoaringBitmap::Maximum() const {
  assert(!containers_.empty());
  const Entry& entry = containers_.back();
  const uint32_t base = static_cast<uint32_t>(entry.key) << 16;
  const Container& c = entry.container;
  switch (c.kind) {
    case Kind::kArray:
      return base + c.array.values.back();
    case Kind::kRun:
      return base + static_cast<uint32_t>(c.run.runs.back().start) +
             c.run.runs.back().length;
    case Kind::kBitset:
      for (size_t w = c.bitset->words.size(); w-- > 0;) {
        if (c.bitset->words[w] != 0) {
          return base + static_cast<uint32_t>(
                            w * 64 + 63 - std::countl_zero(c.bitset->words[w]));
        }
      }
  }
  assert(false);
  return 0;
}

void RoaringBitmap::ToBitset(const Container& c, BitsetContainer* out) {
  switch (c.kind) {
    case Kind::kArray:
      for (uint16_t v : c.array.values) BitsetSet(out, v);
      return;
    case Kind::kBitset:
      *out = *c.bitset;
      return;
    case Kind::kRun:
      for (const auto& run : c.run.runs) {
        BitsetSetRange(out, run.start,
                       static_cast<uint32_t>(run.start) + run.length);
      }
      return;
  }
}

RoaringBitmap::Container RoaringBitmap::FromBitset(BitsetContainer bitset) {
  Container c;
  if (bitset.cardinality <= kArrayContainerMax) {
    c.kind = Kind::kArray;
    c.array.values.reserve(bitset.cardinality);
    for (size_t w = 0; w < bitset.words.size(); ++w) {
      uint64_t word = bitset.words[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        c.array.values.push_back(static_cast<uint16_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
  } else {
    c.kind = Kind::kBitset;
    c.bitset = std::make_unique<BitsetContainer>(std::move(bitset));
  }
  return c;
}

RoaringBitmap::Container RoaringBitmap::NormalizedFromRuns(RunContainer rc) {
  const uint32_t cardinality = RunContainerCardinality(rc);
  const uint32_t num_runs = static_cast<uint32_t>(rc.runs.size());
  Container c;
  if (cardinality == 0) return c;
  if (cardinality <= kArrayContainerMax) {
    // Array costs 2 bytes/value, runs 4 bytes/run.
    if (num_runs * 2 < cardinality) {
      c.kind = Kind::kRun;
      c.run = std::move(rc);
      return c;
    }
    c.kind = Kind::kArray;
    c.array.values.reserve(cardinality);
    for (const auto& run : rc.runs) {
      const uint32_t end = static_cast<uint32_t>(run.start) + run.length;
      for (uint32_t v = run.start; v <= end; ++v) {
        c.array.values.push_back(static_cast<uint16_t>(v));
      }
    }
    return c;
  }
  // Dense: runs win over the fixed 8192-byte bitset when 4*runs < 8192.
  if (num_runs * 4 < 8192) {
    c.kind = Kind::kRun;
    c.run = std::move(rc);
    return c;
  }
  auto bitset = std::make_unique<BitsetContainer>();
  for (const auto& run : rc.runs) {
    BitsetSetRange(bitset.get(), run.start,
                   static_cast<uint32_t>(run.start) + run.length);
  }
  c.kind = Kind::kBitset;
  c.bitset = std::move(bitset);
  return c;
}

RoaringBitmap::Container RoaringBitmap::AndContainers(const Container& a,
                                                      const Container& b) {
  // Run-aware pairings first: operate on the runs directly instead of
  // materializing a 65Ki bitset for the run side.
  if (a.kind == Kind::kRun && b.kind == Kind::kRun) {
    return NormalizedFromRuns(RunRunAnd(a.run, b.run));
  }
  if (a.kind == Kind::kRun || b.kind == Kind::kRun) {
    const Container& rc = a.kind == Kind::kRun ? a : b;
    const Container& other = a.kind == Kind::kRun ? b : a;
    if (other.kind == Kind::kArray) {
      Container c;
      c.kind = Kind::kArray;
      ArrayRunAnd(other.array.values, rc.run, &c.array.values);
      return c;
    }
    // run ∧ bitset: copy only the words each run overlaps.
    BitsetContainer out;
    for (const auto& run : rc.run.runs) {
      const uint32_t lo = run.start;
      const uint32_t hi = static_cast<uint32_t>(run.start) + run.length;
      for (uint32_t w = lo >> 6; w <= (hi >> 6); ++w) {
        out.words[w] |= other.bitset->words[w] & RangeWordMask(w, lo, hi);
      }
    }
    BitsetRecount(&out);
    return FromBitset(std::move(out));
  }
  // Array ∧ array: galloping when skewed, linear merge otherwise.
  if (a.kind == Kind::kArray && b.kind == Kind::kArray) {
    Container c;
    c.kind = Kind::kArray;
    ArrayArrayAnd(a.array, b.array, &c.array.values);
    return c;
  }
  // Array ∧ bitset: probe one bit per array value.
  if (a.kind == Kind::kArray || b.kind == Kind::kArray) {
    const Container& arr = a.kind == Kind::kArray ? a : b;
    const Container& bits = a.kind == Kind::kArray ? b : a;
    Container c;
    c.kind = Kind::kArray;
    c.array.values.reserve(arr.array.values.size());
    for (uint16_t v : arr.array.values) {
      if (BitsetTest(*bits.bitset, v)) c.array.values.push_back(v);
    }
    return c;
  }
  // Bitset ∧ bitset: word-at-a-time.
  BitsetContainer out;
  for (size_t w = 0; w < out.words.size(); ++w) {
    out.words[w] = a.bitset->words[w] & b.bitset->words[w];
    out.cardinality += static_cast<uint32_t>(std::popcount(out.words[w]));
  }
  return FromBitset(std::move(out));
}

RoaringBitmap::Container RoaringBitmap::OrContainers(const Container& a,
                                                     const Container& b) {
  if (a.kind == Kind::kRun && b.kind == Kind::kRun) {
    return NormalizedFromRuns(RunRunOr(a.run, b.run));
  }
  if (a.kind == Kind::kRun || b.kind == Kind::kRun) {
    const Container& rc = a.kind == Kind::kRun ? a : b;
    const Container& other = a.kind == Kind::kRun ? b : a;
    if (other.kind == Kind::kArray) {
      return NormalizedFromRuns(RunPointsOr(rc.run, other.array.values));
    }
    // run ∨ bitset: copy the bitset once, then set the runs into it.
    BitsetContainer out = *other.bitset;
    for (const auto& run : rc.run.runs) {
      BitsetSetRange(&out, run.start,
                     static_cast<uint32_t>(run.start) + run.length);
    }
    return FromBitset(std::move(out));
  }
  if (a.kind == Kind::kArray && b.kind == Kind::kArray) {
    if (a.array.values.size() + b.array.values.size() <= kArrayContainerMax) {
      Container c;
      c.kind = Kind::kArray;
      std::set_union(a.array.values.begin(), a.array.values.end(),
                     b.array.values.begin(), b.array.values.end(),
                     std::back_inserter(c.array.values));
      return c;
    }
    BitsetContainer out;
    for (uint16_t v : a.array.values) BitsetSet(&out, v);
    for (uint16_t v : b.array.values) BitsetSet(&out, v);
    return FromBitset(std::move(out));
  }
  if (a.kind == Kind::kArray || b.kind == Kind::kArray) {
    const Container& arr = a.kind == Kind::kArray ? a : b;
    const Container& bits = a.kind == Kind::kArray ? b : a;
    BitsetContainer out = *bits.bitset;
    for (uint16_t v : arr.array.values) BitsetSet(&out, v);
    return FromBitset(std::move(out));
  }
  BitsetContainer out;
  for (size_t w = 0; w < out.words.size(); ++w) {
    out.words[w] = a.bitset->words[w] | b.bitset->words[w];
    out.cardinality += static_cast<uint32_t>(std::popcount(out.words[w]));
  }
  return FromBitset(std::move(out));
}

RoaringBitmap::Container RoaringBitmap::AndNotContainers(const Container& a,
                                                         const Container& b) {
  if (a.kind == Kind::kArray) {
    Container c;
    c.kind = Kind::kArray;
    if (b.kind == Kind::kRun) {
      ArrayMinusRuns(a.array.values, b.run, &c.array.values);
      return c;
    }
    c.array.values.reserve(a.array.values.size());
    for (uint16_t v : a.array.values) {
      if (!b.Contains(v)) c.array.values.push_back(v);
    }
    return c;
  }
  if (a.kind == Kind::kRun) {
    switch (b.kind) {
      case Kind::kRun:
        return NormalizedFromRuns(RunRunAndNot(a.run, b.run));
      case Kind::kArray:
        return NormalizedFromRuns(RunMinusPoints(a.run, b.array.values));
      case Kind::kBitset: {
        // run \ bitset: only the words each run overlaps are touched.
        BitsetContainer out;
        for (const auto& run : a.run.runs) {
          const uint32_t lo = run.start;
          const uint32_t hi = static_cast<uint32_t>(run.start) + run.length;
          for (uint32_t w = lo >> 6; w <= (hi >> 6); ++w) {
            out.words[w] |=
                RangeWordMask(w, lo, hi) & ~b.bitset->words[w];
          }
        }
        BitsetRecount(&out);
        return FromBitset(std::move(out));
      }
    }
  }
  // a is a bitset.
  switch (b.kind) {
    case Kind::kArray: {
      BitsetContainer out = *a.bitset;
      for (uint16_t v : b.array.values) BitsetClear(&out, v);
      return FromBitset(std::move(out));
    }
    case Kind::kRun: {
      BitsetContainer out = *a.bitset;
      for (const auto& run : b.run.runs) {
        BitsetClearRange(&out, run.start,
                         static_cast<uint32_t>(run.start) + run.length);
      }
      return FromBitset(std::move(out));
    }
    case Kind::kBitset: {
      BitsetContainer out;
      for (size_t w = 0; w < out.words.size(); ++w) {
        out.words[w] = a.bitset->words[w] & ~b.bitset->words[w];
        out.cardinality += static_cast<uint32_t>(std::popcount(out.words[w]));
      }
      return FromBitset(std::move(out));
    }
  }
  return Container{};
}

RoaringBitmap RoaringBitmap::And(const RoaringBitmap& other) const {
  RoaringBitmap result;
  size_t i = 0, j = 0;
  while (i < containers_.size() && j < other.containers_.size()) {
    const uint16_t ka = containers_[i].key;
    const uint16_t kb = other.containers_[j].key;
    if (ka < kb) {
      ++i;
    } else if (kb < ka) {
      ++j;
    } else {
      Container c =
          AndContainers(containers_[i].container, other.containers_[j].container);
      if (c.Cardinality() > 0) {
        Entry entry;
        entry.key = ka;
        entry.container = std::move(c);
        result.containers_.push_back(std::move(entry));
      }
      ++i;
      ++j;
    }
  }
  return result;
}

void RoaringBitmap::AndWith(const RoaringBitmap& other) {
  if (this == &other) return;
  size_t write = 0;
  size_t j = 0;
  for (size_t i = 0; i < containers_.size(); ++i) {
    Entry& entry = containers_[i];
    while (j < other.containers_.size() &&
           other.containers_[j].key < entry.key) {
      ++j;
    }
    if (j >= other.containers_.size() ||
        other.containers_[j].key != entry.key) {
      continue;  // Key absent from `other`: container drops out.
    }
    const Container& oc = other.containers_[j].container;
    if (entry.container.kind == Kind::kBitset && oc.kind == Kind::kBitset) {
      // Word-at-a-time into our own words; no allocation.
      BitsetContainer* bits = entry.container.bitset.get();
      uint32_t cardinality = 0;
      for (size_t w = 0; w < bits->words.size(); ++w) {
        bits->words[w] &= oc.bitset->words[w];
        cardinality += static_cast<uint32_t>(std::popcount(bits->words[w]));
      }
      bits->cardinality = cardinality;
      if (cardinality <= kArrayContainerMax) {
        entry.container = FromBitset(std::move(*bits));
      }
    } else {
      entry.container = AndContainers(entry.container, oc);
    }
    if (entry.container.Cardinality() == 0) continue;
    if (write != i) containers_[write] = std::move(containers_[i]);
    ++write;
  }
  containers_.resize(write);
}

RoaringBitmap RoaringBitmap::Or(const RoaringBitmap& other) const {
  RoaringBitmap result;
  size_t i = 0, j = 0;
  while (i < containers_.size() || j < other.containers_.size()) {
    Entry entry;
    if (j >= other.containers_.size() ||
        (i < containers_.size() && containers_[i].key < other.containers_[j].key)) {
      entry.key = containers_[i].key;
      entry.container = CloneContainer(containers_[i].container);
      ++i;
    } else if (i >= containers_.size() ||
               other.containers_[j].key < containers_[i].key) {
      entry.key = other.containers_[j].key;
      entry.container = CloneContainer(other.containers_[j].container);
      ++j;
    } else {
      entry.key = containers_[i].key;
      entry.container = OrContainers(containers_[i].container,
                                     other.containers_[j].container);
      ++i;
      ++j;
    }
    result.containers_.push_back(std::move(entry));
  }
  return result;
}

RoaringBitmap RoaringBitmap::AndNot(const RoaringBitmap& other) const {
  RoaringBitmap result;
  for (const auto& entry : containers_) {
    const int idx = other.FindEntry(entry.key);
    Entry out;
    out.key = entry.key;
    if (idx < 0) {
      out.container = CloneContainer(entry.container);
    } else {
      out.container =
          AndNotContainers(entry.container, other.containers_[idx].container);
    }
    if (out.container.Cardinality() > 0) {
      result.containers_.push_back(std::move(out));
    }
  }
  return result;
}

RoaringBitmap RoaringBitmap::Not(uint32_t universe_size) const {
  return FromRange(0, universe_size).AndNot(*this);
}

void RoaringBitmap::OrContainerInPlace(Container* dst, const Container& src) {
  if (dst->kind == Kind::kBitset) {
    BitsetContainer* bits = dst->bitset.get();
    switch (src.kind) {
      case Kind::kArray:
        for (uint16_t v : src.array.values) BitsetSet(bits, v);
        return;
      case Kind::kRun:
        for (const auto& run : src.run.runs) {
          BitsetSetRange(bits, run.start,
                         static_cast<uint32_t>(run.start) + run.length);
        }
        return;
      case Kind::kBitset:
        for (size_t w = 0; w < bits->words.size(); ++w) {
          bits->cardinality += static_cast<uint32_t>(
              std::popcount(src.bitset->words[w] & ~bits->words[w]));
          bits->words[w] |= src.bitset->words[w];
        }
        return;
    }
    return;
  }
  if (dst->kind == Kind::kArray && src.kind == Kind::kArray &&
      dst->array.values.size() + src.array.values.size() <=
          kArrayContainerMax) {
    std::vector<uint16_t> merged;
    merged.reserve(dst->array.values.size() + src.array.values.size());
    std::set_union(dst->array.values.begin(), dst->array.values.end(),
                   src.array.values.begin(), src.array.values.end(),
                   std::back_inserter(merged));
    dst->array.values = std::move(merged);
    return;
  }
  // Everything else (dense unions, run destinations) grows into a bitset
  // accumulator so follow-up ORs into the same container are in-place.
  if (dst->kind != Kind::kBitset) {
    auto bitset = std::make_unique<BitsetContainer>();
    ToBitset(*dst, bitset.get());
    dst->kind = Kind::kBitset;
    dst->bitset = std::move(bitset);
    dst->array.values.clear();
    dst->array.values.shrink_to_fit();
    dst->run.runs.clear();
  }
  OrContainerInPlace(dst, src);
}

void RoaringBitmap::OrWith(const RoaringBitmap& other) {
  if (this == &other) return;
  // Merge the sorted container lists; only shared keys do real work.
  std::vector<Entry> merged;
  merged.reserve(containers_.size() + other.containers_.size());
  size_t i = 0, j = 0;
  while (i < containers_.size() || j < other.containers_.size()) {
    if (j >= other.containers_.size() ||
        (i < containers_.size() &&
         containers_[i].key < other.containers_[j].key)) {
      merged.push_back(std::move(containers_[i]));
      ++i;
    } else if (i >= containers_.size() ||
               other.containers_[j].key < containers_[i].key) {
      Entry entry;
      entry.key = other.containers_[j].key;
      entry.container = CloneContainer(other.containers_[j].container);
      merged.push_back(std::move(entry));
      ++j;
    } else {
      OrContainerInPlace(&containers_[i].container,
                         other.containers_[j].container);
      merged.push_back(std::move(containers_[i]));
      ++i;
      ++j;
    }
  }
  containers_ = std::move(merged);
}

RoaringBitmap RoaringBitmap::OrMany(
    const std::vector<const RoaringBitmap*>& inputs) {
  if (inputs.empty()) return RoaringBitmap();
  if (inputs.size() == 1) return *inputs[0];
  // Gather every (key, container) across inputs and group by key, so each
  // chunk is unioned exactly once into one accumulator instead of flowing
  // through N-1 intermediate bitmaps.
  std::vector<std::pair<uint16_t, const Container*>> items;
  size_t total = 0;
  for (const RoaringBitmap* bm : inputs) total += bm->containers_.size();
  items.reserve(total);
  for (const RoaringBitmap* bm : inputs) {
    for (const auto& entry : bm->containers_) {
      items.emplace_back(entry.key, &entry.container);
    }
  }
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  RoaringBitmap result;
  size_t i = 0;
  while (i < items.size()) {
    const uint16_t key = items[i].first;
    size_t j = i;
    uint64_t group_cardinality = 0;
    while (j < items.size() && items[j].first == key) {
      group_cardinality += items[j].second->Cardinality();
      ++j;
    }
    Entry entry;
    entry.key = key;
    if (j - i == 1) {
      entry.container = CloneContainer(*items[i].second);
    } else if (group_cardinality <= kArrayContainerMax &&
               std::all_of(items.begin() + i, items.begin() + j,
                           [](const auto& item) {
                             return item.second->kind == Kind::kArray;
                           })) {
      // Sparse group of arrays: k-way merge via sort (values fit well
      // within one array container even before dedup).
      std::vector<uint16_t> values;
      values.reserve(group_cardinality);
      for (size_t k = i; k < j; ++k) {
        const auto& src = items[k].second->array.values;
        values.insert(values.end(), src.begin(), src.end());
      }
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      entry.container.kind = Kind::kArray;
      entry.container.array.values = std::move(values);
    } else {
      // Dense group: one shared bitset accumulator, then compact once.
      BitsetContainer acc;
      for (size_t k = i; k < j; ++k) {
        const Container& c = *items[k].second;
        switch (c.kind) {
          case Kind::kArray:
            for (uint16_t v : c.array.values) {
              acc.words[v >> 6] |= uint64_t{1} << (v & 63);
            }
            break;
          case Kind::kRun:
            for (const auto& run : c.run.runs) {
              const uint32_t lo = run.start;
              const uint32_t hi = static_cast<uint32_t>(run.start) + run.length;
              for (uint32_t w = lo >> 6; w <= (hi >> 6); ++w) {
                acc.words[w] |= RangeWordMask(w, lo, hi);
              }
            }
            break;
          case Kind::kBitset:
            for (size_t w = 0; w < acc.words.size(); ++w) {
              acc.words[w] |= c.bitset->words[w];
            }
            break;
        }
      }
      BitsetRecount(&acc);
      entry.container = FromBitset(std::move(acc));
    }
    if (entry.container.Cardinality() > 0) {
      result.containers_.push_back(std::move(entry));
    }
    i = j;
  }
  return result;
}

void RoaringBitmap::RunOptimize() {
  for (auto& entry : containers_) {
    Container& c = entry.container;
    // Count maximal runs in this container.
    uint32_t num_runs = 0;
    switch (c.kind) {
      case Kind::kRun:
        continue;  // Already run-encoded.
      case Kind::kArray: {
        const auto& vals = c.array.values;
        for (size_t i = 0; i < vals.size(); ++i) {
          if (i == 0 || vals[i] != vals[i - 1] + 1) ++num_runs;
        }
        // Run encoding: 4 bytes/run vs 2 bytes/value.
        if (num_runs * 2 >= vals.size()) continue;
        RunContainer rc;
        rc.runs.reserve(num_runs);
        for (size_t i = 0; i < vals.size(); ++i) {
          if (i == 0 || vals[i] != vals[i - 1] + 1) {
            rc.runs.push_back({vals[i], 0});
          } else {
            ++rc.runs.back().length;
          }
        }
        c.kind = Kind::kRun;
        c.run = std::move(rc);
        c.array.values.clear();
        c.array.values.shrink_to_fit();
        break;
      }
      case Kind::kBitset: {
        // num_runs = sum over words of transitions 0->1.
        const auto& words = c.bitset->words;
        for (size_t w = 0; w < words.size(); ++w) {
          const uint64_t word = words[w];
          const uint64_t prev_bit =
              (w == 0) ? 0 : (words[w - 1] >> 63) & 1;
          // Starts of runs: bits set where previous bit is clear.
          const uint64_t shifted = (word << 1) | prev_bit;
          num_runs += static_cast<uint32_t>(std::popcount(word & ~shifted));
        }
        // Run encoding: 4 bytes/run vs fixed 8192 bytes.
        if (num_runs * 4 >= 8192) continue;
        RunContainer rc;
        rc.runs.reserve(num_runs);
        int32_t run_start = -1;
        for (uint32_t v = 0; v < 65536; ++v) {
          const bool set = BitsetTest(*c.bitset, static_cast<uint16_t>(v));
          if (set && run_start < 0) run_start = static_cast<int32_t>(v);
          if (!set && run_start >= 0) {
            rc.runs.push_back({static_cast<uint16_t>(run_start),
                               static_cast<uint16_t>(v - 1 - run_start)});
            run_start = -1;
          }
        }
        if (run_start >= 0) {
          rc.runs.push_back({static_cast<uint16_t>(run_start),
                             static_cast<uint16_t>(65535 - run_start)});
        }
        c.kind = Kind::kRun;
        c.run = std::move(rc);
        c.bitset.reset();
        break;
      }
    }
  }
}

void RoaringBitmap::ForEachInContainer(
    const Container& c, uint32_t base,
    const std::function<void(uint32_t)>& fn) {
  switch (c.kind) {
    case Kind::kArray:
      for (uint16_t v : c.array.values) fn(base + v);
      return;
    case Kind::kBitset:
      for (size_t w = 0; w < c.bitset->words.size(); ++w) {
        uint64_t word = c.bitset->words[w];
        while (word != 0) {
          const int bit = std::countr_zero(word);
          fn(base + static_cast<uint32_t>(w * 64 + bit));
          word &= word - 1;
        }
      }
      return;
    case Kind::kRun:
      for (const auto& run : c.run.runs) {
        const uint32_t end = base + run.start + run.length;
        for (uint32_t v = base + run.start; v <= end; ++v) fn(v);
      }
      return;
  }
}

void RoaringBitmap::ForEach(const std::function<void(uint32_t)>& fn) const {
  for (const auto& entry : containers_) {
    ForEachInContainer(entry.container,
                       static_cast<uint32_t>(entry.key) << 16, fn);
  }
}

void RoaringBitmap::ForEachRange(
    const std::function<void(uint32_t, uint32_t)>& fn) const {
  // Accumulate maximal runs across container boundaries.
  bool have_run = false;
  uint32_t run_begin = 0;
  uint32_t run_end = 0;  // Exclusive.
  auto emit = [&](uint32_t begin, uint32_t end) {
    if (have_run && begin == run_end) {
      run_end = end;
      return;
    }
    if (have_run) fn(run_begin, run_end);
    run_begin = begin;
    run_end = end;
    have_run = true;
  };
  for (const auto& entry : containers_) {
    const uint32_t base = static_cast<uint32_t>(entry.key) << 16;
    const Container& c = entry.container;
    switch (c.kind) {
      case Kind::kArray: {
        const auto& vals = c.array.values;
        size_t i = 0;
        while (i < vals.size()) {
          size_t j = i + 1;
          while (j < vals.size() && vals[j] == vals[j - 1] + 1) ++j;
          emit(base + vals[i], base + vals[j - 1] + 1);
          i = j;
        }
        break;
      }
      case Kind::kRun:
        for (const auto& run : c.run.runs) {
          emit(base + run.start,
               base + static_cast<uint32_t>(run.start) + run.length + 1);
        }
        break;
      case Kind::kBitset: {
        int64_t start = -1;
        for (uint32_t w = 0; w < 1024; ++w) {
          uint64_t word = c.bitset->words[w];
          if (word == ~uint64_t{0}) {
            if (start < 0) start = static_cast<int64_t>(w) * 64;
            continue;
          }
          for (int bit = 0; bit < 64; ++bit) {
            const bool set = (word >> bit) & 1;
            const uint32_t v = w * 64 + bit;
            if (set && start < 0) start = v;
            if (!set && start >= 0) {
              emit(base + static_cast<uint32_t>(start), base + v);
              start = -1;
            }
          }
        }
        if (start >= 0) {
          emit(base + static_cast<uint32_t>(start), base + 65536);
        }
        break;
      }
    }
  }
  if (have_run) fn(run_begin, run_end);
}

void RoaringBitmap::ForEachBlock(
    uint32_t block_size,
    const std::function<void(uint32_t, uint32_t, const uint32_t*)>& fn)
    const {
  assert(block_size > 0);
  std::vector<uint32_t> buffer;
  buffer.reserve(std::min<uint32_t>(block_size, 65536));
  auto flush = [&] {
    if (!buffer.empty()) {
      fn(buffer.front(), static_cast<uint32_t>(buffer.size()), buffer.data());
      buffer.clear();
    }
  };
  for (const auto& entry : containers_) {
    const uint32_t base = static_cast<uint32_t>(entry.key) << 16;
    const Container& c = entry.container;
    switch (c.kind) {
      case Kind::kArray:
        for (uint16_t v : c.array.values) {
          buffer.push_back(base + v);
          if (buffer.size() >= block_size) flush();
        }
        break;
      case Kind::kBitset:
        for (size_t w = 0; w < c.bitset->words.size(); ++w) {
          uint64_t word = c.bitset->words[w];
          while (word != 0) {
            const int bit = std::countr_zero(word);
            buffer.push_back(base + static_cast<uint32_t>(w * 64 + bit));
            word &= word - 1;
            if (buffer.size() >= block_size) flush();
          }
        }
        break;
      case Kind::kRun:
        // Runs become index ranges directly, chunked to the block size;
        // no per-document extraction at all.
        flush();
        for (const auto& run : c.run.runs) {
          uint32_t begin = base + run.start;
          uint32_t remaining = static_cast<uint32_t>(run.length) + 1;
          while (remaining > 0) {
            const uint32_t take = std::min(remaining, block_size);
            fn(begin, take, nullptr);
            begin += take;
            remaining -= take;
          }
        }
        break;
    }
  }
  flush();
}

std::vector<uint32_t> RoaringBitmap::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Cardinality());
  ForEach([&out](uint32_t v) { out.push_back(v); });
  return out;
}

bool RoaringBitmap::operator==(const RoaringBitmap& other) const {
  if (Cardinality() != other.Cardinality()) return false;
  bool equal = true;
  ForEach([&other, &equal](uint32_t v) {
    if (!other.Contains(v)) equal = false;
  });
  return equal;
}

uint64_t RoaringBitmap::SizeInBytes() const {
  uint64_t total = 0;
  for (const auto& entry : containers_) {
    total += sizeof(Entry);
    switch (entry.container.kind) {
      case Kind::kArray:
        total += entry.container.array.values.size() * sizeof(uint16_t);
        break;
      case Kind::kBitset:
        total += sizeof(BitsetContainer);
        break;
      case Kind::kRun:
        total += entry.container.run.runs.size() * sizeof(RunContainer::Run);
        break;
    }
  }
  return total;
}

RoaringBitmap::ContainerStats RoaringBitmap::GetContainerStats() const {
  ContainerStats stats;
  for (const auto& entry : containers_) {
    switch (entry.container.kind) {
      case Kind::kArray:
        ++stats.array_containers;
        break;
      case Kind::kBitset:
        ++stats.bitset_containers;
        break;
      case Kind::kRun:
        ++stats.run_containers;
        break;
    }
  }
  return stats;
}

void RoaringBitmap::Serialize(ByteWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(containers_.size()));
  for (const auto& entry : containers_) {
    writer->WriteU32(entry.key);
    writer->WriteU8(static_cast<uint8_t>(entry.container.kind));
    switch (entry.container.kind) {
      case Kind::kArray: {
        const auto& vals = entry.container.array.values;
        writer->WriteU32(static_cast<uint32_t>(vals.size()));
        writer->WriteRaw(vals.data(), vals.size() * sizeof(uint16_t));
        break;
      }
      case Kind::kBitset: {
        const auto& bitset = *entry.container.bitset;
        writer->WriteU32(bitset.cardinality);
        writer->WriteRaw(bitset.words.data(),
                         bitset.words.size() * sizeof(uint64_t));
        break;
      }
      case Kind::kRun: {
        const auto& runs = entry.container.run.runs;
        writer->WriteU32(static_cast<uint32_t>(runs.size()));
        for (const auto& run : runs) {
          writer->WriteU32(run.start);
          writer->WriteU32(run.length);
        }
        break;
      }
    }
  }
}

Result<RoaringBitmap> RoaringBitmap::Deserialize(ByteReader* reader) {
  RoaringBitmap bm;
  PINOT_ASSIGN_OR_RETURN(uint32_t num_containers, reader->ReadU32());
  bm.containers_.reserve(num_containers);
  for (uint32_t i = 0; i < num_containers; ++i) {
    PINOT_ASSIGN_OR_RETURN(uint32_t key, reader->ReadU32());
    PINOT_ASSIGN_OR_RETURN(uint8_t kind_byte, reader->ReadU8());
    if (kind_byte > 2) return Status::Corruption("bad container kind");
    Entry entry;
    entry.key = static_cast<uint16_t>(key);
    entry.container.kind = static_cast<Kind>(kind_byte);
    switch (entry.container.kind) {
      case Kind::kArray: {
        PINOT_ASSIGN_OR_RETURN(uint32_t n, reader->ReadU32());
        entry.container.array.values.resize(n);
        PINOT_RETURN_NOT_OK(reader->ReadRaw(
            entry.container.array.values.data(), n * sizeof(uint16_t)));
        break;
      }
      case Kind::kBitset: {
        PINOT_ASSIGN_OR_RETURN(uint32_t card, reader->ReadU32());
        entry.container.bitset = std::make_unique<BitsetContainer>();
        entry.container.bitset->cardinality = card;
        PINOT_RETURN_NOT_OK(
            reader->ReadRaw(entry.container.bitset->words.data(),
                            entry.container.bitset->words.size() *
                                sizeof(uint64_t)));
        break;
      }
      case Kind::kRun: {
        PINOT_ASSIGN_OR_RETURN(uint32_t n, reader->ReadU32());
        entry.container.run.runs.reserve(n);
        for (uint32_t r = 0; r < n; ++r) {
          PINOT_ASSIGN_OR_RETURN(uint32_t start, reader->ReadU32());
          PINOT_ASSIGN_OR_RETURN(uint32_t length, reader->ReadU32());
          entry.container.run.runs.push_back(
              {static_cast<uint16_t>(start), static_cast<uint16_t>(length)});
        }
        break;
      }
    }
    bm.containers_.push_back(std::move(entry));
  }
  return bm;
}

}  // namespace pinot
