#ifndef PINOT_CLUSTER_INDEX_ADVISOR_H_
#define PINOT_CLUSTER_INDEX_ADVISOR_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/controller.h"
#include "cluster/table_config.h"
#include "query/query.h"

namespace pinot {

/// The automated index advisor (paper section 5.2): "We also parse the
/// query logs and execution statistics on an ongoing basis in order to
/// automatically add inverted indexes on columns where they would prove
/// beneficial." Brokers record every executed query into the log; the
/// advisor counts how often each column appears in filter predicates,
/// weighted by the documents scanned, and asks the controller to build
/// inverted indexes on heavily-filtered columns that have neither an
/// inverted index nor the sorted layout.
class IndexAdvisor {
 public:
  struct Options {
    // Minimum number of logged queries filtering on a column before it is
    // considered.
    uint64_t min_filter_count = 100;
    // Minimum average documents scanned per query on the table before an
    // index is worth building.
    double min_avg_docs_scanned = 1000;
  };

  struct Recommendation {
    std::string physical_table;
    std::string column;
    uint64_t filter_count = 0;
  };

  IndexAdvisor() : IndexAdvisor(Options()) {}
  explicit IndexAdvisor(Options options) : options_(options) {}

  /// Records one executed query and its execution statistics (called by
  /// the broker or an offline log-processing job).
  void RecordQuery(const std::string& physical_table, const Query& query,
                   uint64_t docs_scanned);

  /// Analyzes the log against the table's current config and returns the
  /// columns that should get inverted indexes.
  std::vector<Recommendation> Analyze(const TableConfig& config) const;

  /// Analyze + apply: sends RequestInvertedIndex to the controller for
  /// every recommendation and updates the stored table config so future
  /// segments are built with the index. Returns the applied
  /// recommendations.
  std::vector<Recommendation> Apply(Controller* controller,
                                    const std::string& physical_table);

  uint64_t logged_queries(const std::string& physical_table) const;

 private:
  struct ColumnStatsEntry {
    uint64_t filter_count = 0;
  };
  struct TableLog {
    uint64_t queries = 0;
    uint64_t docs_scanned = 0;
    std::map<std::string, ColumnStatsEntry> columns;
  };

  static void CollectFilterColumns(const FilterNode& node,
                                   std::vector<std::string>* out);

  const Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, TableLog> logs_;
};

}  // namespace pinot

#endif  // PINOT_CLUSTER_INDEX_ADVISOR_H_
