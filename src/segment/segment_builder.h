#ifndef PINOT_SEGMENT_SEGMENT_BUILDER_H_
#define PINOT_SEGMENT_SEGMENT_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "data/row.h"
#include "data/schema.h"
#include "segment/segment.h"
#include "startree/star_tree.h"

namespace pinot {

/// Build-time options for a segment. The sort columns implement the
/// physical record reordering of paper section 4.2 ("physically reordering
/// the data based on primary and secondary columns"); the first sort column
/// gets a SortedIndex. Inverted indexes and the star-tree are per-table
/// configuration applied at segment generation time.
struct SegmentBuildConfig {
  std::string table_name;
  std::string segment_name;
  std::vector<std::string> sort_columns;
  std::vector<std::string> inverted_index_columns;
  StarTreeConfig star_tree;
  // Partitioned tables (section 4.4): recorded in metadata for
  // partition-aware routing.
  int32_t partition_id = -1;
  std::string partition_column;
  int32_t num_partitions = 0;
};

/// Builds an ImmutableSegment from rows: accumulates raw values, sorts,
/// dictionary-encodes, bit-packs, and generates the configured indexes.
class SegmentBuilder {
 public:
  SegmentBuilder(Schema schema, SegmentBuildConfig config,
                 Clock* clock = RealClock::Instance());

  /// Appends one record. Missing fields take the schema default; values are
  /// coerced to the column's storage class (e.g. int -> double). Returns
  /// InvalidArgument on single/multi-value arity mismatches.
  Status AddRow(const Row& row);

  uint32_t num_rows() const { return num_rows_; }

  /// Finalizes the segment. The builder must not be reused afterwards.
  Result<std::shared_ptr<ImmutableSegment>> Build();

 private:
  // Raw accumulated values for one column; exactly one vector is in use,
  // chosen by storage class and arity.
  struct RawColumn {
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<std::string> str;
    std::vector<std::vector<int64_t>> mi64;
    std::vector<std::vector<double>> mf64;
    std::vector<std::vector<std::string>> mstr;
  };

  Status AppendValue(int field_index, const Value& value);

  Schema schema_;
  SegmentBuildConfig config_;
  Clock* clock_;
  std::vector<RawColumn> columns_;
  uint32_t num_rows_ = 0;
  bool built_ = false;
};

}  // namespace pinot

#endif  // PINOT_SEGMENT_SEGMENT_BUILDER_H_
