#ifndef PINOT_CLUSTER_HEALTH_H_
#define PINOT_CLUSTER_HEALTH_H_

#include <string>
#include <vector>

#include "cluster/cluster_manager.h"
#include "metrics/metrics.h"
#include "metrics/snapshot.h"

namespace pinot {

/// Declarative SLO health evaluation ("Enhancing OLAP Resilience at
/// LinkedIn": site-facing tables are operated against explicit freshness,
/// availability and latency SLAs, and an operator's first question is
/// "which table is out of budget, and why"). Each rule reads the metrics
/// registry, an optional windowed snapshot delta, and the cluster state,
/// and grades every logical table GREEN / YELLOW / RED with an evidence
/// line that names the numbers behind the verdict.

enum class HealthStatus { kGreen, kYellow, kRed };

const char* HealthStatusToString(HealthStatus status);

/// Per-table SLO budgets. A measured value over the budget grades RED; over
/// `yellow_fraction` of the budget grades YELLOW; otherwise GREEN.
struct SloThresholds {
  // Freshness: worst realtime_consumption_lag (rows behind the stream head)
  // across the table's partitions.
  double max_freshness_lag_rows = 100000;
  // Error budget: partial results / queries (windowed when a delta is
  // provided, lifetime otherwise).
  double max_error_rate = 0.05;
  // Shed budget: sheds / (queries + sheds).
  double max_shed_rate = 0.10;
  // Latency budget: broker_query_latency_ms{table=...} p99.
  double p99_latency_budget_ms = 1000.0;
  // Upsert hygiene: invalidated (dead) rows / rows indexed. Dead rows cost
  // scan work until compaction reclaims them.
  double max_upsert_dead_fraction = 0.5;
  // Fraction of a budget at which a rule turns YELLOW.
  double yellow_fraction = 0.5;
};

/// One rule's verdict for one table.
struct HealthRuleResult {
  std::string rule;      // e.g. "freshness", "error_rate".
  HealthStatus status = HealthStatus::kGreen;
  std::string evidence;  // `k=v` pairs backing the verdict.
};

/// All rule verdicts for one logical table; `status` is the worst of them.
struct TableHealth {
  std::string table;
  HealthStatus status = HealthStatus::kGreen;
  std::vector<HealthRuleResult> rules;
};

/// Cluster verdict: worst table status wins.
struct HealthReport {
  HealthStatus overall = HealthStatus::kGreen;
  std::vector<TableHealth> tables;  // Sorted by table name.
  // Windowed rates backing the report (zeroed when no delta was provided).
  bool has_window = false;
  WindowedRates window;

  /// Grammar (one line each):
  ///   overall status=GREEN tables=2
  ///   window seconds=... qps=... (only with has_window)
  ///   table=events status=RED
  ///     rule=error_rate status=RED errors=12 queries=40 rate=0.300 max=0.050
  std::string ToString() const;
};

/// Everything the rules read. `registry` is required; `window` and
/// `cluster` are optional — rules that need an absent input grade GREEN
/// (no evidence of a violation is not a violation).
struct HealthInputs {
  const MetricsRegistry* registry = nullptr;
  const SnapshotDelta* window = nullptr;
  const ClusterManager* cluster = nullptr;
};

/// Evaluates every rule for every logical table found in the cluster state
/// and the per-table metric series.
HealthReport EvaluateHealth(const HealthInputs& inputs,
                            const SloThresholds& slo);

}  // namespace pinot

#endif  // PINOT_CLUSTER_HEALTH_H_
