#ifndef PINOT_DATA_VALUE_H_
#define PINOT_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "data/data_type.h"

namespace pinot {

/// A single cell value. Integral column types (INT/LONG/BOOLEAN) are carried
/// as int64_t, floating types as double, strings as std::string. Multi-value
/// (array) columns carry a vector of the scalar representation.
using Value = std::variant<std::monostate,          // Null / unset.
                           int64_t,                 // Integral types.
                           double,                  // Floating types.
                           std::string,             // STRING.
                           std::vector<int64_t>,    // Multi-value integral.
                           std::vector<double>,     // Multi-value floating.
                           std::vector<std::string>  // Multi-value string.
                           >;

inline bool IsNull(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

inline bool IsMultiValue(const Value& v) {
  return std::holds_alternative<std::vector<int64_t>>(v) ||
         std::holds_alternative<std::vector<double>>(v) ||
         std::holds_alternative<std::vector<std::string>>(v);
}

/// Renders a value for result rows and debugging.
std::string ValueToString(const Value& v);

/// Converts a value to double for metric aggregation. Null -> 0, string ->
/// 0 (metrics are numeric; the query planner rejects aggregations on string
/// columns before execution).
double ValueToDouble(const Value& v);

class ByteWriter;
class ByteReader;

/// Serializes a value with a type tag (used by segment metadata defaults).
void WriteValue(const Value& v, ByteWriter* writer);
Result<Value> ReadValue(ByteReader* reader);

}  // namespace pinot

#endif  // PINOT_DATA_VALUE_H_
