#include "startree/star_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/segment_executor.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using test::BuildAnalyticsSegment;
using test::RunPql;

SegmentBuildConfig StarTreeConfigured(uint32_t max_leaf_records = 1) {
  SegmentBuildConfig config;
  config.star_tree.dimensions = {"country", "browser", "day"};
  config.star_tree.metrics = {"impressions", "clicks"};
  config.star_tree.max_leaf_records = max_leaf_records;
  return config;
}

TEST(StarTreeTest, BuildProducesAggregatedRecords) {
  auto segment = BuildAnalyticsSegment(StarTreeConfigured());
  const StarTree* tree = segment->star_tree();
  ASSERT_NE(tree, nullptr);
  // Base records are fully-aggregated (country, browser, day) combinations;
  // the tree adds star records on top. The 12 rows contain one duplicated
  // (us, firefox, 103) combination, so 11 base records remain.
  EXPECT_EQ(tree->num_base_records(), 11u);
  EXPECT_GT(tree->num_records(), tree->num_base_records());
  EXPECT_GT(tree->num_nodes(), 1);
}

TEST(StarTreeTest, EligibilityRules) {
  auto segment = BuildAnalyticsSegment(StarTreeConfigured());
  auto check = [&](const std::string& pql) {
    auto query = ParsePql(pql);
    EXPECT_TRUE(query.ok()) << pql;
    return CanUseStarTree(*segment, *query);
  };
  EXPECT_TRUE(check("SELECT sum(impressions) FROM t WHERE country = 'us'"));
  EXPECT_TRUE(check(
      "SELECT sum(impressions) FROM t WHERE country = 'us' GROUP BY browser"));
  EXPECT_TRUE(check("SELECT count(*) FROM t WHERE browser = 'firefox'"));
  // Filter on a non-tree dimension.
  EXPECT_FALSE(check("SELECT sum(impressions) FROM t WHERE memberId = 1"));
  // Group-by on a non-tree dimension.
  EXPECT_FALSE(check("SELECT sum(impressions) FROM t GROUP BY memberId"));
  // Aggregation on a non-tree metric.
  EXPECT_FALSE(check("SELECT sum(memberId) FROM t WHERE country = 'us'"));
  // Distinct count needs raw data.
  EXPECT_FALSE(
      check("SELECT distinctcount(memberId) FROM t WHERE country = 'us'"));
  // Cross-column OR cannot be served by traversal.
  EXPECT_FALSE(check(
      "SELECT sum(impressions) FROM t WHERE country = 'us' OR browser = "
      "'safari'"));
  // Same-column OR via IN is fine.
  EXPECT_TRUE(check(
      "SELECT sum(impressions) FROM t WHERE browser IN ('firefox','safari')"));
  // Selections never use the tree.
  EXPECT_FALSE(check("SELECT country FROM t LIMIT 5"));
}

TEST(StarTreeTest, QueriesUseTreeAndScanFewerRecords) {
  auto segment = BuildAnalyticsSegment(StarTreeConfigured());
  auto result = RunPql(
      segment, "SELECT sum(impressions) FROM analytics WHERE browser = "
               "'firefox'");
  EXPECT_TRUE(result.stats.used_star_tree);
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[0]), 330);  // 10+30+70+100+120
  EXPECT_GT(result.stats.star_tree_records_scanned, 0u);
}

TEST(StarTreeTest, StarNodeAnswersUnfilteredDimension) {
  // No filter at all: traversal should use star children the whole way and
  // touch very few records.
  auto segment = BuildAnalyticsSegment(StarTreeConfigured());
  auto result = RunPql(segment, "SELECT sum(clicks) FROM analytics WHERE "
                                "day >= 0");
  EXPECT_TRUE(result.stats.used_star_tree);
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[0]), 75);
}

// The core correctness property (paper Figures 9, 10, 13): star-tree
// execution returns exactly the same results as raw execution, across
// random long-tailed datasets, random queries, and leaf thresholds.
class StarTreeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(StarTreeEquivalenceTest, MatchesRawExecutionOnRandomData) {
  const uint32_t max_leaf = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  Random rng(seed);
  ZipfGenerator country_gen(12, 1.1);
  ZipfGenerator browser_gen(5, 0.9);

  std::vector<test::AnalyticsRow> rows;
  static const char* kCountries[] = {"us", "ca", "de", "fr", "jp", "br",
                                     "in", "uk", "au", "mx", "es", "it"};
  static const char* kBrowsers[] = {"chrome", "firefox", "safari", "edge",
                                    "opera"};
  for (int i = 0; i < 2000; ++i) {
    test::AnalyticsRow row;
    row.country = kCountries[country_gen.Next(rng)];
    row.browser = kBrowsers[browser_gen.Next(rng)];
    row.member_id = static_cast<int64_t>(rng.NextUint64(50));
    row.impressions = static_cast<int64_t>(rng.NextUint64(1000));
    row.clicks = static_cast<int64_t>(rng.NextUint64(10));
    row.day = 100 + static_cast<int64_t>(rng.NextUint64(7));
    rows.push_back(std::move(row));
  }

  auto config = StarTreeConfigured(max_leaf);
  auto with_tree = BuildAnalyticsSegment(config, rows);
  auto without_tree = BuildAnalyticsSegment({}, rows);
  ASSERT_NE(with_tree->star_tree(), nullptr);

  const std::vector<std::string> queries = {
      "SELECT sum(impressions) FROM t WHERE country = 'us'",
      "SELECT sum(impressions), count(*) FROM t WHERE browser = 'firefox'",
      "SELECT sum(clicks) FROM t WHERE country = 'us' AND browser = 'chrome'",
      "SELECT sum(impressions) FROM t WHERE country IN ('us','de','jp')",
      "SELECT sum(impressions) FROM t WHERE day BETWEEN 101 AND 103",
      "SELECT count(*) FROM t WHERE browser IN ('safari','edge') AND day >= "
      "104",
      "SELECT sum(impressions) FROM t GROUP BY country TOP 50",
      "SELECT sum(clicks), count(*) FROM t WHERE browser = 'chrome' GROUP BY "
      "country TOP 50",
      "SELECT min(impressions), max(impressions), avg(impressions) FROM t "
      "WHERE country = 'ca'",
      "SELECT sum(impressions) FROM t WHERE country = 'us' GROUP BY country, "
      "browser TOP 50",
  };
  for (const auto& pql : queries) {
    auto a = RunPql(with_tree, pql);
    auto b = RunPql(without_tree, pql);
    ASSERT_FALSE(a.partial) << pql << ": " << a.error_message;
    ASSERT_EQ(a.aggregates.size(), b.aggregates.size()) << pql;
    for (size_t i = 0; i < a.aggregates.size(); ++i) {
      EXPECT_EQ(ValueToString(a.aggregates[i]), ValueToString(b.aggregates[i]))
          << pql << " seed=" << seed << " leaf=" << max_leaf;
    }
    ASSERT_EQ(a.group_rows.size(), b.group_rows.size()) << pql;
    // Compare group rows as sets keyed by group values (ties in the sort
    // can order equal-valued rows differently).
    std::map<std::string, std::string> ga, gb;
    for (const auto& row : a.group_rows) {
      std::string vals;
      for (const auto& v : row.values) vals += ValueToString(v) + ",";
      ga[EncodeGroupKey(row.keys)] = vals;
    }
    for (const auto& row : b.group_rows) {
      std::string vals;
      for (const auto& v : row.values) vals += ValueToString(v) + ",";
      gb[EncodeGroupKey(row.keys)] = vals;
    }
    EXPECT_EQ(ga, gb) << pql << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LeafThresholdsAndSeeds, StarTreeEquivalenceTest,
    ::testing::Combine(::testing::Values(1u, 16u, 128u, 10000u),
                       ::testing::Values(7u, 99u)));

TEST(StarTreeTest, SerializeRoundTrip) {
  auto segment = BuildAnalyticsSegment(StarTreeConfigured());
  const StarTree* tree = segment->star_tree();
  ByteWriter writer;
  tree->Serialize(&writer);
  ByteReader reader(writer.buffer());
  auto restored = StarTree::Deserialize(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_records(), tree->num_records());
  EXPECT_EQ(restored->num_nodes(), tree->num_nodes());
  EXPECT_EQ(restored->config().dimensions, tree->config().dimensions);
}

TEST(StarTreeTest, RecordsScannedShrinksWithPreaggregation) {
  // Heavily duplicated data: many raw rows collapse into few preaggregated
  // records (the effect behind Figure 13).
  std::vector<test::AnalyticsRow> rows;
  Random rng(5);
  static const char* kCountries[] = {"us", "ca"};
  static const char* kBrowsers[] = {"chrome", "firefox"};
  for (int i = 0; i < 5000; ++i) {
    test::AnalyticsRow row;
    row.country = kCountries[rng.NextUint64(2)];
    row.browser = kBrowsers[rng.NextUint64(2)];
    row.member_id = 1;
    row.impressions = 1;
    row.clicks = 0;
    row.day = 100;
    rows.push_back(std::move(row));
  }
  auto segment = BuildAnalyticsSegment(StarTreeConfigured(), rows);
  auto result = RunPql(
      segment, "SELECT sum(impressions) FROM t WHERE country = 'us'");
  ASSERT_TRUE(result.stats.used_star_tree);
  // 5000 raw docs collapse to at most 4 base records per country slice.
  EXPECT_LE(result.stats.star_tree_records_scanned, 8u);
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[0]),
                   static_cast<double>(result.stats.docs_matched));
}

}  // namespace
}  // namespace pinot
