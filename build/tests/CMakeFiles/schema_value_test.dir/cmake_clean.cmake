file(REMOVE_RECURSE
  "CMakeFiles/schema_value_test.dir/schema_value_test.cc.o"
  "CMakeFiles/schema_value_test.dir/schema_value_test.cc.o.d"
  "schema_value_test"
  "schema_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
