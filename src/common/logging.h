#ifndef PINOT_COMMON_LOGGING_H_
#define PINOT_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pinot {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kWarn so tests and benchmarks stay quiet unless asked.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullLogMessage {
 public:
  template <typename T>
  NullLogMessage& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define PINOT_LOG(level)                                      \
  (::pinot::GetLogLevel() > ::pinot::LogLevel::level)         \
      ? (void)0                                               \
      : (void)(::pinot::internal::LogMessage(                 \
            ::pinot::LogLevel::level, __FILE__, __LINE__))

// Streaming form: PINOT_LOG_INFO << "msg" << x;
#define PINOT_LOG_STREAM(level) \
  ::pinot::internal::LogMessage(::pinot::LogLevel::level, __FILE__, __LINE__)

#define PINOT_LOG_DEBUG PINOT_LOG_STREAM(kDebug)
#define PINOT_LOG_INFO PINOT_LOG_STREAM(kInfo)
#define PINOT_LOG_WARN PINOT_LOG_STREAM(kWarn)
#define PINOT_LOG_ERROR PINOT_LOG_STREAM(kError)

}  // namespace pinot

#endif  // PINOT_COMMON_LOGGING_H_
