#include "query/filter_evaluator.h"

#include <algorithm>
#include <cassert>

namespace pinot {

bool DictIdMatch::Matches(uint32_t dict_id) const {
  if (match_all) return true;
  if (match_none) return false;
  if (contiguous) {
    return static_cast<int>(dict_id) >= lo && static_cast<int>(dict_id) <= hi;
  }
  const bool in_list =
      std::binary_search(ids.begin(), ids.end(), dict_id);
  return negated ? !in_list : in_list;
}

DictIdMatch MatchDictIds(const Dictionary& dict, const Predicate& pred) {
  DictIdMatch match;
  const int cardinality = dict.size();
  switch (pred.op) {
    case PredicateOp::kEq: {
      const int id = dict.IndexOf(pred.values[0]);
      if (id < 0) {
        match.match_none = true;
      } else {
        match.contiguous = true;
        match.lo = id;
        match.hi = id;
        if (cardinality == 1) match.match_all = true;
      }
      return match;
    }
    case PredicateOp::kNotEq: {
      const int id = dict.IndexOf(pred.values[0]);
      if (id < 0) {
        match.match_all = true;
      } else if (cardinality == 1) {
        match.match_none = true;
      } else {
        match.negated = true;
        match.ids.push_back(static_cast<uint32_t>(id));
      }
      return match;
    }
    case PredicateOp::kIn:
    case PredicateOp::kNotIn: {
      std::vector<uint32_t> ids;
      for (const auto& value : pred.values) {
        const int id = dict.IndexOf(value);
        if (id >= 0) ids.push_back(static_cast<uint32_t>(id));
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      const bool covers_all =
          static_cast<int>(ids.size()) == cardinality;
      if (pred.op == PredicateOp::kIn) {
        if (ids.empty()) {
          match.match_none = true;
        } else if (covers_all) {
          match.match_all = true;
        } else if (ids.back() - ids.front() + 1 == ids.size()) {
          match.contiguous = true;
          match.lo = static_cast<int>(ids.front());
          match.hi = static_cast<int>(ids.back());
        } else {
          match.ids = std::move(ids);
        }
      } else {
        if (ids.empty()) {
          match.match_all = true;
        } else if (covers_all) {
          match.match_none = true;
        } else {
          match.negated = true;
          match.ids = std::move(ids);
        }
      }
      return match;
    }
    case PredicateOp::kRange: {
      if (dict.sorted()) {
        const Dictionary::IdRange range =
            dict.RangeFor(pred.lower, pred.lower_inclusive, pred.upper,
                          pred.upper_inclusive);
        if (range.empty()) {
          match.match_none = true;
        } else if (range.lo == 0 && range.hi == cardinality - 1) {
          match.match_all = true;
        } else {
          match.contiguous = true;
          match.lo = range.lo;
          match.hi = range.hi;
        }
      } else {
        // Unsorted (realtime) dictionary: scan all dictionary entries.
        for (int id = 0; id < cardinality; ++id) {
          bool ok = true;
          if (pred.lower.has_value()) {
            const int c = dict.CompareValueAt(id, *pred.lower);
            ok = pred.lower_inclusive ? c >= 0 : c > 0;
          }
          if (ok && pred.upper.has_value()) {
            const int c = dict.CompareValueAt(id, *pred.upper);
            ok = pred.upper_inclusive ? c <= 0 : c < 0;
          }
          if (ok) match.ids.push_back(static_cast<uint32_t>(id));
        }
        if (match.ids.empty()) {
          match.match_none = true;
        } else if (static_cast<int>(match.ids.size()) == cardinality) {
          match.match_all = true;
          match.ids.clear();
        }
      }
      return match;
    }
  }
  return match;
}

namespace {

int CompareForPredicate(const Value& a, const Value& b) {
  const auto* sa = std::get_if<std::string>(&a);
  const auto* sb = std::get_if<std::string>(&b);
  if (sa != nullptr && sb != nullptr) return sa->compare(*sb);
  const double da = ValueToDouble(a);
  const double db = ValueToDouble(b);
  return da < db ? -1 : (da > db ? 1 : 0);
}

}  // namespace

bool PredicateMatchesValue(const Predicate& pred, const Value& value) {
  // Multi-value: positive predicates match when any entry matches;
  // negated predicates match when no entry is excluded.
  if (IsMultiValue(value)) {
    std::vector<Value> entries;
    if (const auto* xs = std::get_if<std::vector<int64_t>>(&value)) {
      for (int64_t x : *xs) entries.emplace_back(x);
    } else if (const auto* ds = std::get_if<std::vector<double>>(&value)) {
      for (double d : *ds) entries.emplace_back(d);
    } else if (const auto* ss =
                   std::get_if<std::vector<std::string>>(&value)) {
      for (const auto& s : *ss) entries.emplace_back(s);
    }
    const bool negated =
        pred.op == PredicateOp::kNotEq || pred.op == PredicateOp::kNotIn;
    if (negated) {
      Predicate positive = pred;
      positive.op = pred.op == PredicateOp::kNotEq ? PredicateOp::kEq
                                                   : PredicateOp::kIn;
      for (const auto& entry : entries) {
        if (PredicateMatchesValue(positive, entry)) return false;
      }
      return true;
    }
    for (const auto& entry : entries) {
      if (PredicateMatchesValue(pred, entry)) return true;
    }
    return false;
  }
  switch (pred.op) {
    case PredicateOp::kEq:
      return CompareForPredicate(value, pred.values[0]) == 0;
    case PredicateOp::kNotEq:
      return CompareForPredicate(value, pred.values[0]) != 0;
    case PredicateOp::kIn:
    case PredicateOp::kNotIn: {
      bool found = false;
      for (const auto& candidate : pred.values) {
        if (CompareForPredicate(value, candidate) == 0) {
          found = true;
          break;
        }
      }
      return pred.op == PredicateOp::kIn ? found : !found;
    }
    case PredicateOp::kRange: {
      if (pred.lower.has_value()) {
        const int c = CompareForPredicate(value, *pred.lower);
        if (pred.lower_inclusive ? c < 0 : c <= 0) return false;
      }
      if (pred.upper.has_value()) {
        const int c = CompareForPredicate(value, *pred.upper);
        if (pred.upper_inclusive ? c > 0 : c >= 0) return false;
      }
      return true;
    }
  }
  return false;
}

Result<DocIdSet> FilterEvaluator::Evaluate(
    const std::optional<FilterNode>& filter) {
  if (!filter.has_value()) return DocIdSet::All(segment_.num_docs());
  return EvalNode(*filter, nullptr);
}

FilterEvaluator::LeafStrategy FilterEvaluator::ClassifyLeaf(
    const Predicate& pred) const {
  const ColumnReader* column = segment_.GetColumn(pred.column);
  if (column == nullptr) return LeafStrategy::kConstant;
  const DictIdMatch match = MatchDictIds(column->dictionary(), pred);
  if (match.match_all || match.match_none) return LeafStrategy::kConstant;
  if (column->sorted_index() != nullptr && match.contiguous) {
    return LeafStrategy::kSortedRange;
  }
  if (column->inverted_index() != nullptr) return LeafStrategy::kInverted;
  return LeafStrategy::kScan;
}

int FilterEvaluator::EstimateCost(const FilterNode& node) const {
  if (node.kind != FilterNode::Kind::kLeaf) {
    // Composite children: assume moderately expensive.
    return 100;
  }
  switch (ClassifyLeaf(node.predicate)) {
    case LeafStrategy::kConstant:
      return 0;
    case LeafStrategy::kSortedRange:
      return 1;
    case LeafStrategy::kInverted:
      return 10;
    case LeafStrategy::kScan:
      return 1000;
  }
  return 1000;
}

Result<DocIdSet> FilterEvaluator::EvalNode(const FilterNode& node,
                                           const DocIdSet* domain) {
  switch (node.kind) {
    case FilterNode::Kind::kLeaf:
      return EvalLeaf(node.predicate, domain);
    case FilterNode::Kind::kAnd:
      return EvalAnd(node.children, domain);
    case FilterNode::Kind::kOr:
      return EvalOr(node.children, domain);
  }
  return Status::Internal("bad filter node");
}

Result<DocIdSet> FilterEvaluator::EvalAnd(
    const std::vector<FilterNode>& children, const DocIdSet* domain) {
  // Order children by estimated cost so sorted-range operators run first
  // and narrow the domain for the expensive scans (paper section 4.2).
  std::vector<const FilterNode*> ordered;
  ordered.reserve(children.size());
  for (const auto& child : children) ordered.push_back(&child);
  if (reorder_predicates_) {
    std::stable_sort(ordered.begin(), ordered.end(),
                     [this](const FilterNode* a, const FilterNode* b) {
                       return EstimateCost(*a) < EstimateCost(*b);
                     });
  }

  DocIdSet current =
      domain != nullptr ? *domain : DocIdSet::All(segment_.num_docs());
  for (const FilterNode* child : ordered) {
    PINOT_ASSIGN_OR_RETURN(DocIdSet child_set, EvalNode(*child, &current));
    current = current.Intersect(child_set);
    if (current.IsEmpty()) break;
  }
  return current;
}

Result<DocIdSet> FilterEvaluator::EvalOr(
    const std::vector<FilterNode>& children, const DocIdSet* domain) {
  DocIdSet result = DocIdSet::None(segment_.num_docs());
  for (const auto& child : children) {
    PINOT_ASSIGN_OR_RETURN(DocIdSet child_set, EvalNode(child, domain));
    result = result.Union(child_set);
    if (result.IsAll()) break;
  }
  if (domain != nullptr) return result.Intersect(*domain);
  return result;
}

const char* LeafStrategyToString(FilterEvaluator::LeafStrategy strategy) {
  switch (strategy) {
    case FilterEvaluator::LeafStrategy::kConstant:
      return "constant";
    case FilterEvaluator::LeafStrategy::kSortedRange:
      return "sorted-range";
    case FilterEvaluator::LeafStrategy::kInverted:
      return "inverted";
    case FilterEvaluator::LeafStrategy::kScan:
      return "scan";
  }
  return "unknown";
}

Result<DocIdSet> FilterEvaluator::EvalLeaf(const Predicate& pred,
                                           const DocIdSet* domain) {
  if (trace_span_ != nullptr) {
    trace_span_->Label("op:" + pred.column,
                       LeafStrategyToString(ClassifyLeaf(pred)));
  }
  const uint32_t num_docs = segment_.num_docs();
  auto bounded = [&](DocIdSet set) {
    return domain != nullptr ? set.Intersect(*domain) : set;
  };

  const ColumnReader* column = segment_.GetColumn(pred.column);
  if (column == nullptr) {
    // Column added to the schema after this segment was built: every doc
    // virtually holds the schema default (paper section 5.2).
    const int field_index = segment_.schema().IndexOf(pred.column);
    if (field_index < 0) {
      return Status::NotFound("unknown column in filter: " + pred.column);
    }
    const Value default_value =
        segment_.schema().EffectiveDefault(field_index);
    if (PredicateMatchesValue(pred, default_value)) {
      return bounded(DocIdSet::All(num_docs));
    }
    return DocIdSet::None(num_docs);
  }

  const DictIdMatch match = MatchDictIds(column->dictionary(), pred);
  if (match.match_none) return DocIdSet::None(num_docs);
  if (match.match_all) return bounded(DocIdSet::All(num_docs));

  // Sorted-range operator: a contiguous dict-id interval on a physically
  // sorted column is a contiguous doc range.
  if (column->sorted_index() != nullptr && match.contiguous) {
    uint32_t begin, end;
    column->sorted_index()->GetDocRangeForIdRange(match.lo, match.hi, &begin,
                                                  &end);
    return bounded(DocIdSet::FromRange(begin, end, num_docs));
  }

  // Inverted-index operator.
  if (column->inverted_index() != nullptr) {
    const InvertedIndex& inverted = *column->inverted_index();
    RoaringBitmap bitmap;
    if (match.contiguous) {
      bitmap = inverted.GetBitmapForRange(match.lo, match.hi);
    } else {
      for (uint32_t id : match.ids) {
        bitmap.OrWith(inverted.GetBitmap(static_cast<int>(id)));
      }
      if (match.negated) bitmap = bitmap.Not(num_docs);
    }
    return bounded(DocIdSet::FromBitmap(std::move(bitmap), num_docs));
  }

  // Scan operator, restricted to the current domain.
  const DocIdSet scan_domain =
      domain != nullptr ? *domain : DocIdSet::All(num_docs);
  return ScanColumn(*column, match, scan_domain);
}

DocIdSet FilterEvaluator::ScanColumn(const ColumnReader& column,
                                     const DictIdMatch& match,
                                     const DocIdSet& domain) {
  const uint32_t num_docs = segment_.num_docs();
  // O(1) membership mask over dictionary ids.
  const int cardinality = column.dictionary().size();
  std::vector<uint8_t> mask(cardinality, match.negated ? 1 : 0);
  if (match.contiguous) {
    for (int id = match.lo; id <= match.hi; ++id) mask[id] = 1;
  } else {
    for (uint32_t id : match.ids) mask[id] = match.negated ? 0 : 1;
  }

  std::vector<uint32_t> matching;
  uint64_t scanned = 0;
  if (column.spec().single_value) {
    domain.ForEachRange([&](uint32_t begin, uint32_t end) {
      scanned += end - begin;
      for (uint32_t doc = begin; doc < end; ++doc) {
        if (mask[column.GetDictId(doc)] != 0) matching.push_back(doc);
      }
    });
  } else if (!match.negated) {
    // Multi-value, positive predicate: the document matches when *any*
    // entry matches.
    std::vector<uint32_t> ids;
    domain.ForEachRange([&](uint32_t begin, uint32_t end) {
      scanned += end - begin;
      for (uint32_t doc = begin; doc < end; ++doc) {
        column.GetDictIds(doc, &ids);
        for (uint32_t id : ids) {
          if (mask[id] != 0) {
            matching.push_back(doc);
            break;
          }
        }
      }
    });
  } else {
    // Multi-value, negated predicate (!=, NOT IN): document-level negation
    // — the document matches when *no* entry is excluded (vacuously true
    // for empty arrays). This matches the inverted-index path, which
    // complements the union of the excluded values' bitmaps.
    std::vector<uint32_t> ids;
    domain.ForEachRange([&](uint32_t begin, uint32_t end) {
      scanned += end - begin;
      for (uint32_t doc = begin; doc < end; ++doc) {
        column.GetDictIds(doc, &ids);
        bool excluded = false;
        for (uint32_t id : ids) {
          if (mask[id] == 0) {
            excluded = true;
            break;
          }
        }
        if (!excluded) matching.push_back(doc);
      }
    });
  }
  if (stats_ != nullptr) stats_->docs_scanned += scanned;
  return DocIdSet::FromBitmap(RoaringBitmap::FromValues(matching), num_docs);
}

}  // namespace pinot
