#include "common/status.h"

namespace pinot {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kQuotaExceeded:
      return "QuotaExceeded";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace pinot
