file(REMOVE_RECURSE
  "CMakeFiles/star_tree_test.dir/star_tree_test.cc.o"
  "CMakeFiles/star_tree_test.dir/star_tree_test.cc.o.d"
  "star_tree_test"
  "star_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
