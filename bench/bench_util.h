#ifndef PINOT_BENCH_BENCH_UTIL_H_
#define PINOT_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "query/parser.h"
#include "query/table_executor.h"
#include "segment/segment_builder.h"
#include "workload/workloads.h"

namespace pinot {
namespace bench {

/// Command-line knobs shared by the figure benches. Defaults keep the full
/// suite under a few minutes; raise --rows / --duration-ms for
/// higher-fidelity curves.
struct BenchOptions {
  uint32_t rows = 150000;
  int num_segments = 4;
  int num_queries = 2000;
  int client_threads = 8;
  int64_t duration_ms = 800;
  std::vector<double> qps_sweep = {100, 400, 1600, 6400, 12800, 25600};
  uint64_t seed = 42;
  std::string json_path;  // --json=FILE: machine-readable curve dump.

  static BenchOptions Parse(int argc, char** argv) {
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value_of = [&arg](const char* prefix) -> const char* {
        const size_t n = std::string(prefix).size();
        return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
      };
      if (const char* v = value_of("--rows=")) {
        options.rows = static_cast<uint32_t>(std::atoll(v));
      } else if (const char* v = value_of("--segments=")) {
        options.num_segments = std::atoi(v);
      } else if (const char* v = value_of("--queries=")) {
        options.num_queries = std::atoi(v);
      } else if (const char* v = value_of("--threads=")) {
        options.client_threads = std::atoi(v);
      } else if (const char* v = value_of("--duration-ms=")) {
        options.duration_ms = std::atoll(v);
      } else if (const char* v = value_of("--json=")) {
        options.json_path = v;
      } else if (const char* v = value_of("--qps=")) {
        options.qps_sweep.clear();
        std::string list = v;
        size_t pos = 0;
        while (pos < list.size()) {
          size_t comma = list.find(',', pos);
          if (comma == std::string::npos) comma = list.size();
          options.qps_sweep.push_back(std::atof(list.substr(pos, comma - pos).c_str()));
          pos = comma + 1;
        }
      }
    }
    return options;
  }

  WorkloadOptions workload_options() const {
    WorkloadOptions wo;
    wo.num_rows = rows;
    wo.num_queries = num_queries;
    wo.seed = seed;
    return wo;
  }
};

/// Splits a workload's rows into `num_segments` segments built with
/// `config`.
inline std::vector<std::shared_ptr<SegmentInterface>> BuildSegments(
    const Workload& workload, SegmentBuildConfig config, int num_segments,
    const std::string& name_prefix) {
  std::vector<std::shared_ptr<SegmentInterface>> segments;
  const size_t per_segment =
      (workload.rows.size() + num_segments - 1) / num_segments;
  size_t next = 0;
  for (int s = 0; s < num_segments && next < workload.rows.size(); ++s) {
    SegmentBuildConfig segment_config = config;
    segment_config.table_name = workload.name;
    segment_config.segment_name = name_prefix + "_" + std::to_string(s);
    SegmentBuilder builder(workload.schema, segment_config);
    for (size_t i = 0; i < per_segment && next < workload.rows.size();
         ++i, ++next) {
      Status st = builder.AddRow(workload.rows[next]);
      if (!st.ok()) {
        std::fprintf(stderr, "AddRow failed: %s\n", st.ToString().c_str());
        std::abort();
      }
    }
    auto segment = builder.Build();
    if (!segment.ok()) {
      std::fprintf(stderr, "Build failed: %s\n",
                   segment.status().ToString().c_str());
      std::abort();
    }
    segments.push_back(*segment);
  }
  return segments;
}

inline std::vector<Query> ParseQueries(const Workload& workload) {
  std::vector<Query> out;
  out.reserve(workload.queries.size());
  for (const auto& pql : workload.queries) {
    auto query = ParsePql(pql);
    if (!query.ok()) {
      std::fprintf(stderr, "bad query %s: %s\n", pql.c_str(),
                   query.status().ToString().c_str());
      std::abort();
    }
    out.push_back(std::move(*query));
  }
  return out;
}

/// One point of a latency-vs-QPS curve.
struct QpsPoint {
  double offered_qps = 0;
  double achieved_qps = 0;
  double avg_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  uint64_t queries = 0;
};

inline double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[index];
}

/// Open-loop load generator: `client_threads` threads issue queries at
/// fixed per-thread intervals summing to `target_qps`; latency is measured
/// from each query's *scheduled* time so queue buildup past saturation is
/// visible (no coordinated omission). This reproduces the shape of the
/// paper's latency-vs-QPS figures on a single machine.
inline QpsPoint RunQpsPoint(const std::function<void(int)>& issue_query,
                            int num_queries, double target_qps,
                            int client_threads, int64_t duration_ms) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now() + std::chrono::milliseconds(10);
  const auto deadline = start + std::chrono::milliseconds(duration_ms);
  const double interval_s = client_threads / target_qps;

  std::vector<std::vector<double>> latencies(client_threads);
  std::vector<std::thread> threads;
  std::atomic<uint64_t> issued{0};
  for (int t = 0; t < client_threads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(1000 + t);
      auto& local = latencies[t];
      int64_t slot = 0;
      while (true) {
        const auto scheduled =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            (slot + static_cast<double>(t) / client_threads) *
                            interval_s));
        if (scheduled >= deadline) break;
        std::this_thread::sleep_until(scheduled);
        issue_query(static_cast<int>(rng.NextUint64(num_queries)));
        const auto done = Clock::now();
        local.push_back(
            std::chrono::duration<double, std::milli>(done - scheduled)
                .count());
        issued.fetch_add(1, std::memory_order_relaxed);
        ++slot;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::vector<double> all;
  for (auto& local : latencies) {
    all.insert(all.end(), local.begin(), local.end());
  }
  std::sort(all.begin(), all.end());

  QpsPoint point;
  point.offered_qps = target_qps;
  point.queries = issued.load();
  point.achieved_qps = point.queries / (duration_ms / 1000.0);
  double sum = 0;
  for (double v : all) sum += v;
  point.avg_ms = all.empty() ? 0 : sum / all.size();
  point.p50_ms = Percentile(all, 0.50);
  point.p95_ms = Percentile(all, 0.95);
  point.p99_ms = Percentile(all, 0.99);
  return point;
}

/// Accumulates (config, QpsPoint) rows and dumps them as JSON for
/// scripts/check_perf.sh. The format is deliberately line-oriented — one
/// point object per line inside the "points" array — so shell tooling can
/// extract fields with grep/awk without a JSON library.
class BenchJsonWriter {
 public:
  BenchJsonWriter(std::string bench, std::string path)
      : bench_(std::move(bench)), path_(std::move(path)) {}

  void Add(const std::string& config, const QpsPoint& point) {
    if (path_.empty()) return;
    rows_.push_back(Row{config, point});
  }

  /// Writes the collected rows; a no-op when --json was not given.
  bool Write() const {
    if (path_.empty()) return true;
    std::FILE* file = std::fopen(path_.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n",
                   path_.c_str());
      return false;
    }
    std::fprintf(file, "{\"bench\":\"%s\",\"points\":[\n", bench_.c_str());
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      std::fprintf(
          file,
          "{\"config\":\"%s\",\"offered_qps\":%.0f,\"achieved_qps\":%.0f,"
          "\"avg_ms\":%.3f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,"
          "\"queries\":%llu}%s\n",
          row.config.c_str(), row.point.offered_qps, row.point.achieved_qps,
          row.point.avg_ms, row.point.p50_ms, row.point.p95_ms,
          row.point.p99_ms, static_cast<unsigned long long>(row.point.queries),
          i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(file, "]}\n");
    std::fclose(file);
    std::printf("# wrote %zu bench points to %s\n", rows_.size(),
                path_.c_str());
    return true;
  }

 private:
  struct Row {
    std::string config;
    QpsPoint point;
  };
  std::string bench_;
  std::string path_;
  std::vector<Row> rows_;
};

inline void PrintQpsHeader(const char* figure, const char* description) {
  std::printf("# %s — %s\n", figure, description);
  std::printf("%-28s %12s %12s %10s %10s %10s %10s\n", "config",
              "offered_qps", "achieved_qps", "avg_ms", "p50_ms", "p95_ms",
              "p99_ms");
}

inline void PrintQpsPoint(const std::string& config, const QpsPoint& point) {
  std::printf("%-28s %12.0f %12.0f %10.3f %10.3f %10.3f %10.3f\n",
              config.c_str(), point.offered_qps, point.achieved_qps,
              point.avg_ms, point.p50_ms, point.p95_ms, point.p99_ms);
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace pinot

#endif  // PINOT_BENCH_BENCH_UTIL_H_
