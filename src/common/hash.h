#ifndef PINOT_COMMON_HASH_H_
#define PINOT_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace pinot {

/// Murmur2 hash (32-bit), matching the implementation used by the Apache
/// Kafka default partitioner. Pinot ships a partition function with exactly
/// this behaviour so that offline data can be partitioned the same way as
/// the realtime (Kafka-ingested) data (paper section 4.4).
uint32_t Murmur2(std::string_view data, uint32_t seed = 0x9747b28c);

/// Kafka's default partition assignment: positive murmur2 of the key,
/// modulo the partition count.
int32_t KafkaPartition(std::string_view key, int32_t num_partitions);

/// CRC-32 (IEEE 802.3 polynomial). Used for segment integrity checks on
/// upload (paper section 3.3.5: the controller "unpacks it to ensure its
/// integrity").
uint32_t Crc32(std::string_view data);

}  // namespace pinot

#endif  // PINOT_COMMON_HASH_H_
