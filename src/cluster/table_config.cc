#include "cluster/table_config.h"

namespace pinot {

const char* TableTypeToString(TableType type) {
  return type == TableType::kOffline ? "OFFLINE" : "REALTIME";
}

const char* RoutingStrategyToString(RoutingStrategy strategy) {
  switch (strategy) {
    case RoutingStrategy::kBalanced:
      return "balanced";
    case RoutingStrategy::kGenerated:
      return "generated";
    case RoutingStrategy::kPartitionAware:
      return "partition-aware";
  }
  return "?";
}

std::string TableConfig::PhysicalName() const {
  return name + "_" + TableTypeToString(type);
}

std::string LogicalTableName(const std::string& physical_table) {
  for (const char* suffix : {"_OFFLINE", "_REALTIME"}) {
    const size_t len = std::char_traits<char>::length(suffix);
    if (physical_table.size() > len &&
        physical_table.compare(physical_table.size() - len, len, suffix) ==
            0) {
      return physical_table.substr(0, physical_table.size() - len);
    }
  }
  return physical_table;
}

namespace {
void WriteStringList(const std::vector<std::string>& list,
                     ByteWriter* writer) {
  writer->WriteU32(static_cast<uint32_t>(list.size()));
  for (const auto& s : list) writer->WriteString(s);
}

Result<std::vector<std::string>> ReadStringList(ByteReader* reader) {
  PINOT_ASSIGN_OR_RETURN(uint32_t n, reader->ReadU32());
  std::vector<std::string> out(n);
  for (uint32_t i = 0; i < n; ++i) {
    PINOT_ASSIGN_OR_RETURN(out[i], reader->ReadString());
  }
  return out;
}
}  // namespace

void TableConfig::Serialize(ByteWriter* writer) const {
  writer->WriteString(name);
  writer->WriteU8(static_cast<uint8_t>(type));
  schema.Serialize(writer);
  writer->WriteI32(num_replicas);
  writer->WriteString(server_tenant);
  WriteStringList(sort_columns, writer);
  WriteStringList(inverted_index_columns, writer);
  WriteStringList(star_tree.dimensions, writer);
  WriteStringList(star_tree.metrics, writer);
  writer->WriteU32(star_tree.max_leaf_records);
  writer->WriteI64(retention_time_units);
  writer->WriteI64(time_unit_millis);
  writer->WriteI64(quota_bytes);
  writer->WriteU8(static_cast<uint8_t>(routing));
  writer->WriteI32(target_servers_per_query);
  writer->WriteI32(routing_tables_to_generate);
  writer->WriteI32(routing_tables_to_keep);
  writer->WriteString(partition_column);
  writer->WriteI32(num_partitions);
  writer->WriteString(realtime.topic);
  writer->WriteI32(realtime.num_partitions);
  writer->WriteI64(realtime.flush_threshold_rows);
  writer->WriteI64(realtime.flush_threshold_millis);
  writer->WriteU8(upsert_enabled ? 1 : 0);
  WriteStringList(upsert_key_columns, writer);
}

Result<TableConfig> TableConfig::Deserialize(ByteReader* reader) {
  TableConfig config;
  PINOT_ASSIGN_OR_RETURN(config.name, reader->ReadString());
  PINOT_ASSIGN_OR_RETURN(uint8_t type_byte, reader->ReadU8());
  if (type_byte > 1) return Status::Corruption("bad table type");
  config.type = static_cast<TableType>(type_byte);
  PINOT_ASSIGN_OR_RETURN(config.schema, Schema::Deserialize(reader));
  PINOT_ASSIGN_OR_RETURN(config.num_replicas, reader->ReadI32());
  PINOT_ASSIGN_OR_RETURN(config.server_tenant, reader->ReadString());
  PINOT_ASSIGN_OR_RETURN(config.sort_columns, ReadStringList(reader));
  PINOT_ASSIGN_OR_RETURN(config.inverted_index_columns,
                         ReadStringList(reader));
  PINOT_ASSIGN_OR_RETURN(config.star_tree.dimensions, ReadStringList(reader));
  PINOT_ASSIGN_OR_RETURN(config.star_tree.metrics, ReadStringList(reader));
  PINOT_ASSIGN_OR_RETURN(config.star_tree.max_leaf_records, reader->ReadU32());
  PINOT_ASSIGN_OR_RETURN(config.retention_time_units, reader->ReadI64());
  PINOT_ASSIGN_OR_RETURN(config.time_unit_millis, reader->ReadI64());
  PINOT_ASSIGN_OR_RETURN(config.quota_bytes, reader->ReadI64());
  PINOT_ASSIGN_OR_RETURN(uint8_t routing_byte, reader->ReadU8());
  if (routing_byte > 2) return Status::Corruption("bad routing strategy");
  config.routing = static_cast<RoutingStrategy>(routing_byte);
  PINOT_ASSIGN_OR_RETURN(config.target_servers_per_query, reader->ReadI32());
  PINOT_ASSIGN_OR_RETURN(config.routing_tables_to_generate,
                         reader->ReadI32());
  PINOT_ASSIGN_OR_RETURN(config.routing_tables_to_keep, reader->ReadI32());
  PINOT_ASSIGN_OR_RETURN(config.partition_column, reader->ReadString());
  PINOT_ASSIGN_OR_RETURN(config.num_partitions, reader->ReadI32());
  PINOT_ASSIGN_OR_RETURN(config.realtime.topic, reader->ReadString());
  PINOT_ASSIGN_OR_RETURN(config.realtime.num_partitions, reader->ReadI32());
  PINOT_ASSIGN_OR_RETURN(config.realtime.flush_threshold_rows,
                         reader->ReadI64());
  PINOT_ASSIGN_OR_RETURN(config.realtime.flush_threshold_millis,
                         reader->ReadI64());
  PINOT_ASSIGN_OR_RETURN(uint8_t upsert_byte, reader->ReadU8());
  config.upsert_enabled = upsert_byte != 0;
  PINOT_ASSIGN_OR_RETURN(config.upsert_key_columns, ReadStringList(reader));
  return config;
}

}  // namespace pinot
