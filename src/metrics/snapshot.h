#ifndef PINOT_METRICS_SNAPSHOT_H_
#define PINOT_METRICS_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "metrics/metrics.h"

namespace pinot {

/// Windowed-rate layer over the MetricsRegistry ("Enhancing OLAP Resilience
/// at LinkedIn": operations reason about rates over the last window, not
/// lifetime totals). A MetricsSnapshot captures every series at one point in
/// time; DeltaBetween two snapshots yields per-series deltas and rates; a
/// SnapshotRing keeps a bounded history so benches, tests, and the health
/// evaluator get rates without any external scraper.

/// Point-in-time sample of every live series in a registry. Values are read
/// via relaxed atomics, so a snapshot taken during a storm of observations
/// is approximate per series but never torn within one value.
struct MetricsSnapshot {
  struct HistogramPoint {
    uint64_t count = 0;
    double sum = 0;
  };

  /// Monotonic capture time, microseconds. Drives rate denominators.
  int64_t steady_micros = 0;

  std::map<std::string, uint64_t> counters;        // series key -> value
  std::map<std::string, double> gauges;            // series key -> value
  std::map<std::string, HistogramPoint> histograms;  // key -> (count, sum)

  /// Value of one counter series (exact key), 0 when absent.
  uint64_t CounterValue(const std::string& key) const;
  /// Value of one gauge series (exact key), 0 when absent.
  double GaugeValue(const std::string& key) const;
  /// Sum across every series of the family `name`, any labels.
  uint64_t CounterFamilyTotal(const std::string& name) const;
  /// Max across every series of the gauge family `name`, 0 when absent.
  double GaugeFamilyMax(const std::string& name) const;
};

/// Captures every series of `registry` now (or at an explicit monotonic
/// time, for deterministic tests).
MetricsSnapshot TakeSnapshot(const MetricsRegistry& registry);
MetricsSnapshot TakeSnapshot(const MetricsRegistry& registry,
                             int64_t now_micros);

/// Per-series differences between two snapshots of the same registry.
/// Counter deltas saturate at 0 (a counter can only appear to go backwards
/// when the snapshots come from different registries); gauge deltas are
/// signed, so a falling consumption lag shows as negative trend.
struct SnapshotDelta {
  double seconds = 0;
  std::map<std::string, uint64_t> counter_deltas;
  std::map<std::string, double> gauge_deltas;
  std::map<std::string, MetricsSnapshot::HistogramPoint> histogram_deltas;

  uint64_t CounterDelta(const std::string& key) const;
  /// Sum of deltas across every series of the family `name`.
  uint64_t CounterFamilyDelta(const std::string& name) const;
  /// CounterDelta / seconds (0 when the window is empty).
  double Rate(const std::string& key) const;
  double FamilyRate(const std::string& name) const;
  double GaugeDelta(const std::string& key) const;
  /// Sum of signed gauge deltas across the family — e.g. the consumption
  /// lag trend across all partitions.
  double GaugeFamilyDelta(const std::string& name) const;
};

SnapshotDelta DeltaBetween(const MetricsSnapshot& older,
                           const MetricsSnapshot& newer);

/// Cluster-level rates derived from one delta window, over the metric
/// families the broker/server/realtime layers maintain.
struct WindowedRates {
  double seconds = 0;
  double qps = 0;              // broker_queries_total
  double docs_per_sec = 0;     // server_docs_scanned_total
  double scan_gb_per_sec = 0;  // server_scan_bytes_total (decode estimate)
  double error_rate = 0;       // partial results / queries, this window
  double shed_rate = 0;        // sheds / (queries + sheds), this window
  double hedge_rate = 0;       // hedged calls / queries, this window
  double lag_delta = 0;        // realtime_consumption_lag trend (sum, rows)

  static WindowedRates From(const SnapshotDelta& delta);

  /// One line: `window seconds=... qps=... ... lag_delta=...`.
  std::string ToString() const;
};

/// Fixed-capacity chronological ring of snapshots. Take() appends (evicting
/// the oldest past capacity) and returns the new snapshot. Thread-safe.
class SnapshotRing {
 public:
  explicit SnapshotRing(size_t capacity = 16);

  MetricsSnapshot Take(const MetricsRegistry& registry);
  MetricsSnapshot Take(const MetricsRegistry& registry, int64_t now_micros);

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// i = 0 is the newest snapshot, size() - 1 the oldest.
  MetricsSnapshot Nth(size_t i) const;

  /// Delta between the two newest snapshots; nullopt with fewer than two.
  std::optional<SnapshotDelta> LatestDelta() const;
  /// Delta spanning the whole ring (oldest -> newest).
  std::optional<SnapshotDelta> FullDelta() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<MetricsSnapshot> ring_;  // chronological, oldest first
};

}  // namespace pinot

#endif  // PINOT_METRICS_SNAPSHOT_H_
