#ifndef PINOT_QUERY_QUERY_H_
#define PINOT_QUERY_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "data/value.h"

namespace pinot {

/// Aggregation functions supported by PQL (paper section 3.1 and section 6:
/// "simple aggregations (sum of clicks/views, distinct count of viewers)").
enum class AggregationType {
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kDistinctCount,
};

const char* AggregationTypeToString(AggregationType type);

struct AggregationSpec {
  AggregationType type = AggregationType::kCount;
  std::string column;  // Empty for COUNT(*).

  std::string ToString() const;
};

/// Leaf comparison operators. Ranges cover >, >=, <, <=, BETWEEN.
enum class PredicateOp {
  kEq,
  kNotEq,
  kIn,
  kNotIn,
  kRange,
};

struct Predicate {
  std::string column;
  PredicateOp op = PredicateOp::kEq;
  // kEq/kNotEq: one value. kIn/kNotIn: n values.
  std::vector<Value> values;
  // kRange bounds; unset side is unbounded.
  std::optional<Value> lower;
  std::optional<Value> upper;
  bool lower_inclusive = true;
  bool upper_inclusive = true;

  std::string ToString() const;
};

/// Boolean filter tree: leaves are predicates, internal nodes AND/OR.
struct FilterNode {
  enum class Kind { kLeaf, kAnd, kOr };

  Kind kind = Kind::kLeaf;
  Predicate predicate;              // kLeaf.
  std::vector<FilterNode> children;  // kAnd / kOr.

  static FilterNode Leaf(Predicate p) {
    FilterNode node;
    node.kind = Kind::kLeaf;
    node.predicate = std::move(p);
    return node;
  }
  static FilterNode And(std::vector<FilterNode> children) {
    FilterNode node;
    node.kind = Kind::kAnd;
    node.children = std::move(children);
    return node;
  }
  static FilterNode Or(std::vector<FilterNode> children) {
    FilterNode node;
    node.kind = Kind::kOr;
    node.children = std::move(children);
    return node;
  }

  std::string ToString() const;
};

/// A parsed PQL query (paper section 3.1: "PQL is modeled around SQL and
/// supports selection, projection, aggregations, and top-n queries, but does
/// not support joins or nested queries").
struct Query {
  std::string table;

  // Aggregation mode: one or more aggregations, optional group-by.
  std::vector<AggregationSpec> aggregations;
  std::vector<std::string> group_by;

  // Selection mode: projected columns ("*" expands at execution).
  std::vector<std::string> selection_columns;

  std::optional<FilterNode> filter;

  // TOP n for group-by results; LIMIT for selections.
  int top_n = 10;
  int limit = 10;

  // Selection ordering: (column, descending).
  std::vector<std::pair<std::string, bool>> order_by;

  // Observability prefixes. `TRACE SELECT ...` executes normally and
  // attaches the rendered span tree to the result; `EXPLAIN SELECT ...`
  // runs per-segment planning only and reports the would-be plan without
  // executing. These ride inside ServerQueryRequest (the query is passed
  // by value in-process), so servers see them without protocol changes.
  bool trace = false;
  bool explain = false;

  bool IsAggregation() const { return !aggregations.empty(); }
  bool HasGroupBy() const { return !group_by.empty(); }

  std::string ToString() const;
};

}  // namespace pinot

#endif  // PINOT_QUERY_QUERY_H_
