#include "query/filter_evaluator.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using test::BuildAnalyticsSegment;

Predicate Eq(const std::string& column, Value v) {
  Predicate pred;
  pred.column = column;
  pred.op = PredicateOp::kEq;
  pred.values.push_back(std::move(v));
  return pred;
}

TEST(DictIdMatchTest, EqOnSortedDictionary) {
  Dictionary dict = Dictionary::BuildSortedInt64({10, 20, 30});
  DictIdMatch match = MatchDictIds(dict, Eq("c", int64_t{20}));
  EXPECT_TRUE(match.contiguous);
  EXPECT_EQ(match.lo, 1);
  EXPECT_EQ(match.hi, 1);
  EXPECT_TRUE(match.Matches(1));
  EXPECT_FALSE(match.Matches(0));

  EXPECT_TRUE(MatchDictIds(dict, Eq("c", int64_t{25})).match_none);
}

TEST(DictIdMatchTest, NotEqBecomesNegatedList) {
  Dictionary dict = Dictionary::BuildSortedInt64({10, 20, 30});
  Predicate pred = Eq("c", int64_t{20});
  pred.op = PredicateOp::kNotEq;
  DictIdMatch match = MatchDictIds(dict, pred);
  EXPECT_TRUE(match.negated);
  EXPECT_TRUE(match.Matches(0));
  EXPECT_FALSE(match.Matches(1));
  // NotEq of an absent value matches everything.
  pred.values[0] = int64_t{99};
  EXPECT_TRUE(MatchDictIds(dict, pred).match_all);
}

TEST(DictIdMatchTest, ConsecutiveInBecomesContiguous) {
  Dictionary dict = Dictionary::BuildSortedInt64({10, 20, 30, 40});
  Predicate pred;
  pred.column = "c";
  pred.op = PredicateOp::kIn;
  pred.values = {Value{int64_t{20}}, Value{int64_t{30}}};
  DictIdMatch match = MatchDictIds(dict, pred);
  EXPECT_TRUE(match.contiguous);
  EXPECT_EQ(match.lo, 1);
  EXPECT_EQ(match.hi, 2);
  // Non-consecutive stays a list.
  pred.values = {Value{int64_t{10}}, Value{int64_t{40}}};
  match = MatchDictIds(dict, pred);
  EXPECT_FALSE(match.contiguous);
  EXPECT_EQ(match.ids, (std::vector<uint32_t>{0, 3}));
  // Full coverage -> match_all.
  pred.values = {Value{int64_t{10}}, Value{int64_t{20}}, Value{int64_t{30}},
                 Value{int64_t{40}}};
  EXPECT_TRUE(MatchDictIds(dict, pred).match_all);
}

TEST(DictIdMatchTest, RangeOnUnsortedDictionaryScans) {
  Dictionary dict = Dictionary::CreateMutable(DataType::kLong);
  dict.GetOrAdd(Value{int64_t{30}});  // id 0
  dict.GetOrAdd(Value{int64_t{10}});  // id 1
  dict.GetOrAdd(Value{int64_t{20}});  // id 2
  Predicate pred;
  pred.column = "c";
  pred.op = PredicateOp::kRange;
  pred.lower = int64_t{15};
  pred.lower_inclusive = true;
  DictIdMatch match = MatchDictIds(dict, pred);
  EXPECT_FALSE(match.contiguous);
  EXPECT_EQ(match.ids, (std::vector<uint32_t>{0, 2}));
}

TEST(PredicateMatchesValueTest, ScalarSemantics) {
  EXPECT_TRUE(PredicateMatchesValue(Eq("c", int64_t{5}), Value{int64_t{5}}));
  EXPECT_FALSE(PredicateMatchesValue(Eq("c", int64_t{5}), Value{int64_t{6}}));
  EXPECT_TRUE(PredicateMatchesValue(Eq("c", std::string("x")),
                                    Value{std::string("x")}));
  Predicate range;
  range.column = "c";
  range.op = PredicateOp::kRange;
  range.lower = int64_t{3};
  range.lower_inclusive = false;
  range.upper = int64_t{7};
  range.upper_inclusive = true;
  EXPECT_FALSE(PredicateMatchesValue(range, Value{int64_t{3}}));
  EXPECT_TRUE(PredicateMatchesValue(range, Value{int64_t{4}}));
  EXPECT_TRUE(PredicateMatchesValue(range, Value{int64_t{7}}));
  EXPECT_FALSE(PredicateMatchesValue(range, Value{int64_t{8}}));
}

TEST(PredicateMatchesValueTest, MultiValueSemantics) {
  const Value tags = std::vector<std::string>{"a", "b"};
  EXPECT_TRUE(PredicateMatchesValue(Eq("c", std::string("a")), tags));
  EXPECT_FALSE(PredicateMatchesValue(Eq("c", std::string("z")), tags));
  // Negation is document-level: any excluded entry disqualifies the doc.
  Predicate neq_pred = Eq("c", std::string("a"));
  neq_pred.op = PredicateOp::kNotEq;
  EXPECT_FALSE(PredicateMatchesValue(neq_pred, tags));
  neq_pred.values[0] = std::string("z");
  EXPECT_TRUE(PredicateMatchesValue(neq_pred, tags));
  // Empty arrays vacuously satisfy negated predicates and fail positives.
  const Value empty = std::vector<std::string>{};
  EXPECT_FALSE(PredicateMatchesValue(Eq("c", std::string("a")), empty));
  EXPECT_TRUE(PredicateMatchesValue(neq_pred, empty));
}

TEST(FilterEvaluatorTest, StrategySelection) {
  SegmentBuildConfig config;
  config.sort_columns = {"memberId"};
  config.inverted_index_columns = {"browser"};
  auto segment = BuildAnalyticsSegment(config);
  FilterEvaluator evaluator(*segment, nullptr);

  EXPECT_EQ(evaluator.ClassifyLeaf(Eq("memberId", int64_t{1})),
            FilterEvaluator::LeafStrategy::kSortedRange);
  EXPECT_EQ(evaluator.ClassifyLeaf(Eq("browser", std::string("firefox"))),
            FilterEvaluator::LeafStrategy::kInverted);
  EXPECT_EQ(evaluator.ClassifyLeaf(Eq("country", std::string("us"))),
            FilterEvaluator::LeafStrategy::kScan);
  // Value absent from the segment: constant false.
  EXPECT_EQ(evaluator.ClassifyLeaf(Eq("memberId", int64_t{999})),
            FilterEvaluator::LeafStrategy::kConstant);
}

TEST(FilterEvaluatorTest, SortedRangeProducesRangeDocIdSet) {
  SegmentBuildConfig config;
  config.sort_columns = {"memberId"};
  auto segment = BuildAnalyticsSegment(config);
  auto query = ParsePql("SELECT count(*) FROM t WHERE memberId <= 2");
  FilterEvaluator evaluator(*segment, nullptr);
  auto docs = evaluator.Evaluate(query->filter);
  ASSERT_TRUE(docs.ok());
  EXPECT_TRUE(docs->IsRangeLike());
  EXPECT_EQ(docs->Cardinality(), 6u);  // memberId 1 (4 rows) + 2 (2 rows).
  EXPECT_EQ(docs->range_begin(), 0u);
}

TEST(FilterEvaluatorTest, AndPushdownRestrictsScanWork) {
  SegmentBuildConfig config;
  config.sort_columns = {"memberId"};
  auto segment = BuildAnalyticsSegment(config);
  auto query = ParsePql(
      "SELECT count(*) FROM t WHERE country = 'us' AND memberId = 1");
  ExecutionStats stats;
  FilterEvaluator evaluator(*segment, &stats);
  auto docs = evaluator.Evaluate(query->filter);
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->Cardinality(), 2u);  // us rows with memberId 1.
  // The country scan ran only within the memberId range (4 docs), not the
  // full 12-doc segment.
  EXPECT_EQ(stats.docs_scanned, 4u);

  // Without reordering, the scan runs first over the whole segment.
  ExecutionStats stats_no_reorder;
  FilterEvaluator no_reorder(*segment, &stats_no_reorder);
  no_reorder.set_reorder_predicates(false);
  auto docs2 = no_reorder.Evaluate(query->filter);
  ASSERT_TRUE(docs2.ok());
  EXPECT_EQ(docs2->Cardinality(), 2u);
  EXPECT_EQ(stats_no_reorder.docs_scanned, 12u);
}

TEST(FilterEvaluatorTest, EmptyAndShortCircuits) {
  auto segment = BuildAnalyticsSegment();
  auto query = ParsePql(
      "SELECT count(*) FROM t WHERE country = 'nope' AND browser = "
      "'firefox'");
  ExecutionStats stats;
  FilterEvaluator evaluator(*segment, &stats);
  auto docs = evaluator.Evaluate(query->filter);
  ASSERT_TRUE(docs.ok());
  EXPECT_TRUE(docs->IsEmpty());
  // The firefox scan never ran: the constant-false predicate emptied the
  // domain first.
  EXPECT_EQ(stats.docs_scanned, 0u);
}

TEST(FilterEvaluatorTest, NestedOrInsideAnd) {
  auto segment = BuildAnalyticsSegment();
  auto query = ParsePql(
      "SELECT count(*) FROM t WHERE (browser = 'firefox' OR browser = "
      "'safari') AND country = 'us'");
  FilterEvaluator evaluator(*segment, nullptr);
  auto docs = evaluator.Evaluate(query->filter);
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->Cardinality(), 4u);  // us rows: firefox x3 + safari x1.
}

}  // namespace
}  // namespace pinot
