#include "query/filter_evaluator.h"

#include <algorithm>
#include <cassert>

namespace pinot {

bool DictIdMatch::Matches(uint32_t dict_id) const {
  if (match_all) return true;
  if (match_none) return false;
  if (contiguous) {
    return static_cast<int>(dict_id) >= lo && static_cast<int>(dict_id) <= hi;
  }
  const bool in_list =
      std::binary_search(ids.begin(), ids.end(), dict_id);
  return negated ? !in_list : in_list;
}

DictIdMatch MatchDictIds(const Dictionary& dict, const Predicate& pred) {
  DictIdMatch match;
  const int cardinality = dict.size();
  switch (pred.op) {
    case PredicateOp::kEq: {
      const int id = dict.IndexOf(pred.values[0]);
      if (id < 0) {
        match.match_none = true;
      } else {
        match.contiguous = true;
        match.lo = id;
        match.hi = id;
        if (cardinality == 1) match.match_all = true;
      }
      return match;
    }
    case PredicateOp::kNotEq: {
      const int id = dict.IndexOf(pred.values[0]);
      if (id < 0) {
        match.match_all = true;
      } else if (cardinality == 1) {
        match.match_none = true;
      } else {
        match.negated = true;
        match.ids.push_back(static_cast<uint32_t>(id));
      }
      return match;
    }
    case PredicateOp::kIn:
    case PredicateOp::kNotIn: {
      std::vector<uint32_t> ids;
      for (const auto& value : pred.values) {
        const int id = dict.IndexOf(value);
        if (id >= 0) ids.push_back(static_cast<uint32_t>(id));
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      const bool covers_all =
          static_cast<int>(ids.size()) == cardinality;
      if (pred.op == PredicateOp::kIn) {
        if (ids.empty()) {
          match.match_none = true;
        } else if (covers_all) {
          match.match_all = true;
        } else if (ids.back() - ids.front() + 1 == ids.size()) {
          match.contiguous = true;
          match.lo = static_cast<int>(ids.front());
          match.hi = static_cast<int>(ids.back());
        } else {
          match.ids = std::move(ids);
        }
      } else {
        if (ids.empty()) {
          match.match_all = true;
        } else if (covers_all) {
          match.match_none = true;
        } else {
          match.negated = true;
          match.ids = std::move(ids);
        }
      }
      return match;
    }
    case PredicateOp::kRange: {
      if (dict.sorted()) {
        const Dictionary::IdRange range =
            dict.RangeFor(pred.lower, pred.lower_inclusive, pred.upper,
                          pred.upper_inclusive);
        if (range.empty()) {
          match.match_none = true;
        } else if (range.lo == 0 && range.hi == cardinality - 1) {
          match.match_all = true;
        } else {
          match.contiguous = true;
          match.lo = range.lo;
          match.hi = range.hi;
        }
      } else {
        // Unsorted (realtime) dictionary: scan all dictionary entries.
        for (int id = 0; id < cardinality; ++id) {
          bool ok = true;
          if (pred.lower.has_value()) {
            const int c = dict.CompareValueAt(id, *pred.lower);
            ok = pred.lower_inclusive ? c >= 0 : c > 0;
          }
          if (ok && pred.upper.has_value()) {
            const int c = dict.CompareValueAt(id, *pred.upper);
            ok = pred.upper_inclusive ? c <= 0 : c < 0;
          }
          if (ok) match.ids.push_back(static_cast<uint32_t>(id));
        }
        if (match.ids.empty()) {
          match.match_none = true;
        } else if (static_cast<int>(match.ids.size()) == cardinality) {
          match.match_all = true;
          match.ids.clear();
        }
      }
      return match;
    }
  }
  return match;
}

namespace {

// Multi-value rows may hold zero entries, and no dictionary id represents
// an empty row: a positive predicate that happens to match every dictionary
// id still fails on such rows, and a negated predicate that excludes every
// id still accepts them. Demote MatchDictIds' constant shortcuts to explicit
// id matches in those cases so evaluation consults the per-row entries.
DictIdMatch MatchDictIdsForColumn(const ColumnReader& column,
                                  const Predicate& pred) {
  DictIdMatch match = MatchDictIds(column.dictionary(), pred);
  if (column.spec().single_value) return match;
  const bool negated_pred = pred.op == PredicateOp::kNotEq ||
                            pred.op == PredicateOp::kNotIn;
  const int cardinality = column.dictionary().size();
  if (match.match_all && !negated_pred && cardinality > 0) {
    match.match_all = false;
    match.contiguous = true;
    match.lo = 0;
    match.hi = cardinality - 1;
  } else if (match.match_none && negated_pred && cardinality > 0) {
    match.match_none = false;
    match.negated = true;
    match.ids.resize(static_cast<size_t>(cardinality));
    for (int id = 0; id < cardinality; ++id) {
      match.ids[static_cast<size_t>(id)] = static_cast<uint32_t>(id);
    }
  }
  return match;
}

int CompareForPredicate(const Value& a, const Value& b) {
  const auto* sa = std::get_if<std::string>(&a);
  const auto* sb = std::get_if<std::string>(&b);
  if (sa != nullptr && sb != nullptr) return sa->compare(*sb);
  const double da = ValueToDouble(a);
  const double db = ValueToDouble(b);
  return da < db ? -1 : (da > db ? 1 : 0);
}

}  // namespace

bool PredicateMatchesValue(const Predicate& pred, const Value& value) {
  // Multi-value: positive predicates match when any entry matches;
  // negated predicates match when no entry is excluded.
  if (IsMultiValue(value)) {
    std::vector<Value> entries;
    if (const auto* xs = std::get_if<std::vector<int64_t>>(&value)) {
      for (int64_t x : *xs) entries.emplace_back(x);
    } else if (const auto* ds = std::get_if<std::vector<double>>(&value)) {
      for (double d : *ds) entries.emplace_back(d);
    } else if (const auto* ss =
                   std::get_if<std::vector<std::string>>(&value)) {
      for (const auto& s : *ss) entries.emplace_back(s);
    }
    const bool negated =
        pred.op == PredicateOp::kNotEq || pred.op == PredicateOp::kNotIn;
    if (negated) {
      Predicate positive = pred;
      positive.op = pred.op == PredicateOp::kNotEq ? PredicateOp::kEq
                                                   : PredicateOp::kIn;
      for (const auto& entry : entries) {
        if (PredicateMatchesValue(positive, entry)) return false;
      }
      return true;
    }
    for (const auto& entry : entries) {
      if (PredicateMatchesValue(pred, entry)) return true;
    }
    return false;
  }
  switch (pred.op) {
    case PredicateOp::kEq:
      return CompareForPredicate(value, pred.values[0]) == 0;
    case PredicateOp::kNotEq:
      return CompareForPredicate(value, pred.values[0]) != 0;
    case PredicateOp::kIn:
    case PredicateOp::kNotIn: {
      bool found = false;
      for (const auto& candidate : pred.values) {
        if (CompareForPredicate(value, candidate) == 0) {
          found = true;
          break;
        }
      }
      return pred.op == PredicateOp::kIn ? found : !found;
    }
    case PredicateOp::kRange: {
      if (pred.lower.has_value()) {
        const int c = CompareForPredicate(value, *pred.lower);
        if (pred.lower_inclusive ? c < 0 : c <= 0) return false;
      }
      if (pred.upper.has_value()) {
        const int c = CompareForPredicate(value, *pred.upper);
        if (pred.upper_inclusive ? c > 0 : c >= 0) return false;
      }
      return true;
    }
  }
  return false;
}

Result<DocIdSet> FilterEvaluator::Evaluate(
    const std::optional<FilterNode>& filter) {
  return Evaluate(filter, nullptr);
}

Result<DocIdSet> FilterEvaluator::Evaluate(
    const std::optional<FilterNode>& filter, const DocIdSet* base_domain) {
  if (!filter.has_value()) {
    return base_domain != nullptr ? *base_domain
                                  : DocIdSet::All(segment_.num_docs());
  }
  return EvalNode(*filter, base_domain);
}

namespace {

/// Cost units are "document touches". A scan decodes and probes one dict
/// id per candidate document.
constexpr uint64_t kScanCostPerDoc = 2;
/// Fixed overhead per posting list entering a bitmap union (container
/// lookup + merge bookkeeping); makes wide unions of tiny lists pay for
/// their fan-in.
constexpr uint64_t kBitmapPerListCost = 16;
/// A negated bitmap plan complements against the universe; word-at-a-time,
/// so it costs ~num_docs / 32.
constexpr uint64_t kComplementWordFactor = 32;

}  // namespace

FilterEvaluator::LeafPlan FilterEvaluator::PlanMatchedLeaf(
    const ColumnReader& column, const DictIdMatch& match,
    uint64_t domain_docs) const {
  LeafPlan plan;
  const uint64_t num_docs = segment_.num_docs();
  if (match.match_none) {
    plan.strategy = LeafStrategy::kConstant;
    return plan;
  }
  if (match.match_all) {
    plan.strategy = LeafStrategy::kConstant;
    plan.est_rows = domain_docs;
    return plan;
  }

  plan.scan_cost = kScanCostPerDoc * domain_docs;

  const InvertedIndex* inverted = column.inverted_index();
  const SortedIndex* sorted = column.sorted_index();
  const ColumnStats& stats = column.stats();
  const uint64_t cardinality =
      std::max<uint64_t>(1, static_cast<uint64_t>(stats.cardinality));

  // Predicted result rows over the *whole segment*, from the best stats
  // available: exact doc counts from a sorted index, posting-list
  // cardinality sums from an inverted index (exact for single-value
  // columns, an upper bound for multi-value), else a uniform-distribution
  // estimate from dictionary cardinality.
  uint64_t matched_entries = 0;  // Entries selected by the positive id set.
  uint64_t num_lists = 0;        // Posting lists a bitmap plan would union.
  if (match.contiguous) {
    num_lists = static_cast<uint64_t>(match.hi - match.lo + 1);
    if (sorted != nullptr) {
      uint32_t begin, end;
      sorted->GetDocRangeForIdRange(match.lo, match.hi, &begin, &end);
      matched_entries = end - begin;
    } else if (inverted != nullptr) {
      matched_entries = inverted->RangeCardinality(match.lo, match.hi);
    } else {
      matched_entries = stats.total_entries * num_lists / cardinality;
    }
  } else {
    num_lists = match.ids.size();
    if (inverted != nullptr) {
      for (uint32_t id : match.ids) {
        matched_entries += inverted->GetBitmap(static_cast<int>(id)).Cardinality();
      }
    } else {
      matched_entries = stats.total_entries * num_lists / cardinality;
    }
  }
  const uint64_t full_rows =
      match.negated
          ? (num_docs > matched_entries ? num_docs - matched_entries : 0)
          : std::min(matched_entries, num_docs);
  // Scale to the domain under an independence assumption.
  plan.est_rows =
      num_docs == 0
          ? 0
          : std::min(domain_docs,
                     static_cast<uint64_t>(static_cast<double>(full_rows) *
                                               static_cast<double>(domain_docs) /
                                               static_cast<double>(num_docs) +
                                           0.5));

  if (planner_mode_ == PlannerMode::kForceScan) {
    plan.strategy = LeafStrategy::kScan;
    return plan;
  }

  // A sorted column turns a contiguous id interval into one O(1) doc
  // range; nothing beats that.
  if (sorted != nullptr && match.contiguous) {
    plan.strategy = LeafStrategy::kSortedRange;
    plan.bitmap_cost = 1;
    return plan;
  }

  if (inverted == nullptr) {
    plan.strategy = LeafStrategy::kScan;
    return plan;
  }

  plan.bitmap_cost = matched_entries + kBitmapPerListCost * num_lists;
  if (match.negated) plan.bitmap_cost += num_docs / kComplementWordFactor;

  plan.strategy = (planner_mode_ == PlannerMode::kPreferIndex ||
                   plan.bitmap_cost <= plan.scan_cost)
                      ? LeafStrategy::kInverted
                      : LeafStrategy::kScan;
  return plan;
}

FilterEvaluator::LeafPlan FilterEvaluator::PlanLeaf(
    const Predicate& pred, uint64_t domain_docs) const {
  const ColumnReader* column = segment_.GetColumn(pred.column);
  if (column == nullptr) return LeafPlan{};  // Constant (schema default).
  return PlanMatchedLeaf(*column, MatchDictIdsForColumn(*column, pred),
                         domain_docs);
}

int64_t FilterEvaluator::EstimateCost(const FilterNode& node) const {
  const int64_t full_scan = static_cast<int64_t>(
      kScanCostPerDoc * static_cast<uint64_t>(segment_.num_docs()));
  switch (node.kind) {
    case FilterNode::Kind::kLeaf: {
      const LeafPlan plan = PlanLeaf(node.predicate, segment_.num_docs());
      switch (plan.strategy) {
        case LeafStrategy::kConstant:
          return 0;
        case LeafStrategy::kSortedRange:
          return 1;
        case LeafStrategy::kInverted:
          return static_cast<int64_t>(plan.bitmap_cost);
        case LeafStrategy::kScan:
          return static_cast<int64_t>(plan.scan_cost);
      }
      return full_scan;
    }
    case FilterNode::Kind::kAnd: {
      // Children narrow the domain for one another, so the true cost is
      // below the sum; cap at a full scan.
      int64_t sum = 0;
      for (const auto& child : node.children) sum += EstimateCost(child);
      return std::min(sum, full_scan);
    }
    case FilterNode::Kind::kOr: {
      // An OR is at least as selective as its cheapest child and all
      // children run over the same (already narrowed) domain; rank it by
      // the cheapest child so an OR of sorted ranges sorts before scans.
      int64_t best = full_scan;
      for (const auto& child : node.children) {
        best = std::min(best, EstimateCost(child));
      }
      return node.children.empty() ? 0 : best;
    }
  }
  return full_scan;
}

Result<DocIdSet> FilterEvaluator::EvalNode(const FilterNode& node,
                                           const DocIdSet* domain) {
  switch (node.kind) {
    case FilterNode::Kind::kLeaf:
      return EvalLeaf(node.predicate, domain);
    case FilterNode::Kind::kAnd:
      return EvalAnd(node.children, domain);
    case FilterNode::Kind::kOr:
      return EvalOr(node.children, domain);
  }
  return Status::Internal("bad filter node");
}

Result<DocIdSet> FilterEvaluator::EvalAnd(
    const std::vector<FilterNode>& children, const DocIdSet* domain) {
  // Order children by estimated cost so sorted-range operators run first
  // and narrow the domain for the expensive scans (paper section 4.2).
  // Costs are computed once per child, not inside the sort comparator.
  std::vector<std::pair<int64_t, const FilterNode*>> ordered;
  ordered.reserve(children.size());
  for (const auto& child : children) {
    ordered.emplace_back(reorder_predicates_ ? EstimateCost(child) : 0,
                         &child);
  }
  if (reorder_predicates_) {
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  }

  DocIdSet current =
      domain != nullptr ? *domain : DocIdSet::All(segment_.num_docs());
  for (const auto& [cost, child] : ordered) {
    PINOT_ASSIGN_OR_RETURN(DocIdSet child_set, EvalNode(*child, &current));
    // Every eval path returns a subset of the domain it was handed, so the
    // child result *is* the new accumulated set — no re-intersection.
    current = std::move(child_set);
    if (current.IsEmpty()) break;
  }
  return current;
}

Result<DocIdSet> FilterEvaluator::EvalOr(
    const std::vector<FilterNode>& children, const DocIdSet* domain) {
  DocIdSet result = DocIdSet::None(segment_.num_docs());
  for (const auto& child : children) {
    // Children are evaluated domain-bounded up front, so their union is
    // already within the domain — no trailing intersection.
    PINOT_ASSIGN_OR_RETURN(DocIdSet child_set, EvalNode(child, domain));
    if (result.IsEmpty()) {
      result = std::move(child_set);
    } else {
      result.UnionWith(child_set);
    }
    if (result.IsAll()) break;
  }
  return result;
}

const char* LeafStrategyToString(FilterEvaluator::LeafStrategy strategy) {
  switch (strategy) {
    case FilterEvaluator::LeafStrategy::kConstant:
      return "constant";
    case FilterEvaluator::LeafStrategy::kSortedRange:
      return "sorted-range";
    case FilterEvaluator::LeafStrategy::kInverted:
      return "inverted";
    case FilterEvaluator::LeafStrategy::kScan:
      return "scan";
  }
  return "unknown";
}

Result<DocIdSet> FilterEvaluator::EvalLeaf(const Predicate& pred,
                                           const DocIdSet* domain) {
  const uint32_t num_docs = segment_.num_docs();
  auto bounded = [&](DocIdSet set) {
    if (domain != nullptr) set.IntersectWith(*domain);
    return set;
  };

  const ColumnReader* column = segment_.GetColumn(pred.column);
  if (column == nullptr) {
    if (trace_span_ != nullptr) {
      trace_span_->Label("op:" + pred.column, "constant");
    }
    // Column added to the schema after this segment was built: every doc
    // virtually holds the schema default (paper section 5.2).
    const int field_index = segment_.schema().IndexOf(pred.column);
    if (field_index < 0) {
      return Status::NotFound("unknown column in filter: " + pred.column);
    }
    const Value default_value =
        segment_.schema().EffectiveDefault(field_index);
    if (PredicateMatchesValue(pred, default_value)) {
      return bounded(DocIdSet::All(num_docs));
    }
    return DocIdSet::None(num_docs);
  }

  const DictIdMatch match = MatchDictIdsForColumn(*column, pred);
  const uint64_t domain_docs =
      domain != nullptr ? domain->Cardinality() : num_docs;
  const LeafPlan plan = PlanMatchedLeaf(*column, match, domain_docs);

  if (trace_span_ != nullptr) {
    trace_span_->Label("op:" + pred.column,
                       LeafStrategyToString(plan.strategy));
    if (plan.bitmap_cost > 0 || plan.scan_cost > 0) {
      trace_span_->Label("cost:" + pred.column,
                         "bitmap=" + std::to_string(plan.bitmap_cost) +
                             ",scan=" + std::to_string(plan.scan_cost));
    }
    trace_span_->Annotate("est_rows:" + pred.column,
                          static_cast<int64_t>(plan.est_rows));
  }

  DocIdSet result = DocIdSet::None(num_docs);
  switch (plan.strategy) {
    case LeafStrategy::kConstant:
      result = match.match_all ? bounded(DocIdSet::All(num_docs))
                               : DocIdSet::None(num_docs);
      break;
    case LeafStrategy::kSortedRange: {
      // A contiguous dict-id interval on a physically sorted column is a
      // contiguous doc range.
      uint32_t begin, end;
      column->sorted_index()->GetDocRangeForIdRange(match.lo, match.hi,
                                                    &begin, &end);
      result = bounded(DocIdSet::FromRange(begin, end, num_docs));
      break;
    }
    case LeafStrategy::kInverted: {
      const InvertedIndex& inverted = *column->inverted_index();
      RoaringBitmap bitmap;
      if (match.contiguous) {
        bitmap = inverted.GetBitmapForRange(match.lo, match.hi);
      } else {
        std::vector<const RoaringBitmap*> inputs;
        inputs.reserve(match.ids.size());
        for (uint32_t id : match.ids) {
          const RoaringBitmap& bm = inverted.GetBitmap(static_cast<int>(id));
          if (!bm.Empty()) inputs.push_back(&bm);
        }
        bitmap = RoaringBitmap::OrMany(inputs);
        if (match.negated) bitmap = bitmap.Not(num_docs);
      }
      result = bounded(DocIdSet::FromBitmap(std::move(bitmap), num_docs));
      break;
    }
    case LeafStrategy::kScan: {
      // Scan operator, restricted to the current domain.
      const DocIdSet scan_domain =
          domain != nullptr ? *domain : DocIdSet::All(num_docs);
      result = ScanColumn(*column, match, scan_domain);
      break;
    }
  }
  if (trace_span_ != nullptr) {
    trace_span_->Annotate("rows:" + pred.column,
                          static_cast<int64_t>(result.Cardinality()));
  }
  return result;
}

DocIdSet FilterEvaluator::ScanColumn(const ColumnReader& column,
                                     const DictIdMatch& match,
                                     const DocIdSet& domain) {
  const uint32_t num_docs = segment_.num_docs();
  // O(1) membership mask over dictionary ids. The mask is sized to a
  // cardinality snapshot, so every probe bounds-checks: a dict id at or
  // past the snapshot (corrupt forward index, or a dictionary that grew
  // concurrently) is treated as matching nothing — which means
  // non-matching for positive predicates and *matching* for negated ones,
  // the same answer MatchDictIds would give for a value it never saw.
  const size_t cardinality =
      static_cast<size_t>(column.dictionary().size());
  std::vector<uint8_t> mask(cardinality, match.negated ? 1 : 0);
  if (match.contiguous) {
    for (int id = match.lo; id <= match.hi; ++id) mask[id] = 1;
  } else {
    for (uint32_t id : match.ids) {
      if (id < cardinality) mask[id] = match.negated ? 0 : 1;
    }
  }
  const uint8_t out_of_range_match = match.negated ? 1 : 0;

  std::vector<uint32_t> matching;
  uint64_t scanned = 0;
  if (column.spec().single_value) {
    // Block-at-a-time: decode dict ids with one virtual call per block
    // (word-at-a-time unpack for contiguous blocks) instead of one
    // GetDictId call per doc.
    std::vector<uint32_t> ids(kDocIdBlockSize);
    domain.ForEachBlock([&](const DocIdBlock& block) {
      scanned += block.count;
      if (block.contiguous()) {
        column.GetDictIdRange(block.begin, block.count, ids.data());
      } else {
        column.GetDictIdBatch(block.docs, block.count, ids.data());
      }
      for (uint32_t i = 0; i < block.count; ++i) {
        const uint32_t id = ids[i];
        const uint8_t matches =
            id < cardinality ? mask[id] : out_of_range_match;
        if (matches != 0) {
          matching.push_back(block.contiguous() ? block.begin + i
                                                : block.docs[i]);
        }
      }
    });
  } else if (!match.negated) {
    // Multi-value, positive predicate: the document matches when *any*
    // entry matches.
    std::vector<uint32_t> ids;
    domain.ForEachRange([&](uint32_t begin, uint32_t end) {
      scanned += end - begin;
      for (uint32_t doc = begin; doc < end; ++doc) {
        column.GetDictIds(doc, &ids);
        for (uint32_t id : ids) {
          if (id < cardinality && mask[id] != 0) {
            matching.push_back(doc);
            break;
          }
        }
      }
    });
  } else {
    // Multi-value, negated predicate (!=, NOT IN): document-level negation
    // — the document matches when *no* entry is excluded (vacuously true
    // for empty arrays). This matches the inverted-index path, which
    // complements the union of the excluded values' bitmaps. An
    // out-of-range id cannot name an excluded value, so it never
    // disqualifies the document.
    std::vector<uint32_t> ids;
    domain.ForEachRange([&](uint32_t begin, uint32_t end) {
      scanned += end - begin;
      for (uint32_t doc = begin; doc < end; ++doc) {
        column.GetDictIds(doc, &ids);
        bool excluded = false;
        for (uint32_t id : ids) {
          if (id < cardinality && mask[id] == 0) {
            excluded = true;
            break;
          }
        }
        if (!excluded) matching.push_back(doc);
      }
    });
  }
  if (stats_ != nullptr) stats_->docs_scanned += scanned;
  return DocIdSet::FromBitmap(RoaringBitmap::FromValues(matching), num_docs);
}

}  // namespace pinot
