#ifndef PINOT_TRACE_TRACE_H_
#define PINOT_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pinot {

/// Hierarchical per-query execution trace (request tracing in real Pinot;
/// Dremel/Druid-style per-operator profiles): a tree of named spans, each
/// with a steady-clock start and duration, integer annotations (docs
/// scanned, wave numbers) and string labels (plan chosen, filter operator
/// per column, outcome).
///
/// Zero-overhead disabled path: every traced API takes a `TraceSpan*` that
/// is null when tracing is off, and hot loops only pay a pointer test at
/// phase boundaries. Spans are plain values — built locally, then moved
/// into the parent's `children` — so parallel per-segment execution needs
/// no locking; the single-threaded combine step attaches them.
///
/// All components of the in-process cluster share one steady clock, so
/// spans produced on a server nest consistently under the broker's scatter
/// spans: a child's [start, start+duration] interval always lies inside
/// its parent's.
struct TraceSpan {
  std::string name;
  int64_t start_micros = 0;     // steady_clock time at Open().
  int64_t duration_micros = 0;  // Set by Close() (or explicitly).
  std::vector<std::pair<std::string, int64_t>> annotations;
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<TraceSpan> children;

  /// Current steady-clock time in microseconds.
  static int64_t NowMicros();

  /// Opens a span starting now.
  static TraceSpan Open(std::string name);
  /// Opens a span with an explicit start (e.g. a scatter call's submit
  /// time captured before the worker ran).
  static TraceSpan OpenAt(std::string name, int64_t start_micros);

  /// Stamps the duration as now - start. Idempotent enough for our use:
  /// call exactly once, after all children are closed.
  void Close() { duration_micros = NowMicros() - start_micros; }

  void Annotate(std::string key, int64_t value) {
    annotations.emplace_back(std::move(key), value);
  }
  void Label(std::string key, std::string value) {
    labels.emplace_back(std::move(key), std::move(value));
  }

  /// Moves `child` into this span and returns a reference to the stored
  /// copy. The reference is invalidated by the next AddChild — callers
  /// build children fully before attaching them.
  TraceSpan& AddChild(TraceSpan child) {
    children.push_back(std::move(child));
    return children.back();
  }

  double duration_millis() const { return duration_micros / 1000.0; }

  /// First child (depth-first) whose name matches exactly; null if absent.
  const TraceSpan* Find(const std::string& span_name) const;
  /// Value of an annotation on this span; `fallback` when absent.
  int64_t Annotation(const std::string& key, int64_t fallback = 0) const;
  /// Value of a label on this span; empty when absent.
  std::string LabelValue(const std::string& key) const;

  /// Structural validity: non-negative durations and every child interval
  /// contained in its parent's (with `slack_micros` tolerance for clock
  /// granularity). On failure, fills `why` (when non-null) with the first
  /// violated invariant.
  bool WellFormed(std::string* why = nullptr,
                  int64_t slack_micros = 0) const;

  /// Indented rendering, one span per line:
  ///   <2*depth spaces><name> <millis>ms [{k=v, ...}]
  /// Annotations and labels share the brace list. The grammar is enforced
  /// by scripts/check_dumps.sh; keep them in sync.
  std::string ToString() const;
};

}  // namespace pinot

#endif  // PINOT_TRACE_TRACE_H_
