#ifndef PINOT_QUERY_DOC_ID_SET_H_
#define PINOT_QUERY_DOC_ID_SET_H_

#include <cstdint>
#include <functional>

#include "bitmap/roaring.h"

namespace pinot {

/// Maximum number of doc ids handed to a block consumer at once. Matches
/// the roaring array-container threshold so one array container decodes
/// into one block, and keeps per-block scratch buffers (doc ids + decoded
/// dict ids per column) L1/L2-resident.
inline constexpr uint32_t kDocIdBlockSize = 4096;

/// One block of ascending doc ids produced by DocIdSet::ForEachBlock.
/// When `docs` is null the block is the contiguous range
/// [begin, begin + count); otherwise `docs[0 .. count)` lists the ids and
/// `begin == docs[0]`.
struct DocIdBlock {
  uint32_t begin = 0;
  uint32_t count = 0;
  const uint32_t* docs = nullptr;
  bool contiguous() const { return docs == nullptr; }
};

/// The set of document ids matching a filter (or partial filter) within one
/// segment. Filter operators on the physically sorted column produce
/// contiguous ranges; bitmap and scan operators produce roaring bitmaps
/// (paper section 4.2). Keeping the range representation explicit is what
/// lets subsequent operators evaluate only part of the column.
class DocIdSet {
 public:
  enum class Kind { kAll, kNone, kRange, kBitmap };

  /// All documents [0, num_docs).
  static DocIdSet All(uint32_t num_docs) {
    DocIdSet set;
    set.kind_ = Kind::kAll;
    set.num_docs_ = num_docs;
    return set;
  }

  static DocIdSet None(uint32_t num_docs) {
    DocIdSet set;
    set.kind_ = Kind::kNone;
    set.num_docs_ = num_docs;
    return set;
  }

  /// Contiguous [begin, end).
  static DocIdSet FromRange(uint32_t begin, uint32_t end, uint32_t num_docs) {
    if (begin >= end) return None(num_docs);
    if (begin == 0 && end >= num_docs) return All(num_docs);
    DocIdSet set;
    set.kind_ = Kind::kRange;
    set.num_docs_ = num_docs;
    set.begin_ = begin;
    set.end_ = end;
    return set;
  }

  static DocIdSet FromBitmap(RoaringBitmap bitmap, uint32_t num_docs) {
    if (bitmap.Empty()) return None(num_docs);
    DocIdSet set;
    set.kind_ = Kind::kBitmap;
    set.num_docs_ = num_docs;
    set.bitmap_ = std::move(bitmap);
    return set;
  }

  Kind kind() const { return kind_; }
  uint32_t num_docs() const { return num_docs_; }
  bool IsEmpty() const { return kind_ == Kind::kNone; }
  bool IsAll() const { return kind_ == Kind::kAll; }
  bool IsRangeLike() const {
    return kind_ == Kind::kAll || kind_ == Kind::kRange;
  }

  /// Range bounds; valid for kAll (0, num_docs) and kRange.
  uint32_t range_begin() const { return kind_ == Kind::kAll ? 0 : begin_; }
  uint32_t range_end() const {
    return kind_ == Kind::kAll ? num_docs_ : end_;
  }

  uint64_t Cardinality() const;

  void ForEachDoc(const std::function<void(uint32_t)>& fn) const;
  void ForEachRange(const std::function<void(uint32_t, uint32_t)>& fn) const;

  /// Invokes `fn` for ascending blocks of at most kDocIdBlockSize doc ids.
  /// Ranges (and roaring run containers) emit contiguous blocks without
  /// materializing ids; array/bitset containers emit id-list blocks
  /// decoded per roaring container. This is the iteration primitive of the
  /// batched scan path.
  void ForEachBlock(const std::function<void(const DocIdBlock&)>& fn) const;

  DocIdSet Intersect(const DocIdSet& other) const;
  DocIdSet Union(const DocIdSet& other) const;

  /// In-place intersection; bitmap∧bitmap runs word-at-a-time into this
  /// set's own containers (RoaringBitmap::AndWith) with no copy.
  void IntersectWith(const DocIdSet& other);

  /// In-place union; bitmap∪bitmap merges containers into this set
  /// (RoaringBitmap::OrWith), and range-like operands are added as runs
  /// without materializing an intermediate bitmap.
  void UnionWith(const DocIdSet& other);

  /// Materializes the set as a bitmap (copies for kBitmap).
  RoaringBitmap ToBitmap() const;

 private:
  Kind kind_ = Kind::kNone;
  uint32_t num_docs_ = 0;
  uint32_t begin_ = 0;
  uint32_t end_ = 0;
  RoaringBitmap bitmap_;
};

}  // namespace pinot

#endif  // PINOT_QUERY_DOC_ID_SET_H_
