#ifndef PINOT_DATA_DATA_TYPE_H_
#define PINOT_DATA_DATA_TYPE_H_

#include <string>

namespace pinot {

/// Column data types supported by Pinot (paper section 3.1: "integers of
/// various lengths, floating point numbers, strings and booleans. Arrays of
/// the previous types are also supported").
enum class DataType {
  kInt,      // 32-bit signed integer.
  kLong,     // 64-bit signed integer.
  kFloat,    // 32-bit IEEE-754.
  kDouble,   // 64-bit IEEE-754.
  kBoolean,  // Stored as 0/1.
  kString,   // UTF-8 string.
};

const char* DataTypeToString(DataType type);

/// True for kInt/kLong/kBoolean: dictionary-encoded as int64 internally.
bool IsIntegralType(DataType type);

/// True for kFloat/kDouble: dictionary-encoded as double internally.
bool IsFloatingType(DataType type);

/// Role of a column in the table (paper section 3.1: "Each column can be
/// either a dimension or a metric", plus the special time column used for
/// hybrid-table merging and retention).
enum class FieldRole {
  kDimension,
  kMetric,
  kTime,
};

const char* FieldRoleToString(FieldRole role);

}  // namespace pinot

#endif  // PINOT_DATA_DATA_TYPE_H_
