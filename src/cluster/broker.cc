#include "cluster/broker.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <set>
#include <thread>

#include "cluster/property_store.h"
#include "common/hash.h"
#include "common/logging.h"
#include "query/parser.h"

namespace pinot {

Broker::Broker(std::string id, ClusterContext ctx, Options options)
    : id_(std::move(id)),
      ctx_(std::move(ctx)),
      options_(options),
      metrics_(ctx_.metrics != nullptr ? ctx_.metrics
                                       : MetricsRegistry::Default()),
      pool_(options.scatter_threads),
      slow_query_log_(SlowQueryLog::Options{
          options.slow_query_threshold_millis,
          options.slow_query_log_capacity}),
      rng_(options.seed) {
  // Pre-register the tail-tolerance series so dumps (and their grammar
  // checks) always show them, even before the first hedge or shed.
  metrics_->GetCounter("broker_hedged_calls_total");
  metrics_->GetCounter("broker_hedge_wins_total");
  metrics_->GetCounter("broker_shed_queries_total");
}

Broker::Broker(std::string id, ClusterContext ctx)
    : Broker(std::move(id), std::move(ctx), Options()) {}

Broker::~Broker() {
  if (view_watch_handle_ >= 0) {
    ctx_.cluster->UnwatchExternalView(view_watch_handle_);
  }
}

void Broker::Start() {
  ctx_.cluster->RegisterInstance(id_, {"broker"}, nullptr);
  view_watch_handle_ = ctx_.cluster->WatchExternalView(
      [this](const std::string& table) { RebuildRouting(table); });
}

void Broker::RebuildRouting(const std::string& physical_table) {
  auto routing = std::make_shared<TableRouting>();

  // Table config (for strategy parameters); may be absent for tables we
  // only see through the view.
  auto encoded =
      ctx_.property_store->Get(zkpaths::TableConfigPath(physical_table));
  if (encoded.ok()) {
    ByteReader reader(*encoded);
    auto config = TableConfig::Deserialize(&reader);
    if (config.ok()) {
      routing->config = std::move(config).value();
      routing->config_loaded = true;
    }
  }

  const TableView view = ctx_.cluster->GetExternalView(physical_table);
  routing->segment_servers = QueryableReplicas(view);

  // Partition metadata for partition-aware pruning and for upsert
  // replica-group routing (all segments of one partition must be served by
  // the same instance's key map).
  if (routing->config_loaded &&
      (routing->config.routing == RoutingStrategy::kPartitionAware ||
       routing->config.upsert_enabled)) {
    for (const auto& [segment, servers] : routing->segment_servers) {
      auto meta_encoded = ctx_.property_store->Get(
          zkpaths::SegmentMetadataPath(physical_table, segment));
      int32_t partition = -1;
      if (meta_encoded.ok()) {
        auto meta = SegmentZkMetadata::Decode(*meta_encoded);
        if (meta.ok()) partition = meta->partition;
      }
      routing->segment_partitions[segment] = partition;
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (!routing->segment_servers.empty()) {
    switch (routing->config_loaded ? routing->config.routing
                                   : RoutingStrategy::kBalanced) {
      case RoutingStrategy::kBalanced:
        for (int i = 0; i < options_.balanced_tables; ++i) {
          routing->routing_tables.push_back(
              BuildBalancedRoutingTable(routing->segment_servers, &rng_));
        }
        break;
      case RoutingStrategy::kGenerated: {
        GeneratedRoutingOptions gen;
        gen.target_server_count = routing->config.target_servers_per_query;
        gen.tables_to_generate = routing->config.routing_tables_to_generate;
        gen.tables_to_keep = routing->config.routing_tables_to_keep;
        routing->routing_tables =
            GenerateRoutingTables(routing->segment_servers, gen, &rng_);
        break;
      }
      case RoutingStrategy::kPartitionAware:
        // Built per query from the filter (section 4.4).
        break;
    }
  }
  routing_[physical_table] = std::move(routing);
}

std::shared_ptr<Broker::TableRouting> Broker::GetRouting(
    const std::string& physical_table) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = routing_.find(physical_table);
    if (it != routing_.end()) return it->second;
  }
  RebuildRouting(physical_table);
  std::lock_guard<std::mutex> lock(mutex_);
  return routing_[physical_table];
}

namespace {

// Finds EQ/IN predicates on `column` in the top-level conjunction and
// returns the matching partition set; `all_partitions` when the filter
// does not constrain the column.
void CollectPartitionValues(const FilterNode& node, const std::string& column,
                            std::vector<Value>* values, bool* constrained) {
  switch (node.kind) {
    case FilterNode::Kind::kLeaf:
      if (node.predicate.column == column &&
          (node.predicate.op == PredicateOp::kEq ||
           node.predicate.op == PredicateOp::kIn)) {
        *constrained = true;
        for (const auto& v : node.predicate.values) values->push_back(v);
      }
      return;
    case FilterNode::Kind::kAnd:
      for (const auto& child : node.children) {
        CollectPartitionValues(child, column, values, constrained);
      }
      return;
    case FilterNode::Kind::kOr:
      // Partition pruning across OR requires every branch to constrain the
      // column; keep it conservative and do not prune.
      return;
  }
}

}  // namespace

RoutingTable Broker::BuildPartitionAwareTable(const TableRouting& routing,
                                              const Query& query) {
  // Which partitions can match the query?
  std::vector<Value> values;
  bool constrained = false;
  if (query.filter.has_value() && routing.config.num_partitions > 0) {
    CollectPartitionValues(*query.filter, routing.config.partition_column,
                           &values, &constrained);
  }
  std::vector<bool> wanted(
      std::max(routing.config.num_partitions, 1), !constrained);
  if (constrained) {
    for (const auto& v : values) {
      const int partition = KafkaPartition(
          ValueToString(v), routing.config.num_partitions);
      wanted[partition] = true;
    }
  }

  RoutingTable table;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [segment, servers] : routing.segment_servers) {
    auto part_it = routing.segment_partitions.find(segment);
    const int32_t partition =
        part_it == routing.segment_partitions.end() ? -1 : part_it->second;
    // Unpartitioned segments (-1) must always be queried.
    if (partition >= 0 && partition < static_cast<int>(wanted.size()) &&
        !wanted[partition]) {
      continue;
    }
    // Per-query replica pick: adaptive (score-based) when enabled, else
    // uniform random as in the paper.
    const std::string server =
        options_.adaptive_routing
            ? PickReplicaAdaptive(servers, std::set<std::string>(), nullptr,
                                  &server_stats_,
                                  options_.explore_probability, &rng_)
            : servers[rng_.NextUint64(servers.size())];
    if (server.empty()) continue;
    table.server_segments[server].push_back(segment);
  }
  return table;
}

namespace {

// Whole-call failures worth retrying on another replica: the server was
// unreachable, died mid-request, or ran out of time. Anything else (e.g. a
// routing race reported as NotFound) carries data plus a per-segment
// status and is merged as-is.
bool IsRetryableScatterFailure(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
             .count() /
         1000.0;
}

int64_t SteadyMicros(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

void Broker::QueryPhysicalTable(const std::string& physical_table,
                                const Query& query,
                                std::chrono::steady_clock::time_point deadline,
                                PartialResult* merged, QueryTrace* trace,
                                TraceSpan* scatter_span) {
  std::shared_ptr<TableRouting> routing = GetRouting(physical_table);
  if (routing->segment_servers.empty()) {
    return;  // Table has no queryable segments (not an error).
  }

  // Pick the routing table (section 3.3.3 step 2: "picked at random").
  RoutingTable table;
  const RoutingStrategy strategy = routing->config_loaded
                                       ? routing->config.routing
                                       : RoutingStrategy::kBalanced;
  // Upsert tables require strict replica groups: a query must read all of
  // a partition's segments from ONE server, whose key map then guarantees
  // at most one live row per key. Per-segment replica overrides (adaptive
  // selection, hedging) are disabled for them below.
  const bool upsert =
      routing->config_loaded && routing->config.upsert_enabled;
  if (upsert) {
    std::lock_guard<std::mutex> lock(mutex_);
    table = BuildUpsertRoutingTable(routing->segment_servers,
                                    routing->segment_partitions, &rng_);
  } else if (strategy == RoutingStrategy::kPartitionAware) {
    table = BuildPartitionAwareTable(*routing, query);
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    if (routing->routing_tables.empty()) return;
    table = routing->routing_tables[rng_.NextUint64(
        routing->routing_tables.size())];
  }

  auto reachable = [this](const std::string& s) {
    return ctx_.cluster->IsInstanceReachable(s);
  };

  // Why each segment is (currently) assigned to its server. Wave 0 comes
  // from the routing table, possibly overridden by adaptive selection;
  // retry waves record the prior outcome and how many untried live replicas
  // the picker chose among, so a failover run is explainable from the trace
  // alone.
  const char* initial_reason =
      upsert ? "upsert-replica-group"
             : strategy == RoutingStrategy::kPartitionAware
                   ? "partition-aware"
                   : "routing-table";
  std::map<std::string, std::string> pick_reason;
  for (const auto& [server, segments] : table.server_segments) {
    for (const auto& segment : segments) pick_reason[segment] = initial_reason;
  }
  // Last failure outcome per segment, feeding the next wave's pick reason.
  std::map<std::string, std::string> last_outcome;

  std::map<std::string, std::vector<std::string>> assignment =
      std::move(table.server_segments);

  // Adaptive replica selection (wave 0): power of two choices. Each segment
  // races its routing-table assignee against one sampled alternative
  // replica; the segment moves only when the alternative's EWMA×in-flight
  // score beats the assignee's by the hysteresis margin, or the assignee is
  // unreachable. With probability `explore_probability` the score check is
  // skipped and the assignment stays put, so a slow-marked server keeps
  // receiving occasional probe traffic that refreshes its EWMA downward
  // once it recovers.
  if (options_.adaptive_routing &&
      strategy != RoutingStrategy::kPartitionAware && !upsert) {
    std::map<std::string, std::vector<std::string>> adapted;
    for (const auto& [server, segments] : assignment) {
      for (const auto& segment : segments) {
        std::string chosen = server;
        auto replicas_it = routing->segment_servers.find(segment);
        if (replicas_it != routing->segment_servers.end() &&
            replicas_it->second.size() > 1) {
          bool probe = false;
          std::string alternative;
          {
            std::lock_guard<std::mutex> lock(mutex_);
            probe = rng_.NextBool(options_.explore_probability);
            alternative =
                PickReplica(replicas_it->second, {server}, reachable, &rng_);
          }
          if (!alternative.empty()) {
            if (!reachable(server)) {
              chosen = alternative;
              pick_reason[segment] = "adaptive(unreachable)";
            } else if (!probe &&
                       server_stats_.ScoreOf(alternative) <
                           server_stats_.ScoreOf(server) *
                               options_.adaptive_hysteresis) {
              chosen = alternative;
              pick_reason[segment] = "adaptive(p2c)";
            }
          }
        }
        adapted[chosen].push_back(segment);
      }
    }
    assignment = std::move(adapted);
  }

  // Scatter/gather with bounded replica failover: each wave scatters the
  // still-unanswered segments, races the calls (hedging slow ones onto
  // other replicas), and re-routes the segments of failed calls to a
  // replica that has not failed them yet. Segments whose call answered are
  // merged exactly once — of a hedge race, only one side is ever merged,
  // and a retried call's original result is discarded wholesale, never
  // merged alongside its replacement.
  std::map<std::string, std::set<std::string>> tried_servers;
  std::vector<std::string> dead_segments;  // Replicas/retries exhausted.
  const int max_attempts = std::max(1, options_.max_scatter_retries + 1);
  int hedges_fired = 0;
  bool deadline_exhausted = false;

  struct ScatterCall {
    std::string server;
    std::vector<std::string> segments;
    PartialResult result;
    std::future<void> done;
    std::chrono::steady_clock::time_point started;
    bool hedge = false;
    std::string hedge_of;   // Primary server this call hedges, if any.
    bool finished = false;  // Future observed ready by the gather loop.
    bool failed = false;    // Finished with a retryable failure.
  };

  // A primary scatter call plus any speculative hedges covering the same
  // segments. Exactly one side of the race is merged per segment.
  struct CallGroup {
    std::shared_ptr<ScatterCall> primary;
    std::vector<std::shared_ptr<ScatterCall>> hedges;
    bool hedges_cover_all = false;  // Hedges jointly cover every segment.
    bool hedge_attempted = false;
    bool resolved = false;
  };

  auto submit_call = [&](const std::string& server,
                         std::vector<std::string> segments,
                         bool hedge) -> std::shared_ptr<ScatterCall> {
    QueryServerApi* endpoint =
        ctx_.server_endpoint ? ctx_.server_endpoint(server) : nullptr;
    if (endpoint == nullptr || !ctx_.cluster->IsInstanceReachable(server)) {
      return nullptr;
    }
    auto call = std::make_shared<ScatterCall>();
    call->server = server;
    call->segments = std::move(segments);
    call->hedge = hedge;
    ServerQueryRequest request;
    request.physical_table = physical_table;
    request.query = query;
    request.segments = call->segments;
    request.tenant =
        routing->config_loaded ? routing->config.server_tenant : std::string();
    request.timeout_millis = std::max<int64_t>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(
               deadline - std::chrono::steady_clock::now())
               .count());
    call->started = std::chrono::steady_clock::now();
    // The worker reports the true service time into the stats registry even
    // when the broker abandons the call first — exactly the signal adaptive
    // selection needs to steer traffic away from the slow server.
    ServerStatsRegistry* stats = &server_stats_;
    stats->OnCallStart(call->server);
    call->done =
        pool_.Submit([call, endpoint, stats, request = std::move(request)] {
          const auto run_start = std::chrono::steady_clock::now();
          call->result = endpoint->ExecuteServerQuery(request);
          stats->OnCallFinish(call->server, MillisSince(run_start),
                              call->result.status.ok());
        });
    return call;
  };

  for (int attempt = 0; attempt < max_attempts && !assignment.empty();
       ++attempt) {
    std::set<std::string> failed_segments;

    // Fills the pick-reason list parallel to `segments` from the current
    // assignment reasons.
    auto reasons_for = [&](const std::vector<std::string>& segments) {
      std::vector<std::string> reasons;
      reasons.reserve(segments.size());
      for (const auto& segment : segments) {
        auto it = pick_reason.find(segment);
        reasons.push_back(it != pick_reason.end() ? it->second
                                                  : initial_reason);
      }
      return reasons;
    };
    auto reasons_of = [&](const ScatterCall& call) {
      if (call.hedge) {
        return std::vector<std::string>(call.segments.size(),
                                        "hedge(of " + call.hedge_of + ")");
      }
      return reasons_for(call.segments);
    };

    // One child span + trace event per scatter call ("call:<server>" for
    // primaries, "hedge:<server>" for hedges), opened at submit time and
    // closed at resolution: wave + outcome, the per-segment replica-pick
    // reason (collapsed to one whole-call label when uniform), and
    // server-side spans (TRACE/EXPLAIN) nested under it.
    auto emit = [&](const std::string& server,
                    const std::vector<std::string>& segments,
                    const std::vector<std::string>& reasons,
                    int64_t start_micros, double latency_millis,
                    std::string outcome, bool hedge, bool hedge_won,
                    std::vector<TraceSpan>* children) {
      if (scatter_span != nullptr) {
        TraceSpan call_span = TraceSpan::OpenAt(
            (hedge ? "hedge:" : "call:") + server, start_micros);
        call_span.duration_micros =
            static_cast<int64_t>(latency_millis * 1000.0);
        call_span.Label("outcome", outcome);
        bool uniform = true;
        for (const auto& reason : reasons) {
          if (reason != reasons.front()) {
            uniform = false;
            break;
          }
        }
        if (uniform && !reasons.empty()) {
          call_span.Label("pick", reasons.front());
        } else {
          for (size_t i = 0; i < segments.size(); ++i) {
            call_span.Label("pick:" + segments[i], reasons[i]);
          }
        }
        if (hedge) call_span.Label("hedge", hedge_won ? "won" : "lost");
        call_span.Annotate("wave", attempt);
        call_span.Annotate("segments", static_cast<int64_t>(segments.size()));
        if (children != nullptr) {
          for (auto& child : *children) call_span.AddChild(std::move(child));
          children->clear();
        }
        scatter_span->AddChild(std::move(call_span));
      }
      ScatterTraceEvent event;
      event.physical_table = physical_table;
      event.server = server;
      event.segments = segments;
      event.pick_reasons = reasons;
      event.attempt = attempt;
      event.latency_millis = latency_millis;
      event.outcome = std::move(outcome);
      event.hedge = hedge;
      event.hedge_won = hedge_won;
      trace->events.push_back(std::move(event));
    };

    // Marks a call's unanswered segments for failover in the next wave.
    auto fail_segments = [&](const ScatterCall& call,
                             const std::string& outcome,
                             const std::set<std::string>* answered) {
      for (const auto& segment : call.segments) {
        if (answered != nullptr && answered->count(segment) > 0) continue;
        tried_servers[segment].insert(call.server);
        failed_segments.insert(segment);
        last_outcome[segment] = outcome;
      }
    };

    // Resolves a race: merges exactly one side, emits a trace event per
    // call, and routes unanswered segments into the failover set.
    auto resolve_group = [&](CallGroup& group) {
      group.resolved = true;
      ScatterCall& primary = *group.primary;
      // Primary finished first with data (ok, or a non-retryable error that
      // still carries per-segment results): merge it, the hedges lose.
      if (primary.finished && !primary.failed) {
        const double latency = MillisSince(primary.started);
        const Status& st = primary.result.status;
        emit(primary.server, primary.segments, reasons_of(primary),
             SteadyMicros(primary.started), latency,
             st.ok() ? "ok" : "error: " + st.ToString(), false, false,
             &primary.result.spans);
        merged->Merge(std::move(primary.result));
        for (auto& hedge : group.hedges) {
          emit(hedge->server, hedge->segments, reasons_of(*hedge),
               SteadyMicros(hedge->started), MillisSince(hedge->started),
               hedge->finished ? "discarded (hedge lost)"
                               : "abandoned (hedge lost)",
               true, false, nullptr);
        }
        return;
      }

      // Hedge side: merge every hedge that finished with data. Those
      // segments are answered exactly once — the primary's copy of them is
      // never merged past this point.
      std::set<std::string> answered;
      for (auto& hedge : group.hedges) {
        if (!hedge->finished || hedge->failed) continue;
        ++trace->hedge_wins;
        const double latency = MillisSince(hedge->started);
        const Status& st = hedge->result.status;
        emit(hedge->server, hedge->segments, reasons_of(*hedge),
             SteadyMicros(hedge->started), latency,
             st.ok() ? "ok" : "error: " + st.ToString(), true, true,
             &hedge->result.spans);
        for (const auto& segment : hedge->segments) answered.insert(segment);
        merged->Merge(std::move(hedge->result));
      }

      // Primary loses: still running (abandoned; the worker lambda keeps
      // the call alive via shared ownership and its late result is never
      // merged) or finished with a retryable failure.
      if (!primary.finished) {
        if (answered.empty()) {
          ++trace->timeouts;
          server_stats_.PenalizeFailure(primary.server);
          emit(primary.server, primary.segments, reasons_of(primary),
               SteadyMicros(primary.started), MillisSince(primary.started),
               "timeout", false, false, nullptr);
        } else {
          emit(primary.server, primary.segments, reasons_of(primary),
               SteadyMicros(primary.started), MillisSince(primary.started),
               "abandoned (hedge won)", false, false, nullptr);
        }
        fail_segments(primary, "timeout", &answered);
      } else {
        const std::string outcome =
            "failed: " + primary.result.status.ToString();
        emit(primary.server, primary.segments, reasons_of(primary),
             SteadyMicros(primary.started), MillisSince(primary.started),
             outcome, false, false, nullptr);
        fail_segments(primary, outcome, &answered);
      }

      // Losing hedges (failed, or still running at the wave deadline).
      for (auto& hedge : group.hedges) {
        if (hedge->finished && !hedge->failed) continue;  // Merged above.
        if (!hedge->finished) {
          ++trace->timeouts;
          server_stats_.PenalizeFailure(hedge->server);
          emit(hedge->server, hedge->segments, reasons_of(*hedge),
               SteadyMicros(hedge->started), MillisSince(hedge->started),
               "timeout", true, false, nullptr);
          fail_segments(*hedge, "timeout", &answered);
        } else {
          const std::string outcome =
              "failed: " + hedge->result.status.ToString();
          emit(hedge->server, hedge->segments, reasons_of(*hedge),
               SteadyMicros(hedge->started), MillisSince(hedge->started),
               outcome, true, false, nullptr);
          fail_segments(*hedge, outcome, &answered);
        }
      }
    };

    // Never scatter a wave whose deadline budget is already exhausted: its
    // calls could not finish in time and would only add load to a cluster
    // that is presumably struggling. Surface the segments as timeouts.
    if (std::chrono::steady_clock::now() >= deadline) {
      for (const auto& [server, segments] : assignment) {
        ++trace->timeouts;
        emit(server, segments, reasons_for(segments), TraceSpan::NowMicros(),
             0, "timeout (deadline exhausted)", false, false, nullptr);
        dead_segments.insert(dead_segments.end(), segments.begin(),
                             segments.end());
      }
      assignment.clear();
      deadline_exhausted = true;
      break;
    }

    // Scatter (step 3). Dead or unknown servers fail immediately and their
    // segments join this wave's retry set.
    std::vector<CallGroup> groups;
    for (auto& [server, segments] : assignment) {
      auto call = submit_call(server, segments, /*hedge=*/false);
      if (call == nullptr) {
        server_stats_.PenalizeFailure(server);
        emit(server, segments, reasons_for(segments), TraceSpan::NowMicros(),
             0, "unreachable", false, false, nullptr);
        for (const auto& segment : segments) {
          tried_servers[segment].insert(server);
          failed_segments.insert(segment);
          last_outcome[segment] = "unreachable";
        }
        continue;
      }
      CallGroup group;
      group.primary = std::move(call);
      groups.push_back(std::move(group));
    }

    // Gather (steps 6-7): poll the race. Every wave but the last waits only
    // for its share of the remaining budget so failed segments still have
    // time to retry; the last wave runs to the query deadline.
    auto attempt_deadline = deadline;
    const auto now = std::chrono::steady_clock::now();
    if (attempt + 1 < max_attempts && deadline > now) {
      attempt_deadline = now + (deadline - now) / (max_attempts - attempt);
    }
    const double hedge_budget_millis = server_stats_.HedgeBudgetMillis(
        options_.hedge_percentile, options_.hedge_floor_millis,
        options_.hedge_cap_millis, options_.hedge_min_samples);

    size_t unresolved = groups.size();
    while (unresolved > 0 &&
           std::chrono::steady_clock::now() < attempt_deadline) {
      bool progressed = false;
      for (auto& group : groups) {
        if (group.resolved) continue;
        auto observe = [&](ScatterCall& call) {
          if (call.finished) return;
          if (call.done.wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
            return;
          }
          call.finished = true;
          call.failed = !call.result.status.ok() &&
                        IsRetryableScatterFailure(call.result.status.code());
          progressed = true;
        };
        observe(*group.primary);
        for (auto& hedge : group.hedges) observe(*hedge);

        const ScatterCall& primary = *group.primary;
        bool all_hedges_done = true;
        bool any_hedge_failed = false;
        for (const auto& hedge : group.hedges) {
          if (!hedge->finished) {
            all_hedges_done = false;
          } else if (hedge->failed) {
            any_hedge_failed = true;
          }
        }

        if (primary.finished && !primary.failed) {
          resolve_group(group);
          --unresolved;
          continue;
        }
        if (primary.finished && primary.failed &&
            (group.hedges.empty() || all_hedges_done)) {
          // The whole race is decided; fail over without waiting out the
          // wave deadline.
          resolve_group(group);
          --unresolved;
          continue;
        }
        if (!primary.finished && group.hedges_cover_all && all_hedges_done &&
            !any_hedge_failed) {
          // Every hedge answered: the primary lost the race.
          resolve_group(group);
          --unresolved;
          continue;
        }

        // Hedge trigger: the primary has been outstanding past the latency
        // budget and the per-query speculative-call allowance is not spent.
        if (options_.hedging_enabled && !upsert && !group.hedge_attempted &&
            !primary.finished && hedges_fired < options_.max_hedged_calls &&
            MillisSince(primary.started) > hedge_budget_millis) {
          group.hedge_attempted = true;
          // Route every segment of the slow call to a different live
          // replica; hedge only on full coverage, so a winning hedge side
          // fully replaces the primary.
          std::map<std::string, std::vector<std::string>> hedge_assignment;
          bool full_cover = true;
          for (const auto& segment : primary.segments) {
            auto replicas_it = routing->segment_servers.find(segment);
            std::string replica;
            if (replicas_it != routing->segment_servers.end()) {
              std::set<std::string> exclude = tried_servers[segment];
              exclude.insert(primary.server);
              std::lock_guard<std::mutex> lock(mutex_);
              replica = PickReplicaAdaptive(
                  replicas_it->second, exclude, reachable,
                  options_.adaptive_routing ? &server_stats_ : nullptr,
                  /*explore_probability=*/0, &rng_);
            }
            if (replica.empty()) {
              full_cover = false;
              break;
            }
            hedge_assignment[replica].push_back(segment);
          }
          if (full_cover && !hedge_assignment.empty() &&
              hedges_fired + static_cast<int>(hedge_assignment.size()) <=
                  options_.max_hedged_calls) {
            bool all_submitted = true;
            for (auto& [server, segments] : hedge_assignment) {
              auto hedge = submit_call(server, std::move(segments),
                                       /*hedge=*/true);
              if (hedge == nullptr) {
                // Raced an instance death; the primary still covers the
                // segments, so just skip this speculative call.
                all_submitted = false;
                continue;
              }
              hedge->hedge_of = primary.server;
              ++hedges_fired;
              ++trace->hedges;
              group.hedges.push_back(std::move(hedge));
              progressed = true;
            }
            group.hedges_cover_all = all_submitted && !group.hedges.empty();
          }
        }
      }
      if (unresolved > 0 && !progressed) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    // Wave deadline: resolve whatever is still racing (unfinished calls
    // are abandoned and, when nothing answered their segments, counted as
    // timeouts).
    for (auto& group : groups) {
      if (!group.resolved) resolve_group(group);
    }

    // Re-route failed segments to untried live replicas (next wave).
    assignment.clear();
    if (failed_segments.empty()) break;
    if (attempt + 1 >= max_attempts) {
      dead_segments.insert(dead_segments.end(), failed_segments.begin(),
                           failed_segments.end());
      break;
    }
    // For upsert tables, failed segments of the same partition should land
    // on the SAME replacement replica so its key map still covers the whole
    // partition lineage; memoize the first pick per partition and reuse it
    // when the later segments' replica sets allow.
    std::map<int32_t, std::string> partition_failover_pick;
    for (const auto& segment : failed_segments) {
      auto servers_it = routing->segment_servers.find(segment);
      std::string replica;
      size_t candidates = 0;
      if (servers_it != routing->segment_servers.end()) {
        const std::set<std::string>& tried = tried_servers[segment];
        for (const auto& server : servers_it->second) {
          if (tried.count(server) == 0 && reachable(server)) ++candidates;
        }
        int32_t partition = -1;
        if (upsert) {
          auto part_it = routing->segment_partitions.find(segment);
          if (part_it != routing->segment_partitions.end()) {
            partition = part_it->second;
          }
          auto pick_it = partition_failover_pick.find(partition);
          if (partition >= 0 && pick_it != partition_failover_pick.end() &&
              tried.count(pick_it->second) == 0 &&
              reachable(pick_it->second) &&
              std::find(servers_it->second.begin(), servers_it->second.end(),
                        pick_it->second) != servers_it->second.end()) {
            replica = pick_it->second;
          }
        }
        if (replica.empty()) {
          std::lock_guard<std::mutex> lock(mutex_);
          replica = options_.adaptive_routing && !upsert
                        ? PickReplicaAdaptive(servers_it->second, tried,
                                              reachable, &server_stats_,
                                              options_.explore_probability,
                                              &rng_)
                        : PickReplica(servers_it->second, tried, reachable,
                                      &rng_);
          if (upsert && partition >= 0 && !replica.empty()) {
            partition_failover_pick[partition] = replica;
          }
        }
      }
      if (replica.empty()) {
        dead_segments.push_back(segment);
      } else {
        ++trace->retries;
        pick_reason[segment] = "failover(" + last_outcome[segment] +
                               ", candidates=" +
                               std::to_string(candidates) + ")";
        assignment[replica].push_back(segment);
      }
    }
  }

  if (!dead_segments.empty()) {
    std::sort(dead_segments.begin(), dead_segments.end());
    dead_segments.erase(
        std::unique(dead_segments.begin(), dead_segments.end()),
        dead_segments.end());
    std::string message =
        deadline_exhausted
            ? "query deadline exhausted before segments could be scattered:"
            : "no live replica answered segments:";
    for (const auto& segment : dead_segments) message += " " + segment;
    message += " (table " + physical_table + ")";
    if (merged->status.ok()) {
      merged->status = deadline_exhausted
                           ? Status::Timeout(std::move(message))
                           : Status::Unavailable(std::move(message));
    }
  }
}

QueryResult Broker::Execute(const std::string& pql) {
  auto query = ParsePql(pql);
  if (!query.ok()) {
    QueryResult result;
    result.partial = true;
    result.error_message = query.status().ToString();
    return result;
  }
  return ExecuteQuery(*query);
}

namespace {

// Defensive parse of the time-boundary property. A corrupt value (empty,
// non-numeric, trailing garbage, out of range) must not take the broker
// down — this path used to throw out of std::stoll on garbage znodes.
std::optional<int64_t> ParseTimeBoundary(const std::string& raw) {
  if (raw.empty()) return std::nullopt;
  // strtoll silently skips leading whitespace; treat it as corruption.
  if (std::isspace(static_cast<unsigned char>(raw.front()))) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw.c_str(), &end, 10);
  if (errno == ERANGE || end != raw.c_str() + raw.size()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(parsed);
}

}  // namespace

QueryResult Broker::ExecuteQuery(const Query& query) {
  const auto start = std::chrono::steady_clock::now();

  // Load shedding (watermark admission): past the in-flight watermark the
  // broker rejects immediately with an explicit throttled result instead of
  // queueing work it cannot finish in time, so overload degrades into fast
  // retryable rejections rather than a cluster-wide latency collapse.
  struct InFlightGuard {
    std::atomic<int>* counter;
    ~InFlightGuard() { counter->fetch_sub(1, std::memory_order_relaxed); }
  };
  const int inflight =
      inflight_queries_.fetch_add(1, std::memory_order_relaxed) + 1;
  InFlightGuard inflight_guard{&inflight_queries_};
  if (options_.max_inflight_queries > 0 &&
      inflight > options_.max_inflight_queries) {
    metrics_->GetCounter("broker_shed_queries_total")->Increment();
    metrics_->GetCounter("broker_shed_queries_total",
                         {{"table", query.table}})
        ->Increment();
    QueryResult result;
    result.partial = true;
    result.throttled = true;
    // Retry-after estimate: the typical scatter-call latency is roughly how
    // long until in-flight slots free up (floored so clients always back
    // off a little).
    result.retry_after_millis =
        std::max(1.0, server_stats_.latency_histogram()->Percentile(50.0));
    result.error_message =
        "broker " + id_ + " overloaded: " + std::to_string(inflight - 1) +
        " queries in flight (watermark " +
        std::to_string(options_.max_inflight_queries) + ")";
    result.latency_millis = MillisSince(start);
    return result;
  }

  const auto deadline =
      start + std::chrono::milliseconds(options_.default_timeout_millis);
  PartialResult merged;
  QueryTrace trace;

  // Broker-level spans are built for every query, traced or not: route /
  // scatter / reduce are a handful of spans per request, and the slow-query
  // log needs them for queries that did not ask for TRACE.
  TraceSpan root = TraceSpan::Open("broker:" + id_);
  TraceSpan route_span = TraceSpan::Open("route");

  // Resolve the logical table into physical tables. A name that is already
  // physical is used as-is.
  std::vector<std::pair<std::string, Query>> plans;
  auto is_physical = [](const std::string& name) {
    return name.size() > 8 &&
           (name.rfind("_OFFLINE") == name.size() - 8 ||
            (name.size() > 9 && name.rfind("_REALTIME") == name.size() - 9));
  };
  if (is_physical(query.table)) {
    plans.emplace_back(query.table, query);
  } else {
    const std::string offline = query.table + "_OFFLINE";
    const std::string realtime = query.table + "_REALTIME";
    const bool has_offline =
        ctx_.property_store->Exists(zkpaths::TableConfigPath(offline));
    const bool has_realtime =
        ctx_.property_store->Exists(zkpaths::TableConfigPath(realtime));
    if (has_offline && has_realtime) {
      // Hybrid rewrite (section 3.3.3, Figure 6): offline serves strictly
      // before the time boundary, realtime serves at/after it.
      auto boundary_str =
          ctx_.property_store->Get(zkpaths::TimeBoundaryPath(query.table));
      auto config_encoded =
          ctx_.property_store->Get(zkpaths::TableConfigPath(offline));
      std::string time_column;
      if (config_encoded.ok()) {
        ByteReader reader(*config_encoded);
        auto config = TableConfig::Deserialize(&reader);
        if (config.ok()) time_column = config->schema.time_column();
      }
      std::optional<int64_t> boundary;
      if (boundary_str.ok()) {
        boundary = ParseTimeBoundary(*boundary_str);
        if (!boundary.has_value()) {
          PINOT_LOG_WARN << id_ << ": corrupt time boundary for "
                         << query.table << " (\"" << *boundary_str
                         << "\"); falling back to unfiltered hybrid plan";
        }
      }
      if (boundary.has_value() && !time_column.empty()) {
        auto with_time_filter = [&](const Query& base, bool offline_side) {
          Query q = base;
          Predicate pred;
          pred.column = time_column;
          pred.op = PredicateOp::kRange;
          if (offline_side) {
            pred.upper = *boundary - 1;
            pred.upper_inclusive = true;
          } else {
            pred.lower = *boundary;
            pred.lower_inclusive = true;
          }
          FilterNode leaf = FilterNode::Leaf(std::move(pred));
          if (q.filter.has_value()) {
            q.filter = FilterNode::And({*std::move(q.filter), std::move(leaf)});
          } else {
            q.filter = std::move(leaf);
          }
          return q;
        };
        plans.emplace_back(offline, with_time_filter(query, true));
        plans.emplace_back(realtime, with_time_filter(query, false));
      } else {
        plans.emplace_back(offline, query);
        plans.emplace_back(realtime, query);
      }
    } else if (has_offline) {
      plans.emplace_back(offline, query);
    } else if (has_realtime) {
      plans.emplace_back(realtime, query);
    } else {
      QueryResult result;
      result.partial = true;
      result.error_message = "no such table: " + query.table;
      return result;
    }
  }

  route_span.Close();
  metrics_->GetHistogram("broker_route_time_ms")
      ->Observe(route_span.duration_millis());
  merged.receipt.route_micros +=
      static_cast<int64_t>(route_span.duration_millis() * 1000.0);
  root.AddChild(std::move(route_span));

  const MetricLabels table_labels = {{"table", query.table}};
  for (const auto& [physical, subquery] : plans) {
    TraceSpan scatter_span = TraceSpan::Open("scatter:" + physical);
    QueryPhysicalTable(physical, subquery, deadline, &merged, &trace,
                       &scatter_span);
    scatter_span.Close();
    metrics_->GetHistogram("broker_scatter_time_ms", table_labels)
        ->Observe(scatter_span.duration_millis());
    merged.receipt.scatter_micros +=
        static_cast<int64_t>(scatter_span.duration_millis() * 1000.0);
    root.AddChild(std::move(scatter_span));
  }
  // Server spans were re-parented under their call spans before merging;
  // anything left (defensive) would dangle, so drop it.
  merged.spans.clear();

  QueryResult result;
  if (query.explain) {
    // EXPLAIN: planning already ran per segment inside the scatter; report
    // stats and the span tree without reducing (there are no rows).
    result.explain_only = true;
    result.stats = merged.stats;
    result.total_docs = merged.total_docs;
    if (!merged.status.ok()) {
      result.partial = true;
      result.error_message = merged.status.ToString();
    }
  } else {
    TraceSpan reduce_span = TraceSpan::Open("reduce");
    result = ReduceToFinalResult(query, std::move(merged));
    reduce_span.Close();
    metrics_->GetHistogram("broker_reduce_time_ms")
        ->Observe(reduce_span.duration_millis());
    result.receipt.reduce_micros +=
        static_cast<int64_t>(reduce_span.duration_millis() * 1000.0);
    root.AddChild(std::move(reduce_span));
  }
  result.receipt.calls = static_cast<uint32_t>(trace.events.size());
  result.receipt.retries = trace.retries;
  result.receipt.timeouts = trace.timeouts;
  result.receipt.hedges = trace.hedges;
  result.receipt.hedge_wins = trace.hedge_wins;
  const auto end = std::chrono::steady_clock::now();
  result.latency_millis =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count() /
      1000.0;
  root.Close();

  // Unlabeled counters keep their broker-wide meaning; the {table=...}
  // series roll the same families up per logical table for dashboards and
  // the SLO health rules.
  metrics_->GetCounter("broker_queries_total")->Increment();
  metrics_->GetCounter("broker_queries_total", table_labels)->Increment();
  if (result.partial) {
    metrics_->GetCounter("broker_partial_results_total")->Increment();
    metrics_->GetCounter("broker_partial_results_total", table_labels)
        ->Increment();
  }
  if (trace.retries > 0) {
    metrics_->GetCounter("broker_scatter_retries_total")
        ->Increment(trace.retries);
    metrics_->GetCounter("broker_scatter_retries_total", table_labels)
        ->Increment(trace.retries);
  }
  if (trace.timeouts > 0) {
    metrics_->GetCounter("broker_scatter_timeouts_total")
        ->Increment(trace.timeouts);
    metrics_->GetCounter("broker_scatter_timeouts_total", table_labels)
        ->Increment(trace.timeouts);
  }
  if (trace.hedges > 0) {
    metrics_->GetCounter("broker_hedged_calls_total")
        ->Increment(trace.hedges);
    metrics_->GetCounter("broker_hedged_calls_total", table_labels)
        ->Increment(trace.hedges);
  }
  if (trace.hedge_wins > 0) {
    metrics_->GetCounter("broker_hedge_wins_total")
        ->Increment(trace.hedge_wins);
    metrics_->GetCounter("broker_hedge_wins_total", table_labels)
        ->Increment(trace.hedge_wins);
  }
  if (result.receipt.docs_scanned > 0) {
    metrics_->GetCounter("broker_docs_scanned_total", table_labels)
        ->Increment(static_cast<int64_t>(result.receipt.docs_scanned));
  }
  if (result.receipt.payload_bytes > 0) {
    metrics_->GetCounter("broker_scatter_payload_bytes_total", table_labels)
        ->Increment(static_cast<int64_t>(result.receipt.payload_bytes));
  }
  metrics_->GetHistogram("broker_query_latency_ms", table_labels)
      ->Observe(result.latency_millis);

  if (!query.explain) {
    const bool slow = slow_query_log_.Record(result.latency_millis,
                                             query.table, query.ToString(),
                                             root, result.receipt.ToString());
    if (slow) {
      metrics_->GetCounter("broker_slow_queries_total", table_labels)
          ->Increment();
    }
  }
  if (query.trace || query.explain) result.span = std::move(root);
  result.trace = std::move(trace);
  return result;
}

}  // namespace pinot
