#include "query/table_executor.h"

#include <mutex>

#include "query/segment_executor.h"

namespace pinot {

namespace {

int CompareValuesForPrune(const Value& a, const Value& b) {
  const auto* sa = std::get_if<std::string>(&a);
  const auto* sb = std::get_if<std::string>(&b);
  if (sa != nullptr && sb != nullptr) return sa->compare(*sb);
  const double da = ValueToDouble(a);
  const double db = ValueToDouble(b);
  return da < db ? -1 : (da > db ? 1 : 0);
}

// Returns true when `pred` provably matches no document given the column's
// [min, max] statistics.
bool PredicateDisjointFromStats(const Predicate& pred,
                                const ColumnStats& stats) {
  switch (pred.op) {
    case PredicateOp::kEq: {
      const Value& v = pred.values[0];
      return CompareValuesForPrune(v, stats.min_value) < 0 ||
             CompareValuesForPrune(v, stats.max_value) > 0;
    }
    case PredicateOp::kIn: {
      for (const auto& v : pred.values) {
        if (CompareValuesForPrune(v, stats.min_value) >= 0 &&
            CompareValuesForPrune(v, stats.max_value) <= 0) {
          return false;
        }
      }
      return true;
    }
    case PredicateOp::kRange: {
      if (pred.lower.has_value()) {
        const int c = CompareValuesForPrune(*pred.lower, stats.max_value);
        if (c > 0 || (c == 0 && !pred.lower_inclusive)) return true;
      }
      if (pred.upper.has_value()) {
        const int c = CompareValuesForPrune(*pred.upper, stats.min_value);
        if (c < 0 || (c == 0 && !pred.upper_inclusive)) return true;
      }
      return false;
    }
    case PredicateOp::kNotEq:
    case PredicateOp::kNotIn:
      return false;
  }
  return false;
}

// Walks top-level AND leaves only: if any single conjunct is disjoint from
// the segment, the whole filter is.
bool FilterDisjointFromSegment(const SegmentInterface& segment,
                               const FilterNode& node) {
  switch (node.kind) {
    case FilterNode::Kind::kLeaf: {
      const ColumnReader* column = segment.GetColumn(node.predicate.column);
      if (column == nullptr) return false;
      return PredicateDisjointFromStats(node.predicate, column->stats());
    }
    case FilterNode::Kind::kAnd:
      for (const auto& child : node.children) {
        if (FilterDisjointFromSegment(segment, child)) return true;
      }
      return false;
    case FilterNode::Kind::kOr:
      for (const auto& child : node.children) {
        if (!FilterDisjointFromSegment(segment, child)) return false;
      }
      return !node.children.empty();
  }
  return false;
}

}  // namespace

bool CanPruneSegment(const SegmentInterface& segment, const Query& query) {
  if (!query.filter.has_value()) return false;
  if (segment.num_docs() == 0) return true;
  return FilterDisjointFromSegment(segment, *query.filter);
}

namespace {

// Annotates a finished per-segment span with that segment's own stats.
void AnnotateSegmentSpan(const ExecutionStats& stats, TraceSpan* span) {
  span->Annotate("docs_scanned", static_cast<int64_t>(stats.docs_scanned));
  span->Annotate("docs_matched", static_cast<int64_t>(stats.docs_matched));
  if (stats.used_star_tree) {
    span->Annotate("star_tree_records",
                   static_cast<int64_t>(stats.star_tree_records_scanned));
  }
}

}  // namespace

size_t TrimGroupPartial(const Query& query, size_t keep,
                        PartialResult* partial) {
  if (query.group_by.empty() || query.aggregations.empty()) return 0;
  if (partial->groups.size() <= keep) return 0;
  return partial->groups.TrimToTopN(query.aggregations[0].type, keep);
}

PartialResult ExecuteQueryOnSegments(
    const std::vector<std::shared_ptr<SegmentInterface>>& segments,
    const Query& query, ThreadPool* pool, TraceSpan* parent) {
  return ExecuteQueryOnSegments(segments, query, ScanOptions{}, pool, parent);
}

PartialResult ExecuteQueryOnSegments(
    const std::vector<std::shared_ptr<SegmentInterface>>& segments,
    const Query& query, const ScanOptions& options, ThreadPool* pool,
    TraceSpan* parent) {
  PartialResult merged;

  const int64_t prune_mark = TraceSpan::NowMicros();
  std::vector<std::shared_ptr<SegmentInterface>> to_run;
  for (const auto& segment : segments) {
    if (CanPruneSegment(*segment, query)) {
      merged.stats.segments_pruned += 1;
      merged.receipt.docs_pruned += segment->num_docs();
      merged.total_docs += segment->num_docs();
      if (parent != nullptr) {
        TraceSpan span =
            TraceSpan::Open("segment:" + segment->metadata().segment_name);
        span.Label("plan", "pruned");
        span.Close();
        parent->AddChild(std::move(span));
      }
    } else {
      to_run.push_back(segment);
    }
  }
  // Pruning decisions are part of planning.
  merged.receipt.plan_micros += TraceSpan::NowMicros() - prune_mark;

  if (query.explain) {
    // EXPLAIN: report the would-be plan per segment; read no row data.
    for (const auto& segment : to_run) {
      merged.stats.segments_queried += 1;
      merged.total_docs += segment->num_docs();
      if (parent != nullptr) {
        TraceSpan span =
            TraceSpan::Open("segment:" + segment->metadata().segment_name);
        const SegmentPlanKind kind = PlanQueryOnSegment(*segment, query, &span);
        span.Label("plan", SegmentPlanKindToString(kind));
        span.Close();
        parent->AddChild(std::move(span));
      }
    }
    return merged;
  }

  if (pool == nullptr || to_run.size() <= 1) {
    for (const auto& segment : to_run) {
      PartialResult partial;
      TraceSpan span;
      TraceSpan* span_ptr = nullptr;
      if (parent != nullptr) {
        span = TraceSpan::Open("segment:" + segment->metadata().segment_name);
        span_ptr = &span;
      }
      partial.status =
          ExecuteQueryOnSegment(*segment, query, options, span_ptr, &partial);
      if (parent != nullptr) {
        AnnotateSegmentSpan(partial.stats, &span);
        span.Close();
        parent->AddChild(std::move(span));
      }
      merged.Merge(std::move(partial));
    }
    return merged;
  }

  std::vector<PartialResult> partials(to_run.size());
  std::vector<TraceSpan> spans(parent != nullptr ? to_run.size() : 0);
  pool->ParallelFor(static_cast<int>(to_run.size()), [&](int i) {
    TraceSpan* span_ptr = nullptr;
    if (parent != nullptr) {
      spans[i] =
          TraceSpan::Open("segment:" + to_run[i]->metadata().segment_name);
      span_ptr = &spans[i];
    }
    partials[i].status = ExecuteQueryOnSegment(*to_run[i], query, options,
                                               span_ptr, &partials[i]);
    if (span_ptr != nullptr) {
      AnnotateSegmentSpan(partials[i].stats, span_ptr);
      span_ptr->Close();
    }
  });
  for (size_t i = 0; i < partials.size(); ++i) {
    if (parent != nullptr) parent->AddChild(std::move(spans[i]));
  }

  // Tree-wise combine: pairwise rounds across the pool, partials[2k] <-
  // partials[2k+1], compacting survivors in order. Merging in index order
  // at every round keeps error precedence (lowest segment's error wins) and
  // span concatenation order identical to the old sequential fold, and the
  // fixed pairing topology keeps float accumulation deterministic run to
  // run.
  size_t live = partials.size();
  while (live > 1) {
    const int pairs = static_cast<int>(live / 2);
    pool->ParallelFor(pairs, [&](int k) {
      partials[2 * k].Merge(std::move(partials[2 * k + 1]));
    });
    size_t write = 0;
    for (size_t read = 0; read < live; read += 2, ++write) {
      if (write != read) partials[write] = std::move(partials[read]);
    }
    live = write;
  }
  if (live == 1) merged.Merge(std::move(partials[0]));
  return merged;
}

}  // namespace pinot
