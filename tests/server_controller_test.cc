#include <gtest/gtest.h>

#include "cluster/pinot_cluster.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using test::AnalyticsSchema;
using test::BuildAnalyticsSegment;

TableConfig OfflineConfig(int replicas = 1) {
  TableConfig config;
  config.name = "analytics";
  config.type = TableType::kOffline;
  config.schema = AnalyticsSchema();
  config.num_replicas = replicas;
  return config;
}

std::string Blob(const std::string& name) {
  SegmentBuildConfig build;
  build.table_name = "analytics_OFFLINE";
  build.segment_name = name;
  return BuildAnalyticsSegment(build)->SerializeToBlob();
}

TEST(ControllerTest, AdminValidation) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineConfig()).ok());
  // Duplicate table.
  EXPECT_EQ(leader->AddTable(OfflineConfig()).code(),
            StatusCode::kAlreadyExists);
  // Upload to a nonexistent table.
  EXPECT_FALSE(leader->UploadSegment("nope_OFFLINE", Blob("x")).ok());
  // Update of a nonexistent table.
  TableConfig other = OfflineConfig();
  other.name = "other";
  EXPECT_FALSE(leader->UpdateTableConfig(other).ok());
  // Realtime table without a topic.
  TableConfig realtime = OfflineConfig();
  realtime.name = "rt";
  realtime.type = TableType::kRealtime;
  EXPECT_FALSE(leader->AddTable(realtime).ok());
  // Segment blob without a name.
  SegmentBuildConfig unnamed;
  unnamed.table_name = "analytics_OFFLINE";
  auto segment = BuildAnalyticsSegment(unnamed);
  // (BuildAnalyticsSegment defaults the name; construct one explicitly.)
  EXPECT_TRUE(leader->ListTables().size() == 1);
}

TEST(ControllerTest, DeleteTableCleansEverything) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineConfig()).ok());
  ASSERT_TRUE(leader->UploadSegment("analytics_OFFLINE", Blob("s0")).ok());
  ASSERT_TRUE(leader->UploadSegment("analytics_OFFLINE", Blob("s1")).ok());
  EXPECT_EQ(cluster.object_store()->object_count(), 2u);

  ASSERT_TRUE(leader->DeleteTable("analytics_OFFLINE").ok());
  EXPECT_EQ(cluster.object_store()->object_count(), 0u);
  EXPECT_TRUE(leader->ListTables().empty());
  EXPECT_TRUE(
      cluster.cluster_manager()->GetExternalView("analytics_OFFLINE").empty());
  for (int i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_TRUE(cluster.server(i)->HostedSegments("analytics_OFFLINE").empty());
  }
  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  EXPECT_TRUE(result.partial);
}

TEST(ControllerTest, DeleteSegmentUpdatesTimeBoundary) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineConfig()).ok());
  // Two segments: days 100-103 and (shifted) 100-101 only.
  ASSERT_TRUE(leader->UploadSegment("analytics_OFFLINE", Blob("s0")).ok());
  {
    SegmentBuildConfig build;
    build.table_name = "analytics_OFFLINE";
    build.segment_name = "s1";
    auto rows = test::AnalyticsRows();
    rows.resize(3);  // Days 100 only.
    auto segment = BuildAnalyticsSegment(build, rows);
    ASSERT_TRUE(
        leader->UploadSegment("analytics_OFFLINE", segment->SerializeToBlob())
            .ok());
  }
  EXPECT_EQ(*cluster.property_store()->Get("/TIMEBOUNDARY/analytics"), "103");
  // Dropping the later segment pulls the boundary back.
  ASSERT_TRUE(leader->DeleteSegment("analytics_OFFLINE", "s0").ok());
  EXPECT_EQ(*cluster.property_store()->Get("/TIMEBOUNDARY/analytics"), "100");
}

TEST(ServerTest, TransitionFailsWhenBlobMissing) {
  PinotCluster cluster(PinotClusterOptions{});
  // Force an ideal state for a segment that has no blob: the transition
  // fails and the replica stays out of the external view (broker routes
  // around it).
  cluster.cluster_manager()->SetSegmentIdealState(
      "ghost_OFFLINE", "ghost0", {{"server-0", SegmentState::kOnline}});
  const TableView view =
      cluster.cluster_manager()->GetExternalView("ghost_OFFLINE");
  EXPECT_TRUE(view.empty() || view.at("ghost0").empty());
  EXPECT_TRUE(cluster.server(0)->HostedSegments("ghost_OFFLINE").empty());
}

TEST(ServerTest, UnloadOnOfflineTransitionAndHostedBytes) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineConfig()).ok());
  ASSERT_TRUE(leader->UploadSegment("analytics_OFFLINE", Blob("s0")).ok());

  Server* host = nullptr;
  for (int i = 0; i < cluster.num_servers(); ++i) {
    if (!cluster.server(i)->HostedSegments("analytics_OFFLINE").empty()) {
      host = cluster.server(i);
    }
  }
  ASSERT_NE(host, nullptr);
  EXPECT_GT(host->HostedDataBytes(), 0u);

  cluster.cluster_manager()->SetSegmentIdealState(
      "analytics_OFFLINE", "s0", {{host->id(), SegmentState::kOffline}});
  EXPECT_TRUE(host->HostedSegments("analytics_OFFLINE").empty());
  EXPECT_EQ(host->HostedDataBytes(), 0u);
}

TEST(ServerTest, UnknownUserMessageRejected) {
  PinotCluster cluster(PinotClusterOptions{});
  Status st = cluster.cluster_manager()->SendUserMessage(
      cluster.server(0)->id(), "frobnicate", "");
  EXPECT_EQ(st.code(), StatusCode::kNotImplemented);
}

TEST(ServerTest, QueryForUnknownSegmentsIsPartialNotFatal) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineConfig()).ok());
  ASSERT_TRUE(leader->UploadSegment("analytics_OFFLINE", Blob("s0")).ok());
  Server* host = nullptr;
  for (int i = 0; i < cluster.num_servers(); ++i) {
    if (!cluster.server(i)->HostedSegments("analytics_OFFLINE").empty()) {
      host = cluster.server(i);
    }
  }
  ASSERT_NE(host, nullptr);

  ServerQueryRequest request;
  request.physical_table = "analytics_OFFLINE";
  request.query = *ParsePql("SELECT count(*) FROM analytics");
  request.segments = {"s0", "stale_segment"};
  PartialResult result = host->ExecuteServerQuery(request);
  // The hosted segment is served; the stale one marks the result partial.
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.total_docs, 12);
}

TEST(ServerTest, ServesQueriesAfterReplacingDeadNode) {
  // The cloud-friendly property (paper section 3.4): any node can be
  // removed and replaced by a blank one. We simulate by killing a server
  // and registering a brand-new one, then re-assigning.
  PinotClusterOptions options;
  options.num_servers = 1;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineConfig()).ok());
  ASSERT_TRUE(leader->UploadSegment("analytics_OFFLINE", Blob("s0")).ok());
  cluster.KillServer(0);
  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  EXPECT_EQ(result.total_docs, 0);
  // Revive = blank node rebuilding purely from the object store.
  cluster.ReviveServer(0);
  result = cluster.Execute("SELECT count(*) FROM analytics");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 12);
}

}  // namespace
}  // namespace pinot
