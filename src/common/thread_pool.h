#ifndef PINOT_COMMON_THREAD_POOL_H_
#define PINOT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pinot {

/// Fixed-size worker pool used by the server-side query execution scheduler
/// (paper section 3.3.4: "query plans are then submitted for execution to
/// the query execution scheduler. Query plans are processed in parallel").
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution; returns a future for its completion.
  std::future<void> Submit(std::function<void()> task);

  /// Runs `task` for i in [0, count) across the pool and blocks until all
  /// complete. Convenience for per-segment parallel plan execution.
  /// Dispatches one pool task per worker (not per index); workers claim
  /// indexes from a shared atomic counter, so large `count` values do not
  /// flood the queue.
  void ParallelFor(int count, const std::function<void(int)>& task);

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace pinot

#endif  // PINOT_COMMON_THREAD_POOL_H_
