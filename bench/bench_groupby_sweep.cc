// Group-by cardinality sweep: radix-partitioned packed aggregation vs the
// legacy single open-addressing table, 10 -> 1M groups on one segment.
// Verifies the two paths produce identical results (checksum abort), that
// the packed flush stays allocation-free per group (global operator new
// counter), and reports the scatter payload bytes a server would ship with
// and without ORDER-BY/LIMIT trimming.
//
// Expected shape: radix holds its throughput roughly flat as cardinality
// grows past cache sizes while legacy falls off a rehash/probe cliff, and
// trimmed payload is O(over-fetch) regardless of group count.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "query/result.h"
#include "query/segment_executor.h"
#include "query/table_executor.h"

// Heap-allocation counter: every operator new in the process bumps this.
// The bench resets it around each measured execution to prove the radix
// flush does not allocate per group (the old flush built a
// std::vector<Value> + map node + key string per group).
namespace {
std::atomic<uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pinot {
namespace bench {
namespace {

std::shared_ptr<ImmutableSegment> BuildSweepSegment(uint32_t rows,
                                                    uint32_t cardinality,
                                                    uint64_t seed) {
  auto schema = Schema::Make({
      FieldSpec::Dimension("memberId", DataType::kLong),
      FieldSpec::Metric("impressions", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.status().ToString().c_str());
    std::abort();
  }
  SegmentBuildConfig config;
  config.table_name = "sweep";
  config.segment_name = "sweep_0";
  SegmentBuilder builder(*schema, config);
  Random rng(seed);
  for (uint32_t i = 0; i < rows; ++i) {
    Row row;
    row.SetLong("memberId", static_cast<int64_t>(rng.NextUint64(cardinality)))
        .SetLong("impressions", static_cast<int64_t>(rng.NextUint64(100000)))
        .SetLong("day", 100 + static_cast<int64_t>(rng.NextUint64(30)));
    Status st = builder.AddRow(row);
    if (!st.ok()) {
      std::fprintf(stderr, "AddRow: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  auto segment = builder.Build();
  if (!segment.ok()) {
    std::fprintf(stderr, "Build: %s\n", segment.status().ToString().c_str());
    std::abort();
  }
  return *segment;
}

struct RunStats {
  double rows_per_sec = 0;
  uint64_t groups = 0;
  uint64_t heap_allocs = 0;  // During the last iteration only.
  double checksum = 0;
  std::vector<double> latencies_ms;  // Sorted, one per iteration.
};

RunStats RunSweepQuery(const SegmentInterface& segment, const Query& query,
                       const ScanOptions& options, int iters) {
  RunStats stats;
  uint64_t docs_scanned = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iters; ++it) {
    const auto iter_start = std::chrono::steady_clock::now();
    const uint64_t allocs_before =
        g_heap_allocs.load(std::memory_order_relaxed);
    PartialResult partial;
    Status st = ExecuteQueryOnSegment(segment, query, options, &partial);
    stats.heap_allocs =
        g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
    if (!st.ok()) {
      std::fprintf(stderr, "execute: %s\n", st.ToString().c_str());
      std::abort();
    }
    stats.latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                                     std::chrono::steady_clock::now() -
                                     iter_start)
                                     .count());
    docs_scanned += partial.stats.docs_scanned;
    stats.groups = partial.groups.size();
    stats.checksum = 0;
    for (uint32_t g = 0; g < partial.groups.size(); ++g) {
      stats.checksum += partial.groups.StatesAt(g)[0].sum;
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  stats.rows_per_sec =
      seconds > 0 ? static_cast<double>(docs_scanned) / seconds : 0;
  std::sort(stats.latencies_ms.begin(), stats.latencies_ms.end());
  return stats;
}

QpsPoint ToPoint(uint32_t cardinality, RunStats& stats) {
  QpsPoint point;
  point.offered_qps = cardinality;  // Curve key: the swept group count.
  point.achieved_qps = stats.rows_per_sec;
  point.queries = stats.latencies_ms.size();
  double sum = 0;
  for (double v : stats.latencies_ms) sum += v;
  point.avg_ms =
      stats.latencies_ms.empty() ? 0 : sum / stats.latencies_ms.size();
  point.p50_ms = Percentile(stats.latencies_ms, 0.50);
  point.p95_ms = Percentile(stats.latencies_ms, 0.95);
  point.p99_ms = Percentile(stats.latencies_ms, 0.99);
  return point;
}

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  // Default to a 2M-doc segment so the 1M-group case has ~2 docs per
  // group; the shared --rows flag overrides.
  const uint32_t rows = options.rows == 150000 ? 2000000 : options.rows;

  // TOP 10 so the trim demo uses the production over-fetch
  // max(10 * 5, 5000); the sweep itself never reduces, so TOP does not
  // affect the timed path.
  auto query = ParsePql("SELECT sum(impressions) FROM sweep "
                        "GROUP BY memberId TOP 10");
  if (!query.ok()) {
    std::fprintf(stderr, "query: %s\n", query.status().ToString().c_str());
    std::abort();
  }
  const size_t trim_keep = std::max<size_t>(
      static_cast<size_t>(query->top_n) * 5, 5000);

  // Both configs disable the dense direct-indexed table (it would cover the
  // whole sweep and hide the hash paths under test).
  ScanOptions legacy;
  legacy.dense_groupby_max_slots = 0;
  legacy.radix_groupby = false;
  ScanOptions radix;
  radix.dense_groupby_max_slots = 0;
  radix.radix_groupby = true;

  BenchJsonWriter json("groupby_sweep", options.json_path);
  std::printf("# bench_groupby_sweep — legacy open-addressing vs "
              "radix-partitioned group-by on a %u-doc segment\n",
              rows);
  std::printf("%10s %10s %14s %14s %8s %12s %14s %14s\n", "cardinality",
              "groups", "legacy rows/s", "radix rows/s", "speedup",
              "allocs/group", "payload bytes", "trimmed bytes");

  const std::vector<uint32_t> sweep = {10,    100,    1000,   10000,
                                       50000, 100000, 1000000};
  for (uint32_t cardinality : sweep) {
    if (cardinality > rows) continue;
    auto segment = BuildSweepSegment(rows, cardinality, options.seed);
    const int iters = cardinality >= 100000 ? 3 : 5;

    RunStats legacy_stats = RunSweepQuery(*segment, *query, legacy, iters);
    RunStats radix_stats = RunSweepQuery(*segment, *query, radix, iters);
    if (legacy_stats.checksum != radix_stats.checksum ||
        legacy_stats.groups != radix_stats.groups) {
      std::fprintf(stderr,
                   "MISMATCH at cardinality %u: legacy %f/%llu vs radix "
                   "%f/%llu\n",
                   cardinality, legacy_stats.checksum,
                   static_cast<unsigned long long>(legacy_stats.groups),
                   radix_stats.checksum,
                   static_cast<unsigned long long>(radix_stats.groups));
      std::abort();
    }
    const double allocs_per_group =
        radix_stats.groups > 0
            ? static_cast<double>(radix_stats.heap_allocs) /
                  static_cast<double>(radix_stats.groups)
            : 0;
    // The satellite fix under test: the packed flush must not allocate per
    // group (vector growth is amortized-logarithmic, so the ratio tends to
    // zero as cardinality grows).
    if (radix_stats.groups >= 50000 && allocs_per_group > 1.0) {
      std::fprintf(stderr,
                   "ALLOC REGRESSION at cardinality %u: %llu heap "
                   "allocations for %llu groups (%.2f/group)\n",
                   cardinality,
                   static_cast<unsigned long long>(radix_stats.heap_allocs),
                   static_cast<unsigned long long>(radix_stats.groups),
                   allocs_per_group);
      std::abort();
    }

    // Scatter payload a server would ship, with and without trimming.
    PartialResult partial;
    Status st = ExecuteQueryOnSegment(*segment, *query, radix, &partial);
    if (!st.ok()) {
      std::fprintf(stderr, "execute: %s\n", st.ToString().c_str());
      std::abort();
    }
    const size_t payload_before = partial.groups.ApproxPayloadBytes();
    TrimGroupPartial(*query, trim_keep, &partial);
    const size_t payload_after = partial.groups.ApproxPayloadBytes();

    std::printf("%10u %10llu %14.0f %14.0f %7.2fx %12.4f %14zu %14zu\n",
                cardinality,
                static_cast<unsigned long long>(radix_stats.groups),
                legacy_stats.rows_per_sec, radix_stats.rows_per_sec,
                legacy_stats.rows_per_sec > 0
                    ? radix_stats.rows_per_sec / legacy_stats.rows_per_sec
                    : 0,
                allocs_per_group, payload_before, payload_after);
    std::fflush(stdout);

    json.Add("legacy", ToPoint(cardinality, legacy_stats));
    json.Add("radix", ToPoint(cardinality, radix_stats));
  }
  return json.Write() ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace pinot

int main(int argc, char** argv) { return pinot::bench::Main(argc, argv); }
