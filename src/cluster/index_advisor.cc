#include "cluster/index_advisor.h"

#include <algorithm>

namespace pinot {

void IndexAdvisor::CollectFilterColumns(const FilterNode& node,
                                        std::vector<std::string>* out) {
  switch (node.kind) {
    case FilterNode::Kind::kLeaf:
      out->push_back(node.predicate.column);
      return;
    case FilterNode::Kind::kAnd:
    case FilterNode::Kind::kOr:
      for (const auto& child : node.children) {
        CollectFilterColumns(child, out);
      }
      return;
  }
}

void IndexAdvisor::RecordQuery(const std::string& physical_table,
                               const Query& query, uint64_t docs_scanned) {
  std::vector<std::string> columns;
  if (query.filter.has_value()) {
    CollectFilterColumns(*query.filter, &columns);
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());

  std::lock_guard<std::mutex> lock(mutex_);
  TableLog& log = logs_[physical_table];
  ++log.queries;
  log.docs_scanned += docs_scanned;
  for (const auto& column : columns) {
    ++log.columns[column].filter_count;
  }
}

std::vector<IndexAdvisor::Recommendation> IndexAdvisor::Analyze(
    const TableConfig& config) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Recommendation> out;
  auto it = logs_.find(config.PhysicalName());
  if (it == logs_.end()) return out;
  const TableLog& log = it->second;
  if (log.queries == 0) return out;
  const double avg_scanned =
      static_cast<double>(log.docs_scanned) / log.queries;
  if (avg_scanned < options_.min_avg_docs_scanned) return out;

  const std::string sorted_column =
      config.sort_columns.empty() ? "" : config.sort_columns.front();
  for (const auto& [column, stats] : log.columns) {
    if (stats.filter_count < options_.min_filter_count) continue;
    if (column == sorted_column) continue;  // Served by the sorted layout.
    if (std::find(config.inverted_index_columns.begin(),
                  config.inverted_index_columns.end(),
                  column) != config.inverted_index_columns.end()) {
      continue;  // Already indexed.
    }
    const FieldSpec* field = config.schema.GetField(column);
    if (field == nullptr || field->role == FieldRole::kMetric) continue;
    out.push_back({config.PhysicalName(), column, stats.filter_count});
  }
  std::sort(out.begin(), out.end(),
            [](const Recommendation& a, const Recommendation& b) {
              return a.filter_count > b.filter_count;
            });
  return out;
}

std::vector<IndexAdvisor::Recommendation> IndexAdvisor::Apply(
    Controller* controller, const std::string& physical_table) {
  auto config = controller->GetTableConfig(physical_table);
  if (!config.ok()) return {};
  std::vector<Recommendation> recommendations = Analyze(*config);
  if (recommendations.empty()) return recommendations;

  // Future segments get the index at build time...
  for (const auto& rec : recommendations) {
    config->inverted_index_columns.push_back(rec.column);
  }
  (void)controller->UpdateTableConfig(*config);
  // ...and servers build it on already-loaded segments now (the
  // append-only index file of section 3.2 allows this without a rebuild).
  for (const auto& rec : recommendations) {
    (void)controller->RequestInvertedIndex(physical_table, rec.column);
  }
  return recommendations;
}

uint64_t IndexAdvisor::logged_queries(
    const std::string& physical_table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = logs_.find(physical_table);
  return it == logs_.end() ? 0 : it->second.queries;
}

}  // namespace pinot
