// Tests for the hierarchical query-tracing subsystem: TraceSpan structure
// and rendering, the slow-query log, and end-to-end TRACE / EXPLAIN queries
// through a full (hybrid) cluster.

#include "trace/trace.h"

#include <gtest/gtest.h>

#include "cluster/pinot_cluster.h"
#include "tests/test_util.h"
#include "trace/slow_query_log.h"

namespace pinot {
namespace {

using test::AnalyticsRows;
using test::AnalyticsSchema;
using test::BuildAnalyticsSegment;
using test::ToRow;

// Clock-granularity slack for containment checks: spans on different
// components are stamped at slightly different instants.
constexpr int64_t kSlackMicros = 2000;

// --- TraceSpan unit tests ---------------------------------------------------

TEST(TraceSpanTest, RenderGrammar) {
  TraceSpan root = TraceSpan::OpenAt("broker:b0", 1000);
  root.duration_micros = 12345;  // 12.345ms
  TraceSpan child = TraceSpan::OpenAt("segment:seg0", 1100);
  child.duration_micros = 900;  // 0.900ms
  child.Label("plan", "raw");
  child.Annotate("docs_scanned", 42);
  root.AddChild(std::move(child));

  EXPECT_EQ(root.ToString(),
            "broker:b0 12.345ms\n"
            "  segment:seg0 0.900ms {plan=raw, docs_scanned=42}\n");
}

TEST(TraceSpanTest, RenderPadsSubMillisecondDurations) {
  TraceSpan span = TraceSpan::OpenAt("x", 0);
  span.duration_micros = 7;  // Must render as 0.007, not 0.7.
  EXPECT_EQ(span.ToString(), "x 0.007ms\n");
}

TEST(TraceSpanTest, FindAnnotationLabel) {
  TraceSpan root = TraceSpan::OpenAt("root", 0);
  TraceSpan mid = TraceSpan::OpenAt("mid", 0);
  TraceSpan leaf = TraceSpan::OpenAt("leaf", 0);
  leaf.Annotate("docs", 7);
  leaf.Label("plan", "star-tree");
  mid.AddChild(std::move(leaf));
  root.AddChild(std::move(mid));

  const TraceSpan* found = root.Find("leaf");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->Annotation("docs"), 7);
  EXPECT_EQ(found->Annotation("missing", -1), -1);
  EXPECT_EQ(found->LabelValue("plan"), "star-tree");
  EXPECT_EQ(found->LabelValue("missing"), "");
  EXPECT_EQ(root.Find("nope"), nullptr);
  EXPECT_EQ(root.Find("root"), &root);
}

TEST(TraceSpanTest, WellFormedAcceptsContainedChildren) {
  TraceSpan root = TraceSpan::OpenAt("root", 1000);
  root.duration_micros = 100;
  TraceSpan child = TraceSpan::OpenAt("child", 1010);
  child.duration_micros = 50;
  root.AddChild(std::move(child));
  std::string why;
  EXPECT_TRUE(root.WellFormed(&why)) << why;
}

TEST(TraceSpanTest, WellFormedRejectsChildOutsideParent) {
  TraceSpan root = TraceSpan::OpenAt("root", 1000);
  root.duration_micros = 100;
  TraceSpan child = TraceSpan::OpenAt("child", 1090);
  child.duration_micros = 500;  // Ends at 1590 > 1100.
  root.AddChild(std::move(child));
  std::string why;
  EXPECT_FALSE(root.WellFormed(&why));
  EXPECT_NE(why.find("ends after parent"), std::string::npos) << why;
  // Slack big enough to cover the overhang makes it pass again.
  EXPECT_TRUE(root.WellFormed(&why, /*slack_micros=*/500));
}

TEST(TraceSpanTest, WellFormedRejectsNegativeDuration) {
  TraceSpan span = TraceSpan::OpenAt("x", 0);
  span.duration_micros = -1;
  std::string why;
  EXPECT_FALSE(span.WellFormed(&why));
  EXPECT_NE(why.find("negative"), std::string::npos) << why;
}

// --- SlowQueryLog unit tests ------------------------------------------------

TraceSpan TinySpan() {
  TraceSpan span = TraceSpan::OpenAt("broker:b0", 0);
  span.duration_micros = 1000;
  return span;
}

TEST(SlowQueryLogTest, ThresholdFiltersFastQueries) {
  SlowQueryLog log(SlowQueryLog::Options{/*threshold_millis=*/50.0,
                                         /*capacity=*/4});
  log.Record(10.0, "fast", TinySpan());
  EXPECT_EQ(log.size(), 0u);
  log.Record(50.0, "at threshold", TinySpan());
  EXPECT_EQ(log.size(), 1u);
  EXPECT_NE(log.Dump().find("at threshold"), std::string::npos);
}

TEST(SlowQueryLogTest, KeepsWorstNInOrder) {
  SlowQueryLog log(SlowQueryLog::Options{/*threshold_millis=*/0.0,
                                         /*capacity=*/3});
  log.Record(30.0, "q30", TinySpan());
  log.Record(10.0, "q10", TinySpan());
  log.Record(50.0, "q50", TinySpan());
  log.Record(40.0, "q40", TinySpan());  // Evicts q10.
  log.Record(5.0, "q5", TinySpan());    // Below the current worst 3; dropped.

  const auto worst = log.Worst();
  ASSERT_EQ(worst.size(), 3u);
  EXPECT_EQ(worst[0].description, "q50");
  EXPECT_EQ(worst[1].description, "q40");
  EXPECT_EQ(worst[2].description, "q30");
  // Top-n cap applies to both Worst and Dump.
  EXPECT_EQ(log.Worst(1).size(), 1u);
  const std::string top1 = log.Dump(1);
  EXPECT_NE(top1.find("q50"), std::string::npos);
  EXPECT_EQ(top1.find("q40"), std::string::npos);
}

TEST(SlowQueryLogTest, DumpContainsRenderedTrace) {
  SlowQueryLog log(SlowQueryLog::Options{0.0, 2});
  TraceSpan root = TinySpan();
  TraceSpan child = TraceSpan::OpenAt("reduce", 0);
  child.duration_micros = 10;
  root.AddChild(std::move(child));
  log.Record(12.5, "SELECT count(*) FROM t", root);
  const std::string dump = log.Dump();
  EXPECT_NE(dump.find("# slow query 1: 12.500ms"), std::string::npos) << dump;
  EXPECT_NE(dump.find("SELECT count(*) FROM t"), std::string::npos);
  EXPECT_NE(dump.find("broker:b0"), std::string::npos);
  EXPECT_NE(dump.find("  reduce"), std::string::npos);
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_NE(log.Dump().find("empty"), std::string::npos);
}

// --- Cluster integration ----------------------------------------------------

class TraceClusterTest : public ::testing::Test {
 protected:
  TableConfig OfflineConfig(int replicas = 1) {
    TableConfig config;
    config.name = "analytics";
    config.type = TableType::kOffline;
    config.schema = AnalyticsSchema();
    config.num_replicas = replicas;
    return config;
  }

  TableConfig RealtimeConfig() {
    TableConfig config;
    config.name = "analytics";
    config.type = TableType::kRealtime;
    config.schema = AnalyticsSchema();
    config.num_replicas = 1;
    config.realtime.topic = "analytics-events";
    config.realtime.num_partitions = 1;
    config.realtime.flush_threshold_rows = 100000;  // Stay consuming.
    return config;
  }

  std::string BuildSegmentBlob(const std::string& name,
                               SegmentBuildConfig config = {}) {
    config.segment_name = name;
    config.table_name = "analytics_OFFLINE";
    auto segment = BuildAnalyticsSegment(std::move(config));
    return segment->SerializeToBlob();
  }

  // Offline segment (days 100-103) plus a realtime stream extending past the
  // boundary: the classic hybrid setup of paper Figure 6.
  void SetUpHybrid(PinotCluster* cluster) {
    Controller* leader = cluster->leader_controller();
    ASSERT_TRUE(leader->AddTable(OfflineConfig()).ok());
    ASSERT_TRUE(
        leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg0"))
            .ok());
    StreamTopic* topic =
        cluster->streams()->GetOrCreateTopic("analytics-events", 1);
    ASSERT_TRUE(leader->AddTable(RealtimeConfig()).ok());
    for (auto row : AnalyticsRows()) {
      row.day += 3;  // Days 103-106: overlaps and extends the offline data.
      topic->Produce(std::to_string(row.member_id), ToRow(row));
    }
    cluster->ProcessRealtimeTicks(2);
  }
};

TEST_F(TraceClusterTest, TraceQueryOnHybridTableYieldsSpanTree) {
  PinotCluster cluster(PinotClusterOptions{});
  SetUpHybrid(&cluster);

  auto result = cluster.Execute(
      "TRACE SELECT sum(impressions) FROM analytics WHERE country = 'us'");
  ASSERT_FALSE(result.partial) << result.error_message;
  ASSERT_TRUE(result.span.has_value());
  EXPECT_FALSE(result.explain_only);

  const TraceSpan& root = *result.span;
  EXPECT_EQ(root.name.rfind("broker:", 0), 0u) << root.name;
  std::string why;
  EXPECT_TRUE(root.WellFormed(&why, kSlackMicros)) << why << "\n"
                                                   << root.ToString();

  // The hybrid rewrite scatters to both physical tables; each scatter has
  // call -> server -> segment nesting.
  EXPECT_NE(root.Find("route"), nullptr);
  EXPECT_NE(root.Find("reduce"), nullptr);
  for (const char* scatter :
       {"scatter:analytics_OFFLINE", "scatter:analytics_REALTIME"}) {
    const TraceSpan* scatter_span = root.Find(scatter);
    ASSERT_NE(scatter_span, nullptr) << scatter << "\n" << root.ToString();
    ASSERT_FALSE(scatter_span->children.empty()) << root.ToString();
    const TraceSpan& call = scatter_span->children[0];
    EXPECT_EQ(call.name.rfind("call:", 0), 0u) << call.name;
    EXPECT_EQ(call.LabelValue("outcome"), "ok");
    EXPECT_EQ(call.LabelValue("pick"), "routing-table");
    EXPECT_EQ(call.Annotation("wave", -1), 0);
    ASSERT_FALSE(call.children.empty()) << root.ToString();
    const TraceSpan& server = call.children[0];
    EXPECT_EQ(server.name.rfind("server:", 0), 0u) << server.name;
    EXPECT_GE(server.Annotation("exec_micros", -1), 0);
    EXPECT_GE(server.Annotation("queue_micros", -1), 0);
  }

  // Per-segment leaves carry the chosen plan and doc counts. The offline
  // side runs a raw filtered scan over the 12-row fixture segment.
  const TraceSpan* segment = root.Find("segment:seg0");
  ASSERT_NE(segment, nullptr) << root.ToString();
  EXPECT_EQ(segment->LabelValue("plan"), "raw");
  // During execution the per-column filter operators land on the filter
  // phase span (EXPLAIN puts them directly on the segment span).
  const TraceSpan* filter = segment->Find("filter");
  ASSERT_NE(filter, nullptr) << root.ToString();
  EXPECT_EQ(filter->LabelValue("op:country"), "scan");
  EXPECT_GE(filter->Annotation("docs_matched", -1), 0);
  EXPECT_GT(segment->Annotation("docs_scanned", -1), 0);
  EXPECT_GT(segment->Annotation("docs_matched", -1), 0);

  // The rendered tree rides on the client-facing ToString.
  EXPECT_NE(result.ToString().find("--- trace ---"), std::string::npos);
}

TEST_F(TraceClusterTest, UntracedQueryCarriesNoSpan) {
  PinotCluster cluster(PinotClusterOptions{});
  SetUpHybrid(&cluster);
  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  EXPECT_FALSE(result.span.has_value());
  EXPECT_EQ(result.ToString().find("--- trace ---"), std::string::npos);
}

TEST_F(TraceClusterTest, TraceMatchesUntracedResults) {
  PinotCluster cluster(PinotClusterOptions{});
  SetUpHybrid(&cluster);
  const std::string pql =
      "SELECT sum(impressions), count(*) FROM analytics GROUP BY country "
      "TOP 10";
  auto plain = cluster.Execute(pql);
  auto traced = cluster.Execute("TRACE " + pql);
  ASSERT_FALSE(plain.partial) << plain.error_message;
  ASSERT_FALSE(traced.partial) << traced.error_message;
  ASSERT_EQ(traced.group_rows.size(), plain.group_rows.size());
  for (size_t i = 0; i < plain.group_rows.size(); ++i) {
    EXPECT_EQ(traced.group_rows[i].keys, plain.group_rows[i].keys);
    EXPECT_EQ(traced.group_rows[i].values, plain.group_rows[i].values);
  }
  EXPECT_EQ(traced.stats.docs_scanned, plain.stats.docs_scanned);
  EXPECT_EQ(traced.stats.segments_queried, plain.stats.segments_queried);
}

TEST_F(TraceClusterTest, ExplainReportsPlansWithoutExecuting) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineConfig()).ok());
  SegmentBuildConfig star;
  star.sort_columns = {"country"};
  star.star_tree.dimensions = {"country", "browser", "day"};
  star.star_tree.metrics = {"impressions", "clicks"};
  ASSERT_TRUE(leader
                  ->UploadSegment("analytics_OFFLINE",
                                  BuildSegmentBlob("seg_star", star))
                  .ok());

  // Metadata-only: unfiltered count(*) never touches row data.
  auto result = cluster.Execute("EXPLAIN SELECT count(*) FROM analytics");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_TRUE(result.explain_only);
  ASSERT_TRUE(result.span.has_value());
  const TraceSpan* segment = result.span->Find("segment:seg_star");
  ASSERT_NE(segment, nullptr) << result.span->ToString();
  EXPECT_EQ(segment->LabelValue("plan"), "metadata");
  // Nothing executed: no rows, no aggregates, no docs scanned.
  EXPECT_TRUE(result.aggregates.empty());
  EXPECT_TRUE(result.group_rows.empty());
  EXPECT_EQ(result.stats.docs_scanned, 0u);
  EXPECT_EQ(result.stats.segments_queried, 1u);
  EXPECT_NE(result.ToString().find("--- plan ---"), std::string::npos);

  // Star-tree-eligible aggregation group-by.
  result = cluster.Execute(
      "EXPLAIN SELECT sum(impressions) FROM analytics GROUP BY country "
      "TOP 10");
  ASSERT_TRUE(result.span.has_value());
  segment = result.span->Find("segment:seg_star");
  ASSERT_NE(segment, nullptr);
  EXPECT_EQ(segment->LabelValue("plan"), "star-tree");
  EXPECT_EQ(result.stats.docs_scanned, 0u);

  // Filter on a non-star-tree column falls back to raw, and the would-be
  // filter operator per column is reported.
  result = cluster.Execute(
      "EXPLAIN SELECT sum(impressions) FROM analytics WHERE country = 'us' "
      "AND memberId = 1");
  ASSERT_TRUE(result.span.has_value());
  segment = result.span->Find("segment:seg_star");
  ASSERT_NE(segment, nullptr);
  EXPECT_EQ(segment->LabelValue("plan"), "raw");
  EXPECT_EQ(segment->LabelValue("op:country"), "sorted-range");
  EXPECT_EQ(segment->LabelValue("op:memberId"), "scan");
  EXPECT_EQ(result.stats.docs_scanned, 0u);
}

TEST_F(TraceClusterTest, ExplainReportsPrunedSegments) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineConfig()).ok());
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg0"))
          .ok());
  // Fixture days are 100-103; this predicate is disjoint from the segment.
  auto result =
      cluster.Execute("EXPLAIN SELECT count(*) FROM analytics WHERE day > "
                      "500");
  ASSERT_TRUE(result.span.has_value());
  const TraceSpan* segment = result.span->Find("segment:seg0");
  ASSERT_NE(segment, nullptr) << result.span->ToString();
  EXPECT_EQ(segment->LabelValue("plan"), "pruned");
  EXPECT_EQ(result.stats.segments_pruned, 1u);
  EXPECT_EQ(result.stats.segments_queried, 0u);
}

// Satellite: per-segment execution stats must survive the server combine and
// the broker merge into the final result, including star-tree counters.
TEST_F(TraceClusterTest, ExecutionStatsSurviveBrokerMerge) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineConfig()).ok());
  SegmentBuildConfig star;
  star.sort_columns = {"country"};
  star.star_tree.dimensions = {"country", "browser", "day"};
  star.star_tree.metrics = {"impressions", "clicks"};
  ASSERT_TRUE(leader
                  ->UploadSegment("analytics_OFFLINE",
                                  BuildSegmentBlob("seg_star0", star))
                  .ok());
  ASSERT_TRUE(leader
                  ->UploadSegment("analytics_OFFLINE",
                                  BuildSegmentBlob("seg_star1", star))
                  .ok());

  auto result = cluster.Execute(
      "SELECT sum(impressions) FROM analytics GROUP BY country TOP 10");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(result.stats.segments_queried, 2u);
  EXPECT_TRUE(result.stats.used_star_tree);
  EXPECT_GT(result.stats.star_tree_records_scanned, 0u);
  EXPECT_EQ(result.total_docs, 24);
  // The client-facing rendering exposes the segment totals.
  EXPECT_NE(result.ToString().find("segments queried: 2"), std::string::npos)
      << result.ToString();

  // A raw filtered scan accumulates doc counters across both segments.
  result = cluster.Execute(
      "SELECT sum(impressions) FROM analytics WHERE memberId >= 1");
  EXPECT_EQ(result.stats.docs_scanned, 24u);
  EXPECT_EQ(result.stats.docs_matched, 24u);
}

TEST_F(TraceClusterTest, SlowQueryLogCapturesInjectedDelay) {
  PinotClusterOptions options;
  options.num_servers = 1;
  options.broker_options.slow_query_threshold_millis = 20.0;
  options.broker_options.slow_query_log_capacity = 4;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineConfig()).ok());
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg0"))
          .ok());

  // A fast query stays out of the log.
  cluster.Execute("SELECT count(*) FROM analytics");
  EXPECT_EQ(cluster.broker(0)->slow_query_log()->size(), 0u);

  // Delay the next server call past the threshold; the query is NOT traced,
  // but broker-level spans are always recorded, so the log still captures
  // it.
  cluster.server(0)->InjectQueryDelay(1, 60);
  auto result =
      cluster.Execute("SELECT sum(clicks) FROM analytics WHERE day >= 100");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_GE(result.latency_millis, 20.0);

  ASSERT_EQ(cluster.broker(0)->slow_query_log()->size(), 1u);
  const std::string dump = cluster.SlowQueryLogDump();
  EXPECT_NE(dump.find("# slow query 1:"), std::string::npos) << dump;
  EXPECT_NE(dump.find("SELECT sum(clicks) FROM analytics"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("scatter:analytics_OFFLINE"), std::string::npos) << dump;
  // The scatter phase dominates the retained trace (that is where the
  // injected delay sat), so the log attributes the latency correctly.
  const auto worst = cluster.broker(0)->slow_query_log()->Worst(1);
  ASSERT_EQ(worst.size(), 1u);
  EXPECT_GE(worst[0].latency_millis, 20.0);
}

TEST(SlowQueryLogTest, DumpCarriesTableAndReceipt) {
  SlowQueryLog log(SlowQueryLog::Options{0.0, 2});
  EXPECT_TRUE(log.Record(12.0, "events", "SELECT count(*) FROM events",
                         TinySpan(),
                         "receipt: phases queue=0.100ms\n"
                         "receipt: work docs_scanned=42\n"));
  const std::string dump = log.Dump();
  EXPECT_NE(dump.find("# table=events"), std::string::npos) << dump;
  // Receipt lines are comment-prefixed so span-grammar consumers skip them.
  EXPECT_NE(dump.find("# receipt: phases queue=0.100ms"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("# receipt: work docs_scanned=42"), std::string::npos)
      << dump;
}

TEST(SlowQueryLogTest, RecordReportsThresholdCrossing) {
  SlowQueryLog log(SlowQueryLog::Options{/*threshold_millis=*/50.0,
                                         /*capacity=*/1});
  EXPECT_FALSE(log.Record(10.0, "t", "fast", TinySpan(), ""));
  EXPECT_TRUE(log.Record(60.0, "t", "slow", TinySpan(), ""));
  // Slow but not retained (worse entry already holds the only slot): still
  // reported as slow so the per-table counter keeps counting.
  EXPECT_TRUE(log.Record(55.0, "t", "also slow", TinySpan(), ""));
  EXPECT_EQ(log.size(), 1u);
}

// Sums an annotation over every span in the tree whose name starts with
// `prefix`.
int64_t SumAnnotation(const TraceSpan& span, const std::string& prefix,
                      const std::string& key) {
  int64_t total = 0;
  if (span.name.rfind(prefix, 0) == 0) total += span.Annotation(key, 0);
  for (const auto& child : span.children) {
    total += SumAnnotation(child, prefix, key);
  }
  return total;
}

// Tentpole: a TRACE'd query renders a resource receipt whose totals agree
// with the execution stats and with the per-segment span annotations.
TEST_F(TraceClusterTest, TracedQueryRendersConsistentReceipt) {
  PinotCluster cluster(PinotClusterOptions{});
  SetUpHybrid(&cluster);

  auto result = cluster.Execute(
      "TRACE SELECT sum(impressions) FROM analytics WHERE country = 'us'");
  ASSERT_FALSE(result.partial) << result.error_message;
  ASSERT_TRUE(result.span.has_value());

  const QueryReceipt& receipt = result.receipt;
  // Receipt doc/segment tallies mirror the canonical execution stats.
  EXPECT_EQ(receipt.docs_scanned, result.stats.docs_scanned);
  EXPECT_EQ(receipt.segments_queried, result.stats.segments_queried);
  EXPECT_EQ(receipt.segments_pruned, result.stats.segments_pruned);
  // ...and both agree with the per-segment span annotations.
  EXPECT_EQ(SumAnnotation(*result.span, "segment:", "docs_scanned"),
            static_cast<int64_t>(receipt.docs_scanned));
  // One scatter call per physical table of the hybrid plan.
  EXPECT_EQ(receipt.calls, result.trace.events.size());
  EXPECT_EQ(receipt.calls, 2u);
  EXPECT_EQ(receipt.retries, result.trace.retries);
  EXPECT_EQ(receipt.hedges, result.trace.hedges);
  // Work actually happened, and the phase clocks ran.
  EXPECT_GT(receipt.docs_scanned, 0u);
  EXPECT_GT(receipt.scan_bytes, 0u);
  EXPECT_GT(receipt.payload_bytes, 0u);
  EXPECT_GT(receipt.scatter_micros, 0);
  EXPECT_GE(receipt.queue_micros, 0);
  EXPECT_GE(receipt.filter_micros, 0);

  // The rendered receipt rides after the trace tree.
  const std::string rendered = result.ToString();
  const size_t trace_at = rendered.find("--- trace ---");
  const size_t receipt_at = rendered.find("--- receipt ---");
  ASSERT_NE(trace_at, std::string::npos) << rendered;
  ASSERT_NE(receipt_at, std::string::npos) << rendered;
  EXPECT_GT(receipt_at, trace_at);
  EXPECT_NE(rendered.find("receipt: phases queue="), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("receipt: work docs_scanned="), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("receipt: scatter calls=2"), std::string::npos)
      << rendered;
}

TEST_F(TraceClusterTest, ReceiptAccountsPrunedDocs) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineConfig()).ok());
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg0"))
          .ok());
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg1"))
          .ok());
  // Fixture days are 100-103: disjoint predicate prunes both segments.
  auto result = cluster.Execute(
      "TRACE SELECT count(*) FROM analytics WHERE day > 500");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(result.receipt.segments_pruned, 2u);
  EXPECT_EQ(result.receipt.segments_queried, 0u);
  EXPECT_EQ(result.receipt.docs_pruned, 24u);  // 12 rows per fixture segment.
  EXPECT_EQ(result.receipt.docs_scanned, 0u);
}

TEST_F(TraceClusterTest, PerTableSeriesRollUpOnQueryFamilies) {
  PinotCluster cluster(PinotClusterOptions{});
  SetUpHybrid(&cluster);
  cluster.Execute("SELECT count(*) FROM analytics");
  const std::string dump = cluster.MetricsDump();
  // Broker families roll up under the logical table...
  EXPECT_NE(dump.find("broker_queries_total{table=\"analytics\"} 1"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("broker_query_latency_ms_count{table=\"analytics\"}"),
            std::string::npos)
      << dump;
  // ...and server families do too (the physical _OFFLINE/_REALTIME split
  // collapses onto the logical name).
  EXPECT_NE(dump.find("server_queries_total{table=\"analytics\"}"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("server_docs_scanned_total{table=\"analytics\"}"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("server_scan_bytes_total{table=\"analytics\"}"),
            std::string::npos)
      << dump;
  // The unlabeled broker-wide series keeps its old meaning alongside.
  EXPECT_NE(dump.find("broker_queries_total 1"), std::string::npos) << dump;
}

TEST_F(TraceClusterTest, SlowQueryCounterAndLogCarryTable) {
  PinotClusterOptions options;
  options.num_servers = 1;
  options.broker_options.slow_query_threshold_millis = 20.0;
  options.broker_options.slow_query_log_capacity = 4;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineConfig()).ok());
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg0"))
          .ok());
  cluster.server(0)->InjectQueryDelay(1, 60);
  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  ASSERT_FALSE(result.partial) << result.error_message;

  EXPECT_EQ(cluster.metrics()->CounterValue("broker_slow_queries_total",
                                            {{"table", "analytics"}}),
            1u);
  const std::string dump = cluster.SlowQueryLogDump();
  EXPECT_NE(dump.find("# table=analytics"), std::string::npos) << dump;
  EXPECT_NE(dump.find("# receipt: phases"), std::string::npos) << dump;
  EXPECT_NE(dump.find("# receipt: work"), std::string::npos) << dump;
}

TEST_F(TraceClusterTest, PhaseHistogramsRecorded) {
  PinotCluster cluster(PinotClusterOptions{});
  SetUpHybrid(&cluster);
  cluster.Execute("SELECT count(*) FROM analytics");
  const std::string dump = cluster.MetricsDump();
  EXPECT_NE(dump.find("broker_route_time_ms"), std::string::npos) << dump;
  EXPECT_NE(dump.find("broker_scatter_time_ms"), std::string::npos);
  EXPECT_NE(dump.find("broker_reduce_time_ms"), std::string::npos);
  EXPECT_NE(dump.find("server_query_queue_ms"), std::string::npos);
}

}  // namespace
}  // namespace pinot
