#include "realtime/mutable_segment.h"

#include <algorithm>
#include <mutex>

namespace pinot {

/// Growable column: mutable dictionary + unpacked dict-id vectors. No
/// inverted or sorted indexes (consuming segments are scanned; they are
/// small and bounded by the flush threshold).
class MutableSegment::MutableColumn : public ColumnReader {
 public:
  explicit MutableColumn(FieldSpec spec)
      : spec_(std::move(spec)),
        dictionary_(Dictionary::CreateMutable(spec_.type)) {
    stats_.is_sorted = false;
  }

  const FieldSpec& spec() const override { return spec_; }
  const Dictionary& dictionary() const override { return dictionary_; }
  const ColumnStats& stats() const override { return stats_; }

  uint32_t GetDictId(uint32_t doc) const override { return sv_ids_[doc]; }
  void GetDictIds(uint32_t doc, std::vector<uint32_t>* out) const override {
    *out = mv_ids_[doc];
  }
  void GetDictIdRange(uint32_t begin, uint32_t count,
                      uint32_t* out) const override {
    std::copy_n(sv_ids_.data() + begin, count, out);
  }
  void GetDictIdBatch(const uint32_t* docs, uint32_t count,
                      uint32_t* out) const override {
    for (uint32_t i = 0; i < count; ++i) out[i] = sv_ids_[docs[i]];
  }

  const InvertedIndex* inverted_index() const override { return nullptr; }
  const SortedIndex* sorted_index() const override { return nullptr; }

  void Append(const Value& value, const Schema& schema, int field_index) {
    const Value& effective =
        IsNull(value) ? schema.EffectiveDefault(field_index) : value;
    if (spec_.single_value) {
      const int id = dictionary_.GetOrAdd(effective);
      sv_ids_.push_back(static_cast<uint32_t>(id));
      ++stats_.total_entries;
    } else {
      std::vector<uint32_t> ids;
      if (const auto* xs = std::get_if<std::vector<int64_t>>(&effective)) {
        for (int64_t v : *xs) {
          ids.push_back(static_cast<uint32_t>(dictionary_.GetOrAdd(v)));
        }
      } else if (const auto* ds =
                     std::get_if<std::vector<double>>(&effective)) {
        for (double v : *ds) {
          ids.push_back(static_cast<uint32_t>(dictionary_.GetOrAdd(v)));
        }
      } else if (const auto* ss =
                     std::get_if<std::vector<std::string>>(&effective)) {
        for (const auto& v : *ss) {
          ids.push_back(static_cast<uint32_t>(dictionary_.GetOrAdd(v)));
        }
      }
      stats_.total_entries += static_cast<uint32_t>(ids.size());
      stats_.max_entries_per_row = std::max(
          stats_.max_entries_per_row, static_cast<uint32_t>(ids.size()));
      mv_ids_.push_back(std::move(ids));
    }
    stats_.cardinality = dictionary_.size();
    if (dictionary_.size() > 0) {
      stats_.min_value = dictionary_.MinValue();
      stats_.max_value = dictionary_.MaxValue();
    }
  }

 private:
  FieldSpec spec_;
  Dictionary dictionary_;
  ColumnStats stats_;
  std::vector<uint32_t> sv_ids_;
  std::vector<std::vector<uint32_t>> mv_ids_;
};

MutableSegment::MutableSegment(Schema schema, std::string table_name,
                               std::string segment_name, Clock* clock)
    : schema_(std::move(schema)), clock_(clock) {
  metadata_.table_name = std::move(table_name);
  metadata_.segment_name = std::move(segment_name);
  metadata_.creation_time_millis = clock_->NowMillis();
  metadata_.min_time = INT64_MAX;
  metadata_.max_time = INT64_MIN;
  columns_.reserve(schema_.num_fields());
  for (const auto& field : schema_.fields()) {
    columns_.push_back(std::make_unique<MutableColumn>(field));
  }
}

MutableSegment::~MutableSegment() = default;

namespace {

// Exact numeric view of a time value: int64 epoch values pass through
// untouched (ValueToDouble would lose precision beyond 2^53).
int64_t TimeValueToInt64(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return *i;
  return static_cast<int64_t>(ValueToDouble(v));
}

}  // namespace

Status MutableSegment::Index(const Row& row) {
  return IndexInternal(row, nullptr, std::string());
}

Status MutableSegment::IndexUpsert(const Row& row, UpsertTableState* upsert) {
  // Render (and thereby validate) the primary key before taking the writer
  // lock: a bad key must not leave a torn row or a keyless append.
  PINOT_ASSIGN_OR_RETURN(std::string key,
                         upsert->RenderKeyFromRow(schema_, row));
  return IndexInternal(row, upsert, key);
}

Status MutableSegment::IndexInternal(const Row& row, UpsertTableState* upsert,
                                     const std::string& key) {
  // Validate every field before appending to any column: a failure after
  // the first append would leave a torn row with mismatched column
  // lengths, permanently corrupting the segment.
  for (int i = 0; i < schema_.num_fields(); ++i) {
    const FieldSpec& field = schema_.field(i);
    const Value& value = row.Get(field.name);
    if (IsNull(value)) continue;
    if (field.single_value && IsMultiValue(value)) {
      return Status::InvalidArgument(
          "multi-value supplied for single-value column " + field.name);
    }
    if (!field.single_value && !IsMultiValue(value)) {
      return Status::InvalidArgument(
          "single value supplied for multi-value column " + field.name);
    }
  }

  std::unique_lock<std::shared_mutex> lock(rw_mutex_);
  for (int i = 0; i < schema_.num_fields(); ++i) {
    const FieldSpec& field = schema_.field(i);
    const Value& value = row.Get(field.name);
    columns_[i]->Append(value, schema_, i);
    if (field.role == FieldRole::kTime) {
      const Value& effective =
          IsNull(value) ? schema_.EffectiveDefault(i) : value;
      const int64_t t = TimeValueToInt64(effective);
      metadata_.min_time = std::min(metadata_.min_time, t);
      metadata_.max_time = std::max(metadata_.max_time, t);
    }
  }
  rows_.push_back(row);
  const uint32_t doc = metadata_.num_docs;
  metadata_.num_docs = metadata_.num_docs + 1;
  // Publish the new row count last so lock-free num_docs() readers never
  // see a count covering unwritten data.
  num_docs_.store(metadata_.num_docs, std::memory_order_release);
  if (upsert != nullptr) {
    // Still under the writer lock: the key map flips to the new row and the
    // old row's validity bit drops atomically w.r.t. queries, which hold
    // reader locks on every consuming segment they touch.
    upsert->CommitUpsert(key, metadata_.segment_name, doc);
  }
  return Status::OK();
}

const ColumnReader* MutableSegment::GetColumn(const std::string& name) const {
  const int index = schema_.IndexOf(name);
  return index < 0 ? nullptr : columns_[index].get();
}

Result<std::shared_ptr<ImmutableSegment>> MutableSegment::Seal(
    const SegmentBuildConfig& config) const {
  std::shared_lock<std::shared_mutex> lock(rw_mutex_);
  SegmentBuildConfig effective = config;
  if (effective.table_name.empty()) {
    effective.table_name = metadata_.table_name;
  }
  if (effective.segment_name.empty()) {
    effective.segment_name = metadata_.segment_name;
  }
  SegmentBuilder builder(schema_, std::move(effective), clock_);
  for (const auto& row : rows_) {
    PINOT_RETURN_NOT_OK(builder.AddRow(row));
  }
  return builder.Build();
}

}  // namespace pinot
