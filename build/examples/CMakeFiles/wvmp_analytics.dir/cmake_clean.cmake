file(REMOVE_RECURSE
  "CMakeFiles/wvmp_analytics.dir/wvmp_analytics.cpp.o"
  "CMakeFiles/wvmp_analytics.dir/wvmp_analytics.cpp.o.d"
  "wvmp_analytics"
  "wvmp_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvmp_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
