#ifndef PINOT_COMMON_CLOCK_H_
#define PINOT_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace pinot {

/// Abstract time source. All Pinot components take time through this
/// interface so that protocol behaviour (segment completion timeouts,
/// retention, token bucket refill) is deterministic under test.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Milliseconds since an arbitrary epoch (Unix epoch for the real clock).
  virtual int64_t NowMillis() const = 0;
};

/// Wall-clock backed by std::chrono::system_clock.
class RealClock : public Clock {
 public:
  int64_t NowMillis() const override;

  /// A process-wide shared instance.
  static RealClock* Instance();
};

/// Manually-advanced clock for deterministic tests and simulations.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(int64_t start_millis = 0) : now_(start_millis) {}

  int64_t NowMillis() const override {
    return now_.load(std::memory_order_acquire);
  }

  /// Moves time forward by `delta_millis` (must be non-negative).
  void AdvanceMillis(int64_t delta_millis) {
    now_.fetch_add(delta_millis, std::memory_order_acq_rel);
  }

  void SetMillis(int64_t now_millis) {
    now_.store(now_millis, std::memory_order_release);
  }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace pinot

#endif  // PINOT_COMMON_CLOCK_H_
