#ifndef PINOT_TRACE_SLOW_QUERY_LOG_H_
#define PINOT_TRACE_SLOW_QUERY_LOG_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace pinot {

/// Keeps the N worst (highest-latency) query traces whose latency crossed a
/// configurable threshold, for post-hoc attribution of tail latency: the
/// aggregate histograms say p99 moved, the slow-query log says which query,
/// which segment, and which phase. Thread-safe; traces are rendered to text
/// at record time so retained entries cost no live references.
class SlowQueryLog {
 public:
  struct Options {
    // Queries at least this slow are candidates for retention. 0 retains
    // every query (useful in benches that want the worst traces regardless).
    double threshold_millis = 100.0;
    // How many worst entries to keep.
    size_t capacity = 8;
  };

  struct Entry {
    double latency_millis = 0;
    std::string table;        // Logical table the query hit (may be empty).
    std::string description;  // Typically the PQL text.
    std::string rendered_trace;
    std::string rendered_receipt;  // QueryReceipt::ToString(), if provided.
  };

  SlowQueryLog() : SlowQueryLog(Options{}) {}
  explicit SlowQueryLog(Options options) : options_(options) {}

  /// Considers one finished query. Renders and retains the span tree if the
  /// latency is over the threshold and among the worst `capacity` seen.
  /// `rendered_receipt` is the query's resource receipt, pre-rendered so this
  /// layer stays independent of the query result types. Returns true when
  /// the query crossed the slow threshold (whether or not it was retained).
  bool Record(double latency_millis, const std::string& table,
              const std::string& description, const TraceSpan& root,
              const std::string& rendered_receipt = "");

  /// Back-compat shim for callers that have no table or receipt context.
  bool Record(double latency_millis, const std::string& description,
              const TraceSpan& root) {
    return Record(latency_millis, "", description, root, "");
  }

  /// Worst-first entries, at most `top_n` (0 = all retained).
  std::vector<Entry> Worst(size_t top_n = 0) const;

  /// Human-readable dump of the worst `top_n` entries, one block per query.
  std::string Dump(size_t top_n = 0) const;

  size_t size() const;
  void Clear();

 private:
  const Options options_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  // Sorted worst-first, size <= capacity.
};

}  // namespace pinot

#endif  // PINOT_TRACE_SLOW_QUERY_LOG_H_
