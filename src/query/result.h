#ifndef PINOT_QUERY_RESULT_H_
#define PINOT_QUERY_RESULT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/value.h"
#include "query/agg.h"
#include "query/query.h"
#include "trace/trace.h"

namespace pinot {

/// Counters accumulated during execution; used for Figure 13 (preaggregated
/// records scanned vs raw records) and for the automated index advisor
/// (section 5.2 parses execution statistics to add inverted indexes).
struct ExecutionStats {
  uint64_t docs_scanned = 0;         // Raw documents visited post-filter.
  uint64_t docs_matched = 0;         // Documents matching the filter.
  uint64_t segments_queried = 0;
  uint64_t segments_pruned = 0;      // Skipped via metadata/partition.
  uint64_t star_tree_records_scanned = 0;
  bool used_star_tree = false;
  bool answered_from_metadata = false;

  void Merge(const ExecutionStats& other) {
    docs_scanned += other.docs_scanned;
    docs_matched += other.docs_matched;
    segments_queried += other.segments_queried;
    segments_pruned += other.segments_pruned;
    star_tree_records_scanned += other.star_tree_records_scanned;
    used_star_tree = used_star_tree || other.used_star_tree;
    answered_from_metadata =
        answered_from_metadata || other.answered_from_metadata;
  }
};

/// Unfinalized result of executing a query over one or more segments.
/// Mergeable across segments (server-side combine, paper section 3.3.3 step
/// 6) and across servers (broker-side merge, step 7).
struct PartialResult {
  // Aggregation without group-by: one state per aggregation spec.
  std::vector<AggState> aggregates;

  // Group-by: encoded group key -> (key values, one state per spec).
  struct GroupEntry {
    std::vector<Value> keys;
    std::vector<AggState> states;
  };
  std::unordered_map<std::string, GroupEntry> groups;

  // Selection rows (unfinalized; trimmed to limit during reduce).
  std::vector<std::vector<Value>> selection_rows;

  ExecutionStats stats;
  int64_t total_docs = 0;  // Total documents in the queried segments.

  // Execution errors; a non-OK status marks the merged result partial.
  Status status;

  // Trace spans produced while computing this partial (per-request server
  // spans with per-segment children). Only populated when the query carries
  // trace/explain; Merge concatenates so spans survive the server-side
  // combine and ride back to the broker.
  std::vector<TraceSpan> spans;

  void Merge(PartialResult&& other);
};

/// Encodes group-key values into a hashable string key (values from
/// different segments hash identically, unlike dictionary ids). Each value
/// is length-prefixed: string values can contain any byte, so a separator
/// scheme cannot distinguish ("a\x1f", "b") from ("a", "\x1fb").
std::string EncodeGroupKey(const std::vector<Value>& keys);

/// One scatter call from the broker to one server, as observed by the
/// broker: which segments it covered, which retry wave it belonged to, how
/// long it took, and how it ended. Partial results carry these so clients
/// can see *why* data is missing (paper section 3.3.3 step 7).
struct ScatterTraceEvent {
  std::string physical_table;
  std::string server;
  std::vector<std::string> segments;
  int attempt = 0;            // 0 = first scatter wave, >0 = retry waves.
  double latency_millis = 0;  // Submit-to-gather time (0 if never sent).
  // "ok", "unreachable", "timeout", "failed: <status>", "error: <status>",
  // "discarded (hedge lost)", "abandoned (hedge won)".
  std::string outcome;
  // True for speculative hedge calls fired while the primary call was still
  // outstanding past the latency budget.
  bool hedge = false;
  // True on the call whose response was merged when it beat the other side
  // of a hedge race (set on the hedge when it wins, never on primaries).
  bool hedge_won = false;
  // Why each segment landed on this server, parallel to `segments`:
  // "routing-table" on the first wave; on retry waves,
  // "failover(<prior outcome>, candidates=<n>)" where n counts the live
  // untried replicas the picker chose among.
  std::vector<std::string> pick_reasons;
};

/// Per-query execution trace accumulated broker-side across all physical
/// tables and scatter attempts.
struct QueryTrace {
  std::vector<ScatterTraceEvent> events;
  int retries = 0;    // Segments re-scattered to another replica.
  int timeouts = 0;   // Calls abandoned at an attempt deadline.
  int hedges = 0;     // Speculative hedge calls fired.
  int hedge_wins = 0; // Hedge calls whose response was the one merged.

  /// Human-readable rendering, one line per scatter event.
  std::string ToString() const;
};

/// Final client-facing query response (paper section 3.3.3 step 8; errors
/// or timeouts mark the result as partial instead of failing it).
struct QueryResult {
  bool partial = false;
  std::string error_message;

  // Broker load shedding: the query was rejected at admission because the
  // broker was past its in-flight watermark. No server did any work; the
  // client should back off ~retry_after_millis before resubmitting
  // (a Retry-After header in a real HTTP broker).
  bool throttled = false;
  double retry_after_millis = 0;

  // Aggregation mode.
  std::vector<std::string> aggregation_names;
  std::vector<Value> aggregates;

  // Group-by mode: rows sorted descending by the first aggregation, top-n.
  struct GroupRow {
    std::vector<Value> keys;
    std::vector<Value> values;
  };
  std::vector<std::string> group_by_columns;
  std::vector<GroupRow> group_rows;

  // Selection mode.
  std::vector<std::string> selection_columns;
  std::vector<std::vector<Value>> selection_rows;

  ExecutionStats stats;
  QueryTrace trace;
  // Full hierarchical execution trace (root = broker span). Populated for
  // TRACE/EXPLAIN queries; ToString() renders it after the result rows.
  std::optional<TraceSpan> span;
  // True for EXPLAIN results: planning ran but no data was read.
  bool explain_only = false;
  int64_t total_docs = 0;
  double latency_millis = 0;

  /// Human-readable rendering for examples and debugging.
  std::string ToString() const;
};

/// Broker-side reduce: finalizes a merged PartialResult into the client
/// response (computes avg/distinct-count, sorts group rows, applies TOP n /
/// LIMIT and selection ordering).
QueryResult ReduceToFinalResult(const Query& query, PartialResult&& partial);

}  // namespace pinot

#endif  // PINOT_QUERY_RESULT_H_
