#ifndef PINOT_QUERY_SEGMENT_EXECUTOR_H_
#define PINOT_QUERY_SEGMENT_EXECUTOR_H_

#include "common/status.h"
#include "query/query.h"
#include "query/result.h"
#include "segment/segment.h"

namespace pinot {

/// Executes `query` against one segment and merges the outcome into `out`.
///
/// Per-segment physical planning (paper section 3.3.4): the executor picks,
/// in order of preference,
///   1. a metadata-only plan (COUNT(*)/MIN/MAX with no filter),
///   2. a star-tree plan when the segment has a star-tree covering the
///      query's filter/group-by dimensions and aggregation metrics
///      (section 4.3), or
///   3. the raw plan: filter evaluation (sorted-range / inverted / scan
///      operators chosen per column) followed by aggregation, group-by, or
///      selection over the matching documents.
Status ExecuteQueryOnSegment(const SegmentInterface& segment,
                             const Query& query, PartialResult* out);

/// True when the segment's star-tree can answer the query (exposed for
/// tests and the Figure 13 bench).
bool CanUseStarTree(const SegmentInterface& segment, const Query& query);

}  // namespace pinot

#endif  // PINOT_QUERY_SEGMENT_EXECUTOR_H_
