#ifndef PINOT_ROUTING_ROUTING_H_
#define PINOT_ROUTING_ROUTING_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "cluster/cluster_manager.h"
#include "routing/server_stats.h"

namespace pinot {

/// One precomputed routing table: the servers a query is scattered to and
/// the subset of segments each server processes. The union of all segment
/// lists covers the table exactly once (paper section 4.4).
struct RoutingTable {
  std::map<std::string, std::vector<std::string>> server_segments;

  int num_servers() const { return static_cast<int>(server_segments.size()); }
  size_t total_segments() const {
    size_t n = 0;
    for (const auto& [server, segments] : server_segments) {
      n += segments.size();
    }
    return n;
  }
};

/// Extracts, from a table's external view, the queryable (segment ->
/// servers) map: replicas in ONLINE or CONSUMING state.
std::map<std::string, std::vector<std::string>> QueryableReplicas(
    const TableView& external_view);

/// Picks one replica uniformly at random among `servers`, skipping entries
/// in `exclude` and entries rejected by `usable` (when set). Returns the
/// empty string when no replica qualifies. Brokers use this to fail a
/// segment over to a replica that has not already failed the query.
std::string PickReplica(const std::vector<std::string>& servers,
                        const std::set<std::string>& exclude,
                        const std::function<bool(const std::string&)>& usable,
                        Random* rng);

/// Adaptive replica pick ("power of two choices"): among the qualifying
/// replicas, samples two distinct candidates and returns the one with the
/// lower ServerStats score (latency EWMA × in-flight pressure). With
/// probability `explore_probability` the pick is uniform random instead, so
/// cold or recovered servers keep receiving probe traffic and their EWMA can
/// converge back down. Falls back to uniform random when `stats` is null.
/// Returns the empty string when no replica qualifies.
std::string PickReplicaAdaptive(
    const std::vector<std::string>& servers,
    const std::set<std::string>& exclude,
    const std::function<bool(const std::string&)>& usable,
    const ServerStatsRegistry* stats, double explore_probability, Random* rng);

/// Default *balanced* strategy: every server hosting any segment is used,
/// and each segment is assigned to one of its replicas such that load is
/// spread evenly (section 4.4: "simply divides all the segments contained
/// in a table in an equal fashion across all available servers").
RoutingTable BuildBalancedRoutingTable(
    const std::map<std::string, std::vector<std::string>>& segment_servers,
    Random* rng);

/// Strict replica-group strategy for upsert tables: every segment of one
/// stream partition must be answered by the SAME server instance, because
/// only a server's own upsert key map guarantees exactly one live row per
/// key across that partition's segment lineage. Segments are grouped by
/// `segment_partitions` (partition -1 forms its own per-segment group) and
/// each group is routed to one server drawn from the intersection of the
/// group's replica sets (falling back to per-segment picks when the
/// intersection is empty, e.g. mid-rebalance).
RoutingTable BuildUpsertRoutingTable(
    const std::map<std::string, std::vector<std::string>>& segment_servers,
    const std::map<std::string, int32_t>& segment_partitions, Random* rng);

/// Options for the large-cluster random-greedy strategy (Algorithms 1-2).
struct GeneratedRoutingOptions {
  int target_server_count = 4;     // T in Algorithm 1.
  int tables_to_generate = 100;    // G in Algorithm 2.
  int tables_to_keep = 10;         // C in Algorithm 2.
};

/// Algorithm 1: builds one routing table over an approximately minimal
/// server subset — picks T random instances, adds servers until every
/// segment is covered, then assigns each segment (in ascending order of
/// candidate count) to a weighted-random replica that balances load.
RoutingTable GenerateRoutingTable(
    const std::map<std::string, std::vector<std::string>>& segment_servers,
    int target_server_count, Random* rng);

/// Fitness metric used to select routing tables: the variance of the number
/// of segments assigned per server ("empirical testing has shown that the
/// variance of the number of segments assigned per server works well").
double RoutingTableMetric(const RoutingTable& table);

/// Algorithm 2: generates `tables_to_generate` candidates and keeps the
/// `tables_to_keep` with the lowest metric.
std::vector<RoutingTable> GenerateRoutingTables(
    const std::map<std::string, std::vector<std::string>>& segment_servers,
    const GeneratedRoutingOptions& options, Random* rng);

}  // namespace pinot

#endif  // PINOT_ROUTING_ROUTING_H_
