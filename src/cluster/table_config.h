#ifndef PINOT_CLUSTER_TABLE_CONFIG_H_
#define PINOT_CLUSTER_TABLE_CONFIG_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "data/schema.h"
#include "startree/star_tree.h"

namespace pinot {

/// Offline tables hold pushed (Hadoop-generated) segments; realtime tables
/// consume from a stream. A *hybrid* table is an offline and a realtime
/// table sharing a logical name (paper section 3.3.3, Figure 6).
enum class TableType { kOffline, kRealtime };

const char* TableTypeToString(TableType type);

/// Broker routing strategy for the table (paper section 4.4).
enum class RoutingStrategy {
  kBalanced,        // All servers contacted, segments split evenly.
  kGenerated,       // Algorithms 1-2: precomputed minimal-subset tables.
  kPartitionAware,  // Route only to servers holding relevant partitions.
};

const char* RoutingStrategyToString(RoutingStrategy strategy);

/// Stream-ingestion settings for realtime tables (paper section 3.3.6:
/// "Pinot supports flushing segments after a configurable number of records
/// and after a configurable amount of time").
struct RealtimeIngestionConfig {
  std::string topic;
  int num_partitions = 1;
  int64_t flush_threshold_rows = 100000;
  int64_t flush_threshold_millis = 6LL * 3600 * 1000;
};

/// Per-table configuration. At LinkedIn these are kept in source control
/// and synced through the controller REST API (paper section 5.2); here
/// they serialize into the property store.
struct TableConfig {
  std::string name;  // Logical table name (no type suffix).
  TableType type = TableType::kOffline;
  Schema schema;
  int num_replicas = 1;
  std::string server_tenant = "DefaultTenant";

  // Segment-generation options.
  std::vector<std::string> sort_columns;
  std::vector<std::string> inverted_index_columns;
  StarTreeConfig star_tree;

  // Retention in time-column units; segments whose max_time falls behind
  // (now - retention) are garbage-collected by the controller. -1 keeps
  // data forever. `time_unit_millis` converts wall-clock time to the time
  // column's unit (default: days).
  int64_t retention_time_units = -1;
  int64_t time_unit_millis = 86400000;

  // Storage quota enforced on upload (paper section 3.3.5); -1 unlimited.
  int64_t quota_bytes = -1;

  RoutingStrategy routing = RoutingStrategy::kBalanced;
  // kGenerated: target server count per query (T in Algorithm 1) and the
  // generate/keep counts (G and C in Algorithm 2).
  int target_servers_per_query = 4;
  int routing_tables_to_generate = 100;
  int routing_tables_to_keep = 10;

  // kPartitionAware: the partition column + count (Kafka-compatible
  // murmur2 partition function).
  std::string partition_column;
  int num_partitions = 0;

  RealtimeIngestionConfig realtime;

  // Upsert (realtime only): the latest row per primary key wins; superseded
  // rows are invalidated at ingest and dropped by the Minion compaction
  // task. Key columns must be single-value and present in the schema.
  bool upsert_enabled = false;
  std::vector<std::string> upsert_key_columns;

  /// The physical table name, e.g. "impressions_OFFLINE".
  std::string PhysicalName() const;

  void Serialize(ByteWriter* writer) const;
  static Result<TableConfig> Deserialize(ByteReader* reader);
};

/// Inverse of TableConfig::PhysicalName(): strips a trailing "_OFFLINE" /
/// "_REALTIME" type suffix; names without one pass through unchanged. Used
/// to aggregate per-physical-table metrics up to the logical table.
std::string LogicalTableName(const std::string& physical_table);

}  // namespace pinot

#endif  // PINOT_CLUSTER_TABLE_CONFIG_H_
