#!/usr/bin/env bash
# Perf comparator over the --json=BENCH_<name>.json dumps the figure
# benches emit (one point object per line inside the "points" array).
#
# Usage:
#   scripts/check_perf.sh CURRENT.json
#     Schema-check the dump and print a config/qps/p99 table. Used as the
#     perf-smoke stage of scripts/check.sh (no baseline committed yet).
#   scripts/check_perf.sh BASELINE.json CURRENT.json
#     Additionally compare p99 per (config, offered_qps) pair present in
#     both files; fail when CURRENT p99 exceeds
#     max(BASELINE p99 * CHECK_PERF_RATIO, BASELINE p99 + CHECK_PERF_SLACK_MS).
#
# Thresholds are deliberately loose (2x / +5ms by default) — this is a
# guard against order-of-magnitude regressions, not a microbenchmark gate.
set -euo pipefail

RATIO="${CHECK_PERF_RATIO:-2.0}"
SLACK_MS="${CHECK_PERF_SLACK_MS:-5.0}"

usage() { echo "usage: $0 [BASELINE.json] CURRENT.json" >&2; exit 2; }
case $# in
  1) BASELINE=""; CURRENT="$1" ;;
  2) BASELINE="$1"; CURRENT="$2" ;;
  *) usage ;;
esac

fail() { echo "check_perf: $*" >&2; exit 1; }

[[ -r "${CURRENT}" ]] || fail "cannot read ${CURRENT}"
[[ -z "${BASELINE}" || -r "${BASELINE}" ]] || fail "cannot read ${BASELINE}"

# Emits `config offered_qps p99_ms` rows from a bench JSON dump, failing
# loudly when the file does not match the expected line-oriented grammar.
extract() {  # extract <file>
  local file="$1"
  head -n 1 "${file}" | grep -qE '^\{"bench":"[a-zA-Z0-9_-]+","points":\[$' \
    || fail "${file}: bad header line (expected {\"bench\":...,\"points\":[)"
  grep -qxF ']}' "${file}" || fail "${file}: missing closing ]}"
  awk -v file="${file}" '
    /^\{"config":/ {
      if (match($0, /"config":"[^"]*"/) == 0) {
        printf "check_perf: %s: point without config: %s\n", file, $0 > "/dev/stderr"
        exit 1
      }
      config = substr($0, RSTART + 10, RLENGTH - 11)
      if (match($0, /"offered_qps":[0-9.]+/) == 0 ||
          !split(substr($0, RSTART, RLENGTH), o, ":")) {
        printf "check_perf: %s: point without offered_qps: %s\n", file, $0 > "/dev/stderr"
        exit 1
      }
      qps = o[2]
      if (match($0, /"p99_ms":[0-9.]+/) == 0 ||
          !split(substr($0, RSTART, RLENGTH), p, ":")) {
        printf "check_perf: %s: point without p99_ms: %s\n", file, $0 > "/dev/stderr"
        exit 1
      }
      printf "%s %s %s\n", config, qps, p[2]
    }' "${file}"
}

CURRENT_ROWS="$(extract "${CURRENT}")"
[[ -n "${CURRENT_ROWS}" ]] || fail "${CURRENT}: no bench points found"

printf 'check_perf: %s\n' "${CURRENT}"
printf '  %-28s %12s %10s\n' config offered_qps p99_ms
while read -r config qps p99; do
  printf '  %-28s %12s %10s\n' "${config}" "${qps}" "${p99}"
done <<< "${CURRENT_ROWS}"

if [[ -z "${BASELINE}" ]]; then
  echo "check_perf: schema OK (no baseline given, comparison skipped)"
  exit 0
fi

BASELINE_ROWS="$(extract "${BASELINE}")"
REGRESSIONS="$(
  awk -v ratio="${RATIO}" -v slack="${SLACK_MS}" '
    NR == FNR { base[$1 " " $2] = $3; next }
    ($1 " " $2) in base {
      allowed = base[$1 " " $2] * ratio
      if (base[$1 " " $2] + slack > allowed) allowed = base[$1 " " $2] + slack
      compared++
      if ($3 > allowed) {
        printf "  %s @ %s qps: p99 %.3fms > allowed %.3fms (baseline %.3fms)\n",
               $1, $2, $3, allowed, base[$1 " " $2]
      }
    }
    END { if (compared == 0) print "  (no overlapping points)" }
  ' <(echo "${BASELINE_ROWS}") <(echo "${CURRENT_ROWS}")
)"

if [[ -n "${REGRESSIONS}" ]]; then
  if [[ "${REGRESSIONS}" == "  (no overlapping points)" ]]; then
    fail "baseline and current share no (config, qps) points"
  fi
  echo "check_perf: p99 regressions against ${BASELINE}:" >&2
  echo "${REGRESSIONS}" >&2
  exit 1
fi
echo "check_perf: no p99 regressions against ${BASELINE}" \
     "(ratio ${RATIO}, slack ${SLACK_MS}ms)"
