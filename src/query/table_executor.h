#ifndef PINOT_QUERY_TABLE_EXECUTOR_H_
#define PINOT_QUERY_TABLE_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "query/query.h"
#include "query/result.h"
#include "query/segment_executor.h"
#include "segment/segment.h"
#include "trace/trace.h"

namespace pinot {

/// Executes `query` over a set of segments, combining the per-segment
/// partial results (the server-side combine of paper section 3.3.3 step 6;
/// "query plans are processed in parallel" when `pool` is non-null).
///
/// Segments whose metadata proves they cannot match the filter (predicate
/// value ranges disjoint from the column's min/max) are pruned without
/// execution; per-segment errors mark the merged result's status, which the
/// broker surfaces as a partial result rather than a failure.
///
/// When `parent` is non-null, one `segment:<name>` child span is attached
/// per segment, labelled with the chosen plan (metadata / star-tree / raw /
/// pruned) and annotated with docs scanned/matched; in the parallel path
/// each task builds its span locally and the single-threaded merge step
/// attaches them, so no locking is needed. A query with `explain` set runs
/// per-segment planning only — plan spans are produced but no data is read
/// and no rows are returned.
/// When `pool` is non-null the per-segment partials are also *merged*
/// tree-wise across the pool (pairwise rounds, log2(segments) deep) instead
/// of one sequential fold — at million-group cardinalities the combine is
/// as expensive as the scans, and the pairwise topology is deterministic so
/// results are reproducible run to run.
PartialResult ExecuteQueryOnSegments(
    const std::vector<std::shared_ptr<SegmentInterface>>& segments,
    const Query& query, ThreadPool* pool = nullptr,
    TraceSpan* parent = nullptr);

/// As above with explicit per-segment scan options (the default overload
/// uses ScanOptions{}).
PartialResult ExecuteQueryOnSegments(
    const std::vector<std::shared_ptr<SegmentInterface>>& segments,
    const Query& query, const ScanOptions& options, ThreadPool* pool = nullptr,
    TraceSpan* parent = nullptr);

/// Server-side ORDER-BY/LIMIT trim (production Pinot's scatter-payload
/// bound): keeps the `keep` groups that rank highest in the broker's final
/// order (first aggregation descending, encoded key as tie-break) and drops
/// the rest. Returns the number of groups dropped. `keep` should over-fetch
/// the query's TOP n (e.g. max(top_n * 5, 5000)) so per-server local ranks
/// almost surely cover the global top-N; no-op for non-group-by queries.
size_t TrimGroupPartial(const Query& query, size_t keep,
                        PartialResult* partial);

/// True when segment metadata alone proves the filter matches nothing in
/// this segment (exposed for tests).
bool CanPruneSegment(const SegmentInterface& segment, const Query& query);

}  // namespace pinot

#endif  // PINOT_QUERY_TABLE_EXECUTOR_H_
