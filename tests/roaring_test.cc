#include "bitmap/roaring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"

namespace pinot {
namespace {

TEST(RoaringBitmapTest, EmptyBitmap) {
  RoaringBitmap bm;
  EXPECT_TRUE(bm.Empty());
  EXPECT_EQ(bm.Cardinality(), 0u);
  EXPECT_FALSE(bm.Contains(0));
  EXPECT_TRUE(bm.ToVector().empty());
}

TEST(RoaringBitmapTest, AddAndContains) {
  RoaringBitmap bm;
  bm.Add(5);
  bm.Add(100000);
  bm.Add(5);  // Duplicate.
  EXPECT_EQ(bm.Cardinality(), 2u);
  EXPECT_TRUE(bm.Contains(5));
  EXPECT_TRUE(bm.Contains(100000));
  EXPECT_FALSE(bm.Contains(6));
  EXPECT_EQ(bm.Minimum(), 5u);
  EXPECT_EQ(bm.Maximum(), 100000u);
}

TEST(RoaringBitmapTest, FromValuesDeduplicatesAndSorts) {
  RoaringBitmap bm = RoaringBitmap::FromValues({9, 3, 3, 7, 9, 1});
  EXPECT_EQ(bm.Cardinality(), 4u);
  EXPECT_EQ(bm.ToVector(), (std::vector<uint32_t>{1, 3, 7, 9}));
}

TEST(RoaringBitmapTest, FromRange) {
  RoaringBitmap bm = RoaringBitmap::FromRange(10, 20);
  EXPECT_EQ(bm.Cardinality(), 10u);
  EXPECT_TRUE(bm.Contains(10));
  EXPECT_TRUE(bm.Contains(19));
  EXPECT_FALSE(bm.Contains(20));
  EXPECT_FALSE(bm.Contains(9));
}

TEST(RoaringBitmapTest, EmptyRange) {
  EXPECT_TRUE(RoaringBitmap::FromRange(10, 10).Empty());
  EXPECT_TRUE(RoaringBitmap::FromRange(10, 5).Empty());
}

TEST(RoaringBitmapTest, RangeAcrossContainerBoundary) {
  RoaringBitmap bm = RoaringBitmap::FromRange(65530, 65546);
  EXPECT_EQ(bm.Cardinality(), 16u);
  for (uint32_t v = 65530; v < 65546; ++v) EXPECT_TRUE(bm.Contains(v));
  EXPECT_FALSE(bm.Contains(65529));
  EXPECT_FALSE(bm.Contains(65546));
}

TEST(RoaringBitmapTest, PromotionToBitsetContainer) {
  // More than 4096 values in one chunk promotes the container.
  std::vector<uint32_t> values;
  for (uint32_t v = 0; v < 5000; ++v) values.push_back(v * 2);
  RoaringBitmap bm = RoaringBitmap::FromValues(values);
  EXPECT_EQ(bm.Cardinality(), 5000u);
  auto stats = bm.GetContainerStats();
  EXPECT_GE(stats.bitset_containers, 1);
  for (uint32_t v = 0; v < 5000; ++v) {
    EXPECT_TRUE(bm.Contains(v * 2));
    EXPECT_FALSE(bm.Contains(v * 2 + 1));
  }
}

TEST(RoaringBitmapTest, IncrementalAddPromotion) {
  RoaringBitmap bm;
  for (uint32_t v = 0; v < 5000; ++v) bm.Add(v * 3);
  EXPECT_EQ(bm.Cardinality(), 5000u);
  EXPECT_TRUE(bm.Contains(3 * 4999));
  EXPECT_FALSE(bm.Contains(1));
}

TEST(RoaringBitmapTest, AndBasic) {
  RoaringBitmap a = RoaringBitmap::FromValues({1, 2, 3, 100000});
  RoaringBitmap b = RoaringBitmap::FromValues({2, 3, 4, 100000, 200000});
  RoaringBitmap c = a.And(b);
  EXPECT_EQ(c.ToVector(), (std::vector<uint32_t>{2, 3, 100000}));
}

TEST(RoaringBitmapTest, OrBasic) {
  RoaringBitmap a = RoaringBitmap::FromValues({1, 3});
  RoaringBitmap b = RoaringBitmap::FromValues({2, 100000});
  RoaringBitmap c = a.Or(b);
  EXPECT_EQ(c.ToVector(), (std::vector<uint32_t>{1, 2, 3, 100000}));
}

TEST(RoaringBitmapTest, AndNotBasic) {
  RoaringBitmap a = RoaringBitmap::FromValues({1, 2, 3, 4});
  RoaringBitmap b = RoaringBitmap::FromValues({2, 4, 5});
  EXPECT_EQ(a.AndNot(b).ToVector(), (std::vector<uint32_t>{1, 3}));
}

TEST(RoaringBitmapTest, NotWithinUniverse) {
  RoaringBitmap a = RoaringBitmap::FromValues({0, 2, 4});
  EXPECT_EQ(a.Not(6).ToVector(), (std::vector<uint32_t>{1, 3, 5}));
}

TEST(RoaringBitmapTest, CopySemanticsAreDeep) {
  RoaringBitmap a = RoaringBitmap::FromRange(0, 100000);  // Dense containers.
  RoaringBitmap b = a;
  b.Add(200000);
  EXPECT_EQ(a.Cardinality(), 100000u);
  EXPECT_EQ(b.Cardinality(), 100001u);
  EXPECT_FALSE(a.Contains(200000));
}

TEST(RoaringBitmapTest, RunOptimizeKeepsContents) {
  // Built from values so the dense chunks start as bitset containers.
  std::vector<uint32_t> values;
  for (uint32_t v = 100; v < 70000; ++v) values.push_back(v);
  RoaringBitmap bm = RoaringBitmap::FromValues(values);
  RoaringBitmap copy = bm;
  bm.RunOptimize();
  EXPECT_TRUE(bm == copy);
  auto stats = bm.GetContainerStats();
  EXPECT_GE(stats.run_containers, 1);
  // Run-encoded storage should be much smaller than the bitset encoding.
  EXPECT_LT(bm.SizeInBytes(), copy.SizeInBytes());
}

TEST(RoaringBitmapTest, AddAfterRunOptimize) {
  RoaringBitmap bm = RoaringBitmap::FromRange(0, 1000);
  bm.RunOptimize();
  bm.Add(5000);
  EXPECT_EQ(bm.Cardinality(), 1001u);
  EXPECT_TRUE(bm.Contains(500));
  EXPECT_TRUE(bm.Contains(5000));
}

TEST(RoaringBitmapTest, ForEachRangeCoalescesAcrossContainers) {
  RoaringBitmap bm = RoaringBitmap::FromRange(65000, 66000);
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  bm.ForEachRange([&](uint32_t b, uint32_t e) { ranges.emplace_back(b, e); });
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<uint32_t, uint32_t>{65000, 66000}));
}

TEST(RoaringBitmapTest, ForEachRangeDisjoint) {
  RoaringBitmap bm = RoaringBitmap::FromValues({1, 2, 3, 10, 11, 50});
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  bm.ForEachRange([&](uint32_t b, uint32_t e) { ranges.emplace_back(b, e); });
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (std::pair<uint32_t, uint32_t>{1, 4}));
  EXPECT_EQ(ranges[1], (std::pair<uint32_t, uint32_t>{10, 12}));
  EXPECT_EQ(ranges[2], (std::pair<uint32_t, uint32_t>{50, 51}));
}

TEST(RoaringBitmapTest, SerializeRoundTrip) {
  RoaringBitmap bm = RoaringBitmap::FromValues({1, 5, 100000, 4000000});
  bm.AddRange(70000, 80000);
  bm.RunOptimize();
  ByteWriter writer;
  bm.Serialize(&writer);
  ByteReader reader(writer.buffer());
  auto restored = RoaringBitmap::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == bm);
}

TEST(RoaringBitmapTest, DeserializeRejectsGarbage) {
  ByteWriter writer;
  writer.WriteU32(1);
  writer.WriteU32(0);
  writer.WriteU8(7);  // Invalid container kind.
  ByteReader reader(writer.buffer());
  auto restored = RoaringBitmap::Deserialize(&reader);
  EXPECT_FALSE(restored.ok());
}

TEST(RoaringBitmapTest, OrWithMatchesOr) {
  Random rng(99);
  RoaringBitmap acc;
  std::set<uint32_t> ref;
  // Mix sparse arrays, dense bitsets, and runs into one accumulator.
  for (int round = 0; round < 20; ++round) {
    RoaringBitmap next;
    if (round % 3 == 0) {
      const uint32_t begin = static_cast<uint32_t>(rng.NextUint64(150000));
      const uint32_t len = static_cast<uint32_t>(rng.NextUint64(20000)) + 1;
      next.AddRange(begin, begin + len);
      for (uint32_t v = begin; v < begin + len; ++v) ref.insert(v);
    } else {
      const int n = round % 3 == 1 ? 50 : 8000;
      for (int i = 0; i < n; ++i) {
        const uint32_t v = static_cast<uint32_t>(rng.NextUint64(200000));
        next.Add(v);
        ref.insert(v);
      }
    }
    if (round % 4 == 0) next.RunOptimize();
    acc.OrWith(next);
    ASSERT_EQ(acc.Cardinality(), ref.size()) << "round " << round;
  }
  EXPECT_EQ(acc.ToVector(),
            std::vector<uint32_t>(ref.begin(), ref.end()));
  // Self-union is a no-op.
  const uint64_t before = acc.Cardinality();
  acc.OrWith(acc);
  EXPECT_EQ(acc.Cardinality(), before);
}

TEST(RoaringBitmapTest, AndWithMatchesAnd) {
  Random rng(77);
  for (int round = 0; round < 8; ++round) {
    RoaringBitmap a, b;
    std::set<uint32_t> ref_a, ref_b;
    const int na = 1 << (2 * round % 14);
    for (int i = 0; i < na; ++i) {
      const uint32_t v = static_cast<uint32_t>(rng.NextUint64(100000));
      a.Add(v);
      ref_a.insert(v);
    }
    b.AddRange(1000, 60000);
    for (uint32_t v = 1000; v < 60000; ++v) ref_b.insert(v);
    if (round % 2 == 0) b.RunOptimize();
    std::vector<uint32_t> expected;
    std::set_intersection(ref_a.begin(), ref_a.end(), ref_b.begin(),
                          ref_b.end(), std::back_inserter(expected));
    RoaringBitmap in_place = a;
    in_place.AndWith(b);
    EXPECT_EQ(in_place.ToVector(), expected) << "round " << round;
    EXPECT_EQ(in_place.ToVector(), a.And(b).ToVector());
  }
  // Intersecting with an empty bitmap empties every container.
  RoaringBitmap a = RoaringBitmap::FromRange(0, 100000);
  a.AndWith(RoaringBitmap());
  EXPECT_TRUE(a.Empty());
}

TEST(RoaringBitmapTest, OrManyMatchesSequentialOr) {
  Random rng(55);
  std::vector<RoaringBitmap> inputs;
  std::set<uint32_t> ref;
  RoaringBitmap sequential;
  for (int i = 0; i < 40; ++i) {
    RoaringBitmap bm;
    if (i % 5 == 0) {
      const uint32_t begin = static_cast<uint32_t>(rng.NextUint64(300000));
      bm.AddRange(begin, begin + 5000);
      for (uint32_t v = begin; v < begin + 5000; ++v) ref.insert(v);
      bm.RunOptimize();
    } else {
      const int n = i % 5 == 1 ? 9000 : 30;
      for (int k = 0; k < n; ++k) {
        const uint32_t v = static_cast<uint32_t>(rng.NextUint64(400000));
        bm.Add(v);
        ref.insert(v);
      }
    }
    sequential.OrWith(bm);
    inputs.push_back(std::move(bm));
  }
  std::vector<const RoaringBitmap*> ptrs;
  for (const auto& bm : inputs) ptrs.push_back(&bm);
  const RoaringBitmap bulk = RoaringBitmap::OrMany(ptrs);
  EXPECT_EQ(bulk.Cardinality(), ref.size());
  EXPECT_EQ(bulk.ToVector(), sequential.ToVector());

  EXPECT_TRUE(RoaringBitmap::OrMany({}).Empty());
  const RoaringBitmap single = RoaringBitmap::OrMany({&inputs[0]});
  EXPECT_TRUE(single == inputs[0]);
}

TEST(RoaringBitmapTest, RunAwareKernelsOperateOnRuns) {
  // Two run-heavy bitmaps: And/Or/AndNot must both be correct and keep
  // run-friendly shapes run-encoded instead of materializing bitsets.
  RoaringBitmap a, b;
  a.AddRange(100, 30000);
  a.AddRange(40000, 41000);
  b.AddRange(20000, 45000);
  a.RunOptimize();
  b.RunOptimize();
  ASSERT_GT(a.GetContainerStats().run_containers, 0);
  ASSERT_GT(b.GetContainerStats().run_containers, 0);

  const RoaringBitmap intersection = a.And(b);
  EXPECT_EQ(intersection.Cardinality(), (30000u - 20000u) + 1000u);
  EXPECT_TRUE(intersection.Contains(20000));
  EXPECT_TRUE(intersection.Contains(29999));
  EXPECT_FALSE(intersection.Contains(30000));
  EXPECT_TRUE(intersection.Contains(40500));
  // Two contiguous stretches stay run containers, not bitsets.
  EXPECT_EQ(intersection.GetContainerStats().bitset_containers, 0);

  // a ∪ b covers [100, 45000) with no gaps: b bridges a's hole.
  const RoaringBitmap uni = a.Or(b);
  EXPECT_EQ(uni.Cardinality(), 45000u - 100u);
  EXPECT_EQ(uni.Minimum(), 100u);
  EXPECT_EQ(uni.Maximum(), 44999u);
  EXPECT_EQ(uni.GetContainerStats().bitset_containers, 0);

  const RoaringBitmap diff = a.AndNot(b);
  EXPECT_EQ(diff.Cardinality(), 20000u - 100u);
  EXPECT_TRUE(diff.Contains(100));
  EXPECT_TRUE(diff.Contains(19999));
  EXPECT_FALSE(diff.Contains(20000));
  EXPECT_FALSE(diff.Contains(40500));
}

TEST(RoaringBitmapTest, SkewedArrayIntersection) {
  // Exercises the galloping array∧array path: |large| / |small| far above
  // the skew threshold.
  Random rng(31);
  std::set<uint32_t> ref_small, ref_large;
  RoaringBitmap small, large;
  for (int i = 0; i < 8; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.NextUint64(60000));
    small.Add(v);
    ref_small.insert(v);
  }
  for (int i = 0; i < 4000; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.NextUint64(60000));
    large.Add(v);
    ref_large.insert(v);
  }
  // Make sure at least one value overlaps.
  small.Add(*ref_large.begin());
  ref_small.insert(*ref_large.begin());
  std::vector<uint32_t> expected;
  std::set_intersection(ref_small.begin(), ref_small.end(),
                        ref_large.begin(), ref_large.end(),
                        std::back_inserter(expected));
  EXPECT_EQ(small.And(large).ToVector(), expected);
  EXPECT_EQ(large.And(small).ToVector(), expected);
}

// Property-style randomized comparison against std::set across densities.
class RoaringPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(RoaringPropertyTest, MatchesReferenceSetOperations) {
  const double density = GetParam();
  Random rng(1234 + static_cast<uint64_t>(density * 1000));
  const uint32_t universe = 200000;
  std::set<uint32_t> ref_a, ref_b;
  RoaringBitmap a, b;
  const int n = static_cast<int>(universe * density);
  for (int i = 0; i < n; ++i) {
    const uint32_t va = static_cast<uint32_t>(rng.NextUint64(universe));
    const uint32_t vb = static_cast<uint32_t>(rng.NextUint64(universe));
    ref_a.insert(va);
    a.Add(va);
    ref_b.insert(vb);
    b.Add(vb);
  }
  ASSERT_EQ(a.Cardinality(), ref_a.size());
  ASSERT_EQ(b.Cardinality(), ref_b.size());

  // Run-optimized twins exercise the run-aware kernel pairings; the
  // results must be identical to the array/bitset paths.
  RoaringBitmap b_runs = b;
  b_runs.RunOptimize();

  std::vector<uint32_t> expected;
  std::set_intersection(ref_a.begin(), ref_a.end(), ref_b.begin(),
                        ref_b.end(), std::back_inserter(expected));
  EXPECT_EQ(a.And(b).ToVector(), expected);
  EXPECT_EQ(a.And(b_runs).ToVector(), expected);
  {
    RoaringBitmap in_place = a;
    in_place.AndWith(b);
    EXPECT_EQ(in_place.ToVector(), expected);
  }

  expected.clear();
  std::set_union(ref_a.begin(), ref_a.end(), ref_b.begin(), ref_b.end(),
                 std::back_inserter(expected));
  EXPECT_EQ(a.Or(b).ToVector(), expected);
  EXPECT_EQ(a.Or(b_runs).ToVector(), expected);
  {
    RoaringBitmap in_place = a;
    in_place.OrWith(b);
    EXPECT_EQ(in_place.ToVector(), expected);
    const RoaringBitmap bulk = RoaringBitmap::OrMany({&a, &b_runs});
    EXPECT_EQ(bulk.ToVector(), expected);
  }

  expected.clear();
  std::set_difference(ref_a.begin(), ref_a.end(), ref_b.begin(), ref_b.end(),
                      std::back_inserter(expected));
  EXPECT_EQ(a.AndNot(b).ToVector(), expected);
  EXPECT_EQ(a.AndNot(b_runs).ToVector(), expected);
  {
    RoaringBitmap a_runs = a;
    a_runs.RunOptimize();
    EXPECT_EQ(a_runs.AndNot(b).ToVector(), expected);
    EXPECT_EQ(a_runs.AndNot(b_runs).ToVector(), expected);
  }

  // Round-trip through RunOptimize + serialization preserves equality.
  RoaringBitmap optimized = a;
  optimized.RunOptimize();
  EXPECT_TRUE(optimized == a);
  ByteWriter writer;
  optimized.Serialize(&writer);
  ByteReader reader(writer.buffer());
  auto restored = RoaringBitmap::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == a);
}

INSTANTIATE_TEST_SUITE_P(Densities, RoaringPropertyTest,
                         ::testing::Values(0.0005, 0.01, 0.2, 0.9));

}  // namespace
}  // namespace pinot
