#include "data/schema.h"

namespace pinot {

FieldSpec FieldSpec::Dimension(std::string name, DataType type,
                               bool single_value) {
  FieldSpec spec;
  spec.name = std::move(name);
  spec.type = type;
  spec.role = FieldRole::kDimension;
  spec.single_value = single_value;
  return spec;
}

FieldSpec FieldSpec::Metric(std::string name, DataType type) {
  FieldSpec spec;
  spec.name = std::move(name);
  spec.type = type;
  spec.role = FieldRole::kMetric;
  return spec;
}

FieldSpec FieldSpec::Time(std::string name, DataType type) {
  FieldSpec spec;
  spec.name = std::move(name);
  spec.type = type;
  spec.role = FieldRole::kTime;
  return spec;
}

Schema::Schema(std::vector<FieldSpec> fields) : fields_(std::move(fields)) {
  for (int i = 0; i < static_cast<int>(fields_.size()); ++i) {
    index_[fields_[i].name] = i;
    if (fields_[i].role == FieldRole::kTime) time_column_ = fields_[i].name;
  }
}

Result<Schema> Schema::Make(std::vector<FieldSpec> fields) {
  int time_columns = 0;
  std::unordered_map<std::string, int> seen;
  for (const auto& field : fields) {
    if (field.name.empty()) {
      return Status::InvalidArgument("field with empty name");
    }
    if (seen.count(field.name) > 0) {
      return Status::InvalidArgument("duplicate field name: " + field.name);
    }
    seen[field.name] = 1;
    if (field.role == FieldRole::kTime) {
      ++time_columns;
      if (!IsIntegralType(field.type)) {
        return Status::InvalidArgument(
            "time column must be an integral type: " + field.name);
      }
      if (!field.single_value) {
        return Status::InvalidArgument(
            "time column must be single-value: " + field.name);
      }
    }
    if (field.role == FieldRole::kMetric) {
      if (field.type == DataType::kString) {
        return Status::InvalidArgument(
            "metric column must be numeric: " + field.name);
      }
      if (!field.single_value) {
        return Status::InvalidArgument(
            "metric column must be single-value: " + field.name);
      }
    }
  }
  if (time_columns > 1) {
    return Status::InvalidArgument("schema has more than one time column");
  }
  return Schema(std::move(fields));
}

int Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

const FieldSpec* Schema::GetField(const std::string& name) const {
  const int idx = IndexOf(name);
  return idx < 0 ? nullptr : &fields_[idx];
}

Status Schema::AddField(const FieldSpec& field) {
  if (index_.count(field.name) > 0) {
    return Status::AlreadyExists("field already exists: " + field.name);
  }
  if (field.role == FieldRole::kTime && !time_column_.empty()) {
    return Status::InvalidArgument("schema already has a time column");
  }
  index_[field.name] = static_cast<int>(fields_.size());
  fields_.push_back(field);
  if (field.role == FieldRole::kTime) time_column_ = field.name;
  return Status::OK();
}

Value Schema::EffectiveDefault(int index) const {
  const FieldSpec& field = fields_[index];
  if (!IsNull(field.default_value)) return field.default_value;
  if (!field.single_value) {
    if (IsIntegralType(field.type)) return std::vector<int64_t>{};
    if (IsFloatingType(field.type)) return std::vector<double>{};
    return std::vector<std::string>{};
  }
  if (IsIntegralType(field.type)) return int64_t{0};
  if (IsFloatingType(field.type)) return 0.0;
  return std::string();
}

std::vector<std::string> Schema::FieldNames() const {
  std::vector<std::string> names;
  names.reserve(fields_.size());
  for (const auto& field : fields_) names.push_back(field.name);
  return names;
}

void Schema::Serialize(ByteWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(fields_.size()));
  for (const auto& field : fields_) {
    writer->WriteString(field.name);
    writer->WriteU8(static_cast<uint8_t>(field.type));
    writer->WriteU8(static_cast<uint8_t>(field.role));
    writer->WriteU8(field.single_value ? 1 : 0);
    WriteValue(field.default_value, writer);
  }
}

Result<Schema> Schema::Deserialize(ByteReader* reader) {
  PINOT_ASSIGN_OR_RETURN(uint32_t num_fields, reader->ReadU32());
  std::vector<FieldSpec> fields;
  fields.reserve(num_fields);
  for (uint32_t i = 0; i < num_fields; ++i) {
    FieldSpec field;
    PINOT_ASSIGN_OR_RETURN(field.name, reader->ReadString());
    PINOT_ASSIGN_OR_RETURN(uint8_t type_byte, reader->ReadU8());
    if (type_byte > static_cast<uint8_t>(DataType::kString)) {
      return Status::Corruption("bad data type");
    }
    field.type = static_cast<DataType>(type_byte);
    PINOT_ASSIGN_OR_RETURN(uint8_t role_byte, reader->ReadU8());
    if (role_byte > static_cast<uint8_t>(FieldRole::kTime)) {
      return Status::Corruption("bad field role");
    }
    field.role = static_cast<FieldRole>(role_byte);
    PINOT_ASSIGN_OR_RETURN(uint8_t sv, reader->ReadU8());
    field.single_value = sv != 0;
    PINOT_ASSIGN_OR_RETURN(field.default_value, ReadValue(reader));
    fields.push_back(std::move(field));
  }
  return Schema::Make(std::move(fields));
}

}  // namespace pinot
