#include "data/value.h"

#include <sstream>

#include "common/bytes.h"

namespace pinot {

namespace {

struct ToStringVisitor {
  std::string operator()(std::monostate) const { return "null"; }
  std::string operator()(int64_t x) const { return std::to_string(x); }
  std::string operator()(double x) const {
    std::ostringstream os;
    os << x;
    return os.str();
  }
  std::string operator()(const std::string& s) const { return s; }
  template <typename T>
  std::string operator()(const std::vector<T>& xs) const {
    std::string out = "[";
    for (size_t i = 0; i < xs.size(); ++i) {
      if (i > 0) out += ",";
      out += ToStringVisitor{}(xs[i]);
    }
    out += "]";
    return out;
  }
};

}  // namespace

std::string ValueToString(const Value& v) {
  return std::visit(ToStringVisitor{}, v);
}

double ValueToDouble(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  return 0.0;
}

void WriteValue(const Value& v, ByteWriter* writer) {
  writer->WriteU8(static_cast<uint8_t>(v.index()));
  switch (v.index()) {
    case 0:
      break;
    case 1:
      writer->WriteI64(std::get<int64_t>(v));
      break;
    case 2:
      writer->WriteF64(std::get<double>(v));
      break;
    case 3:
      writer->WriteString(std::get<std::string>(v));
      break;
    case 4: {
      const auto& xs = std::get<std::vector<int64_t>>(v);
      writer->WriteU32(static_cast<uint32_t>(xs.size()));
      for (int64_t x : xs) writer->WriteI64(x);
      break;
    }
    case 5: {
      const auto& xs = std::get<std::vector<double>>(v);
      writer->WriteU32(static_cast<uint32_t>(xs.size()));
      for (double x : xs) writer->WriteF64(x);
      break;
    }
    case 6: {
      const auto& xs = std::get<std::vector<std::string>>(v);
      writer->WriteU32(static_cast<uint32_t>(xs.size()));
      for (const auto& x : xs) writer->WriteString(x);
      break;
    }
  }
}

Result<Value> ReadValue(ByteReader* reader) {
  PINOT_ASSIGN_OR_RETURN(uint8_t tag, reader->ReadU8());
  switch (tag) {
    case 0:
      return Value{};
    case 1: {
      PINOT_ASSIGN_OR_RETURN(int64_t x, reader->ReadI64());
      return Value{x};
    }
    case 2: {
      PINOT_ASSIGN_OR_RETURN(double x, reader->ReadF64());
      return Value{x};
    }
    case 3: {
      PINOT_ASSIGN_OR_RETURN(std::string x, reader->ReadString());
      return Value{std::move(x)};
    }
    case 4: {
      PINOT_ASSIGN_OR_RETURN(uint32_t n, reader->ReadU32());
      std::vector<int64_t> xs(n);
      for (uint32_t i = 0; i < n; ++i) {
        PINOT_ASSIGN_OR_RETURN(xs[i], reader->ReadI64());
      }
      return Value{std::move(xs)};
    }
    case 5: {
      PINOT_ASSIGN_OR_RETURN(uint32_t n, reader->ReadU32());
      std::vector<double> xs(n);
      for (uint32_t i = 0; i < n; ++i) {
        PINOT_ASSIGN_OR_RETURN(xs[i], reader->ReadF64());
      }
      return Value{std::move(xs)};
    }
    case 6: {
      PINOT_ASSIGN_OR_RETURN(uint32_t n, reader->ReadU32());
      std::vector<std::string> xs(n);
      for (uint32_t i = 0; i < n; ++i) {
        PINOT_ASSIGN_OR_RETURN(xs[i], reader->ReadString());
      }
      return Value{std::move(xs)};
    }
    default:
      return Status::Corruption("bad value tag");
  }
}

}  // namespace pinot
