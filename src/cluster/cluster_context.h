#ifndef PINOT_CLUSTER_CLUSTER_CONTEXT_H_
#define PINOT_CLUSTER_CLUSTER_CONTEXT_H_

#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "query/query.h"
#include "query/result.h"
#include "realtime/completion.h"

namespace pinot {

class ClusterManager;
class PropertyStore;
class ObjectStore;
class StreamRegistry;
class MetricsRegistry;

/// A query as shipped from a broker to one server: the parsed query plus
/// the subset of segments this server must process (paper section 3.3.3
/// step 3).
struct ServerQueryRequest {
  std::string physical_table;
  Query query;
  std::vector<std::string> segments;
  std::string tenant;  // Token-bucket accounting key (section 4.5).
  int64_t timeout_millis = 10000;
};

/// The query-execution endpoint a server exposes to brokers.
class QueryServerApi {
 public:
  virtual ~QueryServerApi() = default;
  virtual PartialResult ExecuteServerQuery(const ServerQueryRequest& request) = 0;
};

/// The endpoints a controller exposes to servers for the realtime segment
/// completion protocol (paper section 3.3.6).
class ControllerApi {
 public:
  virtual ~ControllerApi() = default;

  virtual CompletionResponse SegmentConsumedUntil(
      const std::string& physical_table, const std::string& segment,
      const std::string& server, int64_t offset) = 0;

  virtual Status CommitSegment(const std::string& physical_table,
                               const std::string& segment,
                               const std::string& server, int64_t offset,
                               const std::string& blob) = 0;
};

/// Shared wiring between the in-process cluster components. In production
/// these links are Zookeeper sessions and HTTP connections; here they are
/// direct interfaces, preserving the protocol structure (who talks to whom
/// and with what messages) while replacing the transport.
struct ClusterContext {
  Clock* clock = nullptr;
  ClusterManager* cluster = nullptr;
  PropertyStore* property_store = nullptr;
  ObjectStore* object_store = nullptr;
  StreamRegistry* streams = nullptr;
  /// Cluster-wide metrics sink. Components fall back to
  /// MetricsRegistry::Default() when null (standalone construction).
  MetricsRegistry* metrics = nullptr;

  /// Resolves the current leader controller endpoint (null when no leader).
  std::function<ControllerApi*()> leader_controller;

  /// Resolves a server instance id to its query endpoint (null when the
  /// server is unknown or unreachable).
  std::function<QueryServerApi*(const std::string&)> server_endpoint;
};

/// Property-store layout helpers shared by controller, broker, and server.
namespace zkpaths {

inline std::string TableConfigPath(const std::string& physical_table) {
  return "/CONFIGS/" + physical_table;
}
inline std::string SegmentMetadataPrefix(const std::string& physical_table) {
  return "/SEGMENTS/" + physical_table + "/";
}
inline std::string SegmentMetadataPath(const std::string& physical_table,
                                       const std::string& segment) {
  return SegmentMetadataPrefix(physical_table) + segment;
}
inline std::string TimeBoundaryPath(const std::string& logical_table) {
  return "/TIMEBOUNDARY/" + logical_table;
}
inline std::string SegmentBlobKey(const std::string& physical_table,
                                  const std::string& segment) {
  return "segments/" + physical_table + "/" + segment;
}

}  // namespace zkpaths

/// Metadata the controller records per segment in the property store; the
/// broker reads it for partition pruning and the time boundary, servers
/// read it to start stream consumers.
struct SegmentZkMetadata {
  enum class State { kInProgress, kDone };

  State state = State::kDone;
  int32_t partition = -1;       // Stream/table partition, -1 unpartitioned.
  int64_t start_offset = -1;    // Consuming segments: first stream offset.
  int64_t end_offset = -1;      // Committed segments: one past the last.
  int32_t sequence = 0;         // Consuming-segment sequence number.
  int64_t min_time = 0;
  int64_t max_time = -1;
  uint32_t crc = 0;

  std::string Encode() const;
  static Result<SegmentZkMetadata> Decode(const std::string& encoded);
};

}  // namespace pinot

#endif  // PINOT_CLUSTER_CLUSTER_CONTEXT_H_
