#include "segment/segment_store.h"

#include <filesystem>
#include <fstream>

#include "common/hash.h"
#include "metrics/metrics.h"
#include "startree/star_tree.h"

namespace pinot {

namespace {

constexpr uint32_t kMetadataMagic = 0x504d4554;  // "PMET"
constexpr uint32_t kMetadataVersion = 1;

enum class BlockKind : uint8_t {
  kDictionary = 0,
  kForward = 1,
  kInverted = 2,
  kSorted = 3,
  kStarTree = 4,
};

struct DirectoryEntry {
  BlockKind kind = BlockKind::kDictionary;
  std::string column;  // Empty for the star-tree block.
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
};

Status WriteFile(const std::string& path, const std::string& contents,
                 bool atomic) {
  const std::string target = atomic ? path + ".tmp" : path;
  {
    std::ofstream out(target, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot open for write: " + target);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    if (!out) return Status::Internal("write failed: " + target);
  }
  if (atomic) {
    std::error_code ec;
    std::filesystem::rename(target, path, ec);
    if (ec) return Status::Internal("rename failed: " + path);
  }
  return Status::OK();
}

Status AppendFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::Internal("cannot open for append: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::Internal("append failed: " + path);
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return contents;
}

std::string MetadataPath(const std::string& dir) {
  return dir + "/metadata.bin";
}
std::string IndexPath(const std::string& dir) { return dir + "/index.bin"; }

void WriteSegmentMetadata(const SegmentMetadata& meta, ByteWriter* writer) {
  writer->WriteString(meta.table_name);
  writer->WriteString(meta.segment_name);
  writer->WriteU32(meta.num_docs);
  writer->WriteI64(meta.min_time);
  writer->WriteI64(meta.max_time);
  writer->WriteI64(meta.creation_time_millis);
  writer->WriteString(meta.sorted_column);
  writer->WriteI32(meta.partition_id);
  writer->WriteString(meta.partition_column);
  writer->WriteI32(meta.num_partitions);
}

Result<SegmentMetadata> ReadSegmentMetadata(ByteReader* reader) {
  SegmentMetadata meta;
  PINOT_ASSIGN_OR_RETURN(meta.table_name, reader->ReadString());
  PINOT_ASSIGN_OR_RETURN(meta.segment_name, reader->ReadString());
  PINOT_ASSIGN_OR_RETURN(meta.num_docs, reader->ReadU32());
  PINOT_ASSIGN_OR_RETURN(meta.min_time, reader->ReadI64());
  PINOT_ASSIGN_OR_RETURN(meta.max_time, reader->ReadI64());
  PINOT_ASSIGN_OR_RETURN(meta.creation_time_millis, reader->ReadI64());
  PINOT_ASSIGN_OR_RETURN(meta.sorted_column, reader->ReadString());
  PINOT_ASSIGN_OR_RETURN(meta.partition_id, reader->ReadI32());
  PINOT_ASSIGN_OR_RETURN(meta.partition_column, reader->ReadString());
  PINOT_ASSIGN_OR_RETURN(meta.num_partitions, reader->ReadI32());
  return meta;
}

void WriteColumnStats(const ColumnStats& stats, ByteWriter* writer) {
  writer->WriteI32(stats.cardinality);
  WriteValue(stats.min_value, writer);
  WriteValue(stats.max_value, writer);
  writer->WriteU8(stats.is_sorted ? 1 : 0);
  writer->WriteU32(stats.total_entries);
  writer->WriteU32(stats.max_entries_per_row);
}

Result<ColumnStats> ReadColumnStats(ByteReader* reader) {
  ColumnStats stats;
  PINOT_ASSIGN_OR_RETURN(stats.cardinality, reader->ReadI32());
  PINOT_ASSIGN_OR_RETURN(stats.min_value, ReadValue(reader));
  PINOT_ASSIGN_OR_RETURN(stats.max_value, ReadValue(reader));
  PINOT_ASSIGN_OR_RETURN(uint8_t sorted, reader->ReadU8());
  stats.is_sorted = sorted != 0;
  PINOT_ASSIGN_OR_RETURN(stats.total_entries, reader->ReadU32());
  PINOT_ASSIGN_OR_RETURN(stats.max_entries_per_row, reader->ReadU32());
  return stats;
}

struct ParsedMetadata {
  Schema schema;
  SegmentMetadata metadata;
  std::vector<std::pair<std::string, ColumnStats>> columns;
  std::vector<DirectoryEntry> entries;
};

std::string EncodeMetadata(const ParsedMetadata& meta) {
  ByteWriter writer;
  writer.WriteU32(kMetadataMagic);
  writer.WriteU32(kMetadataVersion);
  meta.schema.Serialize(&writer);
  WriteSegmentMetadata(meta.metadata, &writer);
  writer.WriteU32(static_cast<uint32_t>(meta.columns.size()));
  for (const auto& [name, stats] : meta.columns) {
    writer.WriteString(name);
    WriteColumnStats(stats, &writer);
  }
  writer.WriteU32(static_cast<uint32_t>(meta.entries.size()));
  for (const auto& entry : meta.entries) {
    writer.WriteU8(static_cast<uint8_t>(entry.kind));
    writer.WriteString(entry.column);
    writer.WriteU64(entry.offset);
    writer.WriteU64(entry.size);
    writer.WriteU32(entry.crc);
  }
  return writer.TakeBuffer();
}

Result<ParsedMetadata> DecodeMetadata(const std::string& encoded) {
  ByteReader reader(encoded);
  PINOT_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kMetadataMagic) {
    return Status::Corruption("bad segment metadata magic");
  }
  PINOT_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kMetadataVersion) {
    return Status::Corruption("unsupported segment metadata version");
  }
  ParsedMetadata meta;
  PINOT_ASSIGN_OR_RETURN(meta.schema, Schema::Deserialize(&reader));
  PINOT_ASSIGN_OR_RETURN(meta.metadata, ReadSegmentMetadata(&reader));
  PINOT_ASSIGN_OR_RETURN(uint32_t num_columns, reader.ReadU32());
  for (uint32_t i = 0; i < num_columns; ++i) {
    PINOT_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    PINOT_ASSIGN_OR_RETURN(ColumnStats stats, ReadColumnStats(&reader));
    meta.columns.emplace_back(std::move(name), std::move(stats));
  }
  PINOT_ASSIGN_OR_RETURN(uint32_t num_entries, reader.ReadU32());
  for (uint32_t i = 0; i < num_entries; ++i) {
    DirectoryEntry entry;
    PINOT_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadU8());
    if (kind > static_cast<uint8_t>(BlockKind::kStarTree)) {
      return Status::Corruption("bad block kind");
    }
    entry.kind = static_cast<BlockKind>(kind);
    PINOT_ASSIGN_OR_RETURN(entry.column, reader.ReadString());
    PINOT_ASSIGN_OR_RETURN(entry.offset, reader.ReadU64());
    PINOT_ASSIGN_OR_RETURN(entry.size, reader.ReadU64());
    PINOT_ASSIGN_OR_RETURN(entry.crc, reader.ReadU32());
    meta.entries.push_back(std::move(entry));
  }
  return meta;
}

// Returns the CRC-verified payload slice of `entry` within the index file.
Result<std::string_view> SliceBlock(const std::string& index_contents,
                                    const DirectoryEntry& entry) {
  if (entry.offset + entry.size > index_contents.size()) {
    return Status::Corruption("index block out of bounds");
  }
  const std::string_view slice(index_contents.data() + entry.offset,
                               entry.size);
  if (Crc32(slice) != entry.crc) {
    return Status::Corruption("index block crc mismatch");
  }
  return slice;
}

const DirectoryEntry* FindEntry(const std::vector<DirectoryEntry>& entries,
                                BlockKind kind, const std::string& column) {
  for (const auto& entry : entries) {
    if (entry.kind == kind && entry.column == column) return &entry;
  }
  return nullptr;
}

}  // namespace

Status SaveSegmentToDirectory(const ImmutableSegment& segment,
                              const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::Internal("cannot create directory: " + dir);

  ParsedMetadata meta;
  meta.schema = segment.schema();
  meta.metadata = segment.metadata();

  std::string index_contents;
  auto append_block = [&](BlockKind kind, const std::string& column,
                          std::string payload) {
    DirectoryEntry entry;
    entry.kind = kind;
    entry.column = column;
    entry.offset = index_contents.size();
    entry.size = payload.size();
    entry.crc = Crc32(payload);
    index_contents += payload;
    meta.entries.push_back(std::move(entry));
  };

  for (const auto& field : segment.schema().fields()) {
    const ColumnReader* column = segment.GetColumn(field.name);
    if (column == nullptr) continue;
    meta.columns.emplace_back(field.name, column->stats());
    {
      ByteWriter writer;
      column->dictionary().Serialize(&writer);
      append_block(BlockKind::kDictionary, field.name, writer.TakeBuffer());
    }
    {
      const auto* immutable_column =
          static_cast<const ImmutableSegment::Column*>(column);
      ByteWriter writer;
      immutable_column->forward_index().Serialize(&writer);
      append_block(BlockKind::kForward, field.name, writer.TakeBuffer());
    }
    if (column->inverted_index() != nullptr) {
      ByteWriter writer;
      column->inverted_index()->Serialize(&writer);
      append_block(BlockKind::kInverted, field.name, writer.TakeBuffer());
    }
    if (column->sorted_index() != nullptr) {
      ByteWriter writer;
      column->sorted_index()->Serialize(&writer);
      append_block(BlockKind::kSorted, field.name, writer.TakeBuffer());
    }
  }
  if (segment.star_tree() != nullptr) {
    ByteWriter writer;
    segment.star_tree()->Serialize(&writer);
    append_block(BlockKind::kStarTree, "", writer.TakeBuffer());
  }

  PINOT_RETURN_NOT_OK(WriteFile(IndexPath(dir), index_contents,
                                /*atomic=*/false));
  PINOT_RETURN_NOT_OK(
      WriteFile(MetadataPath(dir), EncodeMetadata(meta), /*atomic=*/true));
  // Free functions have no cluster wiring; account against the process-wide
  // registry.
  MetricsRegistry* metrics = MetricsRegistry::Default();
  metrics->GetCounter("segment_store_segments_saved_total")->Increment();
  metrics->GetCounter("segment_store_bytes_written_total")
      ->Increment(index_contents.size());
  return Status::OK();
}

Result<std::shared_ptr<ImmutableSegment>> LoadSegmentFromDirectory(
    const std::string& dir) {
  PINOT_ASSIGN_OR_RETURN(std::string metadata_contents,
                         ReadFile(MetadataPath(dir)));
  PINOT_ASSIGN_OR_RETURN(ParsedMetadata meta,
                         DecodeMetadata(metadata_contents));
  PINOT_ASSIGN_OR_RETURN(std::string index_contents,
                         ReadFile(IndexPath(dir)));

  std::vector<std::unique_ptr<ImmutableSegment::Column>> columns;
  for (const auto& [name, stats] : meta.columns) {
    const FieldSpec* spec = meta.schema.GetField(name);
    if (spec == nullptr) {
      return Status::Corruption("column not in schema: " + name);
    }
    const DirectoryEntry* dict_entry =
        FindEntry(meta.entries, BlockKind::kDictionary, name);
    const DirectoryEntry* forward_entry =
        FindEntry(meta.entries, BlockKind::kForward, name);
    if (dict_entry == nullptr || forward_entry == nullptr) {
      return Status::Corruption("missing dictionary/forward block: " + name);
    }
    PINOT_ASSIGN_OR_RETURN(std::string_view dict_slice,
                           SliceBlock(index_contents, *dict_entry));
    ByteReader dict_reader(dict_slice);
    PINOT_ASSIGN_OR_RETURN(Dictionary dictionary,
                           Dictionary::Deserialize(&dict_reader));
    PINOT_ASSIGN_OR_RETURN(std::string_view forward_slice,
                           SliceBlock(index_contents, *forward_entry));
    ByteReader forward_reader(forward_slice);
    PINOT_ASSIGN_OR_RETURN(ForwardIndex forward,
                           ForwardIndex::Deserialize(&forward_reader));
    auto column = std::make_unique<ImmutableSegment::Column>(
        *spec, std::move(dictionary), std::move(forward), stats);

    if (const DirectoryEntry* entry =
            FindEntry(meta.entries, BlockKind::kInverted, name)) {
      PINOT_ASSIGN_OR_RETURN(std::string_view slice,
                             SliceBlock(index_contents, *entry));
      ByteReader reader(slice);
      PINOT_ASSIGN_OR_RETURN(InvertedIndex inverted,
                             InvertedIndex::Deserialize(&reader));
      column->SetInvertedIndex(
          std::make_unique<InvertedIndex>(std::move(inverted)));
    }
    if (const DirectoryEntry* entry =
            FindEntry(meta.entries, BlockKind::kSorted, name)) {
      PINOT_ASSIGN_OR_RETURN(std::string_view slice,
                             SliceBlock(index_contents, *entry));
      ByteReader reader(slice);
      PINOT_ASSIGN_OR_RETURN(SortedIndex sorted,
                             SortedIndex::Deserialize(&reader));
      column->SetSortedIndex(
          std::make_unique<SortedIndex>(std::move(sorted)));
    }
    columns.push_back(std::move(column));
  }

  auto segment = std::make_shared<ImmutableSegment>(
      std::move(meta.schema), std::move(meta.metadata), std::move(columns));

  if (const DirectoryEntry* entry =
          FindEntry(meta.entries, BlockKind::kStarTree, "")) {
    PINOT_ASSIGN_OR_RETURN(std::string_view slice,
                           SliceBlock(index_contents, *entry));
    ByteReader reader(slice);
    PINOT_ASSIGN_OR_RETURN(StarTree tree, StarTree::Deserialize(&reader));
    segment->SetStarTree(std::make_unique<StarTree>(std::move(tree)));
  }
  MetricsRegistry* metrics = MetricsRegistry::Default();
  metrics->GetCounter("segment_store_segments_loaded_total")->Increment();
  metrics->GetCounter("segment_store_bytes_read_total")
      ->Increment(metadata_contents.size() + index_contents.size());
  return segment;
}

Status AppendInvertedIndexToDirectory(const std::string& dir,
                                      const std::string& column) {
  PINOT_ASSIGN_OR_RETURN(std::string metadata_contents,
                         ReadFile(MetadataPath(dir)));
  PINOT_ASSIGN_OR_RETURN(ParsedMetadata meta,
                         DecodeMetadata(metadata_contents));
  if (FindEntry(meta.entries, BlockKind::kInverted, column) != nullptr) {
    return Status::OK();  // Already indexed.
  }
  const DirectoryEntry* dict_entry =
      FindEntry(meta.entries, BlockKind::kDictionary, column);
  const DirectoryEntry* forward_entry =
      FindEntry(meta.entries, BlockKind::kForward, column);
  if (dict_entry == nullptr || forward_entry == nullptr) {
    return Status::NotFound("no such column on disk: " + column);
  }
  PINOT_ASSIGN_OR_RETURN(std::string index_contents,
                         ReadFile(IndexPath(dir)));
  PINOT_ASSIGN_OR_RETURN(std::string_view dict_slice,
                         SliceBlock(index_contents, *dict_entry));
  ByteReader dict_reader(dict_slice);
  PINOT_ASSIGN_OR_RETURN(Dictionary dictionary,
                         Dictionary::Deserialize(&dict_reader));
  PINOT_ASSIGN_OR_RETURN(std::string_view forward_slice,
                         SliceBlock(index_contents, *forward_entry));
  ByteReader forward_reader(forward_slice);
  PINOT_ASSIGN_OR_RETURN(ForwardIndex forward,
                         ForwardIndex::Deserialize(&forward_reader));

  const InvertedIndex inverted =
      InvertedIndex::BuildFromForwardIndex(forward, dictionary.size());
  ByteWriter writer;
  inverted.Serialize(&writer);
  const std::string payload = writer.TakeBuffer();

  DirectoryEntry entry;
  entry.kind = BlockKind::kInverted;
  entry.column = column;
  entry.offset = index_contents.size();
  entry.size = payload.size();
  entry.crc = Crc32(payload);

  // Append-only index file; metadata rewritten atomically afterwards.
  PINOT_RETURN_NOT_OK(AppendFile(IndexPath(dir), payload));
  meta.entries.push_back(std::move(entry));
  return WriteFile(MetadataPath(dir), EncodeMetadata(meta), /*atomic=*/true);
}

}  // namespace pinot
