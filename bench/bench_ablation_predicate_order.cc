// Ablation (section 3.3.4 / 4.2): cost-based predicate reordering in AND
// filters. The evaluator normally runs the sorted-range operator first and
// passes its doc range to subsequent scans ("This causes subsequent
// operators to only evaluate part of the column"); disabling reordering
// makes the expensive scan run over the full segment first.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "query/filter_evaluator.h"

namespace pinot {
namespace {

std::shared_ptr<ImmutableSegment> BuildSegment() {
  WorkloadOptions wo;
  wo.num_rows = 500000;
  wo.num_queries = 1;
  Workload workload = MakeWvmpWorkload(wo);
  SegmentBuildConfig config;
  config.table_name = "wvmp";
  config.segment_name = "abl";
  config.sort_columns = {"vieweeId"};
  SegmentBuilder builder(workload.schema, config);
  for (const auto& row : workload.rows) {
    if (!builder.AddRow(row).ok()) std::abort();
  }
  auto segment = builder.Build();
  if (!segment.ok()) std::abort();
  return *segment;
}

std::optional<FilterNode> MakeFilter() {
  // Selective sorted predicate + unindexed scan predicate, written with
  // the scan first (query order).
  Predicate scan_pred;
  scan_pred.column = "viewerRegion";
  scan_pred.op = PredicateOp::kEq;
  scan_pred.values.push_back(Value{std::string("region_3")});
  Predicate sorted_pred;
  sorted_pred.column = "vieweeId";
  sorted_pred.op = PredicateOp::kEq;
  sorted_pred.values.push_back(Value{int64_t{42}});
  std::optional<FilterNode> filter;
  filter.emplace(FilterNode::And(
      {FilterNode::Leaf(scan_pred), FilterNode::Leaf(sorted_pred)}));
  return filter;
}

void BM_WithReordering(benchmark::State& state) {
  static auto segment = BuildSegment();
  auto filter = MakeFilter();
  for (auto _ : state) {
    FilterEvaluator evaluator(*segment, nullptr);
    evaluator.set_reorder_predicates(true);
    auto docs = evaluator.Evaluate(filter);
    if (!docs.ok()) std::abort();
    benchmark::DoNotOptimize(docs->Cardinality());
  }
}

void BM_QueryOrder(benchmark::State& state) {
  static auto segment = BuildSegment();
  auto filter = MakeFilter();
  for (auto _ : state) {
    FilterEvaluator evaluator(*segment, nullptr);
    evaluator.set_reorder_predicates(false);
    auto docs = evaluator.Evaluate(filter);
    if (!docs.ok()) std::abort();
    benchmark::DoNotOptimize(docs->Cardinality());
  }
}

BENCHMARK(BM_WithReordering);
BENCHMARK(BM_QueryOrder);

}  // namespace
}  // namespace pinot

BENCHMARK_MAIN();
