file(REMOVE_RECURSE
  "CMakeFiles/segment_store_test.dir/segment_store_test.cc.o"
  "CMakeFiles/segment_store_test.dir/segment_store_test.cc.o.d"
  "segment_store_test"
  "segment_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
