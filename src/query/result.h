#ifndef PINOT_QUERY_RESULT_H_
#define PINOT_QUERY_RESULT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/value.h"
#include "query/agg.h"
#include "query/query.h"
#include "trace/trace.h"

namespace pinot {

/// Counters accumulated during execution; used for Figure 13 (preaggregated
/// records scanned vs raw records) and for the automated index advisor
/// (section 5.2 parses execution statistics to add inverted indexes).
struct ExecutionStats {
  uint64_t docs_scanned = 0;         // Raw documents visited post-filter.
  uint64_t docs_matched = 0;         // Documents matching the filter.
  uint64_t segments_queried = 0;
  uint64_t segments_pruned = 0;      // Skipped via metadata/partition.
  uint64_t star_tree_records_scanned = 0;
  bool used_star_tree = false;
  bool answered_from_metadata = false;

  void Merge(const ExecutionStats& other) {
    docs_scanned += other.docs_scanned;
    docs_matched += other.docs_matched;
    segments_queried += other.segments_queried;
    segments_pruned += other.segments_pruned;
    star_tree_records_scanned += other.star_tree_records_scanned;
    used_star_tree = used_star_tree || other.used_star_tree;
    answered_from_metadata =
        answered_from_metadata || other.answered_from_metadata;
  }
};

/// Flat group-by accumulation table, the mergeable group-by payload of a
/// PartialResult. Replaces the old `unordered_map<string, GroupEntry>`:
/// encoded keys live in one byte arena, key values and aggregation states
/// in flat arrays (`num_keys` / `num_aggs` entries per group), and lookup
/// goes through a linear-probing index of group ordinals. At million-group
/// cardinalities this avoids the three-allocations-per-group cost of the
/// node-based map (key string, GroupEntry node, per-group key vector) that
/// used to dominate the per-segment flush.
///
/// Every group holds exactly `num_keys()` key values and `num_aggs()`
/// states; a table whose arity disagrees with a merge peer (older table
/// config) is rejected wholesale instead of per-entry.
class GroupTable {
 public:
  static constexpr uint32_t kInvalidGroup = 0xffffffffu;

  bool empty() const { return group_count_ == 0; }
  size_t size() const { return group_count_; }
  size_t num_keys() const { return num_keys_; }
  size_t num_aggs() const { return num_aggs_; }

  /// Sets the per-group arity on first use; returns false when the table
  /// already holds groups of a different arity.
  bool EnsureArity(size_t num_keys, size_t num_aggs);

  /// Ordinal of the group with this encoded key, or kInvalidGroup.
  uint32_t Find(std::string_view encoded_key) const;

  /// Find-or-insert: returns the ordinal for `encoded_key`, inserting a new
  /// group with default (zero) states when absent. On insert, `fill_keys`
  /// must append exactly num_keys() values to the passed vector; it is not
  /// invoked on hits, so callers can defer value decoding to first touch.
  template <typename FillKeys>
  uint32_t FindOrAdd(std::string_view encoded_key, FillKeys&& fill_keys) {
    const size_t hash = HashKey(encoded_key);
    uint32_t g = FindWithHash(encoded_key, hash);
    if (g != kInvalidGroup) return g;
    g = AppendGroup(encoded_key, hash);
    fill_keys(&key_values_);
    return g;
  }

  /// Inserts one externally built group (or merges states into an existing
  /// one). EnsureArity must have been called.
  void AddGroup(std::vector<Value> keys, std::vector<AggState>&& states);

  AggState* StatesAt(uint32_t g) { return &states_[size_t{g} * num_aggs_]; }
  const AggState* StatesAt(uint32_t g) const {
    return &states_[size_t{g} * num_aggs_];
  }
  const Value* KeysAt(uint32_t g) const {
    return &key_values_[size_t{g} * num_keys_];
  }
  Value* MutableKeysAt(uint32_t g) {
    return &key_values_[size_t{g} * num_keys_];
  }
  std::string_view EncodedKeyAt(uint32_t g) const {
    return std::string_view(arena_).substr(key_offsets_[g],
                                           key_offsets_[g + 1] -
                                               key_offsets_[g]);
  }

  /// Merges `other` in (groups matched by encoded key). On arity mismatch
  /// the table is left untouched and `*status` is set (first error wins).
  void MergeFrom(GroupTable&& other, Status* status);

  /// Group ordinals ranked by (AggSortValue of the first state descending,
  /// encoded key ascending) — the deterministic broker TOP-n order. The
  /// key tie-break makes server-side trimming and the broker reduce agree
  /// on equal sort values.
  std::vector<uint32_t> RankedByFirstAgg(AggregationType first_type) const;

  /// Keeps the `keep` highest-ranked groups (see RankedByFirstAgg) and
  /// drops the rest; returns the number of groups dropped. This is the
  /// server-side ORDER-BY/LIMIT trim: with broker-side over-fetch the
  /// scatter payload becomes O(keep) instead of O(groups).
  size_t TrimToTopN(AggregationType first_type, size_t keep);

  /// Rough wire size of the table (arena + key values + states), used by
  /// benches to report payload bytes shipped per server with/without
  /// trimming. String key values are counted at their heap size.
  size_t ApproxPayloadBytes() const;

 private:
  size_t HashKey(std::string_view key) const {
    return std::hash<std::string_view>{}(key);
  }
  uint32_t FindWithHash(std::string_view key, size_t hash) const;
  uint32_t AppendGroup(std::string_view key, size_t hash);
  void GrowIndex();

  size_t num_keys_ = 0;
  size_t num_aggs_ = 0;
  size_t group_count_ = 0;
  bool arity_set_ = false;

  // Encoded keys, concatenated; group g spans
  // [key_offsets_[g], key_offsets_[g+1]) of arena_.
  std::string arena_;
  std::vector<uint32_t> key_offsets_ = {0};

  // Flat per-group payloads: num_keys_ values / num_aggs_ states per group.
  std::vector<Value> key_values_;
  std::vector<AggState> states_;

  // Linear-probing index: slot -> group ordinal (kInvalidGroup = empty).
  // Rebuilt from the arena on growth; power-of-two capacity.
  std::vector<uint32_t> slots_;
};

/// Per-query resource receipt: where the time went and how much work was
/// done, accounted unconditionally (TRACE or not) so cost is attributable
/// to tables and tenants ("Enhancing OLAP Resilience at LinkedIn" operates
/// Pinot by attributing latency and capacity to specific queries).
///
/// Time fields are microseconds. Segment-phase times (plan/filter/scan/agg)
/// are summed across parallel workers and scatter calls, so they are CPU
/// time and can exceed the query's wall latency; queue_micros sums tenant
/// admission waits across servers; route/scatter/reduce are broker wall
/// phases.
struct QueryReceipt {
  // Phase times (micros).
  int64_t queue_micros = 0;    // Tenant-admission queue wait, all servers.
  int64_t plan_micros = 0;     // Segment plan selection (incl. pruning).
  int64_t filter_micros = 0;   // Filter evaluation.
  int64_t scan_micros = 0;     // Selection row materialization.
  int64_t agg_micros = 0;      // Aggregation + group-by accumulation.
  int64_t route_micros = 0;    // Broker routing-table lookup.
  int64_t scatter_micros = 0;  // Broker scatter wall time, all tables.
  int64_t reduce_micros = 0;   // Broker merge/finalize.

  // Work done.
  uint64_t docs_scanned = 0;
  uint64_t docs_pruned = 0;    // Docs inside segments skipped by pruning.
  uint64_t segments_queried = 0;
  uint64_t segments_pruned = 0;
  uint64_t scan_bytes = 0;     // Estimated column bytes decoded.
  uint64_t payload_bytes = 0;  // Partial-result bytes shipped to the broker.
  uint64_t groups = 0;         // Pre-trim group count, summed over servers.
  uint64_t trimmed = 0;        // Groups dropped by server-side trimming.

  // Scatter behaviour (broker-side).
  uint32_t calls = 0;          // Scatter calls issued (incl. retries/hedges).
  uint32_t retries = 0;
  uint32_t timeouts = 0;
  uint32_t hedges = 0;
  uint32_t hedge_wins = 0;

  void Merge(const QueryReceipt& other);

  /// Three `receipt: <section> k=v ...` lines (phases / work / scatter);
  /// grammar-checked by scripts/check_dumps.sh.
  std::string ToString() const;
};

/// Unfinalized result of executing a query over one or more segments.
/// Mergeable across segments (server-side combine, paper section 3.3.3 step
/// 6) and across servers (broker-side merge, step 7).
struct PartialResult {
  // Aggregation without group-by: one state per aggregation spec.
  std::vector<AggState> aggregates;

  // Group-by accumulation (see GroupTable). Servers may trim this to the
  // query's over-fetched top-N before it ships to the broker.
  GroupTable groups;

  // Selection rows (unfinalized; trimmed to limit during reduce).
  std::vector<std::vector<Value>> selection_rows;

  ExecutionStats stats;
  int64_t total_docs = 0;  // Total documents in the queried segments.

  // Resource accounting for this partial; merged alongside stats. The
  // doc/segment tallies duplicated in `stats` are filled in from it by the
  // broker at finalize time — executors only maintain the receipt-specific
  // fields (phase times, docs_pruned, bytes, group counts).
  QueryReceipt receipt;

  // Execution errors; a non-OK status marks the merged result partial.
  Status status;

  // Trace spans produced while computing this partial (per-request server
  // spans with per-segment children). Only populated when the query carries
  // trace/explain; Merge concatenates so spans survive the server-side
  // combine and ride back to the broker.
  std::vector<TraceSpan> spans;

  void Merge(PartialResult&& other);
};

/// Encodes group-key values into a hashable string key (values from
/// different segments hash identically, unlike dictionary ids). Each value
/// is length-prefixed: string values can contain any byte, so a separator
/// scheme cannot distinguish ("a\x1f", "b") from ("a", "\x1fb").
std::string EncodeGroupKey(const std::vector<Value>& keys);

/// Appends the length-prefixed encoding of one key value to `out` —
/// EncodeGroupKey is the fold of this over all key values. Exposed so the
/// packed group-by flush can build encoded keys incrementally in a reused
/// buffer without materializing a std::vector<Value> per group.
void AppendGroupKeyValue(const Value& v, std::string* out);

/// Appends the length-prefixed encoding of an already rendered value
/// (exactly what AppendGroupKeyValue would produce for a value whose
/// ValueToString equals `rendered`).
void AppendRenderedGroupKeyValue(std::string_view rendered, std::string* out);

/// One scatter call from the broker to one server, as observed by the
/// broker: which segments it covered, which retry wave it belonged to, how
/// long it took, and how it ended. Partial results carry these so clients
/// can see *why* data is missing (paper section 3.3.3 step 7).
struct ScatterTraceEvent {
  std::string physical_table;
  std::string server;
  std::vector<std::string> segments;
  int attempt = 0;            // 0 = first scatter wave, >0 = retry waves.
  double latency_millis = 0;  // Submit-to-gather time (0 if never sent).
  // "ok", "unreachable", "timeout", "failed: <status>", "error: <status>",
  // "discarded (hedge lost)", "abandoned (hedge won)".
  std::string outcome;
  // True for speculative hedge calls fired while the primary call was still
  // outstanding past the latency budget.
  bool hedge = false;
  // True on the call whose response was merged when it beat the other side
  // of a hedge race (set on the hedge when it wins, never on primaries).
  bool hedge_won = false;
  // Why each segment landed on this server, parallel to `segments`:
  // "routing-table" on the first wave; on retry waves,
  // "failover(<prior outcome>, candidates=<n>)" where n counts the live
  // untried replicas the picker chose among.
  std::vector<std::string> pick_reasons;
};

/// Per-query execution trace accumulated broker-side across all physical
/// tables and scatter attempts.
struct QueryTrace {
  std::vector<ScatterTraceEvent> events;
  int retries = 0;    // Segments re-scattered to another replica.
  int timeouts = 0;   // Calls abandoned at an attempt deadline.
  int hedges = 0;     // Speculative hedge calls fired.
  int hedge_wins = 0; // Hedge calls whose response was the one merged.

  /// Human-readable rendering, one line per scatter event.
  std::string ToString() const;
};

/// Final client-facing query response (paper section 3.3.3 step 8; errors
/// or timeouts mark the result as partial instead of failing it).
struct QueryResult {
  bool partial = false;
  std::string error_message;

  // Broker load shedding: the query was rejected at admission because the
  // broker was past its in-flight watermark. No server did any work; the
  // client should back off ~retry_after_millis before resubmitting
  // (a Retry-After header in a real HTTP broker).
  bool throttled = false;
  double retry_after_millis = 0;

  // Aggregation mode.
  std::vector<std::string> aggregation_names;
  std::vector<Value> aggregates;

  // Group-by mode: rows sorted descending by the first aggregation, top-n.
  struct GroupRow {
    std::vector<Value> keys;
    std::vector<Value> values;
  };
  std::vector<std::string> group_by_columns;
  std::vector<GroupRow> group_rows;

  // Selection mode.
  std::vector<std::string> selection_columns;
  std::vector<std::vector<Value>> selection_rows;

  ExecutionStats stats;
  // Resource receipt for the whole query (server phases merged across the
  // scatter + broker phases). Rendered after the trace for TRACE queries
  // and attached to slow-query-log entries.
  QueryReceipt receipt;
  QueryTrace trace;
  // Full hierarchical execution trace (root = broker span). Populated for
  // TRACE/EXPLAIN queries; ToString() renders it after the result rows.
  std::optional<TraceSpan> span;
  // True for EXPLAIN results: planning ran but no data was read.
  bool explain_only = false;
  int64_t total_docs = 0;
  double latency_millis = 0;

  /// Human-readable rendering for examples and debugging.
  std::string ToString() const;
};

/// Broker-side reduce: finalizes a merged PartialResult into the client
/// response (computes avg/distinct-count, sorts group rows, applies TOP n /
/// LIMIT and selection ordering).
QueryResult ReduceToFinalResult(const Query& query, PartialResult&& partial);

}  // namespace pinot

#endif  // PINOT_QUERY_RESULT_H_
