#!/usr/bin/env bash
# Full local gate: the tier-1 verify build/test cycle, then a second
# configure with AddressSanitizer + UBSan (PINOT_SANITIZE=ON) and the same
# test suite under the sanitizers. Run from the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$(pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + ctest (build/) =="
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo
echo "== dumps: trace / explain / slow-query-log / metrics grammars =="
scripts/check_dumps.sh build

echo
echo "== perf smoke: bench --json emission + check_perf schema/comparator =="
# A deliberately tiny fig16 run: enough to exercise the JSON dump and the
# comparator plumbing without turning the gate into a perf benchmark. The
# committed BENCH_fig16.json (generated at exactly these smoke sizes) is
# the default baseline so every PR compares p99 against a real trajectory;
# override with CHECK_PERF_BASELINE= (empty skips the comparison).
build/bench/bench_fig16 --rows=20000 --duration-ms=120 --qps=100 \
  --json=build/BENCH_fig16_smoke.json > /dev/null
CHECK_PERF_BASELINE="${CHECK_PERF_BASELINE-BENCH_fig16.json}"
scripts/check_perf.sh ${CHECK_PERF_BASELINE:+"${CHECK_PERF_BASELINE}"} \
  build/BENCH_fig16_smoke.json
# fig11 smoke: the indexing-technique engines at one qps point plus the
# broker saturation phase (which also prints the exit health reports).
# The broker phase deliberately sweeps past the knee, so its saturated
# points are noisy — compare with looser thresholds than the default
# 2x/5ms so the gate only trips on order-of-magnitude collapses.
build/bench/bench_fig11 --rows=20000 --duration-ms=120 --qps=100 \
  --json=build/BENCH_fig11_smoke.json > /dev/null
CHECK_PERF_FIG11_BASELINE="${CHECK_PERF_FIG11_BASELINE-BENCH_fig11.json}"
CHECK_PERF_RATIO="${CHECK_PERF_FIG11_RATIO:-4.0}" \
CHECK_PERF_SLACK_MS="${CHECK_PERF_FIG11_SLACK_MS:-50.0}" \
scripts/check_perf.sh ${CHECK_PERF_FIG11_BASELINE:+"${CHECK_PERF_FIG11_BASELINE}"} \
  build/BENCH_fig11_smoke.json
# Scan-kernel and group-by-sweep curves at reduced size: gates the JSON
# grammar per PR (full-size runs populate EXPERIMENTS.md). The sweep's
# built-in checksum abort also re-proves radix == legacy here.
build/bench/bench_scan_batch --rows=50000 \
  --json=build/BENCH_scan_batch_smoke.json > /dev/null
scripts/check_perf.sh ${CHECK_PERF_SCAN_BASELINE:+"${CHECK_PERF_SCAN_BASELINE}"} \
  build/BENCH_scan_batch_smoke.json
build/bench/bench_groupby_sweep --rows=100000 \
  --json=build/BENCH_groupby_smoke.json > /dev/null
scripts/check_perf.sh ${CHECK_PERF_GROUPBY_BASELINE:+"${CHECK_PERF_GROUPBY_BASELINE}"} \
  build/BENCH_groupby_smoke.json
# Filter-operator ablation at reduced size: exercises the container-pair
# bitmap kernels and the cost-based planner on all four paths; its built-in
# cardinality abort re-proves sorted == bitmap == scan == cost-based here.
build/bench/bench_ablation_sorted_vs_bitmap --rows=30000 \
  --json=build/BENCH_filter_smoke.json > /dev/null
scripts/check_perf.sh ${CHECK_PERF_FILTER_BASELINE:+"${CHECK_PERF_FILTER_BASELINE}"} \
  build/BENCH_filter_smoke.json

echo
echo "== sanitizers: ASan+UBSan configure + build + ctest (build-asan/) =="
cmake -B build-asan -S . -DPINOT_SANITIZE=ON
cmake --build build-asan -j "${JOBS}"
(cd build-asan && ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --output-on-failure -j "${JOBS}")

echo
echo "== sanitizers: concurrency regression loop (ingest-while-query," \
     "quota reconfigure-during-admit, concurrent metrics, radix group-by) =="
# Repeat the tests with real thread interleavings a few times under the
# sanitizer build so rare schedules still get a chance to corrupt memory
# loudly (MutableSegment reader/writer race, TenantQuotaManager UAF, the
# ~64k-group radix-vs-legacy equivalence sweep with tree-wise merges, and
# Dump()/snapshot-taking racing registration + observation churn).
(cd build-asan && ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --output-on-failure \
  -R 'mutable_segment_test|token_bucket_test|metrics_test|snapshot_test|health_test|groupby_radix_test|filter_fuzz_test|upsert_fuzz_test' \
  --repeat until-fail:3)

echo
echo "All checks passed in ${ROOT}."
