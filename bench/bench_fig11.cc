// Figure 11: comparison of indexing techniques on the anomaly-detection
// dataset — latency vs query rate for Druid(-like), Pinot without indexes,
// Pinot with inverted indexes, and Pinot with the star-tree index.
//
// Expected shape (paper): druid-like and no-index saturate first, inverted
// indexes roughly double Pinot's scalability, and the star-tree gives the
// largest gain.

#include <chrono>

#include "baseline/druid_like.h"
#include "bench/bench_util.h"
#include "metrics/metrics.h"
#include "query/result.h"
#include "trace/slow_query_log.h"
#include "trace/trace.h"

namespace pinot {
namespace bench {
namespace {

struct Engine {
  std::string name;
  std::vector<std::shared_ptr<SegmentInterface>> segments;
};

uint64_t TotalBytes(const Engine& engine) {
  uint64_t total = 0;
  for (const auto& segment : engine.segments) {
    auto immutable = std::dynamic_pointer_cast<const ImmutableSegment>(segment);
    if (immutable != nullptr) total += immutable->SizeInBytes();
  }
  return total;
}

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  Workload workload = MakeAnomalyWorkload(options.workload_options());
  std::vector<Query> queries = ParseQueries(workload);

  std::vector<Engine> engines;
  engines.push_back({"druid-like",
                     BuildSegments(workload, DruidLikeBuildConfig(workload.schema),
                                   options.num_segments, "druid")});
  engines.push_back({"pinot-no-index",
                     BuildSegments(workload, SegmentBuildConfig{},
                                   options.num_segments, "noidx")});
  SegmentBuildConfig inverted_only = workload.pinot_config;
  inverted_only.star_tree = StarTreeConfig{};
  engines.push_back({"pinot-inverted",
                     BuildSegments(workload, inverted_only,
                                   options.num_segments, "inv")});
  engines.push_back({"pinot-star-tree",
                     BuildSegments(workload, workload.pinot_config,
                                   options.num_segments, "star")});

  std::printf("# dataset: %u rows, %d segments, %zu sampled queries\n",
              options.rows, options.num_segments, queries.size());
  for (const auto& engine : engines) {
    std::printf("# %-18s segment bytes: %10lu\n", engine.name.c_str(),
                static_cast<unsigned long>(TotalBytes(engine)));
  }
  PrintQpsHeader("Figure 11",
                 "indexing techniques on the anomaly detection dataset");

  MetricsRegistry metrics;
  // Worst-3 traces across all engines and sweep points, printed at exit so
  // a saturating configuration can be attributed to a phase/segment.
  SlowQueryLog slow_log(SlowQueryLog::Options{/*threshold_millis=*/0.0,
                                              /*capacity=*/3});
  for (const auto& engine : engines) {
    Histogram* latency = metrics.GetHistogram("bench_query_latency_ms",
                                              {{"engine", engine.name}});
    for (double qps : options.qps_sweep) {
      QpsPoint point = RunQpsPoint(
          [&](int i) {
            const auto start = std::chrono::steady_clock::now();
            TraceSpan root = TraceSpan::Open("bench:" + engine.name);
            PartialResult partial =
                ExecuteQueryOnSegments(engine.segments, queries[i],
                                       /*pool=*/nullptr, &root);
            QueryResult result =
                ReduceToFinalResult(queries[i], std::move(partial));
            (void)result;
            root.Close();
            const double millis =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count() /
                1000.0;
            latency->Observe(millis);
            slow_log.Record(millis, engine.name + ": " + queries[i].ToString(),
                            root);
          },
          static_cast<int>(queries.size()), qps, options.client_threads,
          options.duration_ms);
      PrintQpsPoint(engine.name, point);
      // Stop sweeping a config once it is hopelessly saturated; the paper
      // plots cut off the same way.
      if (point.avg_ms > 250) break;
    }
  }
  std::printf("\n# --- slow query log (top 3) ---\n%s",
              slow_log.Dump(3).c_str());
  std::printf("\n# --- metrics dump ---\n%s", metrics.Dump().c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pinot

int main(int argc, char** argv) { return pinot::bench::Main(argc, argv); }
