// Realtime ingestion walkthrough: an in-process Pinot cluster consuming
// from a Kafka-like stream with three replicas. Demonstrates (paper
// section 3.3.6):
//   - events queryable seconds after production (from consuming segments),
//   - the segment completion protocol converging all replicas onto
//     identical committed segments,
//   - segment rollover (a new consuming segment opens at the committed
//     offset).

#include <cstdio>

#include "cluster/pinot_cluster.h"

using namespace pinot;

int main() {
  SimulatedClock clock(0);
  PinotClusterOptions options;
  options.clock = &clock;
  options.num_servers = 3;
  options.controller_options.completion_max_wait_millis = 0;
  PinotCluster cluster(options);

  StreamTopic* topic = cluster.streams()->GetOrCreateTopic("events", 2);

  auto schema = Schema::Make({
      FieldSpec::Dimension("memberId", DataType::kLong),
      FieldSpec::Dimension("action", DataType::kString),
      FieldSpec::Metric("count", DataType::kLong),
      FieldSpec::Time("ts", DataType::kLong),
  });

  TableConfig config;
  config.name = "events";
  config.type = TableType::kRealtime;
  config.schema = *schema;
  config.num_replicas = 3;
  config.realtime.topic = "events";
  config.realtime.num_partitions = 2;
  config.realtime.flush_threshold_rows = 50;  // Commit every 50 rows.
  config.realtime.flush_threshold_millis = 1LL << 40;

  Controller* leader = cluster.leader_controller();
  Status st = leader->AddTable(config);
  if (!st.ok()) {
    std::fprintf(stderr, "AddTable: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("created realtime table; consuming segments per partition:\n");
  for (const auto& [segment, states] :
       cluster.cluster_manager()->GetExternalView("events_REALTIME")) {
    std::printf("  %s on %zu replicas\n", segment.c_str(), states.size());
  }

  // Produce 120 events keyed by member id (same key -> same partition).
  for (int i = 0; i < 120; ++i) {
    Row row;
    row.SetLong("memberId", i % 17)
        .SetString("action", i % 3 == 0 ? "view" : "click")
        .SetLong("count", 1)
        .SetLong("ts", 1000 + i);
    topic->Produce(std::to_string(i % 17), row);
  }

  // A couple of consumption ticks make fresh events queryable before any
  // segment has committed.
  cluster.ProcessRealtimeTicks(1);
  auto result = cluster.Execute("SELECT count(*) FROM events");
  std::printf("\nafter first tick (data still in consuming segments):\n%s\n",
              result.ToString().c_str());

  // Drain: segments hit the 50-row flush threshold, replicas run the
  // completion protocol (HOLD/CATCHUP/COMMIT), and committed segments roll
  // over.
  cluster.DrainRealtime();

  std::printf("\nafter drain, segment states:\n");
  int committed = 0;
  for (const auto& [segment, states] :
       cluster.cluster_manager()->GetExternalView("events_REALTIME")) {
    const char* state_name =
        SegmentStateToString(states.begin()->second);
    std::printf("  %-28s %-10s (%zu replicas)\n", segment.c_str(), state_name,
                states.size());
    if (states.begin()->second == SegmentState::kOnline) ++committed;
  }
  std::printf("committed segments in object store: %zu blobs\n",
              cluster.object_store()->object_count());

  result = cluster.Execute(
      "SELECT count(*), sum(count) FROM events WHERE action = 'view'");
  std::printf("\nviews: %s\n", result.ToString().c_str());
  result = cluster.Execute(
      "SELECT count(*) FROM events GROUP BY action TOP 5");
  std::printf("\nby action:\n%s\n", result.ToString().c_str());

  // Kill one replica: the other two keep serving.
  cluster.KillServer(0);
  result = cluster.Execute("SELECT count(*) FROM events");
  std::printf("\nwith one server down: %s\n", result.ToString().c_str());
  return 0;
}
