# Empty compiler generated dependencies file for property_store_test.
# This may be replaced when dependencies are built.
