#include "query/filter_evaluator.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using test::BuildAnalyticsSegment;

Predicate Eq(const std::string& column, Value v) {
  Predicate pred;
  pred.column = column;
  pred.op = PredicateOp::kEq;
  pred.values.push_back(std::move(v));
  return pred;
}

TEST(DictIdMatchTest, EqOnSortedDictionary) {
  Dictionary dict = Dictionary::BuildSortedInt64({10, 20, 30});
  DictIdMatch match = MatchDictIds(dict, Eq("c", int64_t{20}));
  EXPECT_TRUE(match.contiguous);
  EXPECT_EQ(match.lo, 1);
  EXPECT_EQ(match.hi, 1);
  EXPECT_TRUE(match.Matches(1));
  EXPECT_FALSE(match.Matches(0));

  EXPECT_TRUE(MatchDictIds(dict, Eq("c", int64_t{25})).match_none);
}

TEST(DictIdMatchTest, NotEqBecomesNegatedList) {
  Dictionary dict = Dictionary::BuildSortedInt64({10, 20, 30});
  Predicate pred = Eq("c", int64_t{20});
  pred.op = PredicateOp::kNotEq;
  DictIdMatch match = MatchDictIds(dict, pred);
  EXPECT_TRUE(match.negated);
  EXPECT_TRUE(match.Matches(0));
  EXPECT_FALSE(match.Matches(1));
  // NotEq of an absent value matches everything.
  pred.values[0] = int64_t{99};
  EXPECT_TRUE(MatchDictIds(dict, pred).match_all);
}

TEST(DictIdMatchTest, ConsecutiveInBecomesContiguous) {
  Dictionary dict = Dictionary::BuildSortedInt64({10, 20, 30, 40});
  Predicate pred;
  pred.column = "c";
  pred.op = PredicateOp::kIn;
  pred.values = {Value{int64_t{20}}, Value{int64_t{30}}};
  DictIdMatch match = MatchDictIds(dict, pred);
  EXPECT_TRUE(match.contiguous);
  EXPECT_EQ(match.lo, 1);
  EXPECT_EQ(match.hi, 2);
  // Non-consecutive stays a list.
  pred.values = {Value{int64_t{10}}, Value{int64_t{40}}};
  match = MatchDictIds(dict, pred);
  EXPECT_FALSE(match.contiguous);
  EXPECT_EQ(match.ids, (std::vector<uint32_t>{0, 3}));
  // Full coverage -> match_all.
  pred.values = {Value{int64_t{10}}, Value{int64_t{20}}, Value{int64_t{30}},
                 Value{int64_t{40}}};
  EXPECT_TRUE(MatchDictIds(dict, pred).match_all);
}

TEST(DictIdMatchTest, RangeOnUnsortedDictionaryScans) {
  Dictionary dict = Dictionary::CreateMutable(DataType::kLong);
  dict.GetOrAdd(Value{int64_t{30}});  // id 0
  dict.GetOrAdd(Value{int64_t{10}});  // id 1
  dict.GetOrAdd(Value{int64_t{20}});  // id 2
  Predicate pred;
  pred.column = "c";
  pred.op = PredicateOp::kRange;
  pred.lower = int64_t{15};
  pred.lower_inclusive = true;
  DictIdMatch match = MatchDictIds(dict, pred);
  EXPECT_FALSE(match.contiguous);
  EXPECT_EQ(match.ids, (std::vector<uint32_t>{0, 2}));
}

TEST(PredicateMatchesValueTest, ScalarSemantics) {
  EXPECT_TRUE(PredicateMatchesValue(Eq("c", int64_t{5}), Value{int64_t{5}}));
  EXPECT_FALSE(PredicateMatchesValue(Eq("c", int64_t{5}), Value{int64_t{6}}));
  EXPECT_TRUE(PredicateMatchesValue(Eq("c", std::string("x")),
                                    Value{std::string("x")}));
  Predicate range;
  range.column = "c";
  range.op = PredicateOp::kRange;
  range.lower = int64_t{3};
  range.lower_inclusive = false;
  range.upper = int64_t{7};
  range.upper_inclusive = true;
  EXPECT_FALSE(PredicateMatchesValue(range, Value{int64_t{3}}));
  EXPECT_TRUE(PredicateMatchesValue(range, Value{int64_t{4}}));
  EXPECT_TRUE(PredicateMatchesValue(range, Value{int64_t{7}}));
  EXPECT_FALSE(PredicateMatchesValue(range, Value{int64_t{8}}));
}

TEST(PredicateMatchesValueTest, MultiValueSemantics) {
  const Value tags = std::vector<std::string>{"a", "b"};
  EXPECT_TRUE(PredicateMatchesValue(Eq("c", std::string("a")), tags));
  EXPECT_FALSE(PredicateMatchesValue(Eq("c", std::string("z")), tags));
  // Negation is document-level: any excluded entry disqualifies the doc.
  Predicate neq_pred = Eq("c", std::string("a"));
  neq_pred.op = PredicateOp::kNotEq;
  EXPECT_FALSE(PredicateMatchesValue(neq_pred, tags));
  neq_pred.values[0] = std::string("z");
  EXPECT_TRUE(PredicateMatchesValue(neq_pred, tags));
  // Empty arrays vacuously satisfy negated predicates and fail positives.
  const Value empty = std::vector<std::string>{};
  EXPECT_FALSE(PredicateMatchesValue(Eq("c", std::string("a")), empty));
  EXPECT_TRUE(PredicateMatchesValue(neq_pred, empty));
}

TEST(FilterEvaluatorTest, StrategySelection) {
  SegmentBuildConfig config;
  config.sort_columns = {"memberId"};
  config.inverted_index_columns = {"browser"};
  auto segment = BuildAnalyticsSegment(config);
  FilterEvaluator evaluator(*segment, nullptr);

  EXPECT_EQ(evaluator.ClassifyLeaf(Eq("memberId", int64_t{1})),
            FilterEvaluator::LeafStrategy::kSortedRange);
  EXPECT_EQ(evaluator.ClassifyLeaf(Eq("browser", std::string("firefox"))),
            FilterEvaluator::LeafStrategy::kInverted);
  EXPECT_EQ(evaluator.ClassifyLeaf(Eq("country", std::string("us"))),
            FilterEvaluator::LeafStrategy::kScan);
  // Value absent from the segment: constant false.
  EXPECT_EQ(evaluator.ClassifyLeaf(Eq("memberId", int64_t{999})),
            FilterEvaluator::LeafStrategy::kConstant);
}

TEST(FilterEvaluatorTest, SortedRangeProducesRangeDocIdSet) {
  SegmentBuildConfig config;
  config.sort_columns = {"memberId"};
  auto segment = BuildAnalyticsSegment(config);
  auto query = ParsePql("SELECT count(*) FROM t WHERE memberId <= 2");
  FilterEvaluator evaluator(*segment, nullptr);
  auto docs = evaluator.Evaluate(query->filter);
  ASSERT_TRUE(docs.ok());
  EXPECT_TRUE(docs->IsRangeLike());
  EXPECT_EQ(docs->Cardinality(), 6u);  // memberId 1 (4 rows) + 2 (2 rows).
  EXPECT_EQ(docs->range_begin(), 0u);
}

TEST(FilterEvaluatorTest, AndPushdownRestrictsScanWork) {
  SegmentBuildConfig config;
  config.sort_columns = {"memberId"};
  auto segment = BuildAnalyticsSegment(config);
  auto query = ParsePql(
      "SELECT count(*) FROM t WHERE country = 'us' AND memberId = 1");
  ExecutionStats stats;
  FilterEvaluator evaluator(*segment, &stats);
  auto docs = evaluator.Evaluate(query->filter);
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->Cardinality(), 2u);  // us rows with memberId 1.
  // The country scan ran only within the memberId range (4 docs), not the
  // full 12-doc segment.
  EXPECT_EQ(stats.docs_scanned, 4u);

  // Without reordering, the scan runs first over the whole segment.
  ExecutionStats stats_no_reorder;
  FilterEvaluator no_reorder(*segment, &stats_no_reorder);
  no_reorder.set_reorder_predicates(false);
  auto docs2 = no_reorder.Evaluate(query->filter);
  ASSERT_TRUE(docs2.ok());
  EXPECT_EQ(docs2->Cardinality(), 2u);
  EXPECT_EQ(stats_no_reorder.docs_scanned, 12u);
}

TEST(FilterEvaluatorTest, EmptyAndShortCircuits) {
  auto segment = BuildAnalyticsSegment();
  auto query = ParsePql(
      "SELECT count(*) FROM t WHERE country = 'nope' AND browser = "
      "'firefox'");
  ExecutionStats stats;
  FilterEvaluator evaluator(*segment, &stats);
  auto docs = evaluator.Evaluate(query->filter);
  ASSERT_TRUE(docs.ok());
  EXPECT_TRUE(docs->IsEmpty());
  // The firefox scan never ran: the constant-false predicate emptied the
  // domain first.
  EXPECT_EQ(stats.docs_scanned, 0u);
}

TEST(FilterEvaluatorTest, CompositeCostRecursesForOrdering) {
  SegmentBuildConfig config;
  config.sort_columns = {"memberId"};
  config.inverted_index_columns = {"browser"};
  auto segment = BuildAnalyticsSegment(config);
  auto query = ParsePql(
      "SELECT count(*) FROM t WHERE browser = 'firefox' AND (memberId <= 2 "
      "OR memberId = 5)");
  ASSERT_TRUE(query.ok());
  FilterEvaluator evaluator(*segment, nullptr);

  // An OR of two sorted ranges must cost less than the inverted-bitmap
  // leaf. Regression: composites used to get a flat constant that ranked
  // them *after* index leaves regardless of their children.
  const FilterNode& root = *query->filter;
  ASSERT_EQ(root.children.size(), 2u);
  ASSERT_EQ(root.children[0].kind, FilterNode::Kind::kLeaf);  // browser.
  ASSERT_EQ(root.children[1].kind, FilterNode::Kind::kOr);
  EXPECT_LT(evaluator.EstimateCost(root.children[1]),
            evaluator.EstimateCost(root.children[0]));

  // Evaluation order, observed through the per-leaf op labels: both
  // sorted-range OR leaves evaluate before the browser leaf.
  TraceSpan span = TraceSpan::Open("filter");
  evaluator.set_trace_span(&span);
  auto docs = evaluator.Evaluate(query->filter);
  ASSERT_TRUE(docs.ok());
  std::vector<std::string> op_keys;
  for (const auto& [key, value] : span.labels) {
    if (key.rfind("op:", 0) == 0) op_keys.push_back(key);
  }
  ASSERT_EQ(op_keys.size(), 3u);
  EXPECT_EQ(op_keys[0], "op:memberId");
  EXPECT_EQ(op_keys[1], "op:memberId");
  EXPECT_EQ(op_keys[2], "op:browser");
  // firefox rows with memberId <= 2 or memberId = 5.
  EXPECT_EQ(docs->Cardinality(), 3u);
}

TEST(FilterEvaluatorTest, CostBasedPrefersScanUnderNarrowDomain) {
  SegmentBuildConfig config;
  config.sort_columns = {"memberId"};
  config.inverted_index_columns = {"browser"};
  auto segment = BuildAnalyticsSegment(config);
  // memberId = 1 narrows the domain to 4 docs; scanning those beats
  // unioning two posting lists (9 docs + per-list overhead).
  auto query = ParsePql(
      "SELECT count(*) FROM t WHERE browser IN ('chrome', 'firefox') AND "
      "memberId = 1");
  ASSERT_TRUE(query.ok());

  ExecutionStats stats;
  FilterEvaluator evaluator(*segment, &stats);
  TraceSpan span = TraceSpan::Open("filter");
  evaluator.set_trace_span(&span);
  auto docs = evaluator.Evaluate(query->filter);
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(span.LabelValue("op:browser"), "scan");
  EXPECT_EQ(stats.docs_scanned, 4u);

  // Legacy mode takes the index unconditionally; results are identical.
  FilterEvaluator legacy(*segment, nullptr);
  legacy.set_planner_mode(FilterEvaluator::PlannerMode::kPreferIndex);
  TraceSpan legacy_span = TraceSpan::Open("filter");
  legacy.set_trace_span(&legacy_span);
  auto legacy_docs = legacy.Evaluate(query->filter);
  ASSERT_TRUE(legacy_docs.ok());
  EXPECT_EQ(legacy_span.LabelValue("op:browser"), "inverted");
  EXPECT_EQ(legacy_docs->ToBitmap().ToVector(), docs->ToBitmap().ToVector());
}

// A column whose forward index hands out a dict id past the dictionary's
// cardinality snapshot (corrupt index, or a dictionary that grew after the
// mask was sized).
class OversizedIdColumn : public ColumnReader {
 public:
  explicit OversizedIdColumn(bool single_value)
      : spec_(FieldSpec::Dimension("c", DataType::kString, single_value)),
        dict_(Dictionary::CreateMutable(DataType::kString)) {
    dict_.GetOrAdd(Value{std::string("a")});  // id 0
    dict_.GetOrAdd(Value{std::string("b")});  // id 1
    stats_.cardinality = 2;
    stats_.total_entries = 4;
  }

  const FieldSpec& spec() const override { return spec_; }
  const Dictionary& dictionary() const override { return dict_; }
  const ColumnStats& stats() const override { return stats_; }
  uint32_t GetDictId(uint32_t doc) const override { return kIds[doc]; }
  void GetDictIds(uint32_t doc, std::vector<uint32_t>* out) const override {
    out->clear();
    out->push_back(kIds[doc]);
  }
  const InvertedIndex* inverted_index() const override { return nullptr; }
  const SortedIndex* sorted_index() const override { return nullptr; }

 private:
  // Doc 2 carries id 7, far past the 2-entry dictionary.
  static constexpr uint32_t kIds[4] = {0, 1, 7, 0};
  FieldSpec spec_;
  Dictionary dict_;
  ColumnStats stats_;
};

class OversizedIdSegment : public SegmentInterface {
 public:
  explicit OversizedIdSegment(bool single_value) : column_(single_value) {
    auto schema = Schema::Make(
        {FieldSpec::Dimension("c", DataType::kString, single_value)});
    EXPECT_TRUE(schema.ok());
    schema_ = std::make_unique<Schema>(*schema);
  }
  const Schema& schema() const override { return *schema_; }
  uint32_t num_docs() const override { return 4; }
  const SegmentMetadata& metadata() const override { return metadata_; }
  const ColumnReader* GetColumn(const std::string& name) const override {
    return name == "c" ? &column_ : nullptr;
  }

 private:
  std::unique_ptr<Schema> schema_;
  SegmentMetadata metadata_;
  OversizedIdColumn column_;
};

TEST(FilterEvaluatorTest, ScanBoundsChecksOversizedDictIds) {
  for (const bool single_value : {true, false}) {
    SCOPED_TRACE(single_value ? "single-value" : "multi-value");
    OversizedIdSegment segment(single_value);
    FilterEvaluator evaluator(segment, nullptr);

    // Positive predicate: the out-of-range id matches nothing.
    auto eq = evaluator.Evaluate(FilterNode::Leaf(Eq("c", std::string("a"))));
    ASSERT_TRUE(eq.ok());
    EXPECT_EQ(eq->ToBitmap().ToVector(), (std::vector<uint32_t>{0, 3}));

    // Negated predicate: a value the dictionary never saw cannot be the
    // excluded one, so the doc matches.
    Predicate neq = Eq("c", std::string("a"));
    neq.op = PredicateOp::kNotEq;
    auto ne = evaluator.Evaluate(FilterNode::Leaf(neq));
    ASSERT_TRUE(ne.ok());
    EXPECT_EQ(ne->ToBitmap().ToVector(), (std::vector<uint32_t>{1, 2}));
  }
}

TEST(FilterEvaluatorTest, MultiValueEmptyRowsNotConstantFolded) {
  // Docs 2 and 7 of the analytics fixture have an empty `tags` array. A
  // positive predicate that matches every dictionary id must still skip
  // them, and a negated predicate that excludes every id must still accept
  // them. Regression: both cases used to constant-fold at the dictionary
  // level (match_all / match_none) and get the empty rows wrong.
  auto segment = BuildAnalyticsSegment();
  FilterEvaluator evaluator(*segment, nullptr);

  Predicate all_tags;
  all_tags.column = "tags";
  all_tags.op = PredicateOp::kIn;
  all_tags.values = {Value{std::string("a")}, Value{std::string("b")},
                     Value{std::string("c")}, Value{std::string("d")}};
  auto in_docs = evaluator.Evaluate(FilterNode::Leaf(all_tags));
  ASSERT_TRUE(in_docs.ok());
  EXPECT_EQ(in_docs->ToBitmap().ToVector(),
            (std::vector<uint32_t>{0, 1, 3, 4, 5, 6, 8, 9, 10, 11}));

  all_tags.op = PredicateOp::kNotIn;
  auto not_in_docs = evaluator.Evaluate(FilterNode::Leaf(all_tags));
  ASSERT_TRUE(not_in_docs.ok());
  EXPECT_EQ(not_in_docs->ToBitmap().ToVector(),
            (std::vector<uint32_t>{2, 7}));

  // NotEq of an absent value is a correct match-all even for empty rows.
  Predicate neq_absent = Eq("tags", std::string("zz"));
  neq_absent.op = PredicateOp::kNotEq;
  auto all_docs = evaluator.Evaluate(FilterNode::Leaf(neq_absent));
  ASSERT_TRUE(all_docs.ok());
  EXPECT_EQ(all_docs->Cardinality(), 12u);
}

TEST(FilterEvaluatorTest, NestedOrInsideAnd) {
  auto segment = BuildAnalyticsSegment();
  auto query = ParsePql(
      "SELECT count(*) FROM t WHERE (browser = 'firefox' OR browser = "
      "'safari') AND country = 'us'");
  FilterEvaluator evaluator(*segment, nullptr);
  auto docs = evaluator.Evaluate(query->filter);
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->Cardinality(), 4u);  // us rows: firefox x3 + safari x1.
}

}  // namespace
}  // namespace pinot
