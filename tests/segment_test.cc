#include "segment/segment.h"

#include <gtest/gtest.h>

#include "segment/segment_builder.h"
#include "startree/star_tree.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using test::AnalyticsRows;
using test::AnalyticsSchema;
using test::BuildAnalyticsSegment;

TEST(SegmentBuilderTest, BasicBuild) {
  auto segment = BuildAnalyticsSegment();
  EXPECT_EQ(segment->num_docs(), 12u);
  EXPECT_EQ(segment->metadata().table_name, "analytics");
  EXPECT_EQ(segment->metadata().min_time, 100);
  EXPECT_EQ(segment->metadata().max_time, 103);

  const ColumnReader* country = segment->GetColumn("country");
  ASSERT_NE(country, nullptr);
  EXPECT_EQ(country->stats().cardinality, 4);  // us, ca, de, fr
  EXPECT_EQ(std::get<std::string>(country->stats().min_value), "ca");
  EXPECT_EQ(std::get<std::string>(country->stats().max_value), "us");
  EXPECT_EQ(country->inverted_index(), nullptr);
  EXPECT_EQ(country->sorted_index(), nullptr);
}

TEST(SegmentBuilderTest, SortColumnProducesSortedIndex) {
  SegmentBuildConfig config;
  config.sort_columns = {"memberId"};
  auto segment = BuildAnalyticsSegment(config);
  const ColumnReader* member = segment->GetColumn("memberId");
  ASSERT_NE(member, nullptr);
  EXPECT_TRUE(member->stats().is_sorted);
  ASSERT_NE(member->sorted_index(), nullptr);
  EXPECT_EQ(segment->metadata().sorted_column, "memberId");

  // memberId 1 appears 4 times; docs must be contiguous at the front.
  uint32_t begin, end;
  const int id1 = member->dictionary().IndexOfInt64(1);
  member->sorted_index()->GetDocRange(id1, &begin, &end);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 4u);
  for (uint32_t doc = 0; doc + 1 < segment->num_docs(); ++doc) {
    EXPECT_LE(member->GetDictId(doc), member->GetDictId(doc + 1));
  }
}

TEST(SegmentBuilderTest, SecondarySortColumn) {
  SegmentBuildConfig config;
  config.sort_columns = {"memberId", "day"};
  auto segment = BuildAnalyticsSegment(config);
  const ColumnReader* member = segment->GetColumn("memberId");
  const ColumnReader* day = segment->GetColumn("day");
  // Within each memberId run, day is non-decreasing.
  for (uint32_t doc = 1; doc < segment->num_docs(); ++doc) {
    if (member->GetDictId(doc) == member->GetDictId(doc - 1)) {
      EXPECT_LE(day->GetDictId(doc - 1), day->GetDictId(doc));
    }
  }
}

TEST(SegmentBuilderTest, InvertedIndexColumns) {
  SegmentBuildConfig config;
  config.inverted_index_columns = {"browser", "tags"};
  auto segment = BuildAnalyticsSegment(config);
  const ColumnReader* browser = segment->GetColumn("browser");
  ASSERT_NE(browser->inverted_index(), nullptr);
  const int firefox = browser->dictionary().IndexOfString("firefox");
  ASSERT_GE(firefox, 0);
  EXPECT_EQ(browser->inverted_index()->GetBitmap(firefox).Cardinality(), 5u);

  // Multi-value inverted index: tag "a" appears in 5 rows.
  const ColumnReader* tags = segment->GetColumn("tags");
  ASSERT_NE(tags->inverted_index(), nullptr);
  const int tag_a = tags->dictionary().IndexOfString("a");
  EXPECT_EQ(tags->inverted_index()->GetBitmap(tag_a).Cardinality(), 5u);
}

TEST(SegmentBuilderTest, MissingFieldsTakeDefaults) {
  SegmentBuildConfig config;
  config.table_name = "t";
  config.segment_name = "s";
  SegmentBuilder builder(AnalyticsSchema(), config);
  Row row;  // Entirely empty.
  ASSERT_TRUE(builder.AddRow(row).ok());
  auto segment = builder.Build();
  ASSERT_TRUE(segment.ok());
  const ColumnReader* country = (*segment)->GetColumn("country");
  EXPECT_EQ(std::get<std::string>(
                country->dictionary().ValueAt(country->GetDictId(0))),
            "");
}

TEST(SegmentBuilderTest, ArityMismatchRejected) {
  SegmentBuildConfig config;
  config.table_name = "t";
  config.segment_name = "s";
  SegmentBuilder builder(AnalyticsSchema(), config);
  Row row;
  row.SetString("tags", "not-an-array");
  EXPECT_FALSE(builder.AddRow(row).ok());
  Row row2;
  row2.SetStringArray("country", {"x"});
  EXPECT_FALSE(builder.AddRow(row2).ok());
}

TEST(SegmentBuilderTest, UnknownSortColumnRejected) {
  SegmentBuildConfig config;
  config.table_name = "t";
  config.segment_name = "s";
  config.sort_columns = {"nope"};
  SegmentBuilder builder(AnalyticsSchema(), config);
  ASSERT_TRUE(builder.AddRow(test::ToRow(AnalyticsRows()[0])).ok());
  EXPECT_FALSE(builder.Build().ok());
}

TEST(SegmentTest, CreateInvertedIndexOnDemand) {
  auto segment = BuildAnalyticsSegment();
  EXPECT_EQ(segment->GetColumn("browser")->inverted_index(), nullptr);
  ASSERT_TRUE(segment->CreateInvertedIndex("browser").ok());
  ASSERT_NE(segment->GetColumn("browser")->inverted_index(), nullptr);
  // Idempotent.
  ASSERT_TRUE(segment->CreateInvertedIndex("browser").ok());
  EXPECT_FALSE(segment->CreateInvertedIndex("nope").ok());
}

TEST(SegmentTest, AddDefaultColumnForSchemaEvolution) {
  auto segment = BuildAnalyticsSegment();
  FieldSpec new_column = FieldSpec::Dimension("platform", DataType::kString);
  new_column.default_value = std::string("web");
  ASSERT_TRUE(segment->AddDefaultColumn(new_column).ok());
  const ColumnReader* platform = segment->GetColumn("platform");
  ASSERT_NE(platform, nullptr);
  EXPECT_EQ(platform->stats().cardinality, 1);
  for (uint32_t doc = 0; doc < segment->num_docs(); ++doc) {
    EXPECT_EQ(std::get<std::string>(
                  platform->dictionary().ValueAt(platform->GetDictId(doc))),
              "web");
  }
  // Re-adding fails.
  EXPECT_FALSE(segment->AddDefaultColumn(new_column).ok());
}

TEST(SegmentTest, SerializeRoundTrip) {
  SegmentBuildConfig config;
  config.sort_columns = {"memberId"};
  config.inverted_index_columns = {"browser"};
  config.star_tree.dimensions = {"country", "browser"};
  config.star_tree.metrics = {"impressions"};
  config.star_tree.max_leaf_records = 1;
  auto segment = BuildAnalyticsSegment(config);
  ASSERT_NE(segment->star_tree(), nullptr);

  const std::string blob = segment->SerializeToBlob();
  auto restored = ImmutableSegment::DeserializeFromBlob(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->num_docs(), segment->num_docs());
  EXPECT_EQ((*restored)->metadata().segment_name, "analytics_0");
  EXPECT_EQ((*restored)->metadata().sorted_column, "memberId");
  EXPECT_NE((*restored)->GetColumn("browser")->inverted_index(), nullptr);
  EXPECT_NE((*restored)->GetColumn("memberId")->sorted_index(), nullptr);
  ASSERT_NE((*restored)->star_tree(), nullptr);
  EXPECT_EQ((*restored)->star_tree()->num_records(),
            segment->star_tree()->num_records());

  // Every value in every column survives the round trip.
  for (const auto& field : segment->schema().fields()) {
    const ColumnReader* a = segment->GetColumn(field.name);
    const ColumnReader* b = (*restored)->GetColumn(field.name);
    ASSERT_NE(b, nullptr);
    std::vector<uint32_t> ia, ib;
    for (uint32_t doc = 0; doc < segment->num_docs(); ++doc) {
      if (field.single_value) {
        EXPECT_EQ(ValueToString(a->dictionary().ValueAt(a->GetDictId(doc))),
                  ValueToString(b->dictionary().ValueAt(b->GetDictId(doc))));
      } else {
        a->GetDictIds(doc, &ia);
        b->GetDictIds(doc, &ib);
        ASSERT_EQ(ia.size(), ib.size());
        for (size_t i = 0; i < ia.size(); ++i) {
          EXPECT_EQ(ValueToString(a->dictionary().ValueAt(ia[i])),
                    ValueToString(b->dictionary().ValueAt(ib[i])));
        }
      }
    }
  }
}

TEST(SegmentTest, DeserializeDetectsCorruption) {
  auto segment = BuildAnalyticsSegment();
  std::string blob = segment->SerializeToBlob();
  EXPECT_FALSE(ImmutableSegment::DeserializeFromBlob("garbage").ok());
  // Flip a byte in the body -> CRC mismatch.
  blob[blob.size() / 2] ^= 0x5a;
  auto restored = ImmutableSegment::DeserializeFromBlob(blob);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(SegmentTest, PartitionMetadataPreserved) {
  SegmentBuildConfig config;
  config.partition_id = 3;
  config.partition_column = "memberId";
  config.num_partitions = 8;
  auto segment = BuildAnalyticsSegment(config);
  const std::string blob = segment->SerializeToBlob();
  auto restored = ImmutableSegment::DeserializeFromBlob(blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->metadata().partition_id, 3);
  EXPECT_EQ((*restored)->metadata().partition_column, "memberId");
  EXPECT_EQ((*restored)->metadata().num_partitions, 8);
}

}  // namespace
}  // namespace pinot
