#ifndef PINOT_SEGMENT_FORWARD_INDEX_H_
#define PINOT_SEGMENT_FORWARD_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace pinot {

/// Fixed-bit-width packed vector of unsigned integers ("bit packing of
/// values", paper section 3.1). Width is chosen from the largest stored
/// value; a width of 0 is allowed for all-zero columns (cardinality 1).
class FixedBitVector {
 public:
  FixedBitVector() = default;

  /// Packs `values`; `max_value` determines the bit width.
  FixedBitVector(const std::vector<uint32_t>& values, uint32_t max_value);

  uint32_t Get(uint32_t index) const {
    if (bits_ == 0) return 0;
    const uint64_t bit_pos = static_cast<uint64_t>(index) * bits_;
    const uint64_t word_index = bit_pos >> 6;
    const int offset = static_cast<int>(bit_pos & 63);
    uint64_t value = words_[word_index] >> offset;
    if (offset + bits_ > 64) {
      value |= words_[word_index + 1] << (64 - offset);
    }
    return static_cast<uint32_t>(value & mask_);
  }

  /// Bulk decode of `count` consecutive values starting at `start` into
  /// `out`. Equivalent to calling Get for each index but unpacks a word at
  /// a time: widths that divide 64 (1/2/4/8/16/32) never straddle a word
  /// boundary and take an unrolled fast path; other widths take a generic
  /// shift path that still avoids the per-call position multiply.
  void GetBatch(uint32_t start, uint32_t count, uint32_t* out) const;

  uint32_t size() const { return size_; }
  int bits() const { return bits_; }
  uint64_t SizeInBytes() const { return words_.size() * sizeof(uint64_t); }

  void Serialize(ByteWriter* writer) const;
  static Result<FixedBitVector> Deserialize(ByteReader* reader);

  /// Bits needed to represent `max_value` (0 for max_value == 0).
  static int BitsFor(uint32_t max_value);

 private:
  std::vector<uint64_t> words_;
  uint32_t size_ = 0;
  int bits_ = 0;
  uint64_t mask_ = 0;
};

/// Dictionary-id forward index for one column of an immutable segment.
/// Single-value columns store one packed id per document; multi-value
/// columns store a packed offsets array plus a packed flattened id array.
class ForwardIndex {
 public:
  ForwardIndex() = default;

  static ForwardIndex BuildSingle(const std::vector<uint32_t>& dict_ids,
                                  uint32_t cardinality);
  static ForwardIndex BuildMulti(
      const std::vector<std::vector<uint32_t>>& dict_ids, uint32_t cardinality);

  bool single_value() const { return single_value_; }
  uint32_t num_docs() const { return num_docs_; }

  /// Single-value: dictionary id of `doc`.
  uint32_t Get(uint32_t doc) const { return values_.Get(doc); }

  /// Single-value: bulk decode of docs [start, start + count) into `out`.
  void GetRangeSingle(uint32_t start, uint32_t count, uint32_t* out) const {
    values_.GetBatch(start, count, out);
  }

  /// Multi-value: appends the ids of `doc` to `out` (clears it first).
  void GetMulti(uint32_t doc, std::vector<uint32_t>* out) const;

  /// Multi-value: total number of (doc, value) entries.
  uint32_t TotalEntries() const { return values_.size(); }

  uint64_t SizeInBytes() const {
    return values_.SizeInBytes() + offsets_.SizeInBytes();
  }

  void Serialize(ByteWriter* writer) const;
  static Result<ForwardIndex> Deserialize(ByteReader* reader);

 private:
  bool single_value_ = true;
  uint32_t num_docs_ = 0;
  FixedBitVector values_;   // Packed dict ids (flattened for multi-value).
  FixedBitVector offsets_;  // Multi-value only: num_docs_+1 offsets.
};

}  // namespace pinot

#endif  // PINOT_SEGMENT_FORWARD_INDEX_H_
