#include "cluster/health.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <set>

#include "cluster/table_config.h"

namespace pinot {

const char* HealthStatusToString(HealthStatus status) {
  switch (status) {
    case HealthStatus::kGreen:
      return "GREEN";
    case HealthStatus::kYellow:
      return "YELLOW";
    case HealthStatus::kRed:
      return "RED";
  }
  return "?";
}

namespace {

HealthStatus Worse(HealthStatus a, HealthStatus b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

// Budget grading shared by every scalar rule. A non-positive budget
// disables the rule (always GREEN).
HealthStatus Grade(double value, double budget, double yellow_fraction) {
  if (budget <= 0) return HealthStatus::kGreen;
  if (value > budget) return HealthStatus::kRed;
  if (value > budget * yellow_fraction) return HealthStatus::kYellow;
  return HealthStatus::kGreen;
}

std::string Fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return std::string(buf);
}

// True when `series_key` belongs to family `family` and its table label
// rolls up to logical table `table`.
bool SeriesMatchesTable(const std::string& series_key,
                        const std::string& family,
                        const std::string& table) {
  if (MetricFamilyName(series_key) != family) return false;
  return LogicalTableName(MetricLabelValue(series_key, "table")) == table;
}

// Windowed count when a delta is available, lifetime count otherwise; the
// rules prefer "this window" so a long-recovered table stops paging.
uint64_t WindowedCounter(const HealthInputs& in, const std::string& name,
                         const std::string& table) {
  const std::string key =
      MetricsRegistry::SeriesKey(name, {{"table", table}});
  if (in.window != nullptr) return in.window->CounterDelta(key);
  return in.registry->CounterValue(name, {{"table", table}});
}

HealthRuleResult FreshnessRule(const HealthInputs& in,
                               const std::string& table,
                               const SloThresholds& slo) {
  HealthRuleResult r;
  r.rule = "freshness";
  double worst_lag = 0;
  bool has_series = false;
  for (const auto& [key, gauge] : in.registry->GaugeSeries()) {
    if (!SeriesMatchesTable(key, "realtime_consumption_lag", table)) continue;
    has_series = true;
    worst_lag = std::max(worst_lag, gauge->Value());
  }
  if (!has_series) {
    r.evidence = "lag_rows=0 partitions=none";
    return r;  // No realtime consumption: nothing to be stale.
  }
  r.status = Grade(worst_lag, slo.max_freshness_lag_rows, slo.yellow_fraction);
  r.evidence = Fmt("lag_rows=%.0f max=%.0f", worst_lag,
                   slo.max_freshness_lag_rows);
  return r;
}

HealthRuleResult ErrorRateRule(const HealthInputs& in,
                               const std::string& table,
                               const SloThresholds& slo) {
  HealthRuleResult r;
  r.rule = "error_rate";
  const uint64_t queries =
      WindowedCounter(in, "broker_queries_total", table);
  const uint64_t errors =
      WindowedCounter(in, "broker_partial_results_total", table);
  const double rate =
      queries > 0 ? static_cast<double>(errors) / queries : 0.0;
  if (queries > 0) {
    r.status = Grade(rate, slo.max_error_rate, slo.yellow_fraction);
  }
  r.evidence = Fmt("errors=%llu queries=%llu rate=%.3f max=%.3f",
                   static_cast<unsigned long long>(errors),
                   static_cast<unsigned long long>(queries), rate,
                   slo.max_error_rate);
  return r;
}

HealthRuleResult ShedRateRule(const HealthInputs& in,
                              const std::string& table,
                              const SloThresholds& slo) {
  HealthRuleResult r;
  r.rule = "shed_rate";
  const uint64_t queries =
      WindowedCounter(in, "broker_queries_total", table);
  const uint64_t sheds =
      WindowedCounter(in, "broker_shed_queries_total", table);
  const uint64_t offered = queries + sheds;
  const double rate =
      offered > 0 ? static_cast<double>(sheds) / offered : 0.0;
  if (offered > 0) {
    r.status = Grade(rate, slo.max_shed_rate, slo.yellow_fraction);
  }
  r.evidence = Fmt("sheds=%llu offered=%llu rate=%.3f max=%.3f",
                   static_cast<unsigned long long>(sheds),
                   static_cast<unsigned long long>(offered), rate,
                   slo.max_shed_rate);
  return r;
}

HealthRuleResult LatencyRule(const HealthInputs& in, const std::string& table,
                             const SloThresholds& slo) {
  HealthRuleResult r;
  r.rule = "p99_latency";
  const Histogram* latency =
      in.registry->FindHistogram("broker_query_latency_ms",
                                 {{"table", table}});
  if (latency == nullptr || latency->Count() == 0) {
    r.evidence = Fmt("p99_ms=0.000 budget_ms=%.1f queries=0",
                     slo.p99_latency_budget_ms);
    return r;
  }
  const double p99 = latency->Percentile(99.0);
  r.status = Grade(p99, slo.p99_latency_budget_ms, slo.yellow_fraction);
  r.evidence = Fmt("p99_ms=%.3f budget_ms=%.1f queries=%llu", p99,
                   slo.p99_latency_budget_ms,
                   static_cast<unsigned long long>(latency->Count()));
  return r;
}

HealthRuleResult ReplicaRule(const HealthInputs& in,
                             const std::string& table) {
  HealthRuleResult r;
  r.rule = "replicas";
  if (in.cluster == nullptr) {
    r.evidence = "segments=0 degraded=0 unavailable=0";
    return r;
  }
  size_t segments = 0;
  size_t degraded = 0;     // Some replica lost, but still answerable.
  size_t unavailable = 0;  // No reachable serving replica at all.
  for (const auto& physical : in.cluster->GetTables()) {
    if (LogicalTableName(physical) != table) continue;
    const TableView ideal = in.cluster->GetIdealState(physical);
    const TableView external = in.cluster->GetExternalView(physical);
    for (const auto& [segment, ideal_instances] : ideal) {
      // Count replicas the ideal state wants serving.
      size_t assigned = 0;
      for (const auto& [instance, state] : ideal_instances) {
        if (state == SegmentState::kOnline ||
            state == SegmentState::kConsuming) {
          ++assigned;
        }
      }
      if (assigned == 0) continue;  // Dropped / transitioning out.
      ++segments;
      size_t reachable = 0;
      auto it = external.find(segment);
      if (it != external.end()) {
        for (const auto& [instance, state] : it->second) {
          if ((state == SegmentState::kOnline ||
               state == SegmentState::kConsuming) &&
              in.cluster->IsInstanceReachable(instance)) {
            ++reachable;
          }
        }
      }
      if (reachable == 0) {
        ++unavailable;
      } else if (reachable < assigned) {
        ++degraded;
      }
    }
  }
  if (unavailable > 0) {
    r.status = HealthStatus::kRed;
  } else if (degraded > 0) {
    r.status = HealthStatus::kYellow;
  }
  r.evidence = Fmt("segments=%zu degraded=%zu unavailable=%zu", segments,
                   degraded, unavailable);
  return r;
}

HealthRuleResult UpsertDeadRowsRule(const HealthInputs& in,
                                    const std::string& table,
                                    const SloThresholds& slo) {
  HealthRuleResult r;
  r.rule = "upsert_dead_rows";
  uint64_t dead = 0;
  uint64_t indexed = 0;
  for (const auto& [key, counter] : in.registry->CounterSeries()) {
    if (SeriesMatchesTable(key, "server_upsert_dead_rows_total", table)) {
      dead += counter->Value();
    } else if (SeriesMatchesTable(key, "realtime_rows_indexed_total",
                                  table)) {
      indexed += counter->Value();
    }
  }
  const double fraction =
      indexed > 0 ? static_cast<double>(dead) / indexed : 0.0;
  if (indexed > 0) {
    r.status =
        Grade(fraction, slo.max_upsert_dead_fraction, slo.yellow_fraction);
  }
  r.evidence = Fmt("dead_rows=%llu indexed_rows=%llu fraction=%.3f max=%.3f",
                   static_cast<unsigned long long>(dead),
                   static_cast<unsigned long long>(indexed), fraction,
                   slo.max_upsert_dead_fraction);
  return r;
}

}  // namespace

HealthReport EvaluateHealth(const HealthInputs& inputs,
                            const SloThresholds& slo) {
  HealthReport report;
  if (inputs.registry == nullptr) return report;
  if (inputs.window != nullptr) {
    report.has_window = true;
    report.window = WindowedRates::From(*inputs.window);
  }

  // Table universe: everything the cluster manager knows plus every table
  // that left a per-table metric series behind.
  std::set<std::string> tables;
  if (inputs.cluster != nullptr) {
    for (const auto& physical : inputs.cluster->GetTables()) {
      tables.insert(LogicalTableName(physical));
    }
  }
  for (const auto& [key, counter] : inputs.registry->CounterSeries()) {
    (void)counter;
    const std::string value = MetricLabelValue(key, "table");
    if (!value.empty()) tables.insert(LogicalTableName(value));
  }
  for (const auto& [key, gauge] : inputs.registry->GaugeSeries()) {
    (void)gauge;
    const std::string value = MetricLabelValue(key, "table");
    if (!value.empty()) tables.insert(LogicalTableName(value));
  }

  for (const auto& table : tables) {
    TableHealth health;
    health.table = table;
    health.rules.push_back(FreshnessRule(inputs, table, slo));
    health.rules.push_back(ErrorRateRule(inputs, table, slo));
    health.rules.push_back(ShedRateRule(inputs, table, slo));
    health.rules.push_back(LatencyRule(inputs, table, slo));
    health.rules.push_back(ReplicaRule(inputs, table));
    health.rules.push_back(UpsertDeadRowsRule(inputs, table, slo));
    for (const auto& rule : health.rules) {
      health.status = Worse(health.status, rule.status);
    }
    report.overall = Worse(report.overall, health.status);
    report.tables.push_back(std::move(health));
  }
  return report;
}

std::string HealthReport::ToString() const {
  std::string out = Fmt("overall status=%s tables=%zu\n",
                        HealthStatusToString(overall), tables.size());
  if (has_window) {
    out += window.ToString();
    out += "\n";
  }
  for (const auto& table : tables) {
    out += Fmt("table=%s status=%s\n", table.table.c_str(),
               HealthStatusToString(table.status));
    for (const auto& rule : table.rules) {
      out += Fmt("  rule=%s status=%s %s\n", rule.rule.c_str(),
                 HealthStatusToString(rule.status), rule.evidence.c_str());
    }
  }
  return out;
}

}  // namespace pinot
