#include "segment/dictionary.h"

#include <algorithm>
#include <cassert>

namespace pinot {

namespace {

// Extracts the canonical scalar from a Value for each storage class.
int64_t AsInt64(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) return static_cast<int64_t>(*d);
  return 0;
}

double AsDouble(const Value& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<int64_t>(&v)) return static_cast<double>(*i);
  return 0.0;
}

std::string AsString(const Value& v) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  return ValueToString(v);
}

template <typename T>
void SortUnique(std::vector<T>* values) {
  std::sort(values->begin(), values->end());
  values->erase(std::unique(values->begin(), values->end()), values->end());
}

template <typename T>
int SortedIndexOf(const std::vector<T>& values, const T& v) {
  auto it = std::lower_bound(values.begin(), values.end(), v);
  if (it != values.end() && *it == v) {
    return static_cast<int>(it - values.begin());
  }
  return -1;
}

}  // namespace

Dictionary::Storage Dictionary::StorageFor(DataType type) {
  if (IsIntegralType(type)) return Storage::kInt64;
  if (IsFloatingType(type)) return Storage::kDouble;
  return Storage::kString;
}

Dictionary Dictionary::BuildSortedInt64(std::vector<int64_t> values) {
  SortUnique(&values);
  Dictionary dict(Storage::kInt64, /*sorted=*/true);
  dict.int64_values_ = std::move(values);
  return dict;
}

Dictionary Dictionary::BuildSortedDouble(std::vector<double> values) {
  SortUnique(&values);
  Dictionary dict(Storage::kDouble, /*sorted=*/true);
  dict.double_values_ = std::move(values);
  return dict;
}

Dictionary Dictionary::BuildSortedString(std::vector<std::string> values) {
  SortUnique(&values);
  Dictionary dict(Storage::kString, /*sorted=*/true);
  dict.string_values_ = std::move(values);
  return dict;
}

Dictionary Dictionary::CreateMutable(DataType type) {
  return Dictionary(StorageFor(type), /*sorted=*/false);
}

int Dictionary::size() const {
  switch (storage_) {
    case Storage::kInt64:
      return static_cast<int>(int64_values_.size());
    case Storage::kDouble:
      return static_cast<int>(double_values_.size());
    case Storage::kString:
      return static_cast<int>(string_values_.size());
  }
  return 0;
}

int Dictionary::IndexOf(const Value& value) const {
  switch (storage_) {
    case Storage::kInt64:
      return IndexOfInt64(AsInt64(value));
    case Storage::kDouble:
      return IndexOfDouble(AsDouble(value));
    case Storage::kString:
      return IndexOfString(AsString(value));
  }
  return -1;
}

int Dictionary::IndexOfInt64(int64_t v) const {
  if (sorted_) return SortedIndexOf(int64_values_, v);
  auto it = int64_map_.find(v);
  return it == int64_map_.end() ? -1 : it->second;
}

int Dictionary::IndexOfDouble(double v) const {
  if (sorted_) return SortedIndexOf(double_values_, v);
  auto it = double_map_.find(v);
  return it == double_map_.end() ? -1 : it->second;
}

int Dictionary::IndexOfString(const std::string& v) const {
  if (sorted_) return SortedIndexOf(string_values_, v);
  auto it = string_map_.find(v);
  return it == string_map_.end() ? -1 : it->second;
}

int Dictionary::GetOrAdd(const Value& value) {
  assert(!sorted_);
  switch (storage_) {
    case Storage::kInt64: {
      const int64_t v = AsInt64(value);
      auto [it, inserted] =
          int64_map_.emplace(v, static_cast<int>(int64_values_.size()));
      if (inserted) int64_values_.push_back(v);
      return it->second;
    }
    case Storage::kDouble: {
      const double v = AsDouble(value);
      auto [it, inserted] =
          double_map_.emplace(v, static_cast<int>(double_values_.size()));
      if (inserted) double_values_.push_back(v);
      return it->second;
    }
    case Storage::kString: {
      std::string v = AsString(value);
      auto it = string_map_.find(v);
      if (it != string_map_.end()) return it->second;
      const int id = static_cast<int>(string_values_.size());
      string_values_.push_back(v);
      string_map_.emplace(std::move(v), id);
      return id;
    }
  }
  return -1;
}

Value Dictionary::ValueAt(int dict_id) const {
  switch (storage_) {
    case Storage::kInt64:
      return int64_values_[dict_id];
    case Storage::kDouble:
      return double_values_[dict_id];
    case Storage::kString:
      return string_values_[dict_id];
  }
  return Value{};
}

double Dictionary::DoubleValueAt(int dict_id) const {
  switch (storage_) {
    case Storage::kInt64:
      return static_cast<double>(int64_values_[dict_id]);
    case Storage::kDouble:
      return double_values_[dict_id];
    case Storage::kString:
      return 0.0;
  }
  return 0.0;
}

namespace {

template <typename T>
Dictionary::IdRange RangeForImpl(const std::vector<T>& values,
                                 const std::optional<T>& lower,
                                 bool lower_inclusive,
                                 const std::optional<T>& upper,
                                 bool upper_inclusive) {
  Dictionary::IdRange range;
  range.lo = 0;
  range.hi = static_cast<int>(values.size()) - 1;
  if (lower.has_value()) {
    auto it = lower_inclusive
                  ? std::lower_bound(values.begin(), values.end(), *lower)
                  : std::upper_bound(values.begin(), values.end(), *lower);
    range.lo = static_cast<int>(it - values.begin());
  }
  if (upper.has_value()) {
    auto it = upper_inclusive
                  ? std::upper_bound(values.begin(), values.end(), *upper)
                  : std::lower_bound(values.begin(), values.end(), *upper);
    range.hi = static_cast<int>(it - values.begin()) - 1;
  }
  return range;
}

}  // namespace

Dictionary::IdRange Dictionary::RangeFor(const std::optional<Value>& lower,
                                         bool lower_inclusive,
                                         const std::optional<Value>& upper,
                                         bool upper_inclusive) const {
  assert(sorted_);
  switch (storage_) {
    case Storage::kInt64: {
      std::optional<int64_t> lo, hi;
      if (lower.has_value()) lo = AsInt64(*lower);
      if (upper.has_value()) hi = AsInt64(*upper);
      return RangeForImpl(int64_values_, lo, lower_inclusive, hi,
                          upper_inclusive);
    }
    case Storage::kDouble: {
      std::optional<double> lo, hi;
      if (lower.has_value()) lo = AsDouble(*lower);
      if (upper.has_value()) hi = AsDouble(*upper);
      return RangeForImpl(double_values_, lo, lower_inclusive, hi,
                          upper_inclusive);
    }
    case Storage::kString: {
      std::optional<std::string> lo, hi;
      if (lower.has_value()) lo = AsString(*lower);
      if (upper.has_value()) hi = AsString(*upper);
      return RangeForImpl(string_values_, lo, lower_inclusive, hi,
                          upper_inclusive);
    }
  }
  return IdRange{};
}

int Dictionary::CompareValueAt(int dict_id, const Value& v) const {
  switch (storage_) {
    case Storage::kInt64: {
      const int64_t a = int64_values_[dict_id];
      const int64_t b = AsInt64(v);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case Storage::kDouble: {
      const double a = double_values_[dict_id];
      const double b = AsDouble(v);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case Storage::kString: {
      return string_values_[dict_id].compare(AsString(v));
    }
  }
  return 0;
}

Value Dictionary::MinValue() const {
  assert(size() > 0);
  if (sorted_) return ValueAt(0);
  switch (storage_) {
    case Storage::kInt64:
      return *std::min_element(int64_values_.begin(), int64_values_.end());
    case Storage::kDouble:
      return *std::min_element(double_values_.begin(), double_values_.end());
    case Storage::kString:
      return *std::min_element(string_values_.begin(), string_values_.end());
  }
  return Value{};
}

Value Dictionary::MaxValue() const {
  assert(size() > 0);
  if (sorted_) return ValueAt(size() - 1);
  switch (storage_) {
    case Storage::kInt64:
      return *std::max_element(int64_values_.begin(), int64_values_.end());
    case Storage::kDouble:
      return *std::max_element(double_values_.begin(), double_values_.end());
    case Storage::kString:
      return *std::max_element(string_values_.begin(), string_values_.end());
  }
  return Value{};
}

Dictionary Dictionary::ToSorted(std::vector<int>* old_to_new) const {
  const int n = size();
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  auto comparator = [this](int a, int b) {
    switch (storage_) {
      case Storage::kInt64:
        return int64_values_[a] < int64_values_[b];
      case Storage::kDouble:
        return double_values_[a] < double_values_[b];
      case Storage::kString:
        return string_values_[a] < string_values_[b];
    }
    return false;
  };
  std::sort(order.begin(), order.end(), comparator);

  old_to_new->assign(n, 0);
  Dictionary dict(storage_, /*sorted=*/true);
  for (int new_id = 0; new_id < n; ++new_id) {
    const int old_id = order[new_id];
    (*old_to_new)[old_id] = new_id;
    switch (storage_) {
      case Storage::kInt64:
        dict.int64_values_.push_back(int64_values_[old_id]);
        break;
      case Storage::kDouble:
        dict.double_values_.push_back(double_values_[old_id]);
        break;
      case Storage::kString:
        dict.string_values_.push_back(string_values_[old_id]);
        break;
    }
  }
  return dict;
}

void Dictionary::Serialize(ByteWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(storage_));
  writer->WriteU8(sorted_ ? 1 : 0);
  writer->WriteU32(static_cast<uint32_t>(size()));
  switch (storage_) {
    case Storage::kInt64:
      for (int64_t v : int64_values_) writer->WriteI64(v);
      break;
    case Storage::kDouble:
      for (double v : double_values_) writer->WriteF64(v);
      break;
    case Storage::kString:
      for (const auto& v : string_values_) writer->WriteString(v);
      break;
  }
}

Result<Dictionary> Dictionary::Deserialize(ByteReader* reader) {
  PINOT_ASSIGN_OR_RETURN(uint8_t storage_byte, reader->ReadU8());
  PINOT_ASSIGN_OR_RETURN(uint8_t sorted_byte, reader->ReadU8());
  PINOT_ASSIGN_OR_RETURN(uint32_t n, reader->ReadU32());
  if (storage_byte > 2) return Status::Corruption("bad dictionary storage");
  Dictionary dict(static_cast<Storage>(storage_byte), sorted_byte != 0);
  switch (dict.storage_) {
    case Storage::kInt64:
      dict.int64_values_.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        PINOT_ASSIGN_OR_RETURN(int64_t v, reader->ReadI64());
        dict.int64_values_.push_back(v);
        if (!dict.sorted_) dict.int64_map_[v] = static_cast<int>(i);
      }
      break;
    case Storage::kDouble:
      dict.double_values_.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        PINOT_ASSIGN_OR_RETURN(double v, reader->ReadF64());
        dict.double_values_.push_back(v);
        if (!dict.sorted_) dict.double_map_[v] = static_cast<int>(i);
      }
      break;
    case Storage::kString:
      dict.string_values_.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        PINOT_ASSIGN_OR_RETURN(std::string v, reader->ReadString());
        dict.string_values_.push_back(v);
        if (!dict.sorted_) dict.string_map_[v] = static_cast<int>(i);
      }
      break;
  }
  return dict;
}

uint64_t Dictionary::SizeInBytes() const {
  uint64_t total = 0;
  total += int64_values_.size() * sizeof(int64_t);
  total += double_values_.size() * sizeof(double);
  for (const auto& s : string_values_) total += s.size() + sizeof(std::string);
  return total;
}

}  // namespace pinot
