#include "query/result.h"

#include <algorithm>
#include <sstream>

namespace pinot {

std::string EncodeGroupKey(const std::vector<Value>& keys) {
  std::string out;
  for (const auto& key : keys) {
    out += ValueToString(key);
    out += '\x1f';  // Unit separator; cannot appear in rendered numbers.
  }
  return out;
}

void PartialResult::Merge(PartialResult&& other) {
  if (!other.status.ok() && status.ok()) status = other.status;
  stats.Merge(other.stats);
  total_docs += other.total_docs;

  if (aggregates.empty()) {
    aggregates = std::move(other.aggregates);
  } else if (!other.aggregates.empty()) {
    for (size_t i = 0; i < aggregates.size(); ++i) {
      aggregates[i].Merge(std::move(other.aggregates[i]));
    }
  }

  for (auto& [key, entry] : other.groups) {
    auto it = groups.find(key);
    if (it == groups.end()) {
      groups.emplace(key, std::move(entry));
    } else {
      for (size_t i = 0; i < it->second.states.size(); ++i) {
        it->second.states[i].Merge(std::move(entry.states[i]));
      }
    }
  }

  for (auto& row : other.selection_rows) {
    selection_rows.push_back(std::move(row));
  }
}

namespace {

// Comparator for selection ORDER BY: compares two rows on the given
// (column index, descending) list.
struct RowComparator {
  const std::vector<std::pair<int, bool>>* order;

  static int CompareValues(const Value& a, const Value& b) {
    const auto* sa = std::get_if<std::string>(&a);
    const auto* sb = std::get_if<std::string>(&b);
    if (sa != nullptr && sb != nullptr) return sa->compare(*sb);
    const double da = ValueToDouble(a);
    const double db = ValueToDouble(b);
    return da < db ? -1 : (da > db ? 1 : 0);
  }

  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (const auto& [index, desc] : *order) {
      const int c = CompareValues(a[index], b[index]);
      if (c != 0) return desc ? c > 0 : c < 0;
    }
    return false;
  }
};

}  // namespace

QueryResult ReduceToFinalResult(const Query& query, PartialResult&& partial) {
  QueryResult result;
  result.stats = partial.stats;
  result.total_docs = partial.total_docs;
  if (!partial.status.ok()) {
    result.partial = true;
    result.error_message = partial.status.ToString();
  }

  if (query.IsAggregation()) {
    for (const auto& spec : query.aggregations) {
      result.aggregation_names.push_back(spec.ToString());
    }
    if (!query.HasGroupBy()) {
      if (partial.aggregates.empty()) {
        partial.aggregates.resize(query.aggregations.size());
      }
      for (size_t i = 0; i < query.aggregations.size(); ++i) {
        result.aggregates.push_back(
            FinalizeAgg(query.aggregations[i].type, partial.aggregates[i]));
      }
    } else {
      result.group_by_columns = query.group_by;
      // Order groups descending by the first aggregation and keep TOP n.
      std::vector<PartialResult::GroupEntry*> entries;
      entries.reserve(partial.groups.size());
      for (auto& [key, entry] : partial.groups) entries.push_back(&entry);
      const AggregationType first_type = query.aggregations[0].type;
      std::sort(entries.begin(), entries.end(),
                [first_type](const PartialResult::GroupEntry* a,
                             const PartialResult::GroupEntry* b) {
                  return AggSortValue(first_type, a->states[0]) >
                         AggSortValue(first_type, b->states[0]);
                });
      const size_t n = std::min<size_t>(entries.size(),
                                        static_cast<size_t>(query.top_n));
      result.group_rows.reserve(n);
      for (size_t g = 0; g < n; ++g) {
        QueryResult::GroupRow row;
        row.keys = std::move(entries[g]->keys);
        for (size_t i = 0; i < query.aggregations.size(); ++i) {
          row.values.push_back(FinalizeAgg(query.aggregations[i].type,
                                           entries[g]->states[i]));
        }
        result.group_rows.push_back(std::move(row));
      }
    }
  } else {
    result.selection_columns = query.selection_columns;
    auto& rows = partial.selection_rows;
    if (!query.order_by.empty()) {
      // Map order-by columns to selection indexes.
      std::vector<std::pair<int, bool>> order;
      for (const auto& [column, desc] : query.order_by) {
        for (size_t i = 0; i < query.selection_columns.size(); ++i) {
          if (query.selection_columns[i] == column) {
            order.emplace_back(static_cast<int>(i), desc);
            break;
          }
        }
      }
      if (!order.empty()) {
        RowComparator cmp{&order};
        const size_t keep = std::min<size_t>(
            rows.size(), static_cast<size_t>(query.limit));
        std::partial_sort(rows.begin(), rows.begin() + keep, rows.end(), cmp);
      }
    }
    if (rows.size() > static_cast<size_t>(query.limit)) {
      rows.resize(query.limit);
    }
    result.selection_rows = std::move(rows);
  }
  return result;
}

std::string QueryResult::ToString() const {
  std::ostringstream os;
  if (partial) os << "[PARTIAL: " << error_message << "]\n";
  if (!aggregates.empty()) {
    for (size_t i = 0; i < aggregates.size(); ++i) {
      os << aggregation_names[i] << " = " << ValueToString(aggregates[i])
         << "\n";
    }
  }
  if (!group_rows.empty()) {
    for (const auto& column : group_by_columns) os << column << "\t";
    for (const auto& name : aggregation_names) os << name << "\t";
    os << "\n";
    for (const auto& row : group_rows) {
      for (const auto& key : row.keys) os << ValueToString(key) << "\t";
      for (const auto& value : row.values) os << ValueToString(value) << "\t";
      os << "\n";
    }
  }
  if (!selection_rows.empty()) {
    for (const auto& column : selection_columns) os << column << "\t";
    os << "\n";
    for (const auto& row : selection_rows) {
      for (const auto& value : row) os << ValueToString(value) << "\t";
      os << "\n";
    }
  }
  os << "(docs scanned: " << stats.docs_scanned
     << ", matched: " << stats.docs_matched
     << ", total: " << total_docs;
  if (stats.used_star_tree) {
    os << ", star-tree records: " << stats.star_tree_records_scanned;
  }
  os << ")";
  return os.str();
}

}  // namespace pinot
