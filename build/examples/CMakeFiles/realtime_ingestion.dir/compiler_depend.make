# Empty compiler generated dependencies file for realtime_ingestion.
# This may be replaced when dependencies are built.
