#include "query/parser.h"

#include <gtest/gtest.h>

namespace pinot {
namespace {

TEST(ParserTest, SimpleAggregation) {
  auto q = ParsePql("SELECT count(*) FROM mytable");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->table, "mytable");
  ASSERT_EQ(q->aggregations.size(), 1u);
  EXPECT_EQ(q->aggregations[0].type, AggregationType::kCount);
  EXPECT_TRUE(q->aggregations[0].column.empty());
  EXPECT_FALSE(q->filter.has_value());
}

TEST(ParserTest, PaperFigure9Query) {
  auto q = ParsePql(
      "select sum(Impressions) from Table where Browser = 'firefox'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->aggregations.size(), 1u);
  EXPECT_EQ(q->aggregations[0].type, AggregationType::kSum);
  EXPECT_EQ(q->aggregations[0].column, "Impressions");
  ASSERT_TRUE(q->filter.has_value());
  EXPECT_EQ(q->filter->kind, FilterNode::Kind::kLeaf);
  EXPECT_EQ(q->filter->predicate.column, "Browser");
  EXPECT_EQ(q->filter->predicate.op, PredicateOp::kEq);
  EXPECT_EQ(std::get<std::string>(q->filter->predicate.values[0]), "firefox");
}

TEST(ParserTest, PaperFigure10QueryWithOrAndGroupBy) {
  auto q = ParsePql(
      "select sum(Impressions) from Table where Browser = 'firefox' or "
      "Browser = 'safari' group by Country");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->filter.has_value());
  EXPECT_EQ(q->filter->kind, FilterNode::Kind::kOr);
  EXPECT_EQ(q->filter->children.size(), 2u);
  EXPECT_EQ(q->group_by, (std::vector<std::string>{"Country"}));
}

TEST(ParserTest, PaperFigure7Query) {
  auto q = ParsePql(
      "SELECT campaignId, sum(click) FROM TableA WHERE accountId = 121011 "
      "AND day >= 15949 GROUP BY campaignId");
  // Mixing a plain column with aggregations is rejected (PQL requires
  // group-by columns to be implied, not projected).
  EXPECT_FALSE(q.ok());
  auto q2 = ParsePql(
      "SELECT sum(click) FROM TableA WHERE accountId = 121011 AND "
      "day >= 15949 GROUP BY campaignId");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q2->filter->kind, FilterNode::Kind::kAnd);
  const auto& range = q2->filter->children[1].predicate;
  EXPECT_EQ(range.op, PredicateOp::kRange);
  EXPECT_EQ(std::get<int64_t>(*range.lower), 15949);
  EXPECT_TRUE(range.lower_inclusive);
  EXPECT_FALSE(range.upper.has_value());
}

TEST(ParserTest, AllComparisonOperators) {
  for (const auto& [op_text, inclusive, is_lower] :
       std::vector<std::tuple<std::string, bool, bool>>{
           {">", false, true},
           {">=", true, true},
           {"<", false, false},
           {"<=", true, false}}) {
    auto q = ParsePql("SELECT count(*) FROM t WHERE x " + op_text + " 5");
    ASSERT_TRUE(q.ok()) << op_text;
    const auto& pred = q->filter->predicate;
    EXPECT_EQ(pred.op, PredicateOp::kRange);
    if (is_lower) {
      EXPECT_EQ(std::get<int64_t>(*pred.lower), 5);
      EXPECT_EQ(pred.lower_inclusive, inclusive);
    } else {
      EXPECT_EQ(std::get<int64_t>(*pred.upper), 5);
      EXPECT_EQ(pred.upper_inclusive, inclusive);
    }
  }
}

TEST(ParserTest, Between) {
  auto q = ParsePql("SELECT count(*) FROM t WHERE x BETWEEN 3 AND 9");
  ASSERT_TRUE(q.ok());
  const auto& pred = q->filter->predicate;
  EXPECT_EQ(std::get<int64_t>(*pred.lower), 3);
  EXPECT_EQ(std::get<int64_t>(*pred.upper), 9);
  EXPECT_TRUE(pred.lower_inclusive);
  EXPECT_TRUE(pred.upper_inclusive);
}

TEST(ParserTest, InAndNotIn) {
  auto q = ParsePql(
      "SELECT count(*) FROM t WHERE country IN ('us', 'ca') AND browser NOT "
      "IN ('ie')");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->filter->children.size(), 2u);
  EXPECT_EQ(q->filter->children[0].predicate.op, PredicateOp::kIn);
  EXPECT_EQ(q->filter->children[0].predicate.values.size(), 2u);
  EXPECT_EQ(q->filter->children[1].predicate.op, PredicateOp::kNotIn);
}

TEST(ParserTest, NotEqualsBothSpellings) {
  for (const char* pql : {"SELECT count(*) FROM t WHERE a != 1",
                          "SELECT count(*) FROM t WHERE a <> 1"}) {
    auto q = ParsePql(pql);
    ASSERT_TRUE(q.ok()) << pql;
    EXPECT_EQ(q->filter->predicate.op, PredicateOp::kNotEq);
  }
}

TEST(ParserTest, ParenthesesPrecedence) {
  auto q = ParsePql(
      "SELECT count(*) FROM t WHERE (a = 1 OR b = 2) AND c = 3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->filter->kind, FilterNode::Kind::kAnd);
  EXPECT_EQ(q->filter->children[0].kind, FilterNode::Kind::kOr);
  EXPECT_EQ(q->filter->children[1].kind, FilterNode::Kind::kLeaf);
}

TEST(ParserTest, AndBindsTighterThanOr) {
  auto q = ParsePql("SELECT count(*) FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->filter->kind, FilterNode::Kind::kOr);
  ASSERT_EQ(q->filter->children.size(), 2u);
  EXPECT_EQ(q->filter->children[1].kind, FilterNode::Kind::kAnd);
}

TEST(ParserTest, SelectionWithOrderByAndLimit) {
  auto q = ParsePql(
      "SELECT viewerId, viewTime FROM wvmp ORDER BY viewTime DESC LIMIT 25");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->selection_columns,
            (std::vector<std::string>{"viewerId", "viewTime"}));
  ASSERT_EQ(q->order_by.size(), 1u);
  EXPECT_EQ(q->order_by[0].first, "viewTime");
  EXPECT_TRUE(q->order_by[0].second);
  EXPECT_EQ(q->limit, 25);
}

TEST(ParserTest, SelectStar) {
  auto q = ParsePql("SELECT * FROM t LIMIT 5");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->selection_columns, (std::vector<std::string>{"*"}));
}

TEST(ParserTest, GroupByWithTop) {
  auto q = ParsePql(
      "SELECT sum(views) FROM t GROUP BY country, region TOP 7");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->group_by, (std::vector<std::string>{"country", "region"}));
  EXPECT_EQ(q->top_n, 7);
}

TEST(ParserTest, MultipleAggregations) {
  auto q = ParsePql(
      "SELECT sum(clicks), avg(cost), min(bid), max(bid), "
      "distinctcount(viewerId) FROM ads");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->aggregations.size(), 5u);
  EXPECT_EQ(q->aggregations[4].type, AggregationType::kDistinctCount);
}

TEST(ParserTest, NegativeNumbersAndFloats) {
  auto q = ParsePql("SELECT count(*) FROM t WHERE x BETWEEN -5 AND 2.5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(std::get<int64_t>(*q->filter->predicate.lower), -5);
  EXPECT_DOUBLE_EQ(std::get<double>(*q->filter->predicate.upper), 2.5);
}

TEST(ParserTest, StringEscapes) {
  auto q = ParsePql("SELECT count(*) FROM t WHERE name = 'O''Brien'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(std::get<std::string>(q->filter->predicate.values[0]), "O'Brien");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParsePql("").ok());
  EXPECT_FALSE(ParsePql("SELECT").ok());
  EXPECT_FALSE(ParsePql("SELECT count(*)").ok());
  EXPECT_FALSE(ParsePql("SELECT count(*) FROM").ok());
  EXPECT_FALSE(ParsePql("SELECT count(*) FROM t WHERE").ok());
  EXPECT_FALSE(ParsePql("SELECT count(*) FROM t WHERE x =").ok());
  EXPECT_FALSE(ParsePql("SELECT count(*) FROM t WHERE x = 'unterminated").ok());
  EXPECT_FALSE(ParsePql("SELECT count(*) FROM t trailing garbage").ok());
  EXPECT_FALSE(ParsePql("SELECT sum(*) FROM t").ok());
  EXPECT_FALSE(ParsePql("SELECT frobnicate(x) FROM t").ok());
  EXPECT_FALSE(ParsePql("SELECT a FROM t GROUP BY a").ok());
  EXPECT_FALSE(ParsePql("SELECT count(*) FROM t LIMIT 'x'").ok());
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  auto q = ParsePql("select COUNT(*) from t where a = 1 GROUP by a top 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->top_n, 3);
}

TEST(ParserTest, TraceAndExplainPrefixes) {
  auto q = ParsePql("TRACE SELECT count(*) FROM t");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->trace);
  EXPECT_FALSE(q->explain);

  q = ParsePql("explain select count(*) from t");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->explain);
  EXPECT_FALSE(q->trace);

  // Both prefixes compose, in either order.
  for (const char* pql : {"EXPLAIN TRACE SELECT count(*) FROM t",
                          "TRACE EXPLAIN SELECT count(*) FROM t"}) {
    q = ParsePql(pql);
    ASSERT_TRUE(q.ok()) << pql << ": " << q.status().ToString();
    EXPECT_TRUE(q->trace) << pql;
    EXPECT_TRUE(q->explain) << pql;
  }

  // Each prefix is accepted at most once, and SELECT must still follow.
  EXPECT_FALSE(ParsePql("TRACE TRACE SELECT count(*) FROM t").ok());
  EXPECT_FALSE(ParsePql("EXPLAIN EXPLAIN SELECT count(*) FROM t").ok());
  EXPECT_FALSE(ParsePql("TRACE").ok());
  EXPECT_FALSE(ParsePql("EXPLAIN WHERE a = 1").ok());
}

TEST(ParserTest, TraceAndExplainRoundTrip) {
  for (const char* pql :
       {"TRACE SELECT count(*) FROM t",
        "EXPLAIN SELECT sum(a) FROM t WHERE b = 1",
        "EXPLAIN TRACE SELECT count(*) FROM t GROUP BY c TOP 5"}) {
    auto q = ParsePql(pql);
    ASSERT_TRUE(q.ok()) << pql;
    auto q2 = ParsePql(q->ToString());
    ASSERT_TRUE(q2.ok()) << q->ToString() << " -> " << q2.status().ToString();
    EXPECT_EQ(q2->trace, q->trace) << pql;
    EXPECT_EQ(q2->explain, q->explain) << pql;
    EXPECT_EQ(q2->ToString(), q->ToString()) << pql;
  }
}

TEST(ParserTest, RoundTripToString) {
  auto q = ParsePql(
      "SELECT sum(Impressions) FROM T WHERE Browser IN ('firefox', 'safari') "
      "AND Day BETWEEN 10 AND 20 GROUP BY Country TOP 5");
  ASSERT_TRUE(q.ok());
  // ToString output should itself be parseable.
  auto q2 = ParsePql(q->ToString());
  ASSERT_TRUE(q2.ok()) << q->ToString() << " -> " << q2.status().ToString();
  EXPECT_EQ(q2->ToString(), q->ToString());
}

}  // namespace
}  // namespace pinot
