#ifndef PINOT_INDEX_INVERTED_INDEX_H_
#define PINOT_INDEX_INVERTED_INDEX_H_

#include <vector>

#include "bitmap/roaring.h"
#include "common/bytes.h"
#include "common/result.h"
#include "segment/forward_index.h"

namespace pinot {

/// Bitmap-based inverted index for one column: one roaring bitmap of doc ids
/// per dictionary id (paper section 4.2). Can be built on demand on servers
/// because the segment's index file is append-only (section 3.2).
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Builds the index from a column's forward index (single- or
  /// multi-value).
  static InvertedIndex BuildFromForwardIndex(const ForwardIndex& forward,
                                             int cardinality);

  int cardinality() const { return static_cast<int>(bitmaps_.size()); }

  /// Doc ids whose column value has dictionary id `dict_id`.
  const RoaringBitmap& GetBitmap(int dict_id) const {
    return bitmaps_[dict_id];
  }

  /// Union of bitmaps for an inclusive dict-id range [lo, hi]. Uses the
  /// bulk RoaringBitmap::OrMany path: each 16-bit chunk is unioned once
  /// across all posting lists instead of flowing through hi-lo
  /// intermediate bitmaps.
  RoaringBitmap GetBitmapForRange(int lo, int hi) const;

  /// Sum of posting-list cardinalities over the inclusive dict-id range
  /// [lo, hi], from precomputed prefix sums (O(1)). Exact union size for
  /// single-value columns; an upper bound for multi-value ones. Feeds the
  /// filter planner's selectivity estimate.
  uint64_t RangeCardinality(int lo, int hi) const {
    if (lo > hi) return 0;
    return cardinality_prefix_[hi + 1] - cardinality_prefix_[lo];
  }

  uint64_t SizeInBytes() const;

  void Serialize(ByteWriter* writer) const;
  static Result<InvertedIndex> Deserialize(ByteReader* reader);

 private:
  void RebuildCardinalityPrefix();

  std::vector<RoaringBitmap> bitmaps_;
  // cardinality_prefix_[i] = sum of bitmaps_[0..i) cardinalities.
  std::vector<uint64_t> cardinality_prefix_;
};

/// Index over a physically sorted column: because documents are ordered by
/// this column's value (hence by dictionary id, since immutable dictionary
/// ids are assigned in value order), each dictionary id maps to one
/// contiguous doc-id range. Queries filtered on the sorted column touch
/// only a contiguous slice of every column (paper section 4.2).
class SortedIndex {
 public:
  SortedIndex() = default;

  /// Builds from a single-value forward index whose ids must be
  /// non-decreasing.
  static Result<SortedIndex> BuildFromForwardIndex(const ForwardIndex& forward,
                                                   int cardinality);

  int cardinality() const {
    return static_cast<int>(starts_.size());
  }

  /// Doc-id range [begin, end) for `dict_id`.
  void GetDocRange(int dict_id, uint32_t* begin, uint32_t* end) const {
    *begin = starts_[dict_id];
    *end = ends_[dict_id];
  }

  /// Doc-id range [begin, end) covering the inclusive dict-id interval
  /// [lo, hi]; contiguous because both ids and docs are sorted.
  void GetDocRangeForIdRange(int lo, int hi, uint32_t* begin,
                             uint32_t* end) const {
    *begin = starts_[lo];
    *end = ends_[hi];
  }

  uint64_t SizeInBytes() const {
    return (starts_.size() + ends_.size()) * sizeof(uint32_t);
  }

  void Serialize(ByteWriter* writer) const;
  static Result<SortedIndex> Deserialize(ByteReader* reader);

 private:
  // Per dictionary id: [starts_[id], ends_[id]) is the doc range.
  std::vector<uint32_t> starts_;
  std::vector<uint32_t> ends_;
};

}  // namespace pinot

#endif  // PINOT_INDEX_INVERTED_INDEX_H_
