#include "query/query.h"

#include <sstream>

namespace pinot {

const char* AggregationTypeToString(AggregationType type) {
  switch (type) {
    case AggregationType::kCount:
      return "count";
    case AggregationType::kSum:
      return "sum";
    case AggregationType::kMin:
      return "min";
    case AggregationType::kMax:
      return "max";
    case AggregationType::kAvg:
      return "avg";
    case AggregationType::kDistinctCount:
      return "distinctcount";
  }
  return "?";
}

std::string AggregationSpec::ToString() const {
  std::string out = AggregationTypeToString(type);
  out += "(";
  out += column.empty() ? "*" : column;
  out += ")";
  return out;
}

namespace {

// Renders a literal in PQL syntax: strings single-quoted with '' escapes.
std::string LiteralToString(const Value& v) {
  if (const auto* s = std::get_if<std::string>(&v)) {
    std::string out = "'";
    for (char c : *s) {
      if (c == '\'') out += "''";
      else out += c;
    }
    out += "'";
    return out;
  }
  return ValueToString(v);
}

}  // namespace

std::string Predicate::ToString() const {
  std::ostringstream os;
  os << column;
  switch (op) {
    case PredicateOp::kEq:
      os << " = " << LiteralToString(values[0]);
      break;
    case PredicateOp::kNotEq:
      os << " != " << LiteralToString(values[0]);
      break;
    case PredicateOp::kIn:
    case PredicateOp::kNotIn: {
      os << (op == PredicateOp::kIn ? " IN (" : " NOT IN (");
      for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0) os << ", ";
        os << LiteralToString(values[i]);
      }
      os << ")";
      break;
    }
    case PredicateOp::kRange:
      if (lower.has_value() && upper.has_value()) {
        os << " BETWEEN " << LiteralToString(*lower) << " AND "
           << LiteralToString(*upper);
      } else if (lower.has_value()) {
        os << (lower_inclusive ? " >= " : " > ") << LiteralToString(*lower);
      } else if (upper.has_value()) {
        os << (upper_inclusive ? " <= " : " < ") << LiteralToString(*upper);
      }
      break;
  }
  return os.str();
}

std::string FilterNode::ToString() const {
  if (kind == Kind::kLeaf) return predicate.ToString();
  std::string out = "(";
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) out += kind == Kind::kAnd ? " AND " : " OR ";
    out += children[i].ToString();
  }
  out += ")";
  return out;
}

std::string Query::ToString() const {
  std::ostringstream os;
  if (explain) os << "EXPLAIN ";
  if (trace) os << "TRACE ";
  os << "SELECT ";
  if (IsAggregation()) {
    for (size_t i = 0; i < aggregations.size(); ++i) {
      if (i > 0) os << ", ";
      os << aggregations[i].ToString();
    }
  } else {
    for (size_t i = 0; i < selection_columns.size(); ++i) {
      if (i > 0) os << ", ";
      os << selection_columns[i];
    }
  }
  os << " FROM " << table;
  if (filter.has_value()) os << " WHERE " << filter->ToString();
  if (HasGroupBy()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << group_by[i];
    }
    os << " TOP " << top_n;
  }
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << order_by[i].first << (order_by[i].second ? " DESC" : "");
    }
  }
  if (!IsAggregation() || !HasGroupBy()) os << " LIMIT " << limit;
  return os.str();
}

}  // namespace pinot
